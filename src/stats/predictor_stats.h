// Per-predictor online accuracy counters, reported next to the run's
// latency series so benches can say which predictor won and why.
//
// The PredictorBank (src/predict/bank.h) scores every registered predictor
// against each arriving estimate (one-step-ahead) and charges rollbacks to
// the predictor whose guess opened the failed epoch. The scoreboard is the
// plain-data half of that: counters keyed by predictor name, in
// registration order, with a deterministic best() selection rule.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace stats {

struct PredictorCounters {
  std::string name;
  std::uint64_t scored = 0;  ///< one-step-ahead predictions judged
  std::uint64_t hits = 0;    ///< judged within the tolerance predicate
  double rel_error_sum = 0.0;
  std::uint64_t guesses_supplied = 0;  ///< adopted as a speculation basis
  std::uint64_t rollbacks_charged = 0;

  [[nodiscard]] double hit_rate() const {
    return scored == 0 ? 0.0
                       : static_cast<double>(hits) / static_cast<double>(scored);
  }
  [[nodiscard]] double mean_rel_error() const {
    return scored == 0 ? 0.0 : rel_error_sum / static_cast<double>(scored);
  }
  /// Laplace-smoothed hit rate — the selection score. Smoothing keeps a
  /// predictor with one lucky hit from beating one with a long record.
  [[nodiscard]] double smoothed_hit_rate() const {
    return (static_cast<double>(hits) + 1.0) /
           (static_cast<double>(scored) + 2.0);
  }
};

/// Counters for a set of predictors racing on one stream. Row order is
/// registration order; ties in best() resolve to the earlier row, so banks
/// should register their safest predictor first.
class PredictorScoreboard {
 public:
  /// Returns the row for `name`, creating it (zeroed) on first use.
  PredictorCounters& row(const std::string& name);
  [[nodiscard]] const PredictorCounters* find(const std::string& name) const;
  [[nodiscard]] const std::vector<PredictorCounters>& rows() const {
    return rows_;
  }
  [[nodiscard]] bool empty() const { return rows_.empty(); }

  void record_score(const std::string& name, bool hit, double rel_error);
  void note_supplied(const std::string& name);
  void charge_rollback(const std::string& name);

  /// Name of the row with the highest smoothed hit rate (earlier row wins
  /// ties); empty string when no rows exist.
  [[nodiscard]] std::string best() const;

  /// Multi-line table for bench logs.
  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<PredictorCounters> rows_;
};

}  // namespace stats
