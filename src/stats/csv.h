// Minimal CSV emission for benchmark series (one file per figure panel).
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace stats {

/// Writes rows of comma-separated values. Cells containing commas, quotes or
/// newlines are quoted per RFC 4180.
class CsvWriter {
 public:
  /// Opens `path` for writing (truncates). Throws std::runtime_error on
  /// failure.
  explicit CsvWriter(const std::string& path);

  /// Writes one row. Each cell is escaped independently.
  void row(const std::vector<std::string>& cells);

  /// Convenience: header row.
  void header(const std::vector<std::string>& names) { row(names); }

  [[nodiscard]] const std::string& path() const { return path_; }

  static std::string escape(const std::string& cell);

 private:
  std::string path_;
  std::ofstream out_;
};

}  // namespace stats
