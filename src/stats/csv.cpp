#include "stats/csv.h"

#include <stdexcept>

namespace stats {

CsvWriter::CsvWriter(const std::string& path) : path_(path), out_(path) {
  if (!out_) {
    throw std::runtime_error("CsvWriter: cannot open " + path);
  }
}

std::string CsvWriter::escape(const std::string& cell) {
  const bool needs_quotes =
      cell.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return cell;
  std::string quoted = "\"";
  for (char c : cell) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
  if (!out_) {
    throw std::runtime_error("CsvWriter: write failed for " + path_);
  }
}

}  // namespace stats
