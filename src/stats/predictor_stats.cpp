#include "stats/predictor_stats.h"

#include <cstdio>

namespace stats {

PredictorCounters& PredictorScoreboard::row(const std::string& name) {
  for (auto& r : rows_) {
    if (r.name == name) return r;
  }
  rows_.push_back(PredictorCounters{name, 0, 0, 0.0, 0, 0});
  return rows_.back();
}

const PredictorCounters* PredictorScoreboard::find(
    const std::string& name) const {
  for (const auto& r : rows_) {
    if (r.name == name) return &r;
  }
  return nullptr;
}

void PredictorScoreboard::record_score(const std::string& name, bool hit,
                                       double rel_error) {
  auto& r = row(name);
  ++r.scored;
  if (hit) ++r.hits;
  r.rel_error_sum += rel_error;
}

void PredictorScoreboard::note_supplied(const std::string& name) {
  ++row(name).guesses_supplied;
}

void PredictorScoreboard::charge_rollback(const std::string& name) {
  ++row(name).rollbacks_charged;
}

std::string PredictorScoreboard::best() const {
  std::string best_name;
  double best_score = -1.0;
  for (const auto& r : rows_) {
    const double s = r.smoothed_hit_rate();
    if (s > best_score) {
      best_score = s;
      best_name = r.name;
    }
  }
  return best_name;
}

std::string PredictorScoreboard::to_string() const {
  std::string out;
  char line[160];
  std::snprintf(line, sizeof line, "  %-12s %7s %9s %11s %8s %9s\n",
                "predictor", "scored", "hit_rate", "mean_relerr", "supplied",
                "rollbacks");
  out += line;
  for (const auto& r : rows_) {
    std::snprintf(line, sizeof line,
                  "  %-12s %7llu %8.1f%% %11.4f %8llu %9llu\n",
                  r.name.c_str(), static_cast<unsigned long long>(r.scored),
                  100.0 * r.hit_rate(), r.mean_rel_error(),
                  static_cast<unsigned long long>(r.guesses_supplied),
                  static_cast<unsigned long long>(r.rollbacks_charged));
    out += line;
  }
  return out;
}

}  // namespace stats
