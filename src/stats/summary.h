// Order statistics and moments over latency series.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "stats/trace.h"

namespace stats {

/// Summary statistics of a latency (or any nonnegative microsecond) series.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  Micros min = 0;
  Micros p50 = 0;
  Micros p90 = 0;
  Micros p95 = 0;
  Micros p99 = 0;
  Micros max = 0;

  [[nodiscard]] std::string to_string() const;
};

/// Computes a Summary over `values` (copied; input order preserved).
[[nodiscard]] Summary summarize(const std::vector<Micros>& values);

/// Percentile with linear index interpolation, q in [0,100].
[[nodiscard]] Micros percentile(std::vector<Micros> values, double q);

/// Relative change (a→b) in percent; negative means b is smaller (improved).
[[nodiscard]] double percent_change(double a, double b);

/// Downsamples a series to at most `max_points` by striding, always keeping
/// the final point. Used when printing long per-element series in benches.
[[nodiscard]] std::vector<std::pair<std::size_t, Micros>> downsample(
    const std::vector<Micros>& values, std::size_t max_points);

}  // namespace stats
