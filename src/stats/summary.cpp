#include "stats/summary.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace stats {

Micros percentile(std::vector<Micros> values, double q) {
  if (values.empty()) throw std::invalid_argument("percentile: empty series");
  if (q < 0.0 || q > 100.0) {
    throw std::invalid_argument("percentile: q out of [0,100]");
  }
  std::sort(values.begin(), values.end());
  const double pos = (q / 100.0) * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(pos));
  const auto hi = static_cast<std::size_t>(std::ceil(pos));
  if (lo == hi) return values[lo];
  const double frac = pos - static_cast<double>(lo);
  const double v = static_cast<double>(values[lo]) * (1.0 - frac) +
                   static_cast<double>(values[hi]) * frac;
  return static_cast<Micros>(std::llround(v));
}

Summary summarize(const std::vector<Micros>& values) {
  Summary s;
  s.count = values.size();
  if (values.empty()) return s;

  double sum = 0.0;
  for (Micros v : values) sum += static_cast<double>(v);
  s.mean = sum / static_cast<double>(values.size());

  double var = 0.0;
  for (Micros v : values) {
    const double d = static_cast<double>(v) - s.mean;
    var += d * d;
  }
  var /= static_cast<double>(values.size());
  s.stddev = std::sqrt(var);

  std::vector<Micros> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  s.min = sorted.front();
  s.max = sorted.back();
  s.p50 = percentile(values, 50.0);
  s.p90 = percentile(values, 90.0);
  s.p95 = percentile(values, 95.0);
  s.p99 = percentile(values, 99.0);
  return s;
}

double percent_change(double a, double b) {
  if (a == 0.0) return 0.0;
  return (b - a) / a * 100.0;
}

std::vector<std::pair<std::size_t, Micros>> downsample(
    const std::vector<Micros>& values, std::size_t max_points) {
  std::vector<std::pair<std::size_t, Micros>> out;
  if (values.empty() || max_points == 0) return out;
  const std::size_t stride = std::max<std::size_t>(1, values.size() / max_points);
  for (std::size_t i = 0; i < values.size(); i += stride) {
    out.emplace_back(i, values[i]);
  }
  if (out.back().first != values.size() - 1) {
    out.emplace_back(values.size() - 1, values.back());
  }
  return out;
}

std::string Summary::to_string() const {
  std::ostringstream os;
  os << "n=" << count << " mean=" << static_cast<std::uint64_t>(mean)
     << "us p50=" << p50 << "us p95=" << p95 << "us max=" << max << "us";
  return os.str();
}

}  // namespace stats
