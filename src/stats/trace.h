// Per-block latency traces: the paper's primary evaluation criterion.
//
// "Our main evaluation criterion is per block latency. We measure it by
//  subtracting the time a data block arrives from the time we complete its
//  processing." (paper §V-A)
//
// A BlockTrace records, per data block (element), the virtual or wall-clock
// microsecond timestamps of arrival and completion, plus bookkeeping used by
// the evaluation harness (how many times the block was encoded, whether its
// final encoding was produced speculatively).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace stats {

/// Timestamps are microseconds on the executing engine's clock (virtual time
/// for the simulator, steady-clock time for the threaded runtime).
using Micros = std::uint64_t;

/// One record per data block / element of the stream.
struct BlockRecord {
  std::uint32_t index = 0;       ///< element index within the stream
  Micros arrival_us = 0;         ///< when the block's bytes became available
  std::optional<Micros> done_us; ///< when its (committed) encoding completed
  std::uint32_t encode_count = 0;///< total encode executions incl. rollbacks
  bool speculative = false;      ///< final encoding came from a committed
                                 ///< speculative task

  /// Per-block latency (paper's metric). Requires completion.
  [[nodiscard]] Micros latency_us() const { return *done_us - arrival_us; }
  [[nodiscard]] bool completed() const { return done_us.has_value(); }
};

/// Trace of a full run over a stream of blocks.
class BlockTrace {
 public:
  BlockTrace() = default;
  explicit BlockTrace(std::size_t n_blocks) : records_(n_blocks) {
    for (std::size_t i = 0; i < n_blocks; ++i) {
      records_[i].index = static_cast<std::uint32_t>(i);
    }
  }

  [[nodiscard]] std::size_t size() const { return records_.size(); }
  [[nodiscard]] bool empty() const { return records_.empty(); }

  BlockRecord& at(std::size_t i) { return records_.at(i); }
  [[nodiscard]] const BlockRecord& at(std::size_t i) const {
    return records_.at(i);
  }

  void record_arrival(std::size_t i, Micros t) { records_.at(i).arrival_us = t; }

  /// Records completion of block i; later completions overwrite earlier ones
  /// (a rollback re-encodes the block, and the committed time is what counts).
  void record_done(std::size_t i, Micros t, bool speculative) {
    auto& r = records_.at(i);
    r.done_us = t;
    r.speculative = speculative;
    ++r.encode_count;
  }

  [[nodiscard]] const std::vector<BlockRecord>& records() const {
    return records_;
  }

  /// All per-block latencies, in element order. Throws if any block never
  /// completed (a run that loses blocks is a correctness bug, not a data
  /// point).
  [[nodiscard]] std::vector<Micros> latencies() const;

  /// Arrival times in element order.
  [[nodiscard]] std::vector<Micros> arrivals() const;

  /// True iff every block has a completion timestamp.
  [[nodiscard]] bool complete() const;

  /// Completion time of the last block (the run's makespan endpoint).
  [[nodiscard]] Micros last_done_us() const;

  /// Number of blocks whose committed encoding came from speculation.
  [[nodiscard]] std::size_t speculative_commits() const;

  /// Total extra encode executions beyond one per block (rollback waste).
  [[nodiscard]] std::uint64_t wasted_encodes() const;

 private:
  std::vector<BlockRecord> records_;
};

/// Aggregate counters for one run, reported next to the latency series.
struct RunCounters {
  std::uint64_t tasks_executed = 0;
  std::uint64_t tasks_aborted = 0;     ///< tasks destroyed by rollback
  std::uint64_t spec_tasks_executed = 0;
  std::uint64_t checks_executed = 0;
  std::uint64_t rollbacks = 0;         ///< failed speculation verdicts
  std::uint64_t epochs_opened = 0;     ///< speculation attempts
  std::uint64_t epochs_committed = 0;
  Micros total_runtime_us = 0;         ///< completion time of the whole run
};

/// Human-readable one-line rendering for bench logs.
[[nodiscard]] std::string to_string(const RunCounters& c);

}  // namespace stats
