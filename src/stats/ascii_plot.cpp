#include "stats/ascii_plot.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

namespace stats {
namespace {

constexpr const char* kGlyphs = "*+ox#@%&";

double sample_at(const std::vector<Micros>& v, std::size_t col,
                 std::size_t width) {
  // Average the bucket of elements that maps to this column so narrow spikes
  // still show up.
  if (v.empty()) return 0.0;
  const double per_col = static_cast<double>(v.size()) / static_cast<double>(width);
  const auto lo = static_cast<std::size_t>(std::floor(static_cast<double>(col) * per_col));
  auto hi = static_cast<std::size_t>(std::floor(static_cast<double>(col + 1) * per_col));
  hi = std::min(std::max(hi, lo + 1), v.size());
  double sum = 0.0;
  for (std::size_t i = lo; i < hi; ++i) sum += static_cast<double>(v[i]);
  return sum / static_cast<double>(hi - lo);
}

}  // namespace

std::string plot_series(const std::vector<SeriesView>& series,
                        std::size_t width, std::size_t height) {
  if (series.empty() || width == 0 || height == 0) return {};

  double maxv = 1.0;
  for (const auto& s : series) {
    if (!s.values) continue;
    for (Micros v : *s.values) {
      maxv = std::max(maxv, static_cast<double>(v));
    }
  }

  std::vector<std::string> grid(height, std::string(width, ' '));
  for (std::size_t si = 0; si < series.size(); ++si) {
    const auto& s = series[si];
    if (!s.values || s.values->empty()) continue;
    const char glyph = kGlyphs[si % 8];
    for (std::size_t col = 0; col < width; ++col) {
      const double v = sample_at(*s.values, col, width);
      auto row = static_cast<std::size_t>(
          std::llround(v / maxv * static_cast<double>(height - 1)));
      row = std::min(row, height - 1);
      grid[height - 1 - row][col] = glyph;
    }
  }

  std::ostringstream os;
  os << std::fixed << std::setprecision(0);
  os << "  y-max = " << maxv << " us\n";
  for (const auto& line : grid) {
    os << "  |" << line << "|\n";
  }
  os << "  +" << std::string(width, '-') << "+\n";
  os << "  legend:";
  for (std::size_t si = 0; si < series.size(); ++si) {
    os << "  [" << kGlyphs[si % 8] << "] " << series[si].name;
  }
  os << "\n";
  return os.str();
}

std::string sparkline(const std::vector<Micros>& values, std::size_t width) {
  static const char* kLevels[] = {" ", ".", ":", "-", "=", "+", "*", "#"};
  if (values.empty() || width == 0) return {};
  double maxv = 1.0;
  for (Micros v : values) maxv = std::max(maxv, static_cast<double>(v));
  std::ostringstream os;
  for (std::size_t col = 0; col < width; ++col) {
    const double v = sample_at(values, col, width);
    auto lvl = static_cast<std::size_t>(std::llround(v / maxv * 7.0));
    os << kLevels[std::min<std::size_t>(lvl, 7)];
  }
  return os.str();
}

std::string bar_chart(const std::vector<Bar>& bars, const std::string& unit,
                      std::size_t width) {
  if (bars.empty()) return {};
  double maxv = 1.0;
  std::size_t label_w = 0;
  for (const auto& b : bars) {
    maxv = std::max(maxv, b.value);
    label_w = std::max(label_w, b.label.size());
  }
  std::ostringstream os;
  os << std::fixed << std::setprecision(0);
  for (const auto& b : bars) {
    const auto n = static_cast<std::size_t>(
        std::llround(b.value / maxv * static_cast<double>(width)));
    os << "  " << std::setw(static_cast<int>(label_w)) << std::left << b.label
       << "  " << std::string(n, '#') << " " << b.value << ' ' << unit << "\n";
  }
  return os.str();
}

}  // namespace stats
