#include "stats/trace.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace stats {

std::vector<Micros> BlockTrace::latencies() const {
  std::vector<Micros> out;
  out.reserve(records_.size());
  for (const auto& r : records_) {
    if (!r.done_us) {
      throw std::logic_error("BlockTrace::latencies: block " +
                             std::to_string(r.index) + " never completed");
    }
    out.push_back(r.latency_us());
  }
  return out;
}

std::vector<Micros> BlockTrace::arrivals() const {
  std::vector<Micros> out;
  out.reserve(records_.size());
  for (const auto& r : records_) out.push_back(r.arrival_us);
  return out;
}

bool BlockTrace::complete() const {
  return std::all_of(records_.begin(), records_.end(),
                     [](const BlockRecord& r) { return r.completed(); });
}

Micros BlockTrace::last_done_us() const {
  Micros last = 0;
  for (const auto& r : records_) {
    if (r.done_us) last = std::max(last, *r.done_us);
  }
  return last;
}

std::size_t BlockTrace::speculative_commits() const {
  return static_cast<std::size_t>(
      std::count_if(records_.begin(), records_.end(),
                    [](const BlockRecord& r) { return r.speculative; }));
}

std::uint64_t BlockTrace::wasted_encodes() const {
  std::uint64_t waste = 0;
  for (const auto& r : records_) {
    if (r.encode_count > 1) waste += r.encode_count - 1;
  }
  return waste;
}

std::string to_string(const RunCounters& c) {
  std::ostringstream os;
  os << "tasks=" << c.tasks_executed << " spec=" << c.spec_tasks_executed
     << " aborted=" << c.tasks_aborted << " checks=" << c.checks_executed
     << " rollbacks=" << c.rollbacks << " epochs=" << c.epochs_opened << "/"
     << c.epochs_committed << " runtime_us=" << c.total_runtime_us;
  return os.str();
}

}  // namespace stats
