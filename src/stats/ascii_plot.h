// Terminal-friendly series plots for benchmark binaries.
//
// The paper's figures are latency-vs-element line charts; the bench binaries
// render the same series as compact ASCII charts so the shape is visible in
// a terminal without external plotting.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "stats/trace.h"

namespace stats {

struct SeriesView {
  std::string name;
  const std::vector<Micros>* values = nullptr;
};

/// Renders multiple series (same x-axis: element index) as an ASCII chart of
/// `width` columns × `height` rows. Each series gets a distinct glyph; the
/// legend is appended below the chart. Y axis is shared and auto-scaled.
[[nodiscard]] std::string plot_series(const std::vector<SeriesView>& series,
                                      std::size_t width = 96,
                                      std::size_t height = 20);

/// One-line sparkline of a single series (8-level block glyphs).
[[nodiscard]] std::string sparkline(const std::vector<Micros>& values,
                                    std::size_t width = 80);

/// Renders a labelled horizontal bar chart (used for the run-time panels,
/// e.g. Fig. 3d / 4d / 6d).
struct Bar {
  std::string label;
  double value = 0.0;
};
[[nodiscard]] std::string bar_chart(const std::vector<Bar>& bars,
                                    const std::string& unit,
                                    std::size_t width = 60);

}  // namespace stats
