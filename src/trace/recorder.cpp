#include "trace/recorder.h"

#include <algorithm>

namespace tracelog {

void Recorder::on_task_created(const sre::TaskInfo& task) {
  std::scoped_lock lk(mu_);
  if (tasks_.capacity() == tasks_.size()) {
    tasks_.reserve(tasks_.empty() ? 256 : tasks_.size() * 2);
    by_id_.reserve(tasks_.capacity());
  }
  TaskRecord rec;
  rec.id = task.id;
  rec.name = task.name;
  rec.cls = task.cls;
  rec.epoch = task.epoch;
  rec.depth = task.depth;
  rec.cost_us = task.cost_us;
  by_id_[task.id] = tasks_.size();
  tasks_.push_back(std::move(rec));
}

void Recorder::on_edge(sre::TaskId producer, sre::TaskId consumer) {
  std::scoped_lock lk(mu_);
  if (edges_.capacity() == edges_.size()) {
    edges_.reserve(edges_.empty() ? 256 : edges_.size() * 2);
  }
  edges_.push_back({producer, consumer});
}

void Recorder::on_dispatched(sre::TaskId task, std::uint64_t now_us,
                             unsigned cpu) {
  std::scoped_lock lk(mu_);
  auto it = by_id_.find(task);
  if (it == by_id_.end()) return;
  TaskRecord& rec = tasks_[it->second];
  rec.dispatched = true;
  rec.dispatch_us = now_us;
  rec.cpu = cpu;
}

void Recorder::on_finished(sre::TaskId task, std::uint64_t now_us,
                           bool aborted) {
  std::scoped_lock lk(mu_);
  finish_locked(task, now_us, aborted);
}

void Recorder::on_finished_batch(const FinishedEvent* events, std::size_t n) {
  std::scoped_lock lk(mu_);
  for (std::size_t i = 0; i < n; ++i) {
    finish_locked(events[i].task, events[i].now_us, events[i].aborted);
  }
}

void Recorder::finish_locked(sre::TaskId task, std::uint64_t now_us,
                             bool aborted) {
  auto it = by_id_.find(task);
  if (it == by_id_.end()) return;
  TaskRecord& rec = tasks_[it->second];
  // A task aborted before ever dispatching reports completion time 0: keep
  // it as "aborted" bookkeeping without inventing an execution interval.
  rec.finished = rec.dispatched || !aborted;
  rec.finish_us = now_us;
  rec.aborted = aborted;
}

void Recorder::on_epoch_opened(sre::Epoch epoch) {
  std::scoped_lock lk(mu_);
  // Re-opening an epoch id is not a thing the runtime does; keep the first.
  auto [it, inserted] = epoch_by_id_.try_emplace(epoch, epochs_.size());
  if (inserted) epochs_.push_back({epoch, false, false});
}

void Recorder::on_epoch_committed(sre::Epoch epoch) {
  std::scoped_lock lk(mu_);
  auto it = epoch_by_id_.find(epoch);
  if (it != epoch_by_id_.end()) epochs_[it->second].committed = true;
}

void Recorder::on_epoch_aborted(sre::Epoch epoch) {
  std::scoped_lock lk(mu_);
  auto it = epoch_by_id_.find(epoch);
  if (it != epoch_by_id_.end()) epochs_[it->second].aborted = true;
}

std::vector<TaskRecord> Recorder::tasks() const {
  std::scoped_lock lk(mu_);
  return tasks_;
}

std::vector<Edge> Recorder::edges() const {
  std::scoped_lock lk(mu_);
  return edges_;
}

std::vector<EpochRecord> Recorder::epochs() const {
  std::scoped_lock lk(mu_);
  return epochs_;
}

std::size_t Recorder::task_count() const {
  std::scoped_lock lk(mu_);
  return tasks_.size();
}

std::size_t Recorder::executed_count() const {
  std::scoped_lock lk(mu_);
  return static_cast<std::size_t>(
      std::count_if(tasks_.begin(), tasks_.end(), [](const TaskRecord& t) {
        return t.finished && !t.aborted && t.dispatched;
      }));
}

std::size_t Recorder::aborted_count() const {
  std::scoped_lock lk(mu_);
  return static_cast<std::size_t>(
      std::count_if(tasks_.begin(), tasks_.end(),
                    [](const TaskRecord& t) { return t.aborted; }));
}

unsigned Recorder::cpus_observed() const {
  std::scoped_lock lk(mu_);
  unsigned max_cpu = 0;
  bool any = false;
  for (const auto& t : tasks_) {
    if (t.dispatched) {
      max_cpu = std::max(max_cpu, t.cpu);
      any = true;
    }
  }
  return any ? max_cpu + 1 : 0;
}

std::uint64_t Recorder::end_time_us() const {
  std::scoped_lock lk(mu_);
  std::uint64_t end = 0;
  for (const auto& t : tasks_) {
    if (t.finished) end = std::max(end, t.finish_us);
  }
  return end;
}

}  // namespace tracelog
