// Recorder: an sre::Observer that captures a full execution trace —
// task intervals per CPU, the dependence graph, and speculation epochs —
// for post-run analysis and export (see exporters.h).
//
// Contract: short runs only. This recorder keeps every task, edge and
// epoch for the lifetime of the run (unbounded memory) and serializes all
// observer callbacks through one mutex — fine for single-run analysis and
// the bench/overhead_metrics-scale workloads it was built for, wrong for a
// long-running service. For always-on tracing with bounded memory and a
// lock-free hot path, use the flight recorder (src/flight/recorder.h).
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "sre/observer.h"

namespace tracelog {

struct TaskRecord {
  sre::TaskId id = 0;
  std::string name;
  sre::TaskClass cls = sre::TaskClass::Natural;
  sre::Epoch epoch = sre::kNaturalEpoch;
  int depth = 0;
  std::uint64_t cost_us = 0;

  bool dispatched = false;
  bool finished = false;
  bool aborted = false;
  std::uint64_t dispatch_us = 0;
  std::uint64_t finish_us = 0;
  unsigned cpu = 0;
};

struct Edge {
  sre::TaskId producer = 0;
  sre::TaskId consumer = 0;
};

struct EpochRecord {
  sre::Epoch epoch = 0;
  bool committed = false;
  bool aborted = false;
};

class Recorder final : public sre::Observer {
 public:
  // Observer interface — thread-safe, records and returns.
  void on_task_created(const sre::TaskInfo& task) override;
  void on_edge(sre::TaskId producer, sre::TaskId consumer) override;
  void on_dispatched(sre::TaskId task, std::uint64_t now_us,
                     unsigned cpu) override;
  void on_finished(sre::TaskId task, std::uint64_t now_us,
                   bool aborted) override;
  /// One lock acquisition for the whole staged batch (the runtime calls
  /// this under its own lock; record and return).
  void on_finished_batch(const FinishedEvent* events,
                         std::size_t n) override;
  void on_epoch_opened(sre::Epoch epoch) override;
  void on_epoch_committed(sre::Epoch epoch) override;
  void on_epoch_aborted(sre::Epoch epoch) override;

  // --- Post-run access (copy out under the lock) --------------------------

  [[nodiscard]] std::vector<TaskRecord> tasks() const;
  [[nodiscard]] std::vector<Edge> edges() const;
  [[nodiscard]] std::vector<EpochRecord> epochs() const;

  [[nodiscard]] std::size_t task_count() const;
  [[nodiscard]] std::size_t executed_count() const;
  [[nodiscard]] std::size_t aborted_count() const;

  /// Highest CPU index observed + 1 (0 if nothing ran).
  [[nodiscard]] unsigned cpus_observed() const;

  /// Engine time of the last completion.
  [[nodiscard]] std::uint64_t end_time_us() const;

 private:
  void finish_locked(sre::TaskId task, std::uint64_t now_us, bool aborted);

  mutable std::mutex mu_;
  std::vector<TaskRecord> tasks_;                      // by creation order
  std::unordered_map<sre::TaskId, std::size_t> by_id_; // id → index
  std::vector<Edge> edges_;
  std::vector<EpochRecord> epochs_;
  std::unordered_map<sre::Epoch, std::size_t> epoch_by_id_;  // epoch → index
};

}  // namespace tracelog
