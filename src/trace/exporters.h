// Trace exporters: turn a Recorder capture into artifacts a human can open.
//
//  * Chrome trace-event JSON — load in chrome://tracing or Perfetto: one
//    row per CPU, one slice per task, colored by class, with speculation
//    epochs as metadata.
//  * Graphviz DOT — the observed dynamic DFG (the paper's Fig. 1/2 style
//    diagrams, but generated from an actual run).
//  * ASCII utilization timeline — per-CPU busy bars over time, with
//    speculative work marked, for terminal inspection.
#pragma once

#include <string>

#include "trace/recorder.h"

namespace tracelog {

/// Chrome trace-event format (JSON array of "X" complete events).
[[nodiscard]] std::string to_chrome_trace(const Recorder& recorder);

/// Graphviz digraph. Tasks are nodes (shape/color by class & fate), edges
/// are dependences. `max_tasks` caps output size for huge runs (0 = all).
[[nodiscard]] std::string to_dot(const Recorder& recorder,
                                 std::size_t max_tasks = 0);

/// Per-CPU timeline of `width` columns: '#' natural, 's' speculative,
/// 'x' aborted-speculative, 'c' control, '.' idle.
[[nodiscard]] std::string utilization_timeline(const Recorder& recorder,
                                               std::size_t width = 96);

}  // namespace tracelog
