#include "trace/exporters.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace tracelog {
namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 4);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          // Other control characters are invalid in JSON strings.
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

const char* class_color(const TaskRecord& t) {
  if (t.aborted) return "thread_state_iowait";          // red-ish
  switch (t.cls) {
    case sre::TaskClass::Control: return "thread_state_runnable";
    case sre::TaskClass::Speculative: return "thread_state_running";
    case sre::TaskClass::Natural: return "thread_state_unknown";
  }
  return "generic_work";
}

}  // namespace

std::string to_chrome_trace(const Recorder& recorder) {
  const auto tasks = recorder.tasks();
  bool any = false;
  for (const auto& t : tasks) {
    if (t.dispatched && t.finished) any = true;
  }
  if (!any) return "[]\n";  // empty run: still a valid trace document

  std::ostringstream os;
  os << "[\n";
  bool first = true;
  for (const auto& t : tasks) {
    if (!t.dispatched || !t.finished) continue;
    if (!first) os << ",\n";
    first = false;
    const std::uint64_t dur =
        t.finish_us > t.dispatch_us ? t.finish_us - t.dispatch_us : 1;
    os << "  {\"name\":\"" << json_escape(t.name) << "\",\"cat\":\""
       << sre::to_string(t.cls) << (t.aborted ? ",aborted" : "")
       << "\",\"ph\":\"X\",\"ts\":" << t.dispatch_us << ",\"dur\":" << dur
       << ",\"pid\":1,\"tid\":" << t.cpu << ",\"cname\":\"" << class_color(t)
       << "\",\"args\":{\"epoch\":" << t.epoch << ",\"depth\":" << t.depth
       << "}}";
  }
  os << "\n]\n";
  return os.str();
}

std::string to_dot(const Recorder& recorder, std::size_t max_tasks) {
  const auto tasks = recorder.tasks();
  const auto edges = recorder.edges();
  const std::size_t limit =
      max_tasks == 0 ? tasks.size() : std::min(max_tasks, tasks.size());

  // Only emit edges between included tasks.
  std::unordered_map<sre::TaskId, const TaskRecord*> included;
  for (std::size_t i = 0; i < limit; ++i) {
    included[tasks[i].id] = &tasks[i];
  }

  std::ostringstream os;
  os << "digraph dfg {\n  rankdir=LR;\n  node [fontsize=9];\n";
  for (std::size_t i = 0; i < limit; ++i) {
    const auto& t = tasks[i];
    const char* shape = t.cls == sre::TaskClass::Control ? "diamond" : "box";
    const char* style = t.cls == sre::TaskClass::Speculative
                            ? "dashed"  // the paper draws speculation dashed
                            : "solid";
    const char* color = t.aborted ? "red"
                        : t.cls == sre::TaskClass::Control ? "blue"
                                                           : "black";
    os << "  t" << t.id << " [label=\"" << t.name << "\",shape=" << shape
       << ",style=" << style << ",color=" << color << "];\n";
  }
  for (const auto& e : edges) {
    if (included.contains(e.producer) && included.contains(e.consumer)) {
      os << "  t" << e.producer << " -> t" << e.consumer << ";\n";
    }
  }
  os << "}\n";
  return os.str();
}

std::string utilization_timeline(const Recorder& recorder, std::size_t width) {
  const auto tasks = recorder.tasks();
  const unsigned cpus = recorder.cpus_observed();
  const std::uint64_t end = recorder.end_time_us();
  if (cpus == 0 || end == 0 || width == 0) return "(no executed tasks)\n";

  std::vector<std::string> rows(cpus, std::string(width, '.'));
  for (const auto& t : tasks) {
    if (!t.dispatched || !t.finished) continue;
    if (t.cpu >= cpus || t.dispatch_us > end) continue;  // defensive
    char glyph = '#';
    if (t.cls == sre::TaskClass::Control) glyph = 'c';
    if (t.cls == sre::TaskClass::Speculative) glyph = t.aborted ? 'x' : 's';
    const auto col0 = static_cast<std::size_t>(t.dispatch_us * width / end);
    auto col1 = static_cast<std::size_t>(t.finish_us * width / end);
    col1 = std::min(std::max(col1, col0 + 1), width);
    for (std::size_t c = col0; c < col1; ++c) {
      rows[t.cpu][c] = glyph;
    }
  }

  std::ostringstream os;
  os << "  0us" << std::string(width > 16 ? width - 14 : 0, ' ') << end
     << "us\n";
  for (unsigned c = 0; c < cpus; ++c) {
    os << "  cpu" << (c < 10 ? " " : "") << c << " |" << rows[c] << "|\n";
  }
  os << "  [#] natural  [s] speculative  [x] aborted  [c] control  [.] idle\n";
  return os.str();
}

}  // namespace tracelog
