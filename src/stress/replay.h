// Replayer: turns a failing torture seed into a stable minimal trace.
//
// A torture failure is a (scenario, options) pair whose oracles fired. The
// replayer first *confirms* it (chaos decisions are deterministic per seed,
// but the OS interleaving around them is not — a race may need a few runs
// to land), then *shrinks* it: a fixed list of simplification passes
// (fewer workers, fewer estimates, no bursts, shorter chains, no fault
// injection, no chaos sleeps) is applied to fixpoint, keeping a pass only
// if the failure still reproduces under it. The shrunk options are re-run
// with trace recording on, and the recorded decision trace — rendered in
// the ChaosSchedule's stable (site, occurrence) order — is the artifact to
// attach to a bug report: `TVS_TORTURE_BASE_SEED=<seed>` replays it.
#pragma once

#include <functional>
#include <string>

#include "stress/torture.h"

namespace stress {

struct ReplayResult {
  /// The failure reproduced during confirmation. When false, the remaining
  /// fields describe the (unshrunk) input and the run count spent trying.
  bool reproduced = false;
  std::string failure;     ///< oracle message of the last failing run
  TortureOptions minimal;  ///< smallest options that still fail
  std::string trace;       ///< chaos decision trace of a minimal failing run
  unsigned runs = 0;       ///< scenario executions spent in total
};

class Replayer {
 public:
  using Scenario = std::function<TortureReport(const TortureOptions&)>;

  /// `attempts_per_step`: how many runs may try to reproduce the failure at
  /// each confirmation/shrink decision before the step gives up.
  explicit Replayer(Scenario scenario, unsigned attempts_per_step = 3);

  /// Confirms and shrinks `failing`; see the file comment.
  [[nodiscard]] ReplayResult replay(const TortureOptions& failing);

 private:
  /// Runs the scenario up to attempts_per_step_ times; returns the first
  /// failing report, or the last passing one.
  TortureReport attempt(const TortureOptions& opt, unsigned& runs) const;

  Scenario scenario_;
  unsigned attempts_per_step_;
};

}  // namespace stress
