// ChaosSchedule: the seeded owner of every nondeterministic decision a
// torture run makes.
//
// One object plays both roles the runtime exposes to the harness:
//  * sre::chaos::Hook — at every chaos point (the unlock windows in
//    Speculator/WaitBuffer, the executor's body boundaries) it decides
//    deterministically whether the crossing thread yields or briefly sleeps,
//    permuting the interleavings that matter;
//  * sre::FaultPlan — before every task body it decides whether to inject a
//    latency spike or a spurious failure.
//
// Determinism: decisions are pure hashes of (seed, site, per-thread
// occurrence counter) — no shared mutable state, no RNG stream racing
// between threads. Two runs with the same seed make the same k-th decision
// at the same site on any thread; a single-threaded replay is exactly
// reproducible. Fault decisions hash (seed, task id), so a task keeps its
// fate across runs as long as creation order holds.
//
// The decision trace (record=true) is the replayer's raw material: a
// stable text rendering sorted by (site, occurrence), independent of the
// wall-clock order threads happened to cross the points in.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "sre/chaos_point.h"
#include "sre/fault.h"

namespace stress {

struct ChaosOptions {
  // Chaos-point behaviour.
  double yield_prob = 0.6;        ///< std::this_thread::yield at a point
  double sleep_prob = 0.05;       ///< short sleep instead (stronger shuffle)
  std::uint64_t max_sleep_us = 50;

  // FaultPlan behaviour.
  double fail_prob = 0.0;         ///< spurious task failure
  double delay_prob = 0.0;        ///< latency spike before the body
  std::uint64_t max_delay_us = 100;

  bool record = false;            ///< keep a decision trace for replay
};

class ChaosSchedule final : public sre::chaos::Hook, public sre::FaultPlan {
 public:
  enum class Action : std::uint8_t { None, Yield, Sleep, Delay, Fail };

  struct Decision {
    std::string site;       ///< chaos-point name, or "fault.task"
    std::uint64_t sequence; ///< per-site occurrence (or task id for faults)
    Action action;
    std::uint64_t arg;      ///< sleep/delay duration (µs)
  };

  explicit ChaosSchedule(std::uint64_t seed, ChaosOptions options = {});

  // sre::chaos::Hook
  void on_point(const char* site) noexcept override;

  // sre::FaultPlan
  [[nodiscard]] sre::FaultDecision before_task(
      const sre::Task& task) noexcept override;

  [[nodiscard]] std::uint64_t seed() const { return seed_; }
  [[nodiscard]] const ChaosOptions& options() const { return options_; }

  /// Total decisions taken (cheap; maintained even when not recording).
  [[nodiscard]] std::uint64_t decisions() const;

  /// Copy of the recorded trace (empty unless options.record).
  [[nodiscard]] std::vector<Decision> trace() const;

  /// Stable text rendering of the trace: one "site#seq action arg" line,
  /// sorted by (site, sequence) so thread scheduling cannot reorder it.
  [[nodiscard]] std::string trace_text() const;

 private:
  /// Uniform double in [0,1) from a decision key.
  [[nodiscard]] double unit(std::uint64_t key) const noexcept;
  [[nodiscard]] std::uint64_t mix(std::uint64_t a, std::uint64_t b) const noexcept;
  void record(const char* site, std::uint64_t seq, Action action,
              std::uint64_t arg) noexcept;

  const std::uint64_t seed_;
  const ChaosOptions options_;

  mutable std::mutex trace_mu_;
  std::vector<Decision> trace_;
  std::atomic<std::uint64_t> decisions_{0};
};

}  // namespace stress
