// Torture scenarios: deterministic concurrency stress for the speculation
// layer (tvs::Speculator + tvs::WaitBuffer) on top of the real threaded
// executor, with every nondeterministic decision owned by a ChaosSchedule.
//
// Each scenario builds a miniature speculative pipeline, drives it with a
// seeded estimate stream shaped to provoke the dangerous windows (estimate
// bursts racing verdicts, rollback storms, commits racing late checks,
// adds racing flushes), and checks a set of oracles after the run:
//
//  * exactly-once terminal: at most one natural build and at most one
//    commit, never both; with no fault injection, exactly one of them;
//  * rollback sanity: every rolled-back epoch is distinct, the runtime's
//    rollback counter matches the callbacks observed;
//  * sink order: no payload of a dropped epoch ever reaches the sink, each
//    (epoch, key) at most once, and while a commit flush is in flight every
//    emission for that epoch comes from the committing thread (racing adds
//    must queue behind the flush, not interleave with it);
//  * quiescence: the executor drains fully (a hang is a failure by timeout
//    at the test harness level).
//
// A scenario returns a TortureReport rather than asserting, so the replayer
// (stress/replay.h) can re-run and shrink failing seeds.
#pragma once

#include <cstdint>
#include <string>

#include "stress/chaos_schedule.h"

namespace stress {

struct TortureOptions {
  std::uint64_t seed = 1;

  // Pipeline shape.
  unsigned workers = 4;
  std::uint32_t estimates = 48;   ///< estimates before the final
  std::uint32_t burst = 4;        ///< estimates injected back-to-back
  unsigned chain_tasks = 3;       ///< speculative tasks per epoch
  std::uint32_t step_size = 1;
  std::uint32_t verify_every = 1; ///< 1 = Full verification
  bool adaptive_restart = false;

  /// Probability (seeded, per estimate) that the value jumps outside
  /// tolerance — each jump makes the next check fail: a rollback storm.
  double storm_rate = 0.4;

  ChaosOptions chaos = {};

  /// Derives a scenario variant from `seed` (verification policy, restart
  /// mode, storm rate wobble) so a seed sweep covers the config space.
  [[nodiscard]] static TortureOptions for_seed(std::uint64_t seed);
};

struct TortureReport {
  bool ok = true;
  std::string failure;  ///< first violated oracle ("" when ok)
  std::uint64_t seed = 0;

  // Observed effects (diagnostics; also consumed by test assertions).
  std::uint64_t naturals = 0;
  std::uint64_t commits = 0;
  std::uint64_t rollbacks = 0;
  std::uint64_t epochs_opened = 0;
  std::uint64_t sink_emits = 0;
  std::uint64_t chaos_decisions = 0;
  bool finished = false;  ///< speculator reached a terminal state

  std::string trace;  ///< chaos decision trace (options.chaos.record)

  void fail(std::string what) {
    if (ok) {
      ok = false;
      failure = std::move(what);
    }
  }
};

/// Speculator + WaitBuffer end-to-end scenario on the threaded executor.
[[nodiscard]] TortureReport run_speculator_torture(const TortureOptions& opt);

/// WaitBuffer-only scenario: N threads add/commit/drop against a hostile
/// sink (slow, and re-entrant — it adds back into the buffer mid-flush).
[[nodiscard]] TortureReport run_wait_buffer_torture(const TortureOptions& opt);

}  // namespace stress
