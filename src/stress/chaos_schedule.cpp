#include "stress/chaos_schedule.h"

#include <algorithm>
#include <thread>
#include <unordered_map>

#include "sre/task.h"

namespace stress {

namespace {

/// splitmix64 finalizer: a full-avalanche mix, the standard seed expander.
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t fnv1a(const char* s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (; *s != '\0'; ++s) {
    h ^= static_cast<unsigned char>(*s);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Per-thread per-(schedule, site) occurrence counters. Thread-local so the
/// k-th crossing of a site by any given thread is a deterministic event,
/// regardless of how the OS interleaves other threads.
std::uint64_t next_occurrence(const void* schedule, const char* site) {
  struct KeyHash {
    std::size_t operator()(
        const std::pair<const void*, const char*>& k) const noexcept {
      return std::hash<const void*>{}(k.first) ^
             (std::hash<const void*>{}(k.second) << 1);
    }
  };
  thread_local std::unordered_map<std::pair<const void*, const char*>,
                                  std::uint64_t, KeyHash>
      counters;
  return counters[{schedule, site}]++;
}

}  // namespace

ChaosSchedule::ChaosSchedule(std::uint64_t seed, ChaosOptions options)
    : seed_(seed), options_(options) {}

std::uint64_t ChaosSchedule::mix(std::uint64_t a, std::uint64_t b) const noexcept {
  return splitmix64(seed_ ^ splitmix64(a ^ splitmix64(b)));
}

double ChaosSchedule::unit(std::uint64_t key) const noexcept {
  return static_cast<double>(key >> 11) * 0x1.0p-53;
}

void ChaosSchedule::on_point(const char* site) noexcept {
  const std::uint64_t seq = next_occurrence(this, site);
  const std::uint64_t key = mix(fnv1a(site), seq);
  const double u = unit(key);

  if (u < options_.yield_prob) {
    record(site, seq, Action::Yield, 0);
    std::this_thread::yield();
    return;
  }
  if (u < options_.yield_prob + options_.sleep_prob &&
      options_.max_sleep_us > 0) {
    const std::uint64_t us = splitmix64(key) % options_.max_sleep_us + 1;
    record(site, seq, Action::Sleep, us);
    std::this_thread::sleep_for(std::chrono::microseconds(us));
    return;
  }
  record(site, seq, Action::None, 0);
}

sre::FaultDecision ChaosSchedule::before_task(const sre::Task& task) noexcept {
  // Keyed by task id, not occurrence: a task's fate is a property of the
  // task, reproducible as long as creation order is.
  const std::uint64_t key = mix(0xfa017u /* fault-domain tag */, task.id());
  const double u = unit(key);
  if (u < options_.fail_prob) {
    record("fault.task", task.id(), Action::Fail, 0);
    return sre::FaultDecision::fail();
  }
  if (u < options_.fail_prob + options_.delay_prob &&
      options_.max_delay_us > 0) {
    const std::uint64_t us = splitmix64(key) % options_.max_delay_us + 1;
    record("fault.task", task.id(), Action::Delay, us);
    return sre::FaultDecision::delay(us);
  }
  return sre::FaultDecision::none();
}

void ChaosSchedule::record(const char* site, std::uint64_t seq, Action action,
                           std::uint64_t arg) noexcept {
  decisions_.fetch_add(1, std::memory_order_relaxed);
  if (!options_.record) return;
  try {
    std::scoped_lock lk(trace_mu_);
    trace_.push_back({site, seq, action, arg});
  } catch (...) {
    // Recording is best-effort diagnostics; never let it surface from a
    // noexcept decision path.
  }
}

std::uint64_t ChaosSchedule::decisions() const {
  return decisions_.load(std::memory_order_relaxed);
}

std::vector<ChaosSchedule::Decision> ChaosSchedule::trace() const {
  std::scoped_lock lk(trace_mu_);
  return trace_;
}

std::string ChaosSchedule::trace_text() const {
  std::vector<Decision> t = trace();
  std::sort(t.begin(), t.end(), [](const Decision& a, const Decision& b) {
    if (a.site != b.site) return a.site < b.site;
    return a.sequence < b.sequence;
  });
  std::string out;
  for (const Decision& d : t) {
    out += d.site;
    out += '#';
    out += std::to_string(d.sequence);
    switch (d.action) {
      case Action::None: out += " none"; break;
      case Action::Yield: out += " yield"; break;
      case Action::Sleep: out += " sleep " + std::to_string(d.arg) + "us"; break;
      case Action::Delay: out += " delay " + std::to_string(d.arg) + "us"; break;
      case Action::Fail: out += " fail"; break;
    }
    out += '\n';
  }
  return out;
}

}  // namespace stress
