#include "stress/torture.h"

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <map>
#include <mutex>
#include <set>
#include <thread>
#include <utility>
#include <vector>

#include "core/speculator.h"
#include "core/wait_buffer.h"
#include "sre/chaos_point.h"
#include "sre/runtime.h"
#include "sre/threaded_executor.h"

namespace stress {
namespace {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

double unit_of(std::uint64_t key) {
  return static_cast<double>(key >> 11) * 0x1.0p-53;
}

/// Seeded estimate stream: a base value with occasional large jumps. The
/// tolerance predicate is exact equality, so any jump between the adopted
/// guess and the newest estimate fails the next check — storm_rate is the
/// direct knob for rollback pressure.
std::uint64_t estimate_value(std::uint64_t seed, std::uint32_t index,
                             double storm_rate) {
  std::uint64_t v = 1'000'000;
  for (std::uint32_t i = 1; i <= index; ++i) {
    if (unit_of(splitmix64(seed ^ (0x9e37ULL << 32) ^ i)) < storm_rate) {
      v += 400'000;
    }
  }
  return v;
}

/// One sink emission, as the oracle sees it: the key, and whether it came
/// from the committing thread while its commit flush was in flight.
struct Emission {
  unsigned key;
  bool in_commit_window;
};

/// Per-epoch ordering oracle shared by both scenarios: every emission the
/// committer made during its commit window must precede every emission made
/// outside it (racing adds queue behind the in-flight flush; pass-through
/// only begins once the flush has fully drained), and no (epoch, key) pair
/// may be emitted twice.
void check_epoch_emissions(const std::vector<Emission>& seq, sre::Epoch epoch,
                           TortureReport& rep) {
  std::set<unsigned> keys;
  bool seen_outside_window = false;
  for (const Emission& e : seq) {
    if (!keys.insert(e.key).second) {
      rep.fail("duplicate sink emission for epoch " + std::to_string(epoch) +
               " key " + std::to_string(e.key));
    }
    if (e.in_commit_window) {
      if (seen_outside_window) {
        rep.fail("commit flush of epoch " + std::to_string(epoch) +
                 " interleaved with a racing add");
      }
    } else {
      seen_outside_window = true;
    }
  }
}

tvs::VerificationPolicy verify_policy(std::uint32_t verify_every) {
  if (verify_every == 0) return tvs::VerificationPolicy::optimistic();
  if (verify_every == 1) return tvs::VerificationPolicy::full();
  return tvs::VerificationPolicy::every_kth(verify_every);
}

}  // namespace

TortureOptions TortureOptions::for_seed(std::uint64_t seed) {
  TortureOptions opt;
  opt.seed = seed;
  const std::uint64_t h = splitmix64(seed);
  opt.workers = 2 + static_cast<unsigned>(h % 3);          // 2..4
  opt.estimates = 24 + static_cast<std::uint32_t>((h >> 8) % 25);  // 24..48
  opt.burst = 1 + static_cast<std::uint32_t>((h >> 16) % 4);
  opt.chain_tasks = 2 + static_cast<unsigned>((h >> 24) % 3);
  opt.step_size = 1 + static_cast<std::uint32_t>((h >> 32) % 3);
  switch ((h >> 40) % 3) {
    case 0: opt.verify_every = 1; break;  // Full
    case 1: opt.verify_every = 4; break;  // EveryKth(4)
    default: opt.verify_every = 0; break; // Optimistic
  }
  opt.adaptive_restart = ((h >> 48) & 1) != 0;
  opt.storm_rate = 0.15 + 0.5 * unit_of(splitmix64(h));
  opt.chaos.yield_prob = 0.5;
  opt.chaos.sleep_prob = 0.1;
  opt.chaos.max_sleep_us = 30;
  if (seed % 5 == 0) {  // one seed in five injects faults on top of chaos
    opt.chaos.fail_prob = 0.05;
    opt.chaos.delay_prob = 0.10;
    opt.chaos.max_delay_us = 80;
  }
  return opt;
}

TortureReport run_speculator_torture(const TortureOptions& opt) {
  TortureReport rep;
  rep.seed = opt.seed;

  ChaosSchedule chaos(opt.seed, opt.chaos);
  sre::chaos::ScopedHook chaos_guard(&chaos);

  sre::Runtime rt(sre::DispatchPolicy::Balanced);
  rt.set_fault_plan(&chaos);

  // Observed effects, written by callbacks/sinks on whatever thread they
  // fire on. `commit_window_epoch` + `committer_tid` mark the interval in
  // which the committing thread drains the wait buffer (single writer: the
  // committer stores the tid, then publishes the epoch with release order).
  struct Obs {
    std::mutex mu;
    std::uint64_t naturals = 0;
    std::uint64_t commits = 0;
    std::uint64_t rollbacks = 0;
    std::uint64_t epochs_opened = 0;
    std::set<sre::Epoch> dropped;
    sre::Epoch committed_epoch = 0;
    std::map<sre::Epoch, std::vector<Emission>> emissions;
    std::vector<bool> natural_done;
    std::thread::id committer_tid;
    std::atomic<sre::Epoch> commit_window_epoch{0};
  } obs;
  obs.natural_done.assign(opt.chain_tasks, false);

  tvs::WaitBuffer<unsigned, sre::Epoch> buffer(
      [&obs](const unsigned& key, sre::Epoch&& epoch, std::uint64_t) {
        const bool in_window =
            obs.commit_window_epoch.load(std::memory_order_acquire) == epoch &&
            std::this_thread::get_id() == obs.committer_tid;
        std::scoped_lock lk(obs.mu);
        obs.emissions[epoch].push_back({key, in_window});
      },
      /*retire_window=*/4);

  tvs::SpecConfig cfg;
  cfg.step_size = opt.step_size;
  cfg.verify = verify_policy(opt.verify_every);
  cfg.adaptive_restart = opt.adaptive_restart;

  tvs::Speculator<std::uint64_t>::Callbacks cb;
  cb.build_chain = [&](const std::uint64_t&, sre::Epoch epoch, std::uint32_t) {
    {
      std::scoped_lock lk(obs.mu);
      ++obs.epochs_opened;
    }
    // A serial chain: aborting mid-chain exercises destroy propagation
    // through blocked successors, not just ready-pool removal.
    sre::TaskPtr prev;
    for (unsigned b = 0; b < opt.chain_tasks; ++b) {
      auto task = rt.make_task(
          "spec[" + std::to_string(b) + ",e" + std::to_string(epoch) + "]",
          sre::TaskClass::Speculative, epoch, /*depth=*/3, /*cost_us=*/20,
          [](sre::TaskContext&) {});
      task->add_completion_hook(
          [&buffer, epoch, b](sre::Task&, std::uint64_t done_us) {
            buffer.add(epoch, b, sre::Epoch{epoch}, done_us);
          });
      if (prev) rt.add_dependency(prev, task);
      prev = task;
      rt.submit(task);
    }
  };
  cb.within_tolerance = [](const std::uint64_t& guess,
                           const std::uint64_t& current) {
    return guess == current;
  };
  cb.on_commit = [&](sre::Epoch epoch, std::uint64_t now_us) {
    {
      std::scoped_lock lk(obs.mu);
      ++obs.commits;
      obs.committed_epoch = epoch;
    }
    obs.committer_tid = std::this_thread::get_id();
    obs.commit_window_epoch.store(epoch, std::memory_order_release);
    buffer.commit(epoch, now_us);
    obs.commit_window_epoch.store(0, std::memory_order_release);
  };
  cb.on_rollback = [&](sre::Epoch epoch, std::uint64_t) {
    {
      std::scoped_lock lk(obs.mu);
      ++obs.rollbacks;
      obs.dropped.insert(epoch);
    }
    buffer.drop(epoch);
  };
  cb.build_natural = [&](const std::uint64_t&, std::uint64_t) {
    {
      std::scoped_lock lk(obs.mu);
      ++obs.naturals;
    }
    for (unsigned b = 0; b < opt.chain_tasks; ++b) {
      auto task = rt.make_task("natural[" + std::to_string(b) + "]",
                               sre::TaskClass::Natural, sre::kNaturalEpoch,
                               /*depth=*/3, /*cost_us=*/20,
                               [](sre::TaskContext&) {});
      task->add_completion_hook([&obs, b](sre::Task&, std::uint64_t) {
        std::scoped_lock lk(obs.mu);
        obs.natural_done[b] = true;
      });
      rt.submit(task);
    }
  };

  tvs::Speculator<std::uint64_t> spec(rt, cfg, std::move(cb),
                                      /*check_cost_us=*/12);

  sre::ThreadedExecutor::Options ex_opt;
  ex_opt.workers = opt.workers;
  ex_opt.dispatch = (opt.seed & 1) != 0 ? sre::DispatchMode::Sharded
                                        : sre::DispatchMode::Central;
  sre::ThreadedExecutor ex(rt, ex_opt);

  const std::uint32_t burst = std::max<std::uint32_t>(1, opt.burst);
  for (std::uint32_t i = 1; i <= opt.estimates + 1; ++i) {
    const bool is_final = i == opt.estimates + 1;
    const std::uint64_t at_us = ((i - 1) / burst) * 150 + 50;
    ex.schedule_arrival(at_us, [&spec, &opt, i, is_final](std::uint64_t now) {
      spec.on_estimate(estimate_value(opt.seed, i, opt.storm_rate), i,
                       is_final, now);
    });
  }
  ex.run();

  // --- Oracles -----------------------------------------------------------
  const bool fault_injected = opt.chaos.fail_prob > 0.0;
  std::scoped_lock lk(obs.mu);
  rep.naturals = obs.naturals;
  rep.commits = obs.commits;
  rep.rollbacks = obs.rollbacks;
  rep.epochs_opened = obs.epochs_opened;
  for (const auto& [epoch, seq] : obs.emissions) rep.sink_emits += seq.size();
  rep.chaos_decisions = chaos.decisions();
  rep.finished = spec.finished();
  if (opt.chaos.record) rep.trace = chaos.trace_text();

  if (obs.naturals > 1) {
    rep.fail("natural path built " + std::to_string(obs.naturals) + " times");
  }
  if (obs.commits > 1) {
    rep.fail("committed " + std::to_string(obs.commits) + " times");
  }
  if (obs.naturals >= 1 && obs.commits >= 1) {
    rep.fail("run both committed and built the natural path");
  }
  for (const auto& [epoch, seq] : obs.emissions) {
    if (obs.dropped.count(epoch) != 0) {
      rep.fail("payload of dropped epoch " + std::to_string(epoch) +
               " reached the sink");
    }
    check_epoch_emissions(seq, epoch, rep);
  }
  if (!fault_injected) {
    // Spurious task failures can kill a check task (its verdict is never
    // delivered) or a chain/natural task (its output never lands), so these
    // completeness oracles only bind on fault-free runs.
    if (!rep.finished) rep.fail("quiesced without reaching a terminal state");
    if (obs.commits + obs.naturals != 1) {
      rep.fail("expected exactly one terminal build, saw " +
               std::to_string(obs.commits + obs.naturals));
    }
    if (rt.counters().rollbacks != obs.rollbacks) {
      rep.fail("runtime rollback counter disagrees with on_rollback calls");
    }
    if (obs.commits == 1) {
      const auto& seq = obs.emissions[obs.committed_epoch];
      if (seq.size() != opt.chain_tasks) {
        rep.fail("committed epoch emitted " + std::to_string(seq.size()) +
                 " of " + std::to_string(opt.chain_tasks) + " results");
      }
    }
    if (obs.naturals == 1) {
      for (unsigned b = 0; b < opt.chain_tasks; ++b) {
        if (!obs.natural_done[b]) rep.fail("natural output incomplete");
      }
    }
    const auto depths = rt.queue_depths();
    if (depths.open_epochs != 0 || depths.epoch_tasks != 0) {
      rep.fail("runtime epoch bookkeeping leaked after quiescence");
    }
  }
  return rep;
}

TortureReport run_wait_buffer_torture(const TortureOptions& opt) {
  TortureReport rep;
  rep.seed = opt.seed;

  ChaosSchedule chaos(opt.seed, opt.chaos);
  sre::chaos::ScopedHook chaos_guard(&chaos);

  const unsigned threads = std::max(2u, opt.workers);
  const sre::Epoch epochs = std::max<sre::Epoch>(8, opt.estimates / 2);
  const unsigned keys_per_thread = std::max(1u, opt.chain_tasks);
  const sre::Epoch retire_window = (opt.seed % 2 == 0) ? 6 : 0;

  // Per-epoch commit windows: the designated committer thread stores its id,
  // then publishes the flag with release order; the sink reads flag-then-id.
  struct Obs {
    std::mutex mu;
    std::map<sre::Epoch, std::vector<Emission>> emissions;
    std::uint64_t total = 0;
    std::vector<std::thread::id> committer;
    std::vector<std::atomic<bool>> window;
    explicit Obs(sre::Epoch n) : committer(n + 1), window(n + 1) {}
  } obs(epochs);

  tvs::WaitBuffer<unsigned, sre::Epoch>* buf_ptr = nullptr;
  // Hostile sink: slow-ish (the chaos hook sleeps at the buffer's chaos
  // points) and re-entrant — every primary-key emission adds a shadow entry
  // for the same epoch back into the buffer mid-flush. The shadow key range
  // (>= 10'000) terminates the recursion.
  tvs::WaitBuffer<unsigned, sre::Epoch> buf(
      [&obs, &buf_ptr](const unsigned& key, sre::Epoch&& epoch,
                       std::uint64_t now_us) {
        const bool in_window =
            obs.window[epoch].load(std::memory_order_acquire) &&
            std::this_thread::get_id() == obs.committer[epoch];
        {
          std::scoped_lock lk(obs.mu);
          obs.emissions[epoch].push_back({key, in_window});
          ++obs.total;
        }
        if (key < 10'000) {
          buf_ptr->add(epoch, 10'000 + key, sre::Epoch{epoch}, now_us);
        }
      },
      retire_window);
  buf_ptr = &buf;

  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      for (sre::Epoch e = 1; e <= epochs; ++e) {
        const unsigned base = t * keys_per_thread;
        const unsigned half = (keys_per_thread + 1) / 2;
        for (unsigned k = 0; k < half; ++k) {
          buf.add(e, base + k, sre::Epoch{e}, e);
        }
        if (e % threads == t) {
          // Open this epoch's commit window: store the id, then publish the
          // flag (release); the sink reads flag-then-id. Single writer —
          // only this thread ever commits e.
          obs.committer[e] = std::this_thread::get_id();
          obs.window[e].store(true, std::memory_order_release);
          buf.commit(e, e);
          obs.window[e].store(false, std::memory_order_release);
        } else if (e % 3 == 0 && (e + 1) % threads == t) {
          // Contested epoch: a drop racing the commit. First settle wins;
          // if the drop wins, the oracle expects zero emissions for e.
          buf.drop(e);
        }
        // Late adds: race the in-flight flush, pass through after it, or
        // get discarded behind a drop/retire — all must stay ordered.
        for (unsigned k = half; k < keys_per_thread; ++k) {
          buf.add(e, base + k, sre::Epoch{e}, e);
        }
      }
    });
  }
  for (auto& th : pool) th.join();

  std::scoped_lock lk(obs.mu);
  rep.sink_emits = obs.total;
  rep.chaos_decisions = chaos.decisions();
  rep.finished = true;
  if (opt.chaos.record) rep.trace = chaos.trace_text();

  for (const auto& [epoch, seq] : obs.emissions) {
    check_epoch_emissions(seq, epoch, rep);
  }
  if (buf.total_pending() != 0) {
    rep.fail("entries left pending after every epoch settled");
  }
  if (retire_window != 0 && buf.tracked_epochs() > retire_window + 1) {
    rep.fail("watermark GC left " + std::to_string(buf.tracked_epochs()) +
             " tracked epochs (window " + std::to_string(retire_window) + ")");
  }
  return rep;
}

}  // namespace stress
