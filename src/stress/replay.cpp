#include "stress/replay.h"

#include <algorithm>
#include <utility>
#include <vector>

namespace stress {
namespace {

/// One shrink pass: mutates the options toward "smaller" and returns true,
/// or returns false when it has nothing left to take away.
using Pass = bool (*)(TortureOptions&);

bool drop_workers(TortureOptions& o) {
  if (o.workers <= 1) return false;
  o.workers = 1;
  return true;
}
bool halve_estimates(TortureOptions& o) {
  if (o.estimates <= 4) return false;
  o.estimates = std::max<std::uint32_t>(4, o.estimates / 2);
  return true;
}
bool drop_burst(TortureOptions& o) {
  if (o.burst <= 1) return false;
  o.burst = 1;
  return true;
}
bool drop_chain(TortureOptions& o) {
  if (o.chain_tasks <= 1) return false;
  o.chain_tasks = 1;
  return true;
}
bool drop_faults(TortureOptions& o) {
  if (o.chaos.fail_prob == 0.0 && o.chaos.delay_prob == 0.0) return false;
  o.chaos.fail_prob = 0.0;
  o.chaos.delay_prob = 0.0;
  return true;
}
bool drop_sleeps(TortureOptions& o) {
  if (o.chaos.sleep_prob == 0.0) return false;
  o.chaos.sleep_prob = 0.0;
  return true;
}

constexpr Pass kPasses[] = {drop_workers, drop_faults,  halve_estimates,
                            drop_burst,   drop_chain,   drop_sleeps};

}  // namespace

Replayer::Replayer(Scenario scenario, unsigned attempts_per_step)
    : scenario_(std::move(scenario)),
      attempts_per_step_(std::max(1u, attempts_per_step)) {}

TortureReport Replayer::attempt(const TortureOptions& opt,
                                unsigned& runs) const {
  TortureReport last;
  for (unsigned i = 0; i < attempts_per_step_; ++i) {
    ++runs;
    last = scenario_(opt);
    if (!last.ok) return last;
  }
  return last;
}

ReplayResult Replayer::replay(const TortureOptions& failing) {
  ReplayResult result;
  result.minimal = failing;

  // Confirm.
  TortureReport confirm = attempt(failing, result.runs);
  if (confirm.ok) {
    result.reproduced = false;
    return result;
  }
  result.reproduced = true;
  result.failure = confirm.failure;

  // Shrink to fixpoint: retry the pass list until a full sweep keeps
  // nothing. A pass survives only if the shrunk options still fail.
  bool changed = true;
  while (changed) {
    changed = false;
    for (Pass pass : kPasses) {
      TortureOptions candidate = result.minimal;
      if (!pass(candidate)) continue;
      TortureReport rep = attempt(candidate, result.runs);
      if (!rep.ok) {
        result.minimal = candidate;
        result.failure = rep.failure;
        changed = true;
      }
    }
  }

  // Record a stable trace of a minimal failing run (fall back to whatever
  // the last recorded run did if the race refuses one more encore).
  TortureOptions traced = result.minimal;
  traced.chaos.record = true;
  TortureReport rep = attempt(traced, result.runs);
  result.trace = rep.trace;
  if (!rep.ok) result.failure = rep.failure;
  return result;
}

}  // namespace stress
