// The adaptive control plane: a feedback controller that turns live
// metrics into knob movements (docs/control-plane.md).
//
// Everything in this header is *pure decision logic* — no threads, no
// locks, no clocks, no metrics dependencies. The host owns the sampling
// cadence and the application of decisions:
//
//  * serve::SessionManager runs a wall-clock control thread that derives
//    rates from the metrics Registry (metrics::DeltaView) and applies
//    decisions to live Speculators (tvs::Speculator::retune) and the
//    AdmissionController;
//  * pipeline::run_sim drives the same controller from virtual-time tick
//    events, so sim experiments (bench/ablation_control) are deterministic.
//
// The no-flap contract, enforced per knob:
//
//  * hysteresis band — a knob moves up only while its signal is above the
//    band's high edge and down only below the low edge; anywhere inside
//    the band it holds. A signal that settles between the edges therefore
//    produces zero movement, whichever side it approached from.
//  * min-dwell — after a move, the knob is frozen for min_dwell_us of the
//    host's time axis, whatever the signal does. An input oscillating
//    across the whole band moves the knob at most once per dwell period,
//    never once per sample.
//  * bounds — every knob is clamped to [lo, hi]; a saturated knob under a
//    persistent signal simply stays put (no wind-up to unwind later).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

namespace control {

/// Tuning parameters of the controller itself. The defaults are the ones
/// bench/ablation_control validates; hosts expose interval/dwell as flags.
struct ControlConfig {
  bool enabled = false;

  /// Sampling interval on the host's time axis (wall µs in service mode,
  /// virtual µs in sim).
  std::uint64_t interval_us = 50'000;
  /// Per-knob freeze after a movement. Must be >= interval_us to mean
  /// anything; several intervals is typical.
  std::uint64_t min_dwell_us = 200'000;

  // --- Speculation knobs (per stream; signal: rollbacks per second) ------
  /// Hysteresis band on the rollback rate. Above high: tighten (raise the
  /// confidence gate, raise the restart defer floor, stretch the step).
  /// Below low: relax one step back toward the configured baseline.
  double rollback_rate_high = 4.0;
  double rollback_rate_low = 0.5;
  /// Confidence-gate increment per move and its ceiling (only bites when a
  /// predictor hook is installed; harmless otherwise).
  double gate_step = 0.15;
  double gate_max = 0.9;
  /// Restart-defer-floor increment (estimate indices) and ceiling.
  std::uint32_t defer_step = 4;
  std::uint32_t defer_max = 64;
  /// Step-size ceiling as a multiple of the configured base step.
  std::uint32_t step_max_mult = 4;

  // --- Admission knobs (service-wide) ------------------------------------
  /// Hysteresis band on Interactive queue wait (µs): p95 of waits admitted
  /// this interval, or the oldest still-queued wait, whichever is larger.
  /// Above high: widen the concurrency window. Below low: reclaim it.
  double wait_high_us = 50'000;
  double wait_low_us = 5'000;
  /// Ceiling on the concurrency window (max_concurrent); the floor is the
  /// configured baseline.
  std::size_t concurrent_max = 16;
  /// Hysteresis band on the deadline-shed rate (sheds per second). Above
  /// high: shrink Bulk's queue so hopeless sessions fail fast at submit
  /// instead of dying of old age in the queue. Below low: regrow it.
  double shed_rate_high = 2.0;
  double shed_rate_low = 0.25;
  /// Floor for Bulk's queue capacity; the ceiling is the configured value.
  std::size_t bulk_queue_min = 4;
};

/// One applied knob movement — the attribution record the host logs
/// through the flight recorder / metrics path. All strings are literals.
struct Action {
  const char* knob = "";    ///< "confidence_gate", "max_concurrent", ...
  double value = 0.0;       ///< the knob's value after the move
  int direction = 0;        ///< +1 tightened/widened, -1 relaxed/reclaimed
  const char* reason = "";  ///< the signal edge that triggered it
};

/// Classifies `signal` against a hysteresis band: +1 above `high`, -1
/// below `low`, 0 inside (hold).
[[nodiscard]] int classify(double signal, double low, double high);

/// A bounded value with a movement step and a min-dwell freeze. The unit
/// the generic no-flap tests (tests/control) exercise directly.
class Knob {
 public:
  Knob(double initial, double lo, double hi, double step);

  /// Move one step up/down. Returns true iff the value actually changed
  /// (respects bounds and the dwell freeze; a blocked move does not reset
  /// the dwell clock).
  bool raise(std::uint64_t now_us, std::uint64_t dwell_us);
  bool lower(std::uint64_t now_us, std::uint64_t dwell_us);

  [[nodiscard]] double value() const { return value_; }
  [[nodiscard]] double lo() const { return lo_; }
  [[nodiscard]] double hi() const { return hi_; }
  [[nodiscard]] std::uint64_t moves() const { return moves_; }

 private:
  bool step_by(double delta, std::uint64_t now_us, std::uint64_t dwell_us);

  double value_;
  double lo_;
  double hi_;
  double step_;
  std::uint64_t last_move_us_ = 0;
  bool ever_moved_ = false;
  std::uint64_t moves_ = 0;
};

/// Per-stream speculation tuner. Signal: that stream's rollback rate
/// (rollbacks per second over the last interval). Tightening raises the
/// confidence gate and the restart defer floor and stretches the step
/// size; relaxing walks each knob one step back toward its baseline.
class SpecTuner {
 public:
  SpecTuner(const ControlConfig& cfg, double base_gate,
            std::uint32_t base_step);

  /// One control sample. Returns the movements applied (empty = hold).
  std::vector<Action> sample(double rollback_rate, std::uint64_t now_us);

  [[nodiscard]] double confidence_gate() const { return gate_.value(); }
  [[nodiscard]] std::uint32_t restart_min_defer() const;
  [[nodiscard]] std::uint32_t step_size() const;
  /// True iff any knob differs from its baseline (the host can skip the
  /// retune call entirely when nothing has ever moved).
  [[nodiscard]] bool tightened() const;
  [[nodiscard]] std::uint64_t retunes() const { return retunes_; }

 private:
  ControlConfig cfg_;
  Knob gate_;
  Knob defer_;
  Knob step_;
  std::uint64_t retunes_ = 0;
};

/// The admission limits the tuner manages, in host-neutral form; the
/// serving layer maps them onto ShedPolicy::Config + its slot count.
struct AdmissionLimits {
  std::size_t max_concurrent = 4;
  std::size_t bulk_queue_cap = 64;
};

/// Service-wide admission tuner. Two independent loops: Interactive queue
/// wait drives the concurrency window; the deadline-shed rate drives
/// Bulk's queue capacity.
class AdmissionTuner {
 public:
  AdmissionTuner(const ControlConfig& cfg, AdmissionLimits base);

  std::vector<Action> sample(double interactive_wait_us,
                             double deadline_shed_rate, std::uint64_t now_us);

  [[nodiscard]] AdmissionLimits limits() const;
  [[nodiscard]] std::uint64_t retunes() const { return retunes_; }

 private:
  ControlConfig cfg_;
  Knob concurrent_;
  Knob bulk_cap_;
  std::uint64_t retunes_ = 0;
};

/// The feedback controller: one admission tuner plus a speculation tuner
/// per live stream, sharing one ControlConfig. Still pure logic — the
/// host serializes access (the SessionManager calls under its own lock;
/// run_sim is single-threaded by construction).
class Controller {
 public:
  Controller(ControlConfig cfg, AdmissionLimits base_admission);

  /// The tuner for stream `id`, created on first use with the given
  /// baselines (subsequent calls ignore the baselines).
  SpecTuner& stream(std::uint64_t id, double base_gate,
                    std::uint32_t base_step);
  /// Forgets a finished stream's tuner (bounds memory in a long service).
  void drop_stream(std::uint64_t id);
  [[nodiscard]] std::size_t streams() const { return streams_.size(); }

  [[nodiscard]] AdmissionTuner& admission() { return admission_; }
  [[nodiscard]] const AdmissionTuner& admission() const { return admission_; }
  [[nodiscard]] const ControlConfig& config() const { return cfg_; }

 private:
  ControlConfig cfg_;
  AdmissionTuner admission_;
  std::map<std::uint64_t, SpecTuner> streams_;
};

}  // namespace control
