#include "control/controller.h"

#include <algorithm>
#include <cmath>

namespace control {

int classify(double signal, double low, double high) {
  if (signal > high) return 1;
  if (signal < low) return -1;
  return 0;
}

Knob::Knob(double initial, double lo, double hi, double step)
    : value_(std::clamp(initial, lo, hi)), lo_(lo), hi_(hi), step_(step) {}

bool Knob::step_by(double delta, std::uint64_t now_us,
                   std::uint64_t dwell_us) {
  if (ever_moved_ && now_us < last_move_us_ + dwell_us) return false;
  const double next = std::clamp(value_ + delta, lo_, hi_);
  if (next == value_) return false;
  value_ = next;
  last_move_us_ = now_us;
  ever_moved_ = true;
  ++moves_;
  return true;
}

bool Knob::raise(std::uint64_t now_us, std::uint64_t dwell_us) {
  return step_by(step_, now_us, dwell_us);
}

bool Knob::lower(std::uint64_t now_us, std::uint64_t dwell_us) {
  return step_by(-step_, now_us, dwell_us);
}

SpecTuner::SpecTuner(const ControlConfig& cfg, double base_gate,
                     std::uint32_t base_step)
    : cfg_(cfg),
      gate_(base_gate, base_gate, std::max(base_gate, cfg.gate_max),
            cfg.gate_step),
      defer_(0.0, 0.0, static_cast<double>(cfg.defer_max),
             static_cast<double>(std::max<std::uint32_t>(1, cfg.defer_step))),
      step_(static_cast<double>(base_step), static_cast<double>(base_step),
            static_cast<double>(base_step) *
                static_cast<double>(std::max<std::uint32_t>(1, cfg.step_max_mult)),
            static_cast<double>(std::max<std::uint32_t>(1, base_step))) {}

std::vector<Action> SpecTuner::sample(double rollback_rate,
                                      std::uint64_t now_us) {
  std::vector<Action> out;
  const int c =
      classify(rollback_rate, cfg_.rollback_rate_low, cfg_.rollback_rate_high);
  if (c == 0) return out;
  const char* reason =
      c > 0 ? "rollback_rate_high" : "rollback_rate_low";
  const auto move = [&](Knob& k, const char* name) {
    const bool changed = c > 0 ? k.raise(now_us, cfg_.min_dwell_us)
                               : k.lower(now_us, cfg_.min_dwell_us);
    if (changed) out.push_back({name, k.value(), c, reason});
  };
  move(gate_, "confidence_gate");
  move(defer_, "restart_min_defer");
  move(step_, "step_size");
  if (!out.empty()) ++retunes_;
  return out;
}

std::uint32_t SpecTuner::restart_min_defer() const {
  return static_cast<std::uint32_t>(std::lround(defer_.value()));
}

std::uint32_t SpecTuner::step_size() const {
  return static_cast<std::uint32_t>(std::lround(step_.value()));
}

bool SpecTuner::tightened() const {
  return gate_.value() > gate_.lo() || defer_.value() > defer_.lo() ||
         step_.value() > step_.lo();
}

AdmissionTuner::AdmissionTuner(const ControlConfig& cfg, AdmissionLimits base)
    : cfg_(cfg),
      concurrent_(static_cast<double>(base.max_concurrent),
                  static_cast<double>(base.max_concurrent),
                  static_cast<double>(std::max(cfg.concurrent_max,
                                               base.max_concurrent)),
                  1.0),
      bulk_cap_(static_cast<double>(base.bulk_queue_cap),
                static_cast<double>(
                    std::min(cfg.bulk_queue_min, base.bulk_queue_cap)),
                static_cast<double>(base.bulk_queue_cap),
                static_cast<double>(std::max<std::size_t>(
                    1, base.bulk_queue_cap / 4))) {}

std::vector<Action> AdmissionTuner::sample(double interactive_wait_us,
                                           double deadline_shed_rate,
                                           std::uint64_t now_us) {
  std::vector<Action> out;
  const int w = classify(interactive_wait_us, cfg_.wait_low_us,
                         cfg_.wait_high_us);
  if (w > 0 && concurrent_.raise(now_us, cfg_.min_dwell_us)) {
    out.push_back({"max_concurrent", concurrent_.value(), 1, "wait_high"});
  } else if (w < 0 && concurrent_.lower(now_us, cfg_.min_dwell_us)) {
    out.push_back({"max_concurrent", concurrent_.value(), -1, "wait_low"});
  }
  const int s = classify(deadline_shed_rate, cfg_.shed_rate_low,
                         cfg_.shed_rate_high);
  // Shrinking under shed pressure converts late deadline sheds (a session
  // queued, aged out, and discarded — pure wasted wait) into immediate
  // submit-time queue_full sheds: the client learns "no" in microseconds
  // instead of after its deadline.
  if (s > 0 && bulk_cap_.lower(now_us, cfg_.min_dwell_us)) {
    out.push_back({"bulk_queue_cap", bulk_cap_.value(), 1, "shed_rate_high"});
  } else if (s < 0 && bulk_cap_.raise(now_us, cfg_.min_dwell_us)) {
    out.push_back({"bulk_queue_cap", bulk_cap_.value(), -1, "shed_rate_low"});
  }
  if (!out.empty()) ++retunes_;
  return out;
}

AdmissionLimits AdmissionTuner::limits() const {
  AdmissionLimits l;
  l.max_concurrent =
      static_cast<std::size_t>(std::lround(concurrent_.value()));
  l.bulk_queue_cap = static_cast<std::size_t>(std::lround(bulk_cap_.value()));
  return l;
}

Controller::Controller(ControlConfig cfg, AdmissionLimits base_admission)
    : cfg_(cfg), admission_(cfg, base_admission) {}

SpecTuner& Controller::stream(std::uint64_t id, double base_gate,
                              std::uint32_t base_step) {
  auto it = streams_.find(id);
  if (it == streams_.end()) {
    it = streams_.emplace(id, SpecTuner(cfg_, base_gate, base_step)).first;
  }
  return it->second;
}

void Controller::drop_stream(std::uint64_t id) { streams_.erase(id); }

}  // namespace control
