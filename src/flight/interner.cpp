#include "flight/interner.h"

#include <mutex>

namespace flight {

std::uint32_t NameInterner::intern(std::string_view s) {
  if (s.empty()) return 0;  // the pre-seeded "no name" id
  {
    std::shared_lock lk(mu_);
    auto it = ids_.find(s);
    if (it != ids_.end()) return it->second;
  }
  std::unique_lock lk(mu_);
  // Re-check: another thread may have inserted between the locks.
  auto [it, inserted] = ids_.try_emplace(std::string(s), 0);
  if (inserted) {
    it->second = static_cast<std::uint32_t>(by_id_.size());
    by_id_.push_back(it->first);
  }
  return it->second;
}

std::string NameInterner::name(std::uint32_t id) const {
  std::shared_lock lk(mu_);
  return id < by_id_.size() ? by_id_[id] : std::string{};
}

std::vector<std::string> NameInterner::names() const {
  std::shared_lock lk(mu_);
  return by_id_;
}

std::size_t NameInterner::size() const {
  std::shared_lock lk(mu_);
  return by_id_.size();
}

}  // namespace flight
