// Flight-recorder record: the fixed-size binary event every hot-path write
// produces. 64 bytes, POD, no strings, no heap — a worker emitting one does
// a struct copy into its SPSC ring and nothing else. Variable-length data
// (task-name stems, predictor names, session-state labels, rollback causes)
// is interned once off the hot path and referenced by id (see interner.h).
//
// Field meaning is per-kind (see the Kind table below); unused fields are
// zero. Times are engine microseconds (executor steady-clock time under the
// threaded engine, virtual time under the simulator). `stream` is the
// serving-layer session id carried by the task (0 = not session-owned).
#pragma once

#include <cstdint>

namespace flight {

/// What a record describes. Values are stable across versions — the binary
/// dump format (export.h) stores them raw.
enum class Kind : std::uint16_t {
  None = 0,
  // Task lifecycle (joined by `task` id at export time).
  TaskCreated = 1,    ///< task, stream, epoch, name=stem, a=depth, b=cost_us,
                      ///< flags=TaskClass value
  TaskDispatched = 2, ///< task, t_us, cpu
  TaskFinished = 3,   ///< task, t_us, flags&kFlagAborted
  // Epoch lifecycle.
  EpochOpened = 4,    ///< epoch
  EpochCommitted = 5, ///< epoch
  EpochAborted = 6,   ///< epoch
  RollbackCascade = 7,///< epoch, a=tasks destroyed by the abort
  // Speculation decisions.
  CheckVerdict = 8,     ///< epoch, flags&(kFlagWithin|kFlagFinal),
                        ///< a=bit-cast double tolerance margin
  PredictionScored = 9, ///< name=predictor, flags&kFlagHit,
                        ///< a=bit-cast double rel_error
  PredictorCharged = 10,///< name=predictor (a rollback was charged to it)
  SpeculationGated = 11,///< a=estimate index, b=bit-cast double confidence
  FaultInjected = 12,   ///< task, flags&kFlagFailed, a=delay_us
  // Serving layer (emitted by serve::SessionManager).
  SessionState = 13,  ///< stream, name=state label ("Queued".."Failed"), t_us
  Attribution = 14,   ///< stream, name=component label, a=microseconds
};

// Per-kind flag bits.
inline constexpr std::uint32_t kFlagAborted = 1u;  ///< TaskFinished
inline constexpr std::uint32_t kFlagWithin = 1u;   ///< CheckVerdict
inline constexpr std::uint32_t kFlagFinal = 2u;    ///< CheckVerdict
inline constexpr std::uint32_t kFlagHit = 1u;      ///< PredictionScored
inline constexpr std::uint32_t kFlagFailed = 1u;   ///< FaultInjected

struct Record {
  std::uint64_t t_us = 0;    ///< engine time (approximate for clock-less events)
  std::uint64_t stream = 0;  ///< owning session id; 0 = engine/none
  std::uint64_t task = 0;    ///< task id for task-scoped kinds
  std::uint64_t a = 0;       ///< kind-specific payload (see Kind)
  std::uint64_t b = 0;       ///< kind-specific payload (see Kind)
  std::uint32_t epoch = 0;   ///< speculation epoch; 0 = natural
  std::uint32_t name = 0;    ///< interned string id; 0 = none
  Kind kind = Kind::None;
  std::uint16_t cpu = 0;     ///< worker index for TaskDispatched
  std::uint32_t flags = 0;
  std::uint8_t pad_[8] = {}; ///< keep sizeof == 64 (one cache line)
};

static_assert(sizeof(Record) == 64, "Record must stay one cache line");

}  // namespace flight
