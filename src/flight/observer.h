// FlightObserver: the sre::Observer → flight::Record adapter.
//
// Honors the observer contract (record and return, often under the runtime
// lock): every callback builds one 64-byte Record and pushes it into the
// calling thread's SPSC ring via Recorder::emit. The only shared state it
// touches is the name interner (shared-lock fast path, leaf lock) and a
// relaxed atomic engine clock.
//
// Several runtime events carry no timestamp (task creation, epoch edges,
// speculation decisions). Those are stamped with `approx_now`: the newest
// engine time seen on any timed event (dispatch/finish/session edges) — good
// enough for window eviction and trace ordering, and exact for the events
// the latency math actually uses.
#pragma once

#include <atomic>
#include <cstdint>
#include <string_view>

#include "flight/record.h"
#include "flight/recorder.h"
#include "sre/observer.h"

namespace flight {

class FlightObserver final : public sre::Observer {
 public:
  explicit FlightObserver(Recorder& recorder) : rec_(recorder) {}

  // --- Serving-layer entry points (not Observer callbacks) ----------------

  /// Session lifecycle edge ("Queued", "Admitted", ... "Failed").
  void session_state(std::uint64_t session, std::string_view state,
                     std::uint64_t t_us);

  /// One latency-attribution component for a finished session.
  void attribution(std::uint64_t session, std::string_view component,
                   std::uint64_t us, std::uint64_t t_us);

  [[nodiscard]] std::uint64_t approx_now_us() const {
    return approx_now_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] Recorder& recorder() { return rec_; }

  // --- sre::Observer ------------------------------------------------------

  void on_task_created(const sre::TaskInfo& task) override;
  void on_dispatched(sre::TaskId task, std::uint64_t now_us,
                     unsigned cpu) override;
  void on_finished(sre::TaskId task, std::uint64_t now_us,
                   bool aborted) override;
  void on_finished_batch(const FinishedEvent* events, std::size_t n) override;
  void on_epoch_opened(sre::Epoch epoch) override;
  void on_epoch_committed(sre::Epoch epoch) override;
  void on_epoch_aborted(sre::Epoch epoch) override;
  void on_rollback_cascade(sre::Epoch epoch,
                           std::size_t tasks_destroyed) override;
  void on_check_verdict(sre::Epoch epoch, bool within, bool is_final,
                        double margin) override;
  void on_prediction_scored(const std::string& predictor, bool hit,
                            double rel_error) override;
  void on_predictor_charged(const std::string& predictor) override;
  void on_speculation_gated(std::uint32_t estimate_index,
                            double confidence) override;
  void on_fault_injected(sre::TaskId task, bool failed,
                         std::uint64_t delay_us) override;

 private:
  /// Timed events advance the approximate clock; clock-less ones read it.
  std::uint64_t advance_clock(std::uint64_t now_us);

  Recorder& rec_;
  std::atomic<std::uint64_t> approx_now_{0};
};

}  // namespace flight
