// Flight-recorder exporters: Chrome/Perfetto trace_event JSON, the compact
// binary dump (.tvsf, readable by tools/trace_dump --flight), and the
// causal-slice extraction post-mortems are built from.
//
// All entry points are pure functions over a snapshot of records plus the
// interner's name table — they never touch live rings, so they can run on
// any thread (the drainer, a CLI tool, a test) against data of any shape:
// empty windows, aborted-epoch-only traces and spanless sessions all
// produce valid output.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "flight/record.h"

namespace flight {

/// Extra context stamped into a post-mortem trace: the terminal reason and
/// the session's latency attribution breakdown, emitted as an instant event
/// so the dump is self-describing.
struct PostMortemInfo {
  std::uint64_t session = 0;
  std::string reason;  ///< e.g. "failed: unreadable input", "shed: queue_full"
  std::vector<std::pair<std::string, std::uint64_t>> attribution_us;
};

/// Chrome trace_event JSON (array form — loads in chrome://tracing and
/// ui.perfetto.dev). Emits causally-grouped spans: one process per session
/// (pid = stream id, pid 0 = engine), with the session lifecycle span on
/// tid 0, epoch spans on tid 1 and task spans on tid 2+cpu, plus instant
/// events for speculation decisions (check verdicts, rollback causes,
/// predictor charges, gating) and attribution records.
[[nodiscard]] std::string to_chrome_trace(
    const std::vector<Record>& records, const std::vector<std::string>& names,
    const PostMortemInfo* post_mortem = nullptr);

/// Compact binary dump: magic "TVSF", version, interned name table, then
/// raw 64-byte records. Same-machine format (native endianness).
[[nodiscard]] std::string write_binary(const std::vector<Record>& records,
                                       const std::vector<std::string>& names);

struct Dump {
  std::vector<std::string> names;
  std::vector<Record> records;
};

/// Parses write_binary output. Throws std::runtime_error on malformed input.
[[nodiscard]] Dump read_binary(const std::string& bytes);

/// The causal slice for one session: every record owned by the session's
/// stream, everything in the speculation epochs those records touch
/// (check verdicts, epoch lifecycle, rollback cascades), the full lifecycle
/// of every task so reached, and global speculation-decision records
/// (prediction scores, predictor charges, gate denials). When
/// `last_window_us` > 0, timed records older than that window before the
/// slice's newest timestamp are dropped — the post-mortem's "last N
/// seconds" contract. Clock-less records (t_us == 0) always survive.
[[nodiscard]] std::vector<Record> session_slice(
    const std::vector<Record>& window, std::uint64_t session,
    std::uint64_t last_window_us = 0);

}  // namespace flight
