// Recorder: the always-on flight recorder core.
//
// Every emitting thread gets its own SPSC ring, bound lazily on first emit
// through a thread-local slot (generation-checked so a recorder destroyed
// and reallocated at the same address can never alias a stale binding). The
// hot path is emit(): one thread-local check, one 64-byte copy into the
// ring, no lock, no allocation. A full ring — or a thread beyond
// `max_threads` — drops the record and bumps a counter; tracing never
// applies backpressure to the engine.
//
// A background drainer snapshots all rings every `drain_interval_us` into a
// bounded in-memory window, evicting from the front once the window exceeds
// `window_max_records` or `window_us` behind the newest timestamp seen.
// Exports (Chrome JSON, .tvsf binary, per-session post-mortems) operate on
// a snapshot of that window and can run from any thread.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "flight/interner.h"
#include "flight/record.h"
#include "flight/ring.h"

namespace flight {

class Recorder {
 public:
  struct Options {
    std::size_t ring_capacity = 8192;  ///< records per producer ring
    std::size_t max_threads = 64;      ///< rings allocated before dropping
    std::uint64_t window_us = 30'000'000;      ///< in-memory window span
    std::size_t window_max_records = 1'000'000;
    /// Drainer poll period. 10 ms supports ~800k records/s/thread against
    /// the default ring depth; shortening it buys fresher snapshots at the
    /// cost of more wakeups (which cost real CPU on small machines).
    std::uint64_t drain_interval_us = 10'000;
    /// Directory for automatic post-mortem dumps; empty disables them.
    std::string post_mortem_dir;
    /// "Last N seconds" bound applied to each post-mortem's causal slice.
    std::uint64_t post_mortem_window_us = 10'000'000;
  };

  Recorder();  ///< default Options
  explicit Recorder(Options opts);
  ~Recorder();

  Recorder(const Recorder&) = delete;
  Recorder& operator=(const Recorder&) = delete;

  /// Launches the drainer thread. Idempotent.
  void start();

  /// Stops the drainer after a final drain. Called by the destructor.
  void stop();

  /// Hot path: copies `r` into the calling thread's ring. Returns false
  /// (and counts a drop) when the ring is full or the thread limit is hit.
  bool emit(const Record& r);

  /// Interns a name for use in Record::name. NOT for per-record hot paths —
  /// call where the string already exists (task creation, session edges).
  std::uint32_t intern(std::string_view s) { return interner_.intern(s); }

  [[nodiscard]] const NameInterner& interner() const { return interner_; }

  /// Drains all rings now and returns a copy of the current window.
  [[nodiscard]] std::vector<Record> snapshot();

  /// Records dropped on full rings / overflow threads.
  [[nodiscard]] std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] std::size_t window_size() const;

  /// Writes the session's causal slice (bounded by post_mortem_window_us)
  /// as Chrome trace JSON into post_mortem_dir. Returns the file path, or
  /// "" when post-mortems are disabled or the write failed. Safe from any
  /// thread; does file IO — keep it off latency-sensitive paths.
  std::string write_post_mortem(
      std::uint64_t session, const std::string& reason,
      const std::vector<std::pair<std::string, std::uint64_t>>&
          attribution_us);

  /// Dumps the full current window. Return false on IO failure.
  bool dump_binary(const std::string& path);
  bool dump_chrome_trace(const std::string& path);

  [[nodiscard]] const Options& options() const { return opts_; }

 private:
  Ring* thread_ring();
  void drainer_main();
  void drain_once();
  void evict_locked();
  static bool write_file(const std::string& path, const std::string& bytes);

  const Options opts_;
  const std::uint64_t gen_;  ///< instance generation for TLS validation

  NameInterner interner_;
  std::atomic<std::uint64_t> dropped_{0};

  std::mutex mu_;  ///< guards ring registration
  std::vector<std::unique_ptr<Ring>> rings_;
  std::unordered_map<std::thread::id, Ring*> ring_by_thread_;

  std::mutex drain_mu_;  ///< serializes ring consumers (drainer + snapshot)
  mutable std::mutex window_mu_;
  std::deque<Record> window_;
  std::uint64_t newest_t_us_ = 0;

  std::atomic<bool> stop_{false};
  std::thread drainer_;
  bool started_ = false;
};

}  // namespace flight
