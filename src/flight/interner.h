// NameInterner: string → stable u32 id, collision-safe.
//
// Records carry no strings; the variable-length names (task-name stems,
// predictor names, session-state labels) are interned once and referenced
// by id. Interning happens where the string already exists — task creation,
// session lifecycle edges — never inside a per-task-completion hot path.
//
// Lookups take a shared lock (the common case: every stem after the first
// occurrence); only a first-seen string takes the exclusive lock. Ids are
// assigned densely starting at 1 (0 = "no name"), and equal strings always
// map to the same id — the table is keyed on the full string, so two
// distinct names can never share an id regardless of hash collisions.
#pragma once

#include <cstdint>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace flight {

class NameInterner {
 public:
  /// Id for `s`, assigning a fresh one on first sight. Thread-safe.
  std::uint32_t intern(std::string_view s);

  /// The string behind `id` ("" for 0 or out-of-range). Thread-safe.
  [[nodiscard]] std::string name(std::uint32_t id) const;

  /// Snapshot of the full table, indexed by id (index 0 is ""). Thread-safe.
  [[nodiscard]] std::vector<std::string> names() const;

  [[nodiscard]] std::size_t size() const;

 private:
  /// Transparent hashing: lets the shared-lock fast path probe the map with
  /// a string_view, no temporary std::string allocation.
  struct Hash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };

  mutable std::shared_mutex mu_;
  std::unordered_map<std::string, std::uint32_t, Hash, std::equal_to<>> ids_;
  std::vector<std::string> by_id_{""};  ///< id 0 reserved for "no name"
};

}  // namespace flight
