#include "flight/recorder.h"

#include <chrono>
#include <filesystem>
#include <fstream>
#include <system_error>

#include "flight/export.h"

namespace flight {
namespace {

/// Per-thread binding into whichever Recorder the thread last emitted to.
/// `gen` pairs with Recorder::gen_ so a recorder destroyed and reallocated
/// at the same address invalidates stale slots.
struct TlsSlot {
  const void* rec = nullptr;
  std::uint64_t gen = 0;
  Ring* ring = nullptr;
  bool bound = false;  ///< distinguishes "over thread limit" from "unbound"
};

thread_local TlsSlot t_slot;
std::atomic<std::uint64_t> g_recorder_gen{1};

}  // namespace

Recorder::Recorder() : Recorder(Options()) {}

Recorder::Recorder(Options opts)
    : opts_(std::move(opts)),
      gen_(g_recorder_gen.fetch_add(1, std::memory_order_relaxed)) {}

Recorder::~Recorder() { stop(); }

void Recorder::start() {
  if (started_) return;
  started_ = true;
  stop_.store(false, std::memory_order_relaxed);
  drainer_ = std::thread([this] { drainer_main(); });
}

void Recorder::stop() {
  if (!started_) return;
  stop_.store(true, std::memory_order_relaxed);
  drainer_.join();
  started_ = false;
}

Ring* Recorder::thread_ring() {
  if (t_slot.rec == this && t_slot.gen == gen_ && t_slot.bound) {
    return t_slot.ring;
  }
  Ring* ring = nullptr;
  {
    std::lock_guard lk(mu_);
    auto it = ring_by_thread_.find(std::this_thread::get_id());
    if (it != ring_by_thread_.end()) {
      ring = it->second;
    } else if (rings_.size() < opts_.max_threads) {
      rings_.push_back(std::make_unique<Ring>(opts_.ring_capacity));
      ring = rings_.back().get();
      ring_by_thread_.emplace(std::this_thread::get_id(), ring);
    }
    // else: over the thread limit — bind a null ring so this thread drops
    // cheaply instead of retaking the lock on every emit.
  }
  t_slot = TlsSlot{this, gen_, ring, true};
  return ring;
}

bool Recorder::emit(const Record& r) {
  Ring* ring = thread_ring();
  if (ring == nullptr || !ring->push(r)) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  return true;
}

void Recorder::drainer_main() {
  const auto interval = std::chrono::microseconds(opts_.drain_interval_us);
  while (!stop_.load(std::memory_order_relaxed)) {
    drain_once();
    std::this_thread::sleep_for(interval);
  }
  drain_once();  // final sweep so stop() leaves nothing in the rings
}

void Recorder::drain_once() {
  std::lock_guard dlk(drain_mu_);
  std::vector<Ring*> rings;
  {
    std::lock_guard lk(mu_);
    rings.reserve(rings_.size());
    for (const auto& r : rings_) rings.push_back(r.get());
  }
  std::vector<Record> buf;
  for (Ring* r : rings) {
    r->pop_into(buf, r->capacity());
  }
  if (buf.empty()) return;
  std::lock_guard wlk(window_mu_);
  for (const Record& rec : buf) {
    window_.push_back(rec);
    if (rec.t_us > newest_t_us_) newest_t_us_ = rec.t_us;
  }
  evict_locked();
}

void Recorder::evict_locked() {
  while (window_.size() > opts_.window_max_records) window_.pop_front();
  if (newest_t_us_ <= opts_.window_us) return;
  const std::uint64_t cutoff = newest_t_us_ - opts_.window_us;
  // The window is in drain-arrival order, which tracks time closely enough
  // that front-eviction is a faithful "last N seconds" bound.
  while (!window_.empty() && window_.front().t_us < cutoff) {
    window_.pop_front();
  }
}

std::vector<Record> Recorder::snapshot() {
  drain_once();
  std::lock_guard wlk(window_mu_);
  return {window_.begin(), window_.end()};
}

std::size_t Recorder::window_size() const {
  std::lock_guard wlk(window_mu_);
  return window_.size();
}

bool Recorder::write_file(const std::string& path, const std::string& bytes) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) return false;
  f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  f.close();
  return static_cast<bool>(f);
}

std::string Recorder::write_post_mortem(
    std::uint64_t session, const std::string& reason,
    const std::vector<std::pair<std::string, std::uint64_t>>& attribution_us) {
  if (opts_.post_mortem_dir.empty()) return {};
  const std::vector<Record> window = snapshot();
  const std::vector<Record> slice =
      session_slice(window, session, opts_.post_mortem_window_us);
  PostMortemInfo info;
  info.session = session;
  info.reason = reason;
  info.attribution_us = attribution_us;
  const std::string json = to_chrome_trace(slice, interner_.names(), &info);
  std::error_code ec;
  std::filesystem::create_directories(opts_.post_mortem_dir, ec);
  const std::string path = opts_.post_mortem_dir + "/session-" +
                           std::to_string(session) +
                           "-postmortem.trace.json";
  return write_file(path, json) ? path : std::string{};
}

bool Recorder::dump_binary(const std::string& path) {
  return write_file(path, write_binary(snapshot(), interner_.names()));
}

bool Recorder::dump_chrome_trace(const std::string& path) {
  return write_file(path, to_chrome_trace(snapshot(), interner_.names()));
}

}  // namespace flight
