// Ring: bounded single-producer / single-consumer ring of flight Records.
//
// Each emitting thread owns one (registered lazily by the Recorder); the
// drainer thread is the sole consumer of every ring. The producer side is
// the hot path: one 64-byte struct copy plus two atomic cursor ops, no lock,
// no allocation. A full ring drops the record (the Recorder counts drops) —
// always-on tracing must never apply backpressure to the engine.
//
// Synchronization mirrors sre::SpscRing: the producer publishes the cell
// with a release store of tail; the consumer acquires tail, copies the
// cells, then releases head. Cells are plain Records — safe because exactly
// one thread writes a cell between the cursor handoffs.
#pragma once

#include <atomic>
#include <cstddef>
#include <vector>

#include "flight/record.h"

namespace flight {

class Ring {
 public:
  /// `capacity` is rounded up to a power of two, minimum 2.
  explicit Ring(std::size_t capacity) {
    std::size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    cells_.resize(cap);
    mask_ = cap - 1;
  }

  Ring(const Ring&) = delete;
  Ring& operator=(const Ring&) = delete;

  [[nodiscard]] std::size_t capacity() const { return mask_ + 1; }

  /// Producer side. Returns false (and writes nothing) when full.
  bool push(const Record& r) {
    const std::size_t t = tail_.load(std::memory_order_relaxed);
    const std::size_t h = head_.load(std::memory_order_acquire);
    if (t - h > mask_) return false;
    cells_[t & mask_] = r;
    tail_.store(t + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side: appends up to `max` pending records to `out`. Returns
  /// the number drained.
  std::size_t pop_into(std::vector<Record>& out, std::size_t max) {
    std::size_t h = head_.load(std::memory_order_relaxed);
    const std::size_t t = tail_.load(std::memory_order_acquire);
    std::size_t n = 0;
    while (h != t && n < max) {
      out.push_back(cells_[h & mask_]);
      ++h;
      ++n;
    }
    head_.store(h, std::memory_order_release);
    return n;
  }

  [[nodiscard]] bool empty() const {
    return head_.load(std::memory_order_acquire) ==
           tail_.load(std::memory_order_acquire);
  }

 private:
  std::vector<Record> cells_;
  std::size_t mask_ = 0;
  alignas(64) std::atomic<std::size_t> head_{0};  ///< consumer cursor
  alignas(64) std::atomic<std::size_t> tail_{0};  ///< producer cursor
};

}  // namespace flight
