#include "flight/export.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

namespace flight {
namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 4);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// JSON-safe double: finite values as-is, anything else as 0 (NaN/inf are
/// not valid JSON number tokens).
std::string json_num(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

std::string name_of(const std::vector<std::string>& names, std::uint32_t id,
                    const char* fallback) {
  if (id != 0 && id < names.size() && !names[id].empty()) return names[id];
  return fallback;
}

double as_double(std::uint64_t bits) { return std::bit_cast<double>(bits); }

/// Join of one task's lifecycle records.
struct TaskAgg {
  std::uint32_t name = 0;
  std::uint64_t stream = 0;
  std::uint32_t epoch = 0;
  std::uint32_t cls = 0;
  std::uint64_t depth = 0;
  bool has_dispatch = false;
  bool has_finish = false;
  bool aborted = false;
  std::uint64_t dispatch_us = 0;
  std::uint64_t finish_us = 0;
  std::uint16_t cpu = 0;
};

const char* class_name(std::uint32_t cls) {
  switch (cls) {
    case 0: return "natural";
    case 1: return "speculative";
    case 2: return "control";
  }
  return "?";
}

void append_le(std::string& out, const void* p, std::size_t n) {
  out.append(static_cast<const char*>(p), n);
}

template <typename T>
T read_pod(const std::string& s, std::size_t& pos) {
  if (pos + sizeof(T) > s.size()) {
    throw std::runtime_error("flight dump: truncated");
  }
  T v;
  std::memcpy(&v, s.data() + pos, sizeof(T));
  pos += sizeof(T);
  return v;
}

}  // namespace

std::string to_chrome_trace(const std::vector<Record>& records,
                            const std::vector<std::string>& names,
                            const PostMortemInfo* post_mortem) {
  // Join task lifecycles and collect per-epoch / per-session extents.
  std::unordered_map<std::uint64_t, TaskAgg> tasks;
  struct EpochAgg {
    std::uint64_t stream = 0;
    bool committed = false, aborted = false;
    bool timed = false;
    std::uint64_t t_min = 0, t_max = 0;
    std::uint64_t cascade_tasks = 0;
  };
  std::map<std::uint32_t, EpochAgg> epochs;
  struct SessionAgg {
    bool timed = false;
    std::uint64_t t_min = 0, t_max = 0;
    std::uint32_t last_state = 0;
  };
  std::map<std::uint64_t, SessionAgg> sessions;

  auto stretch = [](bool& timed, std::uint64_t& lo, std::uint64_t& hi,
                    std::uint64_t t) {
    if (t == 0) return;
    if (!timed) {
      timed = true;
      lo = hi = t;
      return;
    }
    lo = std::min(lo, t);
    hi = std::max(hi, t);
  };

  for (const Record& r : records) {
    switch (r.kind) {
      case Kind::TaskCreated: {
        TaskAgg& t = tasks[r.task];
        t.name = r.name;
        t.stream = r.stream;
        t.epoch = r.epoch;
        t.cls = r.flags;
        t.depth = r.a;
        if (r.epoch != 0) {
          EpochAgg& e = epochs[r.epoch];
          if (r.stream != 0) e.stream = r.stream;
        }
        break;
      }
      case Kind::TaskDispatched: {
        TaskAgg& t = tasks[r.task];
        t.has_dispatch = true;
        t.dispatch_us = r.t_us;
        t.cpu = r.cpu;
        break;
      }
      case Kind::TaskFinished: {
        TaskAgg& t = tasks[r.task];
        t.has_finish = true;
        t.finish_us = r.t_us;
        t.aborted = (r.flags & kFlagAborted) != 0;
        break;
      }
      case Kind::EpochOpened:
        (void)epochs[r.epoch];
        break;
      case Kind::EpochCommitted:
        epochs[r.epoch].committed = true;
        break;
      case Kind::EpochAborted:
        epochs[r.epoch].aborted = true;
        break;
      case Kind::RollbackCascade:
        epochs[r.epoch].cascade_tasks = r.a;
        break;
      case Kind::SessionState: {
        SessionAgg& s = sessions[r.stream];
        stretch(s.timed, s.t_min, s.t_max, r.t_us);
        s.last_state = r.name;
        break;
      }
      default:
        break;
    }
  }
  for (const auto& [id, t] : tasks) {
    if (t.epoch == 0 || !t.has_dispatch || !t.has_finish) continue;
    EpochAgg& e = epochs[t.epoch];
    stretch(e.timed, e.t_min, e.t_max, t.dispatch_us);
    stretch(e.timed, e.t_min, e.t_max, t.finish_us);
  }

  std::set<std::uint64_t> pids;
  pids.insert(0);
  for (const auto& [s, agg] : sessions) pids.insert(s);
  for (const auto& [id, t] : tasks) pids.insert(t.stream);
  for (const auto& [e, agg] : epochs) pids.insert(agg.stream);
  if (post_mortem != nullptr) pids.insert(post_mortem->session);

  std::ostringstream os;
  os << "[\n";
  bool first = true;
  auto emit = [&](const std::string& ev) {
    if (!first) os << ",\n";
    first = false;
    os << "  " << ev;
  };

  // Process / thread naming metadata.
  for (const std::uint64_t pid : pids) {
    std::ostringstream ev;
    ev << "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" << pid
       << ",\"tid\":0,\"args\":{\"name\":\""
       << (pid == 0 ? std::string("engine")
                    : "session " + std::to_string(pid))
       << "\"}}";
    emit(ev.str());
  }

  // Session lifecycle spans (tid 0 in the session's process).
  for (const auto& [sid, agg] : sessions) {
    const std::string final_state = name_of(names, agg.last_state, "?");
    if (agg.timed) {
      const std::uint64_t dur =
          agg.t_max > agg.t_min ? agg.t_max - agg.t_min : 1;
      std::ostringstream ev;
      ev << "{\"name\":\"session " << sid << "\",\"cat\":\"session\","
         << "\"ph\":\"X\",\"ts\":" << agg.t_min << ",\"dur\":" << dur
         << ",\"pid\":" << sid << ",\"tid\":0,\"args\":{\"final_state\":\""
         << json_escape(final_state) << "\"}}";
      emit(ev.str());
    } else {
      // A session shed while Queued has no timed edge at all — still emit
      // a zero-ts instant so the trace names its terminal state.
      std::ostringstream ev;
      ev << "{\"name\":\"session " << sid << " [" << json_escape(final_state)
         << "]\",\"cat\":\"session\",\"ph\":\"i\",\"ts\":0,\"s\":\"g\","
         << "\"pid\":" << sid << ",\"tid\":0}";
      emit(ev.str());
    }
  }

  // Epoch spans (tid 1).
  for (const auto& [eid, agg] : epochs) {
    const char* status =
        agg.aborted ? "aborted" : (agg.committed ? "committed" : "open");
    if (agg.timed) {
      const std::uint64_t dur =
          agg.t_max > agg.t_min ? agg.t_max - agg.t_min : 1;
      std::ostringstream ev;
      ev << "{\"name\":\"epoch " << eid << " [" << status
         << "]\",\"cat\":\"epoch\",\"ph\":\"X\",\"ts\":" << agg.t_min
         << ",\"dur\":" << dur << ",\"pid\":" << agg.stream
         << ",\"tid\":1,\"args\":{\"cascade_tasks\":" << agg.cascade_tasks
         << "}}";
      emit(ev.str());
    } else {
      // Aborted-epoch-only traces: no task ever ran, so there is no span —
      // record the outcome as an instant instead.
      std::ostringstream ev;
      ev << "{\"name\":\"epoch " << eid << " [" << status
         << "]\",\"cat\":\"epoch\",\"ph\":\"i\",\"ts\":0,\"s\":\"g\","
         << "\"pid\":" << agg.stream << ",\"tid\":1}";
      emit(ev.str());
    }
  }

  // Task spans (tid 2 + worker index).
  for (const auto& [tid, t] : tasks) {
    if (!t.has_dispatch || !t.has_finish) continue;
    const std::uint64_t dur =
        t.finish_us > t.dispatch_us ? t.finish_us - t.dispatch_us : 1;
    std::ostringstream ev;
    ev << "{\"name\":\"" << json_escape(name_of(names, t.name, "task"))
       << "\",\"cat\":\"" << class_name(t.cls)
       << (t.aborted ? ",aborted" : "") << "\",\"ph\":\"X\",\"ts\":"
       << t.dispatch_us << ",\"dur\":" << dur << ",\"pid\":" << t.stream
       << ",\"tid\":" << (2 + t.cpu) << ",\"args\":{\"task\":" << tid
       << ",\"epoch\":" << t.epoch << ",\"depth\":" << t.depth << "}}";
    emit(ev.str());
  }

  // Decision / serving instants.
  for (const Record& r : records) {
    std::ostringstream ev;
    switch (r.kind) {
      case Kind::CheckVerdict: {
        const bool within = (r.flags & kFlagWithin) != 0;
        ev << "{\"name\":\"check e" << r.epoch
           << (within ? " within" : " exceeded")
           << ((r.flags & kFlagFinal) != 0 ? " (final)" : "")
           << "\",\"cat\":\"speculation\",\"ph\":\"i\",\"ts\":" << r.t_us
           << ",\"s\":\"g\",\"pid\":" << epochs[r.epoch].stream
           << ",\"tid\":1,\"args\":{\"epoch\":" << r.epoch
           << ",\"margin\":" << json_num(as_double(r.a)) << "}}";
        break;
      }
      case Kind::PredictionScored:
        ev << "{\"name\":\"scored:"
           << json_escape(name_of(names, r.name, "predictor"))
           << "\",\"cat\":\"speculation\",\"ph\":\"i\",\"ts\":" << r.t_us
           << ",\"s\":\"g\",\"pid\":0,\"tid\":1,\"args\":{\"hit\":"
           << ((r.flags & kFlagHit) != 0 ? "true" : "false")
           << ",\"rel_error\":" << json_num(as_double(r.a)) << "}}";
        break;
      case Kind::PredictorCharged:
        ev << "{\"name\":\"rollback-cause:"
           << json_escape(name_of(names, r.name, "predictor"))
           << "\",\"cat\":\"speculation\",\"ph\":\"i\",\"ts\":" << r.t_us
           << ",\"s\":\"g\",\"pid\":0,\"tid\":1,\"args\":{}}";
        break;
      case Kind::SpeculationGated:
        ev << "{\"name\":\"gated\",\"cat\":\"speculation\",\"ph\":\"i\","
           << "\"ts\":" << r.t_us << ",\"s\":\"g\",\"pid\":0,\"tid\":1,"
           << "\"args\":{\"estimate\":" << r.a
           << ",\"confidence\":" << json_num(as_double(r.b)) << "}}";
        break;
      case Kind::EpochAborted:
        ev << "{\"name\":\"rollback e" << r.epoch
           << "\",\"cat\":\"speculation\",\"ph\":\"i\",\"ts\":" << r.t_us
           << ",\"s\":\"g\",\"pid\":" << epochs[r.epoch].stream
           << ",\"tid\":1,\"args\":{\"epoch\":" << r.epoch << "}}";
        break;
      case Kind::FaultInjected:
        ev << "{\"name\":\"fault"
           << ((r.flags & kFlagFailed) != 0 ? " (failed)" : " (delayed)")
           << "\",\"cat\":\"chaos\",\"ph\":\"i\",\"ts\":" << r.t_us
           << ",\"s\":\"g\",\"pid\":0,\"tid\":1,\"args\":{\"task\":" << r.task
           << ",\"delay_us\":" << r.a << "}}";
        break;
      case Kind::SessionState:
        ev << "{\"name\":\"state:"
           << json_escape(name_of(names, r.name, "?"))
           << "\",\"cat\":\"session\",\"ph\":\"i\",\"ts\":" << r.t_us
           << ",\"s\":\"g\",\"pid\":" << r.stream << ",\"tid\":0,\"args\":{}}";
        break;
      case Kind::Attribution:
        ev << "{\"name\":\"attribution:"
           << json_escape(name_of(names, r.name, "?"))
           << "\",\"cat\":\"session\",\"ph\":\"i\",\"ts\":" << r.t_us
           << ",\"s\":\"g\",\"pid\":" << r.stream
           << ",\"tid\":0,\"args\":{\"us\":" << r.a << "}}";
        break;
      default:
        continue;
    }
    emit(ev.str());
  }

  if (post_mortem != nullptr) {
    std::ostringstream ev;
    ev << "{\"name\":\"post-mortem\",\"cat\":\"session\",\"ph\":\"i\","
       << "\"ts\":0,\"s\":\"g\",\"pid\":" << post_mortem->session
       << ",\"tid\":0,\"args\":{\"reason\":\""
       << json_escape(post_mortem->reason) << "\"";
    for (const auto& [component, us] : post_mortem->attribution_us) {
      ev << ",\"" << json_escape(component) << "_us\":" << us;
    }
    ev << "}}";
    emit(ev.str());
  }

  os << "\n]\n";
  return os.str();
}

std::string write_binary(const std::vector<Record>& records,
                         const std::vector<std::string>& names) {
  std::string out;
  out.reserve(16 + names.size() * 16 + records.size() * sizeof(Record));
  out.append("TVSF", 4);
  const std::uint32_t version = 1;
  append_le(out, &version, sizeof(version));
  const auto name_count = static_cast<std::uint32_t>(names.size());
  append_le(out, &name_count, sizeof(name_count));
  for (const std::string& n : names) {
    const auto len = static_cast<std::uint32_t>(n.size());
    append_le(out, &len, sizeof(len));
    out.append(n);
  }
  const auto record_count = static_cast<std::uint64_t>(records.size());
  append_le(out, &record_count, sizeof(record_count));
  for (const Record& r : records) {
    append_le(out, &r, sizeof(Record));
  }
  return out;
}

Dump read_binary(const std::string& bytes) {
  std::size_t pos = 0;
  if (bytes.size() < 4 || bytes.compare(0, 4, "TVSF") != 0) {
    throw std::runtime_error("flight dump: bad magic");
  }
  pos = 4;
  const auto version = read_pod<std::uint32_t>(bytes, pos);
  if (version != 1) {
    throw std::runtime_error("flight dump: unsupported version " +
                             std::to_string(version));
  }
  Dump d;
  const auto name_count = read_pod<std::uint32_t>(bytes, pos);
  d.names.reserve(name_count);
  for (std::uint32_t i = 0; i < name_count; ++i) {
    const auto len = read_pod<std::uint32_t>(bytes, pos);
    if (pos + len > bytes.size()) {
      throw std::runtime_error("flight dump: truncated name table");
    }
    d.names.emplace_back(bytes, pos, len);
    pos += len;
  }
  const auto record_count = read_pod<std::uint64_t>(bytes, pos);
  // Divide instead of multiplying: a hostile count must not overflow.
  if (record_count > (bytes.size() - pos) / sizeof(Record)) {
    throw std::runtime_error("flight dump: truncated records");
  }
  d.records.resize(record_count);
  if (record_count > 0) {
    std::memcpy(d.records.data(), bytes.data() + pos,
                record_count * sizeof(Record));
  }
  pos += static_cast<std::size_t>(record_count) * sizeof(Record);
  if (pos != bytes.size()) {
    throw std::runtime_error("flight dump: trailing garbage");
  }
  return d;
}

std::vector<Record> session_slice(const std::vector<Record>& window,
                                  std::uint64_t session,
                                  std::uint64_t last_window_us) {
  if (session == 0) return {};

  // Pass 1: epochs the session's own records touch.
  std::unordered_set<std::uint32_t> epochs;
  for (const Record& r : window) {
    if (r.stream == session && r.epoch != 0) epochs.insert(r.epoch);
  }
  // Pass 2: the task closure — every task created in the session's stream
  // or inside one of its epochs (dispatch/finish records carry only the
  // task id, so membership is resolved through TaskCreated).
  std::unordered_set<std::uint64_t> task_ids;
  for (const Record& r : window) {
    if (r.kind != Kind::TaskCreated) continue;
    if (r.stream == session || (r.epoch != 0 && epochs.contains(r.epoch))) {
      task_ids.insert(r.task);
    }
  }
  // Pass 3: collect, tracking the slice's newest timestamp for the window
  // bound. Global speculation decisions ride along — they are the "why"
  // behind the session's rollbacks.
  std::vector<Record> out;
  std::uint64_t t_end = 0;
  auto global_decision = [](Kind k) {
    return k == Kind::PredictionScored || k == Kind::PredictorCharged ||
           k == Kind::SpeculationGated;
  };
  for (const Record& r : window) {
    const bool owned = r.stream == session ||
                       (r.epoch != 0 && epochs.contains(r.epoch)) ||
                       (r.task != 0 && task_ids.contains(r.task));
    if (owned || global_decision(r.kind)) {
      out.push_back(r);
      if (owned) t_end = std::max(t_end, r.t_us);
    }
  }
  if (last_window_us > 0 && t_end > last_window_us) {
    const std::uint64_t cutoff = t_end - last_window_us;
    std::erase_if(out, [cutoff](const Record& r) {
      return r.t_us != 0 && r.t_us < cutoff;
    });
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const Record& x, const Record& y) {
                     return x.t_us < y.t_us;
                   });
  return out;
}

}  // namespace flight
