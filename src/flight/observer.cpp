#include "flight/observer.h"

#include <bit>
#include <string>

namespace flight {
namespace {

/// Task names are "stem[instance]" ("tree[41]", "count[41.3]"); interning
/// the stem keeps the name table bounded by the pipeline's stage count, not
/// the run length.
std::string_view stem_of(std::string_view name) {
  const auto bracket = name.find('[');
  return bracket == std::string_view::npos ? name : name.substr(0, bracket);
}

std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }

}  // namespace

std::uint64_t FlightObserver::advance_clock(std::uint64_t now_us) {
  if (now_us == 0) return approx_now_.load(std::memory_order_relaxed);
  std::uint64_t cur = approx_now_.load(std::memory_order_relaxed);
  while (cur < now_us && !approx_now_.compare_exchange_weak(
                             cur, now_us, std::memory_order_relaxed)) {
  }
  return now_us;
}

void FlightObserver::session_state(std::uint64_t session,
                                   std::string_view state,
                                   std::uint64_t t_us) {
  Record r;
  r.kind = Kind::SessionState;
  r.t_us = advance_clock(t_us);
  r.stream = session;
  r.name = rec_.intern(state);
  rec_.emit(r);
}

void FlightObserver::attribution(std::uint64_t session,
                                 std::string_view component, std::uint64_t us,
                                 std::uint64_t t_us) {
  Record r;
  r.kind = Kind::Attribution;
  r.t_us = advance_clock(t_us);
  r.stream = session;
  r.name = rec_.intern(component);
  r.a = us;
  rec_.emit(r);
}

void FlightObserver::on_task_created(const sre::TaskInfo& task) {
  Record r;
  r.kind = Kind::TaskCreated;
  r.t_us = approx_now_.load(std::memory_order_relaxed);
  r.task = task.id;
  r.stream = task.stream;
  r.epoch = task.epoch;
  r.name = rec_.intern(stem_of(task.name));
  r.a = static_cast<std::uint64_t>(task.depth < 0 ? 0 : task.depth);
  r.b = task.cost_us;
  r.flags = static_cast<std::uint32_t>(task.cls);
  rec_.emit(r);
}

void FlightObserver::on_dispatched(sre::TaskId task, std::uint64_t now_us,
                                   unsigned cpu) {
  Record r;
  r.kind = Kind::TaskDispatched;
  r.t_us = advance_clock(now_us);
  r.task = task;
  r.cpu = static_cast<std::uint16_t>(cpu);
  rec_.emit(r);
}

void FlightObserver::on_finished(sre::TaskId task, std::uint64_t now_us,
                                 bool aborted) {
  Record r;
  r.kind = Kind::TaskFinished;
  r.t_us = advance_clock(now_us);
  r.task = task;
  if (aborted) r.flags |= kFlagAborted;
  rec_.emit(r);
}

void FlightObserver::on_finished_batch(const FinishedEvent* events,
                                       std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    on_finished(events[i].task, events[i].now_us, events[i].aborted);
  }
}

void FlightObserver::on_epoch_opened(sre::Epoch epoch) {
  Record r;
  r.kind = Kind::EpochOpened;
  r.t_us = approx_now_.load(std::memory_order_relaxed);
  r.epoch = epoch;
  rec_.emit(r);
}

void FlightObserver::on_epoch_committed(sre::Epoch epoch) {
  Record r;
  r.kind = Kind::EpochCommitted;
  r.t_us = approx_now_.load(std::memory_order_relaxed);
  r.epoch = epoch;
  rec_.emit(r);
}

void FlightObserver::on_epoch_aborted(sre::Epoch epoch) {
  Record r;
  r.kind = Kind::EpochAborted;
  r.t_us = approx_now_.load(std::memory_order_relaxed);
  r.epoch = epoch;
  rec_.emit(r);
}

void FlightObserver::on_rollback_cascade(sre::Epoch epoch,
                                         std::size_t tasks_destroyed) {
  Record r;
  r.kind = Kind::RollbackCascade;
  r.t_us = approx_now_.load(std::memory_order_relaxed);
  r.epoch = epoch;
  r.a = tasks_destroyed;
  rec_.emit(r);
}

void FlightObserver::on_check_verdict(sre::Epoch epoch, bool within,
                                      bool is_final, double margin) {
  Record r;
  r.kind = Kind::CheckVerdict;
  r.t_us = approx_now_.load(std::memory_order_relaxed);
  r.epoch = epoch;
  if (within) r.flags |= kFlagWithin;
  if (is_final) r.flags |= kFlagFinal;
  r.a = bits(margin);
  rec_.emit(r);
}

void FlightObserver::on_prediction_scored(const std::string& predictor,
                                          bool hit, double rel_error) {
  Record r;
  r.kind = Kind::PredictionScored;
  r.t_us = approx_now_.load(std::memory_order_relaxed);
  r.name = rec_.intern(predictor);
  if (hit) r.flags |= kFlagHit;
  r.a = bits(rel_error);
  rec_.emit(r);
}

void FlightObserver::on_predictor_charged(const std::string& predictor) {
  Record r;
  r.kind = Kind::PredictorCharged;
  r.t_us = approx_now_.load(std::memory_order_relaxed);
  r.name = rec_.intern(predictor);
  rec_.emit(r);
}

void FlightObserver::on_speculation_gated(std::uint32_t estimate_index,
                                          double confidence) {
  Record r;
  r.kind = Kind::SpeculationGated;
  r.t_us = approx_now_.load(std::memory_order_relaxed);
  r.a = estimate_index;
  r.b = bits(confidence);
  rec_.emit(r);
}

void FlightObserver::on_fault_injected(sre::TaskId task, bool failed,
                                       std::uint64_t delay_us) {
  Record r;
  r.kind = Kind::FaultInjected;
  r.t_us = approx_now_.load(std::memory_order_relaxed);
  r.task = task;
  if (failed) r.flags |= kFlagFailed;
  r.a = delay_us;
  rec_.emit(r);
}

}  // namespace flight
