#include "kmeans/kmeans_pipeline.h"

#include <mutex>
#include <optional>
#include <stdexcept>

#include "core/speculator.h"
#include "core/wait_buffer.h"
#include "predict/bank.h"
#include "predict/ewma.h"
#include "predict/last_value.h"
#include "predict/stride.h"

namespace km {

struct KmeansPipeline::State {
  State(sre::Runtime& runtime, const Dataset& d, KmeansPipelineConfig config,
        bool spec_on)
      : rt(runtime), data(d), cfg(std::move(config)), speculation(spec_on) {}

  sre::Runtime& rt;
  const Dataset& data;
  KmeansPipelineConfig cfg;
  bool speculation;

  std::size_t n_blocks = 0;
  Dataset sample;  ///< training prefix (copy; small)

  std::mutex mu;
  Centroids iterate;  ///< mutated by the serial iteration chain only
  std::vector<std::shared_ptr<const Centroids>> snapshots;

  stats::BlockTrace trace;
  std::vector<std::optional<std::vector<std::uint32_t>>> out_blocks;
  Centroids committed;
  bool have_committed = false;
  bool spec_committed = false;
  std::uint64_t rollbacks = 0;
  bool natural_built = false;

  std::unique_ptr<tvs::WaitBuffer<std::size_t, std::vector<std::uint32_t>>>
      buffer;
  std::unique_ptr<tvs::Speculator<Centroids>> spec;
  std::unique_ptr<predict::PredictorBank<Centroids>> bank;

  [[nodiscard]] std::pair<std::size_t, std::size_t> block_range(
      std::size_t b) const {
    const std::size_t begin = b * cfg.block_points;
    return {begin, std::min(begin + cfg.block_points, data.size())};
  }
};

KmeansPipeline::KmeansPipeline(sre::Runtime& runtime, const Dataset& data,
                               KmeansPipelineConfig config, bool speculation)
    : st_(std::make_shared<State>(runtime, data, std::move(config),
                                  speculation)) {
  State& st = *st_;
  if (st.data.size() == 0) {
    throw std::invalid_argument("KmeansPipeline: empty dataset");
  }
  if (st.cfg.iterations == 0 || st.cfg.block_points == 0 || st.cfg.k == 0) {
    throw std::invalid_argument("KmeansPipeline: bad config");
  }
  const std::size_t sample_n =
      std::min(st.cfg.sample_points, st.data.size());
  if (sample_n < st.cfg.k) {
    throw std::invalid_argument("KmeansPipeline: sample smaller than k");
  }
  st.sample.dims = st.data.dims;
  st.sample.values.assign(st.data.values.begin(),
                          st.data.values.begin() +
                              static_cast<std::ptrdiff_t>(sample_n * st.data.dims));

  st.n_blocks = (st.data.size() + st.cfg.block_points - 1) / st.cfg.block_points;
  st.trace = stats::BlockTrace(st.n_blocks);
  st.out_blocks.resize(st.n_blocks);
  st.snapshots.resize(st.cfg.iterations);

  auto stp = st_;
  st.buffer = std::make_unique<
      tvs::WaitBuffer<std::size_t, std::vector<std::uint32_t>>>(
      [stp](const std::size_t& b, std::vector<std::uint32_t>&& labels,
            std::uint64_t) {
        std::scoped_lock lk(stp->mu);
        stp->out_blocks[b] = std::move(labels);
      },
      /*retire_window=*/8);

  if (speculation) {
    tvs::Speculator<Centroids>::Callbacks cb;
    cb.build_chain = [this](const Centroids& guess, sre::Epoch epoch,
                            std::uint32_t) {
      build_label_chain(guess, epoch);
    };
    cb.within_tolerance = [stp](const Centroids& guess,
                                const Centroids& current) {
      return assignment_disagreement(guess, current, stp->sample) <=
             stp->cfg.spec.tolerance;
    };
    cb.on_commit = [stp](sre::Epoch epoch, std::uint64_t now_us) {
      {
        std::scoped_lock lk(stp->mu);
        stp->spec_committed = true;
      }
      stp->buffer->commit(epoch, now_us);
    };
    cb.on_rollback = [stp](sre::Epoch epoch, std::uint64_t) {
      {
        std::scoped_lock lk(stp->mu);
        ++stp->rollbacks;
      }
      stp->buffer->drop(epoch);
      if (stp->bank) {
        const std::string charged = stp->bank->charge_rollback();
        if (sre::Observer* obs = stp->rt.observer()) {
          obs->on_predictor_charged(charged);
        }
      }
    };
    cb.build_natural = [this](const Centroids& final_centroids,
                              std::uint64_t) {
      build_natural(final_centroids);
    };
    st.spec = std::make_unique<tvs::Speculator<Centroids>>(
        runtime, st.cfg.spec, std::move(cb), st.cfg.check_cost_us);

    if (st.cfg.spec.predictor == tvs::PredictorMode::Bank) {
      // Score with the pipeline's own tolerance predicate: the fraction of
      // sample points a predicted iterate would assign differently.
      st.bank = std::make_unique<predict::PredictorBank<Centroids>>(
          st.cfg.spec.tolerance,
          [stp](const Centroids& pred, const Centroids& actual) {
            return assignment_disagreement(pred, actual, stp->sample);
          });
      st.bank->add(std::make_unique<predict::LastValue<Centroids>>());
      st.bank->add(std::make_unique<predict::Stride<Centroids>>());
      st.bank->add(std::make_unique<predict::Ewma<Centroids>>());
      st.bank->set_score_hook(
          [rt = &st.rt](const std::string& name, bool hit, double err) {
            if (sre::Observer* obs = rt->observer()) {
              obs->on_prediction_scored(name, hit, err);
            }
          });
      tvs::Speculator<Centroids>::PredictorHook hook;
      const auto target = static_cast<std::uint32_t>(st.cfg.iterations);
      hook.confidence = [bank = st.bank.get(), target](std::uint32_t) {
        return bank->confidence(target);
      };
      // Adopt the bank's extrapolation toward the converged centroids
      // instead of the raw early iterate (Stride reaches further down the
      // Lloyd trajectory; the checks still judge it against real iterates).
      hook.refine_guess =
          [bank = st.bank.get(), target](std::uint32_t) -> std::optional<Centroids> {
        return bank->predict(target).guess;
      };
      st.spec->set_predictor_hook(std::move(hook));
    }
  }
}

void KmeansPipeline::start() {
  auto st = st_;
  auto self = this;
  sre::TaskPtr prev;
  for (std::size_t it = 0; it < st->cfg.iterations; ++it) {
    auto iter_task = st->rt.make_task(
        "lloyd[" + std::to_string(it + 1) + "]", sre::TaskClass::Natural,
        sre::kNaturalEpoch, /*depth=*/2, st->cfg.iter_cost_us,
        [st, it](sre::TaskContext&) {
          st->iterate = it == 0 ? lloyd_step(init_centroids(st->sample,
                                                            st->cfg.k),
                                             st->sample)
                                : lloyd_step(st->iterate, st->sample);
          st->snapshots[it] = std::make_shared<const Centroids>(st->iterate);
        });
    iter_task->add_completion_hook(
        [self, it](sre::Task&, std::uint64_t done_us) {
          self->on_iterate(it, done_us);
        });
    if (prev) st->rt.add_dependency(prev, iter_task);
    prev = iter_task;
    st->rt.submit(iter_task);
  }
  for (std::size_t b = 0; b < st->n_blocks; ++b) {
    st->trace.record_arrival(b, 0);
  }
}

void KmeansPipeline::on_iterate(std::size_t k_iter, std::uint64_t now_us) {
  auto st = st_;
  const bool is_final = (k_iter + 1 == st->cfg.iterations);
  const auto index = static_cast<std::uint32_t>(k_iter + 1);
  auto snapshot = st->snapshots[k_iter];

  if (!st->spec) {
    if (is_final) build_natural(*snapshot);
    return;
  }
  // The bank sees every iterate (scoring needs the full stream), even the
  // ones the speculator will not consume.
  if (st->bank) st->bank->observe(index, *snapshot);
  if (st->spec->wants_estimate(index, is_final)) {
    st->spec->on_estimate(*snapshot, index, is_final, now_us);
  }
}

void KmeansPipeline::build_label_chain(const Centroids& guess,
                                       sre::Epoch epoch) {
  auto st = st_;
  auto centroids = std::make_shared<const Centroids>(guess);
  for (std::size_t b = 0; b < st->n_blocks; ++b) {
    const auto [begin, end] = st->block_range(b);
    auto labels = std::make_shared<std::vector<std::uint32_t>>();
    auto task = st->rt.make_task(
        "spec-label[" + std::to_string(b) + ",e" + std::to_string(epoch) + "]",
        sre::TaskClass::Speculative, epoch, /*depth=*/3,
        st->cfg.label_cost_us,
        [st, begin, end, centroids, labels](sre::TaskContext&) {
          *labels = label(*centroids, st->data, begin, end);
        });
    task->add_completion_hook(
        [st, b, labels, epoch](sre::Task&, std::uint64_t done_us) {
          {
            std::scoped_lock lk(st->mu);
            st->trace.record_done(b, done_us, /*speculative=*/true);
          }
          st->buffer->add(epoch, b, std::move(*labels), done_us);
        });
    st->rt.submit(task);
  }
  {
    std::scoped_lock lk(st->mu);
    st->committed = guess;  // provisional; rollback/natural overwrite
    st->have_committed = true;
  }
}

void KmeansPipeline::build_natural(const Centroids& final_centroids) {
  auto st = st_;
  {
    std::scoped_lock lk(st->mu);
    if (st->natural_built) {
      throw std::logic_error("KmeansPipeline: natural path built twice");
    }
    st->natural_built = true;
    st->committed = final_centroids;
    st->have_committed = true;
  }
  auto centroids = std::make_shared<const Centroids>(final_centroids);
  for (std::size_t b = 0; b < st->n_blocks; ++b) {
    const auto [begin, end] = st->block_range(b);
    auto labels = std::make_shared<std::vector<std::uint32_t>>();
    auto task = st->rt.make_task(
        "label[" + std::to_string(b) + "]", sre::TaskClass::Natural,
        sre::kNaturalEpoch, /*depth=*/3, st->cfg.label_cost_us,
        [st, begin, end, centroids, labels](sre::TaskContext&) {
          *labels = label(*centroids, st->data, begin, end);
        });
    task->add_completion_hook(
        [st, b, labels](sre::Task&, std::uint64_t done_us) {
          std::scoped_lock lk(st->mu);
          st->trace.record_done(b, done_us, /*speculative=*/false);
          st->out_blocks[b] = std::move(*labels);
        });
    st->rt.submit(task);
  }
}

std::vector<std::uint32_t> KmeansPipeline::labels() const {
  std::scoped_lock lk(st_->mu);
  std::vector<std::uint32_t> out;
  out.reserve(st_->data.size());
  for (std::size_t b = 0; b < st_->n_blocks; ++b) {
    if (!st_->out_blocks[b]) {
      throw std::logic_error("KmeansPipeline: block " + std::to_string(b) +
                             " missing");
    }
    out.insert(out.end(), st_->out_blocks[b]->begin(),
               st_->out_blocks[b]->end());
  }
  return out;
}

const Centroids& KmeansPipeline::committed_centroids() const {
  std::scoped_lock lk(st_->mu);
  if (!st_->have_committed) {
    throw std::logic_error("KmeansPipeline: no committed centroids");
  }
  return st_->committed;
}

const stats::BlockTrace& KmeansPipeline::trace() const { return st_->trace; }

bool KmeansPipeline::speculation_committed() const {
  std::scoped_lock lk(st_->mu);
  return st_->spec_committed;
}

std::uint64_t KmeansPipeline::rollbacks() const {
  std::scoped_lock lk(st_->mu);
  return st_->rollbacks;
}

stats::PredictorScoreboard KmeansPipeline::predictor_scoreboard() const {
  return st_->bank ? st_->bank->scoreboard() : stats::PredictorScoreboard{};
}

std::uint64_t KmeansPipeline::gate_denials() const {
  return st_->spec ? st_->spec->gate_denials() : 0;
}

std::string KmeansPipeline::best_predictor() const {
  return st_->bank ? st_->bank->best_name() : std::string{};
}

void KmeansPipeline::validate_complete() const {
  std::scoped_lock lk(st_->mu);
  for (std::size_t b = 0; b < st_->n_blocks; ++b) {
    if (!st_->out_blocks[b]) {
      throw std::logic_error("KmeansPipeline: incomplete output");
    }
  }
}

}  // namespace km
