// Lloyd's k-means: the substrate for the third speculation scenario.
//
// The paper's introduction names k-means among the "iterative algorithms
// ... commonly used in large computations" whose early iterates are
// speculation fodder. The streaming shape mirrors Fig. 1: a serial chain of
// Lloyd iterations (over a training sample) refines the centroids; a
// parallel labelling pass then assigns every data block. Speculating on
// early-iteration centroids lets labelling start while the solver still
// runs; the tolerance is *semantic* — the fraction of sample points whose
// assignment would change.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace km {

/// Row-major points: `dims` doubles per point.
struct Dataset {
  std::vector<double> values;
  std::size_t dims = 0;

  [[nodiscard]] std::size_t size() const {
    return dims == 0 ? 0 : values.size() / dims;
  }
  [[nodiscard]] std::span<const double> point(std::size_t i) const {
    return std::span<const double>(values).subspan(i * dims, dims);
  }
};

/// Centroids: k rows of `dims` doubles.
struct Centroids {
  std::vector<double> values;
  std::size_t dims = 0;

  [[nodiscard]] std::size_t k() const {
    return dims == 0 ? 0 : values.size() / dims;
  }
  [[nodiscard]] std::span<const double> centroid(std::size_t c) const {
    return std::span<const double>(values).subspan(c * dims, dims);
  }
  bool operator==(const Centroids&) const = default;
};

/// Deterministic Gaussian-mixture dataset: `clusters` blobs in `dims`
/// dimensions, `n` points, interleaved so every prefix sees all blobs.
[[nodiscard]] Dataset make_blobs(std::size_t n, std::size_t dims,
                                 std::size_t clusters, std::uint64_t seed,
                                 double spread = 0.35);

/// Index of the nearest centroid (squared euclidean); ties break low.
[[nodiscard]] std::uint32_t nearest(const Centroids& c,
                                    std::span<const double> point);

/// Labels every point of `data` (the parallel second pass, per block).
[[nodiscard]] std::vector<std::uint32_t> label(const Centroids& c,
                                               const Dataset& data,
                                               std::size_t begin,
                                               std::size_t end);

/// Sum of squared distances of points to their nearest centroid.
[[nodiscard]] double inertia(const Centroids& c, const Dataset& data);

/// Deterministic initialization: first-k distinct sample points.
[[nodiscard]] Centroids init_centroids(const Dataset& sample, std::size_t k);

/// One Lloyd sweep over `sample`: assign + recompute. Empty clusters keep
/// their previous centroid.
[[nodiscard]] Centroids lloyd_step(const Centroids& c, const Dataset& sample);

/// `iterations` sweeps from init_centroids.
[[nodiscard]] Centroids solve(const Dataset& sample, std::size_t k,
                              std::size_t iterations);

/// The speculation check: fraction of `sample` points whose assignment
/// differs between `guess` and `current` centroids — a semantic tolerance
/// in the paper's sense.
[[nodiscard]] double assignment_disagreement(const Centroids& guess,
                                             const Centroids& current,
                                             const Dataset& sample);

}  // namespace km
