#include "kmeans/kmeans.h"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "workload/rng.h"

namespace km {
namespace {

double sq_dist(std::span<const double> a, std::span<const double> b) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    s += d * d;
  }
  return s;
}

/// Box–Muller from our deterministic RNG.
double gaussian(wl::Rng& rng) {
  const double u1 = std::max(rng.uniform(), 1e-12);
  const double u2 = rng.uniform();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
}

}  // namespace

Dataset make_blobs(std::size_t n, std::size_t dims, std::size_t clusters,
                   std::uint64_t seed, double spread) {
  if (dims == 0 || clusters == 0) {
    throw std::invalid_argument("make_blobs: zero dims or clusters");
  }
  wl::Rng rng(wl::splitmix64(seed ^ 0x4a3aULL));

  // Blob centers on a deterministic lattice-ish layout, well separated.
  std::vector<double> centers(clusters * dims);
  for (std::size_t c = 0; c < clusters; ++c) {
    for (std::size_t d = 0; d < dims; ++d) {
      centers[c * dims + d] =
          static_cast<double>((c * 7 + d * 3) % clusters) * 2.0 +
          rng.uniform() * 0.5;
    }
  }

  Dataset data;
  data.dims = dims;
  data.values.resize(n * dims);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t c = i % clusters;  // interleaved: every prefix is fair
    for (std::size_t d = 0; d < dims; ++d) {
      data.values[i * dims + d] =
          centers[c * dims + d] + spread * gaussian(rng);
    }
  }
  return data;
}

std::uint32_t nearest(const Centroids& c, std::span<const double> point) {
  std::uint32_t best = 0;
  double best_d = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < c.k(); ++i) {
    const double d = sq_dist(c.centroid(i), point);
    if (d < best_d) {
      best_d = d;
      best = static_cast<std::uint32_t>(i);
    }
  }
  return best;
}

std::vector<std::uint32_t> label(const Centroids& c, const Dataset& data,
                                 std::size_t begin, std::size_t end) {
  std::vector<std::uint32_t> out;
  out.reserve(end - begin);
  for (std::size_t i = begin; i < end; ++i) {
    out.push_back(nearest(c, data.point(i)));
  }
  return out;
}

double inertia(const Centroids& c, const Dataset& data) {
  double total = 0.0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    const auto p = data.point(i);
    total += sq_dist(c.centroid(nearest(c, p)), p);
  }
  return total;
}

Centroids init_centroids(const Dataset& sample, std::size_t k) {
  if (k == 0 || sample.size() < k) {
    throw std::invalid_argument("init_centroids: need at least k points");
  }
  Centroids c;
  c.dims = sample.dims;
  c.values.reserve(k * sample.dims);
  for (std::size_t i = 0; i < k; ++i) {
    const auto p = sample.point(i);
    c.values.insert(c.values.end(), p.begin(), p.end());
  }
  return c;
}

Centroids lloyd_step(const Centroids& c, const Dataset& sample) {
  const std::size_t k = c.k();
  const std::size_t dims = c.dims;
  std::vector<double> sums(k * dims, 0.0);
  std::vector<std::size_t> counts(k, 0);
  for (std::size_t i = 0; i < sample.size(); ++i) {
    const auto p = sample.point(i);
    const std::uint32_t a = nearest(c, p);
    ++counts[a];
    for (std::size_t d = 0; d < dims; ++d) {
      sums[a * dims + d] += p[d];
    }
  }
  Centroids next;
  next.dims = dims;
  next.values.resize(k * dims);
  for (std::size_t i = 0; i < k; ++i) {
    if (counts[i] == 0) {
      // Empty cluster: keep the previous centroid.
      const auto prev = c.centroid(i);
      std::copy(prev.begin(), prev.end(), next.values.begin() +
                                              static_cast<std::ptrdiff_t>(i * dims));
      continue;
    }
    for (std::size_t d = 0; d < dims; ++d) {
      next.values[i * dims + d] =
          sums[i * dims + d] / static_cast<double>(counts[i]);
    }
  }
  return next;
}

Centroids solve(const Dataset& sample, std::size_t k, std::size_t iterations) {
  Centroids c = init_centroids(sample, k);
  for (std::size_t it = 0; it < iterations; ++it) {
    c = lloyd_step(c, sample);
  }
  return c;
}

double assignment_disagreement(const Centroids& guess, const Centroids& current,
                               const Dataset& sample) {
  if (sample.size() == 0) return 0.0;
  std::size_t differ = 0;
  for (std::size_t i = 0; i < sample.size(); ++i) {
    const auto p = sample.point(i);
    if (nearest(guess, p) != nearest(current, p)) ++differ;
  }
  return static_cast<double>(differ) / static_cast<double>(sample.size());
}

}  // namespace km
