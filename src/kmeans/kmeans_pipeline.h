// KmeansPipeline: speculative clustering — the third pipeline built on the
// tvs:: speculation layer.
//
// Natural path: a serial chain of Lloyd iterations over a training sample
// refines the centroids; the final centroids configure a parallel labelling
// pass over every data block. Speculative path: an early iterate's
// centroids are adopted as the guess; labelling starts immediately under an
// epoch; checks compare the guess against newer iterates with the
// *assignment disagreement* tolerance (fraction of sample points that would
// switch clusters) — a semantic check in the paper's sense.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/config.h"
#include "kmeans/kmeans.h"
#include "predict/predictor.h"
#include "sre/runtime.h"
#include "stats/predictor_stats.h"
#include "stats/trace.h"

namespace predict {

/// Flat view of centroids so the generic predictors (LastValue, Stride,
/// Ewma) can extrapolate Lloyd iterates per coordinate.
template <>
struct ValueTraits<km::Centroids> {
  static void flatten(const km::Centroids& c, std::vector<double>& out) {
    out = c.values;
  }
  [[nodiscard]] static km::Centroids unflatten(const km::Centroids& like,
                                               std::span<const double> flat) {
    km::Centroids c;
    c.dims = like.dims;
    c.values.assign(flat.begin(), flat.end());
    return c;
  }
};

}  // namespace predict

namespace km {

struct KmeansPipelineConfig {
  std::size_t k = 8;
  std::size_t iterations = 15;
  std::size_t sample_points = 2048;  ///< training sample = first N points
  std::size_t block_points = 4096;   ///< labelling granularity
  tvs::SpecConfig spec;  ///< tolerance = max assignment disagreement
  std::uint64_t iter_cost_us = 600;
  std::uint64_t label_cost_us = 350;
  std::uint64_t check_cost_us = 40;
};

class KmeansPipeline {
 public:
  /// `data` must outlive the run.
  KmeansPipeline(sre::Runtime& runtime, const Dataset& data,
                 KmeansPipelineConfig config, bool speculation);

  /// Submits the iteration chain; all data blocks are available from t=0.
  void start();

  // --- Results (valid after the executor run) ------------------------------

  /// Per-point cluster labels, assembled from committed blocks.
  [[nodiscard]] std::vector<std::uint32_t> labels() const;

  /// The centroids the committed labelling used.
  [[nodiscard]] const Centroids& committed_centroids() const;

  [[nodiscard]] const stats::BlockTrace& trace() const;
  [[nodiscard]] bool speculation_committed() const;
  [[nodiscard]] std::uint64_t rollbacks() const;
  void validate_complete() const;

  /// Per-predictor accuracy counters (empty under PredictorMode::Baseline).
  [[nodiscard]] stats::PredictorScoreboard predictor_scoreboard() const;

  /// Epoch-opens withheld by the confidence gate (0 without a gate).
  [[nodiscard]] std::uint64_t gate_denials() const;

  /// Name of the bank's current best predictor ("" under Baseline).
  [[nodiscard]] std::string best_predictor() const;

 private:
  struct State;

  void on_iterate(std::size_t k_iter, std::uint64_t now_us);
  void build_label_chain(const Centroids& guess, sre::Epoch epoch);
  void build_natural(const Centroids& final_centroids);

  std::shared_ptr<State> st_;
};

}  // namespace km
