#include "core/config.h"

#include <sstream>

namespace tvs {

std::string to_string(VerifyMode m) {
  switch (m) {
    case VerifyMode::EveryKth: return "every-kth";
    case VerifyMode::Optimistic: return "optimistic";
    case VerifyMode::Full: return "full";
  }
  return "?";
}

std::string to_string(PredictorMode m) {
  switch (m) {
    case PredictorMode::Baseline: return "baseline";
    case PredictorMode::Bank: return "bank";
  }
  return "?";
}

std::string SpecConfig::to_string() const {
  std::ostringstream os;
  os << "step=" << step_size << " verify=" << tvs::to_string(verify.mode);
  if (verify.mode == VerifyMode::EveryKth) os << "(" << verify.every << ")";
  os << " tol=" << tolerance * 100.0 << "%";
  if (adaptive_restart) os << " adaptive";
  if (restart_min_defer > 0) os << " defer>=" << restart_min_defer;
  if (predictor != PredictorMode::Baseline) {
    os << " pred=" << tvs::to_string(predictor);
    if (confidence_gate > 0.0) os << " gate=" << confidence_gate;
  }
  return os.str();
}

}  // namespace tvs
