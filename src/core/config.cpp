#include "core/config.h"

#include <sstream>

namespace tvs {

std::string to_string(VerifyMode m) {
  switch (m) {
    case VerifyMode::EveryKth: return "every-kth";
    case VerifyMode::Optimistic: return "optimistic";
    case VerifyMode::Full: return "full";
  }
  return "?";
}

std::string SpecConfig::to_string() const {
  std::ostringstream os;
  os << "step=" << step_size << " verify=" << tvs::to_string(verify.mode);
  if (verify.mode == VerifyMode::EveryKth) os << "(" << verify.every << ")";
  os << " tol=" << tolerance * 100.0 << "%";
  return os.str();
}

}  // namespace tvs
