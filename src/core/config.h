// Speculation configuration: the degrees of freedom the paper studies.
//
//  * speculation frequency — the *step size*: a new speculative value is
//    adopted at every step_size-th estimate while no speculation is active
//    (Fig. 5 sweeps 1..32);
//  * verification frequency — when an active speculation is re-checked
//    against the newest estimate (Fig. 6: baseline every-8th, optimistic
//    final-only, full every-estimate);
//  * tolerance — the programmer-defined relative error margin (Fig. 9 sweeps
//    1 %, 2 %, 5 %);
//  * dispatch policy — resource allocation between natural and speculative
//    tasks (Fig. 3/4: conservative, aggressive, balanced), carried by the
//    runtime's ReadyPool rather than here.
#pragma once

#include <cstdint>
#include <string>

namespace tvs {

enum class VerifyMode : std::uint8_t {
  EveryKth,   ///< check when the estimate index is a multiple of `every`
  Optimistic, ///< single check against the final value only
  Full,       ///< check at every estimate; re-speculate immediately on failure
};

struct VerificationPolicy {
  VerifyMode mode = VerifyMode::EveryKth;
  std::uint32_t every = 8;  ///< used by EveryKth

  [[nodiscard]] static VerificationPolicy every_kth(std::uint32_t k) {
    return {VerifyMode::EveryKth, k};
  }
  [[nodiscard]] static VerificationPolicy optimistic() {
    return {VerifyMode::Optimistic, 0};
  }
  [[nodiscard]] static VerificationPolicy full() {
    return {VerifyMode::Full, 0};
  }

  /// Should an active speculation be checked at estimate `index`
  /// (1-based)? The final estimate is always checked — it decides commit.
  [[nodiscard]] bool should_check(std::uint32_t index, bool is_final) const {
    if (is_final) return true;
    switch (mode) {
      case VerifyMode::EveryKth:
        return every != 0 && index % every == 0;
      case VerifyMode::Optimistic:
        return false;
      case VerifyMode::Full:
        return true;
    }
    return false;
  }
};

/// Where a pipeline's speculation guesses come from.
enum class PredictorMode : std::uint8_t {
  Baseline,  ///< hand-rolled: adopt the newest estimate (the paper's path)
  Bank,      ///< race a predict::PredictorBank and adopt its best guess
};

struct SpecConfig {
  /// Open a new speculation at estimates step_size, 2·step_size, … (while
  /// none is active). step_size == 0 disables speculation.
  std::uint32_t step_size = 1;

  VerificationPolicy verify = VerificationPolicy::every_kth(8);

  /// Relative tolerance margin (fraction): the paper's baseline is 1 % of
  /// the compressed size.
  double tolerance = 0.01;

  /// Adaptive speculation restart (an extension; the paper leaves the step
  /// size as a manually tuned knob, §V-B / Fig. 5). When enabled, a failed
  /// speculation does not restart immediately: the next guess must be
  /// backed by *twice* the prefix that produced the failure (geometric
  /// backoff on the estimate index). On inputs with a convergence
  /// threshold, the controller homes in on it — within a factor of two —
  /// without knowing it, paying at most a logarithmic number of rollbacks.
  bool adaptive_restart = false;

  /// Floor (estimate index) applied to the restart deferral after any failed
  /// speculation, with or without adaptive_restart. 0 = no floor (a
  /// non-adaptive rollback re-speculates immediately, the paper's behaviour).
  /// The control plane (src/control) raises this when the rollback rate
  /// spikes and relaxes it back to 0 when accuracy recovers.
  std::uint32_t restart_min_defer = 0;

  /// Estimate source for pipelines that support the predictor subsystem
  /// (src/predict). Baseline reproduces the paper's figures exactly.
  PredictorMode predictor = PredictorMode::Baseline;

  /// Confidence gate: with a predictor hook installed, an epoch only opens
  /// when the predicted confidence (in [0,1]) reaches this threshold.
  /// 0 disables gating; the hook-less baseline always passes.
  double confidence_gate = 0.0;

  [[nodiscard]] bool speculation_enabled() const { return step_size != 0; }

  /// True when estimate `index` should open a fresh speculation (given none
  /// is active). Estimates are 1-based; index 0 never speculates — a guess
  /// there would be backed by zero estimates, contradicting the step_size
  /// contract ("at estimates step_size, 2·step_size, …").
  [[nodiscard]] bool should_speculate(std::uint32_t index) const {
    return speculation_enabled() && index != 0 && index % step_size == 0;
  }

  [[nodiscard]] std::string to_string() const;
};

[[nodiscard]] std::string to_string(VerifyMode m);
[[nodiscard]] std::string to_string(PredictorMode m);

}  // namespace tvs
