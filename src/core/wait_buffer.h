// WaitBuffer: the paper's "where (not) to speculate" barrier.
//
// "When speculative data arrives at a state-modifying task such as writing
//  to disk or network I/O, it is buffered until the validity of the
//  speculation is confirmed." (paper §II-A)
//
// Speculative results destined for a side-effecting sink are parked here,
// keyed by epoch. A committed epoch flushes its entries to the sink (in key
// order) and turns into pass-through for later arrivals from the same epoch;
// a dropped (rolled back) epoch discards them. Natural-path results bypass
// the buffer entirely — pass them straight to the sink.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "sre/ids.h"

namespace tvs {

template <typename Key, typename Payload>
class WaitBuffer {
 public:
  /// Sink invoked with released entries and the engine time of release.
  using Sink = std::function<void(const Key&, Payload&&, std::uint64_t now_us)>;

  explicit WaitBuffer(Sink sink) : sink_(std::move(sink)) {
    if (!sink_) throw std::invalid_argument("WaitBuffer: null sink");
  }

  /// Parks a speculative result. If the epoch was already committed, the
  /// entry flows straight to the sink; if it was dropped, the entry is
  /// discarded (its producing task raced a rollback).
  void add(sre::Epoch epoch, Key key, Payload payload, std::uint64_t now_us) {
    std::unique_lock lk(mu_);
    auto st = status_.find(epoch);
    if (st != status_.end() && st->second == Status::Committed) {
      lk.unlock();
      sink_(key, std::move(payload), now_us);
      return;
    }
    if (st != status_.end() && st->second == Status::Dropped) {
      ++discarded_;
      return;
    }
    pending_[epoch].insert_or_assign(std::move(key), std::move(payload));
  }

  /// Commits an epoch: flushes buffered entries (key order) and passes
  /// through future ones.
  void commit(sre::Epoch epoch, std::uint64_t now_us) {
    std::map<Key, Payload> entries;
    {
      std::scoped_lock lk(mu_);
      status_[epoch] = Status::Committed;
      auto it = pending_.find(epoch);
      if (it != pending_.end()) {
        entries = std::move(it->second);
        pending_.erase(it);
      }
    }
    for (auto& [key, payload] : entries) {
      sink_(key, std::move(payload), now_us);
    }
  }

  /// Drops an epoch's buffered entries (rollback path).
  void drop(sre::Epoch epoch) {
    std::scoped_lock lk(mu_);
    status_[epoch] = Status::Dropped;
    auto it = pending_.find(epoch);
    if (it != pending_.end()) {
      discarded_ += it->second.size();
      pending_.erase(it);
    }
  }

  [[nodiscard]] std::size_t pending(sre::Epoch epoch) const {
    std::scoped_lock lk(mu_);
    auto it = pending_.find(epoch);
    return it == pending_.end() ? 0 : it->second.size();
  }

  [[nodiscard]] std::size_t total_pending() const {
    std::scoped_lock lk(mu_);
    std::size_t n = 0;
    for (const auto& [e, m] : pending_) n += m.size();
    return n;
  }

  /// Entries discarded by rollbacks over the buffer's lifetime.
  [[nodiscard]] std::size_t discarded() const {
    std::scoped_lock lk(mu_);
    return discarded_;
  }

 private:
  enum class Status : std::uint8_t { Committed, Dropped };

  Sink sink_;
  mutable std::mutex mu_;
  std::unordered_map<sre::Epoch, std::map<Key, Payload>> pending_;
  std::unordered_map<sre::Epoch, Status> status_;
  std::size_t discarded_ = 0;
};

}  // namespace tvs
