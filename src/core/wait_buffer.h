// WaitBuffer: the paper's "where (not) to speculate" barrier.
//
// "When speculative data arrives at a state-modifying task such as writing
//  to disk or network I/O, it is buffered until the validity of the
//  speculation is confirmed." (paper §II-A)
//
// Speculative results destined for a side-effecting sink are parked here,
// keyed by epoch. A committed epoch flushes its entries to the sink (in key
// order) and turns into pass-through for later arrivals from the same epoch;
// a dropped (rolled back) epoch discards them. Natural-path results bypass
// the buffer entirely — pass them straight to the sink.
//
// Ordering guarantee (docs/speculation.md): for a committed epoch, every
// entry buffered before commit() was called reaches the sink in ascending
// key order, before any entry that arrived after. An add() racing the commit
// queues behind the in-flight flush (the epoch is in the Flushing state) and
// is emitted by the committer in a follow-up batch — it can never jump ahead
// of, or interleave with, the ordered flush. Only once every queued entry
// has drained does the epoch become pass-through (Committed).
//
// Memory: settled epochs (committed or dropped) are retired by a watermark
// GC once they can no longer receive adds — see retire_window. Without it a
// long streaming run would leak one status entry per settled epoch.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <stdexcept>
#include <utility>

#include "sre/chaos_point.h"
#include "sre/ids.h"

namespace tvs {

template <typename Key, typename Payload>
class WaitBuffer {
 public:
  /// Sink invoked with released entries and the engine time of release.
  /// Always called with the buffer's lock released: a sink may legally call
  /// back into the buffer (its adds queue behind an in-flight flush).
  using Sink = std::function<void(const Key&, Payload&&, std::uint64_t now_us)>;

  /// `retire_window`: settled (committed/dropped) epochs older than
  /// `newest settled epoch − retire_window` are garbage-collected. The
  /// producer protocol must guarantee no task of an epoch can still emit
  /// adds once speculation has settled that many epochs beyond it (the
  /// Speculator runs one epoch at a time, so any small window is safe —
  /// the pipelines use 8). A late add for a retired epoch is discarded and
  /// counted in late_discards(). 0 = never retire (keep every epoch's
  /// status forever; the pre-GC behaviour, right for short-lived buffers).
  explicit WaitBuffer(Sink sink, sre::Epoch retire_window = 0)
      : sink_(std::move(sink)), retire_window_(retire_window) {
    if (!sink_) throw std::invalid_argument("WaitBuffer: null sink");
  }

  /// Parks a speculative result. If the epoch was already committed, the
  /// entry flows straight to the sink; if it was dropped, the entry is
  /// discarded (its producing task raced a rollback); if a commit flush is
  /// in flight, the entry queues behind it.
  void add(sre::Epoch epoch, Key key, Payload payload, std::uint64_t now_us) {
    std::unique_lock lk(mu_);
    if (epoch < retired_floor_) {
      // The epoch settled so long ago that its status was retired; the
      // protocol says nothing of it can still be producing, so treat the
      // straggler like an add racing a drop.
      ++discarded_;
      ++late_discards_;
      return;
    }
    auto st = status_.find(epoch);
    if (st != status_.end() && st->second == Status::Committed) {
      lk.unlock();
      SRE_CHAOS_POINT("wait_buffer.passthrough_window");
      sink_(key, std::move(payload), now_us);
      return;
    }
    if (st != status_.end() && st->second == Status::Dropped) {
      ++discarded_;
      return;
    }
    // No status yet (still speculative) or Flushing (a commit is mid-flush
    // on another thread): buffer. The committer's drain loop re-checks
    // pending_ after every batch, so a Flushing-state add is picked up and
    // emitted in order behind the batch currently going out.
    pending_[epoch].insert_or_assign(std::move(key), std::move(payload));
  }

  /// Commits an epoch: flushes buffered entries (key order) and passes
  /// through future ones. Racing adds queue behind the flush and are
  /// drained here, batch by batch, before the epoch turns pass-through.
  void commit(sre::Epoch epoch, std::uint64_t now_us) {
    std::unique_lock lk(mu_);
    if (epoch < retired_floor_) return;
    if (!status_.try_emplace(epoch, Status::Flushing).second) {
      return;  // already settled (or a concurrent commit owns the flush)
    }
    for (;;) {
      auto it = pending_.find(epoch);
      if (it == pending_.end() || it->second.empty()) break;
      std::map<Key, Payload> batch = std::move(it->second);
      pending_.erase(it);
      lk.unlock();
      SRE_CHAOS_POINT("wait_buffer.flush_window");
      for (auto& [key, payload] : batch) {
        sink_(key, std::move(payload), now_us);
      }
      lk.lock();
    }
    if (epoch >= retired_floor_) {  // a racing retire may have won mid-flush
      status_[epoch] = Status::Committed;
      retire_settled_locked(epoch);
    }
  }

  /// Drops an epoch's buffered entries (rollback path). A no-op if the
  /// epoch already settled (commit and drop are mutually exclusive under
  /// the speculator protocol; first settle wins).
  void drop(sre::Epoch epoch) {
    std::scoped_lock lk(mu_);
    if (epoch < retired_floor_) return;
    if (!status_.try_emplace(epoch, Status::Dropped).second) return;
    auto it = pending_.find(epoch);
    if (it != pending_.end()) {
      discarded_ += it->second.size();
      pending_.erase(it);
    }
    retire_settled_locked(epoch);
  }

  [[nodiscard]] std::size_t pending(sre::Epoch epoch) const {
    std::scoped_lock lk(mu_);
    auto it = pending_.find(epoch);
    return it == pending_.end() ? 0 : it->second.size();
  }

  [[nodiscard]] std::size_t total_pending() const {
    std::scoped_lock lk(mu_);
    std::size_t n = 0;
    for (const auto& [e, m] : pending_) n += m.size();
    return n;
  }

  /// Entries discarded by rollbacks over the buffer's lifetime.
  [[nodiscard]] std::size_t discarded() const {
    std::scoped_lock lk(mu_);
    return discarded_;
  }

  /// Subset of discarded(): adds that arrived after their epoch's status
  /// had been watermark-retired.
  [[nodiscard]] std::size_t late_discards() const {
    std::scoped_lock lk(mu_);
    return late_discards_;
  }

  /// Settled epochs whose status is still tracked (bounded by the retire
  /// window; grows without bound when retire_window == 0).
  [[nodiscard]] std::size_t tracked_epochs() const {
    std::scoped_lock lk(mu_);
    return status_.size();
  }

  /// Manual watermark GC: forget status and pending entries of every epoch
  /// below `floor`. The caller asserts no task of a retired epoch can still
  /// add; late adds are discarded (see late_discards).
  void retire_below(sre::Epoch floor) {
    std::scoped_lock lk(mu_);
    retire_below_locked(floor);
  }

 private:
  enum class Status : std::uint8_t { Flushing, Committed, Dropped };

  void retire_below_locked(sre::Epoch floor) {
    if (floor <= retired_floor_) return;
    retired_floor_ = floor;
    status_.erase(status_.begin(), status_.lower_bound(floor));
    pending_.erase(pending_.begin(), pending_.lower_bound(floor));
  }

  /// Auto-GC after `epoch` settled: epochs more than retire_window behind
  /// the newest settled epoch can no longer receive adds (producer
  /// protocol) and are forgotten.
  void retire_settled_locked(sre::Epoch epoch) {
    if (retire_window_ == 0) return;
    if (epoch > max_settled_) max_settled_ = epoch;
    if (max_settled_ > retire_window_) {
      retire_below_locked(max_settled_ - retire_window_);
    }
  }

  Sink sink_;
  const sre::Epoch retire_window_;
  mutable std::mutex mu_;
  // Ordered maps: epoch ids are monotonic, so watermark retirement is an
  // erase of a prefix range.
  std::map<sre::Epoch, std::map<Key, Payload>> pending_;
  std::map<sre::Epoch, Status> status_;
  sre::Epoch max_settled_ = 0;
  sre::Epoch retired_floor_ = 0;
  std::size_t discarded_ = 0;
  std::size_t late_discards_ = 0;
};

}  // namespace tvs
