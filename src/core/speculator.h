// Speculator<V>: the tolerant-value-speculation engine.
//
// Implements the paper's four-part programmer interface (§II-A):
//   (1) what to speculate  — the value V flowing along a DFG edge;
//   (2) how to speculate   — a stream of refining estimates of V fed through
//                            on_estimate() (prefix results, early iterates);
//   (3) where to speculate — the caller parks side-effect-bound results in a
//                            WaitBuffer and releases them from on_commit /
//                            on_rollback;
//   (4) how to validate    — a tolerance predicate comparing the adopted
//                            guess with the newest estimate.
//
// Lifecycle per run: estimates arrive with 1-based indices; while no
// speculation is active, estimate k opens an epoch if k is a step-size
// multiple (the guess is adopted and the caller's build_chain spawns the
// speculative sub-graph). While one is active, the verification policy
// schedules Check tasks: a passing non-final check changes nothing; a failing
// check triggers rollback (runtime abort + caller cleanup) and immediate
// re-speculation from the newest estimate; the final estimate's check decides
// commit or fallback to the natural path.
//
// Concurrency model (docs/speculation.md): one mutex guards all state, but
// every user callback and every call into the runtime that may re-enter user
// code runs with the mutex *released* — the unlock windows. Each mutation of
// the state machine bumps a generation counter; a continuation that re-locks
// after an unlock window compares the generation it stamped before unlocking
// and becomes a no-op if anything interleaved. This is what makes late
// verdicts, racing finals and re-entrant estimates provably harmless: the
// interleaving operation wins, the stale continuation observes the bump and
// retires. Chaos points (sre/chaos_point.h) mark each window so the torture
// harness (src/stress) can force the dangerous interleavings on demand.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <stdexcept>

#include "core/config.h"
#include "sre/chaos_point.h"
#include "sre/runtime.h"

namespace tvs {

template <typename V>
class Speculator {
 public:
  /// The state machine. Legal transitions (each bumps the generation):
  ///   Idle   → Active     estimate at a step multiple opens an epoch
  ///   Active → Idle       failing check verdict rolls the epoch back
  ///   Active → Committed  final check passes (terminal)
  ///   Idle   → Natural    final estimate with nothing speculated (terminal)
  /// The rollback path that discovers the final is already known chains
  /// Active → Idle → Natural (two transitions, one verdict).
  enum class State : std::uint8_t { Idle, Active, Committed, Natural };

  struct Callbacks {
    /// Spawns the speculative sub-graph computing from `guess` under `epoch`.
    /// `estimate_index` tells the builder how much input backs the guess.
    std::function<void(const V& guess, sre::Epoch epoch,
                       std::uint32_t estimate_index)>
        build_chain;

    /// Tolerance predicate: is `guess` still acceptable given `current`?
    std::function<bool(const V& guess, const V& current)> within_tolerance;

    /// Optional observability hook: the tolerance headroom of a check as a
    /// ratio (observed error / allowed error; < 1 passes, 0 = perfect
    /// guess). Evaluated inside the check task next to within_tolerance and
    /// reported through sre::Observer::on_check_verdict, so live metrics
    /// can see how close speculation is running to its tolerance budget.
    /// Null = margins reported as -1 (unknown).
    std::function<double(const V& guess, const V& current)> tolerance_margin;

    /// Final check passed: release the epoch's buffered results.
    std::function<void(sre::Epoch epoch, std::uint64_t now_us)> on_commit;

    /// Epoch rejected: buffered results were already aborted in the runtime;
    /// drop them from wait buffers and clean up chain state.
    std::function<void(sre::Epoch epoch, std::uint64_t now_us)> on_rollback;

    /// No committed speculation covers the output: build the natural
    /// (non-speculative) path from the final value. Called exactly once per
    /// run (the generation rule de-duplicates racing paths).
    std::function<void(const V& final_value, std::uint64_t now_us)>
        build_natural;
  };

  /// Optional hook into a value predictor (src/predict). Both members may
  /// be null independently; installing the hook never changes behaviour
  /// unless config.confidence_gate > 0 (gating) or refine_guess returns a
  /// value (guess substitution).
  struct PredictorHook {
    /// Predicted confidence, in [0,1], that a guess opened at estimate
    /// `index` would survive its checks. Compared against
    /// SpecConfig::confidence_gate before an epoch opens.
    std::function<double(std::uint32_t index)> confidence;

    /// A refined guess to adopt instead of the raw estimate when the epoch
    /// opens (e.g. the bank's extrapolation to the final value). Returning
    /// nullopt keeps the raw estimate.
    std::function<std::optional<V>(std::uint32_t index)> refine_guess;
  };

  Speculator(sre::Runtime& runtime, SpecConfig config, Callbacks callbacks,
             std::uint64_t check_cost_us = 12)
      : runtime_(runtime),
        config_(config),
        cb_(std::move(callbacks)),
        check_cost_us_(check_cost_us) {
    if (!cb_.build_chain || !cb_.within_tolerance || !cb_.on_commit ||
        !cb_.on_rollback || !cb_.build_natural) {
      throw std::invalid_argument("Speculator: all callbacks are required");
    }
  }

  /// Installs the predictor hook (see PredictorHook). Install before the
  /// first estimate arrives; not thread-safe against on_estimate.
  void set_predictor_hook(PredictorHook hook) {
    std::scoped_lock lk(mu_);
    hook_ = std::move(hook);
  }

  /// Pins `owner` — typically the pipeline state that owns this Speculator —
  /// for the lifetime of every internally-spawned check task: a strong
  /// reference is captured into each check's body and completion hook, so a
  /// stale check still in flight when the rest of the run finishes cannot
  /// outlive the object its verdict calls back into. Needed by the serving
  /// layer, which destroys session handles eagerly while stragglers drain.
  /// Held weak here because the owner owns the Speculator — a strong member
  /// reference would cycle and leak both.
  void set_task_keepalive(std::weak_ptr<const void> owner) {
    std::scoped_lock lk(mu_);
    task_keepalive_ = std::move(owner);
  }

  /// Serving-layer stream id stamped onto internally-spawned check tasks
  /// (0 = none), so per-session attribution charges check time correctly.
  void set_stream(std::uint64_t stream) {
    std::scoped_lock lk(mu_);
    stream_ = stream;
  }

  /// Does the pipeline need to materialize the estimate at `index` at all?
  /// (Estimate materialization — e.g. building a prefix Huffman tree — can
  /// itself be costly; skip it when the speculator would ignore it.)
  [[nodiscard]] bool wants_estimate(std::uint32_t index, bool is_final) const {
    std::scoped_lock lk(mu_);
    if (terminal_locked()) return false;
    if (is_final) return true;
    if (state_ == State::Idle) {
      return index >= defer_until_ && config_.should_speculate(index) &&
             clears_gate_locked(index);
    }
    return config_.verify.should_check(index, false);
  }

  /// Feeds estimate number `index` (1-based, monotonically increasing).
  /// `is_final` marks the true, complete value. `now_us` is engine time.
  void on_estimate(V value, std::uint32_t index, bool is_final,
                   std::uint64_t now_us) {
    std::unique_lock lk(mu_);
    if (terminal_locked()) return;
    latest_ = std::move(value);
    latest_index_ = index;
    latest_is_final_ = is_final;

    if (state_ == State::Idle) {
      if (is_final) {
        // Nothing speculated (or everything rolled back): natural path.
        state_ = State::Natural;
        ++generation_;
        V final_copy = *latest_;
        lk.unlock();
        SRE_CHAOS_POINT("speculator.natural_window");
        cb_.build_natural(final_copy, now_us);
        return;
      }
      if (index >= defer_until_ && config_.should_speculate(index) &&
          clears_gate_locked(index)) {
        open_epoch_locked(lk, now_us);
      }
      return;
    }

    if (config_.verify.should_check(index, is_final)) {
      spawn_check_locked(lk, is_final);
    }
  }

  // --- Introspection ---------------------------------------------------

  [[nodiscard]] State state() const {
    std::scoped_lock lk(mu_);
    return state_;
  }
  [[nodiscard]] bool finished() const {
    std::scoped_lock lk(mu_);
    return terminal_locked();
  }
  [[nodiscard]] bool committed() const {
    std::scoped_lock lk(mu_);
    return state_ == State::Committed;
  }
  [[nodiscard]] std::optional<sre::Epoch> active_epoch() const {
    std::scoped_lock lk(mu_);
    if (state_ != State::Active) return std::nullopt;
    return active_->epoch;
  }
  [[nodiscard]] SpecConfig config() const {
    std::scoped_lock lk(mu_);
    return config_;
  }

  /// Runtime retune entry point for the control plane (src/control).
  /// Atomically swaps the tuning knobs — step_size, verification policy,
  /// confidence_gate, adaptive_restart, restart_min_defer — under the same
  /// mutex that guards every state transition, so a retune is totally
  /// ordered against estimates, verdicts and unlock-window continuations:
  /// it either happens-before an estimate (which then sees the new knobs)
  /// or after (the estimate ran under the old ones); it can never tear.
  /// Structural fields are pinned to their construction values: `predictor`
  /// (the hook/bank was wired at build time) and `tolerance` (pipelines
  /// capture the tolerance into their check predicate by value — swapping
  /// it here would silently diverge from the installed callback).
  void retune(SpecConfig next) {
    std::scoped_lock lk(mu_);
    next.predictor = config_.predictor;
    next.tolerance = config_.tolerance;
    config_ = next;
    ++retunes_;
  }

  /// Number of retune() calls applied (introspection for stats/tests).
  [[nodiscard]] std::uint64_t retunes() const {
    std::scoped_lock lk(mu_);
    return retunes_;
  }

  /// State-machine transition count. Torture oracles read it to prove a
  /// quiesced run saw exactly the expected transitions; unlock-window
  /// continuations use it internally to detect interleavings.
  [[nodiscard]] std::uint64_t generation() const {
    std::scoped_lock lk(mu_);
    return generation_;
  }

  /// Epoch-opens withheld because predicted confidence missed the gate.
  [[nodiscard]] std::uint64_t gate_denials() const {
    std::scoped_lock lk(mu_);
    return gate_denials_;
  }

 private:
  struct Active {
    sre::Epoch epoch;
    V guess;
    std::uint32_t guess_index;
  };

  [[nodiscard]] bool terminal_locked() const {
    return state_ == State::Committed || state_ == State::Natural;
  }

  /// Would a guess at `index` clear the confidence gate? Counts denials
  /// (once per index) and reports them to the runtime observer. Caller
  /// holds the lock; the hook and observer must not call back in.
  [[nodiscard]] bool clears_gate_locked(std::uint32_t index) const {
    if (config_.confidence_gate <= 0.0 || !hook_.confidence) return true;
    const double conf = hook_.confidence(index);
    if (conf >= config_.confidence_gate) return true;
    if (index != last_denied_index_) {
      last_denied_index_ = index;
      ++gate_denials_;
      if (sre::Observer* obs = runtime_.observer()) {
        obs->on_speculation_gated(index, conf);
      }
    }
    return false;
  }

  /// Opens a fresh epoch from the newest estimate. Caller holds the lock;
  /// the lock is released around the user callback and re-acquired. The
  /// caller must not touch state after this returns without re-validating
  /// the generation (build_chain may have raced anything).
  void open_epoch_locked(std::unique_lock<std::mutex>& lk,
                         std::uint64_t /*now_us*/) {
    const sre::Epoch epoch = runtime_.open_epoch();
    V guess_value = *latest_;
    if (hook_.refine_guess) {
      if (std::optional<V> refined = hook_.refine_guess(latest_index_)) {
        guess_value = std::move(*refined);
      }
    }
    active_ = Active{epoch, std::move(guess_value), latest_index_};
    state_ = State::Active;
    ++generation_;
    const V guess = active_->guess;
    const std::uint32_t gix = active_->guess_index;
    lk.unlock();
    SRE_CHAOS_POINT("speculator.open_window");
    cb_.build_chain(guess, epoch, gix);
    lk.lock();
  }

  /// Spawns a Control-class check task comparing the active guess against
  /// the newest estimate. Caller holds the lock.
  void spawn_check_locked(std::unique_lock<std::mutex>& lk, bool is_final) {
    const sre::Epoch epoch = active_->epoch;
    // Copies for the task body: verdicts must be computed against the
    // values as of scheduling, not whatever is newest when the task runs.
    auto guess = std::make_shared<const V>(active_->guess);
    auto current = std::make_shared<const V>(*latest_);

    auto verdict = std::make_shared<bool>(false);
    auto margin = std::make_shared<double>(-1.0);
    // The keepalive (if set) rides in both lambdas: the task owns them until
    // it is destroyed, so an in-flight check pins the speculator's owner.
    auto keep = task_keepalive_.lock();
    auto task = runtime_.make_task(
        "check[e" + std::to_string(epoch) + (is_final ? ",final]" : "]"),
        sre::TaskClass::Control, sre::kNaturalEpoch, /*depth=*/1000,
        check_cost_us_,
        [this, keep, guess, current, verdict, margin](sre::TaskContext&) {
          *verdict = cb_.within_tolerance(*guess, *current);
          if (cb_.tolerance_margin) {
            *margin = cb_.tolerance_margin(*guess, *current);
          }
        },
        stream_);
    task->add_completion_hook([this, keep, epoch, verdict, margin, is_final](
                                  sre::Task&, std::uint64_t done_us) {
      on_verdict(epoch, *verdict, *margin, is_final, done_us);
    });
    lk.unlock();
    SRE_CHAOS_POINT("speculator.spawn_check_window");
    runtime_.submit(task);
    lk.lock();
  }

  void on_verdict(sre::Epoch epoch, bool within, double margin, bool is_final,
                  std::uint64_t now_us) {
    std::unique_lock lk(mu_);
    if (terminal_locked()) return;
    if (state_ != State::Active || active_->epoch != epoch) {
      return;  // stale verdict: the epoch already rolled back
    }
    if (sre::Observer* obs = runtime_.observer()) {
      // Only acted-on verdicts are reported; stale ones (the epoch already
      // rolled back) carry no health signal.
      obs->on_check_verdict(epoch, within, is_final, margin);
    }

    if (within) {
      if (!is_final) return;  // confidence builds; nothing changes
      // Commit: the speculative outputs stand in for the natural path.
      state_ = State::Committed;
      ++generation_;
      active_.reset();
      runtime_.mark_epoch_committed(epoch);
      lk.unlock();
      SRE_CHAOS_POINT("speculator.commit_window");
      cb_.on_commit(epoch, now_us);
      return;
    }

    // Tolerance exceeded: roll back the epoch. The state flips to Idle and
    // the generation is stamped BEFORE the unlock window — any estimate that
    // lands while abort_epoch/on_rollback run sees a coherent Idle machine
    // and may legally finish the run (late final → natural path) or open a
    // fresh epoch. The re-validation below detects that and retires this
    // continuation instead of acting twice.
    runtime_.note_rollback();
    active_.reset();
    state_ = State::Idle;
    const std::uint64_t gen = ++generation_;
    lk.unlock();
    SRE_CHAOS_POINT("speculator.rollback_window");
    runtime_.abort_epoch(epoch);
    cb_.on_rollback(epoch, now_us);
    SRE_CHAOS_POINT("speculator.rollback_window_late");
    lk.lock();
    if (generation_ != gen) {
      // A racing estimate already took the next step (built the natural
      // path or opened a new epoch). Without this check the code below
      // would run build_natural a second time — duplicate output — or
      // stack a second open on top of the racer's epoch, orphaning it.
      return;
    }

    if (latest_is_final_) {
      // The final value is known and speculation failed against it:
      // recompute along the natural path.
      state_ = State::Natural;
      ++generation_;
      V final_copy = *latest_;
      lk.unlock();
      SRE_CHAOS_POINT("speculator.natural_window");
      cb_.build_natural(final_copy, now_us);
      return;
    }
    if (config_.adaptive_restart) {
      // Geometric backoff: the failed guess was backed by latest_index_
      // estimates' worth of data; demand double before guessing again.
      // Clamped from below so the sequence is genuinely geometric: a
      // failure at index 0 (or a stale, small latest_index_) must not
      // collapse the deferral back to "retry immediately" — the next
      // boundary is at least one step, at least double the previous
      // deferral, and at least the control plane's floor.
      const std::uint64_t next = std::max(
          {static_cast<std::uint64_t>(latest_index_) * 2,
           static_cast<std::uint64_t>(defer_until_) * 2,
           static_cast<std::uint64_t>(config_.step_size),
           static_cast<std::uint64_t>(config_.restart_min_defer)});
      defer_until_ = static_cast<std::uint32_t>(
          std::min<std::uint64_t>(next, UINT32_MAX));
      return;
    }
    if (config_.restart_min_defer > latest_index_) {
      // Non-adaptive path with a control-plane floor: hold off until the
      // estimate stream reaches the floor instead of retrying immediately.
      defer_until_ = config_.restart_min_defer;
      return;
    }
    // Re-speculate immediately from the newest estimate ("a negative
    // comparison generates a new filtering task that uses the new
    // coefficients", §II-A).
    open_epoch_locked(lk, now_us);
  }

  sre::Runtime& runtime_;
  SpecConfig config_;
  Callbacks cb_;
  PredictorHook hook_;
  std::weak_ptr<const void> task_keepalive_;  ///< see set_task_keepalive
  std::uint64_t check_cost_us_;
  std::uint64_t stream_ = 0;  ///< see set_stream

  mutable std::mutex mu_;
  std::optional<V> latest_;
  std::uint32_t latest_index_ = 0;
  bool latest_is_final_ = false;
  /// Engaged exactly when state_ == Active.
  std::optional<Active> active_;
  State state_ = State::Idle;
  /// Bumped on every state transition; stamped before each unlock window
  /// and re-validated after relock (see file comment).
  std::uint64_t generation_ = 0;
  std::uint32_t defer_until_ = 0;  ///< adaptive restart: no guesses below this
  std::uint64_t retunes_ = 0;      ///< retune() calls applied

  // Gate bookkeeping is mutable: wants_estimate (const) is where a denied
  // index is usually first seen, and each index counts at most once.
  mutable std::uint64_t gate_denials_ = 0;
  mutable std::uint32_t last_denied_index_ = 0;
};

}  // namespace tvs
