// Block encoder: the paper's Encode task.
//
// Each Encode task compresses one input block with a CodeTable. Because the
// code is variable-length, a block's absolute position in the output is the
// bit offset computed by the Offset phase (offsets.h); encode_block produces
// a self-contained bit buffer which the sink splices at that offset.
//
// Bit emission has two kernels behind the tvs::simd dispatch contract
// (docs/data-plane.md): the Scalar level is the original BitWriter path,
// every other level uses a branchless packer that accumulates codes into a
// wide staging word and flushes whole big-endian 64-bit words. Outputs are
// bit-identical by contract; kernel_diff_test enforces it.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "huffman/byte_buf.h"
#include "huffman/canonical.h"

namespace huff {

/// Result of encoding one block.
struct EncodedBlock {
  ByteBuf bits;                 ///< packed MSB-first, zero-padded tail
  std::uint64_t bit_count = 0;  ///< exact number of meaningful bits
};

/// Encodes `block` with `table` into heap-owned storage. Throws
/// std::invalid_argument if the block contains a symbol with no code
/// (speculative tables built without a histogram floor could do this; the
/// pipeline prevents it).
[[nodiscard]] EncodedBlock encode_block(std::span<const std::uint8_t> block,
                                        const CodeTable& table);

/// Encodes `block` into caller-provided storage (typically bump-allocated
/// from an epoch arena) and returns a view over it. `out` must hold exactly
/// ceil(bits/8) bytes for the block under `table` — the pipeline computes
/// this from the block's histogram via CodeTable::encoded_bits, so no second
/// pass over the data is needed. Throws std::invalid_argument on a code-less
/// symbol and std::logic_error if `out` is too small (a histogram/block
/// mismatch). `keepalive` is stored in the returned ByteBuf to pin the
/// storage's owner.
[[nodiscard]] EncodedBlock encode_block_into(
    std::span<const std::uint8_t> block, const CodeTable& table,
    std::span<std::uint8_t> out, std::shared_ptr<const void> keepalive);

/// Exact encoded size of `block` in bits under `table`, without producing
/// output bits (= encoded_bits of the block's histogram; used by tests).
[[nodiscard]] std::uint64_t encoded_bit_count(
    std::span<const std::uint8_t> block, const CodeTable& table);

/// Splices pre-encoded blocks into one contiguous bit stream.
///
/// `offsets[i]` is the absolute starting bit of block i; the destination is
/// zero-initialized and sized for the final block's end. This mirrors the
/// paper's parallel second pass where offset tasks feed encode tasks.
[[nodiscard]] std::vector<std::uint8_t> assemble(
    std::span<const EncodedBlock> blocks,
    std::span<const std::uint64_t> offsets);

}  // namespace huff
