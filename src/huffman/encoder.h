// Block encoder: the paper's Encode task.
//
// Each Encode task compresses one input block with a CodeTable. Because the
// code is variable-length, a block's absolute position in the output is the
// bit offset computed by the Offset phase (offsets.h); encode_block produces
// a self-contained bit buffer which the sink splices at that offset.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "huffman/canonical.h"

namespace huff {

/// Result of encoding one block.
struct EncodedBlock {
  std::vector<std::uint8_t> bits;  ///< packed MSB-first, zero-padded tail
  std::uint64_t bit_count = 0;     ///< exact number of meaningful bits
};

/// Encodes `block` with `table`. Throws std::invalid_argument if the block
/// contains a symbol with no code (speculative tables built without a
/// histogram floor could do this; the pipeline prevents it).
[[nodiscard]] EncodedBlock encode_block(std::span<const std::uint8_t> block,
                                        const CodeTable& table);

/// Exact encoded size of `block` in bits under `table`, without producing
/// output bits (= encoded_bits of the block's histogram; used by tests).
[[nodiscard]] std::uint64_t encoded_bit_count(
    std::span<const std::uint8_t> block, const CodeTable& table);

/// Splices pre-encoded blocks into one contiguous bit stream.
///
/// `offsets[i]` is the absolute starting bit of block i; the destination is
/// zero-initialized and sized for the final block's end. This mirrors the
/// paper's parallel second pass where offset tasks feed encode tasks.
[[nodiscard]] std::vector<std::uint8_t> assemble(
    std::span<const EncodedBlock> blocks,
    std::span<const std::uint64_t> offsets);

}  // namespace huff
