#include "huffman/stream_format.h"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <stdexcept>

#include "huffman/decoder.h"
#include "huffman/encoder.h"
#include "huffman/offsets.h"

namespace huff {
namespace {

constexpr char kMagic[4] = {'T', 'V', 'S', 'H'};
constexpr std::uint16_t kVersion = 2;

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xFF));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}
void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}
void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

class Parser {
 public:
  explicit Parser(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8() { return take(1)[0]; }
  std::uint16_t u16() {
    auto b = take(2);
    return static_cast<std::uint16_t>(b[0] | (b[1] << 8));
  }
  std::uint32_t u32() {
    auto b = take(4);
    std::uint32_t v = 0;
    for (int i = 3; i >= 0; --i) v = (v << 8) | b[static_cast<std::size_t>(i)];
    return v;
  }
  std::uint64_t u64() {
    auto b = take(8);
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i) v = (v << 8) | b[static_cast<std::size_t>(i)];
    return v;
  }
  std::span<const std::uint8_t> take(std::size_t n) {
    if (pos_ + n > data_.size()) {
      throw std::runtime_error("CompressedStream: truncated input");
    }
    auto out = data_.subspan(pos_, n);
    pos_ += n;
    return out;
  }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace

std::size_t CompressedStream::serialized_size() const {
  return 4 + 2 + 8 + 4 + 4 + kSymbols + 1 + block_offsets.size() * 8 + 8 +
         payload.size();
}

std::size_t CompressedStream::block_bytes(std::size_t i) const {
  if (i >= n_blocks) {
    throw std::out_of_range("CompressedStream: block index out of range");
  }
  const std::uint64_t begin = static_cast<std::uint64_t>(i) * block_size;
  return static_cast<std::size_t>(
      std::min<std::uint64_t>(block_size, original_bytes - begin));
}

std::vector<std::uint8_t> serialize(const CompressedStream& s) {
  std::vector<std::uint8_t> out;
  out.reserve(s.serialized_size());
  out.insert(out.end(), kMagic, kMagic + 4);
  put_u16(out, kVersion);
  put_u64(out, s.original_bytes);
  put_u32(out, s.n_blocks);
  put_u32(out, s.block_size);
  out.insert(out.end(), s.lengths.begin(), s.lengths.end());
  if (s.has_index() && s.block_offsets.size() != s.n_blocks) {
    throw std::invalid_argument("serialize: index size != block count");
  }
  out.push_back(s.has_index() ? 1 : 0);
  for (std::uint64_t off : s.block_offsets) put_u64(out, off);
  put_u64(out, s.payload_bits);
  out.insert(out.end(), s.payload.begin(), s.payload.end());
  return out;
}

CompressedStream deserialize(std::span<const std::uint8_t> data) {
  Parser p(data);
  auto magic = p.take(4);
  if (std::memcmp(magic.data(), kMagic, 4) != 0) {
    throw std::runtime_error("CompressedStream: bad magic");
  }
  const std::uint16_t version = p.u16();
  if (version != kVersion) {
    throw std::runtime_error("CompressedStream: unsupported version " +
                             std::to_string(version));
  }
  CompressedStream s;
  s.original_bytes = p.u64();
  s.n_blocks = p.u32();
  s.block_size = p.u32();
  auto lens = p.take(kSymbols);
  std::copy(lens.begin(), lens.end(), s.lengths.begin());
  if (!kraft_valid(s.lengths)) {
    throw std::runtime_error("CompressedStream: invalid code lengths");
  }
  const std::uint8_t has_index = p.u8();
  if (has_index > 1) {
    throw std::runtime_error("CompressedStream: bad index flag");
  }
  if (has_index == 1) {
    s.block_offsets.reserve(s.n_blocks);
    for (std::uint32_t i = 0; i < s.n_blocks; ++i) {
      s.block_offsets.push_back(p.u64());
    }
  }
  s.payload_bits = p.u64();
  auto payload = p.take(static_cast<std::size_t>((s.payload_bits + 7) / 8));
  s.payload.assign(payload.begin(), payload.end());
  return s;
}

std::vector<std::uint8_t> compress_buffer(std::span<const std::uint8_t> data,
                                          std::uint32_t block_size,
                                          bool with_index) {
  if (block_size == 0) {
    throw std::invalid_argument("compress_buffer: block_size == 0");
  }
  CompressedStream s;
  s.original_bytes = data.size();
  s.block_size = block_size;

  const std::size_t n_blocks = (data.size() + block_size - 1) / block_size;
  s.n_blocks = static_cast<std::uint32_t>(n_blocks);

  std::vector<Histogram> hists(n_blocks);
  std::vector<std::span<const std::uint8_t>> blocks(n_blocks);
  for (std::size_t i = 0; i < n_blocks; ++i) {
    const std::size_t begin = i * block_size;
    const std::size_t len = std::min<std::size_t>(block_size, data.size() - begin);
    blocks[i] = data.subspan(begin, len);
    hists[i] = Histogram::of(blocks[i]);
  }

  const Histogram global = Histogram::merged(hists);
  const CodeTable table = CodeTable::from_histogram(global);
  s.lengths = table.lengths();

  const auto offsets = all_offsets(hists, table);
  std::vector<EncodedBlock> encoded(n_blocks);
  for (std::size_t i = 0; i < n_blocks; ++i) {
    encoded[i] = encode_block(blocks[i], table);
  }
  s.payload = assemble(encoded, offsets);
  s.payload_bits =
      n_blocks == 0 ? 0 : offsets.back() + encoded.back().bit_count;
  if (with_index) s.block_offsets = offsets;
  return serialize(s);
}

std::vector<std::uint8_t> decompress_buffer(
    std::span<const std::uint8_t> container) {
  const CompressedStream s = deserialize(container);
  if (s.original_bytes == 0) return {};
  const Decoder decoder(s.table());
  return decoder.decode(s.payload, static_cast<std::size_t>(s.original_bytes));
}

std::vector<std::uint8_t> decode_block(const CompressedStream& stream,
                                        std::size_t i) {
  if (!stream.has_index()) {
    throw std::logic_error("decode_block: container carries no block index");
  }
  if (i >= stream.n_blocks) {
    throw std::out_of_range("decode_block: block index out of range");
  }
  const Decoder decoder(stream.table());
  BitReader reader(stream.payload);
  reader.seek(stream.block_offsets[i]);
  return decoder.decode(reader, stream.block_bytes(i));
}

void write_file(const std::string& path, std::span<const std::uint8_t> bytes) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("write_file: cannot open " + path);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!out) throw std::runtime_error("write_file: write failed for " + path);
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) throw std::runtime_error("read_file: cannot open " + path);
  const std::streamsize size = in.tellg();
  in.seekg(0);
  std::vector<std::uint8_t> out(static_cast<std::size_t>(size));
  in.read(reinterpret_cast<char*>(out.data()), size);
  if (!in) throw std::runtime_error("read_file: read failed for " + path);
  return out;
}

}  // namespace huff
