#include "huffman/hist_kernels.h"

#include <cstddef>
#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define TVS_HIST_HAVE_AVX2 1
#endif

namespace huff::detail {

void hist_scalar(std::span<const std::uint8_t> data, std::uint64_t* counts) {
  for (std::uint8_t b : data) ++counts[b];
}

void hist_swar(std::span<const std::uint8_t> data, std::uint64_t* counts) {
  // Runs of equal bytes serialize on the store-to-load forwarding of a
  // single count slot; four disjoint lane tables break that dependency
  // chain, then one pass folds the lanes back into `counts`.
  std::uint64_t lanes[4][256] = {};
  const std::uint8_t* p = data.data();
  std::size_t n = data.size();
  while (n >= 4) {
    ++lanes[0][p[0]];
    ++lanes[1][p[1]];
    ++lanes[2][p[2]];
    ++lanes[3][p[3]];
    p += 4;
    n -= 4;
  }
  while (n > 0) {
    ++lanes[0][*p++];
    --n;
  }
  for (std::size_t s = 0; s < 256; ++s) {
    counts[s] += lanes[0][s] + lanes[1][s] + lanes[2][s] + lanes[3][s];
  }
}

#if TVS_HIST_HAVE_AVX2

namespace {

// Lane counters are u32, so one flush handles at most kFlushBytes input
// bytes before any single lane slot could wrap (bound: every byte equal,
// all landing in one slot of one lane — kFlushBytes/8 < 2^32).
constexpr std::size_t kFlushBytes = std::size_t{1} << 32;

__attribute__((target("avx2"))) void merge_lanes_avx2(
    const std::uint32_t lanes[8][256], std::uint64_t* counts) {
  for (std::size_t s = 0; s < 256; s += 8) {
    __m256i sum = _mm256_setzero_si256();
    for (std::size_t l = 0; l < 8; ++l) {
      sum = _mm256_add_epi32(
          sum, _mm256_loadu_si256(
                   reinterpret_cast<const __m256i*>(&lanes[l][s])));
    }
    const __m128i lo = _mm256_castsi256_si128(sum);
    const __m128i hi = _mm256_extracti128_si256(sum, 1);
    __m256i w0 = _mm256_cvtepu32_epi64(lo);
    __m256i w1 = _mm256_cvtepu32_epi64(hi);
    __m256i* out = reinterpret_cast<__m256i*>(&counts[s]);
    _mm256_storeu_si256(out, _mm256_add_epi64(_mm256_loadu_si256(out), w0));
    _mm256_storeu_si256(out + 1,
                        _mm256_add_epi64(_mm256_loadu_si256(out + 1), w1));
  }
}

__attribute__((target("avx2"))) void hist_avx2_impl(
    const std::uint8_t* data, std::size_t size, std::uint64_t* counts) {
  while (size > 0) {
    const std::size_t chunk = size < kFlushBytes ? size : kFlushBytes;
    alignas(32) std::uint32_t lanes[8][256] = {};
    const std::uint8_t* p = data;
    std::size_t n = chunk;
    while (n >= 8) {
      std::uint64_t w;
      std::memcpy(&w, p, 8);
      ++lanes[0][w & 0xff];
      ++lanes[1][(w >> 8) & 0xff];
      ++lanes[2][(w >> 16) & 0xff];
      ++lanes[3][(w >> 24) & 0xff];
      ++lanes[4][(w >> 32) & 0xff];
      ++lanes[5][(w >> 40) & 0xff];
      ++lanes[6][(w >> 48) & 0xff];
      ++lanes[7][w >> 56];
      p += 8;
      n -= 8;
    }
    while (n > 0) {
      ++lanes[0][*p++];
      --n;
    }
    merge_lanes_avx2(lanes, counts);
    data += chunk;
    size -= chunk;
  }
}

}  // namespace

void hist_avx2(std::span<const std::uint8_t> data, std::uint64_t* counts) {
  hist_avx2_impl(data.data(), data.size(), counts);
}

#else  // !TVS_HIST_HAVE_AVX2

void hist_avx2(std::span<const std::uint8_t> data, std::uint64_t* counts) {
  hist_swar(data, counts);
}

#endif

}  // namespace huff::detail
