// On-disk container for a complete Huffman-compressed stream.
//
// Layout (little-endian):
//   magic   "TVSH" (4 bytes)
//   version u16    — 2
//   n_bytes u64    — original (decoded) byte count
//   n_blocks u32   — block count
//   block_size u32 — nominal block size (last block may be short)
//   lengths  256×u8 — canonical code lengths (fully describe the table)
//   has_index u8   — 1 if a block index follows
//   [index]  n_blocks×u64 — absolute starting bit of each block
//   payload_bits u64
//   payload  ceil(payload_bits/8) bytes
//
// The optional block index makes the container *randomly accessible*: any
// block can be decoded without touching the rest of the payload
// (decode_block) — the natural companion feature for the paper's "streaming
// long files" use case, and it falls out for free from the pipeline's
// Offset phase, which computes exactly these positions.
//
// The examples write/read this format so a compressed file is an actual
// artifact, not just an in-memory buffer; the decoder rebuilds the canonical
// table from the lengths alone.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "huffman/canonical.h"

namespace huff {

struct CompressedStream {
  std::uint64_t original_bytes = 0;
  std::uint32_t n_blocks = 0;
  std::uint32_t block_size = 0;
  CodeLengths lengths{};
  /// Absolute starting bit per block; empty = no random-access index.
  std::vector<std::uint64_t> block_offsets;
  std::uint64_t payload_bits = 0;
  std::vector<std::uint8_t> payload;

  [[nodiscard]] CodeTable table() const {
    return CodeTable::from_lengths(lengths);
  }
  [[nodiscard]] bool has_index() const { return !block_offsets.empty(); }

  /// Decoded size of block `i` (the last block may be short).
  [[nodiscard]] std::size_t block_bytes(std::size_t i) const;

  /// Container size in bytes (header + index + payload).
  [[nodiscard]] std::size_t serialized_size() const;
};

/// Serializes to bytes. Deterministic.
[[nodiscard]] std::vector<std::uint8_t> serialize(const CompressedStream& s);

/// Parses bytes; throws std::runtime_error on malformed input (bad magic,
/// truncated payload, invalid code lengths).
[[nodiscard]] CompressedStream deserialize(std::span<const std::uint8_t> data);

/// Full-buffer convenience: compresses `data` (serial reference path, no
/// runtime involved) and returns the container bytes. `with_index` embeds
/// the random-access block index (8 bytes per block).
[[nodiscard]] std::vector<std::uint8_t> compress_buffer(
    std::span<const std::uint8_t> data, std::uint32_t block_size = 4096,
    bool with_index = true);

/// Random access: decodes only block `i` using the embedded index. Throws
/// std::logic_error if the container carries no index, std::out_of_range on
/// a bad block number.
[[nodiscard]] std::vector<std::uint8_t> decode_block(
    const CompressedStream& stream, std::size_t i);

/// Inverse of compress_buffer / of the pipeline's output.
[[nodiscard]] std::vector<std::uint8_t> decompress_buffer(
    std::span<const std::uint8_t> container);

/// File helpers used by the examples.
void write_file(const std::string& path, std::span<const std::uint8_t> bytes);
[[nodiscard]] std::vector<std::uint8_t> read_file(const std::string& path);

}  // namespace huff
