// Bit-granular writer/reader over byte buffers.
//
// Bit order: MSB-first within each byte — the first bit written occupies the
// most significant bit of byte 0. This makes canonical codes compare
// lexicographically in the byte stream, which the decoder exploits.
//
// BitWriter additionally supports starting at a nonzero *bit offset*, which
// is what the pipeline's Offset phase produces: each Encode task writes its
// block at a pre-computed absolute bit position so blocks can be encoded in
// parallel into one contiguous output (paper §IV-A).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace huff {

class BitWriter {
 public:
  BitWriter() = default;

  /// Appends the `nbits` low-order bits of `bits`, most significant of those
  /// first. nbits may be 0 (no-op) up to 64.
  void put(std::uint64_t bits, std::uint8_t nbits) {
    if (nbits > 64) {
      throw_bad_nbits();
    }
    // Accumulate into a 64-bit register and spill whole bytes: the hot path
    // (canonical codes are ≤ kMaxCodeBits = 58 bits) is a shift+or.
    if (nbits < 64 && pending_bits_ + nbits <= 64) {
      acc_ = (acc_ << nbits) | (nbits == 0 ? 0 : (bits & mask(nbits)));
      pending_bits_ += nbits;
      if (pending_bits_ >= 32) spill();
      return;
    }
    put_slow(bits, nbits);
  }

  /// Number of bits written so far.
  [[nodiscard]] std::uint64_t bit_size() const {
    return static_cast<std::uint64_t>(buf_.size()) * 8 + pending_bits_;
  }

  /// Pads with zero bits to the next byte boundary and returns the buffer;
  /// the writer is reset.
  [[nodiscard]] std::vector<std::uint8_t> take();

 private:
  static constexpr std::uint64_t mask(std::uint8_t n) {
    return n >= 64 ? ~0ULL : ((std::uint64_t{1} << n) - 1);
  }
  void spill();  ///< moves whole bytes from the accumulator to the buffer
  void put_slow(std::uint64_t bits, std::uint8_t nbits);
  [[noreturn]] static void throw_bad_nbits();

  std::vector<std::uint8_t> buf_;  ///< complete bytes only
  std::uint64_t acc_ = 0;          ///< pending bits, right-aligned
  unsigned pending_bits_ = 0;      ///< < 32 between calls
};

/// Copies `nbits` bits from the front of `src` into `dst` starting at
/// absolute bit position `dst_bit_offset`. `dst` must be pre-sized. Existing
/// bits in partially-overlapping boundary bytes are OR-merged, which is safe
/// because parallel encoders write disjoint bit ranges into a zero-filled
/// buffer.
void splice_bits(std::span<std::uint8_t> dst, std::uint64_t dst_bit_offset,
                 std::span<const std::uint8_t> src, std::uint64_t nbits);

class BitReader {
 public:
  explicit BitReader(std::span<const std::uint8_t> data) : data_(data) {}

  /// Reads the next bit; 0 or 1. Throws std::out_of_range past the end.
  std::uint32_t get_bit();

  /// Reads `nbits` (≤ 64) bits MSB-first into the low bits of the result.
  std::uint64_t get(std::uint8_t nbits);

  /// Repositions to an absolute bit offset.
  void seek(std::uint64_t bit_offset) { bit_pos_ = bit_offset; }

  [[nodiscard]] std::uint64_t position() const { return bit_pos_; }
  [[nodiscard]] std::uint64_t bit_capacity() const {
    return static_cast<std::uint64_t>(data_.size()) * 8;
  }
  [[nodiscard]] bool exhausted() const { return bit_pos_ >= bit_capacity(); }

 private:
  std::span<const std::uint8_t> data_;
  std::uint64_t bit_pos_ = 0;
};

}  // namespace huff
