// Histogram counting kernels behind the tvs::simd dispatch contract
// (docs/data-plane.md). All variants *add* into `counts[0..255]` and must
// produce identical results; kernel_diff_test enforces equivalence.
#pragma once

#include <cstdint>
#include <span>

namespace huff::detail {

/// Reference kernel: one byte, one increment.
void hist_scalar(std::span<const std::uint8_t> data, std::uint64_t* counts);

/// Four independent u64 lane tables; kills the store-forwarding stall chain
/// on runs of equal bytes. Portable (no intrinsics).
void hist_swar(std::span<const std::uint8_t> data, std::uint64_t* counts);

/// Eight u32 lane tables fed from unaligned 64-bit loads, lanes merged with
/// AVX2. Must only be called when tvs::simd::detect() >= Avx2; on non-x86
/// builds it forwards to hist_swar.
void hist_avx2(std::span<const std::uint8_t> data, std::uint64_t* counts);

}  // namespace huff::detail
