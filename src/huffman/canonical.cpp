#include "huffman/canonical.h"

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace huff {

bool kraft_valid(const CodeLengths& lengths) {
  // Sum 2^(kMaxCodeBits - len) must not exceed 2^kMaxCodeBits.
  constexpr std::uint64_t kOne = 1;
  const std::uint64_t budget = kOne << kMaxCodeBits;
  std::uint64_t sum = 0;
  for (std::uint8_t len : lengths) {
    if (len == 0) continue;
    if (len > kMaxCodeBits) return false;
    const std::uint64_t weight = kOne << (kMaxCodeBits - len);
    if (budget - sum < weight) return false;
    sum += weight;
  }
  return true;
}

CodeTable CodeTable::from_lengths(const CodeLengths& lengths) {
  if (!kraft_valid(lengths)) {
    throw std::invalid_argument(
        "CodeTable::from_lengths: lengths violate the Kraft inequality");
  }

  CodeTable table;
  table.lengths_ = lengths;

  // Canonical assignment: iterate (length, symbol) in ascending order,
  // incrementing a counter and shifting left at each length boundary.
  std::vector<std::pair<std::uint8_t, std::uint16_t>> order;
  order.reserve(kSymbols);
  for (std::size_t s = 0; s < kSymbols; ++s) {
    if (lengths[s] != 0) {
      order.emplace_back(lengths[s], static_cast<std::uint16_t>(s));
    }
  }
  std::sort(order.begin(), order.end());

  std::uint64_t next_code = 0;
  std::uint8_t prev_len = 0;
  for (const auto& [len, sym] : order) {
    next_code <<= (len - prev_len);
    table.codes_[sym] = next_code;
    ++next_code;
    prev_len = len;
  }
  return table;
}

bool CodeTable::covers(const Histogram& hist) const {
  for (std::size_t s = 0; s < kSymbols; ++s) {
    if (hist.at(s) != 0 && lengths_[s] == 0) return false;
  }
  return true;
}

std::size_t CodeTable::coded_symbols() const {
  std::size_t n = 0;
  for (std::uint8_t len : lengths_) {
    if (len != 0) ++n;
  }
  return n;
}

}  // namespace huff
