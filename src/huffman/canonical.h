// Canonical Huffman codes.
//
// Given per-symbol code lengths, canonical assignment produces the unique
// code set where codes of equal length are consecutive integers ordered by
// symbol and shorter codes numerically precede longer ones. Two benefits:
//  * a code table is fully described by its 256 lengths (compact headers);
//  * encode/decode need no tree walk — table lookups only.
#pragma once

#include <array>
#include <cstdint>

#include "huffman/tree.h"

namespace huff {

/// Fully materialized encoder table: for each byte value, its code bits
/// (right-aligned, MSB-first within the code) and length.
class CodeTable {
 public:
  CodeTable() = default;

  /// Builds the canonical table from code lengths. Throws
  /// std::invalid_argument if the lengths violate the Kraft inequality
  /// (i.e. do not describe a prefix-free code).
  static CodeTable from_lengths(const CodeLengths& lengths);

  /// Convenience: canonical table of the Huffman tree for `hist`.
  static CodeTable from_histogram(const Histogram& hist) {
    return from_lengths(HuffmanTree::build(hist).lengths());
  }

  [[nodiscard]] std::uint64_t code(std::size_t symbol) const {
    return codes_[symbol];
  }
  [[nodiscard]] std::uint8_t length(std::size_t symbol) const {
    return lengths_[symbol];
  }
  [[nodiscard]] const CodeLengths& lengths() const { return lengths_; }

  /// True iff `symbol` has a code (length > 0).
  [[nodiscard]] bool has_code(std::size_t symbol) const {
    return lengths_[symbol] != 0;
  }

  /// True iff every symbol of `hist` is encodable with this table.
  [[nodiscard]] bool covers(const Histogram& hist) const;

  /// Exact compressed payload size in bits for data distributed per `hist`.
  [[nodiscard]] std::uint64_t encoded_bits(const Histogram& hist) const {
    return huff::encoded_bits(lengths_, hist);
  }

  /// Number of symbols with codes.
  [[nodiscard]] std::size_t coded_symbols() const;

  bool operator==(const CodeTable&) const = default;

 private:
  std::array<std::uint64_t, kSymbols> codes_{};
  CodeLengths lengths_{};
};

/// Validates that `lengths` satisfy the Kraft–McMillan equality/inequality
/// required of a realizable prefix code; returns the Kraft sum scaled by
/// 2^kMaxCodeBits.
[[nodiscard]] bool kraft_valid(const CodeLengths& lengths);

}  // namespace huff
