#include "huffman/fast_decoder.h"

#include <stdexcept>

#include "huffman/bitio.h"

namespace huff {

FastDecoder::FastDecoder(const CodeTable& table, std::uint8_t window)
    : window_(window), slow_(table) {
  if (window_ == 0 || window_ > 16) {
    throw std::invalid_argument("FastDecoder: window must be in [1,16]");
  }
  table_.assign(std::size_t{1} << window_, Entry{});
  for (std::size_t s = 0; s < kSymbols; ++s) {
    const std::uint8_t len = table.length(s);
    if (len == 0) continue;
    if (len > window_) {
      fully_tabled_ = false;
      continue;
    }
    // The code occupies the top `len` bits of the window; fill every entry
    // that shares that prefix.
    const std::uint64_t base = table.code(s) << (window_ - len);
    const std::uint64_t count = std::uint64_t{1} << (window_ - len);
    for (std::uint64_t i = 0; i < count; ++i) {
      table_[static_cast<std::size_t>(base + i)] = {
          static_cast<std::uint8_t>(s), len};
    }
  }
}

std::vector<std::uint8_t> FastDecoder::decode(
    std::span<const std::uint8_t> data, std::size_t n_symbols,
    std::uint64_t start_bit) const {
  std::vector<std::uint8_t> out;
  out.reserve(n_symbols);

  const std::uint64_t total_bits = static_cast<std::uint64_t>(data.size()) * 8;
  std::uint64_t pos = start_bit;

  const std::uint32_t mask = (std::uint32_t{1} << window_) - 1;
  const auto peek_window = [&](std::uint64_t at) -> std::uint32_t {
    // Gathers a 32-bit big-endian chunk starting at the byte containing
    // `at` and aligns the window out of it — one load path per symbol
    // instead of a per-bit loop. window ≤ 16 and the intra-byte offset ≤ 7,
    // so 32 bits always cover it.
    const auto byte = static_cast<std::size_t>(at >> 3);
    std::uint32_t chunk;
    if (byte + 4 <= data.size()) {
      chunk = (std::uint32_t{data[byte]} << 24) |
              (std::uint32_t{data[byte + 1]} << 16) |
              (std::uint32_t{data[byte + 2]} << 8) |
              std::uint32_t{data[byte + 3]};
    } else {
      chunk = 0;  // zero-padded tail
      for (std::size_t i = 0; i < 4; ++i) {
        chunk <<= 8;
        if (byte + i < data.size()) chunk |= data[byte + i];
      }
    }
    const auto shift = static_cast<unsigned>(32 - window_ - (at & 7));
    return (chunk >> shift) & mask;
  };

  for (std::size_t n = 0; n < n_symbols; ++n) {
    if (pos >= total_bits) {
      throw std::runtime_error("FastDecoder: past end of data");
    }
    const Entry e = table_[static_cast<std::size_t>(peek_window(pos))];
    if (e.length != 0) {
      if (pos + e.length > total_bits) {
        throw std::runtime_error("FastDecoder: truncated code at end");
      }
      out.push_back(e.symbol);
      pos += e.length;
      continue;
    }
    // Slow path: over-window code — delegate to the canonical walker.
    BitReader reader(data);
    reader.seek(pos);
    out.push_back(slow_.decode_one(reader));
    pos = reader.position();
  }
  return out;
}

}  // namespace huff
