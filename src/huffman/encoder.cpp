#include "huffman/encoder.h"

#include <bit>
#include <cstring>
#include <stdexcept>

#include "huffman/bitio.h"
#include "simd/simd.h"

namespace huff {
namespace {

[[noreturn]] void throw_no_code(std::uint8_t b) {
  throw std::invalid_argument("encode_block: symbol " + std::to_string(b) +
                              " has no code");
}

void store_be64(std::uint8_t* p, std::uint64_t w) {
  if constexpr (std::endian::native == std::endian::little) {
    w = __builtin_bswap64(w);
  }
  std::memcpy(p, &w, 8);
}

/// Branchless packer: codes accumulate MSB-first into a 128-bit staging
/// register; whole 64-bit words are flushed big-endian, which reproduces
/// BitWriter's MSB-first byte stream exactly. The invariant between
/// symbols is n < 64 pending bits, so n + kMaxCodeBits (58) never
/// overflows the staging register. Returns the exact bit count.
std::uint64_t pack_fast(std::span<const std::uint8_t> block,
                        const CodeTable& table, std::uint8_t* out,
                        const std::uint8_t* out_end) {
  __uint128_t acc = 0;
  unsigned n = 0;
  std::uint64_t total_bits = 0;
  std::uint8_t* p = out;
  for (std::uint8_t b : block) {
    const unsigned len = table.length(b);
    if (len == 0) [[unlikely]] {
      throw_no_code(b);
    }
    // Mask like BitWriter::put does, so dirty high bits in a code value
    // can never diverge the two kernels.
    acc = (acc << len) | (table.code(b) & ((std::uint64_t{1} << len) - 1));
    n += len;
    total_bits += len;
    if (n >= 64) {
      n -= 64;
      if (p + 8 > out_end) [[unlikely]] {
        throw std::logic_error("encode_block_into: output buffer too small");
      }
      store_be64(p, static_cast<std::uint64_t>(acc >> n));
      p += 8;
      acc &= (__uint128_t{1} << n) - 1;
    }
  }
  // Tail: n < 64 pending bits, padded with zeros to the byte boundary.
  if (n > 0) {
    acc <<= (8 - (n & 7)) & 7;
    n = (n + 7) & ~7u;
    while (n > 0) {
      n -= 8;
      if (p >= out_end) [[unlikely]] {
        throw std::logic_error("encode_block_into: output buffer too small");
      }
      *p++ = static_cast<std::uint8_t>(acc >> n);
    }
  }
  return total_bits;
}

EncodedBlock encode_reference(std::span<const std::uint8_t> block,
                              const CodeTable& table) {
  BitWriter writer;
  for (std::uint8_t b : block) {
    const std::uint8_t len = table.length(b);
    if (len == 0) {
      throw_no_code(b);
    }
    writer.put(table.code(b), len);
  }
  EncodedBlock out;
  out.bit_count = writer.bit_size();
  out.bits = writer.take();
  return out;
}

}  // namespace

EncodedBlock encode_block(std::span<const std::uint8_t> block,
                          const CodeTable& table) {
  if (tvs::simd::active() == tvs::simd::Level::Scalar) {
    return encode_reference(block, table);
  }
  // Fast path into a heap vector sized exactly; one pass over the code
  // lengths is O(block) but touches only the 256-entry length table.
  std::vector<std::uint8_t> buf((encoded_bit_count(block, table) + 7) / 8);
  EncodedBlock out;
  out.bit_count = pack_fast(block, table, buf.data(), buf.data() + buf.size());
  out.bits = ByteBuf(std::move(buf));
  return out;
}

EncodedBlock encode_block_into(std::span<const std::uint8_t> block,
                               const CodeTable& table,
                               std::span<std::uint8_t> out,
                               std::shared_ptr<const void> keepalive) {
  EncodedBlock enc;
  if (tvs::simd::active() == tvs::simd::Level::Scalar) {
    // Reference kernel for differential runs: emit via BitWriter, then move
    // the bytes into the caller's storage so arena behavior stays uniform.
    EncodedBlock ref = encode_reference(block, table);
    if (ref.bits.size() > out.size()) {
      throw std::logic_error("encode_block_into: output buffer too small");
    }
    std::memcpy(out.data(), ref.bits.data(), ref.bits.size());
    enc.bit_count = ref.bit_count;
  } else {
    enc.bit_count = pack_fast(block, table, out.data(),
                              out.data() + out.size());
  }
  enc.bits = ByteBuf(out.data(), (enc.bit_count + 7) / 8, std::move(keepalive));
  return enc;
}

std::uint64_t encoded_bit_count(std::span<const std::uint8_t> block,
                                const CodeTable& table) {
  std::uint64_t bits = 0;
  for (std::uint8_t b : block) {
    bits += table.length(b);
  }
  return bits;
}

std::vector<std::uint8_t> assemble(std::span<const EncodedBlock> blocks,
                                   std::span<const std::uint64_t> offsets) {
  if (blocks.size() != offsets.size()) {
    throw std::invalid_argument("assemble: blocks/offsets size mismatch");
  }
  std::uint64_t end_bit = 0;
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    end_bit = std::max(end_bit, offsets[i] + blocks[i].bit_count);
  }
  std::vector<std::uint8_t> out((end_bit + 7) / 8, 0);
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    splice_bits(out, offsets[i], blocks[i].bits, blocks[i].bit_count);
  }
  return out;
}

}  // namespace huff
