#include "huffman/encoder.h"

#include <stdexcept>

#include "huffman/bitio.h"

namespace huff {

EncodedBlock encode_block(std::span<const std::uint8_t> block,
                          const CodeTable& table) {
  BitWriter writer;
  for (std::uint8_t b : block) {
    const std::uint8_t len = table.length(b);
    if (len == 0) {
      throw std::invalid_argument(
          "encode_block: symbol " + std::to_string(b) + " has no code");
    }
    writer.put(table.code(b), len);
  }
  EncodedBlock out;
  out.bit_count = writer.bit_size();
  out.bits = writer.take();
  return out;
}

std::uint64_t encoded_bit_count(std::span<const std::uint8_t> block,
                                const CodeTable& table) {
  std::uint64_t bits = 0;
  for (std::uint8_t b : block) {
    bits += table.length(b);
  }
  return bits;
}

std::vector<std::uint8_t> assemble(std::span<const EncodedBlock> blocks,
                                   std::span<const std::uint64_t> offsets) {
  if (blocks.size() != offsets.size()) {
    throw std::invalid_argument("assemble: blocks/offsets size mismatch");
  }
  std::uint64_t end_bit = 0;
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    end_bit = std::max(end_bit, offsets[i] + blocks[i].bit_count);
  }
  std::vector<std::uint8_t> out((end_bit + 7) / 8, 0);
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    splice_bits(out, offsets[i], blocks[i].bits, blocks[i].bit_count);
  }
  return out;
}

}  // namespace huff
