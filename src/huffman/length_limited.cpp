#include "huffman/length_limited.h"

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace huff {
namespace {

/// Package-merge (Larmore & Hirschberg 1990): the optimal length-limited
/// prefix code. Each "package" is either an original item (a symbol) or a
/// pair of packages from the previous level; selecting the 2n−2 cheapest
/// packages of the final level assigns each symbol a code length equal to
/// the number of selected packages it appears in.
struct Package {
  std::uint64_t weight = 0;
  std::vector<std::uint16_t> symbols;  ///< leaf symbols contained
};

std::vector<Package> pair_up(const std::vector<Package>& level) {
  std::vector<Package> out;
  out.reserve(level.size() / 2);
  for (std::size_t i = 0; i + 1 < level.size(); i += 2) {
    Package p;
    p.weight = level[i].weight + level[i + 1].weight;
    p.symbols = level[i].symbols;
    p.symbols.insert(p.symbols.end(), level[i + 1].symbols.begin(),
                     level[i + 1].symbols.end());
    out.push_back(std::move(p));
  }
  return out;
}

std::vector<Package> merge_sorted(const std::vector<Package>& a,
                                  const std::vector<Package>& b) {
  std::vector<Package> out;
  out.reserve(a.size() + b.size());
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.size() || j < b.size()) {
    if (j == b.size() || (i < a.size() && a[i].weight <= b[j].weight)) {
      out.push_back(a[i++]);
    } else {
      out.push_back(b[j++]);
    }
  }
  return out;
}

}  // namespace

CodeLengths limit_code_lengths(const CodeLengths& lengths,
                               const Histogram& hist, std::uint8_t max_bits) {
  if (max_bits == 0 || max_bits > kMaxCodeBits) {
    throw std::invalid_argument("limit_code_lengths: bad max_bits");
  }
  std::vector<std::uint16_t> used;
  std::uint8_t longest = 0;
  for (std::size_t s = 0; s < kSymbols; ++s) {
    if (lengths[s] != 0) {
      used.push_back(static_cast<std::uint16_t>(s));
      longest = std::max(longest, lengths[s]);
    }
  }
  if (used.empty()) return lengths;
  if (longest <= max_bits) return lengths;  // already within the limit
  if (max_bits >= 64 ||
      (std::uint64_t{1} << max_bits) < used.size()) {
    throw std::invalid_argument(
        "limit_code_lengths: max_bits cannot cover all symbols");
  }
  if (used.size() == 1) {
    CodeLengths out{};
    out[used[0]] = 1;
    return out;
  }

  // Base items, cheapest first. Zero-frequency symbols (possible when the
  // caller passes an unfloored histogram with externally forced coverage)
  // get weight 1 so ordering stays sane.
  std::vector<Package> items;
  items.reserve(used.size());
  for (std::uint16_t s : used) {
    items.push_back({std::max<std::uint64_t>(hist.at(s), 1), {s}});
  }
  std::sort(items.begin(), items.end(),
            [](const Package& a, const Package& b) {
              return a.weight < b.weight;
            });

  // L-1 rounds of package + merge; the final list's 2n−2 cheapest packages
  // define the solution.
  std::vector<Package> level = items;
  for (std::uint8_t round = 1; round < max_bits; ++round) {
    level = merge_sorted(items, pair_up(level));
  }

  CodeLengths out{};
  const std::size_t take = 2 * used.size() - 2;
  if (level.size() < take) {
    throw std::logic_error("limit_code_lengths: package-merge underflow");
  }
  for (std::size_t i = 0; i < take; ++i) {
    for (std::uint16_t s : level[i].symbols) {
      ++out[s];
    }
  }
  return out;
}

CodeLengths build_limited_lengths(const Histogram& hist,
                                  std::uint8_t max_bits) {
  const HuffmanTree tree = HuffmanTree::build(hist);
  return limit_code_lengths(tree.lengths(), hist, max_bits);
}

}  // namespace huff
