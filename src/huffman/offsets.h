// The Offset phase of the parallel Huffman pipeline.
//
// "The encoding is variable-length. Hence, the position of an encoded block
//  can only be known once the previous one's encoding is decided. ... an
//  extra phase ... computes the offset of each data block ... based on the
//  block-specific histogram computed first, the Huffman tree, and the final
//  offset of the previous block. Offset computations feed many encoding
//  tasks." (paper §IV-A)
//
// An offset task covers a *group* of blocks (64 on x86-disk, 16 on Cell, 8 on
// socket): given the group's per-block histograms and the running bit offset,
// it emits each block's absolute starting bit and the offset at group end.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "huffman/canonical.h"
#include "huffman/histogram.h"

namespace huff {

/// Offsets of one group of blocks.
struct OffsetGroup {
  std::vector<std::uint64_t> block_offsets;  ///< absolute start bit per block
  std::uint64_t end_offset = 0;              ///< bit offset after the group
};

/// Computes bit offsets for a group of blocks whose histograms are
/// `block_hists`, encoded with `table`, starting at `start_bit`.
[[nodiscard]] OffsetGroup compute_offsets(
    std::span<const Histogram> block_hists, const CodeTable& table,
    std::uint64_t start_bit);

/// Convenience for tests / serial reference: offsets of all blocks at once.
[[nodiscard]] std::vector<std::uint64_t> all_offsets(
    std::span<const Histogram> block_hists, const CodeTable& table);

}  // namespace huff
