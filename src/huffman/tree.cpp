#include "huffman/tree.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <stdexcept>

namespace huff {
namespace {

struct HeapEntry {
  std::uint64_t freq;
  std::uint64_t seq;    ///< creation order; deterministic tie-break
  std::size_t pool_ix;  ///< index into the node pool
};

struct HeapCompare {
  bool operator()(const HeapEntry& a, const HeapEntry& b) const {
    if (a.freq != b.freq) return a.freq > b.freq;  // min-heap on freq
    return a.seq > b.seq;                          // then earliest first
  }
};

void assign_lengths(const HuffmanTree::Node* node, std::uint8_t depth,
                    CodeLengths& lengths, std::uint64_t& cost) {
  if (node == nullptr) return;
  if (node->is_leaf()) {
    // A single-symbol tree has its lone leaf at depth 0; clamp to 1 bit.
    const std::uint8_t len = std::max<std::uint8_t>(depth, 1);
    if (len > kMaxCodeBits) {
      throw std::length_error("HuffmanTree: code length exceeds kMaxCodeBits");
    }
    lengths[static_cast<std::size_t>(node->symbol)] = len;
    cost += node->freq * len;
    return;
  }
  assign_lengths(node->left.get(), depth + 1, lengths, cost);
  assign_lengths(node->right.get(), depth + 1, lengths, cost);
}

}  // namespace

HuffmanTree HuffmanTree::build(const Histogram& hist) {
  HuffmanTree tree;
  tree.lengths_.fill(0);

  // Pool owns every node until a parent adopts it (ownership is *moved* into
  // the parent, so each node has exactly one owner at all times).
  std::vector<std::unique_ptr<Node>> pool;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, HeapCompare> heap;
  std::uint64_t seq = 0;

  for (std::size_t s = 0; s < kSymbols; ++s) {
    if (hist.at(s) == 0) continue;
    auto node = std::make_unique<Node>();
    node->freq = hist.at(s);
    node->symbol = static_cast<int>(s);
    heap.push({node->freq, seq++, pool.size()});
    pool.push_back(std::move(node));
  }

  if (pool.empty()) return tree;  // empty histogram → empty tree

  while (heap.size() > 1) {
    const HeapEntry a = heap.top();
    heap.pop();
    const HeapEntry b = heap.top();
    heap.pop();
    auto parent = std::make_unique<Node>();
    parent->freq = a.freq + b.freq;
    // Deterministic orientation: the earlier (lower-seq) child on the left.
    parent->left = std::move(pool[a.pool_ix]);
    parent->right = std::move(pool[b.pool_ix]);
    heap.push({parent->freq, seq++, pool.size()});
    pool.push_back(std::move(parent));
  }

  tree.root_ = std::move(pool[heap.top().pool_ix]);
  assign_lengths(tree.root_.get(), 0, tree.lengths_, tree.cost_);
  return tree;
}

std::uint64_t HuffmanTree::encoded_bits(const Histogram& hist) const {
  return huff::encoded_bits(lengths_, hist);
}

bool HuffmanTree::covers(const Histogram& hist) const {
  for (std::size_t s = 0; s < kSymbols; ++s) {
    if (hist.at(s) != 0 && lengths_[s] == 0) return false;
  }
  return true;
}

std::uint64_t encoded_bits(const CodeLengths& lengths, const Histogram& hist) {
  std::uint64_t bits = 0;
  for (std::size_t s = 0; s < kSymbols; ++s) {
    bits += hist.at(s) * lengths[s];
  }
  return bits;
}

double entropy_bits(const Histogram& hist) {
  const auto total = static_cast<double>(hist.total());
  if (total == 0.0) return 0.0;
  double bits = 0.0;
  for (std::size_t s = 0; s < kSymbols; ++s) {
    const auto c = static_cast<double>(hist.at(s));
    if (c > 0.0) bits -= c * std::log2(c / total);
  }
  return bits;
}

}  // namespace huff
