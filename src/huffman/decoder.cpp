#include "huffman/decoder.h"

#include <algorithm>
#include <stdexcept>

namespace huff {

Decoder::Decoder(const CodeTable& table) {
  std::vector<std::pair<std::uint8_t, std::uint16_t>> order;
  for (std::size_t s = 0; s < kSymbols; ++s) {
    if (table.length(s) != 0) {
      order.emplace_back(table.length(s), static_cast<std::uint16_t>(s));
    }
  }
  if (order.empty()) {
    throw std::invalid_argument("Decoder: code table has no coded symbols");
  }
  std::sort(order.begin(), order.end());

  min_len_ = order.front().first;
  max_len_ = order.back().first;

  for (const auto& [len, sym] : order) {
    if (count_[len] == 0) {
      first_code_[len] = table.code(sym);
      first_index_[len] = static_cast<std::uint32_t>(symbols_.size());
    }
    ++count_[len];
    symbols_.push_back(static_cast<std::uint8_t>(sym));
  }
}

std::uint8_t Decoder::decode_one(BitReader& reader) const {
  std::uint64_t code = 0;
  std::uint8_t len = 0;
  // Read bit by bit; at each length, check whether `code` falls within that
  // length's canonical code range.
  while (len < max_len_) {
    code = (code << 1) | reader.get_bit();
    ++len;
    if (len < min_len_ || count_[len] == 0) continue;
    const std::uint64_t first = first_code_[len];
    if (code >= first && code < first + count_[len]) {
      return symbols_[first_index_[len] + static_cast<std::uint32_t>(code - first)];
    }
  }
  throw std::runtime_error("Decoder: invalid code in stream");
}

std::vector<std::uint8_t> Decoder::decode(BitReader& reader,
                                          std::size_t n_symbols) const {
  std::vector<std::uint8_t> out;
  out.reserve(n_symbols);
  for (std::size_t i = 0; i < n_symbols; ++i) {
    out.push_back(decode_one(reader));
  }
  return out;
}

std::vector<std::uint8_t> Decoder::decode(std::span<const std::uint8_t> data,
                                          std::size_t n_symbols) const {
  BitReader reader(data);
  return decode(reader, n_symbols);
}

}  // namespace huff
