// FastDecoder: table-driven canonical Huffman decoding.
//
// A primary lookup table indexed by the next `window` bits resolves every
// code of length ≤ window in one load; longer codes fall back to the
// canonical range walk. With length-limited codes (length_limited.h) the
// fallback never triggers and decoding is one table hit per symbol — the
// standard construction used by production decompressors (zlib, zstd's
// Huffman stage).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "huffman/canonical.h"
#include "huffman/decoder.h"

namespace huff {

class FastDecoder {
 public:
  /// Builds the lookup table. `window` ∈ [1, 16]; table memory is
  /// 2^window × 2 bytes-ish entries.
  explicit FastDecoder(const CodeTable& table, std::uint8_t window = 12);

  /// Decodes exactly `n_symbols` from `data` starting at `start_bit`.
  [[nodiscard]] std::vector<std::uint8_t> decode(
      std::span<const std::uint8_t> data, std::size_t n_symbols,
      std::uint64_t start_bit = 0) const;

  [[nodiscard]] std::uint8_t window() const { return window_; }

  /// True iff every code fits the window (no slow path possible).
  [[nodiscard]] bool fully_tabled() const { return fully_tabled_; }

 private:
  struct Entry {
    std::uint8_t symbol = 0;
    std::uint8_t length = 0;  ///< 0 = code longer than the window (slow path)
  };

  std::uint8_t window_;
  bool fully_tabled_ = true;
  std::vector<Entry> table_;  ///< 2^window entries
  Decoder slow_;              ///< fallback for over-window codes
};

}  // namespace huff
