// Canonical Huffman decoder.
//
// Not on the paper's critical path (the benchmark is an encoder), but
// essential to this reproduction: every test round-trips
// decode(encode(x)) == x to prove that speculation, rollback and commit never
// corrupt output.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "huffman/bitio.h"
#include "huffman/canonical.h"

namespace huff {

/// Table-driven canonical decoder built once per CodeTable.
class Decoder {
 public:
  /// Throws std::invalid_argument if `table` has no coded symbols.
  explicit Decoder(const CodeTable& table);

  /// Decodes exactly `n_symbols` symbols from `reader`. Throws
  /// std::runtime_error on an invalid code or premature end of input.
  [[nodiscard]] std::vector<std::uint8_t> decode(BitReader& reader,
                                                 std::size_t n_symbols) const;

  /// Decodes a whole buffer of `n_symbols` starting at bit 0.
  [[nodiscard]] std::vector<std::uint8_t> decode(
      std::span<const std::uint8_t> data, std::size_t n_symbols) const;

  /// Decodes one symbol.
  [[nodiscard]] std::uint8_t decode_one(BitReader& reader) const;

 private:
  // Canonical decode state per code length L (1..max_len_):
  //  first_code_[L] — numeric value of the first code of length L
  //  first_index_[L] — index into symbols_ of that code's symbol
  //  count_[L] — number of codes of length L
  std::array<std::uint64_t, kMaxCodeBits + 1> first_code_{};
  std::array<std::uint32_t, kMaxCodeBits + 1> first_index_{};
  std::array<std::uint32_t, kMaxCodeBits + 1> count_{};
  std::vector<std::uint8_t> symbols_;  ///< symbols in (length, symbol) order
  std::uint8_t max_len_ = 0;
  std::uint8_t min_len_ = 0;
};

}  // namespace huff
