// Immutable, reference-counted byte buffer view for encoded output.
//
// The data plane wants encode results to live in per-epoch arenas (cheap
// wholesale reclamation on rollback, docs/data-plane.md) instead of one
// heap vector per block. ByteBuf decouples "where the bytes live" from
// "who reads them": it is a {pointer, size} view plus a type-erased owner
// reference that keeps the backing storage — a heap vector or an epoch
// arena — alive for as long as any view survives. Copies share the owner;
// the bytes themselves are never copied.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <utility>
#include <vector>

namespace huff {

class ByteBuf {
 public:
  ByteBuf() = default;

  /// Takes ownership of a heap vector (implicit: lets existing call sites
  /// keep building vectors and returning them as ByteBuf).
  ByteBuf(std::vector<std::uint8_t> bytes) {  // NOLINT(google-explicit-*)
    auto owned = std::make_shared<std::vector<std::uint8_t>>(std::move(bytes));
    data_ = owned->data();
    size_ = owned->size();
    owner_ = std::move(owned);
  }

  /// View over caller-managed storage; `owner` is held (but never
  /// dereferenced) to keep that storage alive — e.g. the shared handle of
  /// the epoch arena the bytes were bump-allocated from.
  ByteBuf(const std::uint8_t* data, std::size_t size,
          std::shared_ptr<const void> owner)
      : owner_(std::move(owner)), data_(data), size_(size) {}

  [[nodiscard]] const std::uint8_t* data() const { return data_; }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  [[nodiscard]] std::span<const std::uint8_t> span() const {
    return {data_, size_};
  }
  operator std::span<const std::uint8_t>() const { return span(); }

  const std::uint8_t& operator[](std::size_t i) const { return data_[i]; }
  [[nodiscard]] const std::uint8_t* begin() const { return data_; }
  [[nodiscard]] const std::uint8_t* end() const { return data_ + size_; }

  /// The storage keep-alive handle (null for default-constructed views).
  [[nodiscard]] const std::shared_ptr<const void>& owner() const {
    return owner_;
  }

  friend bool operator==(const ByteBuf& a, const ByteBuf& b) {
    return a.size_ == b.size_ &&
           (a.size_ == 0 || std::memcmp(a.data_, b.data_, a.size_) == 0);
  }
  // C++20 rewrites give vector == ByteBuf for free.
  friend bool operator==(const ByteBuf& a,
                         const std::vector<std::uint8_t>& b) {
    return a.size_ == b.size() &&
           (a.size_ == 0 || std::memcmp(a.data_, b.data(), a.size_) == 0);
  }

 private:
  std::shared_ptr<const void> owner_;
  const std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace huff
