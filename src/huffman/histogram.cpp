#include "huffman/histogram.h"

#include <numeric>

#include "huffman/hist_kernels.h"
#include "simd/simd.h"

namespace huff {

void Histogram::count(std::span<const std::uint8_t> data) {
  // Kernel variants and their bit-identity contract live in
  // docs/data-plane.md ("kernel dispatch contract"); selection follows
  // tvs::simd::active() (TVS_SIMD override, else CPU detection).
  switch (tvs::simd::active()) {
    case tvs::simd::Level::Scalar:
      detail::hist_scalar(data, counts_.data());
      return;
    case tvs::simd::Level::Swar:
      detail::hist_swar(data, counts_.data());
      return;
    case tvs::simd::Level::Avx2:
      detail::hist_avx2(data, counts_.data());
      return;
  }
  detail::hist_scalar(data, counts_.data());
}

Histogram& Histogram::merge(const Histogram& other) {
  for (std::size_t i = 0; i < kSymbols; ++i) {
    counts_[i] += other.counts_[i];
  }
  return *this;
}

std::uint64_t Histogram::total() const {
  return std::accumulate(counts_.begin(), counts_.end(), std::uint64_t{0});
}

std::size_t Histogram::distinct_symbols() const {
  std::size_t n = 0;
  for (std::uint64_t c : counts_) {
    if (c != 0) ++n;
  }
  return n;
}

Histogram Histogram::merged(std::span<const Histogram> parts) {
  Histogram out;
  for (const Histogram& h : parts) out.merge(h);
  return out;
}

Histogram Histogram::of(std::span<const std::uint8_t> data) {
  Histogram h;
  h.count(data);
  return h;
}

Histogram Histogram::with_floor(std::uint64_t floor) const {
  Histogram out = *this;
  for (auto& c : out.counts_) {
    if (c < floor) c = floor;
  }
  return out;
}

}  // namespace huff
