#include "huffman/offsets.h"

namespace huff {

OffsetGroup compute_offsets(std::span<const Histogram> block_hists,
                            const CodeTable& table, std::uint64_t start_bit) {
  OffsetGroup group;
  group.block_offsets.reserve(block_hists.size());
  std::uint64_t bit = start_bit;
  for (const Histogram& h : block_hists) {
    group.block_offsets.push_back(bit);
    bit += table.encoded_bits(h);
  }
  group.end_offset = bit;
  return group;
}

std::vector<std::uint64_t> all_offsets(std::span<const Histogram> block_hists,
                                       const CodeTable& table) {
  return compute_offsets(block_hists, table, 0).block_offsets;
}

}  // namespace huff
