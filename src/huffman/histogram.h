// Byte-frequency histograms: the unit of data flowing through the first pass
// of the Huffman pipeline (paper Fig. 2: Count and Reduce tasks).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>

namespace huff {

inline constexpr std::size_t kSymbols = 256;

/// Frequency histogram over the 256 byte values. Merging is commutative and
/// associative, which is what makes the Reduce tree (and prefix speculation)
/// valid.
class Histogram {
 public:
  Histogram() { counts_.fill(0); }

  /// Counts every byte of `data` into this histogram (the paper's Count
  /// task, applied to one 4 KiB block).
  void count(std::span<const std::uint8_t> data);

  /// Merges `other` into this histogram (the paper's Reduce task).
  Histogram& merge(const Histogram& other);

  [[nodiscard]] std::uint64_t at(std::size_t symbol) const {
    return counts_[symbol];
  }
  std::uint64_t& at(std::size_t symbol) { return counts_[symbol]; }

  /// Total number of counted bytes.
  [[nodiscard]] std::uint64_t total() const;

  /// Number of symbols with nonzero frequency.
  [[nodiscard]] std::size_t distinct_symbols() const;

  [[nodiscard]] bool empty() const { return total() == 0; }

  [[nodiscard]] const std::array<std::uint64_t, kSymbols>& counts() const {
    return counts_;
  }

  bool operator==(const Histogram&) const = default;

  /// Merge of a range of histograms (convenience for Reduce tasks).
  [[nodiscard]] static Histogram merged(std::span<const Histogram> parts);

  /// Histogram of a byte range (Count over a whole buffer).
  [[nodiscard]] static Histogram of(std::span<const std::uint8_t> data);

  /// Copy of this histogram where every symbol count is at least `floor`.
  ///
  /// Speculative trees are built from *prefix* histograms, so symbols that
  /// only appear later in the stream would otherwise have no code and make
  /// the speculative encoding undefined. Building speculative trees over a
  /// floored histogram guarantees total coverage at a negligible size cost
  /// (add-one smoothing).
  [[nodiscard]] Histogram with_floor(std::uint64_t floor) const;

 private:
  std::array<std::uint64_t, kSymbols> counts_;
};

}  // namespace huff
