#include "huffman/bitio.h"

#include <stdexcept>

namespace huff {

void BitWriter::throw_bad_nbits() {
  throw std::invalid_argument("BitWriter::put: nbits > 64");
}

void BitWriter::spill() {
  while (pending_bits_ >= 8) {
    pending_bits_ -= 8;
    buf_.push_back(static_cast<std::uint8_t>(acc_ >> pending_bits_));
  }
  acc_ &= mask(static_cast<std::uint8_t>(pending_bits_));
}

void BitWriter::put_slow(std::uint64_t bits, std::uint8_t nbits) {
  // Rare path: the accumulator cannot hold the whole value (only possible
  // for nbits close to 64). Split in half; each half fits after a spill.
  const std::uint8_t hi = nbits / 2;
  const std::uint8_t lo = static_cast<std::uint8_t>(nbits - hi);
  put(bits >> lo, hi);
  put(bits & mask(lo), lo);
}

std::vector<std::uint8_t> BitWriter::take() {
  if (pending_bits_ > 0) {
    // Zero-pad the tail to a byte boundary.
    const auto pad = static_cast<std::uint8_t>((8 - (pending_bits_ & 7)) & 7);
    acc_ <<= pad;
    pending_bits_ += pad;
    spill();
  }
  std::vector<std::uint8_t> out = std::move(buf_);
  buf_.clear();
  acc_ = 0;
  pending_bits_ = 0;
  return out;
}

void splice_bits(std::span<std::uint8_t> dst, std::uint64_t dst_bit_offset,
                 std::span<const std::uint8_t> src, std::uint64_t nbits) {
  if ((dst_bit_offset + nbits + 7) / 8 > dst.size()) {
    throw std::out_of_range("splice_bits: destination too small");
  }
  if (nbits > static_cast<std::uint64_t>(src.size()) * 8) {
    throw std::out_of_range("splice_bits: source too small");
  }

  // Fast path: byte-aligned destination — memcpy-style copy of whole bytes,
  // bit-merge only for the trailing partial byte.
  if ((dst_bit_offset & 7) == 0) {
    const std::size_t dst_byte = static_cast<std::size_t>(dst_bit_offset >> 3);
    const std::size_t whole = static_cast<std::size_t>(nbits >> 3);
    for (std::size_t i = 0; i < whole; ++i) dst[dst_byte + i] |= src[i];
    const auto rem = static_cast<unsigned>(nbits & 7);
    if (rem != 0) {
      const std::uint8_t mask =
          static_cast<std::uint8_t>(0xFFu << (8 - rem));
      dst[dst_byte + whole] =
          static_cast<std::uint8_t>(dst[dst_byte + whole] | (src[whole] & mask));
    }
    return;
  }

  // General path: shift-merge byte by byte.
  const auto shift = static_cast<unsigned>(dst_bit_offset & 7);
  std::size_t dst_byte = static_cast<std::size_t>(dst_bit_offset >> 3);
  const std::size_t src_bytes = static_cast<std::size_t>((nbits + 7) >> 3);
  for (std::size_t i = 0; i < src_bytes; ++i) {
    std::uint8_t byte = src[i];
    // Mask off bits past nbits in the final source byte.
    if (i == src_bytes - 1) {
      const auto rem = static_cast<unsigned>(nbits & 7);
      if (rem != 0) {
        byte = static_cast<std::uint8_t>(byte & static_cast<std::uint8_t>(0xFFu << (8 - rem)));
      }
    }
    dst[dst_byte + i] =
        static_cast<std::uint8_t>(dst[dst_byte + i] | (byte >> shift));
    const auto spill = static_cast<std::uint8_t>(
        static_cast<unsigned>(byte) << (8 - shift));
    if (spill != 0) {
      dst[dst_byte + i + 1] =
          static_cast<std::uint8_t>(dst[dst_byte + i + 1] | spill);
    }
  }
}

std::uint32_t BitReader::get_bit() {
  if (exhausted()) {
    throw std::out_of_range("BitReader::get_bit: past end of data");
  }
  const std::size_t byte_ix = static_cast<std::size_t>(bit_pos_ >> 3);
  const auto shift = static_cast<unsigned>(7 - (bit_pos_ & 7));
  ++bit_pos_;
  return (data_[byte_ix] >> shift) & 1U;
}

std::uint64_t BitReader::get(std::uint8_t nbits) {
  if (nbits > 64) {
    throw std::invalid_argument("BitReader::get: nbits > 64");
  }
  std::uint64_t out = 0;
  for (std::uint8_t i = 0; i < nbits; ++i) {
    out = (out << 1) | get_bit();
  }
  return out;
}

}  // namespace huff
