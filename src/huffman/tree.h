// Huffman tree construction (Huffman 1952): from a byte histogram to
// per-symbol code lengths.
//
// The pipeline never walks tree nodes while encoding; it uses canonical codes
// derived from the lengths (see canonical.h). The explicit node form is kept
// for inspection, tests and the decoder's reference implementation.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "huffman/histogram.h"

namespace huff {

/// Per-symbol code lengths in bits. Symbols absent from the histogram get
/// length 0 and must never appear in the encoded stream.
using CodeLengths = std::array<std::uint8_t, kSymbols>;

/// Maximum code length we ever produce. 64 would be the hard bound for a
/// 2^64-count histogram; byte streams of the sizes we process stay far below
/// this, and the bit I/O layer relies on codes fitting one 64-bit word.
inline constexpr std::uint8_t kMaxCodeBits = 58;

class HuffmanTree {
 public:
  struct Node {
    std::uint64_t freq = 0;
    int symbol = -1;  ///< leaf: byte value; internal: -1
    std::unique_ptr<Node> left;
    std::unique_ptr<Node> right;
    [[nodiscard]] bool is_leaf() const { return symbol >= 0; }
  };

  /// Builds the optimal prefix tree for `hist`.
  ///
  /// Edge cases, resolved the standard way:
  ///  * empty histogram → empty tree, all lengths 0;
  ///  * single distinct symbol → that symbol gets a 1-bit code (a 0-bit code
  ///    cannot delimit repetitions).
  /// Ties are broken deterministically (lower symbol / earlier creation
  /// first) so identical histograms always give identical trees.
  static HuffmanTree build(const Histogram& hist);

  [[nodiscard]] const Node* root() const { return root_.get(); }

  /// Depth of each leaf = code length of each symbol.
  [[nodiscard]] const CodeLengths& lengths() const { return lengths_; }

  /// Exact compressed payload size, in bits, of data distributed per `hist`
  /// when encoded with *this* tree: sum over symbols of freq × length.
  ///
  /// This is the quantity the paper's Check task computes for both the
  /// speculative and the current tree to evaluate tolerance (§IV-B).
  [[nodiscard]] std::uint64_t encoded_bits(const Histogram& hist) const;

  /// True iff `hist` only uses symbols this tree can encode (length > 0).
  [[nodiscard]] bool covers(const Histogram& hist) const;

  [[nodiscard]] bool empty() const { return root_ == nullptr; }

  /// Total weighted path length of the tree itself (optimality metric).
  [[nodiscard]] std::uint64_t cost() const { return cost_; }

 private:
  std::unique_ptr<Node> root_;
  CodeLengths lengths_{};
  std::uint64_t cost_ = 0;
};

/// Exact compressed size in bits for `hist` under explicit code `lengths`.
[[nodiscard]] std::uint64_t encoded_bits(const CodeLengths& lengths,
                                         const Histogram& hist);

/// Shannon entropy lower bound, in bits, for data distributed per `hist`.
[[nodiscard]] double entropy_bits(const Histogram& hist);

}  // namespace huff
