// Length-limited prefix codes.
//
// The fast table-driven decoder (fast_decoder.h) indexes a 2^W lookup table
// with the next W bits; codes longer than W take a slow path. Limiting the
// maximum code length to W makes decoding branch-free per symbol. This
// module turns optimal Huffman lengths into the *optimal* lengths subject
// to a maximum, via the package-merge algorithm (Larmore & Hirschberg
// 1990) — the same construction production compressors use for their
// table-friendly code tables.
#pragma once

#include <cstdint>

#include "huffman/tree.h"

namespace huff {

/// Returns the cost-optimal lengths with max(length) ≤ max_bits (Kraft
/// valid; identical to the input when it already satisfies the limit).
/// Throws std::invalid_argument if max_bits is too small to give every used
/// symbol a code (need 2^max_bits ≥ symbols).
[[nodiscard]] CodeLengths limit_code_lengths(const CodeLengths& lengths,
                                             const Histogram& hist,
                                             std::uint8_t max_bits);

/// Convenience: optimal lengths for `hist` limited to `max_bits`.
[[nodiscard]] CodeLengths build_limited_lengths(const Histogram& hist,
                                                std::uint8_t max_bits);

}  // namespace huff
