// Slot<T>: single-writer value cell connecting producer and consumer tasks.
//
// A producer task's body sets the slot; consumer bodies read it. Ordering is
// guaranteed by the dependence edge (a consumer only becomes ready after the
// producer finished, and the runtime lock provides the memory fence), so the
// cell itself needs no synchronization.
//
// Slots are shared_ptr-owned by the closures of the tasks that touch them;
// when a rollback destroys a speculative chain, dropping the task bodies
// releases the slots — this is the "proper garbage collection" of §III-B.
#pragma once

#include <memory>
#include <optional>
#include <stdexcept>
#include <utility>

namespace sre {

template <typename T>
class Slot {
 public:
  void set(T value) {
    if (value_.has_value()) {
      throw std::logic_error("Slot: set twice");
    }
    value_.emplace(std::move(value));
  }

  [[nodiscard]] const T& get() const {
    if (!value_.has_value()) {
      throw std::logic_error("Slot: read before set");
    }
    return *value_;
  }

  [[nodiscard]] bool has_value() const { return value_.has_value(); }

 private:
  std::optional<T> value_;
};

template <typename T>
using SlotPtr = std::shared_ptr<Slot<T>>;

template <typename T>
[[nodiscard]] SlotPtr<T> make_slot() {
  return std::make_shared<Slot<T>>();
}

}  // namespace sre
