// Per-worker epoch arenas: bump allocation for speculative task products.
//
// The paper's abort path destroys every product of a rolled-back epoch; the
// cheap C++ realization is wholesale reclamation — stamp each allocation
// with {worker, epoch} by construction and drop the whole arena when the
// epoch dies. Three pieces:
//
//   ChunkPool    — process-wide recycling freelist of fixed-size chunks,
//                  owned by the Runtime. Thread-safe; holds the tvs_alloc_*
//                  counters (docs/data-plane.md) so steady-state malloc
//                  traffic on the data plane is observable.
//   Arena        — single-owner bump allocator over pool chunks. Never
//                  frees individual allocations; its destructor returns
//                  every chunk to the pool at once.
//   EpochArenas  — one epoch's arena set, one lane per worker so task
//                  bodies allocate with no synchronization at all. Managed
//                  by shared_ptr: the pipeline's chain and every ByteBuf
//                  view into the arena co-own it, so a rollback's reference
//                  drop is the destroy signal and the memory is recycled
//                  exactly when the last speculative product dies.
//
// Lane discipline: lane(w) may only be used by worker w (executors put the
// worker index in TaskContext::worker). Distinct workers touch distinct
// lanes, so lazy lane creation is race-free.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "sre/ids.h"

namespace sre {

/// Snapshot of the tvs_alloc_* counter family (monotonic since process
/// start; per-pool, and the Runtime owns one pool).
struct ArenaStats {
  std::uint64_t allocs = 0;         ///< bump allocations served
  std::uint64_t bytes = 0;          ///< bytes handed out by bump allocations
  std::uint64_t chunks_new = 0;     ///< chunks that hit malloc
  std::uint64_t chunks_reused = 0;  ///< chunks recycled from the freelist
  std::uint64_t oversize = 0;       ///< allocations too big for a chunk
};

/// Thread-safe recycling freelist of fixed-size chunks.
class ChunkPool {
 public:
  static constexpr std::size_t kChunkBytes = 256 * 1024;

  /// `max_free` bounds the idle freelist; chunks beyond it are released to
  /// the allocator instead of retained.
  explicit ChunkPool(std::size_t max_free = 64) : max_free_(max_free) {}
  ~ChunkPool();

  ChunkPool(const ChunkPool&) = delete;
  ChunkPool& operator=(const ChunkPool&) = delete;

  /// A kChunkBytes chunk: recycled if available, freshly allocated else.
  [[nodiscard]] void* get();

  /// Returns a chunk to the freelist (or frees it past max_free).
  void put(void* chunk);

  [[nodiscard]] ArenaStats stats() const;

  /// Idle chunks currently in the freelist (tests).
  [[nodiscard]] std::size_t free_chunks() const;

 private:
  friend class Arena;
  void note_alloc(std::size_t bytes) {
    allocs_.fetch_add(1, std::memory_order_relaxed);
    bytes_.fetch_add(bytes, std::memory_order_relaxed);
  }
  void note_oversize() { oversize_.fetch_add(1, std::memory_order_relaxed); }

  mutable std::mutex mu_;
  std::vector<void*> free_;
  std::size_t max_free_;
  std::atomic<std::uint64_t> allocs_{0};
  std::atomic<std::uint64_t> bytes_{0};
  std::atomic<std::uint64_t> chunks_new_{0};
  std::atomic<std::uint64_t> chunks_reused_{0};
  std::atomic<std::uint64_t> oversize_{0};
};

/// Single-owner bump allocator over ChunkPool chunks. Not thread-safe —
/// each EpochArenas lane belongs to exactly one worker.
class Arena {
 public:
  explicit Arena(std::shared_ptr<ChunkPool> pool) : pool_(std::move(pool)) {}
  ~Arena();

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// `n` bytes aligned to `align` (a power of two). Never returns null;
  /// requests larger than a chunk get their own dedicated allocation.
  [[nodiscard]] void* allocate(std::size_t n,
                               std::size_t align = alignof(std::max_align_t));

  [[nodiscard]] std::span<std::uint8_t> alloc_bytes(std::size_t n) {
    return {static_cast<std::uint8_t*>(allocate(n, 1)), n};
  }

  /// Chunks this arena currently holds (tests).
  [[nodiscard]] std::size_t chunk_count() const {
    return chunks_.size() + oversize_.size();
  }

 private:
  std::shared_ptr<ChunkPool> pool_;
  std::vector<void*> chunks_;    ///< pool chunks, returned on destruction
  std::vector<void*> oversize_;  ///< dedicated allocations (> kChunkBytes)
  std::uint8_t* cur_ = nullptr;
  std::uint8_t* end_ = nullptr;
};

/// One speculation epoch's arenas, one bump lane per worker.
class EpochArenas {
 public:
  /// Upper bound on worker indices; executors in this repo run far fewer.
  static constexpr unsigned kLanes = 64;

  EpochArenas(std::shared_ptr<ChunkPool> pool, Epoch epoch)
      : pool_(std::move(pool)), epoch_(epoch) {}

  /// The calling worker's lane (created on first touch; only worker
  /// `worker` may use it, so creation is race-free).
  [[nodiscard]] Arena& lane(unsigned worker) {
    auto& slot = lanes_[worker % kLanes];
    if (!slot) slot = std::make_unique<Arena>(pool_);
    return *slot;
  }

  [[nodiscard]] Epoch epoch() const { return epoch_; }

  /// Lanes that have been touched (tests).
  [[nodiscard]] std::size_t active_lanes() const {
    std::size_t n = 0;
    for (const auto& l : lanes_) {
      if (l) ++n;
    }
    return n;
  }

 private:
  std::shared_ptr<ChunkPool> pool_;
  Epoch epoch_;
  std::array<std::unique_ptr<Arena>, kLanes> lanes_;
};

}  // namespace sre
