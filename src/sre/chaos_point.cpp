#include "sre/chaos_point.h"

namespace sre::chaos {

namespace detail {
std::atomic<Hook*> g_hook{nullptr};
}  // namespace detail

Hook* install(Hook* hook) {
  return detail::g_hook.exchange(hook, std::memory_order_acq_rel);
}

Hook* installed() { return detail::g_hook.load(std::memory_order_acquire); }

}  // namespace sre::chaos
