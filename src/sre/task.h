// Task: the coarse-grain, side-effect-free unit of computation of the SRE.
//
// A task carries its dependence bookkeeping (unmet-producer count, successor
// list), its scheduling attributes (class, epoch, pipeline depth, FCFS
// sequence number), an abort flag used for rollback of in-flight work, and a
// simulated cost used by the virtual-time executor.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sre/ids.h"

namespace sre {

class Task;
class Runtime;
using TaskPtr = std::shared_ptr<Task>;

/// Execution context handed to a task body.
struct TaskContext {
  Runtime& runtime;
  Task& self;
  /// Engine time (µs) at which the task was dispatched. Virtual time under
  /// the simulator, steady-clock time under the threaded executor.
  std::uint64_t now_us = 0;
  /// Index of the worker (simulator CPU, or threaded-executor worker)
  /// running this body — the lane selector for per-worker epoch arenas
  /// (sre/arena.h). Only this worker may touch lane(worker).
  unsigned worker = 0;
};

class Task {
 public:
  using Body = std::function<void(TaskContext&)>;
  /// Completion hook: fired by the runtime when the task *successfully*
  /// finishes (not when aborted), with the engine time of completion.
  using CompletionHook = std::function<void(Task&, std::uint64_t done_us)>;

  Task(TaskId id, std::string name, TaskClass cls, Epoch epoch, int depth,
       std::uint64_t cost_us, Body body)
      : id_(id),
        name_(std::move(name)),
        cls_(cls),
        epoch_(epoch),
        depth_(depth),
        cost_us_(cost_us),
        body_(std::move(body)) {}

  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;

  [[nodiscard]] TaskId id() const { return id_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] TaskClass task_class() const { return cls_; }
  [[nodiscard]] Epoch epoch() const { return epoch_; }
  [[nodiscard]] bool speculative() const { return epoch_ != kNaturalEpoch; }
  [[nodiscard]] int depth() const { return depth_; }
  [[nodiscard]] std::uint64_t cost_us() const { return cost_us_; }
  [[nodiscard]] TaskState state() const { return state_.load(std::memory_order_acquire); }

  /// FCFS tie-break sequence, assigned when the task becomes ready.
  [[nodiscard]] std::uint64_t ready_seq() const { return ready_seq_; }

  /// Serving-layer stream (session) id this task computes for; 0 = none.
  /// Set at construction time (pipeline build), read by the runtime's
  /// per-stream usage accounting and the flight recorder.
  void set_stream(std::uint64_t stream) { stream_ = stream; }
  [[nodiscard]] std::uint64_t stream() const { return stream_; }

  /// Engine time at which the task was dispatched to a worker, or
  /// kNeverDispatched if it was aborted before running. Written by the
  /// executors under their staging discipline; read at retirement.
  static constexpr std::uint64_t kNeverDispatched = ~std::uint64_t{0};
  [[nodiscard]] std::uint64_t dispatch_us() const { return dispatch_us_; }

  /// Rollback support: mark an in-flight task for disposal at completion.
  void request_abort() { abort_requested_.store(true, std::memory_order_release); }
  [[nodiscard]] bool abort_requested() const {
    return abort_requested_.load(std::memory_order_acquire);
  }

  /// Runtime revocation epoch observed when the task was staged to a
  /// worker-local queue (written under the runtime lock before the task is
  /// published through a staging ring). A worker popping the task compares
  /// it against the runtime's current revocation epoch: equal means no
  /// rollback ran since staging, so the abort flag cannot be set and the
  /// task can start without even loading it.
  [[nodiscard]] std::uint64_t staged_revocation_epoch() const {
    return staged_revocation_epoch_;
  }

  /// User-defined rollback routine (the extension of paper §II-A: "our
  /// framework can be extended to support user-defined rollback routines,
  /// to enable more tasks to execute speculatively").
  ///
  /// A speculative task that *does* perform a reversible side effect may
  /// register the compensating action here. If the task completed and its
  /// epoch is later rolled back, the runtime invokes the routines of the
  /// epoch's completed tasks in reverse completion order. Committing the
  /// epoch discards them.
  using RollbackRoutine = std::function<void()>;
  void set_rollback_routine(RollbackRoutine undo) {
    rollback_routine_ = std::move(undo);
  }
  [[nodiscard]] bool has_rollback_routine() const {
    return static_cast<bool>(rollback_routine_);
  }

  /// Approximate working-set size; platforms with software-managed local
  /// stores (Cell) budget-check this (paper §III-A: 32 KiB per task).
  void set_mem_bytes(std::size_t n) { mem_bytes_ = n; }
  [[nodiscard]] std::size_t mem_bytes() const { return mem_bytes_; }

  void add_completion_hook(CompletionHook hook) {
    hooks_.push_back(std::move(hook));
  }

  /// Executes the task body (executors only). A task whose body was already
  /// reclaimed (rollback) is a no-op.
  void run(TaskContext& ctx) {
    if (body_) body_(ctx);
  }

 private:
  friend class Runtime;
  friend class ThreadedExecutor;  ///< lock-free Staged→Running transition

  const TaskId id_;
  const std::string name_;
  const TaskClass cls_;
  const Epoch epoch_;
  const int depth_;
  const std::uint64_t cost_us_;
  Body body_;

  std::atomic<TaskState> state_{TaskState::Created};
  std::atomic<bool> abort_requested_{false};
  std::uint64_t ready_seq_ = 0;
  std::uint64_t stream_ = 0;
  std::uint64_t dispatch_us_ = kNeverDispatched;
  std::uint64_t staged_revocation_epoch_ = 0;
  std::size_t mem_bytes_ = 0;

  // Dependence bookkeeping — owned by the Runtime, guarded by its lock.
  int unmet_deps_ = 0;
  std::vector<TaskPtr> successors_;
  std::vector<CompletionHook> hooks_;
  RollbackRoutine rollback_routine_;
};

}  // namespace sre
