#include "sre/supertask.h"

namespace sre {

SuperTask& SuperTask::add_child(std::string child_name) {
  children_.push_back(
      std::make_unique<SuperTask>(std::move(child_name), this));
  return *children_.back();
}

void SuperTask::subscribe(const std::string& port, Handler handler) {
  subscribers_[port].push_back(std::move(handler));
}

std::size_t SuperTask::publish(const std::string& port, const Payload& payload,
                               std::uint64_t now_us) {
  std::size_t fired = 0;
  if (speculation_basis_ports_.contains(port) && speculation_trigger_) {
    speculation_trigger_(payload, now_us);
    ++fired;
  }
  auto it = subscribers_.find(port);
  if (it != subscribers_.end() && !it->second.empty()) {
    for (const Handler& h : it->second) {
      h(payload, now_us);
      ++fired;
    }
    return fired;
  }
  if (parent_ != nullptr) {
    return fired + parent_->publish(port, payload, now_us);
  }
  return fired;
}

void SuperTask::mark_speculation_basis(const std::string& port) {
  speculation_basis_ports_.insert(port);
}

bool SuperTask::is_speculation_basis(const std::string& port) const {
  return speculation_basis_ports_.contains(port);
}

}  // namespace sre
