#include "sre/ready_pool.h"

#include <algorithm>
#include <stdexcept>

namespace sre {

ReadyPool::Queue& ReadyPool::queue_for(const Task& task) {
  switch (task.task_class()) {
    case TaskClass::Control:
      return control_;
    case TaskClass::Speculative:
      return spec_;
    case TaskClass::Natural:
      return natural_;
  }
  throw std::logic_error("ReadyPool: unknown task class");
}

void ReadyPool::heap_push(Queue& q, const Entry& e) {
  // Sift-up on PODs. comp(a, b) == "a ranks below b" so the front is the
  // next task to dispatch.
  q.heap.push_back(e);
  std::push_heap(q.heap.begin(), q.heap.end(),
                 [this](const Entry& a, const Entry& b) {
                   return dispatches_before(b, a);
                 });
}

TaskPtr ReadyPool::heap_pop(Queue& q) {
  const auto comp = [this](const Entry& a, const Entry& b) {
    return dispatches_before(b, a);
  };
  while (!q.heap.empty()) {
    const Entry e = q.heap.front();
    std::pop_heap(q.heap.begin(), q.heap.end(), comp);
    q.heap.pop_back();
    auto it = owned_.find(e.id);
    if (it == owned_.end()) continue;  // tombstone from a lazy erase
    TaskPtr task = std::move(it->second);
    owned_.erase(it);
    q.live.fetch_sub(1, std::memory_order_relaxed);
    return task;
  }
  return nullptr;
}

void ReadyPool::maybe_compact(Queue& q) {
  // Rebuild once tombstones dominate, so rollback-heavy runs cannot grow a
  // heap of dead entries unboundedly. Amortized O(1) per erase.
  const std::size_t live = q.live.load(std::memory_order_relaxed);
  if (q.heap.size() < 64 || q.heap.size() < 2 * live) return;
  std::erase_if(q.heap,
                [this](const Entry& e) { return owned_.count(e.id) == 0; });
  std::make_heap(q.heap.begin(), q.heap.end(),
                 [this](const Entry& a, const Entry& b) {
                   return dispatches_before(b, a);
                 });
}

void ReadyPool::push(const TaskPtr& task) {
  if (task->task_class() == TaskClass::Speculative &&
      policy_ == DispatchPolicy::NonSpeculative) {
    throw std::logic_error(
        "ReadyPool: speculative task submitted under NonSpeculative policy");
  }
  Queue& q = queue_for(*task);
  const auto [it, inserted] = owned_.emplace(task->id(), task);
  if (!inserted) return;  // double push: match the old set's no-op
  heap_push(q, Entry{task->depth(), task->ready_seq(), task->id()});
  q.live.fetch_add(1, std::memory_order_relaxed);
}

bool ReadyPool::erase(const TaskPtr& task) {
  if (owned_.erase(task->id()) == 0) return false;
  Queue& q = queue_for(*task);
  q.live.fetch_sub(1, std::memory_order_relaxed);
  ++tombstones_created_;
  maybe_compact(q);
  return true;
}

TaskPtr ReadyPool::pop_from(Queue& q, bool is_spec) {
  TaskPtr task = heap_pop(q);
  if (!task) return nullptr;
  if (is_spec) {
    ++spec_pops_;
  } else {
    ++natural_pops_;
  }
  return task;
}

TaskPtr ReadyPool::pop(bool spec_allowed) {
  // Control tasks always win; they are counted on neither side of the
  // natural/speculative balance.
  if (TaskPtr task = heap_pop(control_)) {
    ++control_pops_;
    return task;
  }
  if (!spec_allowed) {
    return pop_from(natural_, false);
  }

  switch (policy_) {
    case DispatchPolicy::NonSpeculative:
      return pop_from(natural_, false);

    case DispatchPolicy::Conservative: {
      if (TaskPtr t = pop_from(natural_, false)) return t;
      return pop_from(spec_, true);
    }

    case DispatchPolicy::Aggressive: {
      if (TaskPtr t = pop_from(spec_, true)) return t;
      return pop_from(natural_, false);
    }

    case DispatchPolicy::Balanced: {
      // Strict alternation; fall through to the other queue when the
      // preferred one is empty (without flipping the preference, so the
      // long-run dispatch counts stay equal while both have work).
      if (balanced_prefer_spec_) {
        if (TaskPtr t = pop_from(spec_, true)) {
          balanced_prefer_spec_ = false;
          return t;
        }
        return pop_from(natural_, false);
      }
      if (TaskPtr t = pop_from(natural_, false)) {
        balanced_prefer_spec_ = true;
        return t;
      }
      return pop_from(spec_, true);
    }
  }
  return nullptr;
}

}  // namespace sre
