#include "sre/ready_pool.h"

#include <stdexcept>

namespace sre {

ReadyPool::Queue& ReadyPool::queue_for(const TaskPtr& task) {
  switch (task->task_class()) {
    case TaskClass::Control:
      return control_;
    case TaskClass::Speculative:
      return spec_;
    case TaskClass::Natural:
      return natural_;
  }
  throw std::logic_error("ReadyPool: unknown task class");
}

void ReadyPool::push(const TaskPtr& task) {
  if (task->task_class() == TaskClass::Speculative &&
      policy_ == DispatchPolicy::NonSpeculative) {
    throw std::logic_error(
        "ReadyPool: speculative task submitted under NonSpeculative policy");
  }
  queue_for(task).insert(task);
}

bool ReadyPool::erase(const TaskPtr& task) {
  return queue_for(task).erase(task) > 0;
}

TaskPtr ReadyPool::pop_from(Queue& q, bool is_spec) {
  if (q.empty()) return nullptr;
  TaskPtr task = *q.begin();
  q.erase(q.begin());
  if (is_spec) {
    ++spec_pops_;
  } else {
    ++natural_pops_;
  }
  return task;
}

TaskPtr ReadyPool::pop(bool spec_allowed) {
  // Control tasks always win; they are counted on neither side of the
  // natural/speculative balance.
  if (!control_.empty()) {
    TaskPtr task = *control_.begin();
    control_.erase(control_.begin());
    return task;
  }
  if (!spec_allowed) {
    return pop_from(natural_, false);
  }

  switch (policy_) {
    case DispatchPolicy::NonSpeculative:
      return pop_from(natural_, false);

    case DispatchPolicy::Conservative: {
      if (TaskPtr t = pop_from(natural_, false)) return t;
      return pop_from(spec_, true);
    }

    case DispatchPolicy::Aggressive: {
      if (TaskPtr t = pop_from(spec_, true)) return t;
      return pop_from(natural_, false);
    }

    case DispatchPolicy::Balanced: {
      // Strict alternation; fall through to the other queue when the
      // preferred one is empty (without flipping the preference, so the
      // long-run dispatch counts stay equal while both have work).
      if (balanced_prefer_spec_) {
        if (TaskPtr t = pop_from(spec_, true)) {
          balanced_prefer_spec_ = false;
          return t;
        }
        return pop_from(natural_, false);
      }
      if (TaskPtr t = pop_from(natural_, false)) {
        balanced_prefer_spec_ = true;
        return t;
      }
      return pop_from(spec_, true);
    }
  }
  return nullptr;
}

bool ReadyPool::empty() const {
  return control_.empty() && natural_.empty() && spec_.empty();
}

std::size_t ReadyPool::size() const {
  return control_.size() + natural_.size() + spec_.size();
}

}  // namespace sre
