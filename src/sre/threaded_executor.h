// ThreadedExecutor: real-thread engine for the SRE.
//
// Mirrors the paper's x86 runtime structure (§III-A): one *feeder* thread
// receives data from the parent application and injects it into the system,
// one *director* thread manages scheduling bookkeeping and directs data
// (dependence propagation, completion hooks), and N worker threads execute
// computational tasks, polling for assignments.
//
// Used by the examples and tests; the figure benchmarks use the
// deterministic virtual-time sim::SimExecutor instead (see DESIGN.md §3).
#pragma once

#include <condition_variable>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "sre/runtime.h"

namespace sre {

class ThreadedExecutor {
 public:
  struct Options {
    unsigned workers = 4;
    /// Multiplier applied to scheduled arrival times; tests use < 1.0 to
    /// compress slow-I/O scenarios into fast wall-clock runs.
    double arrival_time_scale = 1.0;
    /// Invoked once on each worker thread before it enters its dispatch
    /// loop, with the worker index. Lets callers pin thread-local state to
    /// the thread (e.g. metrics::bind_shard) without this layer depending
    /// on them. May be null.
    std::function<void(unsigned worker_ix)> worker_start_hook;
  };

  /// Arrival callback: receives the engine time (µs) at which it fired.
  using Arrival = std::function<void(std::uint64_t now_us)>;

  ThreadedExecutor(Runtime& runtime, Options options);
  ~ThreadedExecutor();

  ThreadedExecutor(const ThreadedExecutor&) = delete;
  ThreadedExecutor& operator=(const ThreadedExecutor&) = delete;

  /// Engine time: microseconds since construction (steady clock).
  [[nodiscard]] std::uint64_t now_us() const;

  /// Schedules `fn` to run on the feeder thread at engine time `at_us`
  /// (scaled by arrival_time_scale). Must be called before run().
  void schedule_arrival(std::uint64_t at_us, Arrival fn);

  /// Runs to completion: returns when all scheduled arrivals have fired, all
  /// dispatched tasks have completed and been processed, and the runtime is
  /// quiescent. Throws std::runtime_error if a task body throws.
  void run();

 private:
  void worker_loop(unsigned worker_ix);
  void director_loop();
  void feeder_loop();
  [[nodiscard]] bool finished_locked() const;

  Runtime& runtime_;
  Options options_;
  std::chrono::steady_clock::time_point start_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;      ///< wakes workers
  std::condition_variable director_cv_;  ///< wakes the director
  std::condition_variable done_cv_;      ///< wakes run()

  struct Completion {
    TaskPtr task;
    std::uint64_t done_us;
  };
  std::deque<Completion> completions_;
  std::vector<std::pair<std::uint64_t, Arrival>> arrivals_;  // sorted by time

  std::size_t in_flight_ = 0;  ///< popped by a worker, not yet directed
  bool feeder_done_ = false;
  bool stopping_ = false;
  std::string error_;

  std::vector<std::thread> workers_;
  std::thread director_;
  std::thread feeder_;
};

}  // namespace sre
