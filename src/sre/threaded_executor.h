// ThreadedExecutor: real-thread engine for the SRE.
//
// Mirrors the paper's x86 runtime structure (§III-A): one *feeder* thread
// receives data from the parent application and injects it into the system,
// one *director* thread manages scheduling bookkeeping and directs data
// (dependence propagation, completion hooks), and N worker threads execute
// computational tasks.
//
// Two dispatch modes:
//
//  * Sharded (default) — the scalable path. The director batch-pops ready
//    tasks from the central pool (one lock acquisition per batch) and feeds
//    them to per-worker bounded SPSC inboxes; each worker drains its inbox
//    into a private Chase–Lev deque, pops locally without any lock, and
//    steals from siblings when dry. Completions retire through a lock-free
//    MPSC queue back to the director — a worker never takes the runtime
//    lock to finish a task. Wakeups are targeted (one condvar per worker,
//    one for the director); there is no broadcast on the hot path.
//    Rollback correctness: tasks staged into worker-local queues carry a
//    revocation-epoch stamp; a worker popping a task whose stamp is stale
//    checks the abort flag and, if set, retires the task unrun (the
//    completion path then discards it exactly like an in-flight abort).
//
//  * Central — the paper-literal single-lock baseline (every pop goes
//    through Runtime::next_task, completions through one mutex-guarded
//    deque). Kept for A/B measurement (bench/micro_dispatch) and as the
//    reference for the determinism-of-results tests.
//
// Used by the examples and tests; the figure benchmarks use the
// deterministic virtual-time sim::SimExecutor instead (see DESIGN.md §3 and
// docs/scheduling.md).
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "sre/mpsc_queue.h"
#include "sre/runtime.h"
#include "sre/spsc_ring.h"
#include "sre/steal_deque.h"

namespace sre {

/// How worker threads obtain tasks. See the file comment.
enum class DispatchMode : std::uint8_t { Central, Sharded };

class ThreadedExecutor {
 public:
  struct Options {
    unsigned workers = 4;
    /// Multiplier applied to scheduled arrival times; tests use < 1.0 to
    /// compress slow-I/O scenarios into fast wall-clock runs.
    double arrival_time_scale = 1.0;
    /// Invoked once on each worker thread before it enters its dispatch
    /// loop, with the worker index. Lets callers pin thread-local state to
    /// the thread (e.g. metrics::bind_shard) without this layer depending
    /// on them. May be null.
    std::function<void(unsigned worker_ix)> worker_start_hook;
    DispatchMode dispatch = DispatchMode::Sharded;
    /// Sharded mode tuning. Capacities are rounded up to powers of two.
    unsigned inbox_capacity = 32;       ///< director→worker staging ring
    unsigned local_queue_capacity = 64; ///< per-worker steal deque
    unsigned stage_batch = 16;          ///< max tasks staged per lock grab
    /// Record per-pop dispatch latency (acquire-start → task in hand) into
    /// DispatchStats::pop_latency. Off by default: it adds two clock reads
    /// per task.
    bool collect_pop_latency = false;
  };

  /// Arrival callback: receives the engine time (µs) at which it fired.
  using Arrival = std::function<void(std::uint64_t now_us)>;

  /// Aggregated dispatch counters (sharded mode; zeros under Central).
  /// Collected per worker on cache-line-padded private slots and summed on
  /// demand — workers never contend on these.
  struct DispatchStats {
    /// The four pop sources partition the tasks a worker acquired: each task
    /// is counted in exactly one of local_pops / inbox_pops / steals /
    /// self_stages, so their sum (pop_count()) equals tasks acquired.
    std::uint64_t tasks_run = 0;        ///< bodies executed
    std::uint64_t local_pops = 0;       ///< from the worker's own deque
    std::uint64_t inbox_pops = 0;       ///< taken directly while draining
    std::uint64_t steals = 0;           ///< taken from a sibling's deque
    /// Acquires satisfied by a worker batch-popping the pool itself; the
    /// rest of such a batch parks in its deque and surfaces as local_pops.
    std::uint64_t self_stages = 0;
    std::uint64_t director_stages = 0;  ///< tasks fed by the director
    std::uint64_t revoked_at_pop = 0;   ///< rollback victims retired unrun
    std::uint64_t parks = 0;            ///< worker sleeps
    std::uint64_t completion_fallbacks = 0;  ///< MPSC full, retired via lock
    /// Latency path: worker retired its own completion inline because it had
    /// nothing else to do — the successor becomes ready in the same thread
    /// (chain handoff without a director round-trip).
    std::uint64_t inline_finishes = 0;
    /// Completions a starved worker drained from the MPSC queue itself by
    /// claiming the retire role (work-conserving: no waiting on the
    /// director to produce successors).
    std::uint64_t worker_retires = 0;
    /// Log-bucketed (powers of two, µs) pop-latency histogram; bucket b
    /// counts pops with bit_width(latency_us) == b. Only populated when
    /// Options::collect_pop_latency is set.
    std::array<std::uint64_t, 64> pop_latency = {};

    [[nodiscard]] std::uint64_t pop_count() const;
    /// Approximate percentile (bucket upper bound), q in [0,1].
    [[nodiscard]] std::uint64_t pop_latency_quantile_us(double q) const;
  };

  ThreadedExecutor(Runtime& runtime, Options options);
  ~ThreadedExecutor();

  ThreadedExecutor(const ThreadedExecutor&) = delete;
  ThreadedExecutor& operator=(const ThreadedExecutor&) = delete;

  /// Engine time: microseconds since construction (steady clock).
  [[nodiscard]] std::uint64_t now_us() const;

  /// Schedules `fn` to run on the feeder thread at engine time `at_us`
  /// (scaled by arrival_time_scale). May be called before run() or — when
  /// the executor is live — from any thread, including arrival callbacks
  /// themselves; an arrival earlier than the one the feeder is currently
  /// sleeping towards preempts that sleep. Arrivals with equal times fire
  /// in submission order. An arrival whose time is already in the past
  /// fires as soon as the feeder reaches it.
  void schedule_arrival(std::uint64_t at_us, Arrival fn);

  /// Service mode: keeps the feeder alive when its schedule drains, so new
  /// work (sessions) can be injected while run() is in flight. Call
  /// begin_service() before run(); run() then blocks — typically on a
  /// background thread — until end_service() is called *and* everything
  /// scheduled has fired and completed. Without begin_service() the
  /// behaviour is unchanged: the feeder exits once the pre-scheduled
  /// arrivals have fired.
  void begin_service();
  /// Closes service mode: the feeder fires whatever is still scheduled,
  /// then exits, letting run() return once the runtime is quiescent.
  /// Idempotent; safe from any thread.
  void end_service();
  [[nodiscard]] bool service_open() const;

  /// Runs to completion: returns when all scheduled arrivals have fired, all
  /// dispatched tasks have completed and been processed, and the runtime is
  /// quiescent. Throws std::runtime_error if a task body throws.
  void run();

  /// Aggregated dispatch counters; meaningful after run() returns.
  [[nodiscard]] DispatchStats dispatch_stats() const;

  [[nodiscard]] DispatchMode dispatch_mode() const { return options_.dispatch; }

 private:
  // --- Sharded mode ---------------------------------------------------------

  /// Per-worker state. Heap-allocated so WorkerState addresses are stable
  /// and cache-line aligned; workers only dirty their own lines.
  struct alignas(64) WorkerState {
    WorkerState(unsigned inbox_cap, unsigned deque_cap)
        : inbox(inbox_cap), deque(deque_cap) {
      scratch.reserve(inbox.capacity());
    }
    SpscRing inbox;
    StealDeque deque;
    std::vector<Task*> scratch;  ///< drain buffer (owner thread only)
    std::mutex park_mu;
    std::condition_variable park_cv;
    std::atomic<bool> parked{false};
    std::uint64_t revocation_seen = 0;  ///< owner thread only
    DispatchStats stats;                ///< owner thread writes, run() reads after join
  };

  void worker_loop_sharded(unsigned worker_ix);
  void director_loop_sharded();
  Task* acquire_task(WorkerState& me, unsigned worker_ix);
  Task* drain_inbox(WorkerState& me);
  bool execute_and_retire(Task* task, WorkerState& me, unsigned worker_ix);
  /// Claims the retire role (try-lock) and drains up to one batch of
  /// completions through Runtime::finish_staged_batch. Returns the number
  /// retired (0: queue empty or another thread holds the role).
  std::size_t try_retire_batch();
  bool distribute();          ///< director: pool → inboxes; true if any staged
  void wake_worker(unsigned worker_ix);
  void wake_director();
  void wake_all_workers();

  // --- Central (legacy single-lock) mode ------------------------------------

  void worker_loop_central(unsigned worker_ix);
  void director_loop_central();
  [[nodiscard]] bool finished_locked_central() const;

  void feeder_loop();
  void fail(const std::string& what);

  Runtime& runtime_;
  Options options_;
  std::chrono::steady_clock::time_point start_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;      ///< wakes workers (central mode)
  std::condition_variable done_cv_;      ///< wakes run()
  std::condition_variable director_cv_;  ///< wakes the director (central mode)

  struct Completion {
    TaskPtr task;
    std::uint64_t done_us;
  };
  std::deque<Completion> completions_central_;

  /// Feeder schedule: a binary min-heap on (at_us, seq) — seq preserves
  /// submission order between equal-time arrivals, matching the stable sort
  /// the pre-service feeder used. Guarded by feeder_mu_; feeder_cv_ wakes
  /// the feeder for earlier insertions, end_service() and shutdown.
  struct TimedArrival {
    std::uint64_t at_us;
    std::uint64_t seq;
    Arrival fn;
  };
  struct ArrivalAfter {
    bool operator()(const TimedArrival& a, const TimedArrival& b) const {
      return a.at_us > b.at_us || (a.at_us == b.at_us && a.seq > b.seq);
    }
  };
  std::vector<TimedArrival> arrival_heap_;
  mutable std::mutex feeder_mu_;
  std::condition_variable feeder_cv_;
  std::uint64_t arrival_seq_ = 0;   ///< guarded by feeder_mu_
  bool service_open_ = false;       ///< guarded by feeder_mu_

  std::size_t in_flight_ = 0;  ///< central mode: popped, not yet directed
  std::atomic<bool> feeder_done_{false};
  std::atomic<bool> stopping_{false};
  std::string error_;  ///< guarded by mu_

  // Sharded mode machinery.
  std::vector<std::unique_ptr<WorkerState>> wstate_;
  std::unique_ptr<CompletionQueue> completions_;
  /// Serializes the single-consumer side of completions_ (the "retire
  /// role"): held by the director's drain loop, try-locked by starved
  /// workers. Guards only the pops — the batch finish runs outside it.
  std::mutex retire_mu_;
  std::mutex dir_mu_;
  std::condition_variable dir_cv_;
  std::atomic<bool> dir_parked_{false};
  /// Completions being propagated right now (guards the window between a
  /// task retiring and its completion hooks submitting follow-on work, so
  /// run() cannot observe a transient quiescent state).
  std::atomic<std::size_t> directing_{0};
  unsigned rr_cursor_ = 0;           ///< director round-robin start (director only)
  DispatchStats dir_stats_;          ///< director-thread counters
  std::vector<std::size_t> free_buf_;  ///< distribute() scratch (director only)

  std::vector<std::thread> workers_;
  std::thread director_;
  std::thread feeder_;
};

}  // namespace sre
