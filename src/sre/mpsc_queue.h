// CompletionQueue: bounded multi-producer queue of task completions.
//
// Workers (producers) retire finished tasks here without ever touching the
// runtime lock; the director (consumer) drains it and performs dependence
// propagation. The cells carry the completion timestamp alongside the task
// so the hot path is one CAS on the producer cursor plus one release store.
//
// This is Vyukov's bounded MPMC queue specialised to our use: per-cell
// sequence numbers arbitrate producers, and the single consumer makes the
// pop side a plain load/store pair. No standalone fences, so it is exact
// under TSan. push() returning false (full) is a degraded-but-correct path:
// the worker retires the task directly through the runtime lock instead.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace sre {

class Task;

class CompletionQueue {
 public:
  /// `capacity` is rounded up to a power of two, minimum 4.
  explicit CompletionQueue(std::size_t capacity) {
    std::size_t cap = 4;
    while (cap < capacity) cap <<= 1;
    cells_ = std::vector<Cell>(cap);
    for (std::size_t i = 0; i < cap; ++i) {
      cells_[i].seq.store(i, std::memory_order_relaxed);
    }
    mask_ = cap - 1;
  }

  /// Producer (any worker). Returns false when full.
  bool push(Task* task, std::uint64_t done_us) {
    std::size_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[pos & mask_];
      const std::size_t seq = cell.seq.load(std::memory_order_acquire);
      const auto dif = static_cast<std::intptr_t>(seq) -
                       static_cast<std::intptr_t>(pos);
      if (dif == 0) {
        if (tail_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          cell.task = task;
          cell.done_us = done_us;
          cell.seq.store(pos + 1, std::memory_order_release);
          return true;
        }
      } else if (dif < 0) {
        return false;  // full
      } else {
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
  }

  /// Consumer (director only). Returns false when empty.
  bool pop(Task*& task, std::uint64_t& done_us) {
    const std::size_t pos = head_.load(std::memory_order_relaxed);
    Cell& cell = cells_[pos & mask_];
    const std::size_t seq = cell.seq.load(std::memory_order_acquire);
    if (static_cast<std::intptr_t>(seq) -
            static_cast<std::intptr_t>(pos + 1) < 0) {
      return false;
    }
    task = cell.task;
    done_us = cell.done_us;
    cell.seq.store(pos + mask_ + 1, std::memory_order_release);
    head_.store(pos + 1, std::memory_order_relaxed);
    return true;
  }

  [[nodiscard]] bool empty() const {
    return head_.load(std::memory_order_acquire) ==
           tail_.load(std::memory_order_acquire);
  }

  /// Approximate occupancy (racy snapshot of the cursors). Producers use it
  /// to decide whether the consumer might be idle (≈ empty → worth waking).
  [[nodiscard]] std::size_t size_estimate() const {
    const std::size_t t = tail_.load(std::memory_order_relaxed);
    const std::size_t h = head_.load(std::memory_order_relaxed);
    return t > h ? t - h : 0;
  }

 private:
  struct Cell {
    std::atomic<std::size_t> seq{0};
    Task* task = nullptr;
    std::uint64_t done_us = 0;
  };

  std::vector<Cell> cells_;
  std::size_t mask_ = 0;
  alignas(64) std::atomic<std::size_t> tail_{0};  ///< producers
  alignas(64) std::atomic<std::size_t> head_{0};  ///< consumer
};

}  // namespace sre
