// Chaos points: named yield-point instrumentation for concurrency torture.
//
// A chaos point marks a spot where a lock has just been dropped (or is about
// to be re-taken) around user callbacks — exactly the windows where racing
// threads can interleave. In production the macro is a single relaxed atomic
// load of a null pointer (branch never taken); under the torture harness
// (src/stress) an installed Hook sees every crossing and can yield, sleep, or
// synchronously inject a racing operation to force a specific interleaving
// deterministically.
//
// Contract for hooks:
//  * on_point runs on the thread crossing the site, with whatever locks that
//    thread holds at the site (by convention: none — points are planted only
//    in unlock windows).
//  * A hook MAY call back into the object that owns the site (that is the
//    whole point: it simulates a racing thread), but it must guard against
//    its own re-entrancy — the injected call may itself cross chaos points.
//  * Installation is process-global and not synchronized against crossings:
//    install before concurrent work starts, uninstall after it ends.
#pragma once

#include <atomic>

namespace sre::chaos {

class Hook {
 public:
  virtual ~Hook() = default;
  /// `site` is a string literal naming the crossing (stable identity: the
  /// pointer may be compared or hashed; the text is for humans and traces).
  virtual void on_point(const char* site) noexcept = 0;
};

namespace detail {
extern std::atomic<Hook*> g_hook;
}  // namespace detail

/// Installs `hook` as the process-global chaos hook (nullptr uninstalls).
/// Returns the previously installed hook.
Hook* install(Hook* hook);

/// The currently installed hook (nullptr when none).
[[nodiscard]] Hook* installed();

/// RAII installer for test scopes: installs on construction, restores the
/// previous hook on destruction.
class ScopedHook {
 public:
  explicit ScopedHook(Hook* hook) : prev_(install(hook)) {}
  ~ScopedHook() { install(prev_); }
  ScopedHook(const ScopedHook&) = delete;
  ScopedHook& operator=(const ScopedHook&) = delete;

 private:
  Hook* prev_;
};

inline void point(const char* site) noexcept {
  Hook* h = detail::g_hook.load(std::memory_order_acquire);
  if (h != nullptr) h->on_point(site);
}

}  // namespace sre::chaos

/// Marks a torture-relevant interleaving window. Free when no hook is
/// installed (one relaxed-ish load, no call).
#define SRE_CHAOS_POINT(site) ::sre::chaos::point(site)
