// ReadyPool: the SRE's scheduler data structure.
//
// Three queues — Control, Natural, Speculative. Control tasks are always
// dispatched first (paper: prediction/verification tasks get highest
// priority). Between Natural and Speculative, the DispatchPolicy decides.
// Within each queue, ordering is deepest-pipeline-stage-first with FCFS
// tie-break (paper §III-A: "a priority-based scheduling policy where depth
// is favored, but uses FCFS for tasks of equal priority").
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "sre/ids.h"
#include "sre/task.h"

namespace sre {

class ReadyPool {
 public:
  explicit ReadyPool(DispatchPolicy policy,
                     PriorityMode mode = PriorityMode::DepthFirst)
      : policy_(policy),
        control_(Order{mode}),
        natural_(Order{mode}),
        spec_(Order{mode}) {}

  [[nodiscard]] DispatchPolicy policy() const { return policy_; }

  /// Inserts a ready task (its ready_seq must already be assigned).
  void push(const TaskPtr& task);

  /// Removes a specific task (rollback of a Ready task). Returns true if the
  /// task was present.
  bool erase(const TaskPtr& task);

  /// Pops the next task to dispatch per the policy, or nullptr if empty.
  ///
  /// `spec_allowed` lets the executor veto speculative dispatch for this pop
  /// even when the policy would permit it. Platforms with multiple buffering
  /// use this for the conservative policy: "no non-speculative task
  /// available" must account for naturals already committed to staging
  /// queues (paper §V-B's Cell observation), which only the executor can see.
  TaskPtr pop(bool spec_allowed = true);

  [[nodiscard]] bool empty() const;
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t natural_size() const { return natural_.size(); }
  [[nodiscard]] std::size_t speculative_size() const { return spec_.size(); }
  [[nodiscard]] std::size_t control_size() const { return control_.size(); }

  /// Dispatch counters (used by tests to verify policy behaviour).
  [[nodiscard]] std::uint64_t natural_pops() const { return natural_pops_; }
  [[nodiscard]] std::uint64_t speculative_pops() const { return spec_pops_; }

 private:
  struct Order {
    PriorityMode mode = PriorityMode::DepthFirst;
    // DepthFirst: higher depth first, then earlier ready_seq; Fcfs: ready
    // order only. TaskId gives a total order in both cases.
    bool operator()(const TaskPtr& a, const TaskPtr& b) const {
      if (mode == PriorityMode::DepthFirst && a->depth() != b->depth()) {
        return a->depth() > b->depth();
      }
      if (a->ready_seq() != b->ready_seq()) return a->ready_seq() < b->ready_seq();
      return a->id() < b->id();
    }
  };
  using Queue = std::set<TaskPtr, Order>;

  TaskPtr pop_from(Queue& q, bool is_spec);
  Queue& queue_for(const TaskPtr& task);

  DispatchPolicy policy_;
  Queue control_;
  Queue natural_;
  Queue spec_;
  bool balanced_prefer_spec_ = true;  ///< Balanced policy alternation state
  std::uint64_t natural_pops_ = 0;
  std::uint64_t spec_pops_ = 0;
};

}  // namespace sre
