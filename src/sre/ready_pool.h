// ReadyPool: the SRE's scheduler data structure.
//
// Three queues — Control, Natural, Speculative. Control tasks are always
// dispatched first (paper: prediction/verification tasks get highest
// priority). Between Natural and Speculative, the DispatchPolicy decides.
// Within each queue, ordering is deepest-pipeline-stage-first with FCFS
// tie-break (paper §III-A: "a priority-based scheduling policy where depth
// is favored, but uses FCFS for tasks of equal priority").
//
// Representation: each queue is a binary heap over small POD entries
// {depth, ready_seq, id} with TaskPtr ownership held once in a side table,
// so heap sifts move 24-byte PODs instead of churning shared_ptr refcounts
// (the std::set<TaskPtr> representation this replaced paid an allocation,
// a rebalance and refcount traffic per push/pop). erase() — rollback of a
// Ready task — is lazy: the ownership entry is dropped and the heap entry
// becomes a tombstone skipped at pop time; heaps compact when tombstones
// outnumber live entries. The comparator is a total order (TaskId
// tie-break), so heap pops reproduce the exact pop sequence of the ordered
// set — the virtual-time SimExecutor's schedules are bit-identical.
//
// Thread safety: externally synchronized (the Runtime lock), like the
// container it replaced. The per-queue size counters are atomics so that
// lock-free probes (Runtime::ready_count, worker idle checks) can read
// them without taking the lock.
#pragma once

#include <atomic>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sre/ids.h"
#include "sre/task.h"

namespace sre {

class ReadyPool {
 public:
  explicit ReadyPool(DispatchPolicy policy,
                     PriorityMode mode = PriorityMode::DepthFirst)
      : policy_(policy), mode_(mode) {}

  [[nodiscard]] DispatchPolicy policy() const { return policy_; }

  /// Inserts a ready task (its ready_seq must already be assigned).
  void push(const TaskPtr& task);

  /// Removes a specific task (rollback of a Ready task). Returns true if the
  /// task was present. O(1): drops ownership and leaves a heap tombstone.
  bool erase(const TaskPtr& task);

  /// Pops the next task to dispatch per the policy, or nullptr if empty.
  ///
  /// `spec_allowed` lets the executor veto speculative dispatch for this pop
  /// even when the policy would permit it. Platforms with multiple buffering
  /// use this for the conservative policy: "no non-speculative task
  /// available" must account for naturals already committed to staging
  /// queues (paper §V-B's Cell observation), which only the executor can see.
  TaskPtr pop(bool spec_allowed = true);

  [[nodiscard]] bool empty() const { return size() == 0; }
  /// O(1), safe to read without the runtime lock.
  [[nodiscard]] std::size_t size() const {
    return control_.live.load(std::memory_order_relaxed) +
           natural_.live.load(std::memory_order_relaxed) +
           spec_.live.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t natural_size() const {
    return natural_.live.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t speculative_size() const {
    return spec_.live.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t control_size() const {
    return control_.live.load(std::memory_order_relaxed);
  }

  /// Dispatch counters (used by tests to verify policy behaviour).
  [[nodiscard]] std::uint64_t natural_pops() const { return natural_pops_; }
  [[nodiscard]] std::uint64_t speculative_pops() const { return spec_pops_; }
  [[nodiscard]] std::uint64_t control_pops() const { return control_pops_; }
  /// Ready-task revocations processed (rollback erase of a Ready task).
  [[nodiscard]] std::uint64_t tombstones_created() const {
    return tombstones_created_;
  }

 private:
  /// Heap entry: everything the comparator needs, no Task pointer chase.
  struct Entry {
    int depth = 0;
    std::uint64_t ready_seq = 0;
    TaskId id = 0;
  };

  struct Queue {
    std::vector<Entry> heap;
    std::atomic<std::size_t> live{0};
  };

  /// True when `a` dispatches before `b`: depth-favored (DepthFirst mode),
  /// then FCFS (ready_seq), then TaskId — a total order.
  [[nodiscard]] bool dispatches_before(const Entry& a, const Entry& b) const {
    if (mode_ == PriorityMode::DepthFirst && a.depth != b.depth) {
      return a.depth > b.depth;
    }
    if (a.ready_seq != b.ready_seq) return a.ready_seq < b.ready_seq;
    return a.id < b.id;
  }

  void heap_push(Queue& q, const Entry& e);
  /// Pops live entries (skipping tombstones) and returns the owned TaskPtr,
  /// or nullptr when the queue has no live entries.
  TaskPtr heap_pop(Queue& q);
  void maybe_compact(Queue& q);

  TaskPtr pop_from(Queue& q, bool is_spec);
  Queue& queue_for(const Task& task);

  DispatchPolicy policy_;
  PriorityMode mode_;
  Queue control_;
  Queue natural_;
  Queue spec_;
  /// Single ownership table for all three queues; a heap entry is live iff
  /// its id is present here.
  std::unordered_map<TaskId, TaskPtr> owned_;
  bool balanced_prefer_spec_ = true;  ///< Balanced policy alternation state
  std::uint64_t natural_pops_ = 0;
  std::uint64_t spec_pops_ = 0;
  std::uint64_t control_pops_ = 0;
  std::uint64_t tombstones_created_ = 0;
};

}  // namespace sre
