// SpscRing: bounded single-producer / single-consumer ring of Task*.
//
// The sharded ThreadedExecutor uses one per worker as its *inbox*: the
// director (sole producer) stages batches of ready tasks into it, the owning
// worker (sole consumer) drains it into its steal deque. Thieves never touch
// an inbox — cross-worker redistribution happens through StealDeque.
//
// Synchronization: tail is written with release by the producer and read
// with acquire by the consumer, which also publishes the task's staging
// fields (state, revocation stamp) written before push(). No fences — every
// ordering lives on an atomic op, so the structure is exact under TSan.
#pragma once

#include <atomic>
#include <cstddef>
#include <vector>

namespace sre {

class Task;

class SpscRing {
 public:
  /// `capacity` is rounded up to a power of two, minimum 2.
  explicit SpscRing(std::size_t capacity) {
    std::size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    cells_ = std::vector<std::atomic<Task*>>(cap);
    mask_ = cap - 1;
  }

  [[nodiscard]] std::size_t capacity() const { return mask_ + 1; }

  /// Producer side. Returns false when full.
  bool push(Task* task) {
    const std::size_t t = tail_.load(std::memory_order_relaxed);
    const std::size_t h = head_.load(std::memory_order_acquire);
    if (t - h > mask_) return false;
    cells_[t & mask_].store(task, std::memory_order_relaxed);
    tail_.store(t + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side. Returns nullptr when empty.
  Task* pop() {
    const std::size_t h = head_.load(std::memory_order_relaxed);
    const std::size_t t = tail_.load(std::memory_order_acquire);
    if (h == t) return nullptr;
    Task* task = cells_[h & mask_].load(std::memory_order_relaxed);
    head_.store(h + 1, std::memory_order_release);
    return task;
  }

  /// Producer-side free-slot estimate (exact for the producer: the consumer
  /// only ever grows it).
  [[nodiscard]] std::size_t free_slots() const {
    const std::size_t t = tail_.load(std::memory_order_relaxed);
    const std::size_t h = head_.load(std::memory_order_acquire);
    return capacity() - (t - h);
  }

  [[nodiscard]] bool empty() const {
    return head_.load(std::memory_order_acquire) ==
           tail_.load(std::memory_order_acquire);
  }

 private:
  std::vector<std::atomic<Task*>> cells_;
  std::size_t mask_ = 0;
  alignas(64) std::atomic<std::size_t> head_{0};  ///< consumer cursor
  alignas(64) std::atomic<std::size_t> tail_{0};  ///< producer cursor
};

}  // namespace sre
