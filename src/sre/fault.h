// Fault injection: spurious task failures and latency spikes for torture
// runs (src/stress) and resilience tests.
//
// A FaultPlan is consulted by the *threaded* executor immediately before each
// task body runs. It can delay the body (latency spike — models a slow disk,
// a page fault, a preempted core) or fail the task outright (the body never
// runs; the task retires through the aborted path exactly as if a rollback
// had caught it in flight, so the destroy signal propagates to consumers).
//
// The deterministic virtual-time simulator never consults the plan: sim
// schedules must stay bit-identical run to run, fault plan or not.
//
// Thread safety: before_task is called concurrently from every worker thread;
// implementations must be internally synchronized (the stress harness uses
// per-site counters hashed with the seed, no shared mutable state).
#pragma once

#include <cstdint>

namespace sre {

class Task;

struct FaultDecision {
  enum class Kind : std::uint8_t {
    None,   ///< run the task normally
    Delay,  ///< sleep delay_us, then run the task normally
    Fail,   ///< do not run the body; retire the task as aborted
  };
  Kind kind = Kind::None;
  std::uint64_t delay_us = 0;  ///< used by Delay

  [[nodiscard]] static FaultDecision none() { return {}; }
  [[nodiscard]] static FaultDecision delay(std::uint64_t us) {
    return {Kind::Delay, us};
  }
  [[nodiscard]] static FaultDecision fail() { return {Kind::Fail, 0}; }
};

class FaultPlan {
 public:
  virtual ~FaultPlan() = default;

  /// Decide the fate of `task` just before its body would run. Must not
  /// call into the Runtime.
  [[nodiscard]] virtual FaultDecision before_task(const Task& task) noexcept = 0;
};

}  // namespace sre
