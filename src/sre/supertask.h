// SuperTask: the SRE's hierarchical data-routing node.
//
// "Our SRE defines a hierarchy of node SuperTasks whose sole purpose is to
//  direct the flow of data between its child Tasks and SuperTasks, and
//  eventually to its parent as it completes." (paper §III-A)
//
// A SuperTask routes type-erased payloads by port name: children publish to
// ports; subscribers on the same SuperTask receive the payload; ports with no
// local subscriber forward to the parent. Ports may be flagged as a
// *speculation basis* (paper §III-B): payloads published there additionally
// fire the speculation trigger, which is how the tolerant-value-speculation
// layer learns that a new estimate exists while normal execution advances.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace sre {

class SuperTask {
 public:
  using Payload = std::shared_ptr<const void>;
  /// Handler receives the payload and the engine time of publication.
  using Handler = std::function<void(const Payload&, std::uint64_t now_us)>;

  explicit SuperTask(std::string name, SuperTask* parent = nullptr)
      : name_(std::move(name)), parent_(parent) {}

  SuperTask(const SuperTask&) = delete;
  SuperTask& operator=(const SuperTask&) = delete;

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] SuperTask* parent() const { return parent_; }

  /// Creates a child SuperTask; the parent owns it.
  SuperTask& add_child(std::string child_name);
  [[nodiscard]] const std::vector<std::unique_ptr<SuperTask>>& children() const {
    return children_;
  }

  /// Registers a handler for payloads published on `port`.
  void subscribe(const std::string& port, Handler handler);

  /// Publishes a payload on `port`: local subscribers fire; if there are
  /// none, the payload escalates to the parent ("eventually to its parent as
  /// it completes"). Returns the number of handlers that fired.
  std::size_t publish(const std::string& port, const Payload& payload,
                      std::uint64_t now_us);

  /// Flags `port` as a basis for speculation: publications on it also invoke
  /// the speculation trigger (if installed), without disturbing normal
  /// routing.
  void mark_speculation_basis(const std::string& port);
  [[nodiscard]] bool is_speculation_basis(const std::string& port) const;

  void set_speculation_trigger(Handler trigger) {
    speculation_trigger_ = std::move(trigger);
  }

  /// Typed publish/subscribe conveniences.
  template <typename T>
  std::size_t publish_value(const std::string& port, T value,
                            std::uint64_t now_us) {
    return publish(port, std::make_shared<const T>(std::move(value)), now_us);
  }

  template <typename T>
  void subscribe_value(const std::string& port,
                       std::function<void(const T&, std::uint64_t)> fn) {
    subscribe(port, [fn = std::move(fn)](const Payload& p, std::uint64_t t) {
      fn(*std::static_pointer_cast<const T>(p), t);
    });
  }

 private:
  std::string name_;
  SuperTask* parent_;
  std::vector<std::unique_ptr<SuperTask>> children_;
  std::unordered_map<std::string, std::vector<Handler>> subscribers_;
  std::unordered_set<std::string> speculation_basis_ports_;
  Handler speculation_trigger_;
};

}  // namespace sre
