// StealDeque: bounded Chase–Lev work-stealing deque of Task*.
//
// The owning worker pushes and pops at the *bottom* (LIFO — the most
// recently staged, highest-priority work); idle workers steal from the *top*
// (FIFO — the oldest, lowest-priority leftovers). This is the classic
// Chase–Lev structure [Chase & Lev, SPAA'05] in the weak-memory formulation
// of Le et al. [PPoPP'13], with two deliberate deviations:
//
//  * bounded: push() fails when full instead of growing. The executor sizes
//    the deque to cover its inbox plus a self-stage batch, and the director
//    simply leaves excess work in the central ReadyPool, so a full deque is
//    back-pressure, not loss.
//  * no standalone fences: the original uses atomic_thread_fence(seq_cst),
//    which ThreadSanitizer does not model precisely. Every ordering here is
//    carried by a seq_cst operation on top/bottom instead — strictly
//    stronger, and exact under TSan.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace sre {

class Task;

class StealDeque {
 public:
  /// `capacity` is rounded up to a power of two, minimum 2.
  explicit StealDeque(std::size_t capacity) {
    std::size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    cells_ = std::vector<std::atomic<Task*>>(cap);
    mask_ = static_cast<std::int64_t>(cap) - 1;
  }

  [[nodiscard]] std::size_t capacity() const {
    return static_cast<std::size_t>(mask_ + 1);
  }

  /// Owner only. Returns false when full.
  bool push(Task* task) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    if (b - t > mask_) return false;
    cells_[b & mask_].store(task, std::memory_order_relaxed);
    bottom_.store(b + 1, std::memory_order_seq_cst);  // publish to thieves
    return true;
  }

  /// Owner only: take the most recently pushed task, or nullptr.
  Task* pop() {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    bottom_.store(b, std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    Task* task = nullptr;
    if (t <= b) {
      task = cells_[b & mask_].load(std::memory_order_relaxed);
      if (t == b) {
        // Last element: race the thieves for it.
        if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                          std::memory_order_relaxed)) {
          task = nullptr;  // a thief won
        }
        bottom_.store(b + 1, std::memory_order_relaxed);
      }
    } else {
      bottom_.store(b + 1, std::memory_order_relaxed);  // was empty
    }
    return task;
  }

  /// Any thread: take the oldest task, or nullptr when empty or when the
  /// CAS loses a race (callers treat both as "try elsewhere").
  Task* steal() {
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_seq_cst);
    if (t >= b) return nullptr;
    Task* task = cells_[t & mask_].load(std::memory_order_relaxed);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      return nullptr;
    }
    return task;
  }

  /// Owner-side size estimate. Thieves only shrink it, so the owner can use
  /// it as a lower bound on free space.
  [[nodiscard]] std::size_t size_estimate() const {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    return b > t ? static_cast<std::size_t>(b - t) : 0;
  }

  [[nodiscard]] std::size_t free_estimate() const {
    return capacity() - size_estimate();
  }

 private:
  std::vector<std::atomic<Task*>> cells_;
  std::int64_t mask_ = 0;
  alignas(64) std::atomic<std::int64_t> top_{0};     ///< steal end
  alignas(64) std::atomic<std::int64_t> bottom_{0};  ///< owner end
};

}  // namespace sre
