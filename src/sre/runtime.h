// Runtime: the SRE's dependence tracker and speculation-aware task registry.
//
// The Runtime owns the dynamic Data Flow Graph: tasks are created while the
// program runs (as data arrives), dependencies added, and tasks submitted.
// When a producer finishes, its consumers' unmet-dependence counters drop and
// newly-ready tasks enter the ReadyPool. Rollback (abort_epoch) removes every
// task of a speculation epoch: ready tasks are deleted from the pool, blocked
// ones are marked dead, and running ones are flagged to be discarded on
// completion — "launched tasks cannot be deleted; the system marks them with
// an abort flag, and deletes them with their content when they complete"
// (paper §III-B).
//
// Thread safety: all mutating operations take the runtime lock; the threaded
// executor calls them from worker/director threads, the simulator from its
// single event loop. The *probes* executors poll on their hot paths —
// quiescent(), ready_count(), revocation_epoch() — are single atomic loads
// and never take the lock.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "sre/arena.h"
#include "sre/fault.h"
#include "sre/ids.h"
#include "sre/observer.h"
#include "sre/ready_pool.h"
#include "sre/task.h"
#include "stats/trace.h"

namespace sre {

class Runtime {
 public:
  explicit Runtime(DispatchPolicy policy,
                   PriorityMode mode = PriorityMode::DepthFirst)
      : pool_(policy, mode) {}

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  /// Creates a task (not yet submitted). `depth` is the pipeline-depth
  /// priority; `cost_us` is the virtual-time execution cost (ignored by the
  /// threaded executor, which measures real time). `stream` tags the task
  /// with its serving-layer session id (0 = none) — it must be set here, not
  /// after creation, so observers see it in on_task_created.
  TaskPtr make_task(std::string name, TaskClass cls, Epoch epoch, int depth,
                    std::uint64_t cost_us, Task::Body body,
                    std::uint64_t stream = 0);

  /// Declares that `consumer` needs `producer`'s output. Must be called
  /// before submit(consumer). If the producer already finished, the
  /// dependence is immediately satisfied; if it was aborted, the consumer is
  /// aborted too (the destroy signal propagates through the DFG).
  void add_dependency(const TaskPtr& producer, const TaskPtr& consumer);

  /// Hands the task to the scheduler: Ready if all dependencies are met,
  /// Blocked otherwise.
  void submit(const TaskPtr& task);

  /// Executor interface: called when a dispatched task's execution completes
  /// at engine time `now_us`. Fires completion hooks and releases consumers,
  /// or — if the task was flagged during a rollback — discards its effects.
  void on_task_finished(const TaskPtr& task, std::uint64_t now_us);

  // --- Speculation support -------------------------------------------------

  /// Allocates a fresh speculation epoch id.
  Epoch open_epoch();

  /// Rolls back a speculation epoch: destroys every task tagged with it.
  /// Also advances the revocation epoch (see revocation_epoch()).
  void abort_epoch(Epoch epoch);

  void mark_epoch_committed(Epoch epoch);

  /// Bumps the rollback counter (called by the speculation layer when a
  /// check verdict rejects an epoch).
  void note_rollback();

  /// Monotonic count of abort_epoch() calls, readable without the lock.
  /// Tasks staged to worker-local queues are stamped with the value current
  /// at staging time; a worker popping a task whose stamp still matches
  /// knows no rollback ran in between and skips the abort-flag check.
  [[nodiscard]] std::uint64_t revocation_epoch() const {
    return revocation_epoch_.load(std::memory_order_acquire);
  }

  // --- Scheduling ----------------------------------------------------------

  /// Pops the next task to run under the configured policy. `now_us`/`cpu`
  /// are bookkeeping for the observer (executors pass their engine time and
  /// CPU/worker index). One task per lock acquisition — the simulator's
  /// path, and the threaded executor's legacy central path.
  TaskPtr next_task(std::uint64_t now_us = 0, unsigned cpu = 0);

  /// Sharded-dispatch batch pop: under ONE lock acquisition, pops up to
  /// `max` ready tasks, marks each Staged, stamps its revocation epoch,
  /// moves its ownership into the runtime's staged table, and fires the
  /// observer dispatch event with `targets[i]` as the worker index. Raw
  /// pointers are written to `out`; returns the number staged. Each staged
  /// task MUST later be retired through finish_staged().
  std::size_t stage_ready_batch(std::uint64_t now_us, const unsigned* targets,
                                std::size_t max, Task** out);

  /// Completion partner of stage_ready_batch(): identical semantics to
  /// on_task_finished(), plus it releases the staged ownership entry.
  void finish_staged(Task* task, std::uint64_t now_us);

  /// Batch form of finish_staged(): retires `n` completions under ONE lock
  /// acquisition, then runs all their completion hooks outside the lock in
  /// the same order. The director drains its completion queue through this,
  /// so the per-task cost of the retire path is a heap/hash update, not a
  /// mutex round-trip. Note the hooks of completion i run after the locked
  /// bookkeeping of completions i+1..n-1 — a legal interleaving of the
  /// equivalent sequential finish_staged calls, since tasks sharing a batch
  /// were concurrent in flight.
  void finish_staged_batch(Task* const* tasks, const std::uint64_t* done_us,
                           std::size_t n);

  /// Installs a passive event observer (see observer.h; may be null).
  /// Not thread-safe against a running executor: install before run().
  void set_observer(Observer* observer) { observer_ = observer; }

  /// The installed observer (null if none). The speculation layer uses it
  /// to report predictor events; the record-and-return contract applies.
  [[nodiscard]] Observer* observer() const { return observer_; }

  /// Installs a fault-injection plan (see fault.h; nullptr uninstalls).
  /// Consulted by the threaded executor before each task body; the
  /// deterministic simulator ignores it. Install before run(); reads are
  /// lock-free.
  void set_fault_plan(FaultPlan* plan) {
    fault_plan_.store(plan, std::memory_order_release);
  }
  [[nodiscard]] FaultPlan* fault_plan() const {
    return fault_plan_.load(std::memory_order_acquire);
  }

  // --- Per-stream usage accounting (serving-layer latency attribution) -----

  /// Aggregate engine time a stream's tasks consumed, split into useful
  /// compute and rollback waste. Durations are dispatch→finish, so they
  /// include worker-queue residency after staging.
  struct StreamUsage {
    std::uint64_t compute_us = 0;  ///< dispatch→finish of retired tasks
    std::uint64_t waste_us = 0;    ///< dispatch→finish of aborted tasks
    std::uint64_t tasks_finished = 0;
    std::uint64_t tasks_aborted = 0;
    /// Earliest dispatch stamp seen for the stream (kNever if none ran).
    static constexpr std::uint64_t kNever = ~std::uint64_t{0};
    std::uint64_t first_dispatch_us = kNever;
  };

  /// Enables per-stream accounting (off by default: single-run pipelines
  /// carry stream 0 and would only pay the map lookup for nothing).
  void set_stream_accounting(bool enabled) { stream_accounting_ = enabled; }

  /// Consumes and returns the accumulated usage for `stream` (zeroes if the
  /// stream never ran a task). The serving layer calls this once per
  /// session at finalization.
  [[nodiscard]] StreamUsage take_stream_usage(std::uint64_t stream);

  // --- Epoch arenas (data-plane allocation) --------------------------------

  /// The runtime-owned chunk pool backing per-epoch bump arenas. Shared so
  /// arenas (and the ByteBuf views pinning them) can outlive the runtime's
  /// users during teardown.
  [[nodiscard]] const std::shared_ptr<ChunkPool>& arena_pool() const {
    return arena_pool_;
  }

  /// A fresh arena set for `epoch`, one bump lane per worker. The caller
  /// (the pipeline's speculation chain, or its natural path) holds the
  /// shared handle; dropping the last reference returns every chunk to the
  /// runtime pool — the arena-drop form of the paper's destroy signal.
  [[nodiscard]] std::shared_ptr<EpochArenas> make_epoch_arenas(Epoch epoch) {
    return std::make_shared<EpochArenas>(arena_pool_, epoch);
  }

  /// Snapshot of the tvs_alloc_* counters (drivers mirror these into the
  /// metrics Registry after a run).
  [[nodiscard]] ArenaStats arena_stats() const { return arena_pool_->stats(); }

  [[nodiscard]] ReadyPool& pool() { return pool_; }

  /// Signal installed by an executor; invoked (outside the lock) whenever new
  /// work may be available for dispatch.
  void set_ready_signal(std::function<void()> signal) {
    ready_signal_ = std::move(signal);
  }

  // --- Introspection -------------------------------------------------------

  [[nodiscard]] stats::RunCounters counters() const;
  [[nodiscard]] std::size_t blocked_count() const;
  /// Ready tasks across all three queues. Lock-free (pool sizes are O(1)
  /// atomics); safe to poll from worker idle loops.
  [[nodiscard]] std::size_t ready_count() const { return pool_.size(); }
  [[nodiscard]] std::size_t running_count() const;

  /// One consistent view of every queue the scheduler maintains, for
  /// metrics probes (a single lock acquisition instead of five).
  struct QueueDepths {
    std::size_t ready_control = 0;
    std::size_t ready_natural = 0;
    std::size_t ready_speculative = 0;
    std::size_t blocked = 0;
    std::size_t running = 0;       ///< includes Staged
    std::size_t open_epochs = 0;   ///< epochs with live speculative tasks
    std::size_t epoch_tasks = 0;   ///< live speculative tasks across epochs
  };
  [[nodiscard]] QueueDepths queue_depths() const;

  /// True when no task is ready, staged or running. (Blocked tasks may still
  /// exist if the program is waiting for external arrivals.) A single atomic
  /// load — executors poll this every dispatch round without serializing on
  /// the lock.
  [[nodiscard]] bool quiescent() const {
    return outstanding_.load(std::memory_order_acquire) == 0;
  }

  /// Runs `fn` under the runtime lock (executors use this to make
  /// dispatch-and-mark-running atomic).
  template <typename Fn>
  auto locked(Fn&& fn) {
    std::scoped_lock lk(mu_);
    return fn();
  }

  /// Executor interface: transition a popped task to Running / Staged.
  /// (The simulator's staging path — it keeps ownership of staged tasks in
  /// its per-CPU queues, unlike stage_ready_batch which moves ownership
  /// into the runtime.)
  void mark_running(const TaskPtr& task, std::uint64_t now_us = 0,
                    unsigned cpu = 0);
  void mark_staged(const TaskPtr& task);

 private:
  void make_ready_locked(const TaskPtr& task);
  void abort_task_locked(const TaskPtr& task);
  void signal_ready();
  /// Shared completion body. Exactly one of `raw` (staged-ownership lookup)
  /// or `provided` is used.
  void finish_common(Task* raw, const TaskPtr* provided, std::uint64_t now_us);
  /// Locked part of completing one task: bookkeeping, successor release,
  /// abort handling. Appends the task's completion hooks (empty if aborted)
  /// to `hooks` for the caller to run outside the lock; sets `notify` when
  /// new tasks became ready. When `batch` is non-null the observer's
  /// on_finished is NOT fired — the event is appended to `batch` for a
  /// single on_finished_batch call by the caller (still under the lock).
  void finish_one_locked(const TaskPtr& task, std::uint64_t now_us,
                         bool& notify,
                         std::vector<Task::CompletionHook>& hooks,
                         std::vector<Observer::FinishedEvent>* batch = nullptr);

  mutable std::mutex mu_;
  ReadyPool pool_;
  TaskId next_id_ = 1;
  Epoch next_epoch_ = 1;
  std::uint64_t next_ready_seq_ = 0;

  /// Live (not finished, not aborted) tasks per epoch — the index used to
  /// propagate destroy signals on rollback.
  std::unordered_map<Epoch, std::unordered_map<TaskId, TaskPtr>> epoch_tasks_;

  /// Undo log per epoch: rollback routines of *completed* speculative tasks
  /// in completion order. abort_epoch replays it in reverse; committing an
  /// epoch discards it.
  std::unordered_map<Epoch, std::vector<Task::RollbackRoutine>> epoch_undo_log_;

  /// Ownership of tasks staged via stage_ready_batch (worker-local queues
  /// hold raw pointers); released by finish_staged.
  std::unordered_map<const Task*, TaskPtr> staged_owned_;

  /// Tasks in Ready ∪ Staged ∪ Running — the lock-free quiescence probe.
  std::atomic<std::size_t> outstanding_{0};
  std::atomic<std::uint64_t> revocation_epoch_{0};

  stats::RunCounters counters_;
  bool stream_accounting_ = false;
  std::unordered_map<std::uint64_t, StreamUsage> stream_usage_;
  std::size_t blocked_ = 0;
  std::size_t running_ = 0;  // includes Staged
  std::function<void()> ready_signal_;
  std::shared_ptr<ChunkPool> arena_pool_ = std::make_shared<ChunkPool>();
  Observer* observer_ = nullptr;
  std::atomic<FaultPlan*> fault_plan_{nullptr};
};

}  // namespace sre
