// Runtime: the SRE's dependence tracker and speculation-aware task registry.
//
// The Runtime owns the dynamic Data Flow Graph: tasks are created while the
// program runs (as data arrives), dependencies added, and tasks submitted.
// When a producer finishes, its consumers' unmet-dependence counters drop and
// newly-ready tasks enter the ReadyPool. Rollback (abort_epoch) removes every
// task of a speculation epoch: ready tasks are deleted from the pool, blocked
// ones are marked dead, and running ones are flagged to be discarded on
// completion — "launched tasks cannot be deleted; the system marks them with
// an abort flag, and deletes them with their content when they complete"
// (paper §III-B).
//
// Thread safety: all mutating operations take the runtime lock; the threaded
// executor calls them from worker/director threads, the simulator from its
// single event loop.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "sre/ids.h"
#include "sre/observer.h"
#include "sre/ready_pool.h"
#include "sre/task.h"
#include "stats/trace.h"

namespace sre {

class Runtime {
 public:
  explicit Runtime(DispatchPolicy policy,
                   PriorityMode mode = PriorityMode::DepthFirst)
      : pool_(policy, mode) {}

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  /// Creates a task (not yet submitted). `depth` is the pipeline-depth
  /// priority; `cost_us` is the virtual-time execution cost (ignored by the
  /// threaded executor, which measures real time).
  TaskPtr make_task(std::string name, TaskClass cls, Epoch epoch, int depth,
                    std::uint64_t cost_us, Task::Body body);

  /// Declares that `consumer` needs `producer`'s output. Must be called
  /// before submit(consumer). If the producer already finished, the
  /// dependence is immediately satisfied; if it was aborted, the consumer is
  /// aborted too (the destroy signal propagates through the DFG).
  void add_dependency(const TaskPtr& producer, const TaskPtr& consumer);

  /// Hands the task to the scheduler: Ready if all dependencies are met,
  /// Blocked otherwise.
  void submit(const TaskPtr& task);

  /// Executor interface: called when a dispatched task's execution completes
  /// at engine time `now_us`. Fires completion hooks and releases consumers,
  /// or — if the task was flagged during a rollback — discards its effects.
  void on_task_finished(const TaskPtr& task, std::uint64_t now_us);

  // --- Speculation support -------------------------------------------------

  /// Allocates a fresh speculation epoch id.
  Epoch open_epoch();

  /// Rolls back a speculation epoch: destroys every task tagged with it.
  void abort_epoch(Epoch epoch);

  void mark_epoch_committed(Epoch epoch);

  /// Bumps the rollback counter (called by the speculation layer when a
  /// check verdict rejects an epoch).
  void note_rollback();

  // --- Scheduling ----------------------------------------------------------

  /// Pops the next task to run under the configured policy. `now_us`/`cpu`
  /// are bookkeeping for the observer (executors pass their engine time and
  /// CPU/worker index).
  TaskPtr next_task(std::uint64_t now_us = 0, unsigned cpu = 0);

  /// Installs a passive event observer (see observer.h; may be null).
  /// Not thread-safe against a running executor: install before run().
  void set_observer(Observer* observer) { observer_ = observer; }

  /// The installed observer (null if none). The speculation layer uses it
  /// to report predictor events; the record-and-return contract applies.
  [[nodiscard]] Observer* observer() const { return observer_; }

  [[nodiscard]] ReadyPool& pool() { return pool_; }

  /// Signal installed by an executor; invoked (outside the lock) whenever new
  /// work may be available for dispatch.
  void set_ready_signal(std::function<void()> signal) {
    ready_signal_ = std::move(signal);
  }

  // --- Introspection -------------------------------------------------------

  [[nodiscard]] stats::RunCounters counters() const;
  [[nodiscard]] std::size_t blocked_count() const;
  [[nodiscard]] std::size_t ready_count() const;
  [[nodiscard]] std::size_t running_count() const;

  /// One consistent view of every queue the scheduler maintains, for
  /// metrics probes (a single lock acquisition instead of five).
  struct QueueDepths {
    std::size_t ready_control = 0;
    std::size_t ready_natural = 0;
    std::size_t ready_speculative = 0;
    std::size_t blocked = 0;
    std::size_t running = 0;       ///< includes Staged
    std::size_t open_epochs = 0;   ///< epochs with live speculative tasks
    std::size_t epoch_tasks = 0;   ///< live speculative tasks across epochs
  };
  [[nodiscard]] QueueDepths queue_depths() const;

  /// True when no task is ready, staged or running. (Blocked tasks may still
  /// exist if the program is waiting for external arrivals.)
  [[nodiscard]] bool quiescent() const;

  /// Runs `fn` under the runtime lock (executors use this to make
  /// dispatch-and-mark-running atomic).
  template <typename Fn>
  auto locked(Fn&& fn) {
    std::scoped_lock lk(mu_);
    return fn();
  }

  /// Executor interface: transition a popped task to Running / Staged.
  void mark_running(const TaskPtr& task, std::uint64_t now_us = 0,
                    unsigned cpu = 0);
  void mark_staged(const TaskPtr& task);

 private:
  void make_ready_locked(const TaskPtr& task);
  void abort_task_locked(const TaskPtr& task);
  void signal_ready();

  mutable std::mutex mu_;
  ReadyPool pool_;
  TaskId next_id_ = 1;
  Epoch next_epoch_ = 1;
  std::uint64_t next_ready_seq_ = 0;

  /// Live (not finished, not aborted) tasks per epoch — the index used to
  /// propagate destroy signals on rollback.
  std::unordered_map<Epoch, std::unordered_map<TaskId, TaskPtr>> epoch_tasks_;

  /// Undo log per epoch: rollback routines of *completed* speculative tasks
  /// in completion order. abort_epoch replays it in reverse; committing an
  /// epoch discards it.
  std::unordered_map<Epoch, std::vector<Task::RollbackRoutine>> epoch_undo_log_;

  stats::RunCounters counters_;
  std::size_t blocked_ = 0;
  std::size_t running_ = 0;  // includes Staged
  std::function<void()> ready_signal_;
  Observer* observer_ = nullptr;
};

}  // namespace sre
