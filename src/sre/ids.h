// Shared identifier and enum types for the Streaming Runtime Environment.
#pragma once

#include <cstdint>
#include <string>

namespace sre {

using TaskId = std::uint64_t;

/// Speculation epoch. Epoch 0 is the natural (non-speculative) execution
/// path; each speculative attempt opens a fresh nonzero epoch, and rollback
/// destroys everything tagged with it.
using Epoch = std::uint32_t;
inline constexpr Epoch kNaturalEpoch = 0;

/// Scheduling class of a task (paper §III-A):
///  * Natural     — the normal execution path;
///  * Speculative — tagged with a nonzero epoch, destroyable by rollback;
///  * Control     — value-predicting / checking tasks; always dispatched
///                  first regardless of pipeline position ("we try to
///                  optimize for latency, and these tasks should have a high
///                  impact thereupon").
enum class TaskClass : std::uint8_t { Natural, Speculative, Control };

/// Lifecycle of a task.
///
///   Created → Blocked → Ready → (Staged →) Running → Done
///                  \________\______\_________\→ Aborted
///
/// Staged exists only under platforms with multiple buffering (Cell): the
/// task has been committed to a specific CPU's local store ahead of
/// execution and can no longer be re-prioritized.
enum class TaskState : std::uint8_t {
  Created,
  Blocked,
  Ready,
  Staged,
  Running,
  Done,
  Aborted,
};

/// Resource-allocation policy for choosing between ready natural and ready
/// speculative tasks (paper §V-B "Scheduling Policies"):
///  * NonSpeculative — speculation disabled entirely (baseline runs);
///  * Conservative   — speculative tasks dispatched only when no natural
///                     task is ready;
///  * Aggressive     — speculative tasks actively preferred;
///  * Balanced       — equal dispatch counts of both kinds.
enum class DispatchPolicy : std::uint8_t {
  NonSpeculative,
  Conservative,
  Aggressive,
  Balanced,
};

/// Intra-queue ordering (paper §III-A). The SRE favors pipeline depth with
/// FCFS tie-break; pure FCFS is the breadth-first strawman the paper calls
/// out ("this breadth-first approach certainly extends latency and tends to
/// be toxic to memory locality") — kept for the ablation benchmark.
enum class PriorityMode : std::uint8_t {
  DepthFirst,  ///< deeper pipeline stage first, FCFS among equals (default)
  Fcfs,        ///< pure submission order
};

[[nodiscard]] std::string to_string(TaskClass c);
[[nodiscard]] std::string to_string(TaskState s);
[[nodiscard]] std::string to_string(DispatchPolicy p);

}  // namespace sre
