#include "sre/runtime.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace sre {

std::string to_string(TaskClass c) {
  switch (c) {
    case TaskClass::Natural: return "natural";
    case TaskClass::Speculative: return "speculative";
    case TaskClass::Control: return "control";
  }
  return "?";
}

std::string to_string(TaskState s) {
  switch (s) {
    case TaskState::Created: return "created";
    case TaskState::Blocked: return "blocked";
    case TaskState::Ready: return "ready";
    case TaskState::Staged: return "staged";
    case TaskState::Running: return "running";
    case TaskState::Done: return "done";
    case TaskState::Aborted: return "aborted";
  }
  return "?";
}

std::string to_string(DispatchPolicy p) {
  switch (p) {
    case DispatchPolicy::NonSpeculative: return "non-spec";
    case DispatchPolicy::Conservative: return "conservative";
    case DispatchPolicy::Aggressive: return "aggressive";
    case DispatchPolicy::Balanced: return "balanced";
  }
  return "?";
}

TaskPtr Runtime::make_task(std::string name, TaskClass cls, Epoch epoch,
                           int depth, std::uint64_t cost_us, Task::Body body,
                           std::uint64_t stream) {
  std::scoped_lock lk(mu_);
  auto task = std::make_shared<Task>(next_id_++, std::move(name), cls, epoch,
                                     depth, cost_us, std::move(body));
  task->set_stream(stream);
  if (observer_) {
    observer_->on_task_created(
        {task->id(), task->name(), cls, epoch, depth, cost_us, stream});
  }
  return task;
}

void Runtime::add_dependency(const TaskPtr& producer, const TaskPtr& consumer) {
  std::scoped_lock lk(mu_);
  if (consumer->state_.load() != TaskState::Created) {
    throw std::logic_error(
        "add_dependency: consumer already submitted (" + consumer->name() + ")");
  }
  const TaskState ps = producer->state_.load();
  if (ps == TaskState::Done) {
    return;  // already satisfied
  }
  if (ps == TaskState::Aborted) {
    // Destroy signal: depending on rolled-back data kills the consumer.
    abort_task_locked(consumer);
    return;
  }
  producer->successors_.push_back(consumer);
  ++consumer->unmet_deps_;
  if (observer_) observer_->on_edge(producer->id(), consumer->id());
}

void Runtime::submit(const TaskPtr& task) {
  bool notify = false;
  {
    std::scoped_lock lk(mu_);
    if (task->state_.load() == TaskState::Aborted) {
      return;  // killed by a dependency on rolled-back data before submission
    }
    if (task->state_.load() != TaskState::Created) {
      throw std::logic_error("submit: task submitted twice (" + task->name() + ")");
    }
    if (task->epoch() != kNaturalEpoch) {
      epoch_tasks_[task->epoch()][task->id()] = task;
    }
    if (task->unmet_deps_ == 0) {
      make_ready_locked(task);
      notify = true;
    } else {
      task->state_.store(TaskState::Blocked);
      ++blocked_;
    }
  }
  if (notify) signal_ready();
}

void Runtime::make_ready_locked(const TaskPtr& task) {
  task->ready_seq_ = next_ready_seq_++;
  task->state_.store(TaskState::Ready);
  pool_.push(task);
  outstanding_.fetch_add(1, std::memory_order_release);
}

void Runtime::on_task_finished(const TaskPtr& task, std::uint64_t now_us) {
  finish_common(nullptr, &task, now_us);
}

void Runtime::finish_staged(Task* task, std::uint64_t now_us) {
  finish_common(task, nullptr, now_us);
}

void Runtime::finish_one_locked(const TaskPtr& task, std::uint64_t now_us,
                                bool& notify,
                                std::vector<Task::CompletionHook>& hooks,
                                std::vector<Observer::FinishedEvent>* batch) {
  assert(task->state_.load() == TaskState::Running ||
         task->state_.load() == TaskState::Staged);
  --running_;
  outstanding_.fetch_sub(1, std::memory_order_release);

  if (task->epoch() != kNaturalEpoch) {
    auto it = epoch_tasks_.find(task->epoch());
    if (it != epoch_tasks_.end()) {
      it->second.erase(task->id());
      // Retire the registry entry with its last live task: a long streaming
      // run commits thousands of epochs, and keeping an empty map per
      // retired epoch would grow the registry without bound.
      if (it->second.empty()) epoch_tasks_.erase(it);
    }
  }

  if (stream_accounting_ && task->stream() != 0 &&
      task->dispatch_us_ != Task::kNeverDispatched) {
    StreamUsage& u = stream_usage_[task->stream()];
    const std::uint64_t dur =
        now_us > task->dispatch_us_ ? now_us - task->dispatch_us_ : 0;
    if (task->abort_requested()) {
      u.waste_us += dur;
      ++u.tasks_aborted;
    } else {
      u.compute_us += dur;
      ++u.tasks_finished;
    }
    u.first_dispatch_us = std::min(u.first_dispatch_us, task->dispatch_us_);
  }

  if (observer_) {
    if (batch != nullptr) {
      batch->push_back({task->id(), now_us, task->abort_requested()});
    } else {
      observer_->on_finished(task->id(), now_us, task->abort_requested());
    }
  }
  if (task->abort_requested()) {
    // Rollback caught this task in flight: discard its results, propagate
    // the destroy signal to anything that was wired to consume them.
    task->state_.store(TaskState::Aborted);
    ++counters_.tasks_aborted;
    for (const TaskPtr& succ : task->successors_) {
      abort_task_locked(succ);
    }
    task->successors_.clear();
    task->hooks_.clear();
    task->body_ = nullptr;
    return;  // no hooks: aborted completions are discarded with their content
  }

  task->state_.store(TaskState::Done);
  if (task->epoch() != kNaturalEpoch && task->rollback_routine_) {
    // The task performed a reversible side effect; log the compensation
    // so a later rollback of this epoch can undo it.
    epoch_undo_log_[task->epoch()].push_back(
        std::move(task->rollback_routine_));
    task->rollback_routine_ = nullptr;
  }
  ++counters_.tasks_executed;
  if (task->speculative()) ++counters_.spec_tasks_executed;
  if (task->task_class() == TaskClass::Control) ++counters_.checks_executed;
  counters_.total_runtime_us = std::max(counters_.total_runtime_us, now_us);

  for (const TaskPtr& succ : task->successors_) {
    if (succ->state_.load() == TaskState::Aborted) continue;
    assert(succ->unmet_deps_ > 0);
    if (--succ->unmet_deps_ == 0 && succ->state_.load() == TaskState::Blocked) {
      --blocked_;
      make_ready_locked(succ);
      notify = true;
    }
  }
  task->successors_.clear();
  hooks = std::move(task->hooks_);
  task->hooks_.clear();
  task->body_ = nullptr;
}

void Runtime::finish_common(Task* raw, const TaskPtr* provided,
                            std::uint64_t now_us) {
  std::vector<Task::CompletionHook> hooks;
  bool notify = false;
  TaskPtr owned;
  {
    std::scoped_lock lk(mu_);
    const TaskPtr* taskp = provided;
    if (raw != nullptr) {
      auto own = staged_owned_.find(raw);
      assert(own != staged_owned_.end() &&
             "finish_staged: task was not staged via stage_ready_batch");
      owned = std::move(own->second);
      staged_owned_.erase(own);
      taskp = &owned;
    }
    finish_one_locked(*taskp, now_us, notify, hooks);
  }
  // Hooks run outside the lock: they are allowed to create and submit new
  // tasks (dynamic DFG growth) and to trigger commits/rollbacks. The
  // completion's Task object stays alive through `owned`/`provided` here.
  Task& task = raw != nullptr ? *raw : **provided;
  for (auto& hook : hooks) {
    hook(task, now_us);
  }
  if (notify) signal_ready();
}

void Runtime::finish_staged_batch(Task* const* tasks,
                                  const std::uint64_t* done_us,
                                  std::size_t n) {
  struct Retired {
    TaskPtr task;
    std::uint64_t now_us = 0;
    std::vector<Task::CompletionHook> hooks;
  };
  std::vector<Retired> retired;
  retired.reserve(n);
  std::vector<Observer::FinishedEvent> events;
  if (observer_ != nullptr) events.reserve(n);
  bool notify = false;
  {
    std::scoped_lock lk(mu_);
    for (std::size_t i = 0; i < n; ++i) {
      auto own = staged_owned_.find(tasks[i]);
      assert(own != staged_owned_.end() &&
             "finish_staged_batch: task was not staged via stage_ready_batch");
      Retired r;
      r.task = std::move(own->second);
      r.now_us = done_us[i];
      staged_owned_.erase(own);
      finish_one_locked(r.task, r.now_us, notify, r.hooks, &events);
      retired.push_back(std::move(r));
    }
    // One observer call for the whole batch (still under the lock, per the
    // observer contract) — per-event-locking observers pay their mutex once.
    if (observer_ != nullptr && !events.empty()) {
      observer_->on_finished_batch(events.data(), events.size());
    }
  }
  for (auto& r : retired) {
    for (auto& hook : r.hooks) {
      hook(*r.task, r.now_us);
    }
  }
  if (notify) signal_ready();
}

Epoch Runtime::open_epoch() {
  std::scoped_lock lk(mu_);
  ++counters_.epochs_opened;
  const Epoch epoch = next_epoch_++;
  if (observer_) observer_->on_epoch_opened(epoch);
  return epoch;
}

void Runtime::abort_task_locked(const TaskPtr& task) {
  switch (task->state_.load()) {
    case TaskState::Created:
      task->state_.store(TaskState::Aborted);
      ++counters_.tasks_aborted;
      if (observer_) observer_->on_finished(task->id(), 0, /*aborted=*/true);
      break;
    case TaskState::Blocked:
      --blocked_;
      task->state_.store(TaskState::Aborted);
      ++counters_.tasks_aborted;
      if (observer_) observer_->on_finished(task->id(), 0, /*aborted=*/true);
      break;
    case TaskState::Ready:
      pool_.erase(task);
      outstanding_.fetch_sub(1, std::memory_order_release);
      task->state_.store(TaskState::Aborted);
      ++counters_.tasks_aborted;
      if (observer_) observer_->on_finished(task->id(), 0, /*aborted=*/true);
      break;
    case TaskState::Staged:
    case TaskState::Running:
      // Cannot delete a launched task; flag it for disposal at completion
      // (paper §III-B). Workers also honour the flag at pop time for tasks
      // still sitting in their local queues (revocation-at-pop).
      task->request_abort();
      return;  // keep hooks/successors until it completes
    case TaskState::Done:
    case TaskState::Aborted:
      return;
  }
  // Drop the registry entry of a task destroyed before launch. Victims in
  // the epoch being aborted were already removed wholesale by abort_epoch;
  // this catches cross-epoch destroy propagation (a consumer in epoch B
  // killed by a producer in epoch A), which would otherwise pin a dead
  // entry in epoch_tasks_ forever.
  if (task->epoch() != kNaturalEpoch) {
    auto it = epoch_tasks_.find(task->epoch());
    if (it != epoch_tasks_.end()) {
      it->second.erase(task->id());
      if (it->second.empty()) epoch_tasks_.erase(it);
    }
  }
  // Propagate the destroy signal down the dependence chain and reclaim the
  // task's payload ("deletes them with their content").
  for (const TaskPtr& succ : task->successors_) {
    abort_task_locked(succ);
  }
  task->successors_.clear();
  task->hooks_.clear();
  task->body_ = nullptr;
}

void Runtime::abort_epoch(Epoch epoch) {
  std::vector<Task::RollbackRoutine> undo;
  {
    std::scoped_lock lk(mu_);
    // Advance the revocation epoch BEFORE any abort flag is set, so a worker
    // that still observes the old epoch for a staged task may (only) conclude
    // the flag was not set when the task was staged; the flag check at pop
    // and the discard-at-completion path remain the correctness backstop.
    revocation_epoch_.fetch_add(1, std::memory_order_release);
    if (observer_) observer_->on_epoch_aborted(epoch);
    auto it = epoch_tasks_.find(epoch);
    if (it != epoch_tasks_.end()) {
      // Copy out: abort_task_locked mutates the registry's tasks' successor
      // lists, and recursion may revisit tasks in this same epoch.
      std::vector<TaskPtr> tasks;
      tasks.reserve(it->second.size());
      for (auto& [id, t] : it->second) tasks.push_back(t);
      epoch_tasks_.erase(it);
      for (const TaskPtr& t : tasks) {
        abort_task_locked(t);
      }
      if (observer_) observer_->on_rollback_cascade(epoch, tasks.size());
    } else if (observer_) {
      observer_->on_rollback_cascade(epoch, 0);
    }
    auto log = epoch_undo_log_.find(epoch);
    if (log != epoch_undo_log_.end()) {
      undo = std::move(log->second);
      epoch_undo_log_.erase(log);
    }
  }
  // Compensate completed side effects in reverse completion order, outside
  // the lock (routines are user code and may touch the runtime).
  for (auto rit = undo.rbegin(); rit != undo.rend(); ++rit) {
    (*rit)();
  }
}

Runtime::StreamUsage Runtime::take_stream_usage(std::uint64_t stream) {
  std::scoped_lock lk(mu_);
  auto it = stream_usage_.find(stream);
  if (it == stream_usage_.end()) return {};
  StreamUsage u = it->second;
  stream_usage_.erase(it);
  return u;
}

void Runtime::note_rollback() {
  std::scoped_lock lk(mu_);
  ++counters_.rollbacks;
}

void Runtime::mark_epoch_committed(Epoch epoch) {
  std::scoped_lock lk(mu_);
  epoch_undo_log_.erase(epoch);  // committed side effects are permanent
  ++counters_.epochs_committed;
  if (observer_) observer_->on_epoch_committed(epoch);
}

TaskPtr Runtime::next_task(std::uint64_t now_us, unsigned cpu) {
  std::scoped_lock lk(mu_);
  TaskPtr task = pool_.pop();
  if (task) {
    task->state_.store(TaskState::Running);
    task->dispatch_us_ = now_us;
    ++running_;
    if (observer_) observer_->on_dispatched(task->id(), now_us, cpu);
  }
  return task;
}

std::size_t Runtime::stage_ready_batch(std::uint64_t now_us,
                                       const unsigned* targets,
                                       std::size_t max, Task** out) {
  std::scoped_lock lk(mu_);
  const std::uint64_t rev = revocation_epoch_.load(std::memory_order_relaxed);
  std::size_t n = 0;
  while (n < max) {
    TaskPtr task = pool_.pop();
    if (!task) break;
    Task* raw = task.get();
    raw->staged_revocation_epoch_ = rev;
    raw->state_.store(TaskState::Staged);
    raw->dispatch_us_ = now_us;
    ++running_;
    if (observer_) observer_->on_dispatched(raw->id(), now_us, targets[n]);
    staged_owned_.emplace(raw, std::move(task));
    out[n++] = raw;
  }
  return n;
}

void Runtime::mark_running(const TaskPtr& task, std::uint64_t now_us,
                           unsigned cpu) {
  std::scoped_lock lk(mu_);
  if (observer_) observer_->on_dispatched(task->id(), now_us, cpu);
  task->dispatch_us_ = now_us;
  const TaskState s = task->state_.load();
  if (s == TaskState::Staged) {
    task->state_.store(TaskState::Running);
    return;  // already counted as in-flight when staged
  }
  task->state_.store(TaskState::Running);
  ++running_;
}

void Runtime::mark_staged(const TaskPtr& task) {
  std::scoped_lock lk(mu_);
  task->state_.store(TaskState::Staged);
  ++running_;
}

stats::RunCounters Runtime::counters() const {
  std::scoped_lock lk(mu_);
  return counters_;
}

std::size_t Runtime::blocked_count() const {
  std::scoped_lock lk(mu_);
  return blocked_;
}

std::size_t Runtime::running_count() const {
  std::scoped_lock lk(mu_);
  return running_;
}

Runtime::QueueDepths Runtime::queue_depths() const {
  std::scoped_lock lk(mu_);
  QueueDepths d;
  d.ready_control = pool_.control_size();
  d.ready_natural = pool_.natural_size();
  d.ready_speculative = pool_.speculative_size();
  d.blocked = blocked_;
  d.running = running_;
  d.open_epochs = epoch_tasks_.size();
  for (const auto& [epoch, tasks] : epoch_tasks_) {
    d.epoch_tasks += tasks.size();
  }
  return d;
}

void Runtime::signal_ready() {
  if (ready_signal_) ready_signal_();
}

}  // namespace sre
