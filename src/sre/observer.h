// Runtime observability: a passive event stream of everything the SRE does.
//
// An Observer sees task lifecycle events (creation, dependence edges,
// dispatch, completion/abort) and speculation epoch events. The trace layer
// (src/trace) builds Chrome-trace timelines, Graphviz DFG dumps and
// utilization charts from it; tests use it to assert scheduling behaviour.
//
// Contract: callbacks may be invoked while the runtime lock is held — an
// observer must record and return, never call back into the Runtime.
#pragma once

#include <cstdint>
#include <string>

#include "sre/ids.h"

namespace sre {

struct TaskInfo {
  TaskId id = 0;
  std::string name;
  TaskClass cls = TaskClass::Natural;
  Epoch epoch = kNaturalEpoch;
  int depth = 0;
  std::uint64_t cost_us = 0;
};

class Observer {
 public:
  virtual ~Observer() = default;

  /// A task object was created (not yet submitted).
  virtual void on_task_created(const TaskInfo& /*task*/) {}

  /// A dependence edge producer → consumer was declared.
  virtual void on_edge(TaskId /*producer*/, TaskId /*consumer*/) {}

  /// The task started executing on `cpu` at engine time `now_us`. For the
  /// threaded engine, `cpu` is the worker index.
  virtual void on_dispatched(TaskId /*task*/, std::uint64_t /*now_us*/,
                             unsigned /*cpu*/) {}

  /// The task's completion was processed. `aborted` means a rollback caught
  /// it and its effects were discarded.
  virtual void on_finished(TaskId /*task*/, std::uint64_t /*now_us*/,
                           bool /*aborted*/) {}

  virtual void on_epoch_opened(Epoch /*epoch*/) {}
  virtual void on_epoch_committed(Epoch /*epoch*/) {}
  virtual void on_epoch_aborted(Epoch /*epoch*/) {}

  // --- Value-prediction events (src/predict) -----------------------------

  /// A predictor's one-step-ahead prediction was scored against the actual
  /// estimate; `hit` means the error cleared the tolerance predicate.
  virtual void on_prediction_scored(const std::string& /*predictor*/,
                                    bool /*hit*/, double /*rel_error*/) {}

  /// A rollback was charged to the predictor that supplied the failed guess.
  virtual void on_predictor_charged(const std::string& /*predictor*/) {}

  /// An epoch-open was withheld: predicted confidence missed the gate.
  virtual void on_speculation_gated(std::uint32_t /*estimate_index*/,
                                    double /*confidence*/) {}
};

}  // namespace sre
