// Runtime observability: a passive event stream of everything the SRE does.
//
// An Observer sees task lifecycle events (creation, dependence edges,
// dispatch, completion/abort) and speculation epoch events. The trace layer
// (src/trace) builds Chrome-trace timelines, Graphviz DFG dumps and
// utilization charts from it; tests use it to assert scheduling behaviour.
//
// Contract: callbacks may be invoked while the runtime lock is held — an
// observer must record and return, never call back into the Runtime.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sre/ids.h"

namespace sre {

struct TaskInfo {
  TaskId id = 0;
  std::string name;
  TaskClass cls = TaskClass::Natural;
  Epoch epoch = kNaturalEpoch;
  int depth = 0;
  std::uint64_t cost_us = 0;
  /// Serving-layer stream (session) id the task belongs to; 0 = none.
  std::uint64_t stream = 0;
};

class Observer {
 public:
  virtual ~Observer() = default;

  /// A task object was created (not yet submitted).
  virtual void on_task_created(const TaskInfo& /*task*/) {}

  /// A dependence edge producer → consumer was declared.
  virtual void on_edge(TaskId /*producer*/, TaskId /*consumer*/) {}

  /// The task started executing on `cpu` at engine time `now_us`. For the
  /// threaded engine, `cpu` is the worker index.
  virtual void on_dispatched(TaskId /*task*/, std::uint64_t /*now_us*/,
                             unsigned /*cpu*/) {}

  /// The task's completion was processed. `aborted` means a rollback caught
  /// it and its effects were discarded.
  virtual void on_finished(TaskId /*task*/, std::uint64_t /*now_us*/,
                           bool /*aborted*/) {}

  /// One completion, as delivered by on_finished_batch.
  struct FinishedEvent {
    TaskId task = 0;
    std::uint64_t now_us = 0;
    bool aborted = false;
  };

  /// Batched form of on_finished: the sharded executor retires a whole
  /// staged batch under one runtime lock hold and reports it in a single
  /// call. The default forwards each event through on_finished, so existing
  /// observers need no change; observers with per-call locking overhead
  /// (tracelog::Recorder, flight) override this to pay it once per batch.
  virtual void on_finished_batch(const FinishedEvent* events, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      on_finished(events[i].task, events[i].now_us, events[i].aborted);
    }
  }

  virtual void on_epoch_opened(Epoch /*epoch*/) {}
  virtual void on_epoch_committed(Epoch /*epoch*/) {}
  virtual void on_epoch_aborted(Epoch /*epoch*/) {}

  /// Fired alongside on_epoch_aborted with the rollback's blast radius:
  /// how many live tasks of the epoch were destroyed or flagged for
  /// disposal by this abort.
  virtual void on_rollback_cascade(Epoch /*epoch*/,
                                   std::size_t /*tasks_destroyed*/) {}

  /// A speculation check task's verdict was processed. `margin` is the
  /// tolerance headroom ratio (observed error / allowed error; < 1 passes),
  /// or a negative value when the speculation layer cannot compute one.
  virtual void on_check_verdict(Epoch /*epoch*/, bool /*within*/,
                                bool /*is_final*/, double /*margin*/) {}

  // --- Value-prediction events (src/predict) -----------------------------

  /// A predictor's one-step-ahead prediction was scored against the actual
  /// estimate; `hit` means the error cleared the tolerance predicate.
  virtual void on_prediction_scored(const std::string& /*predictor*/,
                                    bool /*hit*/, double /*rel_error*/) {}

  /// A rollback was charged to the predictor that supplied the failed guess.
  virtual void on_predictor_charged(const std::string& /*predictor*/) {}

  /// An epoch-open was withheld: predicted confidence missed the gate.
  virtual void on_speculation_gated(std::uint32_t /*estimate_index*/,
                                    double /*confidence*/) {}

  // --- Fault injection (src/sre/fault.h) ----------------------------------

  /// A FaultPlan acted on a task: `failed` means the body was suppressed and
  /// the task retired as aborted; otherwise it was delayed by `delay_us`.
  /// Unlike the other events this one fires on the worker thread *without*
  /// the runtime lock held; the record-and-return contract still applies.
  virtual void on_fault_injected(TaskId /*task*/, bool /*failed*/,
                                 std::uint64_t /*delay_us*/) {}
};

/// Forwards every event to a set of observers, so a run can attach e.g. a
/// tracelog::Recorder and a metrics::MetricsObserver at once. The children
/// inherit the record-and-return contract; null entries are skipped.
class FanoutObserver final : public Observer {
 public:
  void add(Observer* observer) {
    if (observer != nullptr) children_.push_back(observer);
  }
  [[nodiscard]] std::size_t size() const { return children_.size(); }

  void on_task_created(const TaskInfo& task) override {
    for (Observer* o : children_) o->on_task_created(task);
  }
  void on_edge(TaskId producer, TaskId consumer) override {
    for (Observer* o : children_) o->on_edge(producer, consumer);
  }
  void on_dispatched(TaskId task, std::uint64_t now_us, unsigned cpu) override {
    for (Observer* o : children_) o->on_dispatched(task, now_us, cpu);
  }
  void on_finished(TaskId task, std::uint64_t now_us, bool aborted) override {
    for (Observer* o : children_) o->on_finished(task, now_us, aborted);
  }
  void on_finished_batch(const FinishedEvent* events, std::size_t n) override {
    for (Observer* o : children_) o->on_finished_batch(events, n);
  }
  void on_epoch_opened(Epoch epoch) override {
    for (Observer* o : children_) o->on_epoch_opened(epoch);
  }
  void on_epoch_committed(Epoch epoch) override {
    for (Observer* o : children_) o->on_epoch_committed(epoch);
  }
  void on_epoch_aborted(Epoch epoch) override {
    for (Observer* o : children_) o->on_epoch_aborted(epoch);
  }
  void on_rollback_cascade(Epoch epoch, std::size_t tasks) override {
    for (Observer* o : children_) o->on_rollback_cascade(epoch, tasks);
  }
  void on_check_verdict(Epoch epoch, bool within, bool is_final,
                        double margin) override {
    for (Observer* o : children_) {
      o->on_check_verdict(epoch, within, is_final, margin);
    }
  }
  void on_prediction_scored(const std::string& predictor, bool hit,
                            double rel_error) override {
    for (Observer* o : children_) {
      o->on_prediction_scored(predictor, hit, rel_error);
    }
  }
  void on_predictor_charged(const std::string& predictor) override {
    for (Observer* o : children_) o->on_predictor_charged(predictor);
  }
  void on_speculation_gated(std::uint32_t estimate_index,
                            double confidence) override {
    for (Observer* o : children_) {
      o->on_speculation_gated(estimate_index, confidence);
    }
  }
  void on_fault_injected(TaskId task, bool failed,
                         std::uint64_t delay_us) override {
    for (Observer* o : children_) o->on_fault_injected(task, failed, delay_us);
  }

 private:
  std::vector<Observer*> children_;
};

}  // namespace sre
