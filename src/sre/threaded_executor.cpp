#include "sre/threaded_executor.h"

#include <algorithm>
#include <stdexcept>

namespace sre {

ThreadedExecutor::ThreadedExecutor(Runtime& runtime, Options options)
    : runtime_(runtime),
      options_(options),
      start_(std::chrono::steady_clock::now()) {
  if (options_.workers == 0) {
    throw std::invalid_argument("ThreadedExecutor: need at least one worker");
  }
  runtime_.set_ready_signal([this] {
    std::scoped_lock lk(mu_);
    work_cv_.notify_all();
    done_cv_.notify_all();
  });
}

ThreadedExecutor::~ThreadedExecutor() {
  {
    std::scoped_lock lk(mu_);
    stopping_ = true;
    work_cv_.notify_all();
    director_cv_.notify_all();
    done_cv_.notify_all();
  }
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  if (director_.joinable()) director_.join();
  if (feeder_.joinable()) feeder_.join();
  runtime_.set_ready_signal(nullptr);
}

std::uint64_t ThreadedExecutor::now_us() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start_)
          .count());
}

void ThreadedExecutor::schedule_arrival(std::uint64_t at_us, Arrival fn) {
  std::scoped_lock lk(mu_);
  const auto scaled = static_cast<std::uint64_t>(
      static_cast<double>(at_us) * options_.arrival_time_scale);
  arrivals_.emplace_back(scaled, std::move(fn));
}

bool ThreadedExecutor::finished_locked() const {
  return feeder_done_ && completions_.empty() && in_flight_ == 0 &&
         runtime_.quiescent();
}

void ThreadedExecutor::feeder_loop() {
  std::vector<std::pair<std::uint64_t, Arrival>> schedule;
  {
    std::scoped_lock lk(mu_);
    schedule = std::move(arrivals_);
    arrivals_.clear();
  }
  std::stable_sort(schedule.begin(), schedule.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  for (auto& [at_us, fn] : schedule) {
    {
      std::scoped_lock lk(mu_);
      if (stopping_) break;
    }
    std::this_thread::sleep_until(start_ + std::chrono::microseconds(at_us));
    fn(now_us());
  }
  {
    std::scoped_lock lk(mu_);
    feeder_done_ = true;
    done_cv_.notify_all();
    work_cv_.notify_all();
  }
}

void ThreadedExecutor::worker_loop(unsigned worker_ix) {
  if (options_.worker_start_hook) options_.worker_start_hook(worker_ix);
  for (;;) {
    {
      std::unique_lock lk(mu_);
      work_cv_.wait(lk, [this] {
        return stopping_ || runtime_.ready_count() > 0;
      });
      if (stopping_) return;
      ++in_flight_;  // claimed below; released if the pop loses the race
    }
    TaskPtr task = runtime_.next_task(now_us(), worker_ix);
    if (!task) {
      std::scoped_lock lk(mu_);
      --in_flight_;
      done_cv_.notify_all();
      continue;
    }
    try {
      // Simple polling model of the paper's x86 backend: the worker runs the
      // assigned task to completion; abort flags are honoured by the runtime
      // when the completion is directed.
      TaskContext ctx{runtime_, *task, now_us()};
      task->run(ctx);
    } catch (const std::exception& e) {
      std::scoped_lock lk(mu_);
      if (error_.empty()) {
        error_ = "task '" + task->name() + "' threw: " + e.what();
      }
      stopping_ = true;
      work_cv_.notify_all();
      director_cv_.notify_all();
      done_cv_.notify_all();
      return;
    }
    {
      std::scoped_lock lk(mu_);
      completions_.push_back({std::move(task), now_us()});
      director_cv_.notify_one();
    }
  }
}

void ThreadedExecutor::director_loop() {
  for (;;) {
    Completion c;
    {
      std::unique_lock lk(mu_);
      director_cv_.wait(lk, [this] {
        return stopping_ || !completions_.empty();
      });
      if (completions_.empty()) {
        if (stopping_) return;
        continue;
      }
      c = std::move(completions_.front());
      completions_.pop_front();
    }
    // Dependence propagation and completion hooks run on the director thread,
    // matching the paper's dedicated scheduling/data-directing thread.
    runtime_.on_task_finished(c.task, c.done_us);
    {
      std::scoped_lock lk(mu_);
      --in_flight_;
      work_cv_.notify_all();
      done_cv_.notify_all();
    }
  }
}

void ThreadedExecutor::run() {
  {
    std::scoped_lock lk(mu_);
    feeder_done_ = false;
    stopping_ = false;
  }
  feeder_ = std::thread([this] { feeder_loop(); });
  director_ = std::thread([this] { director_loop(); });
  workers_.reserve(options_.workers);
  for (unsigned i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }

  {
    std::unique_lock lk(mu_);
    // Periodic recheck guards against rare wakeup races between the two
    // mutexes (runtime's and ours).
    while (!finished_locked() && error_.empty()) {
      done_cv_.wait_for(lk, std::chrono::milliseconds(10));
    }
    stopping_ = true;
    work_cv_.notify_all();
    director_cv_.notify_all();
  }

  for (auto& w : workers_) w.join();
  workers_.clear();
  director_.join();
  feeder_.join();

  std::scoped_lock lk(mu_);
  if (!error_.empty()) {
    throw std::runtime_error("ThreadedExecutor: " + error_);
  }
}

}  // namespace sre
