#include "sre/threaded_executor.h"

#include <algorithm>
#include <bit>
#include <stdexcept>

#include "sre/chaos_point.h"

namespace sre {

namespace {

/// Consults the runtime's FaultPlan for `task`. Applies a Delay in place;
/// returns true when the plan failed the task (caller must skip the body and
/// retire the task as aborted).
bool apply_fault_plan(Runtime& runtime, Task& task) {
  FaultPlan* plan = runtime.fault_plan();
  if (plan == nullptr) return false;
  const FaultDecision d = plan->before_task(task);
  switch (d.kind) {
    case FaultDecision::Kind::None:
      return false;
    case FaultDecision::Kind::Delay:
      if (Observer* obs = runtime.observer()) {
        obs->on_fault_injected(task.id(), /*failed=*/false, d.delay_us);
      }
      std::this_thread::sleep_for(std::chrono::microseconds(d.delay_us));
      return false;
    case FaultDecision::Kind::Fail:
      if (Observer* obs = runtime.observer()) {
        obs->on_fault_injected(task.id(), /*failed=*/true, 0);
      }
      // The completion path treats the flagged task exactly like one caught
      // in flight by a rollback: results discarded, destroy signal to
      // consumers ("spurious failure" == the task died mid-run).
      task.request_abort();
      return true;
  }
  return false;
}

/// True on sharded worker threads. A worker that makes new work ready (via
/// an inline finish or a hook) picks it up itself on its next acquire loop,
/// so its ready_signal must not bounce to the director — only non-worker
/// threads (feeder arrivals, director-run hooks) need that wake. Extra
/// workers still engage through their timed-park ready_count predicate.
thread_local bool tls_sharded_worker = false;

std::size_t ceil_pow2(std::size_t n) {
  return std::bit_ceil(std::max<std::size_t>(n, 2));
}

/// Log-bucket index for a latency sample: bit_width(us), so bucket b covers
/// [2^(b-1), 2^b) µs and bucket 0 is exactly 0 µs.
unsigned latency_bucket(std::uint64_t us) {
  return static_cast<unsigned>(std::bit_width(us));
}

}  // namespace

std::uint64_t ThreadedExecutor::DispatchStats::pop_count() const {
  return local_pops + inbox_pops + steals + self_stages;
}

std::uint64_t ThreadedExecutor::DispatchStats::pop_latency_quantile_us(
    double q) const {
  std::uint64_t total = 0;
  for (const std::uint64_t c : pop_latency) total += c;
  if (total == 0) return 0;
  const auto rank = static_cast<std::uint64_t>(
      q * static_cast<double>(total - 1));
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < pop_latency.size(); ++b) {
    seen += pop_latency[b];
    if (seen > rank) {
      return b == 0 ? 0 : (std::uint64_t{1} << b) - 1;  // bucket upper bound
    }
  }
  return 0;
}

ThreadedExecutor::ThreadedExecutor(Runtime& runtime, Options options)
    : runtime_(runtime),
      options_(options),
      start_(std::chrono::steady_clock::now()) {
  if (options_.workers == 0) {
    throw std::invalid_argument("ThreadedExecutor: need at least one worker");
  }
  if (options_.dispatch == DispatchMode::Sharded) {
    options_.stage_batch = std::min(std::max(options_.stage_batch, 1u), 256u);
    const auto inbox_cap =
        static_cast<unsigned>(ceil_pow2(options_.inbox_capacity));
    // The deque must absorb a full inbox drain plus a self-staged batch so
    // worker-side pushes can never fail after a free_estimate check.
    const auto deque_cap = static_cast<unsigned>(ceil_pow2(
        std::max<std::size_t>(options_.local_queue_capacity, inbox_cap * 2)));
    wstate_.reserve(options_.workers);
    for (unsigned i = 0; i < options_.workers; ++i) {
      wstate_.push_back(std::make_unique<WorkerState>(inbox_cap, deque_cap));
    }
    // Sized generously: completions pile up whenever the director is starved
    // for CPU (e.g. more workers than cores), and a full queue forces workers
    // onto the per-task locked fallback — exactly the cost the batched drain
    // exists to amortize away. ~24 B/cell, so 16 Ki cells is ~400 KiB.
    const std::size_t cap = ceil_pow2(std::max<std::size_t>(
        16384, options_.workers * (inbox_cap + deque_cap + 2)));
    completions_ = std::make_unique<CompletionQueue>(cap);
    free_buf_.assign(options_.workers, 0);
  }
  runtime_.set_ready_signal([this] {
    if (options_.dispatch == DispatchMode::Sharded) {
      // New ready work: the director stages it out. run() polls with a
      // timeout, so it needs no eager wakeup here.
      if (!tls_sharded_worker) wake_director();
    } else {
      std::scoped_lock lk(mu_);
      work_cv_.notify_all();
      done_cv_.notify_all();
    }
  });
}

ThreadedExecutor::~ThreadedExecutor() {
  {
    std::scoped_lock lk(mu_);
    stopping_.store(true, std::memory_order_release);
    work_cv_.notify_all();
    director_cv_.notify_all();
    done_cv_.notify_all();
  }
  {
    std::scoped_lock lk(feeder_mu_);
    feeder_cv_.notify_all();
  }
  if (options_.dispatch == DispatchMode::Sharded) {
    wake_all_workers();
    {
      std::scoped_lock lk(dir_mu_);
      dir_cv_.notify_all();
    }
  }
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  if (director_.joinable()) director_.join();
  if (feeder_.joinable()) feeder_.join();
  runtime_.set_ready_signal(nullptr);
}

std::uint64_t ThreadedExecutor::now_us() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start_)
          .count());
}

void ThreadedExecutor::schedule_arrival(std::uint64_t at_us, Arrival fn) {
  const auto scaled = static_cast<std::uint64_t>(
      static_cast<double>(at_us) * options_.arrival_time_scale);
  {
    std::scoped_lock lk(feeder_mu_);
    arrival_heap_.push_back({scaled, arrival_seq_++, std::move(fn)});
    std::push_heap(arrival_heap_.begin(), arrival_heap_.end(), ArrivalAfter{});
  }
  feeder_cv_.notify_one();
}

void ThreadedExecutor::begin_service() {
  std::scoped_lock lk(feeder_mu_);
  service_open_ = true;
}

void ThreadedExecutor::end_service() {
  {
    std::scoped_lock lk(feeder_mu_);
    service_open_ = false;
  }
  feeder_cv_.notify_all();
}

bool ThreadedExecutor::service_open() const {
  std::scoped_lock lk(feeder_mu_);
  return service_open_;
}

void ThreadedExecutor::feeder_loop() {
  std::unique_lock lk(feeder_mu_);
  for (;;) {
    if (stopping_.load(std::memory_order_acquire)) break;
    if (arrival_heap_.empty()) {
      if (!service_open_) break;  // schedule drained, service closed: done
      feeder_cv_.wait(lk, [this] {
        return stopping_.load(std::memory_order_acquire) ||
               !arrival_heap_.empty() || !service_open_;
      });
      continue;
    }
    const std::uint64_t due = arrival_heap_.front().at_us;
    const auto deadline = start_ + std::chrono::microseconds(due);
    if (std::chrono::steady_clock::now() < deadline) {
      // A newly-scheduled earlier arrival (or shutdown) preempts the sleep;
      // a timeout just re-evaluates the heap top.
      feeder_cv_.wait_until(lk, deadline, [this, due] {
        return stopping_.load(std::memory_order_acquire) ||
               (!arrival_heap_.empty() && arrival_heap_.front().at_us < due);
      });
      continue;
    }
    std::pop_heap(arrival_heap_.begin(), arrival_heap_.end(), ArrivalAfter{});
    Arrival fn = std::move(arrival_heap_.back().fn);
    arrival_heap_.pop_back();
    lk.unlock();
    fn(now_us());
    lk.lock();
  }
  lk.unlock();
  {
    std::scoped_lock lk2(mu_);
    feeder_done_.store(true, std::memory_order_release);
    done_cv_.notify_all();
    work_cv_.notify_all();
  }
  if (options_.dispatch == DispatchMode::Sharded) wake_director();
}

void ThreadedExecutor::fail(const std::string& what) {
  {
    std::scoped_lock lk(mu_);
    if (error_.empty()) error_ = what;
    stopping_.store(true, std::memory_order_release);
    work_cv_.notify_all();
    director_cv_.notify_all();
    done_cv_.notify_all();
  }
  {
    std::scoped_lock lk(feeder_mu_);
    feeder_cv_.notify_all();
  }
  if (options_.dispatch == DispatchMode::Sharded) {
    wake_all_workers();
    std::scoped_lock lk(dir_mu_);
    dir_cv_.notify_all();
  }
}

// --- Sharded mode -----------------------------------------------------------

void ThreadedExecutor::wake_worker(unsigned worker_ix) {
  WorkerState& w = *wstate_[worker_ix];
  if (!w.parked.load(std::memory_order_acquire)) return;
  std::scoped_lock lk(w.park_mu);
  w.park_cv.notify_one();
}

void ThreadedExecutor::wake_all_workers() {
  for (auto& w : wstate_) {
    std::scoped_lock lk(w->park_mu);
    w->park_cv.notify_all();
  }
}

void ThreadedExecutor::wake_director() {
  if (!dir_parked_.load(std::memory_order_acquire)) return;
  std::scoped_lock lk(dir_mu_);
  dir_cv_.notify_one();
}

bool ThreadedExecutor::distribute() {
  if (runtime_.ready_count() == 0) return false;
  constexpr std::size_t kMax = 256;
  const unsigned nworkers = options_.workers;
  const std::size_t batch = options_.stage_batch;

  for (unsigned w = 0; w < nworkers; ++w) {
    free_buf_[w] = wstate_[w]->inbox.free_slots();
  }
  // Round-robin slot assignment: one task per worker per sweep, starting at
  // a rotating cursor, until the batch is filled or every inbox is full.
  // Awake workers are preferred (pass 0) — they poll their inbox anyway, so
  // feeding them costs no futex wake; parked workers (pass 1) are used only
  // when the awake ones are saturated. With fewer runnable chains than
  // workers this keeps the idle majority asleep instead of bouncing every
  // handoff to a fresh sleeper.
  unsigned targets[kMax];
  std::size_t want = 0;
  for (int pass = 0; pass < 2 && want < batch; ++pass) {
    bool assigned = true;
    while (want < batch && assigned) {
      assigned = false;
      for (unsigned k = 0; k < nworkers && want < batch; ++k) {
        const unsigned w = (rr_cursor_ + k) % nworkers;
        if (free_buf_[w] == 0) continue;
        const bool parked = wstate_[w]->parked.load(std::memory_order_relaxed);
        if (parked != (pass == 1)) continue;
        --free_buf_[w];
        targets[want++] = w;
        assigned = true;
      }
    }
  }
  rr_cursor_ = (rr_cursor_ + 1) % nworkers;
  if (want == 0) return false;  // all inboxes full; completions will drain them

  Task* out[kMax];
  const std::size_t n =
      runtime_.stage_ready_batch(now_us(), targets, want, out);
  for (std::size_t i = 0; i < n; ++i) {
    const bool ok = wstate_[targets[i]]->inbox.push(out[i]);
    (void)ok;  // cannot fail: free_slots checked, we are the only producer
  }
  dir_stats_.director_stages += n;
  for (std::size_t i = 0; i < n; ++i) {
    bool first = true;
    for (std::size_t j = 0; j < i; ++j) {
      if (targets[j] == targets[i]) {
        first = false;
        break;
      }
    }
    if (first) wake_worker(targets[i]);
  }
  return n > 0;
}

std::size_t ThreadedExecutor::try_retire_batch() {
  // Retire completions in batches: one runtime-lock acquisition per
  // kRetireBatch tasks instead of per task. The MPSC pop side is
  // single-consumer, so the "retire role" is arbitrated by retire_mu_ —
  // try_lock only, since a loser knows someone else is already retiring and
  // should go do something more useful. The popped tasks still count as
  // outstanding until finish_staged_batch runs, so quiescent() stays false
  // across the window; directing_ additionally guards the hook-submit window
  // (see run()).
  constexpr std::size_t kRetireBatch = 128;
  Task* done_tasks[kRetireBatch];
  std::uint64_t done_times[kRetireBatch];
  std::size_t n = 0;
  {
    std::unique_lock lk(retire_mu_, std::try_to_lock);
    if (!lk.owns_lock()) return 0;
    while (n < kRetireBatch && completions_->pop(done_tasks[n], done_times[n])) {
      ++n;
    }
  }
  if (n == 0) return 0;
  directing_.fetch_add(1, std::memory_order_acq_rel);
  runtime_.finish_staged_batch(done_tasks, done_times, n);
  directing_.fetch_sub(1, std::memory_order_acq_rel);
  return n;
}

void ThreadedExecutor::director_loop_sharded() {
  for (;;) {
    if (stopping_.load(std::memory_order_acquire)) return;
    bool progress = false;

    while (try_retire_batch() > 0) progress = true;

    if (distribute()) progress = true;

    if (feeder_done_.load(std::memory_order_acquire) && runtime_.quiescent() &&
        directing_.load(std::memory_order_acquire) == 0) {
      std::scoped_lock lk(mu_);
      done_cv_.notify_all();
    }

    if (!progress) {
      // Short timed park: it bounds the drain latency when producers skip
      // the wakeup (queue already non-empty) and doubles as the safety net
      // for any lost-wakeup race.
      std::unique_lock lk(dir_mu_);
      dir_parked_.store(true, std::memory_order_release);
      dir_cv_.wait_for(lk, std::chrono::microseconds(200), [this] {
        return stopping_.load(std::memory_order_acquire) ||
               !completions_->empty() || runtime_.ready_count() > 0;
      });
      dir_parked_.store(false, std::memory_order_release);
    }
  }
}

Task* ThreadedExecutor::drain_inbox(WorkerState& me) {
  // Take at most (deque room + 1) items: one is returned to run immediately,
  // the rest are parked in the deque. free_estimate is a lower bound from the
  // owner's perspective (thieves only make room), so the pushes cannot fail.
  const std::size_t room = me.deque.free_estimate();
  me.scratch.clear();
  while (me.scratch.size() < room + 1) {
    Task* t = me.inbox.pop();
    if (t == nullptr) break;
    me.scratch.push_back(t);
  }
  if (me.scratch.empty()) return nullptr;
  // The director feeds the inbox in dispatch-priority order. Push the tail in
  // reverse so the deque's bottom (next local pop) is the next-highest
  // priority and thieves take from the low-priority end.
  for (std::size_t i = me.scratch.size(); i-- > 1;) {
    const bool ok = me.deque.push(me.scratch[i]);
    (void)ok;
  }
  Task* first = me.scratch.front();
  me.scratch.clear();
  ++me.stats.inbox_pops;
  return first;
}

Task* ThreadedExecutor::acquire_task(WorkerState& me, unsigned worker_ix) {
  if (Task* t = me.deque.pop()) {
    ++me.stats.local_pops;
    return t;
  }
  if (Task* t = drain_inbox(me)) return t;
  const unsigned nworkers = options_.workers;
  for (unsigned k = 1; k < nworkers; ++k) {
    WorkerState& victim = *wstate_[(worker_ix + k) % nworkers];
    if (Task* t = victim.deque.steal()) {
      ++me.stats.steals;
      return t;
    }
  }
  // Starved with work still in the pool (director busy retiring, or bursty
  // submit): grab a small batch directly. The deque is empty here, so the
  // tail pushes cannot fail.
  if (runtime_.ready_count() > 0) {
    constexpr std::size_t kSelfBatch = 16;
    unsigned targets[kSelfBatch];
    Task* out[kSelfBatch];
    const std::size_t max =
        std::min<std::size_t>(kSelfBatch, me.deque.free_estimate() + 1);
    for (std::size_t i = 0; i < max; ++i) targets[i] = worker_ix;
    const std::size_t n = runtime_.stage_ready_batch(now_us(), targets, max, out);
    if (n > 0) {
      for (std::size_t i = n; i-- > 1;) {
        const bool ok = me.deque.push(out[i]);
        (void)ok;
      }
      // Counts the acquire this batch satisfied directly; the parked
      // remainder surfaces as local_pops, so the four pop sources partition
      // the tasks exactly.
      ++me.stats.self_stages;
      return out[0];
    }
  }
  return nullptr;
}

bool ThreadedExecutor::execute_and_retire(Task* task, WorkerState& me,
                                          unsigned worker_ix) {
  // Revocation-at-pop: if no rollback ran since this task was staged, its
  // abort flag cannot be set and the body runs without further checks. If the
  // epoch moved, honour the flag — the task was rolled back while parked in a
  // local queue and must be retired unrun. A flag set *during* the body is
  // handled the same as the baseline: finish_staged discards the results.
  bool revoked = false;
  if (task->staged_revocation_epoch() != runtime_.revocation_epoch() &&
      task->abort_requested()) {
    revoked = true;
    ++me.stats.revoked_at_pop;
  }
  if (!revoked && apply_fault_plan(runtime_, *task)) {
    revoked = true;  // injected failure: retire unrun through the abort path
  }
  if (!revoked) {
    task->state_.store(TaskState::Running, std::memory_order_release);
    SRE_CHAOS_POINT("executor.before_body");
    try {
      TaskContext ctx{runtime_, *task, now_us(), worker_ix};
      task->run(ctx);
    } catch (const std::exception& e) {
      fail("task '" + task->name() + "' threw: " + e.what());
      return false;
    }
    SRE_CHAOS_POINT("executor.after_body");
    ++me.stats.tasks_run;
  }
  const std::uint64_t done_us = now_us();
  // Latency path: nothing else is ready and no completions are pending, so
  // this retirement is on the critical path of whatever depends on `task`
  // (dependency-chain handoff). Retire inline — the successor becomes ready
  // in this thread and the next acquire_task() self-stages it, with no
  // futex wake or director round-trip. Under load (ready work or queued
  // completions exist) we take the queued path instead so the director can
  // amortize the runtime lock over whole batches.
  if (runtime_.ready_count() == 0 && completions_->empty()) {
    ++me.stats.inline_finishes;
    directing_.fetch_add(1, std::memory_order_acq_rel);
    runtime_.finish_staged(task, done_us);
    directing_.fetch_sub(1, std::memory_order_acq_rel);
    return true;
  }
  // No director wakeup on push: a worker that later runs out of work drains
  // the queue itself (try_retire_batch in its idle loop), so completions are
  // never stranded behind a sleeping director. The director's 200µs timed
  // park bounds the drain latency in the remaining case — every worker busy
  // running long bodies — where the successors could not run yet anyway.
  if (!completions_->push(task, done_us)) {
    // Queue full (director stalled): retire inline under the runtime lock so
    // the system cannot deadlock on a bounded queue.
    ++me.stats.completion_fallbacks;
    directing_.fetch_add(1, std::memory_order_acq_rel);
    runtime_.finish_staged(task, done_us);
    directing_.fetch_sub(1, std::memory_order_acq_rel);
  }
  return true;
}

void ThreadedExecutor::worker_loop_sharded(unsigned worker_ix) {
  if (options_.worker_start_hook) options_.worker_start_hook(worker_ix);
  tls_sharded_worker = true;
  WorkerState& me = *wstate_[worker_ix];
  const bool time_pops = options_.collect_pop_latency;
  for (;;) {
    if (stopping_.load(std::memory_order_acquire)) return;
    const std::uint64_t t0 = time_pops ? now_us() : 0;
    if (Task* t = acquire_task(me, worker_ix)) {
      if (time_pops) ++me.stats.pop_latency[latency_bucket(now_us() - t0)];
      if (!execute_and_retire(t, me, worker_ix)) return;
      continue;
    }
    // Nothing runnable, but completions may be pending — retiring them is
    // what produces the next ready tasks. Claim the retire role instead of
    // parking (work-conserving: at low worker counts this keeps the whole
    // ready→run→retire cycle on worker threads with no director handoffs).
    if (const std::size_t n = try_retire_batch(); n > 0) {
      me.stats.worker_retires += n;
      continue;
    }
    ++me.stats.parks;
    std::unique_lock lk(me.park_mu);
    me.parked.store(true, std::memory_order_release);
    // Timed wait: stealable work in sibling deques is not part of the
    // predicate, and wakeups are targeted — the timeout is the safety net.
    me.park_cv.wait_for(lk, std::chrono::milliseconds(2), [this, &me] {
      return stopping_.load(std::memory_order_acquire) || !me.inbox.empty() ||
             !completions_->empty() || runtime_.ready_count() > 0;
    });
    me.parked.store(false, std::memory_order_release);
  }
}

// --- Central (legacy single-lock) mode --------------------------------------

bool ThreadedExecutor::finished_locked_central() const {
  return feeder_done_.load(std::memory_order_acquire) &&
         completions_central_.empty() && in_flight_ == 0 &&
         runtime_.quiescent();
}

void ThreadedExecutor::worker_loop_central(unsigned worker_ix) {
  if (options_.worker_start_hook) options_.worker_start_hook(worker_ix);
  for (;;) {
    {
      std::unique_lock lk(mu_);
      work_cv_.wait(lk, [this] {
        return stopping_.load(std::memory_order_acquire) ||
               runtime_.ready_count() > 0;
      });
      if (stopping_.load(std::memory_order_acquire)) return;
      ++in_flight_;  // claimed below; released if the pop loses the race
    }
    TaskPtr task = runtime_.next_task(now_us(), worker_ix);
    if (!task) {
      std::scoped_lock lk(mu_);
      --in_flight_;
      done_cv_.notify_all();
      continue;
    }
    if (!apply_fault_plan(runtime_, *task)) {
      SRE_CHAOS_POINT("executor.before_body");
      try {
        // Simple polling model of the paper's x86 backend: the worker runs
        // the assigned task to completion; abort flags are honoured by the
        // runtime when the completion is directed.
        TaskContext ctx{runtime_, *task, now_us(), worker_ix};
        task->run(ctx);
      } catch (const std::exception& e) {
        fail("task '" + task->name() + "' threw: " + e.what());
        return;
      }
      SRE_CHAOS_POINT("executor.after_body");
    }
    {
      std::scoped_lock lk(mu_);
      completions_central_.push_back({std::move(task), now_us()});
      director_cv_.notify_one();
    }
  }
}

void ThreadedExecutor::director_loop_central() {
  for (;;) {
    Completion c;
    {
      std::unique_lock lk(mu_);
      director_cv_.wait(lk, [this] {
        return stopping_.load(std::memory_order_acquire) ||
               !completions_central_.empty();
      });
      if (completions_central_.empty()) {
        if (stopping_.load(std::memory_order_acquire)) return;
        continue;
      }
      c = std::move(completions_central_.front());
      completions_central_.pop_front();
    }
    // Dependence propagation and completion hooks run on the director thread,
    // matching the paper's dedicated scheduling/data-directing thread.
    runtime_.on_task_finished(c.task, c.done_us);
    {
      std::scoped_lock lk(mu_);
      --in_flight_;
      work_cv_.notify_all();
      done_cv_.notify_all();
    }
  }
}

// --- Shared run -------------------------------------------------------------

void ThreadedExecutor::run() {
  {
    std::scoped_lock lk(mu_);
    feeder_done_.store(false, std::memory_order_release);
    stopping_.store(false, std::memory_order_release);
  }
  const bool sharded = options_.dispatch == DispatchMode::Sharded;
  feeder_ = std::thread([this] { feeder_loop(); });
  director_ = std::thread([this, sharded] {
    if (sharded) {
      director_loop_sharded();
    } else {
      director_loop_central();
    }
  });
  workers_.reserve(options_.workers);
  for (unsigned i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this, sharded, i] {
      if (sharded) {
        worker_loop_sharded(i);
      } else {
        worker_loop_central(i);
      }
    });
  }

  {
    std::unique_lock lk(mu_);
    // Periodic recheck guards against rare wakeup races between the mutexes
    // involved (runtime's, ours, and the per-worker park locks).
    const auto finished = [this, sharded] {
      if (!sharded) return finished_locked_central();
      // Order matters: quiescent() before directing_ == 0, then quiescent()
      // again. A completion hook may submit follow-on work after
      // outstanding_ transiently hits zero; during that whole window
      // directing_ >= 1, and the re-check synchronizes with its release-
      // decrement so the follow-on submit is visible.
      return feeder_done_.load(std::memory_order_acquire) &&
             runtime_.quiescent() &&
             directing_.load(std::memory_order_acquire) == 0 &&
             runtime_.quiescent();
    };
    while (!finished() && error_.empty()) {
      done_cv_.wait_for(lk, std::chrono::milliseconds(10));
    }
    stopping_.store(true, std::memory_order_release);
    work_cv_.notify_all();
    director_cv_.notify_all();
  }
  if (sharded) {
    wake_all_workers();
    {
      std::scoped_lock lk(dir_mu_);
      dir_cv_.notify_all();
    }
  }

  for (auto& w : workers_) w.join();
  workers_.clear();
  director_.join();
  feeder_.join();

  std::scoped_lock lk(mu_);
  if (!error_.empty()) {
    throw std::runtime_error("ThreadedExecutor: " + error_);
  }
}

ThreadedExecutor::DispatchStats ThreadedExecutor::dispatch_stats() const {
  DispatchStats total = dir_stats_;
  for (const auto& w : wstate_) {
    const DispatchStats& s = w->stats;
    total.tasks_run += s.tasks_run;
    total.local_pops += s.local_pops;
    total.inbox_pops += s.inbox_pops;
    total.steals += s.steals;
    total.self_stages += s.self_stages;
    total.revoked_at_pop += s.revoked_at_pop;
    total.parks += s.parks;
    total.completion_fallbacks += s.completion_fallbacks;
    total.inline_finishes += s.inline_finishes;
    total.worker_retires += s.worker_retires;
    for (std::size_t b = 0; b < s.pop_latency.size(); ++b) {
      total.pop_latency[b] += s.pop_latency[b];
    }
  }
  return total;
}

}  // namespace sre
