#include "sre/arena.h"

#include <cstdlib>
#include <new>

namespace sre {

ChunkPool::~ChunkPool() {
  for (void* c : free_) ::operator delete(c);
}

void* ChunkPool::get() {
  {
    std::scoped_lock lk(mu_);
    if (!free_.empty()) {
      void* c = free_.back();
      free_.pop_back();
      chunks_reused_.fetch_add(1, std::memory_order_relaxed);
      return c;
    }
  }
  chunks_new_.fetch_add(1, std::memory_order_relaxed);
  return ::operator new(kChunkBytes);
}

void ChunkPool::put(void* chunk) {
  {
    std::scoped_lock lk(mu_);
    if (free_.size() < max_free_) {
      free_.push_back(chunk);
      return;
    }
  }
  ::operator delete(chunk);
}

ArenaStats ChunkPool::stats() const {
  ArenaStats s;
  s.allocs = allocs_.load(std::memory_order_relaxed);
  s.bytes = bytes_.load(std::memory_order_relaxed);
  s.chunks_new = chunks_new_.load(std::memory_order_relaxed);
  s.chunks_reused = chunks_reused_.load(std::memory_order_relaxed);
  s.oversize = oversize_.load(std::memory_order_relaxed);
  return s;
}

std::size_t ChunkPool::free_chunks() const {
  std::scoped_lock lk(mu_);
  return free_.size();
}

Arena::~Arena() {
  for (void* c : chunks_) pool_->put(c);
  for (void* c : oversize_) ::operator delete(c);
}

void* Arena::allocate(std::size_t n, std::size_t align) {
  pool_->note_alloc(n);
  if (n > ChunkPool::kChunkBytes) [[unlikely]] {
    // Dedicated allocation; operator new is max_align_t-aligned, which is
    // the strongest alignment the data plane asks for.
    pool_->note_oversize();
    void* p = ::operator new(n);
    oversize_.push_back(p);
    return p;
  }
  auto aligned = [&](std::uint8_t* p) {
    const auto u = reinterpret_cast<std::uintptr_t>(p);
    return reinterpret_cast<std::uint8_t*>((u + (align - 1)) & ~(align - 1));
  };
  std::uint8_t* p = cur_ ? aligned(cur_) : nullptr;
  if (p == nullptr || p + n > end_) {
    auto* c = static_cast<std::uint8_t*>(pool_->get());
    chunks_.push_back(c);
    cur_ = c;
    end_ = c + ChunkPool::kChunkBytes;
    p = aligned(cur_);
  }
  cur_ = p + n;
  return p;
}

}  // namespace sre
