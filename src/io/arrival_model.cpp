#include "io/arrival_model.h"

#include <algorithm>

namespace sio {
namespace {

/// splitmix64: small, high-quality deterministic mixer.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

Micros SocketArrival::arrival_us(std::size_t i) const {
  // Monotone base schedule plus bounded jitter. Jitter is clamped so the
  // sequence stays strictly increasing (TCP delivers in order).
  const Micros base = per_block_us_ * (static_cast<Micros>(i) + 1);
  if (jitter_us_ == 0) return base;
  const Micros j = mix(seed_ ^ static_cast<std::uint64_t>(i)) %
                   std::min(jitter_us_, per_block_us_ - 1);
  return base + j;
}

}  // namespace sio
