#include "io/arrival_model.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sio {
namespace {

/// splitmix64: small, high-quality deterministic mixer.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

Micros SocketArrival::arrival_us(std::size_t i) const {
  // Monotone base schedule plus bounded jitter. Jitter is clamped so the
  // sequence stays strictly increasing (TCP delivers in order).
  const Micros base = per_block_us_ * (static_cast<Micros>(i) + 1);
  if (jitter_us_ == 0) return base;
  const Micros j = mix(seed_ ^ static_cast<std::uint64_t>(i)) %
                   std::min(jitter_us_, per_block_us_ - 1);
  return base + j;
}

PoissonArrival::PoissonArrival(double mean_gap_us, std::uint64_t seed,
                               std::size_t burst_len,
                               Micros intra_burst_gap_us)
    : mean_gap_us_(mean_gap_us),
      seed_(seed),
      burst_len_(burst_len),
      intra_gap_us_(std::max<Micros>(1, intra_burst_gap_us)) {
  if (!(mean_gap_us > 0.0)) {
    throw std::invalid_argument("PoissonArrival: mean_gap_us must be > 0");
  }
  if (burst_len == 0) {
    throw std::invalid_argument("PoissonArrival: burst_len must be >= 1");
  }
}

Micros PoissonArrival::arrival_us(std::size_t i) const {
  std::scoped_lock lk(mu_);
  while (cum_.size() <= i) {
    const std::size_t k = cum_.size();
    const Micros prev = k == 0 ? 0 : cum_.back();
    Micros gap;
    if (burst_len_ > 1 && k % burst_len_ != 0) {
      gap = intra_gap_us_;  // inside a burst: back-to-back delivery
    } else {
      // Inverse-CDF exponential sample from a seeded uniform. The uniform
      // is (0,1] so log() is finite; the gap floor of 1 µs keeps the
      // sequence strictly increasing. Between bursts the mean is scaled by
      // burst_len so the long-run block rate stays ~1/mean_gap_us.
      const double u =
          1.0 - static_cast<double>(mix(seed_ ^ static_cast<std::uint64_t>(k)) >>
                                    11) *
                    0x1.0p-53;
      const double mean = mean_gap_us_ * static_cast<double>(burst_len_);
      gap = std::max<Micros>(
          1, static_cast<Micros>(std::llround(-mean * std::log(u))));
    }
    cum_.push_back(prev + gap);
  }
  return cum_[i];
}

}  // namespace sio
