// Arrival models: when each input block becomes available to the runtime.
//
// The paper's two I/O scenarios (§V-A):
//  1. "reading from a hard disk cache" — very low I/O latency; blocks are
//     effectively all available almost immediately;
//  2. "data is streamed via a tunneled SSH socket connection over a long
//     distance" — blocks trickle in at WAN pace (Fig. 7 shows ~6–7 s for a
//     4 MB stream, i.e. several ms per 4 KiB block).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

namespace sio {

using Micros = std::uint64_t;

/// Maps block index → arrival time (µs). Implementations must be
/// deterministic: the figure benchmarks rely on reproducible schedules.
class ArrivalModel {
 public:
  virtual ~ArrivalModel() = default;
  [[nodiscard]] virtual Micros arrival_us(std::size_t block_index) const = 0;
};

/// Disk-cache model: small fixed per-block service time (~340 MB/s for
/// 4 KiB blocks — a warm disk cache, still far from instantaneous).
class DiskArrival final : public ArrivalModel {
 public:
  explicit DiskArrival(Micros per_block_us = 12) : per_block_us_(per_block_us) {}
  [[nodiscard]] Micros arrival_us(std::size_t i) const override {
    return per_block_us_ * (static_cast<Micros>(i) + 1);
  }

 private:
  Micros per_block_us_;
};

/// Long-distance socket model: milliseconds per block plus deterministic
/// pseudo-random jitter (WAN delivery is bursty, but a seeded hash keeps
/// runs reproducible).
class SocketArrival final : public ArrivalModel {
 public:
  explicit SocketArrival(Micros per_block_us = 5500, Micros jitter_us = 900,
                         std::uint64_t seed = 0x5eedULL)
      : per_block_us_(per_block_us), jitter_us_(jitter_us), seed_(seed) {}

  [[nodiscard]] Micros arrival_us(std::size_t i) const override;

 private:
  Micros per_block_us_;
  Micros jitter_us_;
  std::uint64_t seed_;
};

/// Replays an explicit schedule (tests; captured traces).
class ExplicitArrival final : public ArrivalModel {
 public:
  explicit ExplicitArrival(std::vector<Micros> times)
      : times_(std::move(times)) {}
  [[nodiscard]] Micros arrival_us(std::size_t i) const override {
    return times_.at(i);
  }

 private:
  std::vector<Micros> times_;
};

}  // namespace sio
