// Arrival models: when each input block becomes available to the runtime.
//
// The paper's two I/O scenarios (§V-A):
//  1. "reading from a hard disk cache" — very low I/O latency; blocks are
//     effectively all available almost immediately;
//  2. "data is streamed via a tunneled SSH socket connection over a long
//     distance" — blocks trickle in at WAN pace (Fig. 7 shows ~6–7 s for a
//     4 MB stream, i.e. several ms per 4 KiB block).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace sio {

using Micros = std::uint64_t;

/// Maps block index → arrival time (µs). Implementations must be
/// deterministic: the figure benchmarks rely on reproducible schedules.
class ArrivalModel {
 public:
  virtual ~ArrivalModel() = default;
  [[nodiscard]] virtual Micros arrival_us(std::size_t block_index) const = 0;
};

/// Disk-cache model: small fixed per-block service time (~340 MB/s for
/// 4 KiB blocks — a warm disk cache, still far from instantaneous).
class DiskArrival final : public ArrivalModel {
 public:
  explicit DiskArrival(Micros per_block_us = 12) : per_block_us_(per_block_us) {}
  [[nodiscard]] Micros arrival_us(std::size_t i) const override {
    return per_block_us_ * (static_cast<Micros>(i) + 1);
  }

 private:
  Micros per_block_us_;
};

/// Long-distance socket model: milliseconds per block plus deterministic
/// pseudo-random jitter (WAN delivery is bursty, but a seeded hash keeps
/// runs reproducible).
class SocketArrival final : public ArrivalModel {
 public:
  explicit SocketArrival(Micros per_block_us = 5500, Micros jitter_us = 900,
                         std::uint64_t seed = 0x5eedULL)
      : per_block_us_(per_block_us), jitter_us_(jitter_us), seed_(seed) {}

  [[nodiscard]] Micros arrival_us(std::size_t i) const override;

 private:
  Micros per_block_us_;
  Micros jitter_us_;
  std::uint64_t seed_;
};

/// Open-loop random-traffic model: inter-arrival gaps drawn from a seeded
/// exponential distribution, i.e. a Poisson process at rate 1/mean_gap_us —
/// the standard open-loop overload model, where arrivals do not slow down
/// when the consumer falls behind. Optional burst clustering: with
/// burst_len = B > 1, blocks land in back-to-back groups of B (a tiny fixed
/// intra-burst gap) separated by exponential gaps whose mean is scaled by B,
/// so the long-run rate stays ~1/mean_gap_us while the short-term load is
/// much spikier. Deterministic per seed; times are strictly increasing.
/// bench/serve_load uses this to drive session admission past saturation.
class PoissonArrival final : public ArrivalModel {
 public:
  explicit PoissonArrival(double mean_gap_us, std::uint64_t seed = 0x5eedULL,
                          std::size_t burst_len = 1,
                          Micros intra_burst_gap_us = 1);

  [[nodiscard]] Micros arrival_us(std::size_t i) const override;

 private:
  double mean_gap_us_;
  std::uint64_t seed_;
  std::size_t burst_len_;
  Micros intra_gap_us_;
  /// Arrival times are a prefix sum of the sampled gaps; cache them so
  /// arrival_us(i) is O(1) amortized instead of O(i) per call. Guarded:
  /// const calls may race (the model is shared across sessions).
  mutable std::mutex mu_;
  mutable std::vector<Micros> cum_;
};

/// Replays an explicit schedule (tests; captured traces).
class ExplicitArrival final : public ArrivalModel {
 public:
  explicit ExplicitArrival(std::vector<Micros> times)
      : times_(std::move(times)) {}
  [[nodiscard]] Micros arrival_us(std::size_t i) const override {
    return times_.at(i);
  }

 private:
  std::vector<Micros> times_;
};

}  // namespace sio
