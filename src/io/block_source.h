// BlockSource: a stream of fixed-size input blocks with an arrival schedule.
//
// Carves an input byte range into blocks (the paper uses 4 KiB) and pairs
// each block with the time its bytes become available under the chosen
// ArrivalModel. Executors consume the schedule through for_each_arrival.
//
// The source is zero-copy: it holds a span view plus a type-erased owner
// handle that keeps the backing storage alive (a moved-in vector, an mmap'd
// file, or caller-owned memory the caller guarantees outlives the source —
// see docs/data-plane.md, "zero-copy ownership contract"). block() spans
// alias that storage and stay valid for the lifetime of the source.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "io/arrival_model.h"

namespace sio {

inline constexpr std::size_t kDefaultBlockSize = 4096;

class BlockSource {
 public:
  /// Takes ownership of `data`; the final block may be shorter than
  /// `block_size`. Empty data is a valid zero-block stream (an empty file
  /// is a legitimate serving-layer input). Throws std::invalid_argument on
  /// zero block size or a null arrival model.
  BlockSource(std::vector<std::uint8_t> data, std::size_t block_size,
              std::shared_ptr<const ArrivalModel> arrivals);

  /// Zero-copy view over caller-managed bytes. `owner` is held (never
  /// dereferenced) to pin the storage; pass nullptr when the caller
  /// guarantees `view` outlives the source and every pipeline reading it.
  /// A zero-length view is a valid zero-block stream.
  BlockSource(std::span<const std::uint8_t> view, std::size_t block_size,
              std::shared_ptr<const ArrivalModel> arrivals,
              std::shared_ptr<const void> owner = nullptr);

  /// Maps `path` read-only and serves blocks straight from the page cache —
  /// no read() copy. An empty file yields a zero-block stream (mmap of
  /// length 0 is not attempted). Throws std::runtime_error on open/map
  /// failure; callers that want a copying fallback catch and retry with
  /// the vector constructor.
  [[nodiscard]] static BlockSource map_file(
      const std::string& path, std::size_t block_size,
      std::shared_ptr<const ArrivalModel> arrivals);

  [[nodiscard]] std::size_t n_blocks() const { return n_blocks_; }
  [[nodiscard]] std::size_t block_size() const { return block_size_; }
  [[nodiscard]] std::size_t total_bytes() const { return view_.size(); }

  /// View of block `i`'s bytes (valid for the source's lifetime). The final
  /// block of a non-block-aligned input is short; a block is never empty.
  [[nodiscard]] std::span<const std::uint8_t> block(std::size_t i) const;

  /// Arrival time of block `i` under the model.
  [[nodiscard]] Micros arrival_us(std::size_t i) const {
    return arrivals_->arrival_us(i);
  }

  /// Arrival time of the final block (the stream's transfer completion);
  /// 0 for a zero-block stream.
  [[nodiscard]] Micros last_arrival_us() const {
    return n_blocks_ == 0 ? 0 : arrival_us(n_blocks_ - 1);
  }

  /// Invokes `fn(block_index, arrival_us)` for every block in index order.
  void for_each_arrival(
      const std::function<void(std::size_t, Micros)>& fn) const;

  /// Whole-input view (reference encoders, verification).
  [[nodiscard]] std::span<const std::uint8_t> bytes() const { return view_; }

  /// The storage keep-alive handle (tests; null for borrowed views).
  [[nodiscard]] const std::shared_ptr<const void>& owner() const {
    return owner_;
  }

 private:
  std::shared_ptr<const void> owner_;
  std::span<const std::uint8_t> view_;
  std::size_t block_size_;
  std::size_t n_blocks_;
  std::shared_ptr<const ArrivalModel> arrivals_;
};

}  // namespace sio
