#include "io/block_source.h"

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#define TVS_IO_HAVE_MMAP 1
#endif

namespace sio {
namespace {

void validate(std::size_t block_size,
              const std::shared_ptr<const ArrivalModel>& arrivals) {
  if (block_size == 0) {
    throw std::invalid_argument("BlockSource: zero block size");
  }
  if (!arrivals) {
    throw std::invalid_argument("BlockSource: null arrival model");
  }
}

#if TVS_IO_HAVE_MMAP

/// RAII owner for an mmap'd read-only file region; the fd is closed right
/// after mapping (the mapping keeps the file referenced).
struct MappedFile {
  void* addr = nullptr;
  std::size_t size = 0;
  MappedFile(void* a, std::size_t s) : addr(a), size(s) {}
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  ~MappedFile() {
    if (addr != nullptr) ::munmap(addr, size);
  }
};

#endif

}  // namespace

BlockSource::BlockSource(std::vector<std::uint8_t> data, std::size_t block_size,
                         std::shared_ptr<const ArrivalModel> arrivals)
    : block_size_(block_size), arrivals_(std::move(arrivals)) {
  validate(block_size_, arrivals_);
  auto owned = std::make_shared<std::vector<std::uint8_t>>(std::move(data));
  view_ = std::span<const std::uint8_t>(owned->data(), owned->size());
  owner_ = std::move(owned);
  n_blocks_ = (view_.size() + block_size_ - 1) / block_size_;
}

BlockSource::BlockSource(std::span<const std::uint8_t> view,
                         std::size_t block_size,
                         std::shared_ptr<const ArrivalModel> arrivals,
                         std::shared_ptr<const void> owner)
    : owner_(std::move(owner)),
      view_(view),
      block_size_(block_size),
      arrivals_(std::move(arrivals)) {
  validate(block_size_, arrivals_);
  n_blocks_ = (view_.size() + block_size_ - 1) / block_size_;
}

BlockSource BlockSource::map_file(
    const std::string& path, std::size_t block_size,
    std::shared_ptr<const ArrivalModel> arrivals) {
#if TVS_IO_HAVE_MMAP
  validate(block_size, arrivals);
  const int fd = ::open(path.c_str(), O_RDONLY);  // NOLINT(cppcoreguidelines-*)
  if (fd < 0) {
    throw std::runtime_error("map_file: open '" + path +
                             "' failed: " + std::strerror(errno));
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    throw std::runtime_error("map_file: fstat '" + path +
                             "' failed: " + std::strerror(err));
  }
  const auto size = static_cast<std::size_t>(st.st_size);
  if (size == 0) {
    // mmap(0) is EINVAL; an empty file is simply a zero-block stream.
    ::close(fd);
    return BlockSource(std::span<const std::uint8_t>{}, block_size,
                       std::move(arrivals));
  }
  void* addr = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  const int map_err = errno;
  ::close(fd);
  if (addr == MAP_FAILED) {
    throw std::runtime_error("map_file: mmap '" + path +
                             "' failed: " + std::strerror(map_err));
  }
#if defined(POSIX_MADV_SEQUENTIAL)
  // Blocks are consumed front to back; ask for aggressive readahead.
  ::posix_madvise(addr, size, POSIX_MADV_SEQUENTIAL);
#endif
  auto mapped = std::make_shared<MappedFile>(addr, size);
  const auto* data = static_cast<const std::uint8_t*>(mapped->addr);
  return BlockSource(std::span<const std::uint8_t>(data, size), block_size,
                     std::move(arrivals), std::move(mapped));
#else
  (void)block_size;
  (void)arrivals;
  throw std::runtime_error("map_file: mmap unavailable on this platform ('" +
                           path + "')");
#endif
}

std::span<const std::uint8_t> BlockSource::block(std::size_t i) const {
  if (i >= n_blocks_) {
    throw std::out_of_range("BlockSource: block index out of range");
  }
  const std::size_t begin = i * block_size_;
  const std::size_t len = std::min(block_size_, view_.size() - begin);
  return view_.subspan(begin, len);
}

void BlockSource::for_each_arrival(
    const std::function<void(std::size_t, Micros)>& fn) const {
  for (std::size_t i = 0; i < n_blocks_; ++i) {
    fn(i, arrival_us(i));
  }
}

}  // namespace sio
