#include "io/block_source.h"

#include <stdexcept>

namespace sio {

BlockSource::BlockSource(std::vector<std::uint8_t> data, std::size_t block_size,
                         std::shared_ptr<const ArrivalModel> arrivals)
    : data_(std::move(data)),
      block_size_(block_size),
      arrivals_(std::move(arrivals)) {
  if (block_size_ == 0) {
    throw std::invalid_argument("BlockSource: zero block size");
  }
  if (!arrivals_) {
    throw std::invalid_argument("BlockSource: null arrival model");
  }
  n_blocks_ = (data_.size() + block_size_ - 1) / block_size_;
}

std::span<const std::uint8_t> BlockSource::block(std::size_t i) const {
  if (i >= n_blocks_) {
    throw std::out_of_range("BlockSource: block index out of range");
  }
  const std::size_t begin = i * block_size_;
  const std::size_t len = std::min(block_size_, data_.size() - begin);
  return std::span<const std::uint8_t>(data_).subspan(begin, len);
}

void BlockSource::for_each_arrival(
    const std::function<void(std::size_t, Micros)>& fn) const {
  for (std::size_t i = 0; i < n_blocks_; ++i) {
    fn(i, arrival_us(i));
  }
}

}  // namespace sio
