#include "net/wire.h"

namespace net {

void WireWriter::u16(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void WireWriter::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void WireWriter::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void WireWriter::str(const std::string& s) {
  u32(static_cast<std::uint32_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void WireWriter::bytes(const std::vector<std::uint8_t>& b) {
  u32(static_cast<std::uint32_t>(b.size()));
  buf_.insert(buf_.end(), b.begin(), b.end());
}

void WireReader::need(std::size_t n) const {
  if (n > remaining()) {
    throw WireError("wire: truncated field (need " + std::to_string(n) +
                    " bytes, have " + std::to_string(remaining()) + ")");
  }
}

std::uint8_t WireReader::u8() {
  need(1);
  return data_[pos_++];
}

std::uint16_t WireReader::u16() {
  need(2);
  std::uint16_t v = 0;
  for (int i = 0; i < 2; ++i) {
    v |= static_cast<std::uint16_t>(data_[pos_++]) << (8 * i);
  }
  return v;
}

std::uint32_t WireReader::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(data_[pos_++]) << (8 * i);
  }
  return v;
}

std::uint64_t WireReader::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(data_[pos_++]) << (8 * i);
  }
  return v;
}

std::string WireReader::str() {
  const std::uint32_t n = u32();
  need(n);
  std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
  pos_ += n;
  return s;
}

std::vector<std::uint8_t> WireReader::bytes() {
  const std::uint32_t n = u32();
  need(n);
  std::vector<std::uint8_t> b(data_ + pos_, data_ + pos_ + n);
  pos_ += n;
  return b;
}

void WireReader::expect_end() const {
  if (remaining() != 0) {
    throw WireError("wire: " + std::to_string(remaining()) +
                    " trailing byte(s) after message");
  }
}

}  // namespace net
