// Framing: every message on a distributed-serving connection is one frame —
// a fixed 12-byte header followed by `payload_len` payload bytes.
//
//   offset  size  field
//   0       4     magic   'T' 'V' 'S' 'R' (literal bytes, any endianness)
//   4       2     version (little-endian; kProtocolVersion)
//   6       2     type    (dist::MsgType; opaque to this layer)
//   8       4     payload_len (little-endian; <= kMaxPayload)
//
// decode_header is the hostile-input gate: short buffer, wrong magic,
// unsupported version and oversized declared length each throw FrameError
// before a single payload byte is trusted, so a reader can never be induced
// to allocate or recv an attacker-chosen amount beyond kMaxPayload, nor to
// misparse garbage as a frame. read_frame distinguishes a clean EOF at a
// frame boundary (connection closed — normal) from an EOF mid-frame
// (truncated — an error).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "net/socket.h"
#include "net/wire.h"

namespace net {

/// Malformed frame header or a frame cut off mid-payload.
class FrameError : public NetError {
 public:
  using NetError::NetError;
};

inline constexpr std::array<std::uint8_t, 4> kMagic = {'T', 'V', 'S', 'R'};
inline constexpr std::uint16_t kProtocolVersion = 1;
inline constexpr std::size_t kHeaderSize = 12;
/// Upper bound on one frame's payload. Generous for session results
/// (compressed containers) while keeping a hostile length prefix from
/// provoking a giant allocation.
inline constexpr std::uint32_t kMaxPayload = 64u << 20;

struct FrameHeader {
  std::uint16_t version = 0;
  std::uint16_t type = 0;
  std::uint32_t payload_len = 0;
};

struct Frame {
  std::uint16_t type = 0;
  std::vector<std::uint8_t> payload;
};

/// Serializes a header into `out[0..kHeaderSize)`.
void encode_header(std::uint8_t* out, std::uint16_t type,
                   std::uint32_t payload_len);

/// Validates and decodes a header from `size` available bytes. Throws
/// FrameError on a short buffer, bad magic, version mismatch or a declared
/// payload length above kMaxPayload.
[[nodiscard]] FrameHeader decode_header(const std::uint8_t* data,
                                        std::size_t size);

/// Whole frame as one contiguous buffer (tests; in-memory paths).
[[nodiscard]] std::vector<std::uint8_t> encode_frame(
    std::uint16_t type, const std::vector<std::uint8_t>& payload);

/// Blocking read of one frame. False on clean EOF at a frame boundary;
/// throws FrameError on malformed headers or truncation mid-frame.
[[nodiscard]] bool read_frame(Socket& sock, Frame& out);

/// Blocking write of one frame. False when the peer is gone.
[[nodiscard]] bool write_frame(Socket& sock, std::uint16_t type,
                               const std::vector<std::uint8_t>& payload);

}  // namespace net
