#include "net/socket.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

namespace net {
namespace {

std::string errno_message(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

}  // namespace

Socket& Socket::operator=(Socket&& o) noexcept {
  if (this != &o) {
    close();
    fd_ = o.fd_;
    o.fd_ = -1;
  }
  return *this;
}

bool Socket::send_all(const void* data, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  while (n > 0) {
    const ssize_t k = ::send(fd_, p, n, MSG_NOSIGNAL);
    if (k < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (k == 0) return false;
    p += k;
    n -= static_cast<std::size_t>(k);
  }
  return true;
}

Socket::RecvStatus Socket::recv_exact(void* data, std::size_t n) {
  auto* p = static_cast<std::uint8_t*>(data);
  std::size_t got = 0;
  while (got < n) {
    const ssize_t k = ::recv(fd_, p + got, n - got, 0);
    if (k < 0) {
      if (errno == EINTR) continue;
      return got == 0 ? RecvStatus::Eof : RecvStatus::Truncated;
    }
    if (k == 0) {
      return got == 0 ? RecvStatus::Eof : RecvStatus::Truncated;
    }
    got += static_cast<std::size_t>(k);
  }
  return RecvStatus::Ok;
}

void Socket::shutdown_both() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Listener::Listener(std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) throw SocketError(errno_message("net: socket"));
  const int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string msg = errno_message("net: bind");
    ::close(fd_);
    fd_ = -1;
    throw SocketError(msg);
  }
  if (::listen(fd_, 16) != 0) {
    const std::string msg = errno_message("net: listen");
    ::close(fd_);
    fd_ = -1;
    throw SocketError(msg);
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    const std::string msg = errno_message("net: getsockname");
    ::close(fd_);
    fd_ = -1;
    throw SocketError(msg);
  }
  port_ = ntohs(addr.sin_port);
}

Socket Listener::accept() {
  for (;;) {
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return Socket(fd);
    }
    if (errno == EINTR) continue;
    return Socket();  // listener closed (or unrecoverable): shutdown path
  }
}

void Listener::close() {
  if (fd_ >= 0) {
    ::shutdown(fd_, SHUT_RDWR);
    ::close(fd_);
    fd_ = -1;
  }
}

Socket connect_tcp(const std::string& host, std::uint16_t port,
                   std::uint64_t timeout_ms) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw SocketError("net: bad IPv4 address '" + host + "'");
  }
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  std::string last_error;
  for (;;) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) throw SocketError(errno_message("net: socket"));
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return Socket(fd);
    }
    last_error = errno_message("net: connect");
    ::close(fd);
    if (std::chrono::steady_clock::now() >= deadline) {
      throw SocketError(last_error + " (" + host + ":" +
                        std::to_string(port) + ")");
    }
    // The typical caller races an agent that is still binding; back off
    // briefly rather than burning the deadline in a tight refuse loop.
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

}  // namespace net
