#include "net/channel.h"

namespace net {

bool Channel::send(std::uint16_t type, const std::vector<std::uint8_t>& payload) {
  std::scoped_lock lk(write_mu_);
  if (closed_) return false;
  return write_frame(sock_, type, payload);
}

void Channel::close() {
  std::scoped_lock lk(write_mu_);
  closed_ = true;
  sock_.shutdown_both();
}

}  // namespace net
