// Thin RAII wrappers over blocking TCP sockets (loopback-first, but any
// IPv4 host works). The distributed layer deliberately uses plain blocking
// I/O with one reader and one writer per connection — at the coarse grain
// of whole sessions there is nothing for an event loop to win, and blocking
// reads make the framing code trivially sequential.
//
// Error model: constructors and connect/accept throw SocketError; the
// send/recv primitives return status instead (a peer vanishing mid-stream
// is an expected event for the router, not an exception-worthy one).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "net/wire.h"

namespace net {

/// Socket-level I/O failure (connect refused, bind in use, ...).
class SocketError : public NetError {
 public:
  using NetError::NetError;
};

/// Move-only owner of a connected socket fd.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }
  Socket(Socket&& o) noexcept : fd_(o.fd_) { o.fd_ = -1; }
  Socket& operator=(Socket&& o) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  [[nodiscard]] bool valid() const { return fd_ >= 0; }

  /// Writes all of `n` bytes (looping over partial sends, SIGPIPE
  /// suppressed). False when the peer is gone or the socket errored.
  bool send_all(const void* data, std::size_t n);

  /// Reads exactly `n` bytes. Returns:
  ///   RecvStatus::Ok        — buffer filled;
  ///   RecvStatus::Eof       — clean EOF before the *first* byte;
  ///   RecvStatus::Truncated — EOF or error mid-buffer (the hostile /
  ///                           crashed-peer case callers must distinguish).
  enum class RecvStatus { Ok, Eof, Truncated };
  RecvStatus recv_exact(void* data, std::size_t n);

  /// Half-close both directions: any blocked recv/accept on this socket
  /// wakes with EOF. Safe to call from another thread; idempotent.
  void shutdown_both();
  void close();

  [[nodiscard]] int fd() const { return fd_; }

 private:
  int fd_ = -1;
};

/// Listening socket bound to 127.0.0.1. Port 0 picks a free port; port()
/// reports the bound one.
class Listener {
 public:
  explicit Listener(std::uint16_t port);
  ~Listener() { close(); }
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  /// Blocks until a peer connects. Invalid Socket when the listener was
  /// closed from another thread (the shutdown path, not an error).
  [[nodiscard]] Socket accept();

  [[nodiscard]] std::uint16_t port() const { return port_; }
  /// Wakes any blocked accept(); idempotent.
  void close();

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

/// Connects to host:port, retrying for up to `timeout_ms` (the agent a
/// router dials may still be binding its listener). Throws SocketError when
/// the deadline passes without a connection.
[[nodiscard]] Socket connect_tcp(const std::string& host, std::uint16_t port,
                                 std::uint64_t timeout_ms = 2000);

}  // namespace net
