#include "net/frame.h"

#include <cstring>
#include <string>

namespace net {

void encode_header(std::uint8_t* out, std::uint16_t type,
                   std::uint32_t payload_len) {
  std::memcpy(out, kMagic.data(), kMagic.size());
  out[4] = static_cast<std::uint8_t>(kProtocolVersion);
  out[5] = static_cast<std::uint8_t>(kProtocolVersion >> 8);
  out[6] = static_cast<std::uint8_t>(type);
  out[7] = static_cast<std::uint8_t>(type >> 8);
  for (int i = 0; i < 4; ++i) {
    out[8 + i] = static_cast<std::uint8_t>(payload_len >> (8 * i));
  }
}

FrameHeader decode_header(const std::uint8_t* data, std::size_t size) {
  if (size < kHeaderSize) {
    throw FrameError("frame: truncated header (" + std::to_string(size) +
                     " of " + std::to_string(kHeaderSize) + " bytes)");
  }
  if (std::memcmp(data, kMagic.data(), kMagic.size()) != 0) {
    throw FrameError("frame: bad magic");
  }
  FrameHeader h;
  h.version = static_cast<std::uint16_t>(data[4]) |
              static_cast<std::uint16_t>(data[5]) << 8;
  if (h.version != kProtocolVersion) {
    throw FrameError("frame: protocol version " + std::to_string(h.version) +
                     " (this build speaks " +
                     std::to_string(kProtocolVersion) + ")");
  }
  h.type = static_cast<std::uint16_t>(data[6]) |
           static_cast<std::uint16_t>(data[7]) << 8;
  h.payload_len = 0;
  for (int i = 0; i < 4; ++i) {
    h.payload_len |= static_cast<std::uint32_t>(data[8 + i]) << (8 * i);
  }
  if (h.payload_len > kMaxPayload) {
    throw FrameError("frame: declared payload " +
                     std::to_string(h.payload_len) + " bytes exceeds cap " +
                     std::to_string(kMaxPayload));
  }
  return h;
}

std::vector<std::uint8_t> encode_frame(std::uint16_t type,
                                       const std::vector<std::uint8_t>& payload) {
  std::vector<std::uint8_t> out(kHeaderSize + payload.size());
  encode_header(out.data(), type, static_cast<std::uint32_t>(payload.size()));
  std::memcpy(out.data() + kHeaderSize, payload.data(), payload.size());
  return out;
}

bool read_frame(Socket& sock, Frame& out) {
  std::uint8_t hdr[kHeaderSize];
  switch (sock.recv_exact(hdr, kHeaderSize)) {
    case Socket::RecvStatus::Eof:
      return false;
    case Socket::RecvStatus::Truncated:
      throw FrameError("frame: connection cut mid-header");
    case Socket::RecvStatus::Ok:
      break;
  }
  const FrameHeader h = decode_header(hdr, kHeaderSize);
  out.type = h.type;
  out.payload.resize(h.payload_len);
  if (h.payload_len > 0 &&
      sock.recv_exact(out.payload.data(), h.payload_len) !=
          Socket::RecvStatus::Ok) {
    throw FrameError("frame: connection cut mid-payload (declared " +
                     std::to_string(h.payload_len) + " bytes)");
  }
  return true;
}

bool write_frame(Socket& sock, std::uint16_t type,
                 const std::vector<std::uint8_t>& payload) {
  if (payload.size() > kMaxPayload) {
    throw FrameError("frame: refusing to send payload of " +
                     std::to_string(payload.size()) + " bytes (cap " +
                     std::to_string(kMaxPayload) + ")");
  }
  std::uint8_t hdr[kHeaderSize];
  encode_header(hdr, type, static_cast<std::uint32_t>(payload.size()));
  if (!sock.send_all(hdr, kHeaderSize)) return false;
  if (!payload.empty() && !sock.send_all(payload.data(), payload.size())) {
    return false;
  }
  return true;
}

}  // namespace net
