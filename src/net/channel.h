// Channel: one framed connection with the threading contract the
// distributed layer needs — exactly one reader thread calling recv() in a
// loop, any number of writer threads calling send() (serialized by an
// internal mutex; a frame is always written contiguously).
//
// close() shuts the socket down in both directions, which wakes the blocked
// reader with EOF — the only portable way to interrupt a blocking recv from
// another thread. After close(), send() returns false and recv() returns
// false (clean-EOF semantics), so teardown needs no extra signalling.
#pragma once

#include <mutex>
#include <vector>

#include "net/frame.h"
#include "net/socket.h"

namespace net {

class Channel {
 public:
  explicit Channel(Socket sock) : sock_(std::move(sock)) {}

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  /// Writes one frame. False when the peer is gone or the channel closed.
  bool send(std::uint16_t type, const std::vector<std::uint8_t>& payload);

  /// Blocking read of the next frame (single-reader). False on clean EOF;
  /// throws FrameError on malformed or truncated input.
  bool recv(Frame& out) { return read_frame(sock_, out); }

  /// Wakes the reader with EOF and poisons send(). Idempotent, any thread.
  void close();

 private:
  Socket sock_;
  std::mutex write_mu_;
  bool closed_ = false;  ///< guarded by write_mu_
};

}  // namespace net
