// Wire codec: explicit little-endian primitives with bounds-checked reads.
//
// Everything the distributed layer puts on a socket goes through these two
// types. WireWriter appends fixed-width integers, length-prefixed strings
// and byte blobs to a growable buffer; WireReader walks a received payload
// and refuses — by throwing WireError — to read past its end, to accept a
// length prefix larger than the bytes actually present, or to finish with
// trailing garbage (expect_end). Decoders built on it are total functions
// over arbitrary byte strings: hostile input produces a clean error, never
// an over-read (the same contract the trace/flight binary importers keep).
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace net {

/// Any transport-layer failure. Subclasses distinguish malformed bytes
/// (WireError, FrameError) from socket-level I/O trouble (SocketError).
class NetError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Malformed payload bytes: truncated field, oversized length prefix,
/// out-of-range enum, trailing garbage.
class WireError : public NetError {
 public:
  using NetError::NetError;
};

class WireWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  /// u32 length prefix + raw bytes.
  void str(const std::string& s);
  void bytes(const std::vector<std::uint8_t>& b);

  [[nodiscard]] const std::vector<std::uint8_t>& data() const { return buf_; }
  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

class WireReader {
 public:
  WireReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}
  explicit WireReader(const std::vector<std::uint8_t>& buf)
      : WireReader(buf.data(), buf.size()) {}

  [[nodiscard]] std::uint8_t u8();
  [[nodiscard]] std::uint16_t u16();
  [[nodiscard]] std::uint32_t u32();
  [[nodiscard]] std::uint64_t u64();
  /// u32 length prefix + raw bytes; the prefix must fit in what remains.
  [[nodiscard]] std::string str();
  [[nodiscard]] std::vector<std::uint8_t> bytes();

  [[nodiscard]] std::size_t remaining() const { return size_ - pos_; }
  /// Throws WireError unless every byte was consumed — a decoded message
  /// with trailing bytes is treated as hostile, not ignored.
  void expect_end() const;

 private:
  /// Bounds gate for every read: throws WireError instead of over-reading.
  void need(std::size_t n) const;

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace net
