// PredictorBank<V>: races several predictors on one estimate stream and
// routes speculation to the current best.
//
// On every observe(), each registered predictor is first *scored*: its
// one-step-ahead prediction (made from everything before this estimate) is
// compared against the actual value under the pipeline's error metric, and
// a hit is recorded when the error clears the tolerance — the same
// predicate the speculation check applies, so hit rate estimates "would
// this predictor's guess have survived a check". Only then does the
// estimate feed the predictors. predict()/confidence() consult the
// predictor with the best (Laplace-smoothed) hit rate; rollbacks are
// charged to the predictor that supplied the failed guess.
//
// Thread safety: all entry points take the bank lock. The bank never calls
// out while holding it except into the score hook, which must record and
// return (same contract as sre::Observer).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "predict/predictor.h"
#include "stats/predictor_stats.h"

namespace predict {

template <typename V>
class PredictorBank {
 public:
  /// Pipeline-semantic error metric (e.g. relative compressed-size delta,
  /// assignment disagreement). Defaults to relative_error() over the
  /// flattened values.
  using ErrorFn = std::function<double(const V& predicted, const V& actual)>;

  /// Passive notification per scored prediction (forwarded to the runtime
  /// observer by pipelines).
  using ScoreHook =
      std::function<void(const std::string& name, bool hit, double rel_error)>;

  explicit PredictorBank(double tolerance, ErrorFn error = {})
      : tolerance_(tolerance),
        error_(error ? std::move(error)
                     : [](const V& p, const V& a) {
                         return relative_error(p, a);
                       }) {}

  void add(std::unique_ptr<Predictor<V>> predictor) {
    std::scoped_lock lk(mu_);
    board_.row(predictor->name());  // fix row order = registration order
    entries_.push_back(std::move(predictor));
  }

  void set_score_hook(ScoreHook hook) {
    std::scoped_lock lk(mu_);
    score_hook_ = std::move(hook);
  }

  /// Scores every predictor's standing one-step-ahead prediction against
  /// the actual estimate, then feeds the estimate to all predictors.
  void observe(std::uint32_t index, const V& value) {
    std::scoped_lock lk(mu_);
    if (entries_.empty()) {
      throw std::logic_error("PredictorBank: no predictors registered");
    }
    for (auto& p : entries_) {
      if (p->observations() == 0) continue;
      const Prediction<V> pred = p->predict(index);
      const double err = error_(pred.guess, value);
      const bool hit = err <= tolerance_;
      board_.record_score(p->name(), hit, err);
      if (score_hook_) score_hook_(p->name(), hit, err);
    }
    for (auto& p : entries_) p->observe(index, value);
  }

  /// The best predictor's extrapolation to `target`, with the bank's
  /// blended confidence. Records the supplier so a later rollback can be
  /// charged to the right predictor.
  [[nodiscard]] Prediction<V> predict(std::uint32_t target) {
    std::scoped_lock lk(mu_);
    Predictor<V>& best = best_locked();
    Prediction<V> p = best.predict(target);
    p.confidence = blended_confidence_locked(best, p.confidence);
    last_supplier_ = best.name();
    board_.note_supplied(last_supplier_);
    return p;
  }

  /// Blended confidence the gate compares against, without adopting a guess.
  [[nodiscard]] double confidence(std::uint32_t target) const {
    std::scoped_lock lk(mu_);
    const Predictor<V>& best = best_locked();
    return blended_confidence_locked(best, best.predict(target).confidence);
  }

  [[nodiscard]] std::string best_name() const {
    std::scoped_lock lk(mu_);
    return best_locked().name();
  }

  /// Charges the rollback to the predictor whose guess the failed epoch
  /// adopted (the current best if none was ever supplied). Returns the
  /// charged name for observer forwarding.
  std::string charge_rollback() {
    std::scoped_lock lk(mu_);
    const std::string name =
        last_supplier_.empty() ? best_locked().name() : last_supplier_;
    board_.charge_rollback(name);
    return name;
  }

  [[nodiscard]] stats::PredictorScoreboard scoreboard() const {
    std::scoped_lock lk(mu_);
    return board_;
  }

  void reset() {
    std::scoped_lock lk(mu_);
    for (auto& p : entries_) p->reset();
    board_ = stats::PredictorScoreboard{};
    for (auto& p : entries_) board_.row(p->name());
    last_supplier_.clear();
  }

 private:
  [[nodiscard]] Predictor<V>& best_locked() const {
    if (entries_.empty()) {
      throw std::logic_error("PredictorBank: no predictors registered");
    }
    const std::string name = board_.best();
    for (const auto& p : entries_) {
      if (p->name() == name) return *p;
    }
    return *entries_.front();
  }

  /// Model confidence alone until the record is long enough to trust, then
  /// an even blend with the observed hit rate — a predictor that *claims*
  /// certainty but keeps missing checks is distrusted.
  [[nodiscard]] double blended_confidence_locked(const Predictor<V>& p,
                                                 double model) const {
    const auto* row = board_.find(p.name());
    if (row == nullptr || row->scored < 3) return model;
    return 0.5 * model + 0.5 * row->hit_rate();
  }

  mutable std::mutex mu_;
  double tolerance_;
  ErrorFn error_;
  ScoreHook score_hook_;
  std::vector<std::unique_ptr<Predictor<V>>> entries_;
  stats::PredictorScoreboard board_;
  std::string last_supplier_;
};

}  // namespace predict
