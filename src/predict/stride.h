// Stride<V>: per-component linear extrapolation of the estimate stream.
//
// Models the value as moving with a constant per-index delta: from the last
// two observations (v_prev at k_prev, v_last at k_last) it projects
//   v(target) = v_last + (target - k_last) · (v_last - v_prev)/(k_last - k_prev).
// For monotonically converging iterates (Lloyd centroids, filter
// coefficients) this lands closer to the asymptote than repeating the last
// value; for stationary streams the learned stride is ~0 and it degrades to
// LastValue. Confidence comes from stride consistency: if the last two
// deltas agree, linear extrapolation is trustworthy.
#pragma once

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "predict/predictor.h"

namespace predict {

template <typename V>
class Stride final : public Predictor<V> {
 public:
  Stride() : name_("stride") {}

  [[nodiscard]] const std::string& name() const override { return name_; }

  void observe(std::uint32_t index, const V& value) override {
    std::vector<double> flat;
    ValueTraits<V>::flatten(value, flat);
    if (observed_ >= 1 && index > last_index_) {
      prev_delta_ = delta_;
      delta_.assign(flat.size(), 0.0);
      const double span = static_cast<double>(index - last_index_);
      for (std::size_t i = 0; i < flat.size(); ++i) {
        const double prev = i < last_flat_.size() ? last_flat_[i] : 0.0;
        delta_[i] = (flat[i] - prev) / span;
      }
      have_delta_ = true;
      have_prev_delta_ = observed_ >= 2;
    }
    last_flat_ = std::move(flat);
    last_ = value;
    last_index_ = index;
    ++observed_;
  }

  [[nodiscard]] Prediction<V> predict(std::uint32_t index) const override {
    Prediction<V> p;
    if (observed_ == 0) return p;
    if (!have_delta_ || index <= last_index_) {
      p.guess = last_;
      return p;
    }
    const double span = static_cast<double>(index - last_index_);
    std::vector<double> flat(last_flat_.size());
    for (std::size_t i = 0; i < flat.size(); ++i) {
      flat[i] = last_flat_[i] + span * delta_[i];
    }
    p.guess = ValueTraits<V>::unflatten(last_, flat);
    if (have_prev_delta_) {
      // ||d_k - d_{k-1}|| relative to the value scale: consistent strides
      // justify long extrapolation, erratic ones do not.
      double diff2 = 0.0;
      double norm2 = 0.0;
      for (std::size_t i = 0; i < delta_.size(); ++i) {
        const double pd = i < prev_delta_.size() ? prev_delta_[i] : 0.0;
        diff2 += (delta_[i] - pd) * (delta_[i] - pd);
        norm2 += last_flat_[i] * last_flat_[i];
      }
      constexpr double kEps = 1e-12;
      const double rel =
          std::sqrt(diff2) * span / std::max(std::sqrt(norm2), kEps);
      p.confidence = stability_confidence(rel);
    }
    return p;
  }

  void reset() override {
    observed_ = 0;
    last_index_ = 0;
    have_delta_ = false;
    have_prev_delta_ = false;
    last_flat_.clear();
    delta_.clear();
    prev_delta_.clear();
    last_ = V{};
  }

  [[nodiscard]] std::uint32_t observations() const override {
    return observed_;
  }

 private:
  std::string name_;
  V last_{};
  std::vector<double> last_flat_;
  std::vector<double> delta_;       ///< per-index delta from the last pair
  std::vector<double> prev_delta_;  ///< the pair before, for consistency
  std::uint32_t last_index_ = 0;
  std::uint32_t observed_ = 0;
  bool have_delta_ = false;
  bool have_prev_delta_ = false;
};

}  // namespace predict
