#include "predict/histogram_morph.h"

#include <algorithm>
#include <cmath>

namespace predict {

void ValueTraits<huff::Histogram>::flatten(const huff::Histogram& h,
                                           std::vector<double>& out) {
  out.resize(huff::kSymbols);
  for (std::size_t s = 0; s < huff::kSymbols; ++s) {
    out[s] = static_cast<double>(h.at(s));
  }
}

huff::Histogram ValueTraits<huff::Histogram>::unflatten(
    const huff::Histogram& /*like*/, std::span<const double> flat) {
  huff::Histogram h;
  const std::size_t n = std::min<std::size_t>(huff::kSymbols, flat.size());
  for (std::size_t s = 0; s < n; ++s) {
    // Extrapolated counts can undershoot zero; a frequency cannot.
    h.at(s) = static_cast<std::uint64_t>(std::llround(std::max(0.0, flat[s])));
  }
  return h;
}

void HistogramMorph::observe(std::uint32_t index,
                             const huff::Histogram& value) {
  const double total = static_cast<double>(value.total());
  std::vector<double> shape(huff::kSymbols, 0.0);
  if (total > 0.0) {
    for (std::size_t s = 0; s < huff::kSymbols; ++s) {
      shape[s] = static_cast<double>(value.at(s)) / total;
    }
  }
  if (observed_ >= 1 && !last_shape_.empty()) {
    // Total-variation distance: ½·Σ|p_s − q_s| in [0,1].
    double tv = 0.0;
    for (std::size_t s = 0; s < huff::kSymbols; ++s) {
      tv += std::abs(shape[s] - last_shape_[s]);
    }
    shape_drift_ = 0.5 * tv;
  }
  last_shape_ = std::move(shape);
  last_ = value;
  last_index_ = index;
  ++observed_;
}

Prediction<huff::Histogram> HistogramMorph::predict(
    std::uint32_t index) const {
  Prediction<huff::Histogram> p;
  if (observed_ == 0) return p;
  if (index <= last_index_ || last_index_ == 0) {
    p.guess = last_;
  } else {
    // Scale the prefix toward its asymptote. Reduce indices are (close to)
    // proportional to bytes counted, so index ratio ≈ data ratio.
    const double scale = static_cast<double>(index) /
                         static_cast<double>(last_index_);
    huff::Histogram h;
    for (std::size_t s = 0; s < huff::kSymbols; ++s) {
      h.at(s) = static_cast<std::uint64_t>(
          std::llround(static_cast<double>(last_.at(s)) * scale));
    }
    p.guess = h;
  }
  if (observed_ >= 2) {
    // Drift is a fraction of probability mass; magnify it so that a few
    // percent of moving mass (enough to reshape a Huffman tree) already
    // reads as low confidence.
    p.confidence = stability_confidence(8.0 * shape_drift_);
  }
  return p;
}

void HistogramMorph::reset() {
  observed_ = 0;
  last_index_ = 0;
  shape_drift_ = 1.0;
  last_shape_.clear();
  last_ = huff::Histogram();
}

}  // namespace predict
