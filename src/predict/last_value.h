// LastValue<V>: predicts that the newest estimate already is the final
// value. This is exactly the paper's hand-rolled speculation basis (adopt
// the newest prefix result as the guess), packaged as a Predictor so it
// serves as the baseline every other predictor must beat.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "predict/predictor.h"

namespace predict {

template <typename V>
class LastValue final : public Predictor<V> {
 public:
  LastValue() : name_("last-value") {}

  [[nodiscard]] const std::string& name() const override { return name_; }

  void observe(std::uint32_t index, const V& value) override {
    prev_flat_ = last_flat_;
    ValueTraits<V>::flatten(value, last_flat_);
    last_ = value;
    last_index_ = index;
    ++observed_;
  }

  [[nodiscard]] Prediction<V> predict(std::uint32_t /*index*/) const override {
    Prediction<V> p;
    if (observed_ == 0) return p;
    p.guess = last_;
    // Confidence = how much the value still moved between the last two
    // estimates: a converged stream barely moves, so repeating it is safe.
    if (observed_ >= 2) {
      const V prev = ValueTraits<V>::unflatten(last_, prev_flat_);
      p.confidence = stability_confidence(relative_error(prev, last_));
    }
    return p;
  }

  void reset() override {
    observed_ = 0;
    last_index_ = 0;
    last_flat_.clear();
    prev_flat_.clear();
    last_ = V{};
  }

  [[nodiscard]] std::uint32_t observations() const override {
    return observed_;
  }

 private:
  std::string name_;
  V last_{};
  std::vector<double> last_flat_;
  std::vector<double> prev_flat_;
  std::uint32_t last_index_ = 0;
  std::uint32_t observed_ = 0;
};

}  // namespace predict
