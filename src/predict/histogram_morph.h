// HistogramMorph: domain predictor for prefix byte-frequency histograms.
//
// A prefix histogram after k of n reduces has counted roughly k/n of the
// stream. If the byte distribution is stationary (the paper's TXT/BMP
// corpora largely are), the full-stream histogram is the prefix scaled by
// n/k — the asymptote the prefix is converging to. Morphing the prefix
// toward that asymptote gives the Huffman pipeline a tree for the *final*
// distribution instead of a tree for the prefix, which is what the final
// check will actually judge the guess against.
//
// Confidence is one minus the total-variation distance between the last two
// *normalized* prefix histograms: a drifting distribution (PDF's mixed
// text/binary sections) scores low, a stationary one scores high.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "huffman/histogram.h"
#include "predict/predictor.h"

namespace predict {

/// Flat view of a histogram so the generic predictors (LastValue, Stride,
/// Ewma) can race HistogramMorph on the same stream.
template <>
struct ValueTraits<huff::Histogram> {
  static void flatten(const huff::Histogram& h, std::vector<double>& out);
  [[nodiscard]] static huff::Histogram unflatten(const huff::Histogram& like,
                                                 std::span<const double> flat);
};

class HistogramMorph final : public Predictor<huff::Histogram> {
 public:
  HistogramMorph() : name_("hist-morph") {}

  [[nodiscard]] const std::string& name() const override { return name_; }
  void observe(std::uint32_t index, const huff::Histogram& value) override;
  [[nodiscard]] Prediction<huff::Histogram> predict(
      std::uint32_t index) const override;
  void reset() override;
  [[nodiscard]] std::uint32_t observations() const override {
    return observed_;
  }

 private:
  std::string name_;
  huff::Histogram last_;
  std::vector<double> last_shape_;  ///< normalized previous histogram
  double shape_drift_ = 1.0;        ///< TV distance of the last two shapes
  std::uint32_t last_index_ = 0;
  std::uint32_t observed_ = 0;
};

}  // namespace predict
