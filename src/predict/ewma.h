// Ewma<V>: exponentially weighted moving average of the estimate stream.
//
// Predicts the smoothed value s_k = α·v_k + (1-α)·s_{k-1}. On noisy
// estimate streams (jittery prefix statistics) the smoothed value tracks
// the underlying trend and shrugs off outliers that would make LastValue
// guess badly; on clean converging streams it lags slightly behind.
// Confidence is the agreement between the newest estimate and the smoothed
// value — when they coincide, the stream has settled.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "predict/predictor.h"

namespace predict {

template <typename V>
class Ewma final : public Predictor<V> {
 public:
  explicit Ewma(double alpha = 0.5) : name_("ewma"), alpha_(alpha) {}

  [[nodiscard]] const std::string& name() const override { return name_; }

  void observe(std::uint32_t index, const V& value) override {
    std::vector<double> flat;
    ValueTraits<V>::flatten(value, flat);
    if (observed_ == 0) {
      smoothed_ = flat;
    } else {
      smoothed_.resize(flat.size(), 0.0);
      for (std::size_t i = 0; i < flat.size(); ++i) {
        smoothed_[i] = alpha_ * flat[i] + (1.0 - alpha_) * smoothed_[i];
      }
    }
    last_flat_ = std::move(flat);
    last_ = value;
    last_index_ = index;
    ++observed_;
  }

  [[nodiscard]] Prediction<V> predict(std::uint32_t /*index*/) const override {
    Prediction<V> p;
    if (observed_ == 0) return p;
    p.guess = ValueTraits<V>::unflatten(last_, smoothed_);
    if (observed_ >= 2) {
      p.confidence =
          stability_confidence(relative_error(p.guess, last_));
    }
    return p;
  }

  void reset() override {
    observed_ = 0;
    last_index_ = 0;
    smoothed_.clear();
    last_flat_.clear();
    last_ = V{};
  }

  [[nodiscard]] std::uint32_t observations() const override {
    return observed_;
  }

 private:
  std::string name_;
  double alpha_;
  V last_{};
  std::vector<double> smoothed_;
  std::vector<double> last_flat_;
  std::uint32_t last_index_ = 0;
  std::uint32_t observed_ = 0;
};

}  // namespace predict
