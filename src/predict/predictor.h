// Predictor<V>: the pluggable value-prediction interface.
//
// The paper's "how to speculate" ingredient (§II-A) is a stream of refining
// estimates the programmer hand-writes. This subsystem generalizes it: a
// predictor consumes that stream (observe), extrapolates the value expected
// at a later estimate index (predict) and reports how sure it is
// (Prediction::confidence in [0,1]). Pipelines race several predictors in a
// PredictorBank (bank.h) and the tvs::Speculator consults the winner's
// confidence before opening an epoch (the confidence gate).
//
// Generic predictors (LastValue, Stride, Ewma) work on any value type with a
// ValueTraits specialization mapping it to/from a flat double vector;
// domain predictors (HistogramMorph) specialize on the concrete type.
#pragma once

#include <cmath>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace predict {

/// A predicted value plus the predictor's own belief it will survive the
/// tolerance check, in [0,1]. Fresh predictors report 0 (no evidence).
template <typename V>
struct Prediction {
  V guess{};
  double confidence = 0.0;
};

/// Maps a value type to/from a flat double vector so generic predictors can
/// do per-component arithmetic. Specialize for each speculated type; the
/// `like` argument of unflatten carries shape (dims, symbol count, ...).
template <typename V>
struct ValueTraits;

template <>
struct ValueTraits<double> {
  static void flatten(const double& v, std::vector<double>& out) {
    out.assign(1, v);
  }
  [[nodiscard]] static double unflatten(const double& /*like*/,
                                        std::span<const double> flat) {
    return flat.empty() ? 0.0 : flat[0];
  }
};

template <>
struct ValueTraits<std::vector<double>> {
  static void flatten(const std::vector<double>& v, std::vector<double>& out) {
    out = v;
  }
  [[nodiscard]] static std::vector<double> unflatten(
      const std::vector<double>& /*like*/, std::span<const double> flat) {
    return {flat.begin(), flat.end()};
  }
};

/// Relative L2 distance ||a-b|| / max(||b||, eps) over the flattened
/// representations — the default scoring metric when a pipeline does not
/// supply a semantic one.
template <typename V>
[[nodiscard]] double relative_error(const V& predicted, const V& actual) {
  std::vector<double> a;
  std::vector<double> b;
  ValueTraits<V>::flatten(predicted, a);
  ValueTraits<V>::flatten(actual, b);
  const std::size_t n = std::max(a.size(), b.size());
  double diff2 = 0.0;
  double norm2 = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double av = i < a.size() ? a[i] : 0.0;
    const double bv = i < b.size() ? b[i] : 0.0;
    diff2 += (av - bv) * (av - bv);
    norm2 += bv * bv;
  }
  constexpr double kEps = 1e-12;
  return std::sqrt(diff2) / std::max(std::sqrt(norm2), kEps);
}

/// The predictor interface: observe refining estimates of a value, predict
/// the value at a later (or the final) estimate index, reset between runs.
/// Indices are 1-based and strictly increasing within a run, matching
/// tvs::Speculator::on_estimate.
template <typename V>
class Predictor {
 public:
  virtual ~Predictor() = default;

  [[nodiscard]] virtual const std::string& name() const = 0;

  /// Feeds the actual estimate at `index`.
  virtual void observe(std::uint32_t index, const V& value) = 0;

  /// Extrapolates the value expected at estimate `index` (>= the last
  /// observed index). Implementations must tolerate being called with the
  /// last observed index itself (extrapolation distance zero).
  [[nodiscard]] virtual Prediction<V> predict(std::uint32_t index) const = 0;

  /// Forgets all observations (fresh run).
  virtual void reset() = 0;

  /// Number of estimates observed since the last reset.
  [[nodiscard]] virtual std::uint32_t observations() const = 0;
};

/// Clamps a stability ratio into a [0,1] confidence: 0 change → 1.
[[nodiscard]] inline double stability_confidence(double relative_change) {
  if (!(relative_change >= 0.0)) return 0.0;  // NaN-safe
  return 1.0 - std::min(1.0, relative_change);
}

}  // namespace predict
