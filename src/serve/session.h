// Session: one client stream moving through the serving layer.
//
// A session is a single pipeline run (today: Huffman compression of one
// input) with serving metadata wrapped around it — identity, priority, the
// lifecycle state machine, and the timestamps the latency histograms are
// built from. Sessions share one sre::Runtime + ThreadedExecutor worker
// fleet but own their Speculator, WaitBuffer and epoch space, so rollbacks
// in one stream never touch another (see docs/serving.md).
//
//   Queued ──► Admitted ──► Running ──► Draining ──► Done
//     │             │                                  │
//     │             └──────────────────────────────────┴──► Failed
//     └────────────────────────────────────────────► Shed
//
//   Queued    accepted by the admission controller, waiting for a slot
//   Admitted  popped by the manager; pipeline built on the shared runtime
//   Running   block arrivals scheduled on the live executor
//   Draining  every block has been injected; awaiting the final commits
//   Done      all blocks committed; RunResult collected
//   Shed      rejected (queue full / deadline expired / shutdown); no
//             pipeline was ever built — shedding happens strictly before
//             admission, so a shed session consumed no worker time
//   Failed    the session's own work threw (unreadable input at admission,
//             result collection failure); the error is recorded, the slot
//             freed, and the service keeps serving other sessions
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "pipeline/driver.h"
#include "pipeline/run_config.h"

namespace serve {

/// Admission priority classes, highest first. The admission controller
/// keeps one bounded queue per class and always serves the highest
/// non-empty one.
enum class Priority : std::uint8_t { Interactive = 0, Batch = 1, Bulk = 2 };
inline constexpr std::size_t kPriorities = 3;

enum class SessionState : std::uint8_t {
  Queued,
  Admitted,
  Running,
  Draining,
  Done,
  Shed,
  Failed,
};

[[nodiscard]] std::string to_string(Priority p);
[[nodiscard]] std::string to_string(SessionState s);

using SessionId = std::uint64_t;

/// What a client submits: a pipeline configuration plus serving metadata.
struct SessionConfig {
  std::string name;          ///< metrics label; defaults to "s<id>" if empty
  pipeline::RunConfig run;   ///< the workload (input, policy, speculation)
  Priority priority = Priority::Batch;
  /// Longest this session may wait in the admission queue before it is shed
  /// (µs of engine time). 0 = use the shed policy's per-priority default.
  std::uint64_t queue_deadline_us = 0;
};

/// Snapshot of a session's serving-side outcome. All timestamps are engine
/// time (executor microseconds); 0 = the edge was never reached.
struct SessionStats {
  SessionId id = 0;
  std::string name;
  Priority priority = Priority::Batch;
  SessionState state = SessionState::Queued;
  std::string shed_reason;  ///< non-empty iff state == Shed
  std::string error;        ///< non-empty iff state == Failed
  std::uint64_t submitted_us = 0;
  std::uint64_t admitted_us = 0;
  std::uint64_t drained_us = 0;  ///< last block injected
  std::uint64_t done_us = 0;

  /// Where the session's latency went. Filled at finalization (Done or
  /// Failed) from the runtime's per-stream usage accounting; zeros for shed
  /// sessions (they never reached a worker). compute/rollback_waste sum
  /// task time across workers, so they can exceed the wall-clock latency.
  struct Attribution {
    std::uint64_t queue_us = 0;          ///< submit → admit
    std::uint64_t dispatch_us = 0;       ///< admit → first task dispatched
    std::uint64_t compute_us = 0;        ///< task time of retired tasks
    std::uint64_t commit_stall_us = 0;   ///< drained → done
    std::uint64_t rollback_waste_us = 0; ///< task time of aborted tasks
  };
  Attribution attribution;

  /// Control-plane activity against this session (docs/control-plane.md).
  /// All zeros when the controller is disabled or never acted.
  struct Control {
    std::uint32_t spec_retunes = 0;      ///< knob movements applied
    double confidence_gate = 0.0;        ///< gate after the last retune
    std::uint32_t restart_min_defer = 0; ///< defer floor after the last retune
    std::uint32_t step_size = 0;         ///< step after the last retune
  };
  Control control;

  /// Queue wait: submit → admit (0 when shed before admission).
  [[nodiscard]] std::uint64_t queue_wait_us() const {
    return admitted_us > submitted_us ? admitted_us - submitted_us : 0;
  }
  /// Total session latency: submit → done.
  [[nodiscard]] std::uint64_t latency_us() const {
    return done_us > submitted_us ? done_us - submitted_us : 0;
  }
};

/// Internal per-session record owned by the SessionManager; exposed because
/// the AdmissionController queues these. All mutable fields are guarded by
/// the manager's lock — the controller and manager never touch a Session
/// concurrently without it.
struct Session {
  Session(SessionId sid, SessionConfig config, std::uint64_t now_us);

  SessionId id;
  SessionConfig cfg;
  SessionStats stats;
  /// Engaged from Admitted until the result is collected at Done. The
  /// pipeline's task closures pin their own state, so destroying this after
  /// collection is safe even with stray aborted tasks still draining.
  pipeline::SharedRun run;
  /// Engaged at Done.
  std::unique_ptr<pipeline::RunResult> result;
};

using SessionPtr = std::shared_ptr<Session>;

}  // namespace serve
