#include "serve/session.h"

#include <cstdio>

namespace serve {

Session::Session(SessionId sid, SessionConfig config, std::uint64_t now_us)
    : id(sid), cfg(std::move(config)) {
  stats.id = sid;
  if (cfg.name.empty()) {
    char buf[24];
    std::snprintf(buf, sizeof buf, "s%llu",
                  static_cast<unsigned long long>(sid));
    stats.name = buf;
  } else {
    stats.name = cfg.name;
  }
  stats.priority = cfg.priority;
  stats.submitted_us = now_us;
}

}  // namespace serve
