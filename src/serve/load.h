// LoadSnapshot: one cheap, consistent picture of a serving instance's
// occupancy — what a routing layer needs to place work, and what an exit
// summary needs to say how a run went.
//
// Depths and the running count are instantaneous; done/shed/failed are
// cumulative since the manager started. Capacities are the shed-policy
// limits *currently in force* (the control plane may have moved them), so a
// remote consumer can evaluate "would this node shed a submit of priority
// p?" the same way the node itself will: depth[p] >= capacity[p].
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

#include "serve/session.h"

namespace serve {

struct LoadSnapshot {
  /// Admission-queue depth per priority class.
  std::array<std::size_t, kPriorities> queued{};
  /// Queue capacity per class under the shed config currently in force.
  std::array<std::size_t, kPriorities> queue_capacity{};
  std::size_t running = 0;         ///< sessions in Running/Draining
  std::size_t max_concurrent = 0;  ///< live concurrency window
  std::uint64_t done = 0;          ///< cumulative terminal counts
  std::uint64_t shed = 0;
  std::uint64_t failed = 0;

  [[nodiscard]] std::size_t total_queued() const {
    std::size_t n = 0;
    for (const std::size_t d : queued) n += d;
    return n;
  }

  /// Would a submit of priority `p` be shed right now? Mirrors
  /// ShedPolicy::at_submit's capacity clause — the signal the router uses
  /// to spill Bulk/Batch to another node *before* the shed happens.
  [[nodiscard]] bool would_shed(Priority p) const {
    const auto ix = static_cast<std::size_t>(p);
    return queued[ix] >= queue_capacity[ix];
  }

  /// Occupancy score for least-load placement: queued + running work,
  /// normalized by the concurrency window so heterogeneous nodes compare.
  [[nodiscard]] double load_score() const {
    const double slots = max_concurrent > 0
                             ? static_cast<double>(max_concurrent)
                             : 1.0;
    return (static_cast<double>(running) +
            static_cast<double>(total_queued())) /
           slots;
  }
};

}  // namespace serve
