// ShedPolicy: when the serving layer refuses work instead of queueing it.
//
// Load shedding is the pressure-relief valve of an open-loop system: block
// arrivals do not slow down when the service falls behind (that is the
// point of io::ArrivalModel-driven traffic), so the only stable responses
// to overload are a bounded queue and a deadline. The policy is consulted
// at two points, both strictly *before* admission — a shed session never
// cost a worker a microsecond:
//
//  * at submit: reject when the session's priority queue is at capacity, or
//    when total queued work crosses the global soft cap and the session is
//    not Interactive (high-priority traffic can still displace into the
//    remaining headroom);
//  * in queue: expire sessions whose queue wait exceeded their deadline
//    (per-session override or the per-priority default). A session that
//    has waited past its deadline is worthless to the client even if a
//    slot opens — running it would be pure goodput loss.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

#include "serve/session.h"

namespace serve {

class ShedPolicy {
 public:
  struct Config {
    /// Per-priority admission queue capacity (sessions).
    std::array<std::size_t, kPriorities> queue_capacity = {64, 64, 64};
    /// Total queued sessions beyond which non-Interactive submits are shed
    /// even if their own queue has room. 0 = no global cap.
    std::size_t global_soft_cap = 0;
    /// Per-priority default queue deadline (µs); 0 = never expires.
    std::array<std::uint64_t, kPriorities> queue_deadline_us = {0, 0, 0};
  };

  /// Shed verdict; `reason` is a stable label ("" = admit) used for both
  /// SessionStats::shed_reason and the metrics reason= label.
  struct Decision {
    bool shed = false;
    const char* reason = "";
  };

  explicit ShedPolicy(Config cfg) : cfg_(cfg) {}

  /// Consulted at submit time. `depth` is the session's priority queue
  /// depth, `total_queued` the sum over all priorities (both excluding the
  /// candidate itself).
  [[nodiscard]] Decision at_submit(Priority p, std::size_t depth,
                                   std::size_t total_queued) const;

  /// Has a queued session's wait expired? `waited_us` is engine time spent
  /// in the queue; the effective deadline is the session's own override or
  /// the per-priority default.
  [[nodiscard]] bool expired(const Session& s, std::uint64_t waited_us) const;

  [[nodiscard]] const Config& config() const { return cfg_; }

 private:
  Config cfg_;
};

}  // namespace serve
