#include "serve/shed_policy.h"

namespace serve {

std::string to_string(Priority p) {
  switch (p) {
    case Priority::Interactive:
      return "interactive";
    case Priority::Batch:
      return "batch";
    case Priority::Bulk:
      return "bulk";
  }
  return "?";
}

std::string to_string(SessionState s) {
  switch (s) {
    case SessionState::Queued:
      return "queued";
    case SessionState::Admitted:
      return "admitted";
    case SessionState::Running:
      return "running";
    case SessionState::Draining:
      return "draining";
    case SessionState::Done:
      return "done";
    case SessionState::Shed:
      return "shed";
    case SessionState::Failed:
      return "failed";
  }
  return "?";
}

ShedPolicy::Decision ShedPolicy::at_submit(Priority p, std::size_t depth,
                                           std::size_t total_queued) const {
  const auto ix = static_cast<std::size_t>(p);
  if (depth >= cfg_.queue_capacity[ix]) {
    return {true, "queue_full"};
  }
  if (cfg_.global_soft_cap != 0 && total_queued >= cfg_.global_soft_cap &&
      p != Priority::Interactive) {
    return {true, "soft_cap"};
  }
  return {};
}

bool ShedPolicy::expired(const Session& s, std::uint64_t waited_us) const {
  std::uint64_t deadline = s.cfg.queue_deadline_us;
  if (deadline == 0) {
    deadline = cfg_.queue_deadline_us[static_cast<std::size_t>(s.cfg.priority)];
  }
  return deadline != 0 && waited_us > deadline;
}

}  // namespace serve
