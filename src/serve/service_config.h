// ServiceConfig: one bundle describing a serving instance — the shared
// engine (worker count, dispatch policy/mode), the concurrency window, the
// shed policy, and the observability wiring. Everything a SessionManager
// needs to start serving.
#pragma once

#include <cstddef>

#include "metrics/registry.h"
#include "serve/shed_policy.h"
#include "sre/ids.h"
#include "sre/threaded_executor.h"

namespace serve {

struct ServiceConfig {
  /// Shared worker fleet size (one sre::ThreadedExecutor for all sessions).
  unsigned workers = 8;
  /// Sessions allowed in Running/Draining at once; further admissions wait
  /// in the priority queues. This is the slot count the admission
  /// controller feeds.
  std::size_t max_concurrent = 4;

  /// Scheduling policy of the shared runtime. One runtime, one policy: all
  /// sessions run under it (a session's own RunConfig::policy still decides
  /// whether *that* session builds a speculative chain — NonSpeculative
  /// sessions simply never open epochs).
  sre::DispatchPolicy policy = sre::DispatchPolicy::Balanced;
  sre::PriorityMode priority_mode = sre::PriorityMode::DepthFirst;
  sre::DispatchMode dispatch = sre::DispatchMode::Sharded;

  /// Multiplier on each session's block-arrival schedule (its RunConfig's
  /// ArrivalModel). 0 = inject blocks as fast as the feeder can — sessions
  /// are then compute-bound, the bench's closed-loop mode.
  double block_time_scale = 0.0;

  /// Admission-queue bounds and deadlines.
  ShedPolicy::Config shed;

  /// Non-null: serving metrics land here (serve_sessions_*_total,
  /// serve_session_latency_us, queue gauges). Borrowed; must outlive the
  /// SessionManager.
  metrics::Registry* registry = nullptr;
  /// Also emit per-session series labelled session="<name>" (latency,
  /// rollbacks, output size). Off by default: unbounded label cardinality
  /// is a real cost in a long-running service.
  bool per_session_metrics = false;
};

}  // namespace serve
