// ServiceConfig: one bundle describing a serving instance — the shared
// engine (worker count, dispatch policy/mode), the concurrency window, the
// shed policy, and the observability wiring. Everything a SessionManager
// needs to start serving.
#pragma once

#include <cstddef>

#include "control/controller.h"
#include "metrics/registry.h"
#include "serve/shed_policy.h"
#include "sre/fault.h"
#include "sre/ids.h"
#include "sre/threaded_executor.h"

namespace flight {
class Recorder;
}

namespace serve {

struct ServiceConfig {
  /// Shared worker fleet size (one sre::ThreadedExecutor for all sessions).
  unsigned workers = 8;
  /// Sessions allowed in Running/Draining at once; further admissions wait
  /// in the priority queues. This is the slot count the admission
  /// controller feeds.
  std::size_t max_concurrent = 4;

  /// Scheduling policy of the shared runtime. One runtime, one policy: all
  /// sessions run under it (a session's own RunConfig::policy still decides
  /// whether *that* session builds a speculative chain — NonSpeculative
  /// sessions simply never open epochs).
  sre::DispatchPolicy policy = sre::DispatchPolicy::Balanced;
  sre::PriorityMode priority_mode = sre::PriorityMode::DepthFirst;
  sre::DispatchMode dispatch = sre::DispatchMode::Sharded;

  /// Multiplier on each session's block-arrival schedule (its RunConfig's
  /// ArrivalModel). 0 = inject blocks as fast as the feeder can — sessions
  /// are then compute-bound, the bench's closed-loop mode.
  double block_time_scale = 0.0;

  /// Admission-queue bounds and deadlines.
  ShedPolicy::Config shed;

  /// The adaptive control plane (docs/control-plane.md). When
  /// control.enabled, the SessionManager runs a wall-clock control thread
  /// that samples the service every control.interval_us and retunes live
  /// per-session SpecConfigs (rollback-rate feedback) and the admission
  /// limits (queue-wait / shed-rate feedback), with hysteresis and
  /// min-dwell so it never flaps. Off by default: a disabled controller
  /// leaves every code path untouched.
  control::ControlConfig control;

  /// Non-null: serving metrics land here (serve_sessions_*_total,
  /// serve_session_latency_us, queue gauges). Borrowed; must outlive the
  /// SessionManager.
  metrics::Registry* registry = nullptr;
  /// Also emit per-session series labelled session="<name>" (latency,
  /// rollbacks, output size). Off by default: unbounded label cardinality
  /// is a real cost in a long-running service.
  bool per_session_metrics = false;

  /// Non-null: the always-on flight recorder (src/flight/). The manager
  /// installs a FlightObserver on the shared runtime, stamps every task
  /// with its session's stream id, records session lifecycle edges and
  /// latency attribution, and writes automatic post-mortem dumps for
  /// Failed/Shed sessions when the recorder has a post_mortem_dir.
  /// Borrowed; must be started and must outlive the SessionManager.
  flight::Recorder* flight = nullptr;

  /// Non-null: fault-injection plan installed on the shared runtime (e.g. a
  /// stress::ChaosSchedule forcing rollbacks/failures in tests). Borrowed;
  /// must outlive the SessionManager.
  sre::FaultPlan* fault_plan = nullptr;
};

}  // namespace serve
