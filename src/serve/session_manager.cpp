#include "serve/session_manager.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "pipeline/huffman_pipeline.h"

namespace serve {
namespace {

std::string priority_labels(Priority p) {
  return "priority=\"" + to_string(p) + "\"";
}

std::string reason_labels(const char* reason) {
  return std::string("reason=\"") + reason + "\"";
}

std::string session_labels(const std::string& name) {
  return "session=\"" + name + "\"";
}

/// Message for the exception currently being handled (call inside catch).
std::string current_exception_message() {
  try {
    throw;
  } catch (const std::exception& e) {
    return e.what();
  } catch (...) {
    return "unknown error";
  }
}

}  // namespace

SessionManager::SessionManager(ServiceConfig cfg)
    : cfg_(cfg),
      rt_(std::make_unique<sre::Runtime>(cfg.policy, cfg.priority_mode)),
      admission_(ShedPolicy(cfg.shed)),
      max_concurrent_(cfg.max_concurrent) {
  if (cfg_.control.enabled && cfg_.registry == nullptr) {
    // The control loop's sensors are the serve_* series; keep them in an
    // internal registry when the caller did not ask for metrics export.
    owned_registry_ = std::make_unique<metrics::Registry>();
    cfg_.registry = owned_registry_.get();
  }
  if (cfg_.flight != nullptr) {
    flight_obs_.emplace(*cfg_.flight);
    rt_->set_observer(&*flight_obs_);
  }
  // Always on: one hash update per task completion buys the attribution
  // breakdown in SessionStats even when no recorder is attached.
  rt_->set_stream_accounting(true);
  if (cfg_.fault_plan != nullptr) rt_->set_fault_plan(cfg_.fault_plan);
  sre::ThreadedExecutor::Options topts;
  topts.workers = cfg_.workers;
  topts.dispatch = cfg_.dispatch;
  if (cfg_.registry != nullptr) {
    topts.worker_start_hook = [](unsigned ix) {
      metrics::bind_shard(ix % metrics::kShards);
    };
  }
  ex_ = std::make_unique<sre::ThreadedExecutor>(*rt_, topts);
  // Service mode must open before run() starts, or a momentarily empty
  // schedule would let the feeder exit and run() return immediately.
  ex_->begin_service();
  engine_ = std::thread(&SessionManager::engine_main, this);
  manager_ = std::thread(&SessionManager::manager_main, this);
  if (cfg_.control.enabled) {
    control::AdmissionLimits base;
    base.max_concurrent = cfg_.max_concurrent;
    base.bulk_queue_cap =
        cfg_.shed.queue_capacity[static_cast<std::size_t>(Priority::Bulk)];
    controller_.emplace(cfg_.control, base);
    rates_.emplace(*cfg_.registry);
    control_ = std::thread(&SessionManager::control_main, this);
  }
}

SessionManager::~SessionManager() {
  try {
    drain();
  } catch (...) {
    // Destructor swallows engine errors; call drain() to observe them.
  }
}

void SessionManager::engine_main() {
  try {
    ex_->run();
  } catch (...) {
    std::scoped_lock lk(mu_);
    engine_error_ = std::current_exception();
    engine_failed_ = true;
    manager_cv_.notify_all();
    client_cv_.notify_all();
    control_cv_.notify_all();
  }
}

SessionManager::SubmitOutcome SessionManager::submit(SessionConfig cfg) {
  const std::uint64_t now = ex_->now_us();
  SessionPtr s;
  {
    // The record must be in sessions_ before the controller can hand the
    // session to the manager — otherwise the manager could pop, run and
    // even complete it while it is still invisible to on_complete's
    // sessions_.find(), leaking the running_ slot and hanging wait().
    std::scoped_lock lk(mu_);
    s = std::make_shared<Session>(next_id_++, std::move(cfg), now);
    // Every task this session's pipeline creates carries the session id as
    // its stream — the key for usage accounting and flight-trace grouping.
    s->cfg.run.stream_id = s->id;
    sessions_.emplace(s->id, s);
  }
  flight_state(s->id, "Queued", now);
  const auto offer = admission_.offer(s);

  SubmitOutcome out;
  out.id = s->id;
  out.accepted = offer.queued;
  if (!offer.queued) {
    out.shed_reason = offer.shed_reason;
    std::scoped_lock lk(mu_);
    mark_shed_locked(s, offer.shed_reason);
  }
  if (offer.queued) {
    if (cfg_.registry != nullptr) {
      cfg_.registry
          ->counter("serve_sessions_submitted_total",
                    priority_labels(s->cfg.priority))
          .add();
      cfg_.registry->gauge("serve_sessions_queued")
          .set(static_cast<double>(admission_.queued()));
    }
    manager_cv_.notify_all();
  }
  out.queued = admission_.queued();
  return out;
}

void SessionManager::mark_shed_locked(const SessionPtr& s,
                                      const char* reason) {
  const std::uint64_t now = ex_->now_us();
  s->stats.state = SessionState::Shed;
  s->stats.shed_reason = reason;
  ++shed_count_;
  // A shed session's whole latency is queue time (it never reached a worker).
  s->stats.attribution.queue_us =
      now > s->stats.submitted_us ? now - s->stats.submitted_us : 0;
  flight_state(s->id, "Shed", now);
  queue_post_mortem_locked(*s, std::string("shed: ") + reason);
  if (cfg_.registry != nullptr) {
    cfg_.registry->counter("serve_sessions_shed_total", reason_labels(reason))
        .add();
  }
  client_cv_.notify_all();
}

void SessionManager::mark_failed_locked(const SessionPtr& s,
                                        std::string error) {
  const std::uint64_t now = ex_->now_us();
  s->stats.state = SessionState::Failed;
  s->stats.error = std::move(error);
  ++failed_count_;
  fill_attribution_locked(*s, now);
  flight_state(s->id, "Failed", now);
  queue_post_mortem_locked(*s, "failed: " + s->stats.error);
  if (cfg_.registry != nullptr) {
    cfg_.registry
        ->counter("serve_sessions_failed_total",
                  priority_labels(s->stats.priority))
        .add();
  }
  client_cv_.notify_all();
}

void SessionManager::flight_state(SessionId id, std::string_view label,
                                  std::uint64_t t_us) {
  if (flight_obs_) flight_obs_->session_state(id, label, t_us);
}

void SessionManager::fill_attribution_locked(Session& s, std::uint64_t t_us) {
  auto& a = s.stats.attribution;
  const sre::Runtime::StreamUsage usage = rt_->take_stream_usage(s.id);
  a.queue_us = s.stats.queue_wait_us();
  a.compute_us = usage.compute_us;
  a.rollback_waste_us = usage.waste_us;
  if (usage.first_dispatch_us != sre::Runtime::StreamUsage::kNever &&
      usage.first_dispatch_us > s.stats.admitted_us) {
    a.dispatch_us = usage.first_dispatch_us - s.stats.admitted_us;
  }
  if (s.stats.drained_us > 0 && s.stats.done_us > s.stats.drained_us) {
    a.commit_stall_us = s.stats.done_us - s.stats.drained_us;
  }
  if (flight_obs_) {
    flight_obs_->attribution(s.id, "queue", a.queue_us, t_us);
    flight_obs_->attribution(s.id, "dispatch", a.dispatch_us, t_us);
    flight_obs_->attribution(s.id, "compute", a.compute_us, t_us);
    flight_obs_->attribution(s.id, "commit-stall", a.commit_stall_us, t_us);
    flight_obs_->attribution(s.id, "rollback-waste", a.rollback_waste_us,
                             t_us);
  }
}

void SessionManager::queue_post_mortem_locked(const Session& s,
                                              std::string reason) {
  if (cfg_.flight == nullptr ||
      cfg_.flight->options().post_mortem_dir.empty()) {
    return;
  }
  const auto& a = s.stats.attribution;
  PostMortemJob job;
  job.id = s.id;
  job.reason = std::move(reason);
  job.attribution_us = {{"queue", a.queue_us},
                        {"dispatch", a.dispatch_us},
                        {"compute", a.compute_us},
                        {"commit-stall", a.commit_stall_us},
                        {"rollback-waste", a.rollback_waste_us}};
  pm_pending_.push_back(std::move(job));
  manager_cv_.notify_all();
}

void SessionManager::flush_post_mortems(std::unique_lock<std::mutex>& lk) {
  while (!pm_pending_.empty()) {
    std::vector<PostMortemJob> jobs;
    jobs.swap(pm_pending_);
    lk.unlock();
    // File IO (plus a recorder drain) outside the lock; submit()/wait()
    // must never block on disk.
    for (const PostMortemJob& job : jobs) {
      cfg_.flight->write_post_mortem(job.id, job.reason, job.attribution_us);
    }
    lk.lock();
  }
}

void SessionManager::manager_main() {
  std::unique_lock lk(mu_);
  for (;;) {
    if (engine_failed_) break;

    // 1. Finalize sessions whose last block committed.
    while (!completed_.empty()) {
      const SessionId id = completed_.back();
      completed_.pop_back();
      auto it = sessions_.find(id);
      if (it != sessions_.end()) finalize(it->second, lk);
    }

    // 2. Expire stale queued sessions even while every slot is busy.
    std::vector<SessionPtr> shed;
    admission_.purge_expired(ex_->now_us(), shed);

    // 3. Admit while slots are free (the controller may widen the window
    // mid-service; max_concurrent_ is the live value).
    while (running_ < max_concurrent_) {
      SessionPtr s = admission_.next(ex_->now_us(), shed);
      if (!s) break;
      s->stats.state = SessionState::Admitted;
      s->stats.admitted_us = ex_->now_us();
      flight_state(s->id, "Admitted", s->stats.admitted_us);
      if (cfg_.registry != nullptr) {
        // Admission-time wait histogram: unlike serve_queue_wait_us (which
        // lands at Done), this is fresh while sessions are still running —
        // the control plane's p95 signal.
        cfg_.registry
            ->histogram("serve_admit_wait_us", priority_labels(s->cfg.priority))
            .observe(s->stats.queue_wait_us());
      }
      ++running_;
      const SessionId id = s->id;
      lk.unlock();
      // Build the pipeline and schedule its arrivals outside the lock:
      // source synthesis is the expensive part of admission and must not
      // block submit()/wait()/stats(). It is also where user-supplied
      // inputs first bite (make_source reads input_path), and a throw
      // escaping this thread would std::terminate the whole service — so
      // failures become a per-session Failed verdict instead.
      try {
        pipeline::SharedRun run = pipeline::begin_shared_run(
            s->cfg.run, *rt_, *ex_, cfg_.block_time_scale,
            /*on_complete=*/
            [this, id](std::uint64_t done_us) {
              std::scoped_lock cb(mu_);
              auto sit = sessions_.find(id);
              if (sit != sessions_.end()) sit->second->stats.done_us = done_us;
              completed_.push_back(id);
              manager_cv_.notify_all();
            },
            /*on_last_arrival=*/
            [this, id](std::uint64_t now_us) {
              std::scoped_lock cb(mu_);
              auto sit = sessions_.find(id);
              if (sit == sessions_.end()) return;
              auto& st = sit->second->stats;
              if (st.state == SessionState::Admitted ||
                  st.state == SessionState::Running) {
                st.state = SessionState::Draining;
                st.drained_us = now_us;
                flight_state(id, "Draining", now_us);
              }
            });
        lk.lock();
        s->run = std::move(run);
      } catch (...) {
        const std::string error = current_exception_message();
        lk.lock();
        if (running_ > 0) --running_;
        mark_failed_locked(s, error);
        continue;  // the slot is free again — try the next queued session
      }
      if (s->stats.state == SessionState::Admitted) {
        s->stats.state = SessionState::Running;
        flight_state(s->id, "Running", ex_->now_us());
      }
      if (cfg_.registry != nullptr) {
        cfg_.registry->gauge("serve_sessions_running")
            .set(static_cast<double>(running_));
        cfg_.registry->gauge("serve_sessions_queued")
            .set(static_cast<double>(admission_.queued()));
      }
    }

    for (const auto& s : shed) mark_shed_locked(s, "deadline");
    shed.clear();

    // 3½. Post-mortem dumps queued by shed/failed marks (file IO happens
    // with the lock dropped).
    flush_post_mortems(lk);

    // 4. Drain check: admission closed, queues empty, nothing in flight.
    if (draining_ && running_ == 0 && completed_.empty() &&
        admission_.queued() == 0) {
      break;
    }

    // The timeout is the deadline-expiry tick; every state change of
    // interest (submit, completion, drain) also notifies explicitly.
    manager_cv_.wait_for(lk, std::chrono::milliseconds(2));
  }
  // Stragglers: shutdown-shed submits or a final failure can queue jobs
  // after the last in-loop flush; every post-mortem is on disk before the
  // manager exits (and thus before drain() returns).
  flush_post_mortems(lk);
  manager_done_ = true;
  client_cv_.notify_all();
}

void SessionManager::control_main() {
  std::unique_lock lk(mu_);
  const auto interval = std::chrono::microseconds(
      std::max<std::uint64_t>(1'000, cfg_.control.interval_us));
  for (;;) {
    if (control_cv_.wait_for(
            lk, interval, [&] { return control_stop_ || engine_failed_; })) {
      break;
    }
    control_tick_locked(ex_->now_us());
  }
}

void SessionManager::control_tick_locked(std::uint64_t now_us) {
  // 1. Derive interval rates from the registry (one snapshot per tick).
  rates_->advance(now_us);
  const std::uint64_t interval = rates_->interval_us();

  // 2. Admission loop. The wait signal is the worse of "p95 among waits we
  // actually admitted this interval" and "how long the oldest Interactive
  // session has been stuck" — the latter keeps climbing when admissions
  // stall, which is exactly when the p95 goes quiet.
  const double p95_wait = rates_->histogram_quantile(
      "serve_admit_wait_us", priority_labels(Priority::Interactive), 0.95);
  const double live_wait = static_cast<double>(
      admission_.oldest_wait_us(Priority::Interactive, now_us));
  const double deadline_shed_rate =
      rates_->counter_rate("serve_sessions_shed_total", "reason=\"deadline\"");
  const auto admission_actions = controller_->admission().sample(
      std::max(p95_wait, live_wait), deadline_shed_rate, now_us);
  if (!admission_actions.empty()) {
    const control::AdmissionLimits lim = controller_->admission().limits();
    max_concurrent_ = lim.max_concurrent;
    ShedPolicy::Config shed = cfg_.shed;
    shed.queue_capacity[static_cast<std::size_t>(Priority::Bulk)] =
        lim.bulk_queue_cap;
    admission_.set_config(shed);
    for (const auto& a : admission_actions) {
      note_control_action_locked(0, a, now_us);
    }
    manager_cv_.notify_all();  // a widened window may admit right now
  }

  // 3. Per-session speculation loop: rollback-rate feedback on each live
  // speculative pipeline. retune_spec takes only the speculator's own
  // mutex (mu_ → speculator mu_ is acyclic: nothing below calls back in).
  for (auto& [id, s] : sessions_) {
    const SessionState st = s->stats.state;
    if ((st != SessionState::Running && st != SessionState::Draining) ||
        s->run.pipeline == nullptr ||
        !s->cfg.run.spec.speculation_enabled()) {
      continue;
    }
    const std::uint64_t rb = s->run.pipeline->rollbacks();
    const auto seen = ctrl_rollbacks_seen_.find(id);
    const std::uint64_t prev = seen == ctrl_rollbacks_seen_.end() ? 0 : seen->second;
    ctrl_rollbacks_seen_[id] = rb;
    if (interval == 0) continue;  // first tick: no rate yet
    const double rate =
        static_cast<double>(rb - prev) * 1e6 / static_cast<double>(interval);
    control::SpecTuner& tuner = controller_->stream(
        id, s->cfg.run.spec.confidence_gate, s->cfg.run.spec.step_size);
    const auto actions = tuner.sample(rate, now_us);
    if (actions.empty()) continue;
    tvs::SpecConfig next = s->cfg.run.spec;
    next.confidence_gate = tuner.confidence_gate();
    next.restart_min_defer = tuner.restart_min_defer();
    next.step_size = tuner.step_size();
    if (!s->run.pipeline->retune_spec(next)) continue;
    auto& c = s->stats.control;
    c.spec_retunes += static_cast<std::uint32_t>(actions.size());
    c.confidence_gate = next.confidence_gate;
    c.restart_min_defer = next.restart_min_defer;
    c.step_size = next.step_size;
    for (const auto& a : actions) note_control_action_locked(id, a, now_us);
  }

  // 4. Forget finished streams (bounds tuner/bookkeeping memory).
  for (auto it = ctrl_rollbacks_seen_.begin();
       it != ctrl_rollbacks_seen_.end();) {
    const auto sit = sessions_.find(it->first);
    const bool live =
        sit != sessions_.end() &&
        (sit->second->stats.state == SessionState::Running ||
         sit->second->stats.state == SessionState::Draining);
    if (live) {
      ++it;
    } else {
      controller_->drop_stream(it->first);
      it = ctrl_rollbacks_seen_.erase(it);
    }
  }
}

void SessionManager::note_control_action_locked(SessionId id,
                                                const control::Action& a,
                                                std::uint64_t now_us) {
  // The flight label is knob+direction only — a bounded set of literals,
  // so the recorder's name interner stays bounded over a long service.
  flight_state(id, std::string("retune:") + a.knob +
                       (a.direction > 0 ? "/up" : "/down"),
               now_us);
  if (cfg_.registry != nullptr) {
    cfg_.registry
        ->counter("serve_control_retunes_total",
                  std::string("knob=\"") + a.knob + "\",dir=\"" +
                      (a.direction > 0 ? "up" : "down") + "\"")
        .add();
  }
}

SessionManager::ControlStatus SessionManager::control_status() const {
  std::scoped_lock lk(mu_);
  ControlStatus st;
  st.max_concurrent = max_concurrent_;
  st.bulk_queue_cap = admission_.shed_config()
                          .queue_capacity[static_cast<std::size_t>(Priority::Bulk)];
  if (controller_) {
    st.admission_retunes = controller_->admission().retunes();
    for (const auto& s : sessions_) {
      st.spec_retunes += s.second->stats.control.spec_retunes;
    }
  }
  return st;
}

void SessionManager::finalize(const SessionPtr& s,
                              std::unique_lock<std::mutex>& lk) {
  const std::uint64_t done = s->stats.done_us;
  // Move the run handle out so the pipeline + source are destroyed outside
  // the lock (task closures pin their own state, so this is safe even with
  // stray aborted tasks still draining). Collection runs on the manager
  // thread, so a validation throw must become a per-session failure, not a
  // process abort.
  pipeline::SharedRun run = std::move(s->run);
  lk.unlock();
  std::unique_ptr<pipeline::RunResult> result;
  std::string error;
  try {
    result = std::make_unique<pipeline::RunResult>(
        pipeline::collect_shared_run(run, done));
  } catch (...) {
    error = current_exception_message();
  }
  run = pipeline::SharedRun();  // destroy pipeline + source now
  lk.lock();
  if (running_ > 0) --running_;
  if (result == nullptr) {
    mark_failed_locked(s, std::move(error));
    manager_cv_.notify_all();
    return;
  }
  s->result = std::move(result);
  s->stats.state = SessionState::Done;
  ++done_count_;
  fill_attribution_locked(*s, done);
  flight_state(s->id, "Done", done);
  note_done_metrics(s->stats, *s->result);
  client_cv_.notify_all();
  manager_cv_.notify_all();
}

void SessionManager::note_done_metrics(const SessionStats& st,
                                       const pipeline::RunResult& result) {
  if (cfg_.registry == nullptr) return;
  auto& reg = *cfg_.registry;
  reg.counter("serve_sessions_done_total", priority_labels(st.priority)).add();
  reg.histogram("serve_latency_us", priority_labels(st.priority))
      .observe(st.latency_us());
  reg.histogram("serve_queue_wait_us", priority_labels(st.priority))
      .observe(st.queue_wait_us());
  reg.gauge("serve_sessions_running").set(static_cast<double>(running_));
  if (cfg_.per_session_metrics) {
    const auto labels = session_labels(st.name);
    reg.gauge("serve_session_latency_us", labels)
        .set(static_cast<double>(st.latency_us()));
    reg.gauge("serve_session_output_bits", labels)
        .set(static_cast<double>(result.output_bits));
    reg.counter("serve_session_rollbacks_total", labels).add(result.rollbacks);
  }
}

const pipeline::RunResult* SessionManager::wait(SessionId id) {
  std::unique_lock lk(mu_);
  auto it = sessions_.find(id);
  if (it == sessions_.end()) return nullptr;
  SessionPtr s = it->second;
  const auto terminal = [](SessionState st) {
    return st == SessionState::Done || st == SessionState::Shed ||
           st == SessionState::Failed;
  };
  client_cv_.wait(lk, [&] { return terminal(s->stats.state) || engine_failed_; });
  if (!terminal(s->stats.state) && engine_error_) {
    std::rethrow_exception(engine_error_);
  }
  return s->result.get();
}

bool SessionManager::release(SessionId id) {
  std::scoped_lock lk(mu_);
  auto it = sessions_.find(id);
  if (it == sessions_.end()) return false;
  Session& s = *it->second;
  if (s.stats.state != SessionState::Done &&
      s.stats.state != SessionState::Shed &&
      s.stats.state != SessionState::Failed) {
    return false;
  }
  // Keep the record (stats stay queryable) but drop everything heavy: the
  // result's input/container byte copies and the workload spec. run is
  // already empty for every terminal state.
  s.result.reset();
  s.cfg = SessionConfig{};
  return true;
}

LoadSnapshot SessionManager::load_snapshot() const {
  std::scoped_lock lk(mu_);
  LoadSnapshot snap;
  snap.queued = admission_.depths();
  snap.queue_capacity = admission_.shed_config().queue_capacity;
  snap.running = running_;
  snap.max_concurrent = max_concurrent_;
  snap.done = done_count_;
  snap.shed = shed_count_;
  snap.failed = failed_count_;
  return snap;
}

SessionStats SessionManager::stats(SessionId id) const {
  std::scoped_lock lk(mu_);
  auto it = sessions_.find(id);
  if (it == sessions_.end()) return {};
  return it->second->stats;
}

std::vector<SessionStats> SessionManager::all_sessions() const {
  std::scoped_lock lk(mu_);
  std::vector<SessionStats> out;
  out.reserve(sessions_.size());
  for (SessionId id = 1; id < next_id_; ++id) {
    auto it = sessions_.find(id);
    if (it != sessions_.end()) out.push_back(it->second->stats);
  }
  return out;
}

void SessionManager::drain() {
  {
    std::scoped_lock lk(mu_);
    if (drained_) {
      if (engine_error_) std::rethrow_exception(engine_error_);
      return;
    }
    draining_ = true;
    control_stop_ = true;
  }
  control_cv_.notify_all();
  if (control_.joinable()) control_.join();
  admission_.close();
  manager_cv_.notify_all();
  if (manager_.joinable()) manager_.join();
  // The manager only exits once every admitted session resolved (or the
  // engine died); closing service now lets the feeder — and run() — finish.
  ex_->end_service();
  if (engine_.joinable()) engine_.join();
  if (cfg_.registry != nullptr) {
    // The runtime is owned by this manager, so its arena counters cover
    // exactly this service's lifetime; mirror them once at drain.
    const sre::ArenaStats a = rt_->arena_stats();
    auto& reg = *cfg_.registry;
    reg.counter("tvs_alloc_arena_allocs_total").add(a.allocs);
    reg.counter("tvs_alloc_arena_bytes_total").add(a.bytes);
    reg.counter("tvs_alloc_arena_chunks_total", "origin=\"malloc\"")
        .add(a.chunks_new);
    reg.counter("tvs_alloc_arena_chunks_total", "origin=\"recycled\"")
        .add(a.chunks_reused);
    reg.counter("tvs_alloc_arena_oversize_total").add(a.oversize);
  }
  std::unique_lock lk(mu_);
  // A submit racing drain() can shed with "shutdown" after the manager's
  // final flush; write those stragglers here so drain() always leaves every
  // post-mortem on disk.
  flush_post_mortems(lk);
  drained_ = true;
  if (engine_error_) std::rethrow_exception(engine_error_);
}

std::vector<SessionManager::SubmitOutcome> submit_open_loop(
    SessionManager& mgr, std::vector<SessionConfig> configs,
    const sio::ArrivalModel& arrivals) {
  std::vector<SessionManager::SubmitOutcome> outcomes;
  outcomes.reserve(configs.size());
  const std::uint64_t base = mgr.now_us();
  for (std::size_t i = 0; i < configs.size(); ++i) {
    const std::uint64_t target = base + arrivals.arrival_us(i);
    for (;;) {
      const std::uint64_t now = mgr.now_us();
      if (now >= target) break;
      std::this_thread::sleep_for(
          std::chrono::microseconds(std::min<std::uint64_t>(target - now, 1000)));
    }
    outcomes.push_back(mgr.submit(std::move(configs[i])));
  }
  return outcomes;
}

}  // namespace serve
