// AdmissionController: the bounded front door of the serving layer.
//
// Holds one FIFO queue per Priority class and applies the ShedPolicy at
// both ends: `offer` consults it before enqueueing (capacity / soft-cap
// shedding — the backpressure signal the client sees), and `next` /
// `purge_expired` drop deadline-overrun sessions (strict priority order:
// Interactive > Batch > Bulk, FIFO within a class). Once `close`d the
// controller refuses new work but still drains what it already accepted —
// graceful shutdown sheds nothing that was admitted.
//
// Thread-safe; every entry point takes the internal lock. The controller
// never *mutates* a Session — it only reads the immutable cfg/submit
// timestamp. Sessions handed back via `next` or a shed list leave the
// controller entirely, and marking them Shed is the caller's job (under the
// caller's session lock, so stats snapshots stay race-free).
#pragma once

#include <array>
#include <cstddef>
#include <deque>
#include <mutex>
#include <vector>

#include "serve/session.h"
#include "serve/shed_policy.h"

namespace serve {

class AdmissionController {
 public:
  explicit AdmissionController(ShedPolicy policy);

  /// Outcome of an offer: admitted to a queue, or shed with a reason.
  struct Offer {
    bool queued = false;
    const char* shed_reason = "";  ///< non-empty iff !queued
  };

  /// Try to enqueue. On shed the session is left untouched.
  Offer offer(const SessionPtr& s);

  /// Pop the next session in strict priority order, skipping (and returning
  /// via `shed_out`) sessions whose queue deadline expired. Returns nullptr
  /// when every queue is empty.
  SessionPtr next(std::uint64_t now_us, std::vector<SessionPtr>& shed_out);

  /// Remove every queued session whose deadline has expired, appending them
  /// to `shed_out`. Returns the number removed. Called periodically so
  /// deadline sheds are not delayed until a slot frees.
  std::size_t purge_expired(std::uint64_t now_us,
                            std::vector<SessionPtr>& shed_out);

  /// Stop accepting new sessions; queued ones still drain via `next`.
  void close();
  [[nodiscard]] bool closed() const;

  /// Total sessions currently queued across all priorities.
  [[nodiscard]] std::size_t queued() const;
  /// Per-priority queue depths.
  [[nodiscard]] std::array<std::size_t, kPriorities> depths() const;

  /// Engine time the oldest still-queued session of priority `p` has been
  /// waiting (0 when that queue is empty). The control plane's live
  /// pressure probe: unlike the admitted-wait histogram, it keeps climbing
  /// while admissions are stalled.
  [[nodiscard]] std::uint64_t oldest_wait_us(Priority p,
                                             std::uint64_t now_us) const;

  /// Control-plane entry: atomically replaces the shed policy's limits.
  /// Already-queued sessions are never evicted by a cap shrink — caps bind
  /// at submit time only; deadlines use the config in force when checked.
  void set_config(const ShedPolicy::Config& cfg);
  /// Snapshot of the limits currently in force.
  [[nodiscard]] ShedPolicy::Config shed_config() const;

 private:
  [[nodiscard]] bool expired_locked(const Session& s,
                                    std::uint64_t now_us) const;

  ShedPolicy policy_;
  mutable std::mutex mu_;
  std::array<std::deque<SessionPtr>, kPriorities> queues_;
  bool closed_ = false;
};

}  // namespace serve
