// SessionManager: many concurrent pipeline sessions over one shared engine.
//
// The serving layer's core. One sre::Runtime + ThreadedExecutor (in service
// mode) hosts every session's tasks; an AdmissionController holds the
// bounded per-priority queues in front of it. A manager thread moves
// sessions through the lifecycle (see serve/session.h):
//
//   submit() ──► AdmissionController ──► manager pops when a slot frees
//                      │                        │
//                      ▼                        ▼
//                 Shed (bounded            begin_shared_run on the live
//                 queue / deadline /       engine; Running → Draining →
//                 shutdown)                Done; result collected. A throw
//                                          on this path (unreadable input,
//                                          collection failure) marks the
//                                          session Failed and frees the
//                                          slot — never the whole process.
//
// Backpressure contract: submit() never blocks. It returns a SubmitOutcome
// that either carries the admission-queue depth (the pressure signal — a
// well-behaved closed-loop client slows down as it grows) or says the
// session was shed and why (the open-loop overload response; arrivals that
// do not slow down are bounded by shedding instead of by an unbounded
// queue). A shed session never reached a worker.
//
// Isolation: sessions share workers but nothing else — each owns its
// Speculator, WaitBuffer and epoch space (Runtime::open_epoch is globally
// monotonic), so one stream rolling back cannot disturb another stream's
// commits. tests/serve/multi_session_torture_test.cpp pins this under the
// chaos schedule.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "control/controller.h"
#include "flight/observer.h"
#include "io/arrival_model.h"
#include "metrics/derived.h"
#include "pipeline/driver.h"
#include "serve/admission.h"
#include "serve/load.h"
#include "serve/service_config.h"
#include "serve/session.h"
#include "sre/runtime.h"
#include "sre/threaded_executor.h"

namespace serve {

class SessionManager {
 public:
  /// What submit() tells the client — the backpressure signal.
  struct SubmitOutcome {
    SessionId id = 0;
    bool accepted = false;    ///< queued (or already running); false = shed
    std::string shed_reason;  ///< non-empty iff !accepted
    std::size_t queued = 0;   ///< admission depth after this submit
  };

  /// Starts the shared engine (runtime + executor in service mode) and the
  /// manager thread. The service is live on return.
  explicit SessionManager(ServiceConfig cfg);
  /// Drains (see drain()) then stops. Engine errors are swallowed here;
  /// call drain() explicitly to observe them.
  ~SessionManager();

  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  /// Offer a session. Non-blocking: either queued for admission or shed on
  /// the spot (queue full, soft cap, or the service is draining).
  SubmitOutcome submit(SessionConfig cfg);

  /// Blocks until the session reaches a terminal state (Done, Shed or
  /// Failed). Returns the per-session result (null when shed, failed or
  /// unknown id; a failed session's error is in stats(id).error). The
  /// pointer stays valid until release(id) or the manager's destruction.
  /// Rethrows the engine error if the service died before the session
  /// resolved.
  const pipeline::RunResult* wait(SessionId id);

  /// Frees a terminal session's heavy payload — the RunResult (input and
  /// container byte copies) and the workload config — keeping only the
  /// SessionStats, so a long-running service's memory stays bounded by live
  /// sessions rather than history. Returns false (and does nothing) for
  /// unknown ids or sessions that have not reached Done/Shed/Failed.
  /// Invalidates any pointer previously returned by wait(id); stats(id) and
  /// all_sessions() keep working.
  bool release(SessionId id);

  /// Snapshot of one session's serving stats (state, timestamps, reason).
  [[nodiscard]] SessionStats stats(SessionId id) const;
  /// Snapshots of every session ever submitted, in id order.
  [[nodiscard]] std::vector<SessionStats> all_sessions() const;

  /// Current admission-queue depth (the backpressure probe).
  [[nodiscard]] std::size_t queued() const { return admission_.queued(); }

  /// Cheap occupancy snapshot: per-priority queue depths against the limits
  /// currently in force, the running count, and cumulative done/shed/failed
  /// counters. One lock acquisition; safe to call at heartbeat rate. The
  /// distributed router's placement signal (src/dist), and the source of
  /// `tvsc serve`'s exit load line.
  [[nodiscard]] LoadSnapshot load_snapshot() const;

  /// Graceful shutdown: close admission (new submits shed with reason
  /// "shutdown"), let everything already queued or running finish, then
  /// stop the engine. Idempotent. Rethrows any engine error.
  void drain();

  /// Engine time (µs since the executor started).
  [[nodiscard]] std::uint64_t now_us() const { return ex_->now_us(); }

  [[nodiscard]] const sre::Runtime& runtime() const { return *rt_; }
  [[nodiscard]] const ServiceConfig& config() const { return cfg_; }

  /// Live control-plane snapshot: the admission limits currently in force
  /// and how many retunes each tuner has applied. Static (baseline) values
  /// when the controller is disabled.
  struct ControlStatus {
    std::size_t max_concurrent = 0;
    std::size_t bulk_queue_cap = 0;
    std::uint64_t admission_retunes = 0;
    std::uint64_t spec_retunes = 0;  ///< knob movements across all sessions
  };
  [[nodiscard]] ControlStatus control_status() const;

 private:
  void engine_main();
  void manager_main();
  /// Control thread: one control_tick_locked per ControlConfig::interval_us
  /// until drain (wall-clock sibling of run_sim's virtual-time ticks).
  void control_main();
  /// One feedback sample: derive rates, consult the controller, apply and
  /// log its decisions. Caller holds mu_ (the lock order below mu_ is
  /// admission/registry/speculator — all leaves; nothing calls back up).
  void control_tick_locked(std::uint64_t now_us);
  /// Logs one knob movement through the flight/metrics path. Caller holds
  /// mu_. `id` is the affected session (0 = service-wide).
  void note_control_action_locked(SessionId id, const control::Action& a,
                                  std::uint64_t now_us);
  /// Finalize one completed session: collect its result, free its pipeline.
  void finalize(const SessionPtr& s, std::unique_lock<std::mutex>& lk);
  /// Mark `s` shed under mu_ and publish metrics/wakeups.
  void mark_shed_locked(const SessionPtr& s, const char* reason);
  /// Mark `s` failed (its own work threw) under mu_; the error lands in
  /// stats, metrics are published and wait()ers are woken.
  void mark_failed_locked(const SessionPtr& s, std::string error);
  void note_done_metrics(const SessionStats& st,
                         const pipeline::RunResult& result);
  /// Flight-recorder session edge (no-op without a recorder). Safe under mu_.
  void flight_state(SessionId id, std::string_view label, std::uint64_t t_us);
  /// Fills stats.attribution from the runtime's per-stream usage (consumes
  /// it) and, with a recorder, emits the Attribution records. Caller holds
  /// mu_; takes the runtime lock (mu_ → runtime lock is the established
  /// order).
  void fill_attribution_locked(Session& s, std::uint64_t t_us);
  /// Queues a post-mortem dump for the manager thread (file IO must never
  /// run under mu_ — submit() calls mark_shed_locked on the client thread).
  void queue_post_mortem_locked(const Session& s, std::string reason);
  /// Writes every queued post-mortem, dropping mu_ around the file IO.
  void flush_post_mortems(std::unique_lock<std::mutex>& lk);

  ServiceConfig cfg_;
  /// Engaged when the controller is enabled without a caller registry: the
  /// control loop needs the serve_* series as its sensors, so metrics are
  /// kept internally (just not exported). cfg_.registry points here.
  std::unique_ptr<metrics::Registry> owned_registry_;
  std::unique_ptr<sre::Runtime> rt_;
  /// Engaged iff cfg_.flight; installed as the runtime's observer.
  std::optional<flight::FlightObserver> flight_obs_;
  std::unique_ptr<sre::ThreadedExecutor> ex_;
  AdmissionController admission_;

  mutable std::mutex mu_;
  std::condition_variable manager_cv_;  ///< wakes the manager thread
  std::condition_variable client_cv_;   ///< wakes wait()ers
  std::unordered_map<SessionId, SessionPtr> sessions_;
  std::vector<SessionId> completed_;  ///< on_complete fired, pending collect
  /// Post-mortem dumps awaiting the manager thread (guaranteed written —
  /// including stragglers queued during shutdown — before drain() returns).
  struct PostMortemJob {
    SessionId id = 0;
    std::string reason;
    std::vector<std::pair<std::string, std::uint64_t>> attribution_us;
  };
  std::vector<PostMortemJob> pm_pending_;
  std::size_t running_ = 0;           ///< sessions in Running/Draining
  /// Cumulative terminal counts (the LoadSnapshot counters). Kept here
  /// rather than derived from sessions_ so release()d history still counts.
  std::uint64_t done_count_ = 0;
  std::uint64_t shed_count_ = 0;
  std::uint64_t failed_count_ = 0;
  SessionId next_id_ = 1;
  bool draining_ = false;
  bool manager_done_ = false;
  bool engine_failed_ = false;
  std::exception_ptr engine_error_;
  bool drained_ = false;

  // --- Control plane (all guarded by mu_; see docs/control-plane.md) ----
  /// The live concurrency window. Starts at cfg_.max_concurrent; the
  /// controller may widen it up to ControlConfig::concurrent_max.
  std::size_t max_concurrent_ = 0;
  std::optional<control::Controller> controller_;
  std::optional<metrics::DeltaView> rates_;
  /// Per-session rollback counts as of the previous control tick.
  std::unordered_map<SessionId, std::uint64_t> ctrl_rollbacks_seen_;
  std::condition_variable control_cv_;
  bool control_stop_ = false;

  std::thread engine_;
  std::thread manager_;
  std::thread control_;
};

/// Submits `configs` open-loop: session i is offered at engine time
/// `mgr.now_us() at call + arrivals.arrival_us(i)` whether or not the
/// service is keeping up — arrivals never slow down, which is exactly what
/// makes overload (and shedding) observable. Synchronous; outcomes are in
/// submit order.
std::vector<SessionManager::SubmitOutcome> submit_open_loop(
    SessionManager& mgr, std::vector<SessionConfig> configs,
    const sio::ArrivalModel& arrivals);

}  // namespace serve
