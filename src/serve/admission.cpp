#include "serve/admission.h"

namespace serve {

AdmissionController::AdmissionController(ShedPolicy policy)
    : policy_(std::move(policy)) {}

AdmissionController::Offer AdmissionController::offer(const SessionPtr& s) {
  std::scoped_lock lk(mu_);
  if (closed_) {
    return {false, "shutdown"};
  }
  const auto ix = static_cast<std::size_t>(s->cfg.priority);
  std::size_t total = 0;
  for (const auto& q : queues_) total += q.size();
  const auto verdict =
      policy_.at_submit(s->cfg.priority, queues_[ix].size(), total);
  if (verdict.shed) {
    return {false, verdict.reason};
  }
  queues_[ix].push_back(s);
  return {true, ""};
}

bool AdmissionController::expired_locked(const Session& s,
                                         std::uint64_t now_us) const {
  const std::uint64_t waited =
      now_us > s.stats.submitted_us ? now_us - s.stats.submitted_us : 0;
  return policy_.expired(s, waited);
}

SessionPtr AdmissionController::next(std::uint64_t now_us,
                                     std::vector<SessionPtr>& shed_out) {
  std::scoped_lock lk(mu_);
  for (auto& q : queues_) {
    while (!q.empty()) {
      SessionPtr s = q.front();
      q.pop_front();
      if (expired_locked(*s, now_us)) {
        shed_out.push_back(std::move(s));
        continue;
      }
      return s;
    }
  }
  return nullptr;
}

std::size_t AdmissionController::purge_expired(
    std::uint64_t now_us, std::vector<SessionPtr>& shed_out) {
  std::scoped_lock lk(mu_);
  std::size_t removed = 0;
  for (auto& q : queues_) {
    for (auto it = q.begin(); it != q.end();) {
      if (expired_locked(**it, now_us)) {
        shed_out.push_back(std::move(*it));
        it = q.erase(it);
        ++removed;
      } else {
        ++it;
      }
    }
  }
  return removed;
}

void AdmissionController::close() {
  std::scoped_lock lk(mu_);
  closed_ = true;
}

bool AdmissionController::closed() const {
  std::scoped_lock lk(mu_);
  return closed_;
}

std::size_t AdmissionController::queued() const {
  std::scoped_lock lk(mu_);
  std::size_t total = 0;
  for (const auto& q : queues_) total += q.size();
  return total;
}

std::uint64_t AdmissionController::oldest_wait_us(Priority p,
                                                  std::uint64_t now_us) const {
  std::scoped_lock lk(mu_);
  const auto& q = queues_[static_cast<std::size_t>(p)];
  if (q.empty()) return 0;
  // FIFO within a class: the front is the oldest.
  const std::uint64_t submitted = q.front()->stats.submitted_us;
  return now_us > submitted ? now_us - submitted : 0;
}

void AdmissionController::set_config(const ShedPolicy::Config& cfg) {
  std::scoped_lock lk(mu_);
  policy_ = ShedPolicy(cfg);
}

ShedPolicy::Config AdmissionController::shed_config() const {
  std::scoped_lock lk(mu_);
  return policy_.config();
}

std::array<std::size_t, kPriorities> AdmissionController::depths() const {
  std::scoped_lock lk(mu_);
  std::array<std::size_t, kPriorities> out{};
  for (std::size_t i = 0; i < kPriorities; ++i) out[i] = queues_[i].size();
  return out;
}

}  // namespace serve
