// HuffmanPipeline: the paper's benchmark, built as a dynamic DFG on the SRE.
//
// Mirrors Fig. 2 of the paper. First pass: a Count task per arriving 4 KiB
// block; a serial chain of Reduce tasks, each folding `reduce_ratio` block
// histograms into the running prefix histogram. Each Reduce completion is an
// *estimate* in the tolerant-value-speculation sense; when the Speculator
// wants one, a Control-class prediction task builds the prefix Huffman tree.
// Second pass: Offset tasks (one per group of `offset_group` blocks, serially
// chained — variable-length codes make block positions a prefix computation)
// feeding parallel Encode tasks. The speculative second pass runs under an
// epoch from a predicted tree; its results wait in a WaitBuffer until a
// passing final check commits them. A failed check rolls the epoch back and
// re-speculates from the newest prefix (or falls back to the natural second
// pass if the final histogram is already known).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "core/speculator.h"
#include "core/wait_buffer.h"
#include "huffman/canonical.h"
#include "huffman/encoder.h"
#include "huffman/histogram.h"
#include "io/block_source.h"
#include "pipeline/run_config.h"
#include "sre/runtime.h"
#include "sre/slot.h"
#include "sre/supertask.h"
#include "stats/predictor_stats.h"
#include "stats/trace.h"

namespace pipeline {

/// The speculated value: a prefix histogram and the canonical table implied
/// by it. Tables for speculation are built over a floored histogram so every
/// byte value is encodable regardless of what arrives later.
struct TreeEstimate {
  std::shared_ptr<const huff::Histogram> hist;
  std::shared_ptr<const huff::CodeTable> table;
};

/// Published on the first pass's "histogram" SuperTask port, one per Reduce
/// completion (the snapshot itself lives in the pipeline state).
struct EstimateMsg {
  std::size_t reduce_index = 0;
};

/// Published on the second pass's "block-done" SuperTask port.
struct BlockDoneMsg {
  std::size_t block = 0;
  bool speculative = false;
};

class HuffmanPipeline {
 public:
  /// `source` must outlive the pipeline *and every task the pipeline ever
  /// submitted* (stray aborted tasks may still read blocks while they
  /// drain). Cost/memory attributes come from `config.platform.cost`;
  /// speculation is controlled by `config.policy` and `config.spec`.
  HuffmanPipeline(sre::Runtime& runtime, const sio::BlockSource& source,
                  const RunConfig& config);

  /// As above, but the pipeline shares ownership of `source`, and the shared
  /// internal state rides in every task closure — so this handle (and the
  /// caller's source reference) may be destroyed as soon as results are
  /// collected, even while stray aborted tasks are still draining on the
  /// executor. The serving layer (src/serve) relies on this to retire
  /// sessions eagerly on a long-running shared runtime.
  HuffmanPipeline(sre::Runtime& runtime,
                  std::shared_ptr<const sio::BlockSource> source,
                  const RunConfig& config);

  /// Arrival entry point: the executor calls this (from its feeder/event
  /// schedule) when block `i`'s bytes become available.
  void on_block_arrival(std::size_t i, std::uint64_t now_us);

  /// Installs a callback fired exactly once, when the last block's committed
  /// encoding lands (all blocks filled and the code table chosen) — i.e. the
  /// moment validate_complete() would first pass. Runs on whichever executor
  /// thread fills the last block, with the engine time of that fill; fires
  /// immediately (now_us = 0) if the run is already complete when installed.
  /// The serving layer uses this to detect session completion without
  /// waiting for global runtime quiescence.
  void set_on_complete(std::function<void(std::uint64_t now_us)> fn);

  // --- Results (valid after the executor's run() returns) -----------------

  [[nodiscard]] const stats::BlockTrace& trace() const;

  /// True iff the committed output came from a speculative epoch.
  [[nodiscard]] bool speculation_committed() const;

  /// Entries discarded from the wait buffer by rollbacks.
  [[nodiscard]] std::size_t wait_discarded() const;

  /// Speculative results currently parked in the wait buffer (live value —
  /// metrics probes sample it mid-run).
  [[nodiscard]] std::size_t wait_pending() const;

  /// Number of rollback events observed by the pipeline.
  [[nodiscard]] std::uint64_t rollbacks() const;

  /// Control-plane entry: atomically retunes the live Speculator's knobs
  /// (tvs::Speculator::retune — step_size, verify, confidence_gate,
  /// adaptive_restart, restart_min_defer; structural fields are pinned).
  /// Thread-safe and callable mid-run from any thread; the new knobs
  /// govern every estimate that arrives after the call. Returns false
  /// (and does nothing) when the pipeline runs without speculation.
  /// Note: the tolerance predicate was captured at construction, so
  /// `next.tolerance` is intentionally ignored.
  bool retune_spec(const tvs::SpecConfig& next);

  /// The live Speculator's current config (the configured spec when
  /// speculation is disabled).
  [[nodiscard]] tvs::SpecConfig spec_config() const;

  /// retune_spec calls applied to the live Speculator.
  [[nodiscard]] std::uint64_t spec_retunes() const;

  /// Per-predictor accuracy counters (empty under PredictorMode::Baseline).
  [[nodiscard]] stats::PredictorScoreboard predictor_scoreboard() const;

  /// Epoch-opens withheld by the confidence gate (0 without a gate).
  [[nodiscard]] std::uint64_t gate_denials() const;

  /// Name of the bank's current best predictor ("" under Baseline).
  [[nodiscard]] std::string best_predictor() const;

  /// Throws std::logic_error if any block has no committed encoding — a run
  /// that loses blocks is a correctness bug.
  void validate_complete() const;

  /// Assembles the complete compressed container (header + spliced payload).
  [[nodiscard]] std::vector<std::uint8_t> assemble_output() const;

  /// Compressed payload size in bits of the committed output.
  [[nodiscard]] std::uint64_t output_bits() const;

  /// The pipeline's SuperTask hierarchy (paper §III-A/B): the root routes
  /// data between the two passes; the first pass's "histogram" port is the
  /// flagged speculation basis that feeds the tvs layer. Exposed for
  /// observation (tests subscribe to ports to watch data flow).
  [[nodiscard]] sre::SuperTask& root_supertask();

 private:
  struct SpecResult {
    huff::EncodedBlock enc;
    std::uint64_t offset = 0;
  };

  struct Chain;
  struct State;

  // Wiring helpers (definitions in the .cpp). Static and keyed off the
  // shared State: no task closure or completion hook ever captures the
  // HuffmanPipeline handle itself, so the handle can be destroyed while
  // stray tasks are still in flight — each closure pins State (and through
  // it the source) until the task retires.
  static void on_reduce_done(const std::shared_ptr<State>& st, std::size_t r,
                             std::uint64_t now_us);
  static void build_spec_chain(const std::shared_ptr<State>& st,
                               const TreeEstimate& guess, sre::Epoch epoch,
                               std::uint32_t estimate_index);
  static void extend_chain_locked(const std::shared_ptr<State>& st,
                                  std::unique_lock<std::mutex>& lk);
  static void build_natural(const std::shared_ptr<State>& st,
                            const TreeEstimate& final_value,
                            std::uint64_t now_us);

  std::shared_ptr<State> st_;
};

}  // namespace pipeline
