#include "pipeline/huffman_pipeline.h"

#include <cassert>
#include <cmath>
#include <stdexcept>

#include "huffman/offsets.h"
#include "huffman/stream_format.h"
#include "huffman/tree.h"
#include "sre/arena.h"
#include "predict/bank.h"
#include "predict/ewma.h"
#include "predict/histogram_morph.h"
#include "predict/last_value.h"
#include "predict/stride.h"
#include "sim/cost_model.h"

namespace pipeline {

using sim::TaskKind;

namespace {

/// Encode `block` into the calling worker's lane of `arenas`. The exact
/// output size comes from the block's histogram (already complete: Encode
/// depends on Offset depends on Count), so the bump allocation is sized
/// precisely — no second pass over the data, no worst-case padding. The
/// returned ByteBuf co-owns `arenas`: committed results keep the epoch's
/// memory alive, and a rollback's reference drop reclaims it wholesale.
huff::EncodedBlock encode_into_lane(std::span<const std::uint8_t> block,
                                    const huff::Histogram& hist,
                                    const huff::CodeTable& table,
                                    const std::shared_ptr<sre::EpochArenas>&
                                        arenas,
                                    unsigned worker) {
  const std::uint64_t nbits = table.encoded_bits(hist);
  auto out = arenas->lane(worker).alloc_bytes((nbits + 7) / 8);
  return huff::encode_block_into(block, table, out, arenas);
}

}  // namespace

/// Active speculative second pass: one epoch's tree, serial offset chain
/// tail, and per-block offset store. Destroyed on rollback; survives commit
/// (later arrivals pass through the wait buffer).
struct HuffmanPipeline::Chain {
  sre::Epoch epoch = 0;
  std::shared_ptr<const huff::CodeTable> table;
  sre::TaskPtr prev_offset;  ///< tail of the serial offset chain
  std::shared_ptr<sre::Slot<std::uint64_t>> prev_end;  ///< bits after tail group
  std::shared_ptr<std::vector<std::uint64_t>> offsets; ///< absolute start bits
  /// This epoch's encode-output arenas (one lane per worker). Dropped with
  /// the chain on rollback; results that reached the wait buffer keep it
  /// alive through their ByteBuf owner refs until committed or dropped.
  std::shared_ptr<sre::EpochArenas> arena;
  std::size_t next_group = 0;
  std::size_t counted_blocks = 0;  ///< prefix of blocks with completed counts
};

struct HuffmanPipeline::State {
  State(sre::Runtime& runtime, const sio::BlockSource& source, RunConfig config)
      : rt(runtime),
        src(source),
        cfg(std::move(config)),
        root("huffman"),
        first_pass(&root.add_child("first-pass")),
        second_pass(&root.add_child("second-pass")) {}

  sre::Runtime& rt;
  const sio::BlockSource& src;
  /// Engaged by the shared_ptr constructor: keeps the source alive as long
  /// as State itself (and State rides in every task closure), so the caller
  /// may drop its reference once results are collected.
  std::shared_ptr<const sio::BlockSource> src_keepalive;
  RunConfig cfg;

  // SuperTask hierarchy (paper §III-A): the root directs data between the
  // two passes. The first pass's histogram port is flagged as a speculation
  // basis (§III-B), so each publication both advances normal execution
  // (chain bookkeeping, natural path at the final estimate) and triggers
  // the speculative side (prediction tasks).
  sre::SuperTask root;
  sre::SuperTask* first_pass;
  sre::SuperTask* second_pass;

  std::size_t n_blocks = 0;
  std::size_t n_reduces = 0;

  std::mutex mu;

  /// Blocks whose counts are transitively complete (updated by the serial
  /// reduce chain). Authoritative for chain extension: a speculative chain
  /// built from an older estimate must still cover everything counted by
  /// the time it is wired up.
  std::size_t counted_blocks = 0;

  // First pass.
  std::vector<huff::Histogram> block_hists;  ///< written by count bodies
  std::vector<sre::TaskPtr> count_tasks;
  sre::TaskPtr prev_reduce;
  huff::Histogram prefix;  ///< mutated only by the serial reduce chain
  std::vector<std::shared_ptr<const huff::Histogram>> snapshots;

  // Results.
  stats::BlockTrace trace;
  std::vector<std::optional<huff::EncodedBlock>> out_blocks;
  std::vector<std::uint64_t> out_offsets;
  huff::CodeLengths out_lengths{};
  bool have_table = false;
  bool spec_committed = false;
  std::uint64_t rollbacks = 0;
  bool natural_built = false;

  /// Completion detection (see set_on_complete). Each block's committed
  /// encoding lands exactly once — via the wait-buffer sink (commit or
  /// post-commit pass-through) or the natural encode hook, mutually
  /// exclusive per run by the Speculator's terminal states — and both fill
  /// sites count the empty→set transition under mu.
  std::size_t blocks_filled = 0;
  std::function<void(std::uint64_t)> on_complete;

  /// Called under mu after a fill site sets out_blocks[b]; returns the
  /// callback to fire (outside the lock) when this fill completed the run.
  [[nodiscard]] std::function<void(std::uint64_t)> note_filled_locked() {
    ++blocks_filled;
    if (blocks_filled == n_blocks && have_table) return on_complete;
    return nullptr;
  }

  // Speculation.
  std::optional<Chain> chain;
  std::unique_ptr<tvs::WaitBuffer<std::size_t, SpecResult>> buffer;
  std::unique_ptr<tvs::Speculator<TreeEstimate>> spec;

  /// Predictor racing (PredictorMode::Bank): observes every prefix
  /// histogram, supplies the speculation basis and the gate confidence.
  std::unique_ptr<predict::PredictorBank<huff::Histogram>> bank;

  [[nodiscard]] std::size_t group_begin(std::size_t g) const {
    return g * cfg.ratios.offset_group;
  }
  [[nodiscard]] std::size_t group_end(std::size_t g) const {
    return std::min((g + 1) * cfg.ratios.offset_group, n_blocks);
  }
  [[nodiscard]] std::uint64_t cost(TaskKind kind, std::size_t n = 1) const {
    return cfg.platform.cost.cost(kind, n);
  }
};

HuffmanPipeline::HuffmanPipeline(sre::Runtime& runtime,
                                 const sio::BlockSource& source,
                                 const RunConfig& config)
    : st_(std::make_shared<State>(runtime, source, config)) {
  State& st = *st_;
  st.n_blocks = source.n_blocks();
  const std::size_t R = config.ratios.reduce_ratio;
  if (R == 0 || config.ratios.offset_group == 0) {
    throw std::invalid_argument("HuffmanPipeline: zero ratio");
  }
  st.n_reduces = (st.n_blocks + R - 1) / R;
  st.block_hists.resize(st.n_blocks);
  st.count_tasks.resize(st.n_blocks);
  st.snapshots.resize(st.n_reduces);
  st.trace = stats::BlockTrace(st.n_blocks);
  st.out_blocks.resize(st.n_blocks);
  st.out_offsets.resize(st.n_blocks, 0);

  // A zero-block run has nothing to count, so no code table would ever be
  // built; declare the default (empty, all-zero lengths) table up front so
  // the run is complete as soon as a completion callback is installed,
  // validate_complete passes, and assemble_output emits a valid empty
  // container (all-zero lengths satisfy the Kraft check and decoding zero
  // original bytes never consults the table).
  if (st.n_blocks == 0) st.have_table = true;

  // Wait buffer: commits release speculative results into the output arrays.
  auto stp = st_;
  st.buffer = std::make_unique<tvs::WaitBuffer<std::size_t, SpecResult>>(
      [stp](const std::size_t& block, SpecResult&& r, std::uint64_t now_us) {
        std::function<void(std::uint64_t)> done;
        {
          std::scoped_lock lk(stp->mu);
          if (!stp->out_blocks[block]) done = stp->note_filled_locked();
          stp->out_blocks[block] = std::move(r.enc);
          stp->out_offsets[block] = r.offset;
        }
        if (done) done(now_us);
      },
      /*retire_window=*/8);

  if (config.speculation_enabled()) {
    tvs::Speculator<TreeEstimate>::Callbacks cb;
    cb.build_chain = [stp](const TreeEstimate& guess, sre::Epoch epoch,
                           std::uint32_t gix) {
      build_spec_chain(stp, guess, epoch, gix);
    };
    cb.within_tolerance = [tol = config.spec.tolerance](
                              const TreeEstimate& guess,
                              const TreeEstimate& cur) {
      // The paper's check (§IV-B): compare the compressed size of the data
      // seen so far under both trees; reject when the difference exceeds the
      // tolerance fraction of the newer tree's size.
      const std::uint64_t cur_bits = cur.table->encoded_bits(*cur.hist);
      const std::uint64_t guess_bits = guess.table->encoded_bits(*cur.hist);
      const std::uint64_t diff =
          guess_bits > cur_bits ? guess_bits - cur_bits : cur_bits - guess_bits;
      return static_cast<double>(diff) <=
             tol * static_cast<double>(cur_bits);
    };
    cb.tolerance_margin = [tol = config.spec.tolerance](
                              const TreeEstimate& guess,
                              const TreeEstimate& cur) {
      // Headroom ratio for observability: observed relative size delta over
      // the allowed delta. < 1 passes the check above; ~0 = perfect guess.
      const std::uint64_t cur_bits = cur.table->encoded_bits(*cur.hist);
      const std::uint64_t guess_bits = guess.table->encoded_bits(*cur.hist);
      const std::uint64_t diff =
          guess_bits > cur_bits ? guess_bits - cur_bits : cur_bits - guess_bits;
      const double allowed = tol * static_cast<double>(cur_bits);
      return allowed <= 0.0 ? (diff == 0 ? 0.0 : 1e9)
                            : static_cast<double>(diff) / allowed;
    };
    cb.on_commit = [stp](sre::Epoch epoch, std::uint64_t now_us) {
      {
        std::scoped_lock lk(stp->mu);
        assert(stp->chain && stp->chain->epoch == epoch);
        stp->spec_committed = true;
        stp->out_lengths = stp->chain->table->lengths();
        stp->have_table = true;
      }
      stp->buffer->commit(epoch, now_us);
    };
    cb.on_rollback = [stp](sre::Epoch epoch, std::uint64_t /*now_us*/) {
      {
        std::scoped_lock lk(stp->mu);
        ++stp->rollbacks;
        if (stp->chain && stp->chain->epoch == epoch) {
          stp->chain.reset();
        }
      }
      stp->buffer->drop(epoch);
      if (stp->bank) {
        const std::string charged = stp->bank->charge_rollback();
        if (sre::Observer* obs = stp->rt.observer()) {
          obs->on_predictor_charged(charged);
        }
      }
    };
    cb.build_natural = [stp](const TreeEstimate& final_value,
                             std::uint64_t now_us) {
      build_natural(stp, final_value, now_us);
    };
    st.spec = std::make_unique<tvs::Speculator<TreeEstimate>>(
        runtime, config.spec, std::move(cb), st.cost(TaskKind::Check));
    // In-flight check tasks pin State (a stale check can retire after the
    // run commits and this handle is long gone — see set_task_keepalive).
    st.spec->set_task_keepalive(std::weak_ptr<const void>(stp));
    st.spec->set_stream(config.stream_id);

    if (config.spec.predictor == tvs::PredictorMode::Bank) {
      // Score predictions in the same units as the speculation check: the
      // relative compressed-size delta between the predicted tree and the
      // best tree for the data actually seen, so hit rate estimates "would
      // this predictor's guess have survived a check".
      st.bank = std::make_unique<predict::PredictorBank<huff::Histogram>>(
          config.spec.tolerance,
          [](const huff::Histogram& pred, const huff::Histogram& actual) {
            const auto t_pred = huff::CodeTable::from_lengths(
                huff::HuffmanTree::build(pred.with_floor(1)).lengths());
            const auto t_act = huff::CodeTable::from_lengths(
                huff::HuffmanTree::build(actual.with_floor(1)).lengths());
            const double pb = static_cast<double>(t_pred.encoded_bits(actual));
            const double ab = static_cast<double>(t_act.encoded_bits(actual));
            return ab <= 0.0 ? 0.0 : std::abs(pb - ab) / ab;
          });
      // Registration order is the tie-break: the paper-equivalent baseline
      // predictor stays the safe default until another one earns the lead.
      st.bank->add(std::make_unique<predict::LastValue<huff::Histogram>>());
      st.bank->add(std::make_unique<predict::HistogramMorph>());
      st.bank->add(std::make_unique<predict::Stride<huff::Histogram>>());
      st.bank->add(std::make_unique<predict::Ewma<huff::Histogram>>());
      st.bank->set_score_hook(
          [rt = &st.rt](const std::string& name, bool hit, double err) {
            if (sre::Observer* obs = rt->observer()) {
              obs->on_prediction_scored(name, hit, err);
            }
          });
      tvs::Speculator<TreeEstimate>::PredictorHook hook;
      hook.confidence = [bank = st.bank.get(),
                         n = static_cast<std::uint32_t>(st.n_reduces)](
                            std::uint32_t) { return bank->confidence(n); };
      st.spec->set_predictor_hook(std::move(hook));
    }
  }

  // --- SuperTask wiring ------------------------------------------------
  // Normal-execution subscriber: every new prefix histogram advances the
  // first pass's bookkeeping; the final one feeds the natural second pass
  // when no speculation is running.
  st.first_pass->subscribe_value<EstimateMsg>(
      "histogram", [stp](const EstimateMsg& msg, std::uint64_t now_us) {
        const bool is_final = (msg.reduce_index + 1 == stp->n_reduces);
        {
          std::unique_lock lk(stp->mu);
          const std::size_t counted = std::min(
              (msg.reduce_index + 1) * stp->cfg.ratios.reduce_ratio,
              stp->n_blocks);
          stp->counted_blocks = std::max(stp->counted_blocks, counted);
          if (stp->chain) {
            stp->chain->counted_blocks =
                std::max(stp->chain->counted_blocks, stp->counted_blocks);
            extend_chain_locked(stp, lk);
          }
        }
        if (!stp->spec && is_final) {
          TreeEstimate final_est{stp->snapshots[msg.reduce_index], nullptr};
          build_natural(stp, final_est, now_us);
        }
      });

  if (st.spec) {
    // Speculative side: the histogram port is a flagged speculation basis;
    // each publication may spawn a Control-class prediction task that
    // builds the prefix tree and feeds the Speculator.
    st.first_pass->mark_speculation_basis("histogram");
    st.first_pass->set_speculation_trigger(
        [stp](const sre::SuperTask::Payload& payload, std::uint64_t) {
          const auto& msg =
              *std::static_pointer_cast<const EstimateMsg>(payload);
          const std::size_t r = msg.reduce_index;
          const bool is_final = (r + 1 == stp->n_reduces);
          const auto k = static_cast<std::uint32_t>(r + 1);
          auto snapshot = stp->snapshots[r];
          // The bank sees every estimate (scoring needs the full stream),
          // even the ones the speculator will not consume.
          if (stp->bank) stp->bank->observe(k, *snapshot);
          if (!stp->spec->wants_estimate(k, is_final)) return;

          // "trees are created with every new histogram that in turn
          // generate checking tasks" (paper Fig. 2 caption) — here, only
          // for estimates the speculator will actually consume. Under
          // PredictorMode::Bank the tree's basis is the bank's
          // extrapolation to the *final* histogram — the distribution the
          // final check will actually judge the guess against; the final
          // estimate always uses the exact histogram.
          std::shared_ptr<const huff::Histogram> basis = snapshot;
          if (stp->bank && !is_final) {
            basis = std::make_shared<const huff::Histogram>(
                stp->bank
                    ->predict(static_cast<std::uint32_t>(stp->n_reduces))
                    .guess);
          }
          auto cell = std::make_shared<TreeEstimate>();
          auto tree_task = stp->rt.make_task(
              "tree[" + std::to_string(k) + (is_final ? ",final]" : "]"),
              sre::TaskClass::Control, sre::kNaturalEpoch, /*depth=*/1000,
              stp->cost(TaskKind::TreeBuild),
              [snapshot, basis, cell](sre::TaskContext&) {
                // Flooring guarantees every byte value has a code, so a
                // tree built from a prefix can encode later symbols too.
                const huff::HuffmanTree tree =
                    huff::HuffmanTree::build(basis->with_floor(1));
                // The estimate's histogram stays the *actual* prefix: the
                // tolerance check judges trees on data really seen.
                cell->hist = snapshot;
                cell->table = std::make_shared<const huff::CodeTable>(
                    huff::CodeTable::from_lengths(tree.lengths()));
              },
              stp->cfg.stream_id);
          tree_task->set_mem_bytes(2 * sizeof(huff::Histogram));
          auto spec = stp->spec.get();
          tree_task->add_completion_hook(
              [spec, cell, k, is_final](sre::Task&, std::uint64_t done_us) {
                spec->on_estimate(*cell, k, is_final, done_us);
              });
          stp->rt.submit(tree_task);
        });
  }
}

HuffmanPipeline::HuffmanPipeline(sre::Runtime& runtime,
                                 std::shared_ptr<const sio::BlockSource> source,
                                 const RunConfig& config)
    : HuffmanPipeline(runtime, *source, config) {
  st_->src_keepalive = std::move(source);
}

void HuffmanPipeline::set_on_complete(std::function<void(std::uint64_t)> fn) {
  std::function<void(std::uint64_t)> fire;
  {
    std::scoped_lock lk(st_->mu);
    st_->on_complete = std::move(fn);
    // Zero-block runs qualify immediately: have_table is pre-set in the
    // constructor and no fill will ever happen.
    if (st_->blocks_filled == st_->n_blocks && st_->have_table) {
      fire = st_->on_complete;
    }
  }
  if (fire) fire(0);
}

void HuffmanPipeline::on_block_arrival(std::size_t i, std::uint64_t now_us) {
  auto st = st_;
  const std::size_t R = st->cfg.ratios.reduce_ratio;

  sre::TaskPtr count;
  sre::TaskPtr reduce;
  {
    std::scoped_lock lk(st->mu);
    st->trace.record_arrival(i, now_us);

    count = st->rt.make_task(
        "count[" + std::to_string(i) + "]", sre::TaskClass::Natural,
        sre::kNaturalEpoch, /*depth=*/1, st->cost(TaskKind::Count),
        [st, i](sre::TaskContext&) {
          st->block_hists[i] = huff::Histogram::of(st->src.block(i));
        },
        st->cfg.stream_id);
    count->set_mem_bytes(st->src.block_size() + sizeof(huff::Histogram));
    st->count_tasks[i] = count;

    // The last block of a reduce group (or of the stream) closes that group:
    // create the serial Reduce task folding the group into the prefix.
    const bool closes_group = ((i + 1) % R == 0) || (i + 1 == st->n_blocks);
    if (closes_group) {
      const std::size_t r = i / R;
      const std::size_t begin = r * R;
      const std::size_t end = i + 1;
      reduce = st->rt.make_task(
          "reduce[" + std::to_string(r) + "]", sre::TaskClass::Natural,
          sre::kNaturalEpoch, /*depth=*/2,
          st->cost(TaskKind::Reduce, end - begin),
          [st, r, begin, end](sre::TaskContext&) {
            for (std::size_t b = begin; b < end; ++b) {
              st->prefix.merge(st->block_hists[b]);
            }
            st->snapshots[r] = std::make_shared<huff::Histogram>(st->prefix);
          },
          st->cfg.stream_id);
      reduce->set_mem_bytes((end - begin) * sizeof(huff::Histogram));
      reduce->add_completion_hook(
          [st, r](sre::Task&, std::uint64_t done_us) {
            on_reduce_done(st, r, done_us);
          });
      for (std::size_t b = begin; b < end; ++b) {
        st->rt.add_dependency(st->count_tasks[b], reduce);
      }
      if (st->prev_reduce) {
        st->rt.add_dependency(st->prev_reduce, reduce);
      }
      st->prev_reduce = reduce;
    }
  }
  st->rt.submit(count);
  if (reduce) st->rt.submit(reduce);
}

void HuffmanPipeline::on_reduce_done(const std::shared_ptr<State>& st,
                                     std::size_t r, std::uint64_t now_us) {
  // A Reduce produced a fresh prefix histogram: publish it through the
  // SuperTask hierarchy. The flagged port advances normal execution AND
  // triggers the speculative side (paper §III-B: "the expected data has
  // arrived and should advance normal program execution, and ... trigger a
  // speculative task").
  st->first_pass->publish_value<EstimateMsg>("histogram", {r}, now_us);
}

void HuffmanPipeline::build_spec_chain(const std::shared_ptr<State>& st,
                                       const TreeEstimate& guess,
                                       sre::Epoch epoch,
                                       std::uint32_t estimate_index) {
  std::unique_lock lk(st->mu);
  Chain chain;
  chain.epoch = epoch;
  chain.table = guess.table;
  chain.offsets = std::make_shared<std::vector<std::uint64_t>>(st->n_blocks, 0);
  chain.arena = st->rt.make_epoch_arenas(epoch);
  // Cover everything counted so far, not just the estimate's prefix: more
  // reduces may have completed while the prediction task was in flight.
  chain.counted_blocks = std::max(
      std::min(static_cast<std::size_t>(estimate_index) *
                   st->cfg.ratios.reduce_ratio,
               st->n_blocks),
      st->counted_blocks);
  st->chain = std::move(chain);
  extend_chain_locked(st, lk);
}

void HuffmanPipeline::extend_chain_locked(const std::shared_ptr<State>& st,
                                          std::unique_lock<std::mutex>& lk) {
  assert(lk.owns_lock());
  (void)lk;
  Chain& chain = *st->chain;
  const std::size_t G = st->cfg.ratios.offset_group;

  while (chain.next_group * G < st->n_blocks &&
         st->group_end(chain.next_group) <= chain.counted_blocks) {
    const std::size_t g = chain.next_group++;
    const std::size_t begin = st->group_begin(g);
    const std::size_t end = st->group_end(g);
    const sre::Epoch epoch = chain.epoch;
    auto table = chain.table;
    auto offsets = chain.offsets;
    auto prev_end = chain.prev_end;
    auto group_end_slot = sre::make_slot<std::uint64_t>();

    auto offset_task = st->rt.make_task(
        "spec-offset[" + std::to_string(g) + ",e" + std::to_string(epoch) + "]",
        sre::TaskClass::Speculative, epoch, /*depth=*/4,
        st->cost(TaskKind::Offset, end - begin),
        [st, begin, end, table, offsets, prev_end, group_end_slot](
            sre::TaskContext&) {
          const std::uint64_t start = prev_end ? prev_end->get() : 0;
          const huff::OffsetGroup og = huff::compute_offsets(
              std::span<const huff::Histogram>(st->block_hists)
                  .subspan(begin, end - begin),
              *table, start);
          for (std::size_t b = begin; b < end; ++b) {
            (*offsets)[b] = og.block_offsets[b - begin];
          }
          group_end_slot->set(og.end_offset);
        },
        st->cfg.stream_id);
    offset_task->set_mem_bytes((end - begin) * sizeof(huff::Histogram));
    for (std::size_t b = begin; b < end; ++b) {
      st->rt.add_dependency(st->count_tasks[b], offset_task);
    }
    if (chain.prev_offset) {
      st->rt.add_dependency(chain.prev_offset, offset_task);
    }
    chain.prev_offset = offset_task;
    chain.prev_end = group_end_slot;
    st->rt.submit(offset_task);

    for (std::size_t b = begin; b < end; ++b) {
      auto enc = std::make_shared<huff::EncodedBlock>();
      auto arena = chain.arena;
      auto encode_task = st->rt.make_task(
          "spec-encode[" + std::to_string(b) + ",e" + std::to_string(epoch) +
              "]",
          sre::TaskClass::Speculative, epoch, /*depth=*/5,
          st->cost(TaskKind::Encode),
          [st, b, table, enc, arena](sre::TaskContext& ctx) {
            *enc = encode_into_lane(st->src.block(b), st->block_hists[b],
                                    *table, arena, ctx.worker);
          },
          st->cfg.stream_id);
      encode_task->set_mem_bytes(3 * st->src.block_size() +
                                 sizeof(huff::CodeTable));
      encode_task->add_completion_hook(
          [st, b, enc, offsets, epoch](sre::Task&, std::uint64_t done_us) {
            std::uint64_t offset = 0;
            {
              std::scoped_lock hlk(st->mu);
              st->trace.record_done(b, done_us, /*speculative=*/true);
              offset = (*offsets)[b];
            }
            st->buffer->add(epoch, b, SpecResult{std::move(*enc), offset},
                            done_us);
            st->second_pass->publish_value<BlockDoneMsg>("block-done",
                                                         {b, true}, done_us);
          });
      st->rt.add_dependency(offset_task, encode_task);
      st->rt.submit(encode_task);
    }
  }
}

void HuffmanPipeline::build_natural(const std::shared_ptr<State>& st,
                                    const TreeEstimate& final_value,
                                    std::uint64_t /*now_us*/) {
  {
    std::scoped_lock lk(st->mu);
    if (st->natural_built) {
      throw std::logic_error("HuffmanPipeline: natural path built twice");
    }
    st->natural_built = true;
  }

  // Natural tree task: exact (unfloored) table from the complete histogram.
  auto hist = final_value.hist;
  auto table_cell = std::make_shared<std::shared_ptr<const huff::CodeTable>>();
  auto tree_task = st->rt.make_task(
      "tree[natural]", sre::TaskClass::Natural, sre::kNaturalEpoch,
      /*depth=*/3, st->cost(TaskKind::TreeBuild),
      [hist, table_cell](sre::TaskContext&) {
        *table_cell = std::make_shared<const huff::CodeTable>(
            huff::CodeTable::from_histogram(*hist));
      },
      st->cfg.stream_id);
  tree_task->set_mem_bytes(2 * sizeof(huff::Histogram));

  tree_task->add_completion_hook([st, table_cell](sre::Task&,
                                                  std::uint64_t) {
    // All counts finished (the final reduce ran), so the whole natural
    // second pass can be laid out at once: serial offset chain, parallel
    // encodes.
    auto table = *table_cell;
    {
      std::scoped_lock lk(st->mu);
      st->out_lengths = table->lengths();
      st->have_table = true;
    }
    const std::size_t G = st->cfg.ratios.offset_group;
    const std::size_t n_groups = (st->n_blocks + G - 1) / G;
    auto offsets = std::make_shared<std::vector<std::uint64_t>>(st->n_blocks, 0);
    // Natural-path arenas: same wholesale-reclamation story, keyed to the
    // run instead of a speculative epoch — freed when the last committed
    // result is released.
    auto arena = st->rt.make_epoch_arenas(sre::kNaturalEpoch);
    sre::TaskPtr prev_offset;
    std::shared_ptr<sre::Slot<std::uint64_t>> prev_end;

    for (std::size_t g = 0; g < n_groups; ++g) {
      const std::size_t begin = st->group_begin(g);
      const std::size_t end = st->group_end(g);
      auto group_end_slot = sre::make_slot<std::uint64_t>();
      auto prev_end_cap = prev_end;
      auto offset_task = st->rt.make_task(
          "offset[" + std::to_string(g) + "]", sre::TaskClass::Natural,
          sre::kNaturalEpoch, /*depth=*/4, st->cost(TaskKind::Offset, end - begin),
          [st, begin, end, table, offsets, prev_end_cap, group_end_slot](
              sre::TaskContext&) {
            const std::uint64_t start = prev_end_cap ? prev_end_cap->get() : 0;
            const huff::OffsetGroup og = huff::compute_offsets(
                std::span<const huff::Histogram>(st->block_hists)
                    .subspan(begin, end - begin),
                *table, start);
            for (std::size_t b = begin; b < end; ++b) {
              (*offsets)[b] = og.block_offsets[b - begin];
            }
            group_end_slot->set(og.end_offset);
          },
          st->cfg.stream_id);
      offset_task->set_mem_bytes((end - begin) * sizeof(huff::Histogram));
      if (prev_offset) st->rt.add_dependency(prev_offset, offset_task);
      prev_offset = offset_task;
      prev_end = group_end_slot;
      st->rt.submit(offset_task);

      for (std::size_t b = begin; b < end; ++b) {
        auto enc = std::make_shared<huff::EncodedBlock>();
        auto encode_task = st->rt.make_task(
            "encode[" + std::to_string(b) + "]", sre::TaskClass::Natural,
            sre::kNaturalEpoch, /*depth=*/5, st->cost(TaskKind::Encode),
            [st, b, table, enc, arena](sre::TaskContext& ctx) {
              *enc = encode_into_lane(st->src.block(b), st->block_hists[b],
                                      *table, arena, ctx.worker);
            },
            st->cfg.stream_id);
        encode_task->set_mem_bytes(3 * st->src.block_size() +
                                   sizeof(huff::CodeTable));
        encode_task->add_completion_hook(
            [st, b, enc, offsets](sre::Task&, std::uint64_t done_us) {
              std::function<void(std::uint64_t)> done;
              {
                std::scoped_lock lk(st->mu);
                st->trace.record_done(b, done_us, /*speculative=*/false);
                if (!st->out_blocks[b]) done = st->note_filled_locked();
                st->out_blocks[b] = std::move(*enc);
                st->out_offsets[b] = (*offsets)[b];
              }
              st->second_pass->publish_value<BlockDoneMsg>(
                  "block-done", {b, false}, done_us);
              if (done) done(done_us);
            });
        st->rt.add_dependency(offset_task, encode_task);
        st->rt.submit(encode_task);
      }
    }
  });
  st->rt.submit(tree_task);
}

const stats::BlockTrace& HuffmanPipeline::trace() const { return st_->trace; }

sre::SuperTask& HuffmanPipeline::root_supertask() { return st_->root; }

bool HuffmanPipeline::speculation_committed() const {
  std::scoped_lock lk(st_->mu);
  return st_->spec_committed;
}

std::size_t HuffmanPipeline::wait_discarded() const {
  return st_->buffer->discarded();
}

std::size_t HuffmanPipeline::wait_pending() const {
  return st_->buffer->total_pending();
}

std::uint64_t HuffmanPipeline::rollbacks() const {
  std::scoped_lock lk(st_->mu);
  return st_->rollbacks;
}

// The spec pointer is written once at construction and never reset, so
// these reach it without the State lock; the Speculator's own mutex orders
// the retune against estimates and verdicts.
bool HuffmanPipeline::retune_spec(const tvs::SpecConfig& next) {
  if (!st_->spec) return false;
  st_->spec->retune(next);
  return true;
}

tvs::SpecConfig HuffmanPipeline::spec_config() const {
  return st_->spec ? st_->spec->config() : st_->cfg.spec;
}

std::uint64_t HuffmanPipeline::spec_retunes() const {
  return st_->spec ? st_->spec->retunes() : 0;
}

stats::PredictorScoreboard HuffmanPipeline::predictor_scoreboard() const {
  return st_->bank ? st_->bank->scoreboard() : stats::PredictorScoreboard{};
}

std::uint64_t HuffmanPipeline::gate_denials() const {
  return st_->spec ? st_->spec->gate_denials() : 0;
}

std::string HuffmanPipeline::best_predictor() const {
  return st_->bank ? st_->bank->best_name() : std::string{};
}

void HuffmanPipeline::validate_complete() const {
  std::scoped_lock lk(st_->mu);
  if (!st_->have_table) {
    throw std::logic_error("HuffmanPipeline: run produced no code table");
  }
  for (std::size_t b = 0; b < st_->n_blocks; ++b) {
    if (!st_->out_blocks[b].has_value()) {
      throw std::logic_error("HuffmanPipeline: block " + std::to_string(b) +
                             " has no committed encoding");
    }
    if (!st_->trace.at(b).completed()) {
      throw std::logic_error("HuffmanPipeline: block " + std::to_string(b) +
                             " missing completion timestamp");
    }
  }
}

std::uint64_t HuffmanPipeline::output_bits() const {
  std::scoped_lock lk(st_->mu);
  std::uint64_t end = 0;
  for (std::size_t b = 0; b < st_->n_blocks; ++b) {
    if (st_->out_blocks[b]) {
      end = std::max(end, st_->out_offsets[b] + st_->out_blocks[b]->bit_count);
    }
  }
  return end;
}

std::vector<std::uint8_t> HuffmanPipeline::assemble_output() const {
  std::scoped_lock lk(st_->mu);
  huff::CompressedStream s;
  s.original_bytes = st_->src.total_bytes();
  s.n_blocks = static_cast<std::uint32_t>(st_->n_blocks);
  s.block_size = static_cast<std::uint32_t>(st_->src.block_size());
  s.lengths = st_->out_lengths;

  std::vector<huff::EncodedBlock> blocks;
  blocks.reserve(st_->n_blocks);
  std::uint64_t end_bit = 0;
  for (std::size_t b = 0; b < st_->n_blocks; ++b) {
    if (!st_->out_blocks[b]) {
      throw std::logic_error("assemble_output: incomplete run");
    }
    blocks.push_back(*st_->out_blocks[b]);
    end_bit = std::max(end_bit,
                       st_->out_offsets[b] + st_->out_blocks[b]->bit_count);
  }
  s.payload = huff::assemble(blocks, st_->out_offsets);
  s.payload_bits = end_bit;
  // The Offset phase computed every block's position anyway: embed the
  // random-access index for free.
  s.block_offsets = st_->out_offsets;
  return huff::serialize(s);
}

}  // namespace pipeline
