#include "pipeline/driver.h"

#include <memory>
#include <stdexcept>

#include "huffman/stream_format.h"
#include "huffman/tree.h"
#include "io/block_source.h"
#include "pipeline/huffman_pipeline.h"
#include "sim/sim_executor.h"
#include "sre/threaded_executor.h"

namespace pipeline {
namespace {

std::shared_ptr<const sio::ArrivalModel> make_arrivals(const RunConfig& cfg) {
  switch (cfg.io) {
    case IoMode::Disk:
      return std::make_shared<sio::DiskArrival>();
    case IoMode::Socket:
      return std::make_shared<sio::SocketArrival>(cfg.socket_per_block_us,
                                                  cfg.socket_jitter_us);
  }
  throw std::invalid_argument("make_arrivals: unknown IO mode");
}

sio::BlockSource make_source(const RunConfig& cfg) {
  auto data = cfg.input_path.empty()
                  ? wl::make_corpus(cfg.file, cfg.bytes, cfg.seed)
                  : huff::read_file(cfg.input_path);
  return sio::BlockSource(std::move(data), cfg.ratios.block_size,
                          make_arrivals(cfg));
}

RunResult collect(const sio::BlockSource& src, const HuffmanPipeline& pl,
                  sre::Runtime& rt, stats::Micros makespan) {
  pl.validate_complete();
  RunResult res;
  res.trace = pl.trace();
  res.counters = rt.counters();
  res.makespan_us = makespan;
  res.spec_committed = pl.speculation_committed();
  res.rollbacks = pl.rollbacks();
  res.wait_discarded = pl.wait_discarded();
  res.output_bits = pl.output_bits();
  res.natural_dispatches = rt.pool().natural_pops();
  res.spec_dispatches = rt.pool().speculative_pops();
  res.predictors = pl.predictor_scoreboard();
  res.best_predictor = pl.best_predictor();
  res.gate_denials = pl.gate_denials();
  res.input.assign(src.bytes().begin(), src.bytes().end());
  res.container = pl.assemble_output();
  return res;
}

}  // namespace

double RunResult::avg_latency_us() const {
  const auto lats = trace.latencies();
  if (lats.empty()) return 0.0;
  double sum = 0.0;
  for (auto l : lats) sum += static_cast<double>(l);
  return sum / static_cast<double>(lats.size());
}

stats::Summary RunResult::latency_summary() const {
  return stats::summarize(trace.latencies());
}

RunResult run_sim(const RunConfig& config, sre::Observer* observer) {
  sio::BlockSource src = make_source(config);
  sre::Runtime rt(config.policy, config.priority_mode);
  if (observer) rt.set_observer(observer);
  sim::SimExecutor ex(rt, config.platform);
  HuffmanPipeline pl(rt, src, config);

  src.for_each_arrival([&](std::size_t i, sio::Micros at) {
    ex.schedule_arrival(at, [&pl, i](sim::Micros now) {
      pl.on_block_arrival(i, now);
    });
  });
  ex.run();
  return collect(src, pl, rt, ex.makespan_us());
}

RunResult run_threaded(const RunConfig& config, unsigned workers,
                       double arrival_time_scale) {
  sio::BlockSource src = make_source(config);
  sre::Runtime rt(config.policy, config.priority_mode);
  sre::ThreadedExecutor::Options opts;
  opts.workers = workers;
  opts.arrival_time_scale = arrival_time_scale;
  sre::ThreadedExecutor ex(rt, opts);
  HuffmanPipeline pl(rt, src, config);

  src.for_each_arrival([&](std::size_t i, sio::Micros at) {
    ex.schedule_arrival(at, [&pl, i](std::uint64_t now) {
      pl.on_block_arrival(i, now);
    });
  });
  ex.run();
  return collect(src, pl, rt, rt.counters().total_runtime_us);
}

void verify_roundtrip(const RunResult& result) {
  const auto decoded = huff::decompress_buffer(result.container);
  if (decoded.size() != result.input.size()) {
    throw std::logic_error("verify_roundtrip: size mismatch (" +
                           std::to_string(decoded.size()) + " vs " +
                           std::to_string(result.input.size()) + ")");
  }
  if (decoded != result.input) {
    throw std::logic_error("verify_roundtrip: content mismatch");
  }
}

double size_overhead_vs_optimal(const RunResult& result) {
  const huff::Histogram hist = huff::Histogram::of(result.input);
  const huff::HuffmanTree tree = huff::HuffmanTree::build(hist);
  const auto optimal = static_cast<double>(tree.encoded_bits(hist));
  if (optimal == 0.0) return 0.0;
  return (static_cast<double>(result.output_bits) - optimal) / optimal;
}

}  // namespace pipeline
