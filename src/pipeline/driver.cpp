#include "pipeline/driver.h"

#include <algorithm>
#include <memory>
#include <optional>
#include <stdexcept>

#include "control/controller.h"
#include "flight/observer.h"
#include "huffman/stream_format.h"
#include "huffman/tree.h"
#include "io/block_source.h"
#include "metrics/observer.h"
#include "pipeline/huffman_pipeline.h"
#include "sim/sim_executor.h"
#include "sre/threaded_executor.h"

namespace pipeline {
namespace {

std::shared_ptr<const sio::ArrivalModel> make_arrivals(const RunConfig& cfg) {
  switch (cfg.io) {
    case IoMode::Disk:
      return std::make_shared<sio::DiskArrival>();
    case IoMode::Socket:
      return std::make_shared<sio::SocketArrival>(cfg.socket_per_block_us,
                                                  cfg.socket_jitter_us);
  }
  throw std::invalid_argument("make_arrivals: unknown IO mode");
}

sio::BlockSource make_source(const RunConfig& cfg) {
  if (!cfg.input_path.empty()) {
    // Zero-copy path: blocks are spans over the page cache. Fall back to a
    // read() copy where mmap is unavailable (odd filesystems, platforms).
    try {
      return sio::BlockSource::map_file(cfg.input_path, cfg.ratios.block_size,
                                        make_arrivals(cfg));
    } catch (const std::runtime_error&) {
      return sio::BlockSource(huff::read_file(cfg.input_path),
                              cfg.ratios.block_size, make_arrivals(cfg));
    }
  }
  return sio::BlockSource(wl::make_corpus(cfg.file, cfg.bytes, cfg.seed),
                          cfg.ratios.block_size, make_arrivals(cfg));
}

/// Mirrors the runtime's arena counters (sre::ArenaStats) into the
/// tvs_alloc_* registry family. Counters are monotonic and the registry
/// outlives runs that share a runtime, so mirror the *delta* since the
/// previous call for the same registry/runtime pair.
void mirror_alloc_stats(metrics::Registry& reg, const sre::ArenaStats& before,
                        const sre::ArenaStats& after) {
  reg.counter("tvs_alloc_arena_allocs_total").add(after.allocs - before.allocs);
  reg.counter("tvs_alloc_arena_bytes_total").add(after.bytes - before.bytes);
  reg.counter("tvs_alloc_arena_chunks_total", "origin=\"malloc\"")
      .add(after.chunks_new - before.chunks_new);
  reg.counter("tvs_alloc_arena_chunks_total", "origin=\"recycled\"")
      .add(after.chunks_reused - before.chunks_reused);
  reg.counter("tvs_alloc_arena_oversize_total")
      .add(after.oversize - before.oversize);
}

RunResult collect(const sio::BlockSource& src, const HuffmanPipeline& pl,
                  sre::Runtime& rt, stats::Micros makespan) {
  pl.validate_complete();
  RunResult res;
  res.trace = pl.trace();
  res.counters = rt.counters();
  res.makespan_us = makespan;
  res.spec_committed = pl.speculation_committed();
  res.rollbacks = pl.rollbacks();
  res.wait_discarded = pl.wait_discarded();
  res.output_bits = pl.output_bits();
  res.natural_dispatches = rt.pool().natural_pops();
  res.spec_dispatches = rt.pool().speculative_pops();
  res.control_dispatches = rt.pool().control_pops();
  res.predictors = pl.predictor_scoreboard();
  res.best_predictor = pl.best_predictor();
  res.gate_denials = pl.gate_denials();
  res.input.assign(src.bytes().begin(), src.bytes().end());
  res.container = pl.assemble_output();
  return res;
}

/// Composes the effective observer for a run: the metrics bridge (if a
/// registry was given), fanned together with the caller's observer when
/// both exist. Owns the MetricsObserver; keep alive for the run.
struct ObserverStack {
  std::optional<metrics::MetricsObserver> metrics_obs;
  std::optional<flight::FlightObserver> flight_obs;
  sre::FanoutObserver fan;
  sre::Observer* effective = nullptr;

  ObserverStack(const RunOptions& opt) {
    if (opt.registry) metrics_obs.emplace(*opt.registry);
    if (opt.flight) flight_obs.emplace(*opt.flight);
    sre::Observer* parts[3] = {};
    std::size_t n = 0;
    if (metrics_obs) parts[n++] = &*metrics_obs;
    if (flight_obs) parts[n++] = &*flight_obs;
    if (opt.observer) parts[n++] = opt.observer;
    if (n == 1) {
      effective = parts[0];
    } else if (n > 1) {
      for (std::size_t i = 0; i < n; ++i) fan.add(parts[i]);
      effective = &fan;
    }
  }
};

}  // namespace

// The first series refreshes a shared QueueDepths / Snapshot probe so each
// tick costs one runtime lock acquisition and (with a registry) one registry
// sweep, regardless of how many series read from them.
void install_standard_series(metrics::Sampler& s, sre::Runtime& rt,
                             const HuffmanPipeline& pl,
                             metrics::Registry* reg) {
  auto depths = std::make_shared<sre::Runtime::QueueDepths>();
  s.add_series("ready_control", [&rt, depths] {
    *depths = rt.queue_depths();
    return static_cast<double>(depths->ready_control);
  });
  s.add_series("ready_natural", [depths] {
    return static_cast<double>(depths->ready_natural);
  });
  s.add_series("ready_speculative", [depths] {
    return static_cast<double>(depths->ready_speculative);
  });
  s.add_series("blocked", [depths] {
    return static_cast<double>(depths->blocked);
  });
  s.add_series("running", [depths] {
    return static_cast<double>(depths->running);
  });
  s.add_series("open_epochs", [depths] {
    return static_cast<double>(depths->open_epochs);
  });
  s.add_series("epoch_tasks", [depths] {
    return static_cast<double>(depths->epoch_tasks);
  });
  s.add_series("wait_pending", [&pl] {
    return static_cast<double>(pl.wait_pending());
  });
  if (!reg) return;

  // counter_sum is one registry lock + a handful of counter reads; a full
  // snapshot() would copy every histogram's shards on every tick.
  s.add_series("predictor_hit_rate", [reg] {
    const double total = reg->counter_sum("tvs_predictions_scored_total");
    const double hits =
        reg->counter_sum("tvs_predictions_scored_total", "hit=\"true\"");
    return total == 0.0 ? 0.0 : hits / total;
  });
  s.add_series("spec_cpu_share", [reg] {
    const double spec =
        reg->counter_sum("tvs_cpu_time_us_total", "class=\"speculative\"");
    const double nat =
        reg->counter_sum("tvs_cpu_time_us_total", "class=\"natural\"");
    const double all = spec + nat;
    return all == 0.0 ? 0.0 : spec / all;
  });
  s.add_series("rollbacks", [reg] {
    return reg->counter_sum("tvs_epochs_aborted_total");
  });
}

double RunResult::avg_latency_us() const {
  const auto lats = trace.latencies();
  if (lats.empty()) return 0.0;
  double sum = 0.0;
  for (auto l : lats) sum += static_cast<double>(l);
  return sum / static_cast<double>(lats.size());
}

stats::Summary RunResult::latency_summary() const {
  return stats::summarize(trace.latencies());
}

RunResult run_sim(const RunConfig& config, const RunOptions& options) {
  sio::BlockSource src = make_source(config);
  sre::Runtime rt(config.policy, config.priority_mode);
  const sre::ArenaStats alloc_before = rt.arena_stats();
  ObserverStack obs(options);
  if (obs.effective) rt.set_observer(obs.effective);
  sim::SimExecutor ex(rt, config.platform);
  HuffmanPipeline pl(rt, src, config);

  src.for_each_arrival([&](std::size_t i, sio::Micros at) {
    ex.schedule_arrival(at, [&pl, i](sim::Micros now) {
      pl.on_block_arrival(i, now);
    });
  });

  // Sampling on virtual time: a self-re-arming zero-cost tick event. It
  // stops re-arming once it is the only thing left on the queue and the
  // runtime has drained, so the simulation still terminates.
  std::shared_ptr<std::function<void(sim::Micros)>> tick_keepalive;
  if (options.sampler) {
    install_standard_series(*options.sampler, rt, pl, options.registry);
    const std::uint64_t interval =
        std::max<std::uint64_t>(1, options.sample_interval_us);
    tick_keepalive = std::make_shared<std::function<void(sim::Micros)>>();
    std::weak_ptr<std::function<void(sim::Micros)>> weak = tick_keepalive;
    *tick_keepalive = [&ex, &rt, s = options.sampler, interval,
                       weak](sim::Micros now) {
      s->tick(now);
      if (ex.pending_events() > 0 || !rt.quiescent()) {
        if (auto self = weak.lock()) ex.schedule_arrival(now + interval, *self);
      }
    };
    ex.schedule_arrival(interval, *tick_keepalive);
  }

  // The adaptive control plane on virtual time: the same self-re-arming
  // zero-cost event pattern as the sampler, so controller runs are
  // deterministic and controller-less runs are bit-identical.
  std::shared_ptr<std::function<void(sim::Micros)>> ctl_keepalive;
  if (options.controller != nullptr && options.controller->config().enabled &&
      config.spec.speculation_enabled()) {
    control::Controller* ctl = options.controller;
    const std::uint64_t interval =
        std::max<std::uint64_t>(1, ctl->config().interval_us);
    ctl_keepalive = std::make_shared<std::function<void(sim::Micros)>>();
    std::weak_ptr<std::function<void(sim::Micros)>> weak = ctl_keepalive;
    auto last_rb = std::make_shared<std::uint64_t>(0);
    auto last_t = std::make_shared<std::uint64_t>(0);
    *ctl_keepalive = [&ex, &rt, &pl, &config, ctl, interval, weak, last_rb,
                      last_t](sim::Micros now) {
      const std::uint64_t rb = pl.rollbacks();
      const std::uint64_t dt = now > *last_t ? now - *last_t : 0;
      const double rate =
          dt == 0 ? 0.0
                  : static_cast<double>(rb - *last_rb) * 1e6 /
                        static_cast<double>(dt);
      *last_rb = rb;
      *last_t = now;
      control::SpecTuner& tuner = ctl->stream(1, config.spec.confidence_gate,
                                              config.spec.step_size);
      if (!tuner.sample(rate, now).empty()) {
        tvs::SpecConfig next = config.spec;
        next.confidence_gate = tuner.confidence_gate();
        next.restart_min_defer = tuner.restart_min_defer();
        next.step_size = tuner.step_size();
        pl.retune_spec(next);
      }
      if (ex.pending_events() > 0 || !rt.quiescent()) {
        if (auto self = weak.lock()) ex.schedule_arrival(now + interval, *self);
      }
    };
    ex.schedule_arrival(interval, *ctl_keepalive);
  }

  ex.run();
  if (options.sampler) {
    // Closing row at the makespan — unless the last in-run tick already
    // covers it (trailing ticks can land at or after the last completion).
    const auto rows = options.sampler->samples();
    if (rows.empty() || rows.back().t_us < ex.makespan_us()) {
      options.sampler->tick(ex.makespan_us());
    }
    options.sampler->clear_series();
  }
  RunResult res = collect(src, pl, rt, ex.makespan_us());
  if (options.registry) {
    mirror_alloc_stats(*options.registry, alloc_before, rt.arena_stats());
  }
  return res;
}

RunResult run_sim(const RunConfig& config, sre::Observer* observer) {
  RunOptions opt;
  opt.observer = observer;
  return run_sim(config, opt);
}

RunResult run_threaded(const RunConfig& config, const RunOptions& options) {
  sio::BlockSource src = make_source(config);
  sre::Runtime rt(config.policy, config.priority_mode);
  const sre::ArenaStats alloc_before = rt.arena_stats();
  ObserverStack obs(options);
  if (obs.effective) rt.set_observer(obs.effective);
  sre::ThreadedExecutor::Options topts;
  topts.workers = options.workers;
  topts.arrival_time_scale = options.arrival_time_scale;
  topts.dispatch = options.dispatch;
  if (options.registry) {
    // Pin each worker to its own metrics shard: deterministic, no false
    // sharing between workers.
    topts.worker_start_hook = [](unsigned ix) {
      metrics::bind_shard(ix % metrics::kShards);
    };
  }
  sre::ThreadedExecutor ex(rt, topts);
  HuffmanPipeline pl(rt, src, config);

  src.for_each_arrival([&](std::size_t i, sio::Micros at) {
    ex.schedule_arrival(at, [&pl, i](std::uint64_t now) {
      pl.on_block_arrival(i, now);
    });
  });

  if (options.sampler) {
    install_standard_series(*options.sampler, rt, pl, options.registry);
    options.sampler->start(
        std::max<std::uint64_t>(1, options.sample_interval_us));
  }
  ex.run();
  if (options.sampler) {
    options.sampler->stop();
    options.sampler->tick(ex.now_us());  // closing row at engine time
    options.sampler->clear_series();
  }
  RunResult res = collect(src, pl, rt, rt.counters().total_runtime_us);
  res.dispatch = ex.dispatch_stats();
  if (options.registry) {
    // Mirror the scheduler-path counters into the registry so report bundles
    // carry them alongside the speculation metrics.
    metrics::Registry& reg = *options.registry;
    const auto& d = res.dispatch;
    reg.counter("tvs_dispatch_acquires_total", "source=\"local\"")
        .add(d.local_pops);
    reg.counter("tvs_dispatch_acquires_total", "source=\"inbox\"")
        .add(d.inbox_pops);
    reg.counter("tvs_dispatch_acquires_total", "source=\"steal\"")
        .add(d.steals);
    reg.counter("tvs_dispatch_acquires_total", "source=\"self_stage\"")
        .add(d.self_stages);
    reg.counter("tvs_dispatch_revoked_at_pop_total").add(d.revoked_at_pop);
    reg.counter("tvs_dispatch_worker_parks_total").add(d.parks);
    reg.counter("tvs_dispatch_completion_fallbacks_total")
        .add(d.completion_fallbacks);
    mirror_alloc_stats(reg, alloc_before, rt.arena_stats());
  }
  return res;
}

RunResult run_threaded(const RunConfig& config, unsigned workers,
                       double arrival_time_scale) {
  RunOptions opt;
  opt.workers = workers;
  opt.arrival_time_scale = arrival_time_scale;
  return run_threaded(config, opt);
}

SharedRun::SharedRun() = default;
SharedRun::SharedRun(SharedRun&&) noexcept = default;
SharedRun& SharedRun::operator=(SharedRun&&) noexcept = default;
SharedRun::~SharedRun() = default;

SharedRun begin_shared_run(const RunConfig& config, sre::Runtime& runtime,
                           sre::ThreadedExecutor& ex, double block_time_scale,
                           std::function<void(std::uint64_t)> on_complete,
                           std::function<void(std::uint64_t)> on_last_arrival) {
  SharedRun run;
  run.source = std::make_shared<const sio::BlockSource>(make_source(config));
  // The shared_ptr overload: the pipeline's state co-owns the source, so
  // the session can be destroyed as soon as results are collected even if
  // stray aborted tasks are still draining on the shared executor.
  run.pipeline =
      std::make_unique<HuffmanPipeline>(runtime, run.source, config);
  if (on_complete) {
    // A zero-block run completes synchronously inside set_on_complete,
    // which has no clock and fires with t == 0; substitute the engine's
    // current time so session latency/makespan stay meaningful.
    sre::ThreadedExecutor* exp = &ex;
    run.pipeline->set_on_complete(
        [cb = std::move(on_complete), exp](std::uint64_t t) {
          cb(t != 0 ? t : exp->now_us());
        });
  }

  // Offset the session's arrival schedule to "now" and scale it here rather
  // than through Options::arrival_time_scale — the executor is shared, and
  // its global scale would stretch every other session too.
  run.base_us = ex.now_us();
  const std::size_t n = run.source->n_blocks();
  HuffmanPipeline* pl = run.pipeline.get();
  std::uint64_t last_at = 0;
  run.source->for_each_arrival([&](std::size_t i, sio::Micros at) {
    const auto scaled = run.base_us + static_cast<std::uint64_t>(
                                          static_cast<double>(at) *
                                          block_time_scale);
    last_at = std::max(last_at, scaled);
    ex.schedule_arrival(scaled, [pl, i](std::uint64_t now) {
      pl->on_block_arrival(i, now);
    });
  });
  if (on_last_arrival) {
    // Equal-time arrivals fire in submission order, so this lands strictly
    // after the final on_block_arrival — the session is fully injected.
    if (n == 0) last_at = run.base_us;
    ex.schedule_arrival(last_at, std::move(on_last_arrival));
  }
  return run;
}

RunResult collect_shared_run(const SharedRun& run, std::uint64_t done_us) {
  const HuffmanPipeline& pl = *run.pipeline;
  pl.validate_complete();
  RunResult res;
  res.trace = pl.trace();
  res.makespan_us = done_us > run.base_us ? done_us - run.base_us : 0;
  res.spec_committed = pl.speculation_committed();
  res.rollbacks = pl.rollbacks();
  res.wait_discarded = pl.wait_discarded();
  res.output_bits = pl.output_bits();
  res.predictors = pl.predictor_scoreboard();
  res.best_predictor = pl.best_predictor();
  res.gate_denials = pl.gate_denials();
  res.input.assign(run.source->bytes().begin(), run.source->bytes().end());
  res.container = pl.assemble_output();
  return res;
}

report::RunInfo run_info(const RunConfig& config, const RunResult& result,
                         const std::string& engine) {
  report::RunInfo info;
  info.scenario = config.label();
  info.engine = engine;
  info.makespan_us = result.makespan_us;
  info.blocks = result.trace.size();
  info.avg_latency_us = result.avg_latency_us();
  const stats::Summary lat = result.latency_summary();
  info.p95_latency_us = lat.p95;
  info.max_latency_us = lat.max;
  info.spec_committed = result.spec_committed;
  info.rollbacks = result.rollbacks;
  info.gate_denials = result.gate_denials;
  info.wasted_encodes = result.trace.wasted_encodes();
  info.wait_discarded = result.wait_discarded;
  info.input_bytes = result.input.size();
  info.output_bits = result.output_bits;
  info.best_predictor = result.best_predictor;
  info.counters = result.counters;
  info.predictors = result.predictors;
  // All-zero under run_sim / Central dispatch (see RunResult::dispatch);
  // the report layer omits the section in that case rather than printing
  // a wall of zeros that looks like a measurement.
  const auto& d = result.dispatch;
  info.dispatch.tasks_run = d.tasks_run;
  info.dispatch.local_pops = d.local_pops;
  info.dispatch.inbox_pops = d.inbox_pops;
  info.dispatch.steals = d.steals;
  info.dispatch.self_stages = d.self_stages;
  info.dispatch.director_stages = d.director_stages;
  info.dispatch.revoked_at_pop = d.revoked_at_pop;
  info.dispatch.parks = d.parks;
  info.dispatch.completion_fallbacks = d.completion_fallbacks;
  info.dispatch.inline_finishes = d.inline_finishes;
  info.dispatch.worker_retires = d.worker_retires;
  return info;
}

void verify_roundtrip(const RunResult& result) {
  const auto decoded = huff::decompress_buffer(result.container);
  if (decoded.size() != result.input.size()) {
    throw std::logic_error("verify_roundtrip: size mismatch (" +
                           std::to_string(decoded.size()) + " vs " +
                           std::to_string(result.input.size()) + ")");
  }
  if (decoded != result.input) {
    throw std::logic_error("verify_roundtrip: content mismatch");
  }
}

double size_overhead_vs_optimal(const RunResult& result) {
  const huff::Histogram hist = huff::Histogram::of(result.input);
  const huff::HuffmanTree tree = huff::HuffmanTree::build(hist);
  const auto optimal = static_cast<double>(tree.encoded_bits(hist));
  if (optimal == 0.0) return 0.0;
  return (static_cast<double>(result.output_bits) - optimal) / optimal;
}

}  // namespace pipeline
