// Driver: runs one configured scenario end-to-end and collects results.
//
// Two engines:
//  * run_sim      — deterministic virtual-time simulation (figure benches);
//  * run_threaded — real worker threads (examples, correctness tests).
//
// Both accept a RunOptions bundle that wires the observability stack into
// the run: a metrics::Registry turns on the MetricsObserver, a
// metrics::Sampler gets the standard speculation-health series installed
// and ticked (on virtual time for the simulator, wall clock for threads),
// and any extra sre::Observer (e.g. tracelog::Recorder) is fanned in beside
// the metrics bridge.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "io/block_source.h"
#include "metrics/registry.h"
#include "metrics/report.h"
#include "metrics/sampler.h"
#include "pipeline/run_config.h"
#include "sre/observer.h"
#include "sre/threaded_executor.h"
#include "stats/predictor_stats.h"
#include "stats/summary.h"
#include "stats/trace.h"

namespace sre {
class Runtime;
}

namespace flight {
class Recorder;
}

namespace control {
class Controller;
}

namespace pipeline {

class HuffmanPipeline;

struct RunResult {
  stats::BlockTrace trace;
  stats::RunCounters counters;
  stats::Micros makespan_us = 0;  ///< completion time of the last task
  bool spec_committed = false;
  std::uint64_t rollbacks = 0;
  std::size_t wait_discarded = 0;
  std::uint64_t output_bits = 0;
  std::uint64_t natural_dispatches = 0;   ///< pool pops of natural tasks
  std::uint64_t spec_dispatches = 0;      ///< pool pops of speculative tasks
  std::uint64_t control_dispatches = 0;   ///< pool pops of control tasks

  /// Scheduler-path counters. Populated ONLY by run_threaded under
  /// DispatchMode::Sharded. run_sim and Central dispatch leave every field
  /// zero — those engines have no per-worker dispatch machinery to count,
  /// so an all-zero struct means "not instrumented", not "nothing ran".
  /// Consumers must treat all-zero as absent; report::RunReport omits its
  /// Dispatch section in that case instead of printing zeros.
  sre::ThreadedExecutor::DispatchStats dispatch;

  /// Predictor racing results (PredictorMode::Bank only; empty otherwise).
  stats::PredictorScoreboard predictors;
  std::string best_predictor;             ///< bank's winner ("" = baseline)
  std::uint64_t gate_denials = 0;         ///< epoch-opens the gate withheld

  std::vector<std::uint8_t> input;      ///< the generated workload bytes
  std::vector<std::uint8_t> container;  ///< assembled compressed stream

  /// Mean per-block latency (the paper's headline metric).
  [[nodiscard]] double avg_latency_us() const;

  /// Latency summary over all blocks.
  [[nodiscard]] stats::Summary latency_summary() const;
};

/// Observability wiring for a run. All pointers are borrowed and may be
/// null; the pointees must outlive the run_* call (the sampler's series
/// closures are cleared before it returns).
struct RunOptions {
  /// Extra observer (e.g. tracelog::Recorder); fanned in after metrics.
  sre::Observer* observer = nullptr;

  /// Non-null: attach a flight::FlightObserver on this recorder for the run
  /// (always-on span tracing; see src/flight/). Fanned in beside metrics.
  flight::Recorder* flight = nullptr;

  /// Non-null: attach a MetricsObserver on this registry for the run.
  metrics::Registry* registry = nullptr;

  /// Non-null: install the standard speculation-health series (ready-pool
  /// depths, open epochs, wait-buffer occupancy, predictor hit rate,
  /// speculative CPU share) and tick them every sample_interval_us —
  /// virtual time under run_sim, a background thread under run_threaded.
  metrics::Sampler* sampler = nullptr;
  std::uint64_t sample_interval_us = 10'000;

  /// Non-null + enabled: the adaptive control plane (src/control) samples
  /// the run every controller->config().interval_us of *virtual* time —
  /// zero-cost tick events on the sim queue, so runs stay deterministic
  /// (and, with the controller null or disabled, bit-identical to an
  /// unwired run). The pipeline is the controller's stream 1; its rollback
  /// rate feeds the speculation tuner, retunes land via
  /// HuffmanPipeline::retune_spec. Sim engine only — the serving layer has
  /// its own wall-clock control thread, and run_threaded has no controller
  /// hook. Borrowed; must outlive the call.
  control::Controller* controller = nullptr;

  // Threaded engine only.
  unsigned workers = 4;
  double arrival_time_scale = 1.0;
  /// Scheduler path: Sharded (work-stealing, lock-free completions) or
  /// Central (single-lock baseline).
  sre::DispatchMode dispatch = sre::DispatchMode::Sharded;
};

/// Runs `config` on the virtual-time simulator. Deterministic given a fixed
/// config (sampling does not perturb the schedule: ticks are zero-cost
/// events on the same queue).
[[nodiscard]] RunResult run_sim(const RunConfig& config,
                                const RunOptions& options);

/// Back-compat convenience: observer-only wiring.
[[nodiscard]] RunResult run_sim(const RunConfig& config,
                                sre::Observer* observer = nullptr);

/// Runs `config` on real threads. Latency values are wall-clock and thus
/// noisy; use run_sim for figures.
[[nodiscard]] RunResult run_threaded(const RunConfig& config,
                                     const RunOptions& options);

/// Back-compat convenience: `workers` threads, no metrics.
[[nodiscard]] RunResult run_threaded(const RunConfig& config,
                                     unsigned workers = 4,
                                     double arrival_time_scale = 1.0);

/// One pipeline wired into a shared, already-running runtime — the
/// re-entrant driver entry the serving layer (src/serve) uses. Unlike
/// run_threaded, begin_shared_run constructs no engine: it builds the
/// pipeline against the caller's Runtime and schedules the block arrivals
/// on the caller's live executor (service mode), offset to the executor's
/// current engine time. Many SharedRuns may coexist on one runtime; each
/// keeps its own Speculator, WaitBuffer and epoch space (Runtime::open_epoch
/// is globally monotonic, so epoch spaces never collide).
struct SharedRun {
  std::shared_ptr<const sio::BlockSource> source;
  std::unique_ptr<HuffmanPipeline> pipeline;
  std::uint64_t base_us = 0;  ///< engine time the arrival schedule started at

  SharedRun();
  SharedRun(SharedRun&&) noexcept;
  SharedRun& operator=(SharedRun&&) noexcept;
  ~SharedRun();  // out of line: HuffmanPipeline is incomplete here
};

/// Starts `config` as a session on a shared engine. `on_complete` fires
/// exactly once, from an executor thread, when the last block's committed
/// encoding lands (see HuffmanPipeline::set_on_complete); `on_last_arrival`
/// (optional) fires on the feeder thread right after the final block has
/// been injected — the serving layer's Running → Draining edge. Block
/// arrival times from the config's ArrivalModel are scaled by
/// `block_time_scale` (0 = inject as fast as the feeder can) and offset by
/// the executor's current time. The executor must be in service mode (or
/// otherwise still feeding) for the arrivals to fire.
[[nodiscard]] SharedRun begin_shared_run(
    const RunConfig& config, sre::Runtime& runtime, sre::ThreadedExecutor& ex,
    double block_time_scale, std::function<void(std::uint64_t)> on_complete,
    std::function<void(std::uint64_t)> on_last_arrival = nullptr);

/// Per-session results for a SharedRun whose on_complete fired at
/// `done_us`. Engine-global fields stay zero — runtime counters and pool
/// pop totals aggregate over every concurrent session, and DispatchStats
/// belong to the shared executor — so only per-session data (trace,
/// speculation outcome, output) is populated. makespan_us is the session's
/// own span: done_us - base_us.
[[nodiscard]] RunResult collect_shared_run(const SharedRun& run,
                                           std::uint64_t done_us);

/// Registers the standard speculation-health series on `sampler`: ready-pool
/// depths per class, blocked/running tasks, open epochs and their live task
/// count, wait-buffer occupancy, and — when `registry` is non-null —
/// predictor hit rate, speculative CPU share and rollback count derived from
/// the registry's counters. Series closures reference `runtime` and
/// `pipeline`; call sampler.clear_series() before those die. run_sim /
/// run_threaded do all of this automatically; this entry point is for
/// callers that drive their own executor (e.g. tvsc).
void install_standard_series(metrics::Sampler& sampler, sre::Runtime& runtime,
                             const HuffmanPipeline& pipeline,
                             metrics::Registry* registry);

/// Fills a report::RunInfo from a finished run — the glue between the
/// pipeline's result type and the application-agnostic report layer.
/// `engine` is "sim" or "threaded".
[[nodiscard]] report::RunInfo run_info(const RunConfig& config,
                                       const RunResult& result,
                                       const std::string& engine = "sim");

/// Verifies that `result.container` decodes back to `result.input`.
/// Throws std::logic_error on mismatch.
void verify_roundtrip(const RunResult& result);

/// Compressed-size overhead of `result` relative to the optimal
/// (non-speculative, exact-tree) encoding of the same input: fraction ≥ ~0.
[[nodiscard]] double size_overhead_vs_optimal(const RunResult& result);

}  // namespace pipeline
