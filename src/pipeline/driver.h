// Driver: runs one configured scenario end-to-end and collects results.
//
// Two engines:
//  * run_sim      — deterministic virtual-time simulation (figure benches);
//  * run_threaded — real worker threads (examples, correctness tests).
#pragma once

#include <cstdint>
#include <vector>

#include <string>

#include "pipeline/run_config.h"
#include "sre/observer.h"
#include "stats/predictor_stats.h"
#include "stats/summary.h"
#include "stats/trace.h"

namespace pipeline {

struct RunResult {
  stats::BlockTrace trace;
  stats::RunCounters counters;
  stats::Micros makespan_us = 0;  ///< completion time of the last task
  bool spec_committed = false;
  std::uint64_t rollbacks = 0;
  std::size_t wait_discarded = 0;
  std::uint64_t output_bits = 0;
  std::uint64_t natural_dispatches = 0;   ///< pool pops of natural tasks
  std::uint64_t spec_dispatches = 0;      ///< pool pops of speculative tasks

  /// Predictor racing results (PredictorMode::Bank only; empty otherwise).
  stats::PredictorScoreboard predictors;
  std::string best_predictor;             ///< bank's winner ("" = baseline)
  std::uint64_t gate_denials = 0;         ///< epoch-opens the gate withheld

  std::vector<std::uint8_t> input;      ///< the generated workload bytes
  std::vector<std::uint8_t> container;  ///< assembled compressed stream

  /// Mean per-block latency (the paper's headline metric).
  [[nodiscard]] double avg_latency_us() const;

  /// Latency summary over all blocks.
  [[nodiscard]] stats::Summary latency_summary() const;
};

/// Runs `config` on the virtual-time simulator. Deterministic. An optional
/// observer (e.g. tracelog::Recorder) sees every runtime event.
[[nodiscard]] RunResult run_sim(const RunConfig& config,
                                sre::Observer* observer = nullptr);

/// Runs `config` on real threads. `workers` threads execute tasks;
/// `arrival_time_scale` compresses the arrival schedule (e.g. 0.01 turns a
/// 6 s socket trace into 60 ms of wall-clock). Latency values are wall-clock
/// and thus noisy; use run_sim for figures.
[[nodiscard]] RunResult run_threaded(const RunConfig& config,
                                     unsigned workers = 4,
                                     double arrival_time_scale = 1.0);

/// Verifies that `result.container` decodes back to `result.input`.
/// Throws std::logic_error on mismatch.
void verify_roundtrip(const RunResult& result);

/// Compressed-size overhead of `result` relative to the optimal
/// (non-speculative, exact-tree) encoding of the same input: fraction ≥ ~0.
[[nodiscard]] double size_overhead_vs_optimal(const RunResult& result);

}  // namespace pipeline
