// Scenario configuration: everything that defines one experimental run.
//
// The presets encode the paper's parametrization (§V-A):
//  * 4 KiB input blocks;
//  * x86 disk: reduce 16:1, offset feeds 64 encodes;
//  * Cell: 16:1 for both ratios (32 KiB local-store budget);
//  * socket: both ratios 8:1 "in order to reduce average latency";
//  * baseline verification every 8th reduce result, tolerance 1 %.
#pragma once

#include <cstdint>
#include <string>

#include "core/config.h"
#include "sim/platform.h"
#include "sre/ids.h"
#include "workload/corpus.h"

namespace pipeline {

enum class IoMode : std::uint8_t { Disk, Socket };

[[nodiscard]] std::string to_string(IoMode m);

/// Structural parameters of the Huffman pipeline DFG.
struct PipelineRatios {
  std::size_t block_size = 4096;
  std::size_t reduce_ratio = 16;  ///< count histograms merged per reduce
  std::size_t offset_group = 64;  ///< encode tasks fed per offset task
};

/// One experimental run, fully specified.
struct RunConfig {
  wl::FileKind file = wl::FileKind::Txt;
  std::size_t bytes = 0;  ///< 0 = the paper's size for `file`
  std::uint64_t seed = 42;
  /// Non-empty: compress this file from disk instead of a synthetic corpus
  /// (`file`/`bytes`/`seed` are then ignored).
  std::string input_path;

  IoMode io = IoMode::Disk;
  /// Socket pacing (ignored for disk): microseconds per 4 KiB block and
  /// jitter bound. The default matches Fig. 7's long-distance tunnel (~6 s
  /// for 4 MB); Fig. 8 uses a faster link where compute queueing matters.
  std::uint64_t socket_per_block_us = 5500;
  std::uint64_t socket_jitter_us = 900;
  sim::PlatformConfig platform = sim::PlatformConfig::x86();
  PipelineRatios ratios;

  /// Serving-layer stream (session) id stamped onto every task this run
  /// creates; 0 = standalone run, no stream attribution.
  std::uint64_t stream_id = 0;

  sre::DispatchPolicy policy = sre::DispatchPolicy::Balanced;
  /// Intra-queue ordering; Fcfs is the breadth-first strawman of §III-A,
  /// kept for the ablation bench.
  sre::PriorityMode priority_mode = sre::PriorityMode::DepthFirst;
  tvs::SpecConfig spec;  ///< step/verify/tolerance; ignored when disabled

  /// False = non-speculative baseline (policy forced to NonSpeculative).
  [[nodiscard]] bool speculation_enabled() const {
    return policy != sre::DispatchPolicy::NonSpeculative;
  }

  [[nodiscard]] std::string label() const;

  // --- The paper's configurations -----------------------------------------

  /// x86, disk input: reduce 16:1, offset 64:1.
  [[nodiscard]] static RunConfig x86_disk(wl::FileKind file,
                                          sre::DispatchPolicy policy);

  /// Cell, disk input: both ratios 16:1, staging depth 4.
  [[nodiscard]] static RunConfig cell_disk(wl::FileKind file,
                                           sre::DispatchPolicy policy);

  /// x86, socket input: both ratios 8:1.
  [[nodiscard]] static RunConfig x86_socket(wl::FileKind file,
                                            sre::DispatchPolicy policy);

  /// Cell, socket input: both ratios 16:1 (local-store constraint).
  [[nodiscard]] static RunConfig cell_socket(wl::FileKind file,
                                             sre::DispatchPolicy policy);
};

}  // namespace pipeline
