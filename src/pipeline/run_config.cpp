#include "pipeline/run_config.h"

#include <sstream>

namespace pipeline {

std::string to_string(IoMode m) {
  return m == IoMode::Disk ? "disk" : "socket";
}

std::string RunConfig::label() const {
  std::ostringstream os;
  os << wl::to_string(file) << "/" << platform.name << "/" << to_string(io)
     << "/" << sre::to_string(policy);
  if (speculation_enabled()) os << "/" << spec.to_string();
  return os.str();
}

RunConfig RunConfig::x86_disk(wl::FileKind f, sre::DispatchPolicy policy) {
  RunConfig c;
  c.file = f;
  c.io = IoMode::Disk;
  c.platform = sim::PlatformConfig::x86();
  c.ratios = {4096, 16, 64};
  c.policy = policy;
  return c;
}

RunConfig RunConfig::cell_disk(wl::FileKind f, sre::DispatchPolicy policy) {
  RunConfig c;
  c.file = f;
  c.io = IoMode::Disk;
  c.platform = sim::PlatformConfig::cell();
  c.ratios = {4096, 16, 16};
  c.policy = policy;
  return c;
}

RunConfig RunConfig::x86_socket(wl::FileKind f, sre::DispatchPolicy policy) {
  RunConfig c;
  c.file = f;
  c.io = IoMode::Socket;
  c.platform = sim::PlatformConfig::x86();
  c.ratios = {4096, 8, 8};
  c.policy = policy;
  return c;
}

RunConfig RunConfig::cell_socket(wl::FileKind f, sre::DispatchPolicy policy) {
  RunConfig c;
  c.file = f;
  c.io = IoMode::Socket;
  c.platform = sim::PlatformConfig::cell();
  c.ratios = {4096, 16, 16};
  c.policy = policy;
  return c;
}

}  // namespace pipeline
