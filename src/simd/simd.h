// Runtime CPU-capability probe and kernel-dispatch level for the data plane.
//
// Data-plane kernels (histogram counting, bit-packing encode) are compiled in
// several variants and selected once at runtime:
//
//   Scalar — the reference implementation, one element at a time. Always
//            available; the baseline every other variant must match
//            bit-for-bit (docs/data-plane.md, "kernel dispatch contract").
//   Swar   — portable multi-lane unrolling (no intrinsics): independent
//            accumulator lanes kill store-forwarding stalls on hot loops.
//   Avx2   — x86 AVX2 intrinsics, used only when the CPU reports support.
//
// Selection order: an explicit force() (tests/benches) beats the TVS_SIMD
// environment variable, which beats CPU detection. TVS_SIMD accepts
//   0 | scalar   — reference kernels only
//   1 | swar     — portable multi-lane kernels
//   2 | avx2     — AVX2 (silently clamped to Swar when the CPU lacks it)
//   auto | ""    — best supported level (the default)
//
// Variants are interchangeable by contract: same outputs, bit for bit. The
// differential suite (tests/huffman/kernel_diff_test.cpp, `tools/ci.sh
// kernels`) enforces this across levels.
#pragma once

#include <cstdint>

namespace tvs::simd {

enum class Level : std::uint8_t { Scalar = 0, Swar = 1, Avx2 = 2 };

/// Best level the running CPU supports (ignores overrides).
[[nodiscard]] Level detect();

/// The level kernels should dispatch on: force() override if set, else the
/// TVS_SIMD environment variable (read once), else detect(). Cached; cheap
/// enough for per-call dispatch.
[[nodiscard]] Level active();

/// Overrides active() process-wide until clear_force(). Levels above the
/// CPU's capability are clamped to the best supported one, so a forced
/// kernel can never fault. Intended for tests and the kernel bench sweep.
void force(Level level);
void clear_force();

/// Parses a TVS_SIMD-style value ("0", "scalar", "2", "avx2", "auto", ...).
/// Returns detect() for "auto"/empty/unrecognized values; clamps to the
/// CPU's capability.
[[nodiscard]] Level parse(const char* value);

[[nodiscard]] const char* name(Level level);

}  // namespace tvs::simd
