#include "simd/simd.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace tvs::simd {
namespace {

// force() state: -1 = no override, otherwise the forced Level value.
std::atomic<int> g_forced{-1};

Level clamp_to_cpu(Level want) {
  const Level best = detect();
  return static_cast<std::uint8_t>(want) <= static_cast<std::uint8_t>(best)
             ? want
             : best;
}

Level env_level() {
  // Read TVS_SIMD once; tests that need to flip levels in-process use
  // force() instead of re-exporting the variable.
  static const Level cached = parse(std::getenv("TVS_SIMD"));
  return cached;
}

}  // namespace

Level detect() {
#if defined(__x86_64__) || defined(__i386__)
  static const Level cached =
      __builtin_cpu_supports("avx2") ? Level::Avx2 : Level::Swar;
#else
  static const Level cached = Level::Swar;
#endif
  return cached;
}

Level active() {
  const int forced = g_forced.load(std::memory_order_relaxed);
  if (forced >= 0) return static_cast<Level>(forced);
  return env_level();
}

void force(Level level) {
  g_forced.store(static_cast<int>(clamp_to_cpu(level)),
                 std::memory_order_relaxed);
}

void clear_force() { g_forced.store(-1, std::memory_order_relaxed); }

Level parse(const char* value) {
  if (value == nullptr || *value == '\0') return detect();
  if (std::strcmp(value, "0") == 0 || std::strcmp(value, "scalar") == 0)
    return Level::Scalar;
  if (std::strcmp(value, "1") == 0 || std::strcmp(value, "swar") == 0 ||
      std::strcmp(value, "unrolled") == 0)
    return Level::Swar;
  if (std::strcmp(value, "2") == 0 || std::strcmp(value, "avx2") == 0)
    return clamp_to_cpu(Level::Avx2);
  if (std::strcmp(value, "auto") != 0) {
    // A typo ("axv2") silently becoming auto-detect would invisibly move
    // the perf baseline; say so, once per process.
    static std::atomic<bool> warned{false};
    if (!warned.exchange(true, std::memory_order_relaxed)) {
      std::fprintf(stderr,
                   "tvs: unrecognized TVS_SIMD value \"%s\"; "
                   "using auto-detect (%s)\n",
                   value, name(detect()));
    }
  }
  return detect();  // "auto" and anything unrecognized
}

const char* name(Level level) {
  switch (level) {
    case Level::Scalar: return "scalar";
    case Level::Swar: return "swar";
    case Level::Avx2: return "avx2";
  }
  return "unknown";
}

}  // namespace tvs::simd
