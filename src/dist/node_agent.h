// NodeAgent: one serving node of the distributed layer — a local
// serve::SessionManager wrapped in the framed RPC protocol (dist/protocol).
//
// The agent listens on loopback TCP, serves one router connection at a
// time (the router is its only peer; a new connection can follow a closed
// one), and runs three connection-scoped activities:
//
//   * the reader (the accept thread itself): Submit → SessionManager::submit
//     → SubmitAck; Drain → finish in-flight work then DrainAck;
//   * the collector thread: polls tracked sessions for terminal states and
//     streams Result frames back (Done carries the compressed container;
//     Shed/Failed carry the reason), then release()s them so agent memory
//     stays bounded by in-flight sessions;
//   * the heartbeat thread: periodic Heartbeat frames carrying the
//     manager's LoadSnapshot — the router's placement signal and liveness
//     proof.
//
// The SessionManager outlives connections: a router reconnect sees the
// same node with its cumulative counters. freeze_for_test() silences the
// heartbeat and collector without killing anything — the hook the
// node-death tests use to force the router's heartbeat-timeout path (as
// opposed to the EOF path a real crash takes).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>

#include "net/channel.h"
#include "net/socket.h"
#include "serve/service_config.h"
#include "serve/session_manager.h"

namespace dist {

struct NodeAgentOptions {
  std::string name = "node";
  std::uint16_t port = 0;  ///< 0 = pick a free port (see NodeAgent::port())
  serve::ServiceConfig service;
  std::uint64_t heartbeat_interval_ms = 50;
  /// Exit the accept loop after the first connection closes (scripted runs:
  /// `tvsc served --once` ends when its router disconnects).
  bool once = false;
};

class NodeAgent {
 public:
  explicit NodeAgent(NodeAgentOptions opts);
  /// Stops and drains; never throws out of the destructor.
  ~NodeAgent();

  NodeAgent(const NodeAgent&) = delete;
  NodeAgent& operator=(const NodeAgent&) = delete;

  /// Binds the listener, starts the SessionManager and the accept thread.
  /// The agent is dialable on port() when this returns.
  void start();

  /// Blocks until the accept loop exits (only happens with once=true or
  /// after stop()).
  void join();

  /// Closes the listener and any live connection, then drains the manager.
  /// Idempotent.
  void stop();

  [[nodiscard]] std::uint16_t port() const { return port_; }
  [[nodiscard]] const std::string& name() const { return opts_.name; }
  /// Valid between start() and stop().
  [[nodiscard]] serve::SessionManager& manager() { return *mgr_; }

  /// Test hook: true silences heartbeats AND result delivery while leaving
  /// the connection open — to the router this node goes dark exactly the
  /// way a wedged (not crashed) process does.
  void freeze_for_test(bool on) { frozen_.store(on); }

 private:
  void accept_main();
  void handle_connection(net::Socket sock);
  void collector_main(net::Channel& ch);
  void heartbeat_main(net::Channel& ch);

  NodeAgentOptions opts_;
  std::uint16_t port_ = 0;
  std::unique_ptr<net::Listener> listener_;
  std::unique_ptr<serve::SessionManager> mgr_;
  std::thread accept_thread_;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> frozen_{false};

  // --- Connection-scoped state (guarded by conn_mu_) ---------------------
  std::mutex conn_mu_;
  std::condition_variable conn_cv_;
  net::Channel* conn_ = nullptr;  ///< live connection's channel (teardown)
  /// Sessions accepted on this connection awaiting a terminal state:
  /// router's global id → local SessionManager id.
  std::unordered_map<std::uint64_t, serve::SessionId> outstanding_;
  bool draining_ = false;   ///< router sent Drain
  bool conn_done_ = false;  ///< stops the collector/heartbeat threads
};

}  // namespace dist
