// Router: the client-facing front of the distributed serving layer. Shards
// sessions across N registered node agents (dist/node_agent) by
// priority-aware least-load placement, spills saturated-class submits to
// less-loaded nodes *before* shedding them, and degrades gracefully when a
// node dies.
//
// Placement (one decision per submit, under the router lock):
//   * every alive node is scored by LoadSnapshot::load_score() — queued +
//     running work normalized by the concurrency window — plus the
//     router's own in-flight-unacked submits (so a burst between two
//     heartbeats does not dogpile one node);
//   * the session lands on the lowest-scored node whose queue for its
//     priority class has room (LoadSnapshot::would_shed — the *same*
//     capacity test the node's ShedPolicy will apply);
//   * spill-before-shed: when the least-loaded node's class queue is full,
//     a Batch/Bulk session is placed on the best node that still has room
//     instead of being submitted-and-shed — remote capacity is used up
//     before any refusal. Interactive always goes to the least-loaded node
//     (agents spare Interactive under their global soft cap);
//   * only when every alive node would shed the class does the router shed
//     ("cluster-full"), and with no alive nodes at all, "no-nodes".
//
// Failure semantics: each node's liveness is its heartbeat stream. The
// monitor thread marks a node dead when heartbeats go quiet past the
// timeout (a wedged process); the reader marks it dead immediately on EOF
// or a protocol error (a crashed process). Either way every in-flight
// session placed on that node resolves Failed with the node and cause in
// its detail string, waiters wake, and placement continues on survivors —
// a node death is a per-session error, never a router hang or crash.
#pragma once

#include <array>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "dist/protocol.h"
#include "net/channel.h"
#include "serve/load.h"

namespace dist {

struct RouterOptions {
  std::string name = "router";
  /// A node whose last heartbeat is older than this is dead. Keep several
  /// multiples of the agents' heartbeat_interval_ms.
  std::uint64_t heartbeat_timeout_ms = 1000;
  std::uint64_t monitor_interval_ms = 20;
  std::uint64_t connect_timeout_ms = 5000;
};

class Router {
 public:
  explicit Router(RouterOptions opts = {});
  ~Router();

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// Dials an agent, handshakes, and registers it for placement. Throws
  /// net::NetError when the agent cannot be reached or speaks garbage.
  void add_node(const std::string& host, std::uint16_t port);

  /// One routed submit. Non-blocking beyond the frame write: `placed`
  /// false means the router itself shed (reason in shed_reason) and the id
  /// is already terminal; sheds *at the node* surface through wait().
  struct SubmitOutcome {
    std::uint64_t id = 0;
    bool placed = false;
    std::string node;        ///< placement target (empty when shed)
    bool spilled = false;    ///< placed past a saturated least-loaded node
    std::string shed_reason; ///< non-empty iff !placed
  };
  SubmitOutcome submit(SessionSpec spec);

  /// A session's terminal record.
  struct SessionOutcome {
    std::uint64_t id = 0;
    std::string name;
    serve::Priority priority = serve::Priority::Batch;
    std::string node;  ///< where it ran (empty for router-shed)
    bool terminal = false;
    WireState state = WireState::Shed;
    std::string detail;  ///< shed reason / error / node-death attribution
    std::uint64_t latency_us = 0;
    std::uint64_t rollbacks = 0;
    std::vector<std::uint8_t> container;
  };
  /// Blocks until the session is terminal; returns a copy of its record.
  [[nodiscard]] SessionOutcome wait(std::uint64_t id);

  struct Totals {
    std::uint64_t submitted = 0;
    std::uint64_t routed = 0;       ///< placed on some node
    std::uint64_t spilled = 0;      ///< placed past a saturated home node
    std::uint64_t shed_router = 0;  ///< refused by the router itself
    std::uint64_t done = 0;
    std::uint64_t shed_node = 0;    ///< shed by an agent (queue/deadline)
    std::uint64_t failed = 0;       ///< agent Failed + node-death failures
    std::uint64_t node_deaths = 0;
  };
  [[nodiscard]] Totals totals() const;

  struct NodeStatus {
    std::string name;
    bool alive = false;
    serve::LoadSnapshot load;  ///< as of the last heartbeat (may lag)
    /// Sessions this node resolved, from the router's own accounting —
    /// exact even when the final heartbeat never arrived (e.g. a --once
    /// agent draining right after its last result).
    std::uint64_t done = 0;
    std::uint64_t shed = 0;
    std::uint64_t failed = 0;
  };
  [[nodiscard]] std::vector<NodeStatus> nodes() const;
  [[nodiscard]] std::size_t alive_nodes() const;

  /// Waits for every in-flight session to resolve (results from live
  /// nodes, death attribution otherwise), then Drain/DrainAck-closes every
  /// connection. Idempotent.
  void drain();

 private:
  struct Node {
    std::string name;
    std::unique_ptr<net::Channel> ch;
    serve::LoadSnapshot load;
    std::chrono::steady_clock::time_point last_hb;
    bool alive = true;
    bool drain_acked = false;
    std::uint64_t done = 0;
    std::uint64_t shed = 0;
    std::uint64_t failed = 0;
    /// Submits sent but not yet SubmitAck'd, by priority — counted into
    /// placement so a burst between heartbeats spreads out.
    std::array<std::size_t, serve::kPriorities> pending{};
    std::thread reader;
  };

  void reader_main(Node* n);
  void monitor_main();
  void mark_dead_locked(Node& n, const std::string& why);
  /// Picks the placement target (see the header comment). Null = shed;
  /// `*reason` then says why.
  Node* place_locked(serve::Priority p, bool* spilled, const char** reason);

  RouterOptions opts_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<std::unique_ptr<Node>> nodes_;
  /// Every session ever submitted, by global id (ordered: summaries print
  /// in submit order).
  std::map<std::uint64_t, SessionOutcome> sessions_;
  Totals totals_;
  std::uint64_t next_id_ = 1;
  bool draining_ = false;
  bool stopped_ = false;
  std::thread monitor_;
};

}  // namespace dist
