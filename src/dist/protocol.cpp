#include "dist/protocol.h"

namespace dist {
namespace {

/// Range-checked enum decode: a hostile byte becomes a WireError, not an
/// out-of-range enum value flowing into a switch.
template <typename E>
E checked_enum(std::uint8_t raw, std::uint8_t max, const char* what) {
  if (raw > max) {
    throw net::WireError(std::string("protocol: out-of-range ") + what +
                         " value " + std::to_string(raw));
  }
  return static_cast<E>(raw);
}

void put_load(net::WireWriter& w, const serve::LoadSnapshot& l) {
  for (std::size_t i = 0; i < serve::kPriorities; ++i) {
    w.u64(l.queued[i]);
  }
  for (std::size_t i = 0; i < serve::kPriorities; ++i) {
    w.u64(l.queue_capacity[i]);
  }
  w.u64(l.running);
  w.u64(l.max_concurrent);
  w.u64(l.done);
  w.u64(l.shed);
  w.u64(l.failed);
}

serve::LoadSnapshot get_load(net::WireReader& r) {
  serve::LoadSnapshot l;
  for (std::size_t i = 0; i < serve::kPriorities; ++i) {
    l.queued[i] = static_cast<std::size_t>(r.u64());
  }
  for (std::size_t i = 0; i < serve::kPriorities; ++i) {
    l.queue_capacity[i] = static_cast<std::size_t>(r.u64());
  }
  l.running = static_cast<std::size_t>(r.u64());
  l.max_concurrent = static_cast<std::size_t>(r.u64());
  l.done = r.u64();
  l.shed = r.u64();
  l.failed = r.u64();
  return l;
}

void put_spec(net::WireWriter& w, const SessionSpec& s) {
  w.str(s.name);
  w.u8(static_cast<std::uint8_t>(s.priority));
  w.u64(s.queue_deadline_us);
  w.u8(static_cast<std::uint8_t>(s.file));
  w.u64(s.bytes);
  w.u64(s.seed);
  w.str(s.input_path);
  w.u8(static_cast<std::uint8_t>(s.policy));
}

SessionSpec get_spec(net::WireReader& r) {
  SessionSpec s;
  s.name = r.str();
  s.priority = checked_enum<serve::Priority>(
      r.u8(), static_cast<std::uint8_t>(serve::Priority::Bulk), "priority");
  s.queue_deadline_us = r.u64();
  s.file = checked_enum<wl::FileKind>(
      r.u8(), static_cast<std::uint8_t>(wl::FileKind::Pdf), "file kind");
  s.bytes = r.u64();
  s.seed = r.u64();
  s.input_path = r.str();
  s.policy = checked_enum<sre::DispatchPolicy>(
      r.u8(), static_cast<std::uint8_t>(sre::DispatchPolicy::Balanced),
      "dispatch policy");
  return s;
}

}  // namespace

std::string to_string(MsgType t) {
  switch (t) {
    case MsgType::Hello: return "Hello";
    case MsgType::HelloAck: return "HelloAck";
    case MsgType::Submit: return "Submit";
    case MsgType::SubmitAck: return "SubmitAck";
    case MsgType::Result: return "Result";
    case MsgType::Heartbeat: return "Heartbeat";
    case MsgType::Drain: return "Drain";
    case MsgType::DrainAck: return "DrainAck";
  }
  return "MsgType(" + std::to_string(static_cast<std::uint16_t>(t)) + ")";
}

pipeline::RunConfig to_run_config(const SessionSpec& spec) {
  pipeline::RunConfig cfg = pipeline::RunConfig::x86_disk(spec.file, spec.policy);
  cfg.bytes = static_cast<std::size_t>(spec.bytes);
  cfg.seed = spec.seed;
  cfg.input_path = spec.input_path;
  return cfg;
}

std::vector<std::uint8_t> encode(const HelloMsg& m) {
  net::WireWriter w;
  w.str(m.peer_name);
  return w.take();
}

std::vector<std::uint8_t> encode(const HelloAckMsg& m) {
  net::WireWriter w;
  w.str(m.node_name);
  w.u32(m.workers);
  w.u64(m.max_concurrent);
  put_load(w, m.load);
  return w.take();
}

std::vector<std::uint8_t> encode(const SubmitMsg& m) {
  net::WireWriter w;
  w.u64(m.global_id);
  put_spec(w, m.spec);
  return w.take();
}

std::vector<std::uint8_t> encode(const SubmitAckMsg& m) {
  net::WireWriter w;
  w.u64(m.global_id);
  w.u8(m.accepted ? 1 : 0);
  w.str(m.shed_reason);
  w.u64(m.queued);
  return w.take();
}

std::vector<std::uint8_t> encode(const ResultMsg& m) {
  net::WireWriter w;
  w.u64(m.global_id);
  w.u8(static_cast<std::uint8_t>(m.state));
  w.str(m.detail);
  w.u64(m.latency_us);
  w.u64(m.rollbacks);
  w.bytes(m.container);
  return w.take();
}

std::vector<std::uint8_t> encode(const HeartbeatMsg& m) {
  net::WireWriter w;
  w.u64(m.t_us);
  put_load(w, m.load);
  return w.take();
}

HelloMsg decode_hello(const std::vector<std::uint8_t>& p) {
  net::WireReader r(p);
  HelloMsg m;
  m.peer_name = r.str();
  r.expect_end();
  return m;
}

HelloAckMsg decode_hello_ack(const std::vector<std::uint8_t>& p) {
  net::WireReader r(p);
  HelloAckMsg m;
  m.node_name = r.str();
  m.workers = r.u32();
  m.max_concurrent = r.u64();
  m.load = get_load(r);
  r.expect_end();
  return m;
}

SubmitMsg decode_submit(const std::vector<std::uint8_t>& p) {
  net::WireReader r(p);
  SubmitMsg m;
  m.global_id = r.u64();
  m.spec = get_spec(r);
  r.expect_end();
  return m;
}

SubmitAckMsg decode_submit_ack(const std::vector<std::uint8_t>& p) {
  net::WireReader r(p);
  SubmitAckMsg m;
  m.global_id = r.u64();
  m.accepted = r.u8() != 0;
  m.shed_reason = r.str();
  m.queued = r.u64();
  r.expect_end();
  return m;
}

ResultMsg decode_result(const std::vector<std::uint8_t>& p) {
  net::WireReader r(p);
  ResultMsg m;
  m.global_id = r.u64();
  m.state = checked_enum<WireState>(
      r.u8(), static_cast<std::uint8_t>(WireState::Failed), "terminal state");
  m.detail = r.str();
  m.latency_us = r.u64();
  m.rollbacks = r.u64();
  m.container = r.bytes();
  r.expect_end();
  return m;
}

HeartbeatMsg decode_heartbeat(const std::vector<std::uint8_t>& p) {
  net::WireReader r(p);
  HeartbeatMsg m;
  m.t_us = r.u64();
  m.load = get_load(r);
  r.expect_end();
  return m;
}

}  // namespace dist
