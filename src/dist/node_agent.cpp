#include "dist/node_agent.h"

#include <chrono>
#include <cstdio>
#include <utility>
#include <vector>

#include "dist/protocol.h"

namespace dist {
namespace {

using MsgU16 = std::uint16_t;

constexpr MsgU16 type_of(MsgType t) { return static_cast<MsgU16>(t); }

}  // namespace

NodeAgent::NodeAgent(NodeAgentOptions opts) : opts_(std::move(opts)) {}

NodeAgent::~NodeAgent() {
  try {
    stop();
  } catch (...) {
    // stop() drains the manager; its errors are observable via an explicit
    // stop() call, never out of the destructor.
  }
}

void NodeAgent::start() {
  listener_ = std::make_unique<net::Listener>(opts_.port);
  port_ = listener_->port();
  mgr_ = std::make_unique<serve::SessionManager>(opts_.service);
  accept_thread_ = std::thread(&NodeAgent::accept_main, this);
}

void NodeAgent::join() {
  if (accept_thread_.joinable()) accept_thread_.join();
}

void NodeAgent::stop() {
  if (stopping_.exchange(true)) {
    join();
    return;
  }
  if (listener_) listener_->close();
  {
    std::scoped_lock lk(conn_mu_);
    conn_done_ = true;
    if (conn_ != nullptr) conn_->close();
  }
  conn_cv_.notify_all();
  join();
  if (mgr_) mgr_->drain();
}

void NodeAgent::accept_main() {
  for (;;) {
    net::Socket sock = listener_->accept();
    if (!sock.valid()) break;  // listener closed: shutdown
    handle_connection(std::move(sock));
    if (opts_.once || stopping_.load()) break;
  }
}

void NodeAgent::handle_connection(net::Socket sock) {
  net::Channel ch(std::move(sock));
  try {
    // Handshake: the first frame must be Hello; anything else is a peer we
    // do not speak to.
    net::Frame f;
    if (!ch.recv(f)) return;
    if (f.type != type_of(MsgType::Hello)) {
      std::fprintf(stderr, "tvsc served[%s]: peer opened with %s, dropping\n",
                   opts_.name.c_str(),
                   to_string(static_cast<MsgType>(f.type)).c_str());
      return;
    }
    (void)decode_hello(f.payload);  // validates; peer name unused for now
    HelloAckMsg ack;
    ack.node_name = opts_.name;
    ack.workers = opts_.service.workers;
    ack.max_concurrent = opts_.service.max_concurrent;
    ack.load = mgr_->load_snapshot();
    if (!ch.send(type_of(MsgType::HelloAck), encode(ack))) return;
  } catch (const net::NetError& e) {
    std::fprintf(stderr, "tvsc served[%s]: handshake failed: %s\n",
                 opts_.name.c_str(), e.what());
    return;
  }

  {
    std::scoped_lock lk(conn_mu_);
    conn_ = &ch;
    draining_ = false;
    conn_done_ = false;
    outstanding_.clear();
  }
  std::thread collector(&NodeAgent::collector_main, this, std::ref(ch));
  std::thread heartbeat(&NodeAgent::heartbeat_main, this, std::ref(ch));

  // Reader loop: the connection's command stream. A malformed frame from
  // the peer poisons only this connection — the agent logs, closes and goes
  // back to accept(); sessions already admitted keep running to completion.
  try {
    net::Frame f;
    while (ch.recv(f)) {
      if (f.type == type_of(MsgType::Submit)) {
        const SubmitMsg msg = decode_submit(f.payload);
        serve::SessionConfig sc;
        sc.name = msg.spec.name;
        sc.priority = msg.spec.priority;
        sc.queue_deadline_us = msg.spec.queue_deadline_us;
        sc.run = to_run_config(msg.spec);
        const auto outcome = mgr_->submit(std::move(sc));
        SubmitAckMsg ack;
        ack.global_id = msg.global_id;
        ack.accepted = outcome.accepted;
        ack.shed_reason = outcome.shed_reason;
        ack.queued = outcome.queued;
        if (outcome.accepted) {
          std::scoped_lock lk(conn_mu_);
          outstanding_.emplace(msg.global_id, outcome.id);
          conn_cv_.notify_all();
        }
        if (!ch.send(type_of(MsgType::SubmitAck), encode(ack))) break;
      } else if (f.type == type_of(MsgType::Drain)) {
        std::scoped_lock lk(conn_mu_);
        draining_ = true;
        conn_cv_.notify_all();
      } else {
        std::fprintf(stderr, "tvsc served[%s]: unexpected %s, dropping\n",
                     opts_.name.c_str(),
                     to_string(static_cast<MsgType>(f.type)).c_str());
      }
    }
  } catch (const net::NetError& e) {
    std::fprintf(stderr, "tvsc served[%s]: connection error: %s\n",
                 opts_.name.c_str(), e.what());
  }

  {
    std::scoped_lock lk(conn_mu_);
    conn_done_ = true;
    conn_ = nullptr;
    outstanding_.clear();
  }
  conn_cv_.notify_all();
  ch.close();
  collector.join();
  heartbeat.join();
}

void NodeAgent::collector_main(net::Channel& ch) {
  std::unique_lock lk(conn_mu_);
  for (;;) {
    if (conn_done_) return;
    if (!frozen_.load()) {
      // Scan tracked sessions for terminal states. stats() is one lock
      // acquisition on the manager; at the session grain this poll is far
      // below the noise floor of the work it observes.
      std::vector<std::pair<std::uint64_t, serve::SessionId>> terminal;
      for (const auto& [gid, local] : outstanding_) {
        const auto st = mgr_->stats(local);
        if (st.state == serve::SessionState::Done ||
            st.state == serve::SessionState::Shed ||
            st.state == serve::SessionState::Failed) {
          terminal.emplace_back(gid, local);
        }
      }
      for (const auto& [gid, local] : terminal) outstanding_.erase(gid);
      lk.unlock();
      bool sent_ok = true;
      for (const auto& [gid, local] : terminal) {
        const auto st = mgr_->stats(local);
        ResultMsg msg;
        msg.global_id = gid;
        msg.latency_us = st.latency_us();
        if (st.state == serve::SessionState::Done) {
          // wait() returns immediately: the state is already terminal.
          const pipeline::RunResult* r = mgr_->wait(local);
          msg.state = WireState::Done;
          if (r != nullptr) {
            msg.rollbacks = r->rollbacks;
            msg.container = r->container;
          }
        } else if (st.state == serve::SessionState::Shed) {
          msg.state = WireState::Shed;
          msg.detail = st.shed_reason;
        } else {
          msg.state = WireState::Failed;
          msg.detail = st.error;
        }
        mgr_->release(local);  // container copied out; drop the heavy state
        if (!ch.send(type_of(MsgType::Result), encode(msg))) {
          sent_ok = false;
          break;
        }
      }
      lk.lock();
      if (!sent_ok) {
        // Peer gone mid-result: the reader will see EOF and tear down; stop
        // trying to deliver.
        conn_cv_.wait(lk, [&] { return conn_done_; });
        return;
      }
      if (draining_ && outstanding_.empty()) {
        lk.unlock();
        (void)ch.send(type_of(MsgType::DrainAck), {});
        lk.lock();
        conn_cv_.wait(lk, [&] { return conn_done_; });
        return;
      }
    }
    conn_cv_.wait_for(lk, std::chrono::milliseconds(1),
                      [&] { return conn_done_; });
  }
}

void NodeAgent::heartbeat_main(net::Channel& ch) {
  std::unique_lock lk(conn_mu_);
  const auto interval = std::chrono::milliseconds(
      std::max<std::uint64_t>(1, opts_.heartbeat_interval_ms));
  for (;;) {
    if (conn_cv_.wait_for(lk, interval, [&] { return conn_done_; })) return;
    if (frozen_.load()) continue;
    lk.unlock();
    HeartbeatMsg hb;
    hb.t_us = mgr_->now_us();
    hb.load = mgr_->load_snapshot();
    (void)ch.send(type_of(MsgType::Heartbeat), encode(hb));
    lk.lock();
  }
}

}  // namespace dist
