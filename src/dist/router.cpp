#include "dist/router.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <utility>

#include "net/socket.h"

namespace dist {
namespace {

constexpr std::uint16_t type_of(MsgType t) {
  return static_cast<std::uint16_t>(t);
}

}  // namespace

Router::Router(RouterOptions opts) : opts_(std::move(opts)) {
  monitor_ = std::thread(&Router::monitor_main, this);
}

Router::~Router() {
  try {
    drain();
  } catch (...) {
  }
  {
    std::scoped_lock lk(mu_);
    stopped_ = true;
    for (auto& n : nodes_) {
      if (n->ch) n->ch->close();
    }
  }
  cv_.notify_all();
  if (monitor_.joinable()) monitor_.join();
  for (auto& n : nodes_) {
    if (n->reader.joinable()) n->reader.join();
  }
}

void Router::add_node(const std::string& host, std::uint16_t port) {
  net::Socket sock = net::connect_tcp(host, port, opts_.connect_timeout_ms);
  auto ch = std::make_unique<net::Channel>(std::move(sock));
  HelloMsg hello;
  hello.peer_name = opts_.name;
  if (!ch->send(type_of(MsgType::Hello), encode(hello))) {
    throw net::SocketError("router: " + host + ":" + std::to_string(port) +
                           " closed during handshake");
  }
  net::Frame f;
  if (!ch->recv(f) || f.type != type_of(MsgType::HelloAck)) {
    throw net::FrameError("router: " + host + ":" + std::to_string(port) +
                          " did not answer Hello with HelloAck");
  }
  const HelloAckMsg ack = decode_hello_ack(f.payload);

  std::scoped_lock lk(mu_);
  auto node = std::make_unique<Node>();
  node->name = ack.node_name;
  // Disambiguate duplicate agent names — death attribution must point at
  // one specific node.
  for (const auto& existing : nodes_) {
    if (existing->name == node->name) {
      const std::string suffix = std::to_string(nodes_.size());
      node->name.reserve(node->name.size() + suffix.size() + 1);
      node->name.push_back('#');
      node->name.append(suffix);
      break;
    }
  }
  node->ch = std::move(ch);
  node->load = ack.load;
  node->last_hb = std::chrono::steady_clock::now();
  Node* raw = node.get();
  nodes_.push_back(std::move(node));
  raw->reader = std::thread(&Router::reader_main, this, raw);
}

Router::Node* Router::place_locked(serve::Priority p, bool* spilled,
                                   const char** reason) {
  *spilled = false;
  const auto ix = static_cast<std::size_t>(p);
  Node* best_overall = nullptr;   // least-loaded alive node, period
  Node* best_eligible = nullptr;  // least-loaded with class-queue room
  double score_overall = 0.0, score_eligible = 0.0;
  for (const auto& up : nodes_) {
    Node& n = *up;
    if (!n.alive) continue;
    serve::LoadSnapshot eff = n.load;
    // Fold in our own in-flight submits the node has not acked yet.
    for (std::size_t q = 0; q < serve::kPriorities; ++q) {
      eff.queued[q] += n.pending[q];
    }
    const double score = eff.load_score();
    if (best_overall == nullptr || score < score_overall) {
      best_overall = &n;
      score_overall = score;
    }
    // Interactive is always eligible: the node's own soft cap spares it,
    // and a full Interactive queue still sheds at most this one session —
    // whereas refusing to forward would shed it for certain.
    const bool eligible = p == serve::Priority::Interactive ||
                          eff.queued[ix] < eff.queue_capacity[ix];
    if (eligible && (best_eligible == nullptr || score < score_eligible)) {
      best_eligible = &n;
      score_eligible = score;
    }
  }
  if (best_overall == nullptr) {
    *reason = "no-nodes";
    return nullptr;
  }
  if (best_eligible == nullptr) {
    *reason = "cluster-full";
    return nullptr;
  }
  *spilled = best_eligible != best_overall;
  return best_eligible;
}

Router::SubmitOutcome Router::submit(SessionSpec spec) {
  std::scoped_lock lk(mu_);
  SubmitOutcome out;
  out.id = next_id_++;
  ++totals_.submitted;

  SessionOutcome rec;
  rec.id = out.id;
  rec.name = spec.name;
  rec.priority = spec.priority;

  const char* reason = "";
  bool spilled = false;
  Node* node = draining_ ? nullptr : place_locked(spec.priority, &spilled, &reason);
  if (draining_) reason = "shutdown";
  if (node == nullptr) {
    out.shed_reason = reason;
    rec.terminal = true;
    rec.state = WireState::Shed;
    rec.detail = reason;
    ++totals_.shed_router;
    sessions_.emplace(rec.id, std::move(rec));
    cv_.notify_all();
    return out;
  }

  SubmitMsg msg;
  msg.global_id = out.id;
  msg.spec = std::move(spec);
  if (!node->ch->send(type_of(MsgType::Submit), encode(msg))) {
    // The connection died under us; the reader will attribute in-flight
    // sessions. This one never reached the node — fail it here.
    mark_dead_locked(*node, "connection lost on submit");
    rec.terminal = true;
    rec.state = WireState::Failed;
    rec.detail = "node '" + node->name + "' lost: connection closed on submit";
    ++totals_.failed;
    sessions_.emplace(rec.id, std::move(rec));
    cv_.notify_all();
    out.shed_reason = rec.detail;
    return out;
  }
  node->pending[static_cast<std::size_t>(msg.spec.priority)] += 1;
  rec.node = node->name;
  sessions_.emplace(rec.id, std::move(rec));
  out.placed = true;
  out.node = node->name;
  out.spilled = spilled;
  ++totals_.routed;
  if (spilled) ++totals_.spilled;
  return out;
}

void Router::reader_main(Node* n) {
  for (;;) {
    net::Frame f;
    bool open = false;
    try {
      open = n->ch->recv(f);
    } catch (const net::NetError& e) {
      std::scoped_lock lk(mu_);
      if (n->alive) {
        mark_dead_locked(*n, std::string("protocol error: ") + e.what());
      }
      return;
    }
    std::scoped_lock lk(mu_);
    if (!open) {
      // Clean EOF: normal after DrainAck (or once we marked it dead and
      // closed the channel ourselves); anything else is a crashed peer.
      if (n->alive && !n->drain_acked && !stopped_) {
        mark_dead_locked(*n, "connection closed");
      }
      return;
    }
    if (f.type == type_of(MsgType::Heartbeat)) {
      try {
        const HeartbeatMsg hb = decode_heartbeat(f.payload);
        n->load = hb.load;
        n->last_hb = std::chrono::steady_clock::now();
      } catch (const net::WireError& e) {
        mark_dead_locked(*n, std::string("bad heartbeat: ") + e.what());
        return;
      }
    } else if (f.type == type_of(MsgType::SubmitAck)) {
      try {
        const SubmitAckMsg ack = decode_submit_ack(f.payload);
        auto it = sessions_.find(ack.global_id);
        if (it != sessions_.end()) {
          auto& p =
              n->pending[static_cast<std::size_t>(it->second.priority)];
          if (p > 0) --p;
          if (!ack.accepted && !it->second.terminal) {
            it->second.terminal = true;
            it->second.state = WireState::Shed;
            it->second.detail = ack.shed_reason;
            ++totals_.shed_node;
            ++n->shed;
            cv_.notify_all();
          }
        }
      } catch (const net::WireError& e) {
        mark_dead_locked(*n, std::string("bad ack: ") + e.what());
        return;
      }
    } else if (f.type == type_of(MsgType::Result)) {
      try {
        ResultMsg msg = decode_result(f.payload);
        auto it = sessions_.find(msg.global_id);
        if (it != sessions_.end() && !it->second.terminal) {
          it->second.terminal = true;
          it->second.state = msg.state;
          it->second.detail = std::move(msg.detail);
          it->second.latency_us = msg.latency_us;
          it->second.rollbacks = msg.rollbacks;
          it->second.container = std::move(msg.container);
          switch (it->second.state) {
            case WireState::Done: ++totals_.done; ++n->done; break;
            case WireState::Shed: ++totals_.shed_node; ++n->shed; break;
            case WireState::Failed: ++totals_.failed; ++n->failed; break;
          }
          cv_.notify_all();
        }
      } catch (const net::WireError& e) {
        mark_dead_locked(*n, std::string("bad result: ") + e.what());
        return;
      }
    } else if (f.type == type_of(MsgType::DrainAck)) {
      n->drain_acked = true;
      cv_.notify_all();
    }
    // Unknown-but-well-framed types are skipped: forward compatibility
    // within a protocol version.
  }
}

void Router::monitor_main() {
  std::unique_lock lk(mu_);
  const auto interval = std::chrono::milliseconds(
      std::max<std::uint64_t>(1, opts_.monitor_interval_ms));
  const auto timeout =
      std::chrono::milliseconds(std::max<std::uint64_t>(1, opts_.heartbeat_timeout_ms));
  for (;;) {
    if (cv_.wait_for(lk, interval, [&] { return stopped_; })) return;
    const auto now = std::chrono::steady_clock::now();
    for (auto& n : nodes_) {
      if (n->alive && !n->drain_acked && now - n->last_hb > timeout) {
        mark_dead_locked(
            *n, "heartbeat timeout (" +
                    std::to_string(opts_.heartbeat_timeout_ms) + " ms)");
      }
    }
  }
}

void Router::mark_dead_locked(Node& n, const std::string& why) {
  if (!n.alive) return;
  n.alive = false;
  ++totals_.node_deaths;
  std::fprintf(stderr, "router: node '%s' marked dead: %s\n", n.name.c_str(),
               why.c_str());
  for (auto& [id, rec] : sessions_) {
    if (!rec.terminal && rec.node == n.name) {
      rec.terminal = true;
      rec.state = WireState::Failed;
      rec.detail = "node '" + n.name + "' lost: " + why;
      ++totals_.failed;
      ++n.failed;
    }
  }
  // Wake the node's reader (EOF) and poison writes. Waiters re-check.
  n.ch->close();
  cv_.notify_all();
}

Router::SessionOutcome Router::wait(std::uint64_t id) {
  std::unique_lock lk(mu_);
  auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    SessionOutcome miss;
    miss.id = id;
    miss.terminal = true;
    miss.state = WireState::Failed;
    miss.detail = "unknown session id";
    return miss;
  }
  cv_.wait(lk, [&] { return it->second.terminal; });
  return it->second;
}

Router::Totals Router::totals() const {
  std::scoped_lock lk(mu_);
  return totals_;
}

std::vector<Router::NodeStatus> Router::nodes() const {
  std::scoped_lock lk(mu_);
  std::vector<NodeStatus> out;
  out.reserve(nodes_.size());
  for (const auto& n : nodes_) {
    out.push_back({n->name, n->alive, n->load, n->done, n->shed, n->failed});
  }
  return out;
}

std::size_t Router::alive_nodes() const {
  std::scoped_lock lk(mu_);
  std::size_t k = 0;
  for (const auto& n : nodes_) {
    if (n->alive) ++k;
  }
  return k;
}

void Router::drain() {
  std::unique_lock lk(mu_);
  if (draining_) return;
  draining_ = true;
  // 1. Every in-flight session resolves: results from live nodes, death
  // attribution from the monitor for quiet ones — so this wait cannot hang
  // on a dead node, only take one heartbeat timeout.
  cv_.wait(lk, [&] {
    return std::all_of(sessions_.begin(), sessions_.end(),
                       [](const auto& kv) { return kv.second.terminal; });
  });
  // 2. Polite goodbye to survivors.
  for (auto& n : nodes_) {
    if (n->alive) (void)n->ch->send(type_of(MsgType::Drain), {});
  }
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(opts_.heartbeat_timeout_ms);
  cv_.wait_until(lk, deadline, [&] {
    return std::all_of(nodes_.begin(), nodes_.end(), [](const auto& n) {
      return !n->alive || n->drain_acked;
    });
  });
  for (auto& n : nodes_) n->ch->close();
  lk.unlock();
  for (auto& n : nodes_) {
    if (n->reader.joinable()) n->reader.join();
  }
}

}  // namespace dist
