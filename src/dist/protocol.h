// Distributed-serving protocol: the messages a router and a node agent
// exchange over one net::Channel, and their wire codecs.
//
// Connection shape (router is always the dialing side):
//
//   router ──connect──► agent
//   router ──Hello─────► agent          identify the peer
//   router ◄──HelloAck── agent          node name/capacity + first snapshot
//   router ──Submit────► agent          one session (spec, not bytes: the
//                                       workload is synthetic or a path)
//   router ◄──SubmitAck─ agent          admitted-or-shed, queue depth
//   router ◄──Result──── agent          terminal state + container bytes
//   router ◄──Heartbeat─ agent          periodic health + LoadSnapshot
//   router ──Drain─────► agent          finish in-flight, then
//   router ◄──DrainAck── agent          ...agent confirms and both close
//
// Every decode_* routine consumes a net::WireReader to the end and throws
// net::WireError on anything short, oversized or out-of-range — a hostile
// or version-skewed peer produces a clean per-connection error, never an
// over-read (frame-level hardening is in net/frame.h; this layer adds enum
// range checks and exact-length enforcement).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/wire.h"
#include "pipeline/run_config.h"
#include "serve/load.h"
#include "serve/session.h"

namespace dist {

enum class MsgType : std::uint16_t {
  Hello = 1,
  HelloAck = 2,
  Submit = 3,
  SubmitAck = 4,
  Result = 5,
  Heartbeat = 6,
  Drain = 7,
  DrainAck = 8,
};

[[nodiscard]] std::string to_string(MsgType t);

/// What a client asks the cluster to run: serving metadata plus a compact
/// workload description. The workload travels as a *spec* (synthetic
/// corpus parameters or an input path resolved on the serving node), so a
/// Submit frame stays small no matter how large the input is; both sides
/// expand it through the same to_run_config(), which is what makes
/// distributed output byte-identical to a local run of the same spec.
struct SessionSpec {
  std::string name;
  serve::Priority priority = serve::Priority::Batch;
  std::uint64_t queue_deadline_us = 0;

  wl::FileKind file = wl::FileKind::Txt;
  std::uint64_t bytes = 0;  ///< synthetic corpus size (0 = paper size)
  std::uint64_t seed = 42;
  /// Non-empty: compress this file (a path on the *serving* node's disk)
  /// instead of a synthetic corpus.
  std::string input_path;
  sre::DispatchPolicy policy = sre::DispatchPolicy::Balanced;
};

/// Expands a spec into the full run configuration, identically on every
/// node (RunConfig::x86_disk plus the spec's overrides).
[[nodiscard]] pipeline::RunConfig to_run_config(const SessionSpec& spec);

struct HelloMsg {
  std::string peer_name;
};

struct HelloAckMsg {
  std::string node_name;
  std::uint32_t workers = 0;
  std::uint64_t max_concurrent = 0;
  serve::LoadSnapshot load;
};

struct SubmitMsg {
  std::uint64_t global_id = 0;  ///< router-assigned, cluster-unique
  SessionSpec spec;
};

struct SubmitAckMsg {
  std::uint64_t global_id = 0;
  bool accepted = false;
  std::string shed_reason;  ///< non-empty iff !accepted
  std::uint64_t queued = 0;  ///< agent's admission depth after the offer
};

/// Terminal session states as they travel on the wire (a strict subset of
/// serve::SessionState — only terminal states are ever reported).
enum class WireState : std::uint8_t { Done = 0, Shed = 1, Failed = 2 };

struct ResultMsg {
  std::uint64_t global_id = 0;
  WireState state = WireState::Done;
  std::string detail;  ///< shed reason or error; empty for Done
  std::uint64_t latency_us = 0;
  std::uint64_t rollbacks = 0;
  std::vector<std::uint8_t> container;  ///< compressed output (Done only)
};

struct HeartbeatMsg {
  std::uint64_t t_us = 0;  ///< agent engine time (monotonic per node)
  serve::LoadSnapshot load;
};

// Drain and DrainAck carry no payload.

[[nodiscard]] std::vector<std::uint8_t> encode(const HelloMsg& m);
[[nodiscard]] std::vector<std::uint8_t> encode(const HelloAckMsg& m);
[[nodiscard]] std::vector<std::uint8_t> encode(const SubmitMsg& m);
[[nodiscard]] std::vector<std::uint8_t> encode(const SubmitAckMsg& m);
[[nodiscard]] std::vector<std::uint8_t> encode(const ResultMsg& m);
[[nodiscard]] std::vector<std::uint8_t> encode(const HeartbeatMsg& m);

[[nodiscard]] HelloMsg decode_hello(const std::vector<std::uint8_t>& p);
[[nodiscard]] HelloAckMsg decode_hello_ack(const std::vector<std::uint8_t>& p);
[[nodiscard]] SubmitMsg decode_submit(const std::vector<std::uint8_t>& p);
[[nodiscard]] SubmitAckMsg decode_submit_ack(const std::vector<std::uint8_t>& p);
[[nodiscard]] ResultMsg decode_result(const std::vector<std::uint8_t>& p);
[[nodiscard]] HeartbeatMsg decode_heartbeat(const std::vector<std::uint8_t>& p);

}  // namespace dist
