#include "workload/text_gen.h"

#include <array>
#include <string>

#include "workload/rng.h"

namespace wl {
namespace {

// Approximate English letter frequencies (per mille).
constexpr std::array<std::pair<char, double>, 26> kLetterFreq = {{
    {'e', 127}, {'t', 91}, {'a', 82}, {'o', 75}, {'i', 70}, {'n', 67},
    {'s', 63},  {'h', 61}, {'r', 60}, {'d', 43}, {'l', 40}, {'c', 28},
    {'u', 28},  {'m', 24}, {'w', 24}, {'f', 22}, {'g', 20}, {'y', 20},
    {'p', 19},  {'b', 15}, {'v', 10}, {'k', 8},  {'j', 2},  {'x', 2},
    {'q', 1},   {'z', 1},
}};

std::vector<std::string> build_vocabulary(std::size_t n, Rng& rng) {
  std::vector<double> letter_w;
  letter_w.reserve(kLetterFreq.size());
  for (const auto& [c, w] : kLetterFreq) letter_w.push_back(w);
  const DiscreteSampler letters(letter_w);

  std::vector<std::string> vocab;
  vocab.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Word lengths roughly geometric, 2..12 characters; frequent (low-rank)
    // words skew shorter, like real English.
    const std::size_t base = 1 + (i < n / 20 ? rng.below(4) : rng.below(9));
    std::string word;
    for (std::size_t j = 0; j <= base; ++j) {
      word += kLetterFreq[letters.sample(rng)].first;
    }
    vocab.push_back(std::move(word));
  }
  return vocab;
}

}  // namespace

std::vector<std::uint8_t> generate_text(std::size_t bytes, std::uint64_t seed,
                                        const TextParams& params) {
  Rng rng(splitmix64(seed ^ 0x7e87ULL));
  const auto vocab = build_vocabulary(params.vocabulary, rng);
  const DiscreteSampler word_ranks(zipf_weights(params.vocabulary, params.zipf_s));

  std::vector<std::uint8_t> out;
  out.reserve(bytes + 16);
  std::size_t words_in_paragraph = 0;
  std::size_t words_in_sentence = 0;
  bool capitalize = true;

  while (out.size() < bytes) {
    std::string word = vocab[word_ranks.sample(rng)];
    if (capitalize) {
      word[0] = static_cast<char>(word[0] - 'a' + 'A');
      capitalize = false;
    }
    out.insert(out.end(), word.begin(), word.end());

    ++words_in_sentence;
    ++words_in_paragraph;

    if (words_in_paragraph >= params.paragraph_words && rng.below(4) == 0) {
      out.push_back('.');
      out.push_back('\n');
      out.push_back('\n');
      words_in_paragraph = 0;
      words_in_sentence = 0;
      capitalize = true;
    } else if (words_in_sentence >= 6 && rng.below(9) == 0) {
      out.push_back(rng.below(8) == 0 ? ';' : '.');
      out.push_back(' ');
      words_in_sentence = 0;
      capitalize = true;
    } else if (rng.below(14) == 0) {
      out.push_back(',');
      out.push_back(' ');
    } else {
      out.push_back(' ');
    }
  }
  out.resize(bytes);
  return out;
}

}  // namespace wl
