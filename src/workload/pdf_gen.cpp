#include "workload/pdf_gen.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "workload/rng.h"
#include "workload/text_gen.h"

namespace wl {
namespace {

void append_str(std::vector<std::uint8_t>& out, const std::string& s,
                std::size_t limit) {
  for (char c : s) {
    if (out.size() >= limit) return;
    out.push_back(static_cast<std::uint8_t>(c));
  }
}

/// ASCII object: PDF dictionary syntax plus embedded page text.
void append_text_object(std::vector<std::uint8_t>& out, std::size_t limit,
                        Rng& rng, std::size_t obj_id) {
  append_str(out,
             std::to_string(obj_id) + " 0 obj\n<< /Type /Page /Parent " +
                 std::to_string(obj_id / 7 + 1) + " 0 R /Contents [ ",
             limit);
  const std::size_t text_len = 800 + rng.below(2400);
  const auto text = generate_text(text_len, rng.next());
  const std::size_t room = out.size() < limit ? limit - out.size() : 0;
  out.insert(out.end(), text.begin(),
             text.begin() + static_cast<std::ptrdiff_t>(
                                std::min(text.size(), room)));
  append_str(out, " ] >>\nendobj\n", limit);
}

/// Binary stream object of roughly `body` bytes: near-uniform, as Flate
/// output looks, with mild byte biases.
void append_stream_object(std::vector<std::uint8_t>& out, std::size_t limit,
                          Rng& rng, std::size_t obj_id, std::size_t body) {
  append_str(out,
             std::to_string(obj_id) + " 0 obj\n<< /Length " +
                 std::to_string(body) + " /Filter /FlateDecode >>\nstream\n",
             limit);
  for (std::size_t i = 0; i < body && out.size() < limit; ++i) {
    const std::uint64_t r = rng.next();
    auto b = static_cast<std::uint8_t>(r);
    if ((r >> 56) < 12) b = static_cast<std::uint8_t>(b & 0x7F);
    out.push_back(b);
  }
  append_str(out, "\nendstream\nendobj\n", limit);
}

}  // namespace

std::vector<std::uint8_t> generate_pdf(std::size_t bytes, std::uint64_t seed,
                                       const PdfParams& params) {
  std::vector<std::uint8_t> out;
  out.reserve(bytes);
  Rng rng(splitmix64(seed ^ 0x9dfULL));

  append_str(out, "%PDF-1.7\n%\xE2\xE3\xCF\xD3\n", bytes);

  // Composition control: the document starts text-heavy (front matter —
  // catalog, outlines, fonts, page dictionaries) and big compressed streams
  // take over in two bursts. We target the *prefix-average* text share
  // θ̄(s), because that is the quantity the speculation check compares, and
  // derive each chunk's text fraction from the target's derivative. See
  // PdfParams for the paper-shape rationale.
  const double chunk = 64.0 * 1024.0;
  std::size_t obj_id = 1;

  const auto theta_bar = [&params](double s) {
    const auto lerp = [](double a, double b, double t) {
      return a + (b - a) * t;
    };
    if (s <= params.burst1_begin) return params.theta_start;
    if (s <= params.burst1_end) {
      return lerp(params.theta_start, params.theta_mid,
                  (s - params.burst1_begin) /
                      (params.burst1_end - params.burst1_begin));
    }
    if (s <= params.burst2_begin) return params.theta_mid;
    if (s <= params.burst2_end) {
      return lerp(params.theta_mid, params.theta_end,
                  (s - params.burst2_begin) /
                      (params.burst2_end - params.burst2_begin));
    }
    return params.theta_end;
  };

  while (out.size() < bytes) {
    const double x = static_cast<double>(out.size()) / chunk;
    // g(s) = d/ds [s·θ̄(s)] keeps the realized prefix average on target.
    const double text_frac = std::clamp(
        (x + 1.0) * theta_bar(x + 1.0) - x * theta_bar(x), 0.02, 0.98);

    // Fill one ~8 KiB slice with the planned mixture: text objects and a
    // stream object interleaved at sub-block granularity.
    const std::size_t slice_end = std::min(bytes, out.size() + 8 * 1024);
    const auto text_budget = static_cast<std::size_t>(
        text_frac * static_cast<double>(slice_end - out.size()));
    const std::size_t text_end = std::min(slice_end, out.size() + text_budget);
    while (out.size() < text_end) {
      append_text_object(out, text_end, rng, obj_id++);
    }
    if (out.size() < slice_end) {
      append_stream_object(out, slice_end, rng, obj_id++,
                           slice_end - out.size());
    }
  }
  append_str(out, "%%EOF\n", bytes);
  out.resize(bytes);
  return out;
}

}  // namespace wl
