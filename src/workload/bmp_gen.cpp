#include "workload/bmp_gen.h"

#include <algorithm>
#include <cmath>

#include "workload/rng.h"

namespace wl {
namespace {

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}
void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xFF));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

}  // namespace

std::vector<std::uint8_t> generate_bmp(std::size_t bytes, std::uint64_t seed,
                                       const BmpParams& params) {
  std::vector<std::uint8_t> out;
  out.reserve(bytes);

  // --- BITMAPFILEHEADER + BITMAPINFOHEADER (54 bytes) ---------------------
  const std::uint32_t width = 1024;
  const std::uint32_t pixel_bytes =
      bytes > 54 ? static_cast<std::uint32_t>(bytes - 54) : 0;
  const std::uint32_t height = pixel_bytes / (width * 3) + 1;
  out.push_back('B');
  out.push_back('M');
  put_u32(out, static_cast<std::uint32_t>(bytes));  // file size
  put_u16(out, 0);
  put_u16(out, 0);
  put_u32(out, 54);  // pixel data offset
  put_u32(out, 40);  // BITMAPINFOHEADER size
  put_u32(out, width);
  put_u32(out, height);
  put_u16(out, 1);   // planes
  put_u16(out, 24);  // bpp
  put_u32(out, 0);   // BI_RGB
  put_u32(out, pixel_bytes);
  put_u32(out, 2835);  // x ppm
  put_u32(out, 2835);  // y ppm
  put_u32(out, 0);
  put_u32(out, 0);

  // --- Pixel data ----------------------------------------------------------
  // Sky-to-ground composition: the probability that a pixel belongs to the
  // smooth (sky/gradient) process decays exponentially with file position,
  // so prefix histograms over-weight the smooth distribution early and
  // converge once the texture process dominates. The decay constant sets
  // where the speculation-step threshold lands (paper Fig. 5b: around 8
  // estimates of 64 KiB each).
  Rng rng(splitmix64(seed ^ 0xb3bULL));
  const double chunk = 64.0 * 1024.0;  // one estimate's worth of bytes
  double phase = 0.0;
  std::uint8_t base = 96;
  std::size_t run = 0;

  while (out.size() < bytes) {
    const double x = static_cast<double>(out.size() - 54) / chunk;
    const double smooth_p =
        params.smooth_floor +
        (params.smooth_start - params.smooth_floor) *
            std::exp(-x / params.smooth_decay_chunks);

    if (rng.uniform() < smooth_p) {
      // Smooth process: slow sinusoidal gradient, narrow dither.
      phase += 0.00035;
      const double center = 128.0 + 48.0 * std::sin(phase);
      const auto spread = static_cast<std::uint64_t>(params.gradient_spread);
      out.push_back(static_cast<std::uint8_t>(
          std::clamp(center + static_cast<double>(rng.below(2 * spread + 1)) -
                         static_cast<double>(spread),
                     0.0, 255.0)));
    } else {
      // Texture process: macroblock base color plus strong wide noise.
      if (run == 0) {
        base = static_cast<std::uint8_t>(rng.below(256));
        run = 512 + rng.below(1536);
      }
      --run;
      const auto noise = static_cast<int>(rng.below(160)) - 80;
      const int mixed = (rng.below(5) == 0)
                            ? static_cast<int>(rng.below(256))
                            : static_cast<int>(base) + noise;
      out.push_back(static_cast<std::uint8_t>(std::clamp(mixed, 0, 255)));
    }
  }
  return out;
}

}  // namespace wl
