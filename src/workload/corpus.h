// Corpus: the three benchmark inputs at the paper's sizes.
//
// "the encoder parses 4MB of both the text and PDF files, while parsing only
//  2MB of the BMP file" (paper §V-A). With the paper's 4 KiB blocks this
//  gives the 1024-element (TXT/PDF) and 512-element (BMP) x-axes of the
//  latency figures.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace wl {

enum class FileKind : std::uint8_t { Txt, Bmp, Pdf };

[[nodiscard]] std::string to_string(FileKind kind);

/// The paper's input size for `kind` (4 MiB for TXT/PDF, 2 MiB for BMP).
[[nodiscard]] std::size_t paper_size(FileKind kind);

/// Generates the workload for `kind`: `bytes` bytes, deterministic in
/// `seed`. Pass bytes = 0 to use the paper's size.
[[nodiscard]] std::vector<std::uint8_t> make_corpus(FileKind kind,
                                                    std::size_t bytes = 0,
                                                    std::uint64_t seed = 42);

[[nodiscard]] inline std::vector<FileKind> all_kinds() {
  return {FileKind::Txt, FileKind::Bmp, FileKind::Pdf};
}

}  // namespace wl
