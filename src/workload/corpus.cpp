#include "workload/corpus.h"

#include <stdexcept>

#include "workload/bmp_gen.h"
#include "workload/pdf_gen.h"
#include "workload/text_gen.h"

namespace wl {

std::string to_string(FileKind kind) {
  switch (kind) {
    case FileKind::Txt: return "TXT";
    case FileKind::Bmp: return "BMP";
    case FileKind::Pdf: return "PDF";
  }
  return "?";
}

std::size_t paper_size(FileKind kind) {
  switch (kind) {
    case FileKind::Txt:
    case FileKind::Pdf:
      return 4u * 1024 * 1024;
    case FileKind::Bmp:
      return 2u * 1024 * 1024;
  }
  throw std::invalid_argument("paper_size: unknown kind");
}

std::vector<std::uint8_t> make_corpus(FileKind kind, std::size_t bytes,
                                      std::uint64_t seed) {
  if (bytes == 0) bytes = paper_size(kind);
  switch (kind) {
    case FileKind::Txt:
      return generate_text(bytes, seed);
    case FileKind::Bmp:
      return generate_bmp(bytes, seed);
    case FileKind::Pdf:
      return generate_pdf(bytes, seed);
  }
  throw std::invalid_argument("make_corpus: unknown kind");
}

}  // namespace wl
