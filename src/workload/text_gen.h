// Synthetic e-book text (the paper's TXT workload).
//
// A stationary word model: a Zipf-distributed vocabulary whose words are
// drawn from English letter frequencies, joined with spaces, punctuation and
// paragraph breaks. Stationarity is the property that matters for the
// experiments — the prefix histogram converges almost immediately, so
// speculation on TXT never rolls back (paper §V-A: "The text file
// demonstrates the advantages of speculation in no-rollback scenarios").
#pragma once

#include <cstdint>
#include <vector>

namespace wl {

struct TextParams {
  std::size_t vocabulary = 2000;
  double zipf_s = 1.05;           ///< word-rank skew
  std::size_t paragraph_words = 90;
};

/// Generates `bytes` bytes of text, deterministic in `seed`.
[[nodiscard]] std::vector<std::uint8_t> generate_text(std::size_t bytes,
                                                      std::uint64_t seed,
                                                      const TextParams& params = {});

}  // namespace wl
