// Synthetic bitmap image (the paper's BMP workload).
//
// A real BMP layout: 54-byte header, then raw 24-bit pixel rows. The image
// content is chosen to give the convergence profile the paper observes: an
// initial *smooth* region (sky-like gradients — narrow byte range, low
// entropy) followed by a *textured* region (wide range, high entropy). The
// prefix histogram therefore misrepresents the file until the texture starts
// streaming in, producing rollbacks for small speculation step sizes and
// clean runs once the step jumps past the transient (paper Fig. 5b: the
// threshold sits around step 8).
#pragma once

#include <cstdint>
#include <vector>

namespace wl {

struct BmpParams {
  /// Probability a pixel comes from the smooth process at file start / in
  /// the limit; the decay constant is in 64 KiB chunks (one estimate).
  double smooth_start = 0.97;
  double smooth_floor = 0.04;
  double smooth_decay_chunks = 3.0;
  /// Byte-range half-width of the gradient dither (small = low entropy).
  unsigned gradient_spread = 24;
};

/// Generates a BMP-like byte stream of exactly `bytes` bytes (header
/// included), deterministic in `seed`.
[[nodiscard]] std::vector<std::uint8_t> generate_bmp(std::size_t bytes,
                                                     std::uint64_t seed,
                                                     const BmpParams& params = {});

}  // namespace wl
