// Deterministic pseudo-random generation for synthetic workloads.
//
// Not <random>: libstdc++'s distributions are not guaranteed stable across
// versions, and every byte of a workload must be reproducible from its seed
// alone — the figure benchmarks and the golden tests depend on it.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace wl {

/// splitmix64 — used for seeding and one-off hashes.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// xoshiro256** — fast, high-quality, tiny state.
class Rng {
 public:
  explicit constexpr Rng(std::uint64_t seed) {
    std::uint64_t s = seed;
    for (auto& word : state_) {
      s = splitmix64(s);
      word = s;
    }
  }

  constexpr std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be nonzero.
  constexpr std::uint64_t below(std::uint64_t bound) {
    // Lemire-style rejection-free reduction is overkill here; modulo bias is
    // negligible for bounds ≪ 2^64 and determinism is all we need.
    return next() % bound;
  }

  /// Uniform double in [0, 1).
  constexpr double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> state_{};
};

/// Samples indices from an explicit weight table (linear scan; tables here
/// are ≤ a few thousand entries and generation is not on any measured path).
class DiscreteSampler {
 public:
  explicit DiscreteSampler(std::vector<double> weights);

  /// Index in [0, weights.size()).
  [[nodiscard]] std::size_t sample(Rng& rng) const;

  [[nodiscard]] std::size_t size() const { return cumulative_.size(); }

 private:
  std::vector<double> cumulative_;  // normalized inclusive prefix sums
};

/// Zipf(s) weights over `n` ranks: weight(r) ∝ 1/(r+1)^s.
[[nodiscard]] std::vector<double> zipf_weights(std::size_t n, double s);

}  // namespace wl
