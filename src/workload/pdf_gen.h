// Synthetic PDF-like document (the paper's PDF workload).
//
// PDFs interleave ASCII object/dictionary syntax with Flate-compressed
// stream objects that look near-uniform. The mixture ratio seen by a prefix
// therefore keeps drifting as big binary streams come and go, so prefix
// histograms converge late — "BMPs and PDFs generally have a high entropy
// resulting in frequent rollbacks" (paper §V-A), with the PDF threshold at a
// larger step size than BMP (Fig. 5c: around 16).
//
// The section plan is deterministic in the seed; early sections are
// text-heavier and stream sections grow toward the end, which both delays
// convergence and leaves a final-tree gap in the low-percent range — the
// property the tolerance experiment (Fig. 9) depends on.
#pragma once

#include <cstdint>
#include <vector>

namespace wl {

struct PdfParams {
  /// The generator controls the *prefix-average* text share θ̄(s) (s in
  /// 64 KiB chunks — one estimate each) because that is exactly what the
  /// speculation check sees. The profile is piecewise linear through these
  /// breakpoints and flat afterwards; per-chunk text fractions are derived
  /// as g(s) = (s+1)·θ̄(s+1) − s·θ̄(s).
  ///
  /// Two drift bursts sized to the paper's behaviour: a first-estimate guess
  /// fails its check near estimate 8, the re-speculated guess fails again
  /// near 16, and guesses from estimate 16 on hold — while the total drift
  /// keeps the first guess inside a 5 % tolerance (Fig. 9).
  double theta_start = 0.80;  ///< θ̄ up to burst 1
  double theta_mid = 0.645;   ///< θ̄ after burst 1 (chunks 8–9)
  double theta_end = 0.433;   ///< θ̄ after burst 2 (chunk 16 on)
  double burst1_begin = 2.0;
  double burst1_end = 8.0;
  double burst2_begin = 9.0;
  double burst2_end = 16.0;
};

[[nodiscard]] std::vector<std::uint8_t> generate_pdf(std::size_t bytes,
                                                     std::uint64_t seed,
                                                     const PdfParams& params = {});

}  // namespace wl
