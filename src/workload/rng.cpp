#include "workload/rng.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace wl {

DiscreteSampler::DiscreteSampler(std::vector<double> weights) {
  if (weights.empty()) {
    throw std::invalid_argument("DiscreteSampler: empty weights");
  }
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0) throw std::invalid_argument("DiscreteSampler: negative weight");
    total += w;
  }
  if (total <= 0.0) {
    throw std::invalid_argument("DiscreteSampler: all-zero weights");
  }
  cumulative_.reserve(weights.size());
  double run = 0.0;
  for (double w : weights) {
    run += w / total;
    cumulative_.push_back(run);
  }
  cumulative_.back() = 1.0;  // guard against floating-point shortfall
}

std::size_t DiscreteSampler::sample(Rng& rng) const {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cumulative_.begin(), cumulative_.end(), u);
  return static_cast<std::size_t>(it - cumulative_.begin());
}

std::vector<double> zipf_weights(std::size_t n, double s) {
  std::vector<double> w(n);
  for (std::size_t r = 0; r < n; ++r) {
    w[r] = 1.0 / std::pow(static_cast<double>(r + 1), s);
  }
  return w;
}

}  // namespace wl
