#include "anneal/tsp.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "workload/rng.h"

namespace ann {
namespace {

double dist(const Cities& c, std::uint32_t a, std::uint32_t b) {
  const double dx = c.x(a) - c.x(b);
  const double dy = c.y(a) - c.y(b);
  return std::sqrt(dx * dx + dy * dy);
}

}  // namespace

Cities make_cities(std::size_t n, std::uint64_t seed, double scale) {
  if (n < 3) throw std::invalid_argument("make_cities: need at least 3");
  wl::Rng rng(wl::splitmix64(seed ^ 0x7559ULL));
  Cities c;
  c.xy.resize(2 * n);
  for (std::size_t i = 0; i < 2 * n; ++i) {
    c.xy[i] = rng.uniform() * scale;
  }
  return c;
}

double tour_cost(const Cities& cities, const Tour& tour) {
  double total = 0.0;
  const std::size_t n = tour.order.size();
  for (std::size_t i = 0; i < n; ++i) {
    total += dist(cities, tour.order[i], tour.order[(i + 1) % n]);
  }
  return total;
}

Tour initial_tour(std::size_t n) {
  Tour t;
  t.order.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    t.order[i] = static_cast<std::uint32_t>(i);
  }
  return t;
}

Annealer::Annealer(const Cities& cities, std::uint64_t seed,
                   double start_temperature, double cooling,
                   std::size_t moves_per_sweep)
    : cities_(cities),
      tour_(initial_tour(cities.size())),
      cost_(tour_cost(cities, tour_)),
      temperature_(start_temperature),
      cooling_(cooling),
      moves_per_sweep_(moves_per_sweep) {
  if (cooling <= 0.0 || cooling >= 1.0) {
    throw std::invalid_argument("Annealer: cooling must be in (0,1)");
  }
  std::uint64_t s = wl::splitmix64(seed ^ 0xa22ea1ULL);
  for (auto& word : rng_state_) {
    s = wl::splitmix64(s);
    word = s;
  }
}

std::uint64_t Annealer::next_random() {
  // xoshiro256** (inlined; matching wl::Rng's generator).
  const auto rotl = [](std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  };
  const std::uint64_t result = rotl(rng_state_[1] * 5, 7) * 9;
  const std::uint64_t t = rng_state_[1] << 17;
  rng_state_[2] ^= rng_state_[0];
  rng_state_[3] ^= rng_state_[1];
  rng_state_[1] ^= rng_state_[2];
  rng_state_[0] ^= rng_state_[3];
  rng_state_[2] ^= t;
  rng_state_[3] = rotl(rng_state_[3], 45);
  return result;
}

double Annealer::sweep() {
  const std::size_t n = tour_.order.size();
  for (std::size_t m = 0; m < moves_per_sweep_; ++m) {
    // 2-opt: reverse the segment (i+1 .. j).
    std::size_t i = next_random() % n;
    std::size_t j = next_random() % n;
    if (i == j) continue;
    if (i > j) std::swap(i, j);
    if (i + 1 == j || (i == 0 && j == n - 1)) continue;

    const std::uint32_t a = tour_.order[i];
    const std::uint32_t b = tour_.order[i + 1];
    const std::uint32_t c = tour_.order[j];
    const std::uint32_t d = tour_.order[(j + 1) % n];
    const double delta = dist(cities_, a, c) + dist(cities_, b, d) -
                         dist(cities_, a, b) - dist(cities_, c, d);
    bool accept = delta < 0.0;
    if (!accept && temperature_ > 1e-9) {
      const double u = static_cast<double>(next_random() >> 11) * 0x1.0p-53;
      accept = u < std::exp(-delta / temperature_);
    }
    if (accept) {
      std::reverse(tour_.order.begin() + static_cast<std::ptrdiff_t>(i + 1),
                   tour_.order.begin() + static_cast<std::ptrdiff_t>(j + 1));
      cost_ += delta;
    }
  }
  temperature_ *= cooling_;
  ++sweeps_;
  // Re-derive the cost periodically to keep float drift bounded.
  if (sweeps_ % 8 == 0) cost_ = tour_cost(cities_, tour_);
  return cost_;
}

std::vector<std::uint32_t> match_points(const Cities& cities, const Tour& tour,
                                        std::span<const double> query_xy,
                                        std::size_t begin_point,
                                        std::size_t end_point) {
  const std::size_t n = tour.order.size();
  std::vector<std::uint32_t> out;
  out.reserve(end_point - begin_point);
  for (std::size_t q = begin_point; q < end_point; ++q) {
    const double px = query_xy[2 * q];
    const double py = query_xy[2 * q + 1];
    double best_d = std::numeric_limits<double>::infinity();
    std::uint32_t best_e = 0;
    for (std::size_t e = 0; e < n; ++e) {
      const std::uint32_t a = tour.order[e];
      const std::uint32_t b = tour.order[(e + 1) % n];
      // Distance from point to segment ab.
      const double ax = cities.x(a);
      const double ay = cities.y(a);
      const double bx = cities.x(b);
      const double by = cities.y(b);
      const double vx = bx - ax;
      const double vy = by - ay;
      const double len2 = vx * vx + vy * vy;
      double t = len2 > 0.0 ? ((px - ax) * vx + (py - ay) * vy) / len2 : 0.0;
      t = std::clamp(t, 0.0, 1.0);
      const double dx = px - (ax + t * vx);
      const double dy = py - (ay + t * vy);
      const double d = dx * dx + dy * dy;
      if (d < best_d) {
        best_d = d;
        best_e = static_cast<std::uint32_t>(e);
      }
    }
    out.push_back(best_e);
  }
  return out;
}

std::vector<double> make_queries(const Cities& cities, std::size_t n,
                                 std::uint64_t seed) {
  wl::Rng rng(wl::splitmix64(seed ^ 0x9e41ULL));
  std::vector<double> out(2 * n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t near = rng.below(cities.size());
    out[2 * i] = cities.x(near) + (rng.uniform() - 0.5) * 8.0;
    out[2 * i + 1] = cities.y(near) + (rng.uniform() - 0.5) * 8.0;
  }
  return out;
}

}  // namespace ann
