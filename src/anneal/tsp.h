// Simulated annealing on the travelling-salesman problem: the paper's other
// named iterative heuristic ("random-based optimization heuristics such as
// simulated annealing are commonly used in large computations", §II-A).
//
// Unlike the Wiener solver and Lloyd's k-means, annealing's intermediate
// results are *non-monotone*: the tour cost jitters as the temperature
// drops, so a speculation adopted from an early sweep can be invalidated by
// a later improvement — and the speculator's rollback → re-speculate cycle
// gets exercised repeatedly rather than at most once or twice.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace ann {

/// 2-D city coordinates, row-major pairs.
struct Cities {
  std::vector<double> xy;
  [[nodiscard]] std::size_t size() const { return xy.size() / 2; }
  [[nodiscard]] double x(std::size_t i) const { return xy[2 * i]; }
  [[nodiscard]] double y(std::size_t i) const { return xy[2 * i + 1]; }
};

/// A tour: a permutation of city indices.
struct Tour {
  std::vector<std::uint32_t> order;
  bool operator==(const Tour&) const = default;
};

/// Deterministic random city layout in the unit square, scaled by `scale`.
[[nodiscard]] Cities make_cities(std::size_t n, std::uint64_t seed,
                                 double scale = 100.0);

/// Total closed-tour length.
[[nodiscard]] double tour_cost(const Cities& cities, const Tour& tour);

/// Identity tour 0..n-1.
[[nodiscard]] Tour initial_tour(std::size_t n);

/// Stateful annealer: one sweep = `moves_per_sweep` random 2-opt proposals
/// under the current temperature, then geometric cooling. Deterministic in
/// the seed.
class Annealer {
 public:
  Annealer(const Cities& cities, std::uint64_t seed,
           double start_temperature = 30.0, double cooling = 0.85,
           std::size_t moves_per_sweep = 2000);

  /// One sweep; returns the current (possibly unimproved) tour cost.
  double sweep();

  [[nodiscard]] const Tour& current() const { return tour_; }
  [[nodiscard]] double current_cost() const { return cost_; }
  [[nodiscard]] double temperature() const { return temperature_; }
  [[nodiscard]] std::size_t sweeps() const { return sweeps_; }

 private:
  const Cities& cities_;
  Tour tour_;
  double cost_;
  double temperature_;
  double cooling_;
  std::size_t moves_per_sweep_;
  std::size_t sweeps_ = 0;
  std::uint64_t rng_state_[4];
  std::uint64_t next_random();
};

/// Downstream parallel phase: snap query points to their nearest tour edge
/// (e.g. map-matching deliveries onto the planned route). Returns, per
/// query point, the index of the tour edge it is closest to.
[[nodiscard]] std::vector<std::uint32_t> match_points(
    const Cities& cities, const Tour& tour, std::span<const double> query_xy,
    std::size_t begin_point, std::size_t end_point);

/// Deterministic query points around the cities.
[[nodiscard]] std::vector<double> make_queries(const Cities& cities,
                                               std::size_t n,
                                               std::uint64_t seed);

}  // namespace ann
