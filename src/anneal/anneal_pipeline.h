// AnnealPipeline: speculative route matching on an annealing solver — the
// fourth pipeline on the tvs:: layer, chosen to stress the rollback path.
//
// Natural path: a serial chain of annealing sweeps refines a TSP tour; the
// final tour configures a parallel pass that map-matches a large set of
// query points onto tour edges. Speculative path: an early sweep's tour is
// adopted and matching starts immediately.
//
// The check is *semantic*, in the consumer's units: re-match a small sample
// of query points under both tours and compare the matched edges (as
// unordered city pairs) — the tolerance bounds the fraction of deliveries
// that would land on a different route segment. (A tour-cost tolerance is
// tempting but wrong: two tours within 15 % cost can route almost every
// point differently — exactly the trap the paper's "programmer defines
// comparison criteria" guidance exists to avoid.) Because annealing keeps
// rearranging the tour long after the first sweeps, tight tolerances
// trigger *repeated* rollback → re-speculate cycles, unlike the monotone
// CG/Lloyd scenarios.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "anneal/tsp.h"
#include "core/config.h"
#include "sre/runtime.h"
#include "stats/trace.h"

namespace ann {

struct AnnealPipelineConfig {
  std::size_t sweeps = 24;
  std::size_t block_points = 512;  ///< matching granularity
  std::uint64_t solver_seed = 1;
  /// spec.tolerance = max fraction of the check sample whose matched edge
  /// may differ between the guessed and the current tour.
  tvs::SpecConfig spec;
  std::size_t check_sample = 256;  ///< query points re-matched per check
  std::uint64_t sweep_cost_us = 700;
  std::uint64_t match_cost_us = 400;
  std::uint64_t check_cost_us = 60;  ///< checks re-match a sample: pricier
};

class AnnealPipeline {
 public:
  /// `cities` and `query_xy` must outlive the run.
  AnnealPipeline(sre::Runtime& runtime, const Cities& cities,
                 const std::vector<double>& query_xy,
                 AnnealPipelineConfig config, bool speculation);

  void start();

  // --- Results --------------------------------------------------------

  [[nodiscard]] std::vector<std::uint32_t> matches() const;
  [[nodiscard]] const Tour& committed_tour() const;
  [[nodiscard]] const stats::BlockTrace& trace() const;
  [[nodiscard]] bool speculation_committed() const;
  [[nodiscard]] std::uint64_t rollbacks() const;
  void validate_complete() const;

 private:
  struct State;

  void on_sweep(std::size_t sweep_ix, std::uint64_t now_us);
  void build_match_chain(const Tour& guess, sre::Epoch epoch);
  void build_natural(const Tour& final_tour);

  std::shared_ptr<State> st_;
};

}  // namespace ann
