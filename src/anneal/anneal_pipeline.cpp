#include "anneal/anneal_pipeline.h"

#include <cmath>
#include <mutex>
#include <optional>
#include <stdexcept>

#include "core/speculator.h"
#include "core/wait_buffer.h"

namespace ann {
namespace {

/// The speculated value: a tour snapshot plus its cost (the tolerance
/// quantity, precomputed by the sweep task).
struct TourEstimate {
  std::shared_ptr<const Tour> tour;
  double cost = 0.0;
};

}  // namespace

struct AnnealPipeline::State {
  State(sre::Runtime& runtime, const Cities& c,
        const std::vector<double>& queries, AnnealPipelineConfig config,
        bool spec_on)
      : rt(runtime),
        cities(c),
        query_xy(queries),
        cfg(std::move(config)),
        speculation(spec_on) {}

  sre::Runtime& rt;
  const Cities& cities;
  const std::vector<double>& query_xy;
  AnnealPipelineConfig cfg;
  bool speculation;

  std::size_t n_points = 0;
  std::size_t n_blocks = 0;

  std::mutex mu;
  std::unique_ptr<Annealer> solver;  ///< driven by the serial sweep chain
  std::vector<TourEstimate> snapshots;

  stats::BlockTrace trace;
  std::vector<std::optional<std::vector<std::uint32_t>>> out_blocks;
  Tour committed;
  bool have_committed = false;
  bool spec_committed = false;
  std::uint64_t rollbacks = 0;
  bool natural_built = false;

  std::unique_ptr<tvs::WaitBuffer<std::size_t, std::vector<std::uint32_t>>>
      buffer;
  std::unique_ptr<tvs::Speculator<TourEstimate>> spec;

  [[nodiscard]] std::pair<std::size_t, std::size_t> block_range(
      std::size_t b) const {
    const std::size_t begin = b * cfg.block_points;
    return {begin, std::min(begin + cfg.block_points, n_points)};
  }
};

AnnealPipeline::AnnealPipeline(sre::Runtime& runtime, const Cities& cities,
                               const std::vector<double>& query_xy,
                               AnnealPipelineConfig config, bool speculation)
    : st_(std::make_shared<State>(runtime, cities, query_xy,
                                  std::move(config), speculation)) {
  State& st = *st_;
  if (st.query_xy.empty() || st.query_xy.size() % 2 != 0) {
    throw std::invalid_argument("AnnealPipeline: bad query points");
  }
  if (st.cfg.sweeps == 0 || st.cfg.block_points == 0) {
    throw std::invalid_argument("AnnealPipeline: bad config");
  }
  st.n_points = st.query_xy.size() / 2;
  st.n_blocks = (st.n_points + st.cfg.block_points - 1) / st.cfg.block_points;
  st.trace = stats::BlockTrace(st.n_blocks);
  st.out_blocks.resize(st.n_blocks);
  st.snapshots.resize(st.cfg.sweeps);
  st.solver = std::make_unique<Annealer>(st.cities, st.cfg.solver_seed);

  auto stp = st_;
  st.buffer = std::make_unique<
      tvs::WaitBuffer<std::size_t, std::vector<std::uint32_t>>>(
      [stp](const std::size_t& b, std::vector<std::uint32_t>&& m,
            std::uint64_t) {
        std::scoped_lock lk(stp->mu);
        stp->out_blocks[b] = std::move(m);
      },
      /*retire_window=*/8);

  if (speculation) {
    tvs::Speculator<TourEstimate>::Callbacks cb;
    cb.build_chain = [this](const TourEstimate& guess, sre::Epoch epoch,
                            std::uint32_t) {
      build_match_chain(*guess.tour, epoch);
    };
    cb.within_tolerance = [stp](const TourEstimate& guess,
                                const TourEstimate& cur) {
      // Semantic check: re-match a sample of query points under both tours
      // and compare the matched edges as unordered city pairs. This bounds
      // the consumer-visible error directly (see the header comment for why
      // a tour-cost tolerance would not).
      const std::size_t sample =
          std::min(stp->cfg.check_sample, stp->n_points);
      if (sample == 0) return true;
      const auto a = match_points(stp->cities, *guess.tour, stp->query_xy, 0,
                                  sample);
      const auto b = match_points(stp->cities, *cur.tour, stp->query_xy, 0,
                                  sample);
      const auto edge_cities = [](const Tour& t, std::uint32_t e) {
        const std::size_t n = t.order.size();
        std::uint32_t u = t.order[e];
        std::uint32_t v = t.order[(e + 1) % n];
        if (u > v) std::swap(u, v);
        return std::pair{u, v};
      };
      std::size_t differ = 0;
      for (std::size_t i = 0; i < sample; ++i) {
        if (edge_cities(*guess.tour, a[i]) != edge_cities(*cur.tour, b[i])) {
          ++differ;
        }
      }
      return static_cast<double>(differ) <=
             stp->cfg.spec.tolerance * static_cast<double>(sample);
    };
    cb.on_commit = [stp](sre::Epoch epoch, std::uint64_t now_us) {
      {
        std::scoped_lock lk(stp->mu);
        stp->spec_committed = true;
      }
      stp->buffer->commit(epoch, now_us);
    };
    cb.on_rollback = [stp](sre::Epoch epoch, std::uint64_t) {
      {
        std::scoped_lock lk(stp->mu);
        ++stp->rollbacks;
      }
      stp->buffer->drop(epoch);
    };
    cb.build_natural = [this](const TourEstimate& final_tour, std::uint64_t) {
      build_natural(*final_tour.tour);
    };
    st.spec = std::make_unique<tvs::Speculator<TourEstimate>>(
        runtime, st.cfg.spec, std::move(cb), st.cfg.check_cost_us);
  }
}

void AnnealPipeline::start() {
  auto st = st_;
  auto self = this;
  sre::TaskPtr prev;
  for (std::size_t s = 0; s < st->cfg.sweeps; ++s) {
    auto sweep_task = st->rt.make_task(
        "sweep[" + std::to_string(s + 1) + "]", sre::TaskClass::Natural,
        sre::kNaturalEpoch, /*depth=*/2, st->cfg.sweep_cost_us,
        [st, s](sre::TaskContext&) {
          const double cost = st->solver->sweep();
          st->snapshots[s] = TourEstimate{
              std::make_shared<const Tour>(st->solver->current()), cost};
        });
    sweep_task->add_completion_hook(
        [self, s](sre::Task&, std::uint64_t done_us) {
          self->on_sweep(s, done_us);
        });
    if (prev) st->rt.add_dependency(prev, sweep_task);
    prev = sweep_task;
    st->rt.submit(sweep_task);
  }
  for (std::size_t b = 0; b < st->n_blocks; ++b) {
    st->trace.record_arrival(b, 0);
  }
}

void AnnealPipeline::on_sweep(std::size_t sweep_ix, std::uint64_t now_us) {
  auto st = st_;
  const bool is_final = (sweep_ix + 1 == st->cfg.sweeps);
  const auto index = static_cast<std::uint32_t>(sweep_ix + 1);
  if (!st->spec) {
    if (is_final) build_natural(*st->snapshots[sweep_ix].tour);
    return;
  }
  if (st->spec->wants_estimate(index, is_final)) {
    st->spec->on_estimate(st->snapshots[sweep_ix], index, is_final, now_us);
  }
}

void AnnealPipeline::build_match_chain(const Tour& guess, sre::Epoch epoch) {
  auto st = st_;
  auto tour = std::make_shared<const Tour>(guess);
  for (std::size_t b = 0; b < st->n_blocks; ++b) {
    const auto [begin, end] = st->block_range(b);
    auto matches = std::make_shared<std::vector<std::uint32_t>>();
    auto task = st->rt.make_task(
        "spec-match[" + std::to_string(b) + ",e" + std::to_string(epoch) + "]",
        sre::TaskClass::Speculative, epoch, /*depth=*/3,
        st->cfg.match_cost_us,
        [st, begin, end, tour, matches](sre::TaskContext&) {
          *matches = match_points(st->cities, *tour, st->query_xy, begin, end);
        });
    task->add_completion_hook(
        [st, b, matches, epoch](sre::Task&, std::uint64_t done_us) {
          {
            std::scoped_lock lk(st->mu);
            st->trace.record_done(b, done_us, /*speculative=*/true);
          }
          st->buffer->add(epoch, b, std::move(*matches), done_us);
        });
    st->rt.submit(task);
  }
  {
    std::scoped_lock lk(st->mu);
    st->committed = guess;  // provisional
    st->have_committed = true;
  }
}

void AnnealPipeline::build_natural(const Tour& final_tour) {
  auto st = st_;
  {
    std::scoped_lock lk(st->mu);
    if (st->natural_built) {
      throw std::logic_error("AnnealPipeline: natural path built twice");
    }
    st->natural_built = true;
    st->committed = final_tour;
    st->have_committed = true;
  }
  auto tour = std::make_shared<const Tour>(final_tour);
  for (std::size_t b = 0; b < st->n_blocks; ++b) {
    const auto [begin, end] = st->block_range(b);
    auto matches = std::make_shared<std::vector<std::uint32_t>>();
    auto task = st->rt.make_task(
        "match[" + std::to_string(b) + "]", sre::TaskClass::Natural,
        sre::kNaturalEpoch, /*depth=*/3, st->cfg.match_cost_us,
        [st, begin, end, tour, matches](sre::TaskContext&) {
          *matches = match_points(st->cities, *tour, st->query_xy, begin, end);
        });
    task->add_completion_hook(
        [st, b, matches](sre::Task&, std::uint64_t done_us) {
          std::scoped_lock lk(st->mu);
          st->trace.record_done(b, done_us, /*speculative=*/false);
          st->out_blocks[b] = std::move(*matches);
        });
    st->rt.submit(task);
  }
}

std::vector<std::uint32_t> AnnealPipeline::matches() const {
  std::scoped_lock lk(st_->mu);
  std::vector<std::uint32_t> out;
  out.reserve(st_->n_points);
  for (std::size_t b = 0; b < st_->n_blocks; ++b) {
    if (!st_->out_blocks[b]) {
      throw std::logic_error("AnnealPipeline: block " + std::to_string(b) +
                             " missing");
    }
    out.insert(out.end(), st_->out_blocks[b]->begin(),
               st_->out_blocks[b]->end());
  }
  return out;
}

const Tour& AnnealPipeline::committed_tour() const {
  std::scoped_lock lk(st_->mu);
  if (!st_->have_committed) {
    throw std::logic_error("AnnealPipeline: no committed tour");
  }
  return st_->committed;
}

const stats::BlockTrace& AnnealPipeline::trace() const { return st_->trace; }

bool AnnealPipeline::speculation_committed() const {
  std::scoped_lock lk(st_->mu);
  return st_->spec_committed;
}

std::uint64_t AnnealPipeline::rollbacks() const {
  std::scoped_lock lk(st_->mu);
  return st_->rollbacks;
}

void AnnealPipeline::validate_complete() const {
  std::scoped_lock lk(st_->mu);
  for (std::size_t b = 0; b < st_->n_blocks; ++b) {
    if (!st_->out_blocks[b]) {
      throw std::logic_error("AnnealPipeline: incomplete output");
    }
  }
}

}  // namespace ann
