// FilterPipeline: the paper's Fig. 1 DFG — an iterative coefficient solver
// feeding a parallel filtering phase — with tolerant value speculation on
// the coefficients.
//
// Natural path: iteration steps run serially; the final iterate configures
// the filtering of every data block. Speculative path: an early iterate is
// adopted as the coefficient guess, filtering starts immediately under an
// epoch, filtered blocks wait at the buffer, and checks compare the guess
// with newer iterates (relative L2 on the coefficient vector). This is the
// second pipeline built on the tvs:: core and demonstrates that the
// speculation layer is not Huffman-specific.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/config.h"
#include "sre/runtime.h"
#include "stats/trace.h"

namespace filt {

struct FilterPipelineConfig {
  std::size_t taps = 16;
  std::size_t iterations = 12;
  std::size_t block_samples = 4096;
  tvs::SpecConfig spec;      ///< tolerance interpreted as relative L2
  std::uint64_t problem_cost_us = 400;
  std::uint64_t iter_cost_us = 500;
  std::uint64_t filter_cost_us = 300;
  std::uint64_t check_cost_us = 10;
};

class FilterPipeline {
 public:
  /// `input` and `target` must outlive the run and have equal length.
  /// Speculation is active iff the runtime's policy allows speculative tasks.
  FilterPipeline(sre::Runtime& runtime, const std::vector<double>& input,
                 const std::vector<double>& target,
                 FilterPipelineConfig config, bool speculation);

  /// Submits the problem-estimation task and the iteration chain. Block data
  /// is considered available from the start (the serial solver is the
  /// bottleneck, not I/O).
  void start();

  // --- Results (valid after the executor run) ------------------------------

  /// The filtered signal, assembled from committed blocks.
  [[nodiscard]] std::vector<double> output() const;

  [[nodiscard]] const stats::BlockTrace& trace() const;
  [[nodiscard]] bool speculation_committed() const;
  [[nodiscard]] std::uint64_t rollbacks() const;
  [[nodiscard]] const std::vector<double>& final_coefficients() const;

  void validate_complete() const;

 private:
  struct State;

  void on_iterate(std::size_t k, std::uint64_t now_us);
  void build_filter_chain(const std::vector<double>& coeffs, sre::Epoch epoch);
  void build_natural(const std::vector<double>& coeffs);

  std::shared_ptr<State> st_;
};

}  // namespace filt
