#include "filter/filter_pipeline.h"

#include <cassert>
#include <mutex>
#include <optional>
#include <stdexcept>

#include "core/speculator.h"
#include "core/wait_buffer.h"
#include "filter/fir.h"
#include "filter/iterative_design.h"

namespace filt {

using Coeffs = std::vector<double>;

/// Filters one block with full-signal context: the FIR history reaches back
/// taps-1 samples before the block, so per-block outputs concatenate to
/// exactly the whole-signal convolution (blocks are independent tasks, not
/// independent signals).
std::vector<double> filter_block(const std::vector<double>& input,
                                 std::size_t begin, std::size_t end,
                                 const Coeffs& coeffs) {
  const std::size_t history = coeffs.size() > 0 ? coeffs.size() - 1 : 0;
  const std::size_t ctx_begin = begin >= history ? begin - history : 0;
  const auto with_context = apply_fir(
      std::span<const double>(input).subspan(ctx_begin, end - ctx_begin),
      coeffs);
  return std::vector<double>(with_context.begin() +
                                 static_cast<std::ptrdiff_t>(begin - ctx_begin),
                             with_context.end());
}

struct FilterPipeline::State {
  State(sre::Runtime& runtime, const std::vector<double>& in,
        const std::vector<double>& tgt, FilterPipelineConfig config,
        bool spec_on)
      : rt(runtime),
        input(in),
        target(tgt),
        cfg(std::move(config)),
        speculation(spec_on) {}

  sre::Runtime& rt;
  const std::vector<double>& input;
  const std::vector<double>& target;
  FilterPipelineConfig cfg;
  bool speculation;

  std::size_t n_blocks = 0;

  std::mutex mu;
  std::shared_ptr<IterativeSolver> solver;  ///< driven by the serial chain
  std::vector<std::shared_ptr<const Coeffs>> iterate_snapshots;

  stats::BlockTrace trace;
  std::vector<std::optional<std::vector<double>>> out_blocks;
  Coeffs committed_coeffs;
  bool have_output_coeffs = false;
  bool spec_committed = false;
  std::uint64_t rollbacks = 0;
  bool natural_built = false;

  std::unique_ptr<tvs::WaitBuffer<std::size_t, std::vector<double>>> buffer;
  std::unique_ptr<tvs::Speculator<Coeffs>> spec;

  [[nodiscard]] std::pair<std::size_t, std::size_t> block_range(
      std::size_t b) const {
    const std::size_t begin = b * cfg.block_samples;
    const std::size_t end =
        std::min(begin + cfg.block_samples, input.size());
    return {begin, end};
  }
};

FilterPipeline::FilterPipeline(sre::Runtime& runtime,
                               const std::vector<double>& input,
                               const std::vector<double>& target,
                               FilterPipelineConfig config, bool speculation)
    : st_(std::make_shared<State>(runtime, input, target, std::move(config),
                                  speculation)) {
  State& st = *st_;
  if (st.input.size() != st.target.size() || st.input.empty()) {
    throw std::invalid_argument("FilterPipeline: bad signal sizes");
  }
  if (st.cfg.iterations == 0 || st.cfg.block_samples == 0) {
    throw std::invalid_argument("FilterPipeline: bad config");
  }
  st.n_blocks =
      (st.input.size() + st.cfg.block_samples - 1) / st.cfg.block_samples;
  st.trace = stats::BlockTrace(st.n_blocks);
  st.out_blocks.resize(st.n_blocks);
  st.iterate_snapshots.resize(st.cfg.iterations);

  auto stp = st_;
  st.buffer =
      std::make_unique<tvs::WaitBuffer<std::size_t, std::vector<double>>>(
          [stp](const std::size_t& b, std::vector<double>&& y, std::uint64_t) {
            std::scoped_lock lk(stp->mu);
            stp->out_blocks[b] = std::move(y);
          },
          /*retire_window=*/8);

  if (speculation) {
    tvs::Speculator<Coeffs>::Callbacks cb;
    cb.build_chain = [this](const Coeffs& guess, sre::Epoch epoch,
                            std::uint32_t) {
      build_filter_chain(guess, epoch);
    };
    cb.within_tolerance = [tol = st.cfg.spec.tolerance](const Coeffs& guess,
                                                        const Coeffs& cur) {
      return rel_l2_diff(guess, cur) <= tol;
    };
    cb.on_commit = [stp](sre::Epoch epoch, std::uint64_t now_us) {
      {
        std::scoped_lock lk(stp->mu);
        stp->spec_committed = true;
        stp->have_output_coeffs = true;
      }
      stp->buffer->commit(epoch, now_us);
    };
    cb.on_rollback = [stp](sre::Epoch epoch, std::uint64_t) {
      {
        std::scoped_lock lk(stp->mu);
        ++stp->rollbacks;
      }
      stp->buffer->drop(epoch);
    };
    cb.build_natural = [this](const Coeffs& final_coeffs, std::uint64_t) {
      build_natural(final_coeffs);
    };
    st.spec = std::make_unique<tvs::Speculator<Coeffs>>(
        runtime, st.cfg.spec, std::move(cb), st.cfg.check_cost_us);
  }
}

void FilterPipeline::start() {
  auto st = st_;
  // Problem-estimation task ("Filter Information" box of Fig. 1).
  auto problem_task = st->rt.make_task(
      "estimate-problem", sre::TaskClass::Natural, sre::kNaturalEpoch,
      /*depth=*/1, st->cfg.problem_cost_us, [st](sre::TaskContext&) {
        st->solver = std::make_shared<IterativeSolver>(
            estimate_problem(st->input, st->target, st->cfg.taps));
      });

  // Serial iteration chain ("Iteration step k").
  sre::TaskPtr prev = problem_task;
  auto self = this;
  for (std::size_t k = 0; k < st->cfg.iterations; ++k) {
    auto iter_task = st->rt.make_task(
        "iterate[" + std::to_string(k + 1) + "]", sre::TaskClass::Natural,
        sre::kNaturalEpoch, /*depth=*/2, st->cfg.iter_cost_us,
        [st, k](sre::TaskContext&) {
          st->solver->step();
          st->iterate_snapshots[k] =
              std::make_shared<const Coeffs>(st->solver->current());
        });
    iter_task->add_completion_hook(
        [self, k](sre::Task&, std::uint64_t done_us) {
          self->on_iterate(k, done_us);
        });
    st->rt.add_dependency(prev, iter_task);
    prev = iter_task;
    st->rt.submit(iter_task);
  }
  st->rt.submit(problem_task);

  // Every block is available from t=0: record arrivals now.
  for (std::size_t b = 0; b < st->n_blocks; ++b) {
    st->trace.record_arrival(b, 0);
  }
}

void FilterPipeline::on_iterate(std::size_t k, std::uint64_t now_us) {
  auto st = st_;
  const bool is_final = (k + 1 == st->cfg.iterations);
  const auto index = static_cast<std::uint32_t>(k + 1);
  auto snapshot = st->iterate_snapshots[k];

  if (!st->spec) {
    if (is_final) build_natural(*snapshot);
    return;
  }
  // Coefficient vectors are cheap; feed every iterate the speculator wants.
  if (st->spec->wants_estimate(index, is_final)) {
    st->spec->on_estimate(*snapshot, index, is_final, now_us);
  }
}

void FilterPipeline::build_filter_chain(const Coeffs& guess,
                                        sre::Epoch epoch) {
  auto st = st_;
  auto coeffs = std::make_shared<const Coeffs>(guess);
  for (std::size_t b = 0; b < st->n_blocks; ++b) {
    const auto [begin, end] = st->block_range(b);
    auto y = std::make_shared<std::vector<double>>();
    auto task = st->rt.make_task(
        "spec-filter[" + std::to_string(b) + ",e" + std::to_string(epoch) +
            "]",
        sre::TaskClass::Speculative, epoch, /*depth=*/3,
        st->cfg.filter_cost_us, [st, begin, end, coeffs, y](sre::TaskContext&) {
          *y = filter_block(st->input, begin, end, *coeffs);
        });
    task->add_completion_hook(
        [st, b, y, epoch](sre::Task&, std::uint64_t done_us) {
          {
            std::scoped_lock lk(st->mu);
            st->trace.record_done(b, done_us, /*speculative=*/true);
          }
          st->buffer->add(epoch, b, std::move(*y), done_us);
        });
    st->rt.submit(task);
  }
  {
    std::scoped_lock lk(st->mu);
    st->committed_coeffs = guess;  // provisional; natural path overwrites
  }
}

void FilterPipeline::build_natural(const Coeffs& coeffs) {
  auto st = st_;
  {
    std::scoped_lock lk(st->mu);
    if (st->natural_built) {
      throw std::logic_error("FilterPipeline: natural path built twice");
    }
    st->natural_built = true;
    st->committed_coeffs = coeffs;
    st->have_output_coeffs = true;
  }
  auto c = std::make_shared<const Coeffs>(coeffs);
  for (std::size_t b = 0; b < st->n_blocks; ++b) {
    const auto [begin, end] = st->block_range(b);
    auto y = std::make_shared<std::vector<double>>();
    auto task = st->rt.make_task(
        "filter[" + std::to_string(b) + "]", sre::TaskClass::Natural,
        sre::kNaturalEpoch, /*depth=*/3, st->cfg.filter_cost_us,
        [st, begin, end, c, y](sre::TaskContext&) {
          *y = filter_block(st->input, begin, end, *c);
        });
    task->add_completion_hook([st, b, y](sre::Task&, std::uint64_t done_us) {
      std::scoped_lock lk(st->mu);
      st->trace.record_done(b, done_us, /*speculative=*/false);
      st->out_blocks[b] = std::move(*y);
    });
    st->rt.submit(task);
  }
}

std::vector<double> FilterPipeline::output() const {
  std::scoped_lock lk(st_->mu);
  std::vector<double> out;
  out.reserve(st_->input.size());
  for (std::size_t b = 0; b < st_->n_blocks; ++b) {
    if (!st_->out_blocks[b]) {
      throw std::logic_error("FilterPipeline: block " + std::to_string(b) +
                             " missing");
    }
    out.insert(out.end(), st_->out_blocks[b]->begin(),
               st_->out_blocks[b]->end());
  }
  return out;
}

const stats::BlockTrace& FilterPipeline::trace() const { return st_->trace; }

bool FilterPipeline::speculation_committed() const {
  std::scoped_lock lk(st_->mu);
  return st_->spec_committed;
}

std::uint64_t FilterPipeline::rollbacks() const {
  std::scoped_lock lk(st_->mu);
  return st_->rollbacks;
}

const std::vector<double>& FilterPipeline::final_coefficients() const {
  std::scoped_lock lk(st_->mu);
  if (!st_->have_output_coeffs) {
    throw std::logic_error("FilterPipeline: no committed coefficients");
  }
  return st_->committed_coeffs;
}

void FilterPipeline::validate_complete() const {
  std::scoped_lock lk(st_->mu);
  for (std::size_t b = 0; b < st_->n_blocks; ++b) {
    if (!st_->out_blocks[b]) {
      throw std::logic_error("FilterPipeline: incomplete output");
    }
  }
}

}  // namespace filt
