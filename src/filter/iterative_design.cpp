#include "filter/iterative_design.h"

#include <cmath>
#include <stdexcept>

#include "filter/fir.h"

namespace filt {
namespace {

double dot(std::span<const double> a, std::span<const double> b) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

}  // namespace

std::vector<double> FilterProblem::apply(std::span<const double> x) const {
  std::vector<double> y(taps, 0.0);
  for (std::size_t i = 0; i < taps; ++i) {
    double acc = 0.0;
    for (std::size_t j = 0; j < taps; ++j) {
      const std::size_t lag = i > j ? i - j : j - i;
      acc += autocorr[lag] * x[j];
    }
    y[i] = acc;
  }
  return y;
}

FilterProblem estimate_problem(std::span<const double> input,
                               std::span<const double> target,
                               std::size_t taps) {
  if (taps == 0) throw std::invalid_argument("estimate_problem: zero taps");
  if (input.size() != target.size() || input.size() < taps) {
    throw std::invalid_argument("estimate_problem: bad signal sizes");
  }
  FilterProblem prob;
  prob.taps = taps;
  prob.autocorr.assign(taps, 0.0);
  prob.crosscorr.assign(taps, 0.0);
  const auto n = input.size();
  for (std::size_t lag = 0; lag < taps; ++lag) {
    double r = 0.0;
    double p = 0.0;
    for (std::size_t i = lag; i < n; ++i) {
      r += input[i] * input[i - lag];
      p += target[i] * input[i - lag];
    }
    prob.autocorr[lag] = r / static_cast<double>(n);
    prob.crosscorr[lag] = p / static_cast<double>(n);
  }
  // Diagonal loading keeps R safely positive definite on short estimates.
  prob.autocorr[0] += 1e-9 + 0.01 * prob.autocorr[0];
  return prob;
}

IterativeSolver::IterativeSolver(FilterProblem problem)
    : prob_(std::move(problem)),
      c_(prob_.taps, 0.0),
      r_(prob_.crosscorr),
      d_(prob_.crosscorr) {
  if (prob_.taps == 0 || prob_.autocorr.size() != prob_.taps ||
      prob_.crosscorr.size() != prob_.taps) {
    throw std::invalid_argument("IterativeSolver: malformed problem");
  }
  rr_ = dot(r_, r_);
}

void IterativeSolver::step() {
  ++steps_;
  if (rr_ <= 1e-300) return;  // converged; further steps are no-ops
  const std::vector<double> rd = prob_.apply(d_);
  const double drd = dot(d_, rd);
  if (drd <= 0.0) return;  // numerically exhausted direction
  const double alpha = rr_ / drd;
  double rr_next = 0.0;
  for (std::size_t i = 0; i < prob_.taps; ++i) {
    c_[i] += alpha * d_[i];
    r_[i] -= alpha * rd[i];
    rr_next += r_[i] * r_[i];
  }
  const double beta = rr_next / rr_;
  for (std::size_t i = 0; i < prob_.taps; ++i) {
    d_[i] = r_[i] + beta * d_[i];
  }
  rr_ = rr_next;
}

double IterativeSolver::residual_norm() const { return std::sqrt(rr_); }

std::vector<double> solve(const FilterProblem& prob, std::size_t iterations) {
  IterativeSolver solver(prob);
  for (std::size_t k = 0; k < iterations; ++k) {
    solver.step();
  }
  return solver.current();
}

std::vector<double> convergence_profile(const FilterProblem& prob,
                                        std::size_t iterations) {
  const auto final_c = solve(prob, iterations);
  std::vector<double> profile;
  profile.reserve(iterations);
  IterativeSolver solver(prob);
  for (std::size_t k = 0; k < iterations; ++k) {
    solver.step();
    profile.push_back(rel_l2_diff(solver.current(), final_c));
  }
  return profile;
}

}  // namespace filt
