// FIR filtering primitives for the paper's Fig. 1 scenario: an iterative
// solver computes filter coefficients, which are then applied to a stream of
// data blocks.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace filt {

/// Convolves `x` with taps `c` (causal; the first c.size()-1 outputs use
/// zero-padded history). Output length equals x length.
[[nodiscard]] std::vector<double> apply_fir(std::span<const double> x,
                                            std::span<const double> c);

/// Sum of squares.
[[nodiscard]] double energy(std::span<const double> x);

/// Max |a[i] - b[i]|; sizes must match.
[[nodiscard]] double max_abs_diff(std::span<const double> a,
                                  std::span<const double> b);

/// Relative L2 distance ‖a-b‖ / max(‖b‖, eps).
[[nodiscard]] double rel_l2_diff(std::span<const double> a,
                                 std::span<const double> b);

/// Deterministic test signal: a slow sinusoid mixture plus seeded noise.
[[nodiscard]] std::vector<double> make_signal(std::size_t n,
                                              std::uint64_t seed,
                                              double noise_amp = 0.6);

}  // namespace filt
