// Iterative Wiener-filter coefficient design (the Fig. 1 "iteration steps").
//
// Classic setup: estimate the length-`taps` FIR filter c minimizing
// E[(d - c*x)²] by solving the normal equations R c = p, where R is the
// input autocorrelation (Toeplitz, SPD after diagonal loading) and p the
// input/target cross-correlation. We solve by conjugate gradients — each CG
// sweep is one coarse-grain "iteration step" task, and iterates converge
// toward the final coefficients (exactly, within `taps` steps in exact
// arithmetic), which is the "early result is extracted from an iterative
// computation" speculation opportunity of paper §IV.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace filt {

struct FilterProblem {
  std::vector<double> autocorr;  ///< r[0..taps-1]
  std::vector<double> crosscorr; ///< p[0..taps-1]
  std::size_t taps = 0;

  /// y = R x with the Toeplitz autocorrelation matrix.
  [[nodiscard]] std::vector<double> apply(std::span<const double> x) const;
};

/// Estimates the Wiener problem from an input signal and a desired (target)
/// signal; both must have equal length ≥ taps.
[[nodiscard]] FilterProblem estimate_problem(std::span<const double> input,
                                             std::span<const double> target,
                                             std::size_t taps);

/// Stateful conjugate-gradient solver; step() is the paper's coarse-grain
/// "Iteration step" task body.
class IterativeSolver {
 public:
  explicit IterativeSolver(FilterProblem problem);

  /// One CG sweep. No-op once converged (residual ~ 0).
  void step();

  /// Current coefficient iterate.
  [[nodiscard]] const std::vector<double>& current() const { return c_; }

  /// ‖residual‖₂ = ‖p − R c‖₂.
  [[nodiscard]] double residual_norm() const;

  [[nodiscard]] std::size_t steps_taken() const { return steps_; }
  [[nodiscard]] const FilterProblem& problem() const { return prob_; }

 private:
  FilterProblem prob_;
  std::vector<double> c_;  ///< iterate
  std::vector<double> r_;  ///< residual p - Rc
  std::vector<double> d_;  ///< search direction
  double rr_ = 0.0;        ///< rᵀr
  std::size_t steps_ = 0;
};

/// Runs `iterations` sweeps from the zero vector.
[[nodiscard]] std::vector<double> solve(const FilterProblem& prob,
                                        std::size_t iterations);

/// Convergence profile: rel_l2_diff(iterate_k, final) per k — useful for
/// choosing when an early iterate supports speculation.
[[nodiscard]] std::vector<double> convergence_profile(
    const FilterProblem& prob, std::size_t iterations);

}  // namespace filt
