#include "filter/fir.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numbers>
#include <stdexcept>

#include "workload/rng.h"

namespace filt {

std::vector<double> apply_fir(std::span<const double> x,
                              std::span<const double> c) {
  if (c.empty()) throw std::invalid_argument("apply_fir: empty taps");
  std::vector<double> y(x.size(), 0.0);
  for (std::size_t n = 0; n < x.size(); ++n) {
    double acc = 0.0;
    const std::size_t kmax = std::min(c.size(), n + 1);
    for (std::size_t k = 0; k < kmax; ++k) {
      acc += c[k] * x[n - k];
    }
    y[n] = acc;
  }
  return y;
}

double energy(std::span<const double> x) {
  double e = 0.0;
  for (double v : x) e += v * v;
  return e;
}

double max_abs_diff(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("max_abs_diff: size mismatch");
  }
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::abs(a[i] - b[i]));
  }
  return m;
}

double rel_l2_diff(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("rel_l2_diff: size mismatch");
  }
  double num = 0.0;
  double den = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    num += d * d;
    den += b[i] * b[i];
  }
  return std::sqrt(num) / std::max(std::sqrt(den), 1e-12);
}

std::vector<double> make_signal(std::size_t n, std::uint64_t seed,
                                double noise_amp) {
  wl::Rng rng(wl::splitmix64(seed ^ 0xf17ULL));
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i);
    x[i] = std::sin(2.0 * std::numbers::pi * t / 97.0) +
           0.5 * std::sin(2.0 * std::numbers::pi * t / 31.0) +
           noise_amp * (rng.uniform() * 2.0 - 1.0);
  }
  return x;
}

}  // namespace filt
