// Platform configurations for the virtual-time executor.
//
// Models the paper's two machines (§V-A):
//  * x86: 8×Quad-Core Opteron CMP — cache-based, workers pull tasks one at a
//    time (simple polling).
//  * Cell BE: SPEs with 256 KiB software-managed local stores. The runtime
//    uses *multiple buffering* (paper §III-A): up to four tasks' worth of
//    data are committed to a local store ahead of execution, limiting task
//    memory to 32 KiB and — crucially for the conservative-policy result —
//    binding tasks to a CPU before newer, higher-priority work can displace
//    them. We model this with a per-CPU staging queue of depth 4.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "sim/cost_model.h"

namespace sim {

struct PlatformConfig {
  std::string name = "x86";
  unsigned cpus = 16;  ///< both machines run 16 worker threads in the paper

  /// Depth of the per-CPU staging queue. 0 = no staging (cache-based x86);
  /// >0 = multiple buffering with that many task slots per CPU.
  std::size_t staging_depth = 0;

  /// Per-task working-set budget in bytes; 0 = unlimited. On Cell a task must
  /// fit a quarter of the 256 KiB local store minus code/runtime: 32 KiB.
  std::size_t task_mem_limit = 0;

  CostModel cost;

  [[nodiscard]] static PlatformConfig x86(unsigned cpus = 16);
  [[nodiscard]] static PlatformConfig cell(unsigned cpus = 16);

  /// Validates a task's memory footprint against the platform budget.
  /// Returns true if acceptable (always true when task_mem_limit == 0).
  [[nodiscard]] bool fits_memory(std::size_t task_bytes) const {
    return task_mem_limit == 0 || task_bytes <= task_mem_limit;
  }
};

}  // namespace sim
