// Deterministic discrete-event queue for the virtual-time executor.
//
// Events at equal timestamps fire in insertion order (stable), which makes
// whole simulations bit-reproducible for identical inputs — the property the
// figure benchmarks and the determinism tests rely on.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace sim {

using Micros = std::uint64_t;

class EventQueue {
 public:
  using Action = std::function<void(Micros now)>;

  /// Schedules `action` at absolute virtual time `at`. Scheduling into the
  /// past (at < now of the last popped event) throws std::logic_error —
  /// causality violations are bugs, not data.
  void schedule(Micros at, Action action);

  /// Pops and runs the earliest event; advances now(). Returns false when
  /// empty.
  bool run_one();

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }

  /// Virtual time of the most recently fired event (0 before any).
  [[nodiscard]] Micros now() const { return now_; }

  /// Timestamp of the next pending event; throws if empty.
  [[nodiscard]] Micros next_time() const;

 private:
  struct Entry {
    Micros at;
    std::uint64_t seq;
    Action action;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;  // min-heap: earliest time, then insertion order
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::uint64_t next_seq_ = 0;
  Micros now_ = 0;
};

}  // namespace sim
