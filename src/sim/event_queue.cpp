#include "sim/event_queue.h"

#include <stdexcept>
#include <utility>

namespace sim {

void EventQueue::schedule(Micros at, Action action) {
  if (at < now_) {
    throw std::logic_error("EventQueue: scheduling into the past");
  }
  heap_.push(Entry{at, next_seq_++, std::move(action)});
}

bool EventQueue::run_one() {
  if (heap_.empty()) return false;
  // priority_queue::top() is const; move out via const_cast is UB-adjacent,
  // so copy the small fields and move the action through a temporary pop.
  Entry e = std::move(const_cast<Entry&>(heap_.top()));
  heap_.pop();
  now_ = e.at;
  e.action(now_);
  return true;
}

Micros EventQueue::next_time() const {
  if (heap_.empty()) {
    throw std::logic_error("EventQueue: next_time on empty queue");
  }
  return heap_.top().at;
}

}  // namespace sim
