// SimExecutor: deterministic virtual-time engine for the SRE.
//
// A discrete-event simulation of N CPUs sharing the runtime's ReadyPool.
// Task bodies really execute (all data products are real, so commit and
// rollback correctness is observable), but each task *charges* its cost-model
// duration to virtual time. Identical inputs produce bit-identical schedules
// and traces, independent of host machine and load — which is how this
// reproduction runs the paper's 16-worker experiments on any hardware.
//
// Cell-style multiple buffering: with staging_depth > 0, an idle CPU refills
// a private staging queue of that depth from the pool *before* executing.
// Staged tasks are committed — they cannot be re-prioritized or stolen, and a
// rollback can only flag them for disposal. This reproduces the paper's
// observation that the Cell's deep dispatch queue starves the conservative
// policy of speculation opportunities (§V-B).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "sim/event_queue.h"
#include "sim/platform.h"
#include "sre/runtime.h"

namespace sim {

class SimExecutor {
 public:
  SimExecutor(sre::Runtime& runtime, PlatformConfig platform);

  SimExecutor(const SimExecutor&) = delete;
  SimExecutor& operator=(const SimExecutor&) = delete;

  /// Schedules an external arrival (e.g. an I/O block) at virtual time `at`.
  void schedule_arrival(Micros at, std::function<void(Micros)> fn);

  /// Runs the simulation until no events remain and the runtime is
  /// quiescent. Throws std::logic_error on a stuck graph (ready tasks with
  /// no way to run) — that indicates a builder bug.
  void run();

  [[nodiscard]] Micros now() const { return events_.now(); }
  [[nodiscard]] const PlatformConfig& platform() const { return platform_; }

  /// Total busy virtual time per CPU (utilization analysis in benches).
  [[nodiscard]] const std::vector<Micros>& busy_us() const { return busy_us_; }

  /// Virtual time at which the last task completed.
  [[nodiscard]] Micros makespan_us() const { return makespan_us_; }

  /// Events still queued (arrivals + completions). Sampler ticks use this to
  /// decide whether the simulation is still live and worth re-arming.
  [[nodiscard]] std::size_t pending_events() const { return events_.size(); }

 private:
  struct Cpu {
    bool busy = false;
    std::deque<sre::TaskPtr> staged;
  };

  void dispatch(Micros now);
  void check_memory(const sre::TaskPtr& task) const;

  sre::Runtime& runtime_;
  PlatformConfig platform_;
  EventQueue events_;
  std::vector<Cpu> cpus_;
  std::vector<Micros> busy_us_;
  Micros makespan_us_ = 0;
  std::size_t staged_naturals_ = 0;  ///< natural/control tasks in staging
};

}  // namespace sim
