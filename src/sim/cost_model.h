// Cost model: virtual execution time charged per task kind.
//
// The defaults are calibrated so a 16-CPU x86-disk run lands in the same
// regime the paper reports (tens of milliseconds end-to-end for a 4 MB file
// in 4 KiB blocks): coarse-grain tasks in the high-microsecond to millisecond
// range (paper §II-A cites task granularity in the millisecond range).
// Absolute values are not meant to match the authors' testbed — only the
// ratios between phases and the resulting scheduling shapes matter.
#pragma once

#include <cstdint>
#include <cstddef>

namespace sim {

/// Task kinds of the Huffman pipeline plus the generic speculation-control
/// kinds. Other pipelines may use `custom_us` directly.
enum class TaskKind : std::uint8_t {
  Count,      ///< histogram of one input block
  Reduce,     ///< merge of up to `reduce_ratio` histograms
  TreeBuild,  ///< Huffman tree + canonical table construction
  Offset,     ///< bit offsets for one group of blocks
  Encode,     ///< encode one block
  Check,      ///< tolerance verification (paper: "simple and run very quickly")
  Sink,       ///< commit/buffer bookkeeping at the output boundary
};

struct CostModel {
  // Per-kind base costs in virtual microseconds, for the nominal 4 KiB block.
  std::uint64_t count_us = 150;
  std::uint64_t reduce_per_input_us = 4;   ///< × number of merged histograms
  std::uint64_t tree_build_us = 260;
  std::uint64_t offset_per_block_us = 3;   ///< × blocks in the group
  std::uint64_t encode_us = 240;
  std::uint64_t check_us = 12;
  std::uint64_t sink_us = 2;

  /// Extra per-task charge modeling DMA-in/out on software-managed local
  /// stores (Cell). Zero on cache-based platforms.
  std::uint64_t dma_overhead_us = 0;

  /// Cost of a task of `kind` whose size parameter (blocks merged, group
  /// size…) is `n`.
  [[nodiscard]] std::uint64_t cost(TaskKind kind, std::size_t n = 1) const;

  /// The paper's two machines.
  [[nodiscard]] static CostModel x86();
  [[nodiscard]] static CostModel cell();
};

}  // namespace sim
