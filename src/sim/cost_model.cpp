#include "sim/cost_model.h"

namespace sim {

std::uint64_t CostModel::cost(TaskKind kind, std::size_t n) const {
  std::uint64_t base = 0;
  switch (kind) {
    case TaskKind::Count:
      base = count_us;
      break;
    case TaskKind::Reduce:
      base = reduce_per_input_us * n;
      break;
    case TaskKind::TreeBuild:
      base = tree_build_us;
      break;
    case TaskKind::Offset:
      base = offset_per_block_us * n;
      break;
    case TaskKind::Encode:
      base = encode_us;
      break;
    case TaskKind::Check:
      base = check_us;
      break;
    case TaskKind::Sink:
      base = sink_us;
      break;
  }
  return base + dma_overhead_us;
}

CostModel CostModel::x86() { return CostModel{}; }

CostModel CostModel::cell() {
  CostModel m;
  // SPEs pay a DMA charge per task to move the working set through the
  // local store, and byte-granular scalar work (histogram counting, tree
  // build) runs poorly on them — unlike the SIMD-friendly encode kernel.
  // The slow Count keeps the first pass compute-saturated, which is what
  // starves the conservative policy of idle slots on this platform.
  m.count_us = 180;
  m.encode_us = 200;
  m.tree_build_us = 330;
  m.dma_overhead_us = 25;
  return m;
}

}  // namespace sim
