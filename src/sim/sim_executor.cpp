#include "sim/sim_executor.h"

#include <stdexcept>

namespace sim {

SimExecutor::SimExecutor(sre::Runtime& runtime, PlatformConfig platform)
    : runtime_(runtime), platform_(std::move(platform)) {
  if (platform_.cpus == 0) {
    throw std::invalid_argument("SimExecutor: need at least one CPU");
  }
  cpus_.resize(platform_.cpus);
  busy_us_.resize(platform_.cpus, 0);
}

void SimExecutor::schedule_arrival(Micros at, std::function<void(Micros)> fn) {
  events_.schedule(at, std::move(fn));
}

void SimExecutor::check_memory(const sre::TaskPtr& task) const {
  if (!platform_.fits_memory(task->mem_bytes())) {
    throw std::logic_error("SimExecutor: task '" + task->name() + "' needs " +
                           std::to_string(task->mem_bytes()) +
                           " bytes, over the " + platform_.name +
                           " local-store budget of " +
                           std::to_string(platform_.task_mem_limit));
  }
}

void SimExecutor::dispatch(Micros now) {
  for (std::size_t i = 0; i < cpus_.size(); ++i) {
    Cpu& cpu = cpus_[i];
    if (cpu.busy) continue;

    if (platform_.staging_depth == 0) {
      // Cache-based platform: pull one task straight from the pool.
      sre::TaskPtr task = runtime_.next_task(now, static_cast<unsigned>(i));
      if (!task) return;  // pool drained; later CPUs stay idle too
      check_memory(task);
      cpus_[i].busy = true;
      // next_task() already marked it Running; execute and schedule finish.
      sre::TaskContext ctx{runtime_, *task, now, static_cast<unsigned>(i)};
      task->run(ctx);
      const Micros finish_at = now + task->cost_us();
      busy_us_[i] += task->cost_us();
      events_.schedule(finish_at, [this, i, task](Micros t) {
        cpus_[i].busy = false;
        makespan_us_ = std::max(makespan_us_, t);
        runtime_.on_task_finished(task, t);
        dispatch(t);
      });
      continue;
    }

    // Multiple buffering: commit tasks into this CPU's staging queue up to
    // the platform depth, then execute from the front in FIFO order.
    //
    // Under the conservative policy, "no non-speculative task available"
    // must include naturals already committed to staging queues — the deep
    // dispatch queue almost always holds one, which is exactly why the
    // paper observes conservative speculating so rarely on Cell (§V-B).
    while (cpu.staged.size() < platform_.staging_depth) {
      const bool spec_allowed =
          runtime_.pool().policy() != sre::DispatchPolicy::Conservative ||
          staged_naturals_ == 0;
      sre::TaskPtr task = runtime_.locked(
          [this, spec_allowed] { return runtime_.pool().pop(spec_allowed); });
      if (!task) break;
      check_memory(task);
      runtime_.mark_staged(task);
      if (task->task_class() != sre::TaskClass::Speculative) {
        ++staged_naturals_;
      }
      cpu.staged.push_back(std::move(task));
    }

    // Discard staged tasks whose epoch rolled back while they sat in the
    // local store: they are "deleted with their content when they complete"
    // — here completion is the moment the SPE would have started them.
    for (auto it = cpu.staged.begin(); it != cpu.staged.end();) {
      if (!(*it)->abort_requested()) {
        ++it;
        continue;
      }
      sre::TaskPtr dead = std::move(*it);
      it = cpu.staged.erase(it);
      if (dead->task_class() != sre::TaskClass::Speculative) {
        --staged_naturals_;
      }
      runtime_.on_task_finished(dead, now);
    }

    if (cpu.staged.empty()) continue;
    // Multiple buffering commits the *data transfers*; among the tasks whose
    // data already sits in the local store, the SPE still picks by the same
    // rules as the pool — Control first, then the policy's class
    // preference, then deepest-stage/FCFS. Without this, a serial-chain
    // task (e.g. the next Reduce) would queue behind prefetched Counts and
    // the staging depth would artificially stretch every serial chain.
    const auto class_rank = [this](const sre::TaskPtr& t) {
      if (t->task_class() == sre::TaskClass::Control) return 0;
      const bool spec = t->task_class() == sre::TaskClass::Speculative;
      switch (runtime_.pool().policy()) {
        case sre::DispatchPolicy::Conservative:
          return spec ? 2 : 1;
        case sre::DispatchPolicy::Aggressive:
          return spec ? 1 : 2;
        case sre::DispatchPolicy::NonSpeculative:
        case sre::DispatchPolicy::Balanced:
          return 1;  // no class preference; depth/FCFS decide
      }
      return 1;
    };
    auto best = cpu.staged.begin();
    for (auto it = std::next(cpu.staged.begin()); it != cpu.staged.end();
         ++it) {
      const auto& a = *it;
      const auto& b = *best;
      bool higher = false;
      if (class_rank(a) != class_rank(b)) {
        higher = class_rank(a) < class_rank(b);
      } else if (a->depth() != b->depth()) {
        higher = a->depth() > b->depth();
      } else {
        higher = a->ready_seq() < b->ready_seq();
      }
      if (higher) best = it;
    }
    sre::TaskPtr task = std::move(*best);
    cpu.staged.erase(best);
    if (task->task_class() != sre::TaskClass::Speculative) {
      --staged_naturals_;
    }
    runtime_.mark_running(task, now, static_cast<unsigned>(i));
    cpu.busy = true;
    sre::TaskContext ctx{runtime_, *task, now, static_cast<unsigned>(i)};
    task->run(ctx);
    const Micros finish_at = now + task->cost_us();
    busy_us_[i] += task->cost_us();
    events_.schedule(finish_at, [this, i, task](Micros t) {
      cpus_[i].busy = false;
      makespan_us_ = std::max(makespan_us_, t);
      runtime_.on_task_finished(task, t);
      dispatch(t);
    });
  }
}

void SimExecutor::run() {
  dispatch(0);
  while (events_.run_one()) {
    // Arrival actions and finish events both end by calling dispatch();
    // arrivals scheduled by the harness are plain actions, so dispatch here
    // as well to cover them.
    dispatch(events_.now());
  }
  if (!runtime_.quiescent()) {
    throw std::logic_error(
        "SimExecutor: simulation ended with work outstanding (ready=" +
        std::to_string(runtime_.ready_count()) +
        ", running=" + std::to_string(runtime_.running_count()) + ")");
  }
}

}  // namespace sim
