#include "sim/platform.h"

namespace sim {

PlatformConfig PlatformConfig::x86(unsigned cpus) {
  PlatformConfig p;
  p.name = "x86";
  p.cpus = cpus;
  p.staging_depth = 0;
  p.task_mem_limit = 0;
  p.cost = CostModel::x86();
  return p;
}

PlatformConfig PlatformConfig::cell(unsigned cpus) {
  PlatformConfig p;
  p.name = "cell";
  p.cpus = cpus;
  p.staging_depth = 4;            // multiple buffering: 4 tasks per local store
  p.task_mem_limit = 32 * 1024;   // 256 KiB local store / 4 overlaid tasks
  p.cost = CostModel::cell();
  return p;
}

}  // namespace sim
