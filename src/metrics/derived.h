// DeltaView: interval-derived rates over a Registry — the sensor side of
// the control plane (src/control).
//
// Counters and histograms in the registry are cumulative; a feedback
// controller needs *rates* ("rollbacks per second over the last 50 ms")
// and *interval percentiles* ("p95 queue wait among sessions admitted
// since the last tick"). A DeltaView keeps the previous snapshot and
// answers those questions from the difference between two snapshots, so
// one advance() per control tick (a snapshot copy — sized for 10–20 Hz
// sampling, not per-task paths) powers any number of signal reads.
#pragma once

#include <cstdint>
#include <string>

#include "metrics/registry.h"

namespace metrics {

class DeltaView {
 public:
  explicit DeltaView(const Registry& reg) : reg_(reg) {}

  /// Takes a fresh snapshot; subsequent reads cover the interval between
  /// the previous advance() and this one. `now_us` is the host's time
  /// axis (wall or virtual) used by the *_rate readers.
  void advance(std::uint64_t now_us);

  /// Counter increase over the interval, summed across label sets whose
  /// label body contains `label_substr` (all sets when empty). Counters
  /// that appeared mid-interval count from zero.
  [[nodiscard]] double counter_delta(const std::string& name,
                                     const std::string& label_substr = "") const;

  /// counter_delta scaled to events per second (0 before two advances or
  /// when the interval is empty).
  [[nodiscard]] double counter_rate(const std::string& name,
                                    const std::string& label_substr = "") const;

  /// Quantile `q` in [0,1] of the histogram's *interval* samples (bucket
  /// counts differenced between snapshots), reported as the matched
  /// bucket's inclusive upper bound — an overestimate by at most 2x, the
  /// log-bucket resolution. 0 when no samples landed in the interval.
  [[nodiscard]] double histogram_quantile(const std::string& name,
                                          const std::string& labels,
                                          double q) const;

  /// Interval length covered by the last advance() (µs; 0 before two).
  [[nodiscard]] std::uint64_t interval_us() const { return interval_us_; }

 private:
  const Registry& reg_;
  Snapshot prev_;
  Snapshot cur_;
  std::uint64_t prev_t_us_ = 0;
  std::uint64_t interval_us_ = 0;
  std::uint64_t advances_ = 0;
  bool primed_ = false;  ///< true once two snapshots exist
};

}  // namespace metrics
