#include "metrics/exporters.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace metrics {
namespace {

/// Prometheus sample line: name{labels} value.
void prom_line(std::ostringstream& os, const std::string& name,
               const std::string& labels, double value) {
  os << name;
  if (!labels.empty()) os << '{' << labels << '}';
  // Counters are integral in practice; print them without exponent noise.
  if (value == std::floor(value) && std::abs(value) < 1e15) {
    os << ' ' << static_cast<long long>(value) << '\n';
  } else {
    char buf[64];
    std::snprintf(buf, sizeof buf, " %.9g\n", value);
    os << buf;
  }
}

std::string with_extra_label(const std::string& labels,
                             const std::string& extra) {
  return labels.empty() ? extra : labels + "," + extra;
}

/// Number formatting for JSON: finite doubles only (NaN/inf → 0).
void json_number(std::ostringstream& os, double v) {
  if (!std::isfinite(v)) {
    os << 0;
    return;
  }
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    os << static_cast<long long>(v);
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  os << buf;
}

void json_scalars(std::ostringstream& os, const char* key,
                  const std::vector<ScalarSnapshot>& scalars) {
  os << '"' << key << "\":[";
  bool first = true;
  for (const auto& s : scalars) {
    if (!first) os << ',';
    first = false;
    os << "{\"name\":\"" << json_escape(s.name) << "\",\"labels\":\""
       << json_escape(s.labels) << "\",\"value\":";
    json_number(os, s.value);
    os << '}';
  }
  os << ']';
}

void json_histograms(std::ostringstream& os,
                     const std::vector<HistogramSnapshot>& hists) {
  os << "\"histograms\":[";
  bool first = true;
  for (const auto& h : hists) {
    if (!first) os << ',';
    first = false;
    os << "{\"name\":\"" << json_escape(h.name) << "\",\"labels\":\""
       << json_escape(h.labels) << "\",\"count\":" << h.totals.count
       << ",\"sum\":" << h.totals.sum << ",\"buckets\":[";
    // Sparse encoding: only non-empty buckets, as [upper_bound, count].
    bool bfirst = true;
    for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
      if (h.totals.buckets[b] == 0) continue;
      if (!bfirst) os << ',';
      bfirst = false;
      os << '[' << Histogram::Totals::upper_bound(b) << ','
         << h.totals.buckets[b] << ']';
    }
    os << "]}";
  }
  os << ']';
}

}  // namespace

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 4);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string to_prometheus(const Snapshot& snapshot) {
  std::ostringstream os;
  std::string last_name;
  for (const auto& c : snapshot.counters) {
    if (c.name != last_name) {
      os << "# TYPE " << c.name << " counter\n";
      last_name = c.name;
    }
    prom_line(os, c.name, c.labels, c.value);
  }
  for (const auto& g : snapshot.gauges) {
    if (g.name != last_name) {
      os << "# TYPE " << g.name << " gauge\n";
      last_name = g.name;
    }
    prom_line(os, g.name, g.labels, g.value);
  }
  for (const auto& h : snapshot.histograms) {
    if (h.name != last_name) {
      os << "# TYPE " << h.name << " histogram\n";
      last_name = h.name;
    }
    std::uint64_t cum = 0;
    for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
      if (h.totals.buckets[b] == 0) continue;  // sparse: skip empty buckets
      cum += h.totals.buckets[b];
      prom_line(os, h.name + "_bucket",
                with_extra_label(
                    h.labels,
                    "le=\"" +
                        std::to_string(Histogram::Totals::upper_bound(b)) +
                        "\""),
                static_cast<double>(cum));
    }
    prom_line(os, h.name + "_bucket",
              with_extra_label(h.labels, "le=\"+Inf\""),
              static_cast<double>(h.totals.count));
    prom_line(os, h.name + "_sum", h.labels,
              static_cast<double>(h.totals.sum));
    prom_line(os, h.name + "_count", h.labels,
              static_cast<double>(h.totals.count));
  }
  return os.str();
}

std::string to_json(const Snapshot& snapshot) {
  std::ostringstream os;
  os << '{';
  json_scalars(os, "counters", snapshot.counters);
  os << ',';
  json_scalars(os, "gauges", snapshot.gauges);
  os << ',';
  json_histograms(os, snapshot.histograms);
  os << '}';
  return os.str();
}

std::string to_json(const Snapshot& snapshot, const Sampler& sampler) {
  std::ostringstream os;
  os << '{';
  json_scalars(os, "counters", snapshot.counters);
  os << ',';
  json_scalars(os, "gauges", snapshot.gauges);
  os << ',';
  json_histograms(os, snapshot.histograms);
  os << ",\"samples\":{\"names\":[";
  const auto names = sampler.series_names();
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (i) os << ',';
    os << '"' << json_escape(names[i]) << '"';
  }
  os << "],\"rows\":[";
  const auto rows = sampler.samples();
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (i) os << ',';
    os << '[' << rows[i].t_us;
    for (double v : rows[i].values) {
      os << ',';
      json_number(os, v);
    }
    os << ']';
  }
  os << "],\"dropped\":" << sampler.dropped() << "}}";
  return os.str();
}

std::string dashboard_line(const Snapshot& snapshot, std::uint64_t now_us) {
  const double finished =
      snapshot.scalar("tvs_tasks_finished_total");
  const double spec_finished = snapshot.scalar(
      "tvs_tasks_finished_total", "class=\"speculative\"");
  const double spec_share = finished > 0 ? 100.0 * spec_finished / finished : 0;
  const double opened = snapshot.scalar("tvs_epochs_opened_total");
  const double committed = snapshot.scalar("tvs_epochs_committed_total");
  const double aborted = snapshot.scalar("tvs_epochs_aborted_total");
  const double open = snapshot.scalar("tvs_open_epochs");
  const double pass =
      snapshot.scalar("tvs_check_verdicts_total", "verdict=\"pass\"");
  const double fail =
      snapshot.scalar("tvs_check_verdicts_total", "verdict=\"fail\"");
  double hits = 0, scored = 0;
  for (const auto& c : snapshot.counters) {
    if (c.name != "tvs_predictions_scored_total") continue;
    scored += c.value;
    if (c.labels.find("hit=\"true\"") != std::string::npos) hits += c.value;
  }
  const double gated = snapshot.scalar("tvs_speculation_gated_total");

  char buf[256];
  std::snprintf(buf, sizeof buf,
                "t=%.1fs tasks=%.0f (spec %.0f%%) epochs %.0f/%.0f/%.0f "
                "open=%.0f checks %.0fp/%.0ff hit=%s gated=%.0f",
                static_cast<double>(now_us) / 1e6, finished, spec_share,
                opened, committed, aborted, open, pass, fail,
                scored > 0
                    ? (std::to_string(hits / scored).substr(0, 4)).c_str()
                    : "-",
                gated);
  return buf;
}

}  // namespace metrics
