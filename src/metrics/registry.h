// Live metrics registry: always-on counters, gauges and log-bucketed
// histograms cheap enough for the hot dispatch path.
//
// The trace layer (src/trace) is O(tasks) memory and post-run-only; this
// registry is the opposite trade — O(metrics) memory, readable while the
// run is in flight. Counters and histograms are *sharded*: each writing
// thread lands on its own cache line (executors pin workers via
// bind_shard), so increments are relaxed atomics with no contention.
// Reads (snapshot, exporters, the Sampler) sum the shards; they are
// intended for periodic sampling, not per-task paths.
//
// Handles returned by Registry::counter()/gauge()/histogram() are stable
// for the registry's lifetime and safe to cache in hot code.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace metrics {

/// Number of independent write shards per counter/histogram. Power of two;
/// sized for "more than the worker counts we run" rather than the host's
/// core count, so pinned workers never share a line.
inline constexpr std::size_t kShards = 16;

/// The calling thread's shard index. Assigned round-robin on first use;
/// executors call bind_shard() to pin worker i to shard i % kShards so the
/// assignment is deterministic and collision-free for small worker counts.
[[nodiscard]] std::size_t shard_index() noexcept;
void bind_shard(std::size_t index) noexcept;

/// Monotonic counter, sharded per writing thread.
class Counter {
 public:
  void add(std::uint64_t delta = 1) noexcept {
    cells_[shard_index()].n.fetch_add(delta, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t value() const noexcept {
    std::uint64_t sum = 0;
    for (const auto& c : cells_) sum += c.n.load(std::memory_order_relaxed);
    return sum;
  }

 private:
  struct alignas(64) Cell {
    std::atomic<std::uint64_t> n{0};
  };
  std::array<Cell, kShards> cells_{};
};

/// Point-in-time value. Written from probes and bookkeeping paths (cold),
/// so a single atomic suffices.
class Gauge {
 public:
  void set(double v) noexcept { v_.store(v, std::memory_order_relaxed); }
  void add(double delta) noexcept {
    v_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] double value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> v_{0.0};
};

/// Log-bucketed (powers of two) histogram of nonnegative integer samples,
/// sharded like Counter. Bucket b holds samples v with bit_width(v) == b,
/// i.e. upper bounds 0, 1, 3, 7, ..., 2^k-1 — 16 ns to a week of
/// microseconds in 40 buckets, no configuration needed.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 65;  ///< bit_width(uint64) ∈ [0,64]

  void observe(std::uint64_t v) noexcept {
    auto& s = shards_[shard_index()];
    s.buckets[std::bit_width(v)].fetch_add(1, std::memory_order_relaxed);
    s.sum.fetch_add(v, std::memory_order_relaxed);
  }

  struct Totals {
    std::array<std::uint64_t, kBuckets> buckets{};
    std::uint64_t count = 0;
    std::uint64_t sum = 0;

    /// Upper bound of bucket b (inclusive): 2^b - 1.
    [[nodiscard]] static std::uint64_t upper_bound(std::size_t b) {
      return b >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << b) - 1;
    }
    [[nodiscard]] double mean() const {
      return count == 0 ? 0.0
                        : static_cast<double>(sum) / static_cast<double>(count);
    }
  };

  [[nodiscard]] Totals totals() const noexcept {
    Totals t;
    for (const auto& s : shards_) {
      for (std::size_t b = 0; b < kBuckets; ++b) {
        const auto n = s.buckets[b].load(std::memory_order_relaxed);
        t.buckets[b] += n;
        t.count += n;
      }
      t.sum += s.sum.load(std::memory_order_relaxed);
    }
    return t;
  }

 private:
  struct alignas(64) Shard {
    std::array<std::atomic<std::uint64_t>, kBuckets> buckets{};
    std::atomic<std::uint64_t> sum{0};
  };
  std::array<Shard, kShards> shards_{};
};

// --- Snapshots (plain data, safe to keep after the registry dies) ----------

struct ScalarSnapshot {
  std::string name;
  std::string labels;  ///< Prometheus label body, e.g. `class="natural"`
  double value = 0.0;
};

struct HistogramSnapshot {
  std::string name;
  std::string labels;
  Histogram::Totals totals;
};

struct Snapshot {
  std::vector<ScalarSnapshot> counters;
  std::vector<ScalarSnapshot> gauges;
  std::vector<HistogramSnapshot> histograms;

  /// Value of the named counter/gauge summed over all label sets (0 when
  /// absent). Exporters and derived series use this.
  [[nodiscard]] double scalar(const std::string& name) const;
  /// Value of the exact (name, labels) counter/gauge; 0 when absent.
  [[nodiscard]] double scalar(const std::string& name,
                              const std::string& labels) const;
};

/// Owner of all metric instances, keyed by (name, labels). Creation takes a
/// mutex; returned references stay valid and lock-free for the registry's
/// lifetime.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter& counter(const std::string& name, const std::string& labels = "");
  Gauge& gauge(const std::string& name, const std::string& labels = "");
  Histogram& histogram(const std::string& name,
                       const std::string& labels = "");

  /// Point-in-time copy of every metric, sorted by (name, labels).
  [[nodiscard]] Snapshot snapshot() const;

  /// Sum of all counters named `name` whose label body contains
  /// `label_substr` (all label sets when empty). One lock, no histogram
  /// copies — cheap enough for per-tick sampler probes, unlike snapshot().
  [[nodiscard]] double counter_sum(const std::string& name,
                                   const std::string& label_substr = "") const;

 private:
  using Key = std::pair<std::string, std::string>;  // (name, labels)

  mutable std::mutex mu_;
  std::map<Key, std::unique_ptr<Counter>> counters_;
  std::map<Key, std::unique_ptr<Gauge>> gauges_;
  std::map<Key, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace metrics
