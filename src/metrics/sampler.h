// Sampler: periodic snapshots of derived speculation-health series.
//
// Counters answer "how much, in total"; the sampler answers "what did it
// look like over time" without the trace layer's O(tasks) memory. Each
// registered series is a closure returning a double (queue depth, buffer
// occupancy, a ratio of registry counters, ...). A tick evaluates every
// series and appends one timestamped row to a bounded ring.
//
// Two clocks:
//  * tick(now_us)  — caller-driven; the sim driver schedules ticks on the
//    virtual-time event queue so sampled series line up with engine time;
//  * start(interval_us) / stop() — a background thread ticks on wall-clock
//    time (threaded executor, tvsc live dashboard).
//
// Series closures typically capture the runtime/pipeline they probe; call
// clear_series() (or destroy the sampler) before those objects die. The
// collected rows are plain data and survive clear_series().
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace metrics {

class Sampler {
 public:
  /// `capacity` bounds the sample ring; the oldest rows are dropped (and
  /// counted) once it fills, so a long run degrades to a sliding window
  /// instead of unbounded memory.
  explicit Sampler(std::size_t capacity = 4096);
  ~Sampler();

  Sampler(const Sampler&) = delete;
  Sampler& operator=(const Sampler&) = delete;

  struct Sample {
    std::uint64_t t_us = 0;
    std::vector<double> values;  ///< one per series, registration order
  };

  /// Registers a named series. Not thread-safe against concurrent ticks:
  /// register everything before sampling starts.
  void add_series(std::string name, std::function<double()> fn);

  /// Drops every registered series closure — call before the probed objects
  /// die. Series names and collected samples survive (exporters still need
  /// them); a tick after clearing records zeros.
  void clear_series();

  /// Evaluates all series at time `now_us` and appends a row.
  void tick(std::uint64_t now_us);

  /// Starts the wall-clock background thread (no-op if already running).
  /// Ticks every `interval_us` with t_us = microseconds since start().
  void start(std::uint64_t interval_us);

  /// Stops and joins the background thread (no-op if not running).
  void stop();

  [[nodiscard]] bool running() const { return thread_.joinable(); }

  /// Invoked after each tick with the fresh row (live dashboards). The hook
  /// runs on the ticking thread; keep it cheap.
  void set_tick_hook(std::function<void(const Sample&)> hook);

  [[nodiscard]] std::vector<std::string> series_names() const;
  [[nodiscard]] std::vector<Sample> samples() const;
  [[nodiscard]] std::uint64_t ticks() const;
  [[nodiscard]] std::uint64_t dropped() const;

 private:
  struct Series {
    std::string name;
    std::function<double()> fn;
  };

  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::vector<Series> series_;
  std::deque<Sample> ring_;
  std::uint64_t ticks_ = 0;
  std::uint64_t dropped_ = 0;
  std::function<void(const Sample&)> hook_;

  std::thread thread_;
  std::atomic<bool> stop_{false};
};

}  // namespace metrics
