// MetricsObserver: the bridge from the SRE's passive event stream into the
// metrics registry.
//
// Attach one (directly or through a FanoutObserver) and every task, epoch
// and predictor event lands in always-on counters and histograms:
//
//   tvs_tasks_created_total{class=}      tvs_tasks_finished_total{class=}
//   tvs_tasks_aborted_total{class=}      tvs_edges_total
//   tvs_task_run_us{class=}  (histogram of dispatch→finish per class)
//   tvs_cpu_time_us_total{class=}        (speculative vs natural CPU share)
//   tvs_check_latency_us                 (Control-class run latency)
//   tvs_epochs_opened_total / _committed_total / _aborted_total
//   tvs_open_epochs                      (gauge)
//   tvs_rollback_cascade_tasks           (histogram: tasks killed per abort)
//   tvs_check_verdicts_total{verdict=}   tvs_check_margin_ppm (histogram)
//   tvs_predictions_scored_total{predictor=,hit=}
//   tvs_prediction_rel_error_ppm         (histogram)
//   tvs_predictor_charged_total{predictor=}
//   tvs_speculation_gated_total
//
// Counter/histogram writes are sharded and lock-free; the only lock here
// guards the live-task map (class + dispatch time, erased on completion,
// so it stays O(in-flight tasks)).
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

#include "metrics/registry.h"
#include "sre/observer.h"

namespace metrics {

class MetricsObserver final : public sre::Observer {
 public:
  /// `registry` must outlive the observer.
  explicit MetricsObserver(Registry& registry);

  void on_task_created(const sre::TaskInfo& task) override;
  void on_edge(sre::TaskId producer, sre::TaskId consumer) override;
  void on_dispatched(sre::TaskId task, std::uint64_t now_us,
                     unsigned cpu) override;
  void on_finished(sre::TaskId task, std::uint64_t now_us,
                   bool aborted) override;
  void on_epoch_opened(sre::Epoch epoch) override;
  void on_epoch_committed(sre::Epoch epoch) override;
  void on_epoch_aborted(sre::Epoch epoch) override;
  void on_rollback_cascade(sre::Epoch epoch, std::size_t tasks) override;
  void on_check_verdict(sre::Epoch epoch, bool within, bool is_final,
                        double margin) override;
  void on_prediction_scored(const std::string& predictor, bool hit,
                            double rel_error) override;
  void on_predictor_charged(const std::string& predictor) override;
  void on_speculation_gated(std::uint32_t estimate_index,
                            double confidence) override;

  [[nodiscard]] Registry& registry() { return reg_; }

 private:
  static constexpr std::size_t kClasses = 3;  // Natural/Speculative/Control
  [[nodiscard]] static std::size_t class_ix(sre::TaskClass cls) {
    return static_cast<std::size_t>(cls) < kClasses
               ? static_cast<std::size_t>(cls)
               : 0;
  }

  Registry& reg_;

  // Pre-resolved handles: the hot path must not touch the registry map.
  Counter* created_[kClasses];
  Counter* finished_[kClasses];
  Counter* aborted_[kClasses];
  Counter* cpu_time_us_[kClasses];
  Histogram* run_us_[kClasses];
  Counter& edges_;
  Histogram& check_latency_us_;
  Counter& epochs_opened_;
  Counter& epochs_committed_;
  Counter& epochs_aborted_;
  Gauge& open_epochs_;
  Histogram& rollback_cascade_;
  Counter& checks_passed_;
  Counter& checks_failed_;
  Histogram& check_margin_ppm_;
  Histogram& prediction_error_ppm_;
  Counter& gated_;

  struct Live {
    sre::TaskClass cls = sre::TaskClass::Natural;
    std::uint64_t dispatch_us = 0;
    bool dispatched = false;
  };
  std::mutex mu_;                                 ///< guards live_ only
  std::unordered_map<sre::TaskId, Live> live_;    ///< in-flight tasks
};

}  // namespace metrics
