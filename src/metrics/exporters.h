// Metrics exporters: turn a registry Snapshot (and optionally the sampler's
// time series) into consumable formats.
//
//  * Prometheus text exposition — scrape-ready `# TYPE` + sample lines;
//    histograms become cumulative `_bucket{le=...}` / `_sum` / `_count`.
//  * JSON snapshot — one self-describing object (counters, gauges,
//    histograms, samples) for run reports and external tooling.
//  * Dashboard line — a one-line terminal rendering of the run's health
//    (ready depths, open epochs, hit rate, rollbacks), suitable for
//    printing with '\r' as a live ticker.
#pragma once

#include <string>

#include "metrics/registry.h"
#include "metrics/sampler.h"

namespace metrics {

/// Prometheus text exposition format (version 0.0.4).
[[nodiscard]] std::string to_prometheus(const Snapshot& snapshot);

/// JSON object with "counters", "gauges", "histograms" arrays.
[[nodiscard]] std::string to_json(const Snapshot& snapshot);

/// JSON object additionally carrying the sampler's series under "samples":
/// {"names": [...], "rows": [[t_us, v...], ...], "dropped": n}.
[[nodiscard]] std::string to_json(const Snapshot& snapshot,
                                  const Sampler& sampler);

/// One terminal line summarizing speculation health from the snapshot, e.g.
///   t=1.2s tasks=1234 (spec 40%) epochs 3/2/1 open=0 checks 5p/1f
///   hit=0.83 gated=2 cascade~12
[[nodiscard]] std::string dashboard_line(const Snapshot& snapshot,
                                         std::uint64_t now_us);

/// JSON-escapes a string (shared by exporters and the report writer).
[[nodiscard]] std::string json_escape(const std::string& s);

}  // namespace metrics
