// RunReport: one machine-readable bundle per run.
//
// Merges (a) the run's headline numbers (latency, makespan, speculation
// outcome), (b) the final metrics snapshot, (c) the sampler's time series,
// (d) the predictor scoreboard, and (e) optional trace artifacts into a
// JSON document plus a human Markdown summary. tvsc and every figure bench
// write one, so any run — benchmark or production compress — leaves the
// same auditable artifact behind.
//
// The RunInfo struct is deliberately plain data: application layers
// (pipeline::run_info, tvsc) fill it from whatever result type they have,
// keeping this library free of application dependencies.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "metrics/registry.h"
#include "metrics/sampler.h"
#include "stats/predictor_stats.h"
#include "stats/trace.h"

namespace report {

/// Scheduler-path counters (engine-agnostic mirror of the threaded
/// executor's sharded DispatchStats). Engines that have no dispatch
/// instrumentation — the simulator, Central mode — leave it all-zero, and
/// both renderers omit the section entirely in that case: an all-zero row
/// would read as "measured, nothing happened", which is the wrong claim.
struct DispatchInfo {
  std::uint64_t tasks_run = 0;
  std::uint64_t local_pops = 0;
  std::uint64_t inbox_pops = 0;
  std::uint64_t steals = 0;
  std::uint64_t self_stages = 0;
  std::uint64_t director_stages = 0;
  std::uint64_t revoked_at_pop = 0;
  std::uint64_t parks = 0;
  std::uint64_t completion_fallbacks = 0;
  std::uint64_t inline_finishes = 0;
  std::uint64_t worker_retires = 0;

  [[nodiscard]] bool empty() const {
    return tasks_run == 0 && local_pops == 0 && inbox_pops == 0 &&
           steals == 0 && self_stages == 0 && director_stages == 0 &&
           revoked_at_pop == 0 && parks == 0 && completion_fallbacks == 0 &&
           inline_finishes == 0 && worker_retires == 0;
  }
};

/// Headline facts about one run, independent of where they came from.
struct RunInfo {
  std::string scenario;       ///< human-readable configuration label
  std::string engine;         ///< "sim" or "threaded"
  std::uint64_t makespan_us = 0;
  std::size_t blocks = 0;
  double avg_latency_us = 0.0;
  std::uint64_t p95_latency_us = 0;
  std::uint64_t max_latency_us = 0;
  bool spec_committed = false;
  std::uint64_t rollbacks = 0;
  std::uint64_t gate_denials = 0;
  std::uint64_t wasted_encodes = 0;
  std::size_t wait_discarded = 0;
  std::size_t input_bytes = 0;
  std::uint64_t output_bits = 0;
  std::string best_predictor;
  stats::RunCounters counters;
  stats::PredictorScoreboard predictors;
  DispatchInfo dispatch;  ///< omitted from output when empty()
};

struct RunReport {
  RunInfo info;
  metrics::Snapshot metrics;                    ///< final registry state
  std::vector<std::string> series_names;        ///< sampler series
  std::vector<metrics::Sampler::Sample> samples;
  std::uint64_t samples_dropped = 0;

  /// Optional trace artifacts (empty = not captured). Stored verbatim and
  /// written as sibling files by write_bundle.
  std::string trace_chrome_json;
  std::string trace_utilization;

  [[nodiscard]] std::string to_json() const;
  [[nodiscard]] std::string to_markdown() const;
};

/// Assembles a report; any of the pointers may be null.
[[nodiscard]] RunReport make_report(RunInfo info,
                                    const metrics::Registry* registry,
                                    const metrics::Sampler* sampler);

/// Writes `<dir>/<stem>.json`, `<dir>/<stem>.md`, `<dir>/<stem>.prom` and —
/// when trace artifacts are present — `<dir>/<stem>.chrome.json` /
/// `<dir>/<stem>.timeline.txt`. Creates `dir` if needed; returns the paths
/// written. Throws std::runtime_error on I/O failure.
std::vector<std::string> write_bundle(const RunReport& report,
                                      const std::string& dir,
                                      const std::string& stem = "report");

}  // namespace report
