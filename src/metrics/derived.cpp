#include "metrics/derived.h"

#include <algorithm>
#include <cmath>
#include <utility>

namespace metrics {
namespace {

double sum_matching(const std::vector<ScalarSnapshot>& scalars,
                    const std::string& name, const std::string& label_substr) {
  double sum = 0.0;
  for (const auto& s : scalars) {
    if (s.name != name) continue;
    if (!label_substr.empty() &&
        s.labels.find(label_substr) == std::string::npos) {
      continue;
    }
    sum += s.value;
  }
  return sum;
}

const HistogramSnapshot* find_histogram(
    const std::vector<HistogramSnapshot>& hists, const std::string& name,
    const std::string& labels) {
  for (const auto& h : hists) {
    if (h.name == name && h.labels == labels) return &h;
  }
  return nullptr;
}

}  // namespace

void DeltaView::advance(std::uint64_t now_us) {
  prev_ = std::move(cur_);
  cur_ = reg_.snapshot();
  if (advances_ > 0) {
    interval_us_ = now_us > prev_t_us_ ? now_us - prev_t_us_ : 0;
    primed_ = true;
  }
  prev_t_us_ = now_us;
  ++advances_;
}

double DeltaView::counter_delta(const std::string& name,
                                const std::string& label_substr) const {
  if (!primed_) return 0.0;
  const double d = sum_matching(cur_.counters, name, label_substr) -
                   sum_matching(prev_.counters, name, label_substr);
  return std::max(d, 0.0);
}

double DeltaView::counter_rate(const std::string& name,
                               const std::string& label_substr) const {
  if (!primed_ || interval_us_ == 0) return 0.0;
  return counter_delta(name, label_substr) * 1e6 /
         static_cast<double>(interval_us_);
}

double DeltaView::histogram_quantile(const std::string& name,
                                     const std::string& labels,
                                     double q) const {
  if (!primed_) return 0.0;
  const HistogramSnapshot* now = find_histogram(cur_.histograms, name, labels);
  if (now == nullptr) return 0.0;
  const HistogramSnapshot* before =
      find_histogram(prev_.histograms, name, labels);

  Histogram::Totals delta;
  for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
    const std::uint64_t prev_n =
        before != nullptr ? before->totals.buckets[b] : 0;
    const std::uint64_t n =
        now->totals.buckets[b] > prev_n ? now->totals.buckets[b] - prev_n : 0;
    delta.buckets[b] = n;
    delta.count += n;
  }
  if (delta.count == 0) return 0.0;

  q = std::clamp(q, 0.0, 1.0);
  // Nearest-rank quantile, 1-based; walk the buckets to it.
  const std::uint64_t rank = std::min<std::uint64_t>(
      delta.count,
      std::max<std::uint64_t>(1, static_cast<std::uint64_t>(std::ceil(
                                     q * static_cast<double>(delta.count)))));
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
    seen += delta.buckets[b];
    if (seen >= rank) {
      return static_cast<double>(Histogram::Totals::upper_bound(b));
    }
  }
  return static_cast<double>(
      Histogram::Totals::upper_bound(Histogram::kBuckets - 1));
}

}  // namespace metrics
