#include "metrics/sampler.h"

#include <chrono>

namespace metrics {

Sampler::Sampler(std::size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {}

Sampler::~Sampler() { stop(); }

void Sampler::add_series(std::string name, std::function<double()> fn) {
  std::scoped_lock lk(mu_);
  series_.push_back({std::move(name), std::move(fn)});
}

void Sampler::clear_series() {
  std::scoped_lock lk(mu_);
  // Drop only the closures (they reference run-scoped objects); names stay
  // so exporters can still label the collected rows.
  for (auto& s : series_) s.fn = nullptr;
}

void Sampler::tick(std::uint64_t now_us) {
  Sample row;
  std::function<void(const Sample&)> hook;
  {
    std::scoped_lock lk(mu_);
    row.t_us = now_us;
    row.values.reserve(series_.size());
    for (const auto& s : series_) {
      row.values.push_back(s.fn ? s.fn() : 0.0);
    }
    ring_.push_back(row);
    if (ring_.size() > capacity_) {
      ring_.pop_front();
      ++dropped_;
    }
    ++ticks_;
    hook = hook_;
  }
  if (hook) hook(row);
}

void Sampler::start(std::uint64_t interval_us) {
  if (thread_.joinable()) return;
  if (interval_us == 0) interval_us = 1;
  stop_.store(false);
  thread_ = std::thread([this, interval_us] {
    const auto t0 = std::chrono::steady_clock::now();
    while (!stop_.load()) {
      std::this_thread::sleep_for(std::chrono::microseconds(interval_us));
      if (stop_.load()) break;
      const auto now = std::chrono::steady_clock::now();
      tick(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(now - t0)
              .count()));
    }
  });
}

void Sampler::stop() {
  if (!thread_.joinable()) return;
  stop_.store(true);
  thread_.join();
}

void Sampler::set_tick_hook(std::function<void(const Sample&)> hook) {
  std::scoped_lock lk(mu_);
  hook_ = std::move(hook);
}

std::vector<std::string> Sampler::series_names() const {
  std::scoped_lock lk(mu_);
  std::vector<std::string> names;
  names.reserve(series_.size());
  for (const auto& s : series_) names.push_back(s.name);
  return names;
}

std::vector<Sampler::Sample> Sampler::samples() const {
  std::scoped_lock lk(mu_);
  return {ring_.begin(), ring_.end()};
}

std::uint64_t Sampler::ticks() const {
  std::scoped_lock lk(mu_);
  return ticks_;
}

std::uint64_t Sampler::dropped() const {
  std::scoped_lock lk(mu_);
  return dropped_;
}

}  // namespace metrics
