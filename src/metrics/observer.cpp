#include "metrics/observer.h"

#include <cmath>

namespace metrics {
namespace {

std::string class_labels(std::size_t ix) {
  switch (ix) {
    case 0: return "class=\"natural\"";
    case 1: return "class=\"speculative\"";
    case 2: return "class=\"control\"";
  }
  return "class=\"?\"";
}

/// Ratios land in histograms as parts-per-million (log buckets stay
/// meaningful for values well below 1).
std::uint64_t to_ppm(double ratio) {
  if (!(ratio >= 0.0)) return 0;  // negative or NaN: clamp
  const double ppm = ratio * 1e6;
  return ppm >= 9e18 ? std::uint64_t{9'000'000'000'000'000'000ull}
                     : static_cast<std::uint64_t>(ppm);
}

}  // namespace

MetricsObserver::MetricsObserver(Registry& registry)
    : reg_(registry),
      edges_(registry.counter("tvs_edges_total")),
      check_latency_us_(registry.histogram("tvs_check_latency_us")),
      epochs_opened_(registry.counter("tvs_epochs_opened_total")),
      epochs_committed_(registry.counter("tvs_epochs_committed_total")),
      epochs_aborted_(registry.counter("tvs_epochs_aborted_total")),
      open_epochs_(registry.gauge("tvs_open_epochs")),
      rollback_cascade_(registry.histogram("tvs_rollback_cascade_tasks")),
      checks_passed_(
          registry.counter("tvs_check_verdicts_total", "verdict=\"pass\"")),
      checks_failed_(
          registry.counter("tvs_check_verdicts_total", "verdict=\"fail\"")),
      check_margin_ppm_(registry.histogram("tvs_check_margin_ppm")),
      prediction_error_ppm_(
          registry.histogram("tvs_prediction_rel_error_ppm")),
      gated_(registry.counter("tvs_speculation_gated_total")) {
  for (std::size_t c = 0; c < kClasses; ++c) {
    const std::string labels = class_labels(c);
    created_[c] = &registry.counter("tvs_tasks_created_total", labels);
    finished_[c] = &registry.counter("tvs_tasks_finished_total", labels);
    aborted_[c] = &registry.counter("tvs_tasks_aborted_total", labels);
    cpu_time_us_[c] = &registry.counter("tvs_cpu_time_us_total", labels);
    run_us_[c] = &registry.histogram("tvs_task_run_us", labels);
  }
}

void MetricsObserver::on_task_created(const sre::TaskInfo& task) {
  const std::size_t c = class_ix(task.cls);
  created_[c]->add();
  std::scoped_lock lk(mu_);
  live_[task.id] = Live{task.cls, 0, false};
}

void MetricsObserver::on_edge(sre::TaskId, sre::TaskId) { edges_.add(); }

void MetricsObserver::on_dispatched(sre::TaskId task, std::uint64_t now_us,
                                    unsigned /*cpu*/) {
  std::scoped_lock lk(mu_);
  auto it = live_.find(task);
  if (it == live_.end()) return;
  it->second.dispatch_us = now_us;
  it->second.dispatched = true;
}

void MetricsObserver::on_finished(sre::TaskId task, std::uint64_t now_us,
                                  bool aborted) {
  Live live;
  {
    std::scoped_lock lk(mu_);
    auto it = live_.find(task);
    if (it == live_.end()) return;
    live = it->second;
    live_.erase(it);
  }
  const std::size_t c = class_ix(live.cls);
  if (aborted) {
    aborted_[c]->add();
    // Work already spent on an aborted in-flight task is still CPU share.
    if (live.dispatched && now_us > live.dispatch_us) {
      cpu_time_us_[c]->add(now_us - live.dispatch_us);
    }
    return;
  }
  finished_[c]->add();
  if (live.dispatched) {
    const std::uint64_t dur =
        now_us > live.dispatch_us ? now_us - live.dispatch_us : 0;
    run_us_[c]->observe(dur);
    cpu_time_us_[c]->add(dur);
    if (live.cls == sre::TaskClass::Control) check_latency_us_.observe(dur);
  }
}

void MetricsObserver::on_epoch_opened(sre::Epoch) {
  epochs_opened_.add();
  open_epochs_.add(1.0);
}

void MetricsObserver::on_epoch_committed(sre::Epoch) {
  epochs_committed_.add();
  open_epochs_.add(-1.0);
}

void MetricsObserver::on_epoch_aborted(sre::Epoch) {
  epochs_aborted_.add();
  open_epochs_.add(-1.0);
}

void MetricsObserver::on_rollback_cascade(sre::Epoch, std::size_t tasks) {
  rollback_cascade_.observe(tasks);
}

void MetricsObserver::on_check_verdict(sre::Epoch, bool within,
                                       bool /*is_final*/, double margin) {
  (within ? checks_passed_ : checks_failed_).add();
  if (margin >= 0.0) check_margin_ppm_.observe(to_ppm(margin));
}

void MetricsObserver::on_prediction_scored(const std::string& predictor,
                                           bool hit, double rel_error) {
  // Per-predictor handles go through the registry map (mutex); prediction
  // scoring happens once per estimate, not per task, so this stays cold.
  reg_.counter("tvs_predictions_scored_total",
               "predictor=\"" + predictor + "\",hit=\"" +
                   (hit ? "true" : "false") + "\"")
      .add();
  prediction_error_ppm_.observe(to_ppm(rel_error));
}

void MetricsObserver::on_predictor_charged(const std::string& predictor) {
  reg_.counter("tvs_predictor_charged_total",
               "predictor=\"" + predictor + "\"")
      .add();
}

void MetricsObserver::on_speculation_gated(std::uint32_t /*estimate_index*/,
                                           double /*confidence*/) {
  gated_.add();
}

}  // namespace metrics
