#include "metrics/registry.h"

namespace metrics {

namespace {

std::size_t next_shard() noexcept {
  static std::atomic<std::size_t> round_robin{0};
  return round_robin.fetch_add(1, std::memory_order_relaxed) % kShards;
}

thread_local std::size_t t_shard = kShards;  // kShards = unassigned

}  // namespace

std::size_t shard_index() noexcept {
  if (t_shard == kShards) t_shard = next_shard();
  return t_shard;
}

void bind_shard(std::size_t index) noexcept { t_shard = index % kShards; }

Counter& Registry::counter(const std::string& name, const std::string& labels) {
  std::scoped_lock lk(mu_);
  auto& slot = counters_[{name, labels}];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name, const std::string& labels) {
  std::scoped_lock lk(mu_);
  auto& slot = gauges_[{name, labels}];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name,
                               const std::string& labels) {
  std::scoped_lock lk(mu_);
  auto& slot = histograms_[{name, labels}];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

Snapshot Registry::snapshot() const {
  std::scoped_lock lk(mu_);
  Snapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [key, c] : counters_) {
    snap.counters.push_back(
        {key.first, key.second, static_cast<double>(c->value())});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [key, g] : gauges_) {
    snap.gauges.push_back({key.first, key.second, g->value()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [key, h] : histograms_) {
    snap.histograms.push_back({key.first, key.second, h->totals()});
  }
  return snap;
}

double Registry::counter_sum(const std::string& name,
                             const std::string& label_substr) const {
  std::scoped_lock lk(mu_);
  double sum = 0.0;
  for (auto it = counters_.lower_bound({name, std::string()});
       it != counters_.end() && it->first.first == name; ++it) {
    if (!label_substr.empty() &&
        it->first.second.find(label_substr) == std::string::npos) {
      continue;
    }
    sum += static_cast<double>(it->second->value());
  }
  return sum;
}

double Snapshot::scalar(const std::string& name) const {
  double sum = 0.0;
  bool seen = false;
  for (const auto& c : counters) {
    if (c.name == name) {
      sum += c.value;
      seen = true;
    }
  }
  for (const auto& g : gauges) {
    if (g.name == name) {
      sum += g.value;
      seen = true;
    }
  }
  return seen ? sum : 0.0;
}

double Snapshot::scalar(const std::string& name,
                        const std::string& labels) const {
  for (const auto& c : counters) {
    if (c.name == name && c.labels == labels) return c.value;
  }
  for (const auto& g : gauges) {
    if (g.name == name && g.labels == labels) return g.value;
  }
  return 0.0;
}

}  // namespace metrics
