#include "metrics/report.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "metrics/exporters.h"

namespace report {
namespace {

using metrics::json_escape;

void write_text(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  out << content;
  if (!out) throw std::runtime_error("report: cannot write " + path);
}

std::string fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.1f", v);
  return buf;
}

}  // namespace

std::string RunReport::to_json() const {
  const auto& i = info;
  std::ostringstream os;
  os << "{\n  \"scenario\": \"" << json_escape(i.scenario) << "\",\n"
     << "  \"engine\": \"" << json_escape(i.engine) << "\",\n"
     << "  \"makespan_us\": " << i.makespan_us << ",\n"
     << "  \"blocks\": " << i.blocks << ",\n"
     << "  \"avg_latency_us\": " << fmt(i.avg_latency_us) << ",\n"
     << "  \"p95_latency_us\": " << i.p95_latency_us << ",\n"
     << "  \"max_latency_us\": " << i.max_latency_us << ",\n"
     << "  \"spec_committed\": " << (i.spec_committed ? "true" : "false")
     << ",\n"
     << "  \"rollbacks\": " << i.rollbacks << ",\n"
     << "  \"gate_denials\": " << i.gate_denials << ",\n"
     << "  \"wasted_encodes\": " << i.wasted_encodes << ",\n"
     << "  \"wait_discarded\": " << i.wait_discarded << ",\n"
     << "  \"input_bytes\": " << i.input_bytes << ",\n"
     << "  \"output_bits\": " << i.output_bits << ",\n"
     << "  \"best_predictor\": \"" << json_escape(i.best_predictor) << "\",\n"
     << "  \"counters\": {"
     << "\"tasks_executed\": " << i.counters.tasks_executed
     << ", \"tasks_aborted\": " << i.counters.tasks_aborted
     << ", \"spec_tasks_executed\": " << i.counters.spec_tasks_executed
     << ", \"checks_executed\": " << i.counters.checks_executed
     << ", \"rollbacks\": " << i.counters.rollbacks
     << ", \"epochs_opened\": " << i.counters.epochs_opened
     << ", \"epochs_committed\": " << i.counters.epochs_committed << "},\n"
     << "  \"predictors\": [";
  bool first = true;
  for (const auto& row : i.predictors.rows()) {
    if (!first) os << ", ";
    first = false;
    os << "{\"name\": \"" << json_escape(row.name)
       << "\", \"scored\": " << row.scored << ", \"hits\": " << row.hits
       << ", \"hit_rate\": " << fmt(row.hit_rate())
       << ", \"supplied\": " << row.guesses_supplied
       << ", \"rollbacks_charged\": " << row.rollbacks_charged << "}";
  }
  os << "],\n";

  if (!i.dispatch.empty()) {
    const auto& d = i.dispatch;
    os << "  \"dispatch\": {"
       << "\"tasks_run\": " << d.tasks_run
       << ", \"local_pops\": " << d.local_pops
       << ", \"inbox_pops\": " << d.inbox_pops
       << ", \"steals\": " << d.steals
       << ", \"self_stages\": " << d.self_stages
       << ", \"director_stages\": " << d.director_stages
       << ", \"revoked_at_pop\": " << d.revoked_at_pop
       << ", \"parks\": " << d.parks
       << ", \"completion_fallbacks\": " << d.completion_fallbacks
       << ", \"inline_finishes\": " << d.inline_finishes
       << ", \"worker_retires\": " << d.worker_retires << "},\n";
  }

  // Sampler series: column names plus [t_us, v...] rows.
  os << "  \"samples\": {\"names\": [";
  for (std::size_t s = 0; s < series_names.size(); ++s) {
    if (s) os << ", ";
    os << '"' << json_escape(series_names[s]) << '"';
  }
  os << "], \"dropped\": " << samples_dropped << ", \"rows\": [";
  for (std::size_t r = 0; r < samples.size(); ++r) {
    if (r) os << ", ";
    os << '[' << samples[r].t_us;
    for (double v : samples[r].values) {
      char buf[64];
      std::snprintf(buf, sizeof buf, ",%.9g", v);
      os << buf;
    }
    os << ']';
  }
  os << "]},\n";

  // Embed the full metrics snapshot as a sub-object.
  os << "  \"metrics\": " << metrics::to_json(metrics) << "\n}\n";
  return os.str();
}

std::string RunReport::to_markdown() const {
  const auto& i = info;
  std::ostringstream os;
  os << "# Run report — " << i.scenario << "\n\n";
  os << "| | |\n|---|---|\n";
  os << "| engine | " << i.engine << " |\n";
  os << "| makespan | " << i.makespan_us << " µs |\n";
  os << "| blocks | " << i.blocks << " |\n";
  os << "| avg / p95 / max latency | " << fmt(i.avg_latency_us) << " / "
     << i.p95_latency_us << " / " << i.max_latency_us << " µs |\n";
  os << "| speculation committed | " << (i.spec_committed ? "yes" : "no")
     << " |\n";
  os << "| rollbacks / gate denials | " << i.rollbacks << " / "
     << i.gate_denials << " |\n";
  os << "| wasted encodes / wait discarded | " << i.wasted_encodes << " / "
     << i.wait_discarded << " |\n";
  if (i.input_bytes > 0) {
    os << "| compression | " << i.input_bytes << " B → " << (i.output_bits / 8)
       << " B (" << fmt(100.0 * static_cast<double>(i.output_bits / 8) /
                        static_cast<double>(i.input_bytes))
       << "%) |\n";
  }
  os << "| tasks executed / aborted | " << i.counters.tasks_executed << " / "
     << i.counters.tasks_aborted << " |\n";
  os << "| epochs opened / committed | " << i.counters.epochs_opened << " / "
     << i.counters.epochs_committed << " |\n";

  if (!i.dispatch.empty()) {
    const auto& d = i.dispatch;
    os << "\n## Dispatch\n\n| | |\n|---|---|\n";
    os << "| tasks run | " << d.tasks_run << " |\n";
    os << "| pops: local / inbox / steal / self-stage | " << d.local_pops
       << " / " << d.inbox_pops << " / " << d.steals << " / " << d.self_stages
       << " |\n";
    os << "| director stages | " << d.director_stages << " |\n";
    os << "| revoked at pop | " << d.revoked_at_pop << " |\n";
    os << "| parks / completion fallbacks | " << d.parks << " / "
       << d.completion_fallbacks << " |\n";
    os << "| inline finishes / worker retires | " << d.inline_finishes << " / "
       << d.worker_retires << " |\n";
  }

  if (!i.predictors.rows().empty()) {
    os << "\n## Predictors";
    if (!i.best_predictor.empty()) os << " (best: " << i.best_predictor << ")";
    os << "\n\n| predictor | scored | hit rate | supplied | charged |\n"
       << "|---|---|---|---|---|\n";
    for (const auto& row : i.predictors.rows()) {
      os << "| " << row.name << " | " << row.scored << " | "
         << fmt(100.0 * row.hit_rate()) << "% | " << row.guesses_supplied
         << " | " << row.rollbacks_charged << " |\n";
    }
  }

  if (!samples.empty()) {
    os << "\n## Sampled series\n\n" << samples.size() << " samples";
    if (samples_dropped > 0) os << " (" << samples_dropped << " dropped)";
    os << " over " << samples.front().t_us << "–" << samples.back().t_us
       << " µs: ";
    for (std::size_t s = 0; s < series_names.size(); ++s) {
      if (s) os << ", ";
      os << series_names[s];
    }
    os << ". Full rows in the JSON report.\n";
  }

  // A terse metrics digest; the full snapshot is in the JSON/prom files.
  os << "\n## Metrics digest\n\n```\n"
     << metrics::dashboard_line(metrics, i.makespan_us) << "\n```\n";

  if (!trace_utilization.empty()) {
    os << "\n## Utilization timeline\n\n```\n" << trace_utilization << "```\n";
  }
  return os.str();
}

RunReport make_report(RunInfo info, const metrics::Registry* registry,
                      const metrics::Sampler* sampler) {
  RunReport rep;
  rep.info = std::move(info);
  if (registry != nullptr) rep.metrics = registry->snapshot();
  if (sampler != nullptr) {
    rep.series_names = sampler->series_names();
    rep.samples = sampler->samples();
    rep.samples_dropped = sampler->dropped();
  }
  return rep;
}

std::vector<std::string> write_bundle(const RunReport& report,
                                      const std::string& dir,
                                      const std::string& stem) {
  std::filesystem::create_directories(dir);
  std::vector<std::string> written;
  const std::string base = dir + "/" + stem;

  write_text(base + ".json", report.to_json());
  written.push_back(base + ".json");
  write_text(base + ".md", report.to_markdown());
  written.push_back(base + ".md");
  write_text(base + ".prom", metrics::to_prometheus(report.metrics));
  written.push_back(base + ".prom");

  if (!report.trace_chrome_json.empty()) {
    write_text(base + ".chrome.json", report.trace_chrome_json);
    written.push_back(base + ".chrome.json");
  }
  if (!report.trace_utilization.empty()) {
    write_text(base + ".timeline.txt", report.trace_utilization);
    written.push_back(base + ".timeline.txt");
  }
  return written;
}

}  // namespace report
