#!/usr/bin/env bash
# CI entry point: the tier-1 line (build + full ctest) and, unless skipped,
# a sanitizer pass (asan+ubsan preset) over the same test suite. Leak
# checking stays off in the preset: epoch-drop GC retains speculative
# products until process exit, which LeakSanitizer reports by design.
#
#   tools/ci.sh            # tier-1 + sanitizers
#   tools/ci.sh tsan       # ThreadSanitizer over the sre_core test label
#                          # (scheduler, speculation, dispatch concurrency)
#   tools/ci.sh torture    # speculation torture harness under TSan: the
#                          # fixed seed set plus one time-boxed random-seed
#                          # sweep (prints the seed to replay on failure)
#   tools/ci.sh serve      # serving-layer tests + a bounded load smoke:
#                          # serve_load --smoke must shed nothing at low
#                          # rate and drain the shared runtime clean
#   tools/ci.sh flight     # flight-recorder tests + the overhead gate
#                          # (recorder armed on the sharded executor) + the
#                          # post-mortem smoke inside serve_load --smoke
#   tools/ci.sh kernels    # data-plane kernel gate: the differential suite
#                          # plus codec/histogram/io tests under asan+ubsan
#                          # with TVS_SIMD forced to every dispatch level
#   tools/ci.sh control    # adaptive-control-plane gate: controller logic,
#                          # delta-view, serving integration and retune-race
#                          # tests, then the ablation A/B in --smoke mode
#                          # (adaptive must match best static, beat worst,
#                          # stay bit-identical when disabled, <2% overhead)
#   tools/ci.sh dist       # distributed-serving gate: net/dist unit tests
#                          # (frame/wire hostile-input, protocol codecs,
#                          # router e2e) plus dist_load --smoke — a real
#                          # router over two tvsc served subprocesses on
#                          # loopback asserting byte-identity and
#                          # spill-before-shed
#   TVS_SKIP_ASAN=1 tools/ci.sh   # tier-1 only (fast pre-push check)
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

if [[ "${1:-}" == "tsan" ]]; then
  echo "== tsan: sre_core label under ThreadSanitizer (build-tsan/) =="
  cmake --preset tsan >/dev/null
  cmake --build --preset tsan -j"$JOBS"
  ctest --preset tsan -j"$JOBS"
  echo "== tsan green =="
  exit 0
fi

if [[ "${1:-}" == "torture" ]]; then
  echo "== torture: speculation chaos suites under ThreadSanitizer (build-tsan/) =="
  cmake --preset tsan >/dev/null
  cmake --build --preset tsan -j"$JOBS"

  echo "-- fixed seed set (deterministic regressions + seeds 1..200) --"
  ./build-tsan/tests/chaos_regression_test
  ./build-tsan/tests/harness_test
  ./build-tsan/tests/speculator_torture_test
  ./build-tsan/tests/wait_buffer_torture_test

  # One extra sweep from a fresh base seed, time-boxed so a pathological
  # schedule cannot wedge CI. On failure the gtest message already carries
  # the seed and a shrunk reproducer; echo the replay line again regardless.
  RANDOM_SEED="${TVS_TORTURE_RANDOM_SEED:-$(( $(date +%s) % 1000000 + 1000 ))}"
  echo "-- random sweep: TVS_TORTURE_BASE_SEED=${RANDOM_SEED} TVS_TORTURE_SEEDS=50 --"
  if ! timeout "${TVS_TORTURE_TIMEBOX_S:-300}" env \
      TVS_TORTURE_BASE_SEED="$RANDOM_SEED" TVS_TORTURE_SEEDS=50 \
      ./build-tsan/tests/speculator_torture_test; then
    echo "!! random torture sweep failed (or timed out); replay with:" >&2
    echo "!!   TVS_TORTURE_BASE_SEED=${RANDOM_SEED} TVS_TORTURE_SEEDS=50 ./build-tsan/tests/speculator_torture_test" >&2
    exit 1
  fi
  if ! timeout "${TVS_TORTURE_TIMEBOX_S:-300}" env \
      TVS_TORTURE_BASE_SEED="$RANDOM_SEED" TVS_TORTURE_SEEDS=50 \
      ./build-tsan/tests/wait_buffer_torture_test; then
    echo "!! random torture sweep failed (or timed out); replay with:" >&2
    echo "!!   TVS_TORTURE_BASE_SEED=${RANDOM_SEED} TVS_TORTURE_SEEDS=50 ./build-tsan/tests/wait_buffer_torture_test" >&2
    exit 1
  fi
  echo "== torture green =="
  exit 0
fi

if [[ "${1:-}" == "serve" ]]; then
  echo "== serve: serving-layer tests + bounded load smoke (build/) =="
  cmake -B build -S . >/dev/null
  cmake --build build -j"$JOBS"
  ctest --test-dir build --output-on-failure -j"$JOBS" \
    -R 'ShedPolicy|Admission\.|SessionManager|MultiSessionTorture'
  # Open-loop smoke, time-boxed: at ~0.25x of measured capacity the service
  # must accept and finish every session (zero sheds) and drain clean. A
  # hang here means admission/drain deadlocked — fail rather than wedge CI.
  timeout "${TVS_SERVE_SMOKE_TIMEBOX_S:-10}" ./build/bench/serve_load --smoke
  echo "== serve green =="
  exit 0
fi

if [[ "${1:-}" == "flight" ]]; then
  echo "== flight: recorder tests + overhead gate + post-mortem smoke (build/) =="
  cmake -B build -S . >/dev/null
  cmake --build build -j"$JOBS"
  ctest --test-dir build --output-on-failure -j"$JOBS" \
    -R 'Flight|TraceRecorder|TraceExport'
  # Overhead gate: flight recorder armed on the threaded sharded executor.
  # The bench enforces 3% on machines that can host the worker fleet and
  # widens its own budget on oversubscribed ones (scheduler churn swamps the
  # ~0.2% true recorder cost there); TVS_FLIGHT_OVERHEAD_MAX_PCT overrides
  # either default and passes straight through.
  ./build/bench/overhead_flight
  # serve_load --smoke also asserts a forced-Failed session leaves a
  # post-mortem dump on disk.
  timeout "${TVS_SERVE_SMOKE_TIMEBOX_S:-10}" ./build/bench/serve_load --smoke
  echo "== flight green =="
  exit 0
fi

if [[ "${1:-}" == "control" ]]; then
  echo "== control: adaptive control plane gate (build/) =="
  cmake -B build -S . >/dev/null
  cmake --build build -j"$JOBS"
  # Decision logic (bands/dwell/bounds), signal derivation, the serving
  # integration (retunes reaching live sessions), and the retune-vs-worker
  # race suite that the tsan label also covers.
  ctest --test-dir build --output-on-failure -j"$JOBS" \
    -R 'Classify|KnobTest|SpecTunerTest|AdmissionTunerTest|ControllerTest|DeltaView|ControlIntegration|RetuneRace'
  # Deterministic virtual-time A/B: adaptive vs static arms on a spliced
  # phase-changing corpus, plus the bit-identical-when-disabled and
  # sampling-overhead gates (TVS_ABLATION_TOL_PCT / TVS_OVERHEAD_MAX_PCT
  # override the budgets).
  timeout "${TVS_CONTROL_SMOKE_TIMEBOX_S:-120}" ./build/bench/ablation_control --smoke
  echo "== control green =="
  exit 0
fi

if [[ "${1:-}" == "dist" ]]; then
  echo "== dist: distributed serving gate (build/) =="
  cmake -B build -S . >/dev/null
  cmake --build build -j"$JOBS"
  # Transport + protocol hardening and the in-process router e2e suite
  # (loopback identity, kill-a-node, spill-before-shed) — the `dist` ctest
  # label covers exactly the net/ and dist/ binaries.
  ctest --test-dir build --output-on-failure -j"$JOBS" -L dist
  # Multi-process smoke, time-boxed: an in-process router over two real
  # `tvsc served` subprocesses must produce byte-identical output to a
  # local SessionManager and spill Bulk to the roomy node instead of
  # shedding. A hang here means drain/heartbeat teardown wedged — fail
  # rather than block CI.
  timeout "${TVS_DIST_SMOKE_TIMEBOX_S:-30}" ./build/bench/dist_load --smoke \
    --tvsc=./build/tools/tvsc
  echo "== dist green =="
  exit 0
fi

if [[ "${1:-}" == "kernels" ]]; then
  echo "== kernels: SIMD differential gate under asan+ubsan (build-asan/) =="
  cmake --preset asan >/dev/null
  cmake --build --preset asan -j"$JOBS"
  # The differential suite sweeps every level in-process via force(); running
  # it once per TVS_SIMD value additionally pins the env-dispatch path (the
  # one production uses) at each level, all under the sanitizers.
  for level in 0 1 2; do
    echo "-- kernel_diff_test with TVS_SIMD=${level} --"
    TVS_SIMD="$level" ./build-asan/tests/kernel_diff_test
  done
  # Codec, histogram, and zero-copy I/O suites at the scalar reference level
  # and at the best level the host supports: both must be bit-exact.
  for level in 0 2; do
    echo "-- codec/histogram/io/arena suites with TVS_SIMD=${level} --"
    TVS_SIMD="$level" ./build-asan/tests/histogram_test
    TVS_SIMD="$level" ./build-asan/tests/codec_test
    TVS_SIMD="$level" ./build-asan/tests/stream_format_test
    TVS_SIMD="$level" ./build-asan/tests/io_test
    TVS_SIMD="$level" ./build-asan/tests/arena_test
  done
  echo "== kernels green =="
  exit 0
fi

echo "== tier 1: configure + build + ctest (build/) =="
cmake -B build -S . >/dev/null
cmake --build build -j"$JOBS"
ctest --test-dir build --output-on-failure -j"$JOBS"

if [[ "${TVS_SKIP_ASAN:-0}" == "1" ]]; then
  echo "== sanitizer pass skipped (TVS_SKIP_ASAN=1) =="
  exit 0
fi

echo "== sanitizers: asan+ubsan preset (build-asan/) =="
cmake --preset asan >/dev/null
cmake --build --preset asan -j"$JOBS"
ctest --preset asan -j"$JOBS"

echo "== CI green =="
