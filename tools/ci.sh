#!/usr/bin/env bash
# CI entry point: the tier-1 line (build + full ctest) and, unless skipped,
# a sanitizer pass (asan+ubsan preset) over the same test suite. Leak
# checking stays off in the preset: epoch-drop GC retains speculative
# products until process exit, which LeakSanitizer reports by design.
#
#   tools/ci.sh            # tier-1 + sanitizers
#   tools/ci.sh tsan       # ThreadSanitizer over the sre_core test label
#                          # (scheduler, speculation, dispatch concurrency)
#   TVS_SKIP_ASAN=1 tools/ci.sh   # tier-1 only (fast pre-push check)
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

if [[ "${1:-}" == "tsan" ]]; then
  echo "== tsan: sre_core label under ThreadSanitizer (build-tsan/) =="
  cmake --preset tsan >/dev/null
  cmake --build --preset tsan -j"$JOBS"
  ctest --preset tsan -j"$JOBS"
  echo "== tsan green =="
  exit 0
fi

echo "== tier 1: configure + build + ctest (build/) =="
cmake -B build -S . >/dev/null
cmake --build build -j"$JOBS"
ctest --test-dir build --output-on-failure -j"$JOBS"

if [[ "${TVS_SKIP_ASAN:-0}" == "1" ]]; then
  echo "== sanitizer pass skipped (TVS_SKIP_ASAN=1) =="
  exit 0
fi

echo "== sanitizers: asan+ubsan preset (build-asan/) =="
cmake --preset asan >/dev/null
cmake --build --preset asan -j"$JOBS"
ctest --preset asan -j"$JOBS"

echo "== CI green =="
