// trace_dump: run one Huffman scenario with the trace recorder attached and
// emit the artifacts — Chrome trace-event JSON (open in chrome://tracing or
// ui.perfetto.dev), a Graphviz DOT of the observed dynamic DFG, and an
// ASCII per-CPU utilization timeline on stdout.
//
//   $ ./trace_dump [txt|bmp|pdf] [out_prefix] [bytes]
//   $ dot -Tsvg out.dfg.dot -o dfg.svg
#include <cstdio>
#include <fstream>
#include <string>

#include "pipeline/driver.h"
#include "trace/exporters.h"
#include "trace/recorder.h"

namespace {

void write_text(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  out << content;
  if (!out) {
    throw std::runtime_error("trace_dump: cannot write " + path);
  }
  std::printf("wrote %s (%zu bytes)\n", path.c_str(), content.size());
}

}  // namespace

int main(int argc, char** argv) {
  wl::FileKind kind = wl::FileKind::Txt;
  if (argc > 1) {
    const std::string arg = argv[1];
    if (arg == "bmp") kind = wl::FileKind::Bmp;
    if (arg == "pdf") kind = wl::FileKind::Pdf;
  }
  const std::string prefix = argc > 2 ? argv[2] : "/tmp/tvs_trace";

  auto cfg = pipeline::RunConfig::x86_disk(kind, sre::DispatchPolicy::Balanced);
  cfg.bytes = 512 * 1024;  // small enough that the DOT stays readable
  if (argc > 3) {
    try {
      cfg.bytes = std::stoull(argv[3]);
    } catch (const std::exception&) {
      std::fprintf(stderr, "trace_dump: bad byte count '%s'\n", argv[3]);
      return 2;
    }
  }
  cfg.platform = sim::PlatformConfig::x86(8);

  tracelog::Recorder recorder;
  try {
    const auto result = pipeline::run_sim(cfg, &recorder);
    pipeline::verify_roundtrip(result);
  } catch (const std::exception& e) {
    // Still emit whatever was recorded — a partial trace of a failed run is
    // exactly when you want the artifacts. The exporters tolerate empty or
    // truncated recordings.
    std::fprintf(stderr, "trace_dump: run failed: %s\n", e.what());
  }

  std::printf("scenario: %s — %zu tasks recorded, %zu executed, %zu aborted, "
              "%zu epochs\n",
              cfg.label().c_str(), recorder.task_count(),
              recorder.executed_count(), recorder.aborted_count(),
              recorder.epochs().size());

  write_text(prefix + ".chrome.json", tracelog::to_chrome_trace(recorder));
  write_text(prefix + ".dfg.dot", tracelog::to_dot(recorder));

  std::printf("\nper-CPU utilization (virtual time):\n%s",
              tracelog::utilization_timeline(recorder).c_str());
  return 0;
}
