// trace_dump: run one Huffman scenario with the trace recorder attached and
// emit the artifacts — Chrome trace-event JSON (open in chrome://tracing or
// ui.perfetto.dev), a Graphviz DOT of the observed dynamic DFG, and an
// ASCII per-CPU utilization timeline on stdout.
//
//   $ ./trace_dump [txt|bmp|pdf] [out_prefix] [bytes]
//   $ dot -Tsvg out.dfg.dot -o dfg.svg
//
// Flight mode: decode a flight-recorder binary dump (.tvsf, written by
// `tvsc serve --flight-recorder=<dir>` or Recorder::dump_binary) into a
// summary plus Chrome trace JSON.
//
//   $ ./trace_dump --flight flight.tvsf [out_prefix]
#include <algorithm>
#include <array>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "flight/export.h"
#include "flight/record.h"
#include "pipeline/driver.h"
#include "trace/exporters.h"
#include "trace/recorder.h"

namespace {

void write_text(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  out << content;
  if (!out) {
    throw std::runtime_error("trace_dump: cannot write " + path);
  }
  std::printf("wrote %s (%zu bytes)\n", path.c_str(), content.size());
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("trace_dump: cannot read " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return std::move(buf).str();
}

int dump_flight(const std::string& path, const std::string& prefix) {
  const flight::Dump dump = flight::read_binary(read_file(path));

  constexpr std::array<const char*, 15> kKindNames = {
      "none",           "task-created",     "task-dispatched",
      "task-finished",  "epoch-opened",     "epoch-committed",
      "epoch-aborted",  "rollback-cascade", "check-verdict",
      "prediction",     "predictor-charged", "speculation-gated",
      "fault-injected", "session-state",    "attribution"};
  std::array<std::size_t, 15> by_kind{};
  std::uint64_t t_min = ~std::uint64_t{0}, t_max = 0;
  for (const auto& r : dump.records) {
    const auto k = static_cast<std::size_t>(r.kind);
    if (k < by_kind.size()) ++by_kind[k];
    if (r.t_us != 0) {
      t_min = std::min(t_min, r.t_us);
      t_max = std::max(t_max, r.t_us);
    }
  }
  std::printf("%s: %zu records, %zu interned names", path.c_str(),
              dump.records.size(), dump.names.size());
  if (t_max != 0) {
    std::printf(", span %llu..%llu us",
                static_cast<unsigned long long>(t_min),
                static_cast<unsigned long long>(t_max));
  }
  std::printf("\n");
  for (std::size_t k = 0; k < by_kind.size(); ++k) {
    if (by_kind[k] != 0) {
      std::printf("  %-18s %zu\n", kKindNames[k], by_kind[k]);
    }
  }

  write_text(prefix + ".chrome.json",
             flight::to_chrome_trace(dump.records, dump.names));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::string(argv[1]) == "--flight") {
    if (argc < 3) {
      std::fprintf(stderr,
                   "usage: trace_dump --flight <file.tvsf> [out_prefix]\n");
      return 2;
    }
    const std::string prefix = argc > 3 ? argv[3] : "/tmp/tvs_flight";
    try {
      return dump_flight(argv[2], prefix);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "trace_dump: %s\n", e.what());
      return 1;
    }
  }

  wl::FileKind kind = wl::FileKind::Txt;
  if (argc > 1) {
    const std::string arg = argv[1];
    if (arg == "bmp") kind = wl::FileKind::Bmp;
    if (arg == "pdf") kind = wl::FileKind::Pdf;
  }
  const std::string prefix = argc > 2 ? argv[2] : "/tmp/tvs_trace";

  auto cfg = pipeline::RunConfig::x86_disk(kind, sre::DispatchPolicy::Balanced);
  cfg.bytes = 512 * 1024;  // small enough that the DOT stays readable
  if (argc > 3) {
    try {
      cfg.bytes = std::stoull(argv[3]);
    } catch (const std::exception&) {
      std::fprintf(stderr, "trace_dump: bad byte count '%s'\n", argv[3]);
      return 2;
    }
  }
  cfg.platform = sim::PlatformConfig::x86(8);

  tracelog::Recorder recorder;
  try {
    const auto result = pipeline::run_sim(cfg, &recorder);
    pipeline::verify_roundtrip(result);
  } catch (const std::exception& e) {
    // Still emit whatever was recorded — a partial trace of a failed run is
    // exactly when you want the artifacts. The exporters tolerate empty or
    // truncated recordings.
    std::fprintf(stderr, "trace_dump: run failed: %s\n", e.what());
  }

  std::printf("scenario: %s — %zu tasks recorded, %zu executed, %zu aborted, "
              "%zu epochs\n",
              cfg.label().c_str(), recorder.task_count(),
              recorder.executed_count(), recorder.aborted_count(),
              recorder.epochs().size());

  write_text(prefix + ".chrome.json", tracelog::to_chrome_trace(recorder));
  write_text(prefix + ".dfg.dot", tracelog::to_dot(recorder));

  std::printf("\nper-CPU utilization (virtual time):\n%s",
              tracelog::utilization_timeline(recorder).c_str());
  return 0;
}
