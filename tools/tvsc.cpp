// tvsc: a real command-line compressor built on the speculative pipeline —
// the "downstream user" artifact. Compresses/decompresses actual files on
// disk in the TVSH container format, running the threaded runtime with
// speculation across the file's natural block stream.
//
//   tvsc c <input> <output.tvsh>   compress
//   tvsc d <input.tvsh> <output>   decompress
//   tvsc t <input.tvsh>            integrity test (decode + report)
//   tvsc serve <inputs...>         compress many files as concurrent
//                                  sessions on one shared worker fleet
//                                  (src/serve); writes <input>.tvsh each
//
// Observability flags (compress mode):
//   --metrics=prom|json|dash   final snapshot to stdout (prom/json) or a
//                              live one-line dashboard on stderr (dash)
//   --metrics-interval=<ms>    sampler tick period (default 50 ms)
//   --report=<dir>             write a run-report bundle (json/md/prom)
//
// Serving flags (serve mode):
//   --workers=<n>              shared fleet size (default 8)
//   --concurrent=<n>           sessions running at once (default 4)
//   --metrics=prom|json        serving-metrics snapshot on exit
//   --flight-recorder=<dir>    arm the always-on flight recorder; writes
//                              flight.tvsf + flight.trace.json into <dir>
//                              on exit and automatic post-mortem dumps
//                              there for Failed/Shed sessions
//   --flight-window=<s>        recorder retention window in seconds
//                              (default 30; post-mortems keep the last
//                              min(window, 10) seconds)
//   --control                  enable the adaptive control plane: a control
//                              thread samples serving metrics and retunes
//                              admission limits and per-session speculation
//                              knobs live (docs/control-plane.md)
//   --control-interval=<ms>    controller sampling period (default 50 ms;
//                              knobs dwell for 4 intervals after a move)
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "flight/recorder.h"

#include "huffman/stream_format.h"
#include "io/block_source.h"
#include "metrics/exporters.h"
#include "metrics/observer.h"
#include "metrics/registry.h"
#include "metrics/report.h"
#include "metrics/sampler.h"
#include "pipeline/driver.h"
#include "pipeline/huffman_pipeline.h"
#include "serve/session_manager.h"
#include "sre/threaded_executor.h"
#include "stats/summary.h"

namespace {

struct CliOptions {
  std::string metrics;          ///< "", "prom", "json" or "dash"
  std::uint64_t interval_ms = 50;
  std::string report_dir;       ///< "" = no report bundle
  unsigned workers = 8;         ///< serve mode: shared fleet size
  std::size_t concurrent = 4;   ///< serve mode: running-session window
  std::string flight_dir;       ///< "" = flight recorder off
  std::uint64_t flight_window_s = 30;  ///< recorder retention (seconds)
  bool control = false;         ///< serve mode: adaptive control plane
  std::uint64_t control_interval_ms = 50;  ///< controller sampling period
};

int usage() {
  std::fputs(
      "usage:\n"
      "  tvsc c <input> <output.tvsh>   compress\n"
      "  tvsc d <input.tvsh> <output>   decompress\n"
      "  tvsc t <input.tvsh>            integrity test\n"
      "  tvsc serve <inputs...>         compress many files concurrently;\n"
      "                                 writes <input>.tvsh each\n"
      "flags (compress):\n"
      "  --metrics=prom|json|dash       metrics snapshot / live dashboard\n"
      "  --metrics-interval=<ms>        sampler period (default 50)\n"
      "  --report=<dir>                 write run-report bundle into <dir>\n"
      "flags (serve):\n"
      "  --workers=<n>                  shared fleet size (default 8)\n"
      "  --concurrent=<n>               running-session window (default 4)\n"
      "  --flight-recorder=<dir>        arm the flight recorder; traces and\n"
      "                                 post-mortems land in <dir>\n"
      "  --flight-window=<s>            recorder retention (default 30 s)\n"
      "  --control                      adaptive control plane: retune\n"
      "                                 admission + speculation knobs live\n"
      "  --control-interval=<ms>        controller sampling period "
      "(default 50)\n",
      stderr);
  return 2;
}

int compress_file(const std::string& in_path, const std::string& out_path,
                  const CliOptions& cli) {
  auto data = huff::read_file(in_path);
  const std::size_t original = data.size();
  const bool want_metrics = !cli.metrics.empty() || !cli.report_dir.empty();

  // Local files are all-available; the disk arrival model still paces the
  // first pass so speculation has something to hide.
  sio::BlockSource src(std::move(data), sio::kDefaultBlockSize,
                       std::make_shared<sio::DiskArrival>(2));

  pipeline::RunConfig cfg = pipeline::RunConfig::x86_disk(
      wl::FileKind::Txt, sre::DispatchPolicy::Balanced);
  sre::Runtime rt(cfg.policy);

  metrics::Registry reg;
  metrics::MetricsObserver mobs(reg);
  if (want_metrics) rt.set_observer(&mobs);

  sre::ThreadedExecutor::Options topts;
  topts.workers = 8;
  topts.arrival_time_scale = 0.0;
  if (want_metrics) {
    topts.worker_start_hook = [](unsigned ix) {
      metrics::bind_shard(ix % metrics::kShards);
    };
  }
  sre::ThreadedExecutor ex(rt, topts);
  pipeline::HuffmanPipeline pl(rt, src, cfg);
  src.for_each_arrival([&](std::size_t i, sio::Micros at) {
    ex.schedule_arrival(at, [&pl, i](std::uint64_t now) {
      pl.on_block_arrival(i, now);
    });
  });

  metrics::Sampler sampler;
  if (want_metrics) {
    pipeline::install_standard_series(sampler, rt, pl, &reg);
    if (cli.metrics == "dash") {
      sampler.set_tick_hook([&reg](const metrics::Sampler::Sample& s) {
        std::fprintf(stderr, "\r%s",
                     metrics::dashboard_line(reg.snapshot(), s.t_us).c_str());
        std::fflush(stderr);
      });
    }
    sampler.start(cli.interval_ms * 1000);
  }
  ex.run();
  if (want_metrics) {
    sampler.stop();
    sampler.tick(ex.now_us());
    sampler.clear_series();
    if (cli.metrics == "dash") std::fputc('\n', stderr);
  }
  pl.validate_complete();

  const auto container = pl.assemble_output();
  huff::write_file(out_path, container);
  std::fprintf(stderr,
               "%s: %zu -> %zu bytes (%.1f%%), %zu blocks, speculation %s, "
               "%llu rollback(s)\n",
               out_path.c_str(), original, container.size(),
               original == 0 ? 0.0
                             : 100.0 * static_cast<double>(container.size()) /
                                   static_cast<double>(original),
               src.n_blocks(),
               pl.speculation_committed() ? "committed" : "off",
               static_cast<unsigned long long>(pl.rollbacks()));

  if (cli.metrics == "prom") {
    std::fputs(metrics::to_prometheus(reg.snapshot()).c_str(), stdout);
  } else if (cli.metrics == "json") {
    std::fputs(metrics::to_json(reg.snapshot(), sampler).c_str(), stdout);
    std::fputc('\n', stdout);
  } else if (cli.metrics == "dash") {
    std::fprintf(stderr, "%s\n",
                 metrics::dashboard_line(reg.snapshot(), ex.now_us()).c_str());
  }

  if (!cli.report_dir.empty()) {
    report::RunInfo info;
    info.scenario = "tvsc c " + in_path;
    info.engine = "threaded";
    info.makespan_us = rt.counters().total_runtime_us;
    info.blocks = src.n_blocks();
    const stats::Summary lat = stats::summarize(pl.trace().latencies());
    info.avg_latency_us = lat.mean;
    info.p95_latency_us = lat.p95;
    info.max_latency_us = lat.max;
    info.spec_committed = pl.speculation_committed();
    info.rollbacks = pl.rollbacks();
    info.gate_denials = pl.gate_denials();
    info.wasted_encodes = pl.trace().wasted_encodes();
    info.wait_discarded = pl.wait_discarded();
    info.input_bytes = original;
    info.output_bits = pl.output_bits();
    info.best_predictor = pl.best_predictor();
    info.counters = rt.counters();
    info.predictors = pl.predictor_scoreboard();
    const report::RunReport rep = report::make_report(info, &reg, &sampler);
    for (const auto& path : report::write_bundle(rep, cli.report_dir)) {
      std::fprintf(stderr, "report: %s\n", path.c_str());
    }
  }
  return 0;
}

/// Satellite observability: per-priority latency percentiles plus the
/// attribution breakdown, printed at the end of every serve run.
void print_serve_summary(const std::vector<serve::SessionStats>& sessions) {
  std::fputs("--- serve summary ---------------------------------------\n",
             stderr);
  for (std::size_t p = 0; p < serve::kPriorities; ++p) {
    const auto prio = static_cast<serve::Priority>(p);
    std::vector<std::uint64_t> lat;
    serve::SessionStats::Attribution sum;
    std::size_t done = 0, shed = 0, failed = 0;
    for (const auto& st : sessions) {
      if (st.priority != prio) continue;
      switch (st.state) {
        case serve::SessionState::Done:
          ++done;
          lat.push_back(st.latency_us());
          break;
        case serve::SessionState::Shed:
          ++shed;
          break;
        case serve::SessionState::Failed:
          ++failed;
          break;
        default:
          break;
      }
      sum.queue_us += st.attribution.queue_us;
      sum.dispatch_us += st.attribution.dispatch_us;
      sum.compute_us += st.attribution.compute_us;
      sum.commit_stall_us += st.attribution.commit_stall_us;
      sum.rollback_waste_us += st.attribution.rollback_waste_us;
    }
    if (done + shed + failed == 0) continue;
    std::sort(lat.begin(), lat.end());
    const auto pct = [&lat](double q) -> double {
      if (lat.empty()) return 0.0;
      const auto ix = static_cast<std::size_t>(
          q * static_cast<double>(lat.size() - 1) + 0.5);
      return static_cast<double>(lat[std::min(ix, lat.size() - 1)]) / 1000.0;
    };
    std::fprintf(stderr,
                 "%-11s %zu done, %zu shed, %zu failed | latency p50 %.1f ms, "
                 "p95 %.1f ms\n",
                 serve::to_string(prio).c_str(), done, shed, failed, pct(0.5),
                 pct(0.95));
    std::fprintf(stderr,
                 "            attribution: queue %.1f ms, dispatch %.1f ms, "
                 "compute %.1f ms, commit-stall %.1f ms, "
                 "rollback-waste %.1f ms\n",
                 static_cast<double>(sum.queue_us) / 1000.0,
                 static_cast<double>(sum.dispatch_us) / 1000.0,
                 static_cast<double>(sum.compute_us) / 1000.0,
                 static_cast<double>(sum.commit_stall_us) / 1000.0,
                 static_cast<double>(sum.rollback_waste_us) / 1000.0);
  }
}

int serve_files(const std::vector<std::string>& paths, const CliOptions& cli) {
  metrics::Registry reg;

  std::unique_ptr<flight::Recorder> flight;
  if (!cli.flight_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(cli.flight_dir, ec);
    if (ec) {
      std::fprintf(stderr, "tvsc: cannot create %s: %s\n",
                   cli.flight_dir.c_str(), ec.message().c_str());
      return 2;
    }
    flight::Recorder::Options fopts;
    fopts.window_us = cli.flight_window_s * 1'000'000;
    fopts.post_mortem_dir = cli.flight_dir;
    fopts.post_mortem_window_us =
        std::min<std::uint64_t>(fopts.window_us, 10'000'000);
    flight = std::make_unique<flight::Recorder>(fopts);
    flight->start();
  }

  serve::ServiceConfig scfg;
  scfg.workers = cli.workers;
  scfg.max_concurrent = cli.concurrent;
  scfg.registry = cli.metrics.empty() ? nullptr : &reg;
  scfg.per_session_metrics = !cli.metrics.empty();
  scfg.flight = flight.get();
  if (cli.control) {
    scfg.control.enabled = true;
    scfg.control.interval_us = cli.control_interval_ms * 1'000;
    scfg.control.min_dwell_us = 4 * scfg.control.interval_us;
  }

  serve::SessionManager mgr(scfg);

  std::vector<serve::SessionId> ids;
  ids.reserve(paths.size());
  for (const auto& path : paths) {
    serve::SessionConfig sc;
    sc.name = path;
    sc.run = pipeline::RunConfig::x86_disk(wl::FileKind::Txt,
                                           sre::DispatchPolicy::Balanced);
    sc.run.input_path = path;
    const auto outcome = mgr.submit(std::move(sc));
    if (!outcome.accepted) {
      std::fprintf(stderr, "tvsc: %s shed at submit (%s)\n", path.c_str(),
                   outcome.shed_reason.c_str());
      continue;
    }
    ids.push_back(outcome.id);
  }

  int rc = 0;
  std::size_t total_blocks = 0;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const pipeline::RunResult* result = mgr.wait(ids[i]);
    const auto st = mgr.stats(ids[i]);
    if (result == nullptr) {
      const bool failed = st.state == serve::SessionState::Failed;
      std::fprintf(stderr, "tvsc: %s %s (%s)\n", st.name.c_str(),
                   failed ? "failed" : "shed",
                   failed ? st.error.c_str() : st.shed_reason.c_str());
      rc = 1;
      continue;
    }
    const std::string out_path = st.name + ".tvsh";
    huff::write_file(out_path, result->container);
    total_blocks += result->trace.size();
    std::fprintf(stderr,
                 "%s: %zu -> %zu bytes, %.1f ms latency, speculation %s, "
                 "%llu rollback(s)\n",
                 out_path.c_str(), result->input.size(),
                 result->container.size(),
                 static_cast<double>(st.latency_us()) / 1000.0,
                 result->spec_committed ? "committed" : "off",
                 static_cast<unsigned long long>(result->rollbacks));
  }
  mgr.drain();
  print_serve_summary(mgr.all_sessions());
  if (cli.control) {
    const auto cs = mgr.control_status();
    std::fprintf(
        stderr,
        "control: window %zu, bulk queue cap %zu, %llu admission retune(s), "
        "%llu speculation retune(s)\n",
        cs.max_concurrent, cs.bulk_queue_cap,
        static_cast<unsigned long long>(cs.admission_retunes),
        static_cast<unsigned long long>(cs.spec_retunes));
  }
  {
    // Steady-path allocation observability (tvs_alloc_*): encode output is
    // bump-allocated from epoch arenas, so chunk mallocs per block should
    // sit near zero once the runtime's chunk pool is warm.
    const sre::ArenaStats alloc = mgr.runtime().arena_stats();
    std::fprintf(
        stderr,
        "arena: %llu bump allocs (%llu KiB) over %zu blocks — %llu chunk "
        "mallocs (%.4f/block), %llu recycled\n",
        static_cast<unsigned long long>(alloc.allocs),
        static_cast<unsigned long long>(alloc.bytes / 1024), total_blocks,
        static_cast<unsigned long long>(alloc.chunks_new),
        total_blocks == 0
            ? 0.0
            : static_cast<double>(alloc.chunks_new) /
                  static_cast<double>(total_blocks),
        static_cast<unsigned long long>(alloc.chunks_reused));
  }

  if (flight) {
    flight->stop();
    const std::string bin = cli.flight_dir + "/flight.tvsf";
    const std::string json = cli.flight_dir + "/flight.trace.json";
    if (flight->dump_binary(bin)) {
      std::fprintf(stderr, "flight: %s\n", bin.c_str());
    } else {
      std::fprintf(stderr, "tvsc: failed to write %s\n", bin.c_str());
    }
    if (flight->dump_chrome_trace(json)) {
      std::fprintf(stderr, "flight: %s\n", json.c_str());
    } else {
      std::fprintf(stderr, "tvsc: failed to write %s\n", json.c_str());
    }
  }

  if (cli.metrics == "prom") {
    std::fputs(metrics::to_prometheus(reg.snapshot()).c_str(), stdout);
  } else if (cli.metrics == "json") {
    std::fputs(metrics::to_json(reg.snapshot()).c_str(), stdout);
    std::fputc('\n', stdout);
  }
  return rc;
}

int decompress_file(const std::string& in_path, const std::string& out_path) {
  const auto container = huff::read_file(in_path);
  const auto data = huff::decompress_buffer(container);
  huff::write_file(out_path, data);
  std::printf("%s: %zu -> %zu bytes\n", out_path.c_str(), container.size(),
              data.size());
  return 0;
}

int test_file(const std::string& in_path) {
  const auto container = huff::read_file(in_path);
  const auto s = huff::deserialize(container);
  const auto data = huff::decompress_buffer(container);
  std::printf("%s: OK (%llu bytes original, %u blocks of %u, %llu payload "
              "bits)\n",
              in_path.c_str(),
              static_cast<unsigned long long>(s.original_bytes), s.n_blocks,
              s.block_size, static_cast<unsigned long long>(s.payload_bits));
  (void)data;
  return 0;
}

bool parse_flag(const std::string& arg, CliOptions& cli) {
  if (arg.rfind("--metrics=", 0) == 0) {
    cli.metrics = arg.substr(10);
    return cli.metrics == "prom" || cli.metrics == "json" ||
           cli.metrics == "dash";
  }
  if (arg.rfind("--metrics-interval=", 0) == 0) {
    try {
      cli.interval_ms = std::stoull(arg.substr(19));
    } catch (const std::exception&) {
      return false;
    }
    return cli.interval_ms > 0;
  }
  if (arg.rfind("--report=", 0) == 0) {
    cli.report_dir = arg.substr(9);
    return !cli.report_dir.empty();
  }
  if (arg.rfind("--workers=", 0) == 0) {
    try {
      cli.workers = static_cast<unsigned>(std::stoul(arg.substr(10)));
    } catch (const std::exception&) {
      return false;
    }
    return cli.workers > 0;
  }
  if (arg.rfind("--concurrent=", 0) == 0) {
    try {
      cli.concurrent = std::stoull(arg.substr(13));
    } catch (const std::exception&) {
      return false;
    }
    return cli.concurrent > 0;
  }
  if (arg.rfind("--flight-recorder=", 0) == 0) {
    cli.flight_dir = arg.substr(18);
    return !cli.flight_dir.empty();
  }
  if (arg.rfind("--flight-window=", 0) == 0) {
    try {
      cli.flight_window_s = std::stoull(arg.substr(16));
    } catch (const std::exception&) {
      return false;
    }
    return cli.flight_window_s > 0;
  }
  if (arg == "--control") {
    cli.control = true;
    return true;
  }
  if (arg.rfind("--control-interval=", 0) == 0) {
    try {
      cli.control_interval_ms = std::stoull(arg.substr(19));
    } catch (const std::exception&) {
      return false;
    }
    cli.control = true;
    return cli.control_interval_ms > 0;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions cli;
  std::vector<std::string> pos;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      if (!parse_flag(arg, cli)) {
        std::fprintf(stderr, "tvsc: bad flag %s\n", arg.c_str());
        return usage();
      }
    } else {
      pos.push_back(arg);
    }
  }
  if (pos.size() < 2) return usage();
  const std::string& mode = pos[0];
  try {
    if (mode == "c" && pos.size() == 3) return compress_file(pos[1], pos[2], cli);
    if (mode == "d" && pos.size() == 3) return decompress_file(pos[1], pos[2]);
    if (mode == "t" && pos.size() == 2) return test_file(pos[1]);
    if (mode == "serve" && pos.size() >= 2) {
      return serve_files({pos.begin() + 1, pos.end()}, cli);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "tvsc: %s\n", e.what());
    return 1;
  }
  return usage();
}
