// tvsc: a real command-line compressor built on the speculative pipeline —
// the "downstream user" artifact. Compresses/decompresses actual files on
// disk in the TVSH container format, running the threaded runtime with
// speculation across the file's natural block stream.
//
//   tvsc c <input> <output.tvsh>   compress
//   tvsc d <input.tvsh> <output>   decompress
//   tvsc t <input.tvsh>            integrity test (decode + report)
//   tvsc serve <inputs...>         compress many files as concurrent
//                                  sessions on one shared worker fleet
//                                  (src/serve); writes <input>.tvsh each
//   tvsc served                    distributed node agent: serve a local
//                                  SessionManager over the framed RPC
//                                  protocol (src/dist); routers dial in
//   tvsc route <inputs...>         distributed client+router: shard the
//                                  inputs across --node= agents with
//                                  spill-before-shed placement; writes
//                                  <input>.tvsh each
//
// Observability flags (compress mode):
//   --metrics=prom|json|dash   final snapshot to stdout (prom/json) or a
//                              live one-line dashboard on stderr (dash)
//   --metrics-interval=<ms>    sampler tick period (default 50 ms)
//   --report=<dir>             write a run-report bundle (json/md/prom)
//
// Serving flags (serve mode):
//   --workers=<n>              shared fleet size (default 8)
//   --concurrent=<n>           sessions running at once (default 4)
//   --metrics=prom|json        serving-metrics snapshot on exit
//   --flight-recorder=<dir>    arm the always-on flight recorder; writes
//                              flight.tvsf + flight.trace.json into <dir>
//                              on exit and automatic post-mortem dumps
//                              there for Failed/Shed sessions
//   --flight-window=<s>        recorder retention window in seconds
//                              (default 30; post-mortems keep the last
//                              min(window, 10) seconds)
//   --control                  enable the adaptive control plane: a control
//                              thread samples serving metrics and retunes
//                              admission limits and per-session speculation
//                              knobs live (docs/control-plane.md)
//   --control-interval=<ms>    controller sampling period (default 50 ms;
//                              knobs dwell for 4 intervals after a move)
//
// Distributed flags:
//   served: --port=<p> (0 = pick free), --port-file=<path> (write the
//   bound port for scripted discovery), --name=<node>, --once (exit after
//   the router disconnects), --heartbeat=<ms>, plus the serve-mode fleet
//   flags (--workers/--concurrent).
//   route: --node=host:port (repeatable, one per agent).
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "dist/node_agent.h"
#include "dist/router.h"
#include "flight/recorder.h"

#include "huffman/stream_format.h"
#include "io/block_source.h"
#include "metrics/exporters.h"
#include "metrics/observer.h"
#include "metrics/registry.h"
#include "metrics/report.h"
#include "metrics/sampler.h"
#include "pipeline/driver.h"
#include "pipeline/huffman_pipeline.h"
#include "serve/session_manager.h"
#include "sre/threaded_executor.h"
#include "stats/summary.h"

namespace {

struct CliOptions {
  std::string metrics;          ///< "", "prom", "json" or "dash"
  std::uint64_t interval_ms = 50;
  std::string report_dir;       ///< "" = no report bundle
  unsigned workers = 8;         ///< serve mode: shared fleet size
  std::size_t concurrent = 4;   ///< serve mode: running-session window
  std::string flight_dir;       ///< "" = flight recorder off
  std::uint64_t flight_window_s = 30;  ///< recorder retention (seconds)
  bool control = false;         ///< serve mode: adaptive control plane
  std::uint64_t control_interval_ms = 50;  ///< controller sampling period
  // Distributed (served / route modes):
  std::uint16_t port = 0;            ///< served: listen port (0 = pick free)
  std::string port_file;             ///< served: write bound port here
  std::string node_name = "node";    ///< served: agent name in the cluster
  bool once = false;                 ///< served: exit after one connection
  std::uint64_t heartbeat_ms = 50;   ///< served: heartbeat interval
  /// served: Bulk admission-queue capacity override (SIZE_MAX = default).
  /// Lets bench/dist_load build a node that is saturated for Bulk.
  std::size_t bulk_cap = static_cast<std::size_t>(-1);
  std::vector<std::string> nodes;    ///< route: host:port per agent
};

int usage() {
  std::fputs(
      "usage:\n"
      "  tvsc c <input> <output.tvsh>   compress\n"
      "  tvsc d <input.tvsh> <output>   decompress\n"
      "  tvsc t <input.tvsh>            integrity test\n"
      "  tvsc serve <inputs...>         compress many files concurrently;\n"
      "                                 writes <input>.tvsh each\n"
      "  tvsc served                    node agent: serve sessions over the\n"
      "                                 framed RPC protocol\n"
      "  tvsc route <inputs...>         shard inputs across --node= agents;\n"
      "                                 writes <input>.tvsh each\n"
      "flags (compress):\n"
      "  --metrics=prom|json|dash       metrics snapshot / live dashboard\n"
      "  --metrics-interval=<ms>        sampler period (default 50)\n"
      "  --report=<dir>                 write run-report bundle into <dir>\n"
      "flags (serve):\n"
      "  --workers=<n>                  shared fleet size (default 8)\n"
      "  --concurrent=<n>               running-session window (default 4)\n"
      "  --flight-recorder=<dir>        arm the flight recorder; traces and\n"
      "                                 post-mortems land in <dir>\n"
      "  --flight-window=<s>            recorder retention (default 30 s)\n"
      "  --control                      adaptive control plane: retune\n"
      "                                 admission + speculation knobs live\n"
      "  --control-interval=<ms>        controller sampling period "
      "(default 50)\n"
      "flags (served):\n"
      "  --port=<p>                     listen port (default 0 = pick free)\n"
      "  --port-file=<path>             write the bound port for discovery\n"
      "  --name=<node>                  agent name (default \"node\")\n"
      "  --once                         exit after the router disconnects\n"
      "  --heartbeat=<ms>               heartbeat interval (default 50)\n"
      "  --bulk-cap=<n>                 Bulk admission-queue capacity\n"
      "flags (route):\n"
      "  --node=host:port               agent to route to (repeatable)\n",
      stderr);
  return 2;
}

int compress_file(const std::string& in_path, const std::string& out_path,
                  const CliOptions& cli) {
  auto data = huff::read_file(in_path);
  const std::size_t original = data.size();
  const bool want_metrics = !cli.metrics.empty() || !cli.report_dir.empty();

  // Local files are all-available; the disk arrival model still paces the
  // first pass so speculation has something to hide.
  sio::BlockSource src(std::move(data), sio::kDefaultBlockSize,
                       std::make_shared<sio::DiskArrival>(2));

  pipeline::RunConfig cfg = pipeline::RunConfig::x86_disk(
      wl::FileKind::Txt, sre::DispatchPolicy::Balanced);
  sre::Runtime rt(cfg.policy);

  metrics::Registry reg;
  metrics::MetricsObserver mobs(reg);
  if (want_metrics) rt.set_observer(&mobs);

  sre::ThreadedExecutor::Options topts;
  topts.workers = 8;
  topts.arrival_time_scale = 0.0;
  if (want_metrics) {
    topts.worker_start_hook = [](unsigned ix) {
      metrics::bind_shard(ix % metrics::kShards);
    };
  }
  sre::ThreadedExecutor ex(rt, topts);
  pipeline::HuffmanPipeline pl(rt, src, cfg);
  src.for_each_arrival([&](std::size_t i, sio::Micros at) {
    ex.schedule_arrival(at, [&pl, i](std::uint64_t now) {
      pl.on_block_arrival(i, now);
    });
  });

  metrics::Sampler sampler;
  if (want_metrics) {
    pipeline::install_standard_series(sampler, rt, pl, &reg);
    if (cli.metrics == "dash") {
      sampler.set_tick_hook([&reg](const metrics::Sampler::Sample& s) {
        std::fprintf(stderr, "\r%s",
                     metrics::dashboard_line(reg.snapshot(), s.t_us).c_str());
        std::fflush(stderr);
      });
    }
    sampler.start(cli.interval_ms * 1000);
  }
  ex.run();
  if (want_metrics) {
    sampler.stop();
    sampler.tick(ex.now_us());
    sampler.clear_series();
    if (cli.metrics == "dash") std::fputc('\n', stderr);
  }
  pl.validate_complete();

  const auto container = pl.assemble_output();
  huff::write_file(out_path, container);
  std::fprintf(stderr,
               "%s: %zu -> %zu bytes (%.1f%%), %zu blocks, speculation %s, "
               "%llu rollback(s)\n",
               out_path.c_str(), original, container.size(),
               original == 0 ? 0.0
                             : 100.0 * static_cast<double>(container.size()) /
                                   static_cast<double>(original),
               src.n_blocks(),
               pl.speculation_committed() ? "committed" : "off",
               static_cast<unsigned long long>(pl.rollbacks()));

  if (cli.metrics == "prom") {
    std::fputs(metrics::to_prometheus(reg.snapshot()).c_str(), stdout);
  } else if (cli.metrics == "json") {
    std::fputs(metrics::to_json(reg.snapshot(), sampler).c_str(), stdout);
    std::fputc('\n', stdout);
  } else if (cli.metrics == "dash") {
    std::fprintf(stderr, "%s\n",
                 metrics::dashboard_line(reg.snapshot(), ex.now_us()).c_str());
  }

  if (!cli.report_dir.empty()) {
    report::RunInfo info;
    info.scenario = "tvsc c " + in_path;
    info.engine = "threaded";
    info.makespan_us = rt.counters().total_runtime_us;
    info.blocks = src.n_blocks();
    const stats::Summary lat = stats::summarize(pl.trace().latencies());
    info.avg_latency_us = lat.mean;
    info.p95_latency_us = lat.p95;
    info.max_latency_us = lat.max;
    info.spec_committed = pl.speculation_committed();
    info.rollbacks = pl.rollbacks();
    info.gate_denials = pl.gate_denials();
    info.wasted_encodes = pl.trace().wasted_encodes();
    info.wait_discarded = pl.wait_discarded();
    info.input_bytes = original;
    info.output_bits = pl.output_bits();
    info.best_predictor = pl.best_predictor();
    info.counters = rt.counters();
    info.predictors = pl.predictor_scoreboard();
    const report::RunReport rep = report::make_report(info, &reg, &sampler);
    for (const auto& path : report::write_bundle(rep, cli.report_dir)) {
      std::fprintf(stderr, "report: %s\n", path.c_str());
    }
  }
  return 0;
}

/// Satellite observability: per-priority latency percentiles plus the
/// attribution breakdown, printed at the end of every serve run.
void print_serve_summary(const std::vector<serve::SessionStats>& sessions) {
  std::fputs("--- serve summary ---------------------------------------\n",
             stderr);
  for (std::size_t p = 0; p < serve::kPriorities; ++p) {
    const auto prio = static_cast<serve::Priority>(p);
    std::vector<std::uint64_t> lat;
    serve::SessionStats::Attribution sum;
    std::size_t done = 0, shed = 0, failed = 0;
    for (const auto& st : sessions) {
      if (st.priority != prio) continue;
      switch (st.state) {
        case serve::SessionState::Done:
          ++done;
          lat.push_back(st.latency_us());
          break;
        case serve::SessionState::Shed:
          ++shed;
          break;
        case serve::SessionState::Failed:
          ++failed;
          break;
        default:
          break;
      }
      sum.queue_us += st.attribution.queue_us;
      sum.dispatch_us += st.attribution.dispatch_us;
      sum.compute_us += st.attribution.compute_us;
      sum.commit_stall_us += st.attribution.commit_stall_us;
      sum.rollback_waste_us += st.attribution.rollback_waste_us;
    }
    if (done + shed + failed == 0) continue;
    std::sort(lat.begin(), lat.end());
    const auto pct = [&lat](double q) -> double {
      if (lat.empty()) return 0.0;
      const auto ix = static_cast<std::size_t>(
          q * static_cast<double>(lat.size() - 1) + 0.5);
      return static_cast<double>(lat[std::min(ix, lat.size() - 1)]) / 1000.0;
    };
    std::fprintf(stderr,
                 "%-11s %zu done, %zu shed, %zu failed | latency p50 %.1f ms, "
                 "p95 %.1f ms\n",
                 serve::to_string(prio).c_str(), done, shed, failed, pct(0.5),
                 pct(0.95));
    std::fprintf(stderr,
                 "            attribution: queue %.1f ms, dispatch %.1f ms, "
                 "compute %.1f ms, commit-stall %.1f ms, "
                 "rollback-waste %.1f ms\n",
                 static_cast<double>(sum.queue_us) / 1000.0,
                 static_cast<double>(sum.dispatch_us) / 1000.0,
                 static_cast<double>(sum.compute_us) / 1000.0,
                 static_cast<double>(sum.commit_stall_us) / 1000.0,
                 static_cast<double>(sum.rollback_waste_us) / 1000.0);
  }
}

int serve_files(const std::vector<std::string>& paths, const CliOptions& cli) {
  metrics::Registry reg;

  std::unique_ptr<flight::Recorder> flight;
  if (!cli.flight_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(cli.flight_dir, ec);
    if (ec) {
      std::fprintf(stderr, "tvsc: cannot create %s: %s\n",
                   cli.flight_dir.c_str(), ec.message().c_str());
      return 2;
    }
    flight::Recorder::Options fopts;
    fopts.window_us = cli.flight_window_s * 1'000'000;
    fopts.post_mortem_dir = cli.flight_dir;
    fopts.post_mortem_window_us =
        std::min<std::uint64_t>(fopts.window_us, 10'000'000);
    flight = std::make_unique<flight::Recorder>(fopts);
    flight->start();
  }

  serve::ServiceConfig scfg;
  scfg.workers = cli.workers;
  scfg.max_concurrent = cli.concurrent;
  scfg.registry = cli.metrics.empty() ? nullptr : &reg;
  scfg.per_session_metrics = !cli.metrics.empty();
  scfg.flight = flight.get();
  if (cli.control) {
    scfg.control.enabled = true;
    scfg.control.interval_us = cli.control_interval_ms * 1'000;
    scfg.control.min_dwell_us = 4 * scfg.control.interval_us;
  }

  serve::SessionManager mgr(scfg);

  std::vector<serve::SessionId> ids;
  ids.reserve(paths.size());
  for (const auto& path : paths) {
    serve::SessionConfig sc;
    sc.name = path;
    sc.run = pipeline::RunConfig::x86_disk(wl::FileKind::Txt,
                                           sre::DispatchPolicy::Balanced);
    sc.run.input_path = path;
    const auto outcome = mgr.submit(std::move(sc));
    if (!outcome.accepted) {
      std::fprintf(stderr, "tvsc: %s shed at submit (%s)\n", path.c_str(),
                   outcome.shed_reason.c_str());
      continue;
    }
    ids.push_back(outcome.id);
  }

  int rc = 0;
  std::size_t total_blocks = 0;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const pipeline::RunResult* result = mgr.wait(ids[i]);
    const auto st = mgr.stats(ids[i]);
    if (result == nullptr) {
      const bool failed = st.state == serve::SessionState::Failed;
      std::fprintf(stderr, "tvsc: %s %s (%s)\n", st.name.c_str(),
                   failed ? "failed" : "shed",
                   failed ? st.error.c_str() : st.shed_reason.c_str());
      rc = 1;
      continue;
    }
    const std::string out_path = st.name + ".tvsh";
    huff::write_file(out_path, result->container);
    total_blocks += result->trace.size();
    std::fprintf(stderr,
                 "%s: %zu -> %zu bytes, %.1f ms latency, speculation %s, "
                 "%llu rollback(s)\n",
                 out_path.c_str(), result->input.size(),
                 result->container.size(),
                 static_cast<double>(st.latency_us()) / 1000.0,
                 result->spec_committed ? "committed" : "off",
                 static_cast<unsigned long long>(result->rollbacks));
  }
  mgr.drain();
  print_serve_summary(mgr.all_sessions());
  {
    // Final load snapshot: the same cheap counters an agent ships in its
    // heartbeats (src/serve/load.h). After drain() the live gauges are
    // zero; the cumulative triple is the run's outcome tally.
    const serve::LoadSnapshot load = mgr.load_snapshot();
    std::fprintf(stderr,
                 "load: %llu done, %llu shed, %llu failed | %zu running, "
                 "%zu queued (cap I/B/K %zu/%zu/%zu), score %.2f\n",
                 static_cast<unsigned long long>(load.done),
                 static_cast<unsigned long long>(load.shed),
                 static_cast<unsigned long long>(load.failed), load.running,
                 load.total_queued(), load.queue_capacity[0],
                 load.queue_capacity[1], load.queue_capacity[2],
                 load.load_score());
  }
  if (cli.control) {
    const auto cs = mgr.control_status();
    std::fprintf(
        stderr,
        "control: window %zu, bulk queue cap %zu, %llu admission retune(s), "
        "%llu speculation retune(s)\n",
        cs.max_concurrent, cs.bulk_queue_cap,
        static_cast<unsigned long long>(cs.admission_retunes),
        static_cast<unsigned long long>(cs.spec_retunes));
  }
  {
    // Steady-path allocation observability (tvs_alloc_*): encode output is
    // bump-allocated from epoch arenas, so chunk mallocs per block should
    // sit near zero once the runtime's chunk pool is warm.
    const sre::ArenaStats alloc = mgr.runtime().arena_stats();
    std::fprintf(
        stderr,
        "arena: %llu bump allocs (%llu KiB) over %zu blocks — %llu chunk "
        "mallocs (%.4f/block), %llu recycled\n",
        static_cast<unsigned long long>(alloc.allocs),
        static_cast<unsigned long long>(alloc.bytes / 1024), total_blocks,
        static_cast<unsigned long long>(alloc.chunks_new),
        total_blocks == 0
            ? 0.0
            : static_cast<double>(alloc.chunks_new) /
                  static_cast<double>(total_blocks),
        static_cast<unsigned long long>(alloc.chunks_reused));
  }

  if (flight) {
    flight->stop();
    const std::string bin = cli.flight_dir + "/flight.tvsf";
    const std::string json = cli.flight_dir + "/flight.trace.json";
    if (flight->dump_binary(bin)) {
      std::fprintf(stderr, "flight: %s\n", bin.c_str());
    } else {
      std::fprintf(stderr, "tvsc: failed to write %s\n", bin.c_str());
    }
    if (flight->dump_chrome_trace(json)) {
      std::fprintf(stderr, "flight: %s\n", json.c_str());
    } else {
      std::fprintf(stderr, "tvsc: failed to write %s\n", json.c_str());
    }
  }

  if (cli.metrics == "prom") {
    std::fputs(metrics::to_prometheus(reg.snapshot()).c_str(), stdout);
  } else if (cli.metrics == "json") {
    std::fputs(metrics::to_json(reg.snapshot()).c_str(), stdout);
    std::fputc('\n', stdout);
  }
  return rc;
}

/// `tvsc served`: run a distributed node agent until the router disconnects
/// (--once) or the process is killed. Scripted callers discover the bound
/// port through --port-file.
int run_served(const CliOptions& cli) {
  dist::NodeAgentOptions opts;
  opts.name = cli.node_name;
  opts.port = cli.port;
  opts.once = cli.once;
  opts.heartbeat_interval_ms = cli.heartbeat_ms;
  opts.service.workers = cli.workers;
  opts.service.max_concurrent = cli.concurrent;
  if (cli.bulk_cap != static_cast<std::size_t>(-1)) {
    opts.service.shed.queue_capacity[static_cast<std::size_t>(
        serve::Priority::Bulk)] = cli.bulk_cap;
  }

  dist::NodeAgent agent(opts);
  agent.start();
  std::fprintf(stderr, "tvsc served[%s]: listening on 127.0.0.1:%u\n",
               cli.node_name.c_str(), static_cast<unsigned>(agent.port()));
  if (!cli.port_file.empty()) {
    std::FILE* f = std::fopen(cli.port_file.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "tvsc: cannot write %s\n", cli.port_file.c_str());
      return 2;
    }
    std::fprintf(f, "%u\n", static_cast<unsigned>(agent.port()));
    std::fclose(f);
  }
  agent.join();
  const serve::LoadSnapshot load = agent.manager().load_snapshot();
  agent.stop();
  std::fprintf(stderr,
               "tvsc served[%s]: exiting — %llu done, %llu shed, %llu "
               "failed\n",
               cli.node_name.c_str(),
               static_cast<unsigned long long>(load.done),
               static_cast<unsigned long long>(load.shed),
               static_cast<unsigned long long>(load.failed));
  return 0;
}

/// `tvsc route`: the distributed counterpart of serve_files — same inputs,
/// same <input>.tvsh outputs, but sessions are sharded across the --node=
/// agents instead of one local SessionManager. Paths must be readable on
/// the serving nodes (loopback deployments share the filesystem).
int route_files(const std::vector<std::string>& paths, const CliOptions& cli) {
  if (cli.nodes.empty()) {
    std::fprintf(stderr, "tvsc: route needs at least one --node=host:port\n");
    return 2;
  }
  dist::Router router;
  for (const auto& hp : cli.nodes) {
    const auto colon = hp.rfind(':');
    if (colon == std::string::npos || colon == 0 || colon + 1 == hp.size()) {
      std::fprintf(stderr, "tvsc: bad --node=%s (want host:port)\n",
                   hp.c_str());
      return 2;
    }
    const std::string host = hp.substr(0, colon);
    const auto port = static_cast<std::uint16_t>(
        std::stoul(hp.substr(colon + 1)));
    router.add_node(host, port);
  }

  std::vector<std::uint64_t> ids;
  ids.reserve(paths.size());
  for (const auto& path : paths) {
    dist::SessionSpec spec;
    spec.name = path;
    spec.input_path = path;
    const auto out = router.submit(std::move(spec));
    if (!out.placed) {
      std::fprintf(stderr, "tvsc: %s shed by router (%s)\n", path.c_str(),
                   out.shed_reason.c_str());
    }
    ids.push_back(out.id);
  }

  int rc = 0;
  for (const auto id : ids) {
    const auto so = router.wait(id);
    if (so.state == dist::WireState::Done) {
      const std::string out_path = so.name + ".tvsh";
      huff::write_file(out_path, so.container);
      std::fprintf(stderr,
                   "%s: %zu bytes via %s, %.1f ms latency, %llu rollback(s)\n",
                   out_path.c_str(), so.container.size(), so.node.c_str(),
                   static_cast<double>(so.latency_us) / 1000.0,
                   static_cast<unsigned long long>(so.rollbacks));
    } else {
      std::fprintf(stderr, "tvsc: %s %s (%s)\n", so.name.c_str(),
                   so.state == dist::WireState::Shed ? "shed" : "failed",
                   so.detail.c_str());
      rc = 1;
    }
  }
  router.drain();

  const auto t = router.totals();
  std::fprintf(stderr,
               "--- route summary ---------------------------------------\n"
               "%llu submitted: %llu routed (%llu spilled), %llu done, "
               "%llu shed (%llu router / %llu node), %llu failed, "
               "%llu node death(s)\n",
               static_cast<unsigned long long>(t.submitted),
               static_cast<unsigned long long>(t.routed),
               static_cast<unsigned long long>(t.spilled),
               static_cast<unsigned long long>(t.done),
               static_cast<unsigned long long>(t.shed_router + t.shed_node),
               static_cast<unsigned long long>(t.shed_router),
               static_cast<unsigned long long>(t.shed_node),
               static_cast<unsigned long long>(t.failed),
               static_cast<unsigned long long>(t.node_deaths));
  for (const auto& n : router.nodes()) {
    std::fprintf(stderr, "node %-11s %s | %llu done, %llu shed, %llu failed\n",
                 n.name.c_str(), n.alive ? "alive" : "DEAD",
                 static_cast<unsigned long long>(n.done),
                 static_cast<unsigned long long>(n.shed),
                 static_cast<unsigned long long>(n.failed));
  }
  return rc;
}

int decompress_file(const std::string& in_path, const std::string& out_path) {
  const auto container = huff::read_file(in_path);
  const auto data = huff::decompress_buffer(container);
  huff::write_file(out_path, data);
  std::printf("%s: %zu -> %zu bytes\n", out_path.c_str(), container.size(),
              data.size());
  return 0;
}

int test_file(const std::string& in_path) {
  const auto container = huff::read_file(in_path);
  const auto s = huff::deserialize(container);
  const auto data = huff::decompress_buffer(container);
  std::printf("%s: OK (%llu bytes original, %u blocks of %u, %llu payload "
              "bits)\n",
              in_path.c_str(),
              static_cast<unsigned long long>(s.original_bytes), s.n_blocks,
              s.block_size, static_cast<unsigned long long>(s.payload_bits));
  (void)data;
  return 0;
}

bool parse_flag(const std::string& arg, CliOptions& cli) {
  if (arg.rfind("--metrics=", 0) == 0) {
    cli.metrics = arg.substr(10);
    return cli.metrics == "prom" || cli.metrics == "json" ||
           cli.metrics == "dash";
  }
  if (arg.rfind("--metrics-interval=", 0) == 0) {
    try {
      cli.interval_ms = std::stoull(arg.substr(19));
    } catch (const std::exception&) {
      return false;
    }
    return cli.interval_ms > 0;
  }
  if (arg.rfind("--report=", 0) == 0) {
    cli.report_dir = arg.substr(9);
    return !cli.report_dir.empty();
  }
  if (arg.rfind("--workers=", 0) == 0) {
    try {
      cli.workers = static_cast<unsigned>(std::stoul(arg.substr(10)));
    } catch (const std::exception&) {
      return false;
    }
    return cli.workers > 0;
  }
  if (arg.rfind("--concurrent=", 0) == 0) {
    try {
      cli.concurrent = std::stoull(arg.substr(13));
    } catch (const std::exception&) {
      return false;
    }
    return cli.concurrent > 0;
  }
  if (arg.rfind("--flight-recorder=", 0) == 0) {
    cli.flight_dir = arg.substr(18);
    return !cli.flight_dir.empty();
  }
  if (arg.rfind("--flight-window=", 0) == 0) {
    try {
      cli.flight_window_s = std::stoull(arg.substr(16));
    } catch (const std::exception&) {
      return false;
    }
    return cli.flight_window_s > 0;
  }
  if (arg == "--control") {
    cli.control = true;
    return true;
  }
  if (arg.rfind("--control-interval=", 0) == 0) {
    try {
      cli.control_interval_ms = std::stoull(arg.substr(19));
    } catch (const std::exception&) {
      return false;
    }
    cli.control = true;
    return cli.control_interval_ms > 0;
  }
  if (arg.rfind("--port=", 0) == 0) {
    try {
      cli.port = static_cast<std::uint16_t>(std::stoul(arg.substr(7)));
    } catch (const std::exception&) {
      return false;
    }
    return true;
  }
  if (arg.rfind("--port-file=", 0) == 0) {
    cli.port_file = arg.substr(12);
    return !cli.port_file.empty();
  }
  if (arg.rfind("--name=", 0) == 0) {
    cli.node_name = arg.substr(7);
    return !cli.node_name.empty();
  }
  if (arg == "--once") {
    cli.once = true;
    return true;
  }
  if (arg.rfind("--heartbeat=", 0) == 0) {
    try {
      cli.heartbeat_ms = std::stoull(arg.substr(12));
    } catch (const std::exception&) {
      return false;
    }
    return cli.heartbeat_ms > 0;
  }
  if (arg.rfind("--bulk-cap=", 0) == 0) {
    try {
      cli.bulk_cap = std::stoull(arg.substr(11));
    } catch (const std::exception&) {
      return false;
    }
    return true;
  }
  if (arg.rfind("--node=", 0) == 0) {
    cli.nodes.push_back(arg.substr(7));
    return !cli.nodes.back().empty();
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions cli;
  std::vector<std::string> pos;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      if (!parse_flag(arg, cli)) {
        std::fprintf(stderr, "tvsc: bad flag %s\n", arg.c_str());
        return usage();
      }
    } else {
      pos.push_back(arg);
    }
  }
  if (pos.empty()) return usage();
  const std::string& mode = pos[0];
  try {
    if (mode == "c" && pos.size() == 3) return compress_file(pos[1], pos[2], cli);
    if (mode == "d" && pos.size() == 3) return decompress_file(pos[1], pos[2]);
    if (mode == "t" && pos.size() == 2) return test_file(pos[1]);
    if (mode == "serve" && pos.size() >= 2) {
      return serve_files({pos.begin() + 1, pos.end()}, cli);
    }
    if (mode == "served" && pos.size() == 1) return run_served(cli);
    if (mode == "route" && pos.size() >= 2) {
      return route_files({pos.begin() + 1, pos.end()}, cli);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "tvsc: %s\n", e.what());
    return 1;
  }
  return usage();
}
