// tvsc: a real command-line compressor built on the speculative pipeline —
// the "downstream user" artifact. Compresses/decompresses actual files on
// disk in the TVSH container format, running the threaded runtime with
// speculation across the file's natural block stream.
//
//   tvsc c <input> <output.tvsh>   compress
//   tvsc d <input.tvsh> <output>   decompress
//   tvsc t <input.tvsh>            integrity test (decode + report)
#include <cstdio>
#include <cstring>
#include <string>

#include "huffman/stream_format.h"
#include "io/block_source.h"
#include "pipeline/huffman_pipeline.h"
#include "sre/threaded_executor.h"

namespace {

int usage() {
  std::fputs(
      "usage:\n"
      "  tvsc c <input> <output.tvsh>   compress\n"
      "  tvsc d <input.tvsh> <output>   decompress\n"
      "  tvsc t <input.tvsh>            integrity test\n",
      stderr);
  return 2;
}

int compress_file(const std::string& in_path, const std::string& out_path) {
  auto data = huff::read_file(in_path);
  if (data.empty()) {
    std::fprintf(stderr, "tvsc: %s is empty\n", in_path.c_str());
    return 1;
  }
  const std::size_t original = data.size();

  // Local files are all-available; the disk arrival model still paces the
  // first pass so speculation has something to hide.
  sio::BlockSource src(std::move(data), sio::kDefaultBlockSize,
                       std::make_shared<sio::DiskArrival>(2));

  pipeline::RunConfig cfg = pipeline::RunConfig::x86_disk(
      wl::FileKind::Txt, sre::DispatchPolicy::Balanced);
  sre::Runtime rt(cfg.policy);
  sre::ThreadedExecutor ex(rt, {.workers = 8, .arrival_time_scale = 0.0});
  pipeline::HuffmanPipeline pl(rt, src, cfg);
  src.for_each_arrival([&](std::size_t i, sio::Micros at) {
    ex.schedule_arrival(at, [&pl, i](std::uint64_t now) {
      pl.on_block_arrival(i, now);
    });
  });
  ex.run();
  pl.validate_complete();

  const auto container = pl.assemble_output();
  huff::write_file(out_path, container);
  std::printf("%s: %zu -> %zu bytes (%.1f%%), %zu blocks, speculation %s, "
              "%llu rollback(s)\n",
              out_path.c_str(), original, container.size(),
              100.0 * static_cast<double>(container.size()) /
                  static_cast<double>(original),
              src.n_blocks(), pl.speculation_committed() ? "committed" : "off",
              static_cast<unsigned long long>(pl.rollbacks()));
  return 0;
}

int decompress_file(const std::string& in_path, const std::string& out_path) {
  const auto container = huff::read_file(in_path);
  const auto data = huff::decompress_buffer(container);
  huff::write_file(out_path, data);
  std::printf("%s: %zu -> %zu bytes\n", out_path.c_str(), container.size(),
              data.size());
  return 0;
}

int test_file(const std::string& in_path) {
  const auto container = huff::read_file(in_path);
  const auto s = huff::deserialize(container);
  const auto data = huff::decompress_buffer(container);
  std::printf("%s: OK (%llu bytes original, %u blocks of %u, %llu payload "
              "bits)\n",
              in_path.c_str(),
              static_cast<unsigned long long>(s.original_bytes), s.n_blocks,
              s.block_size, static_cast<unsigned long long>(s.payload_bits));
  (void)data;
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string mode = argv[1];
  try {
    if (mode == "c" && argc == 4) return compress_file(argv[2], argv[3]);
    if (mode == "d" && argc == 4) return decompress_file(argv[2], argv[3]);
    if (mode == "t" && argc == 3) return test_file(argv[2]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "tvsc: %s\n", e.what());
    return 1;
  }
  return usage();
}
