// Figure 8: per-element latency with 2, 4 and 8 CPUs under slow socket I/O.
//
// Paper shape to reproduce: "Even with large communication delays, latencies
// are still reduced significantly with an increased number of CPUs."
#include <cstdio>

#include "bench_util.h"

int main(int argc, char** argv) {
  const auto csv = benchutil::csv_dir(argc, argv);
  benchutil::init_reports(argc, argv);
  std::printf("Fig. 8: CPU scaling under socket I/O (TXT, balanced)\n");

  const unsigned cpu_counts[] = {2, 4, 8};
  std::vector<benchutil::NamedRun> runs;
  for (unsigned cpus : cpu_counts) {
    auto cfg = pipeline::RunConfig::x86_socket(wl::FileKind::Txt,
                                               sre::DispatchPolicy::Balanced);
    // A faster WAN than Fig. 7's tunnel: arrival spacing comparable to the
    // per-block compute, so CPU capacity actually shapes the latency (this
    // is the regime Fig. 8 argues about — communication delay is large but
    // parallel compute still pays).
    cfg.socket_per_block_us = 250;
    cfg.socket_jitter_us = 120;
    cfg.platform = sim::PlatformConfig::x86(cpus);
    auto result = benchutil::run_reported(
        "fig8/" + std::to_string(cpus) + "cpu", cfg);
    benchutil::verify_run({std::to_string(cpus) + " cpu", result});
    runs.push_back({std::to_string(cpus) + " cpu", std::move(result)});
  }

  benchutil::print_summary_table("Fig. 8: latency vs CPU count", runs);
  if (benchutil::report_dir_ref()) {
    // Scheduler dispatch counters; also exported into the report bundles as
    // tvs_dispatch_pops_total{class=...}. Gated on --report so the default
    // figure output stays byte-stable.
    std::printf("\n--- dispatch pops by class ---\n");
    for (const auto& r : runs) {
      std::printf("  %-6s natural=%llu speculative=%llu control=%llu\n",
                  r.name.c_str(),
                  static_cast<unsigned long long>(r.result.natural_dispatches),
                  static_cast<unsigned long long>(r.result.spec_dispatches),
                  static_cast<unsigned long long>(r.result.control_dispatches));
    }
  }
  benchutil::print_latency_chart(runs);
  if (csv) benchutil::write_latency_csv(*csv, "fig8_cpus.csv", runs);

  // The headline relation: more CPUs → lower latency, even though I/O is
  // the nominal bottleneck.
  for (std::size_t i = 1; i < runs.size(); ++i) {
    const double prev = runs[i - 1].result.avg_latency_us();
    const double cur = runs[i].result.avg_latency_us();
    std::printf("  %s -> %s: avg latency %.0f -> %.0f us (%.1f%%)\n",
                runs[i - 1].name.c_str(), runs[i].name.c_str(), prev, cur,
                (cur - prev) / prev * 100.0);
  }
  return 0;
}
