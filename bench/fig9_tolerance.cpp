// Figure 9 (a-b): the impact of the tolerance margin (1 %, 2 %, 5 %) on
// latency, for TXT and PDF on x86 disk.
//
// Paper shapes to reproduce:
//  * "somewhat surprisingly", raising 1 % → 2 % makes things *worse*: the
//    loose margin lets a bad early guess survive its early checks, so the
//    misprediction is detected late and the rollback is expensive —
//    "the importance of detecting an error early";
//  * at 5 % no rollbacks occur at all (the early tree is simply accepted,
//    trading a few percent of compression for speed), and latency is as
//    good as it gets;
//  * TXT is insensitive (never rolls back at any of these margins).
#include <cstdio>

#include "bench_util.h"

namespace {

void run_panel(wl::FileKind file, const std::optional<std::string>& csv,
               const char* csv_name) {
  const double tolerances[] = {0.01, 0.02, 0.05};
  std::vector<benchutil::NamedRun> runs;
  for (double tol : tolerances) {
    auto cfg = pipeline::RunConfig::x86_disk(file, sre::DispatchPolicy::Balanced);
    cfg.spec.tolerance = tol;
    char name[16];
    std::snprintf(name, sizeof name, "%.0f%%", tol * 100.0);
    auto result = benchutil::run_reported(
        "fig9/" + wl::to_string(file) + "/tol" +
            std::to_string(static_cast<int>(tol * 100.0)),
        cfg);
    benchutil::verify_run({name, result});
    // The committed output may legitimately be suboptimal — but never by
    // more than the tolerance margin (plus the histogram floor).
    const double overhead = pipeline::size_overhead_vs_optimal(result);
    std::printf("  tol %s: compressed-size overhead vs optimal = %.2f%%\n",
                name, overhead * 100.0);
    runs.push_back({name, std::move(result)});
  }

  benchutil::print_summary_table(
      "Fig. 9 (" + wl::to_string(file) + "): tolerance margins", runs);
  benchutil::print_latency_chart(runs);
  if (csv) benchutil::write_latency_csv(*csv, csv_name, runs);
}

}  // namespace

int main(int argc, char** argv) {
  const auto csv = benchutil::csv_dir(argc, argv);
  benchutil::init_reports(argc, argv);
  std::printf("Fig. 9: tolerance margin sweep (balanced, step 1, verify 8th)\n");
  run_panel(wl::FileKind::Txt, csv, "fig9a_txt.csv");
  run_panel(wl::FileKind::Pdf, csv, "fig9b_pdf.csv");
  return 0;
}
