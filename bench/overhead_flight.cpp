// Flight-recorder overhead gate: always-on tracing must be close to free.
//
// Runs the same Huffman configuration on the real threaded engine (sharded
// dispatch, 4+ workers — the serving layer's hot configuration) with the
// flight recorder off and armed. Wall-clock threaded runs are noisy, so the
// design works at it from three sides:
//  * tolerance is pinned high so every epoch commits — rollback count is
//    schedule-dependent, and a run that happens to roll back does genuinely
//    different work, which would swamp a single-digit budget;
//  * off/armed runs are paired within each repetition and the order
//    alternates between repetitions, so machine drift (frequency scaling,
//    cache state) cancels instead of biasing one stack;
//  * the statistic is the median of per-repetition ratios, not a difference
//    of independent means.
//
// Exits non-zero when the median overhead exceeds the budget (default 3 %,
// override with TVS_FLIGHT_OVERHEAD_MAX_PCT — CI relaxes it on shared
// runners). On machines with fewer cores than the worker fleet the run is
// oversubscribed: every context switch lands in the measurement, and the
// per-event recorder cost (~20-40 ns, ~0.2% of a run) is unresolvable under
// the scheduler churn. The default budget widens there — with a printed
// explanation — because the number being gated is instrumentation cost, not
// preemption noise; the env override still wins either way.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "flight/recorder.h"
#include "pipeline/driver.h"
#include "pipeline/run_config.h"

namespace {

using Clock = std::chrono::steady_clock;

double timed_ms(const pipeline::RunConfig& cfg,
                const pipeline::RunOptions& opt) {
  const auto t0 = Clock::now();
  (void)pipeline::run_threaded(cfg, opt);
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  const std::size_t n = v.size();
  return n % 2 == 1 ? v[n / 2] : (v[n / 2 - 1] + v[n / 2]) / 2.0;
}

}  // namespace

int main() {
  constexpr unsigned kWorkers = 4;
  const unsigned cores = std::thread::hardware_concurrency();
  const bool oversubscribed = cores != 0 && cores < kWorkers + 1;

  int reps = oversubscribed ? 15 : 9;  // more reps to fight churn noise
  if (const char* env = std::getenv("TVS_FLIGHT_OVERHEAD_REPS")) {
    reps = std::max(3, std::atoi(env));
  }
  auto cfg = pipeline::RunConfig::x86_disk(wl::FileKind::Txt,
                                           sre::DispatchPolicy::Balanced);
  // Deterministic speculation path: every verification passes, so both
  // stacks execute the same task stream (full event traffic — epochs,
  // checks, predictions — without schedule-dependent rollback work).
  cfg.spec.tolerance = 1e9;

  pipeline::RunOptions base;
  base.workers = kWorkers;
  base.dispatch = sre::DispatchMode::Sharded;
  base.arrival_time_scale = 0.0;  // compute-bound: maximizes event rate

  flight::Recorder recorder;
  recorder.start();
  pipeline::RunOptions armed = base;
  armed.flight = &recorder;

  std::printf("Flight-recorder overhead: threaded sharded, %u workers, "
              "median of %d paired ratios\n",
              base.workers, reps);

  // Warmup: fault in the corpus, code paths and the recorder's rings.
  (void)timed_ms(cfg, base);
  (void)timed_ms(cfg, armed);

  std::vector<double> ratios;
  double off_best = 1e300, armed_best = 1e300;
  for (int i = 0; i < reps; ++i) {
    double off_ms = 0.0, armed_ms = 0.0;
    if (i % 2 == 0) {
      off_ms = timed_ms(cfg, base);
      armed_ms = timed_ms(cfg, armed);
    } else {
      armed_ms = timed_ms(cfg, armed);
      off_ms = timed_ms(cfg, base);
    }
    ratios.push_back(armed_ms / off_ms);
    off_best = std::min(off_best, off_ms);
    armed_best = std::min(armed_best, armed_ms);
    std::printf("  rep %d: off %8.2f ms, armed %8.2f ms (ratio %.4f)\n",
                i + 1, off_ms, armed_ms, armed_ms / off_ms);
  }

  const double med_pct = (median(ratios) - 1.0) * 100.0;
  std::printf("  best off   : %8.2f ms\n", off_best);
  std::printf("  best armed : %8.2f ms\n", armed_best);
  std::printf("  records in window: %zu, dropped: %llu\n",
              recorder.window_size(),
              static_cast<unsigned long long>(recorder.dropped()));
  std::printf("  median paired overhead: %+.2f%%\n", med_pct);

  double max_pct = 3.0;
  if (oversubscribed) {
    std::printf(
        "  note: %u core(s) hosting %u workers + feeder — oversubscribed; "
        "the measurement is dominated by scheduler churn (even a no-op "
        "observer reads ~2%% here), so the gate only guards against "
        "order-of-magnitude blowups: budget widened to 15%%\n",
        cores, base.workers);
    max_pct = 15.0;
  }
  if (const char* env = std::getenv("TVS_FLIGHT_OVERHEAD_MAX_PCT")) {
    max_pct = std::strtod(env, nullptr);
  }

  // The recorder must actually have captured the runs — a 0% "overhead"
  // from a silently-disabled recorder would make the gate meaningless.
  if (recorder.window_size() == 0) {
    std::printf("FAIL: recorder captured no records — gate is vacuous\n");
    return 1;
  }
  if (med_pct > max_pct) {
    std::printf("FAIL: flight-recorder overhead %.2f%% exceeds %.2f%% budget\n",
                med_pct, max_pct);
    return 1;
  }
  std::printf("OK: flight-recorder overhead %.2f%% within %.2f%% budget\n",
              med_pct, max_pct);
  return 0;
}
