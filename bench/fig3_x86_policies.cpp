// Figure 3 (a-d): latency and runtime for TXT/BMP/PDF under the balanced,
// aggressive and conservative dispatching policies on the x86 platform,
// reading from disk, against the non-speculative baseline.
//
// Paper shapes to reproduce:
//  * TXT (no rollbacks): every speculative policy beats non-spec; aggressive
//    and balanced are best.
//  * BMP/PDF (rollbacks): aggressive pays for wasted work; conservative and
//    balanced stay close to (or better than) non-spec.
//  * Balanced is the best overall compromise.
//  * Run times (panel d): proper speculation brings up to ~20 % speedup on
//    TXT; with rollbacks, conservative/balanced roughly match non-spec.
#include <cstdio>

#include "bench_util.h"

namespace {

using benchutil::NamedRun;

std::vector<NamedRun> run_file(wl::FileKind file) {
  const std::vector<std::pair<std::string, sre::DispatchPolicy>> policies = {
      {"non-spec", sre::DispatchPolicy::NonSpeculative},
      {"balanced", sre::DispatchPolicy::Balanced},
      {"aggressive", sre::DispatchPolicy::Aggressive},
      {"conservative", sre::DispatchPolicy::Conservative},
  };
  std::vector<NamedRun> runs;
  for (const auto& [name, policy] : policies) {
    auto cfg = pipeline::RunConfig::x86_disk(file, policy);
    auto result = benchutil::run_reported(
        "fig3/" + wl::to_string(file) + "/" + name, cfg);
    benchutil::verify_run({name, result});
    runs.push_back({name, std::move(result)});
  }
  return runs;
}

}  // namespace

int main(int argc, char** argv) {
  const auto csv = benchutil::csv_dir(argc, argv);
  benchutil::init_reports(argc, argv);
  std::printf("Fig. 3: scheduling policies, x86 platform, disk input\n");
  std::printf("(16 simulated CPUs, 4 KiB blocks, reduce 16:1, offset 64:1,\n");
  std::printf(" speculation step 1, verify every 8th, tolerance 1%%)\n");

  std::vector<std::pair<std::string, double>> runtime_bars;
  const char* panels[] = {"fig3a_txt.csv", "fig3b_bmp.csv", "fig3c_pdf.csv"};
  int panel = 0;
  for (wl::FileKind file : wl::all_kinds()) {
    auto runs = run_file(file);
    benchutil::print_summary_table(
        "Fig. 3 (" + wl::to_string(file) + "): per-block latency", runs);
    benchutil::print_latency_chart(runs);
    if (csv) benchutil::write_latency_csv(*csv, panels[panel], runs);
    for (const auto& r : runs) {
      runtime_bars.emplace_back(wl::to_string(file) + "/" + r.name,
                                static_cast<double>(r.result.makespan_us));
    }
    ++panel;
  }
  benchutil::print_runtime_bars("Fig. 3d: run times", runtime_bars);
  if (csv) {
    stats::CsvWriter w(*csv + "/fig3d_runtimes.csv");
    w.header({"series", "runtime_us"});
    for (const auto& [label, value] : runtime_bars) {
      w.row({label, std::to_string(static_cast<std::uint64_t>(value))});
    }
  }
  return 0;
}
