// A/B ablation: the adaptive control plane vs static speculation tuning on
// a phase-changing workload.
//
// The input is a spliced TXT → BMP → PDF stream: the compression-ratio
// threshold (and therefore the step size a static tuner would pick) changes
// twice mid-run. Static arms pin one SpecConfig for the whole stream; the
// adaptive arm starts from the aggressive baseline and lets the controller
// (src/control) retune restart_min_defer / step_size from the live rollback
// rate, on *virtual* time, so every number below is deterministic — the
// A/B needs no repetition and resolves arbitrarily small gaps (wall-clock
// serving benches cannot; see docs/benchmarks.md on paired ratios).
//
// Acceptance gates (exit non-zero on failure):
//   1. adaptive strictly beats the worst static arm;
//   2. adaptive lands within TVS_ABLATION_TOL_PCT (default 15 %) of the
//      best static arm — oracle-tuned per input, which the adaptive arm
//      must approach with zero per-input tuning;
//   3. a *disabled* controller is bit-identical to an unwired run (same
//      container bytes, same virtual makespan);
//   4. controller sampling overhead — ticks firing, bands never tripped —
//      stays under TVS_OVERHEAD_MAX_PCT (default 2 %) of wall time, the
//      same gate overhead_metrics applies to the metrics stack.
//
// `--smoke` shrinks the corpus for CI; the full run sweeps more data.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "bench_util.h"
#include "control/controller.h"
#include "workload/corpus.h"

namespace {

using Clock = std::chrono::steady_clock;

double timed_ms(const std::function<void()>& fn) {
  const auto t0 = Clock::now();
  fn();
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

/// TXT → BMP → PDF → TXT → …, `segments` splices of `per_segment` bytes:
/// every boundary moves the compression-ratio threshold, so a static tuner
/// faces a fresh rollback risk `segments - 1` times per run.
std::string write_spliced_corpus(std::size_t per_segment,
                                 std::size_t segments) {
  const auto kinds = wl::all_kinds();
  std::vector<std::uint8_t> bytes;
  bytes.reserve(segments * per_segment);
  for (std::size_t i = 0; i < segments; ++i) {
    const auto part =
        wl::make_corpus(kinds[i % kinds.size()], per_segment, /*seed=*/42 + i);
    bytes.insert(bytes.end(), part.begin(), part.end());
  }
  const auto path = std::filesystem::temp_directory_path() /
                    ("tvs_ablation_control_" + std::to_string(per_segment) +
                     "x" + std::to_string(segments) + ".bin");
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  out.close();
  return path.string();
}

pipeline::RunConfig arm_config(const std::string& input,
                               std::uint32_t step_size) {
  auto cfg = pipeline::RunConfig::x86_disk(wl::FileKind::Txt,
                                           sre::DispatchPolicy::Balanced);
  cfg.input_path = input;
  // One estimate per 4 blocks (the paper's 16 is tuned for single-phase
  // inputs): a denser estimate stream, so the speculation health signal has
  // enough resolution for feedback control to act mid-run.
  cfg.ratios.reduce_ratio = 4;
  cfg.spec.step_size = step_size;
  cfg.spec.tolerance = 0.002;
  return cfg;
}

struct Arm {
  std::string name;
  double latency_us = 0.0;
  std::uint64_t makespan_us = 0;
  std::uint64_t rollbacks = 0;
  std::uint64_t retunes = 0;
};

double env_pct(const char* name, double fallback) {
  const char* v = std::getenv(name);
  return (v != nullptr && *v != '\0') ? std::atof(v) : fallback;
}

}  // namespace

int main(int argc, char** argv) {
  benchutil::init_reports(argc, argv);
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") smoke = true;
  }
  const std::size_t per_segment = smoke ? 64 * 1024 : 256 * 1024;
  const std::size_t segments = smoke ? 24 : 48;
  const std::string input = write_spliced_corpus(per_segment, segments);

  std::printf("Ablation: adaptive control plane vs static tuning\n");
  std::printf("(TXT>BMP>PDF cycle, %zu x %zu KiB phases, x86 disk, "
              "balanced%s)\n\n",
              segments, per_segment / 1024, smoke ? ", --smoke" : "");

  // --- Static arms ---------------------------------------------------------
  std::vector<Arm> arms;
  pipeline::RunResult aggressive_res;
  for (const auto& [name, step] :
       std::vector<std::pair<std::string, std::uint32_t>>{
           {"static/aggressive(step=1)", 1},
           {"static/moderate(step=8)", 8},
           {"static/conservative(step=32)", 32}}) {
    const auto res = pipeline::run_sim(arm_config(input, step));
    pipeline::verify_roundtrip(res);
    if (step == 1) aggressive_res = res;
    arms.push_back({name, res.avg_latency_us(), res.makespan_us,
                    res.rollbacks, 0});
  }

  // --- Adaptive arm --------------------------------------------------------
  // Calibrate the controller's time axis and rollback band to this
  // workload's own scale: sample ~100 times per run, call the rollback rate
  // "high" above a quarter of the aggressive arm's disaster rate.
  const auto& aggr = arms[0];
  control::ControlConfig ctl_cfg;
  ctl_cfg.enabled = true;
  ctl_cfg.interval_us = std::max<std::uint64_t>(1, aggr.makespan_us / 100);
  ctl_cfg.min_dwell_us = 3 * ctl_cfg.interval_us;
  if (aggr.rollbacks > 0 && aggr.makespan_us > 0) {
    const double disaster_rate =
        static_cast<double>(aggr.rollbacks) * 1e6 /
        static_cast<double>(aggr.makespan_us);
    ctl_cfg.rollback_rate_high = disaster_rate / 4.0;
    ctl_cfg.rollback_rate_low = disaster_rate / 32.0;
  }
  control::Controller controller(ctl_cfg, {});
  {
    pipeline::RunOptions opt;
    opt.controller = &controller;
    const auto res = pipeline::run_sim(arm_config(input, 1), opt);
    pipeline::verify_roundtrip(res);
    arms.push_back({"adaptive(controller)", res.avg_latency_us(),
                    res.makespan_us, res.rollbacks,
                    controller.stream(1, 0.0, 1).retunes()});
  }

  std::printf("%-30s %12s %12s %10s %8s\n", "arm", "latency-us", "makespan",
              "rollbacks", "retunes");
  for (const Arm& a : arms) {
    std::printf("%-30s %12.1f %12llu %10llu %8llu\n", a.name.c_str(),
                a.latency_us, static_cast<unsigned long long>(a.makespan_us),
                static_cast<unsigned long long>(a.rollbacks),
                static_cast<unsigned long long>(a.retunes));
  }

  const Arm& adaptive = arms.back();
  const auto static_best = *std::min_element(
      arms.begin(), arms.end() - 1,
      [](const Arm& a, const Arm& b) { return a.latency_us < b.latency_us; });
  const auto static_worst = *std::max_element(
      arms.begin(), arms.end() - 1,
      [](const Arm& a, const Arm& b) { return a.latency_us < b.latency_us; });

  int failures = 0;

  // Gate 1: strictly better than the worst static arm.
  if (adaptive.latency_us >= static_worst.latency_us) {
    std::printf("\nFAIL: adaptive (%.1f us) not better than worst static "
                "%s (%.1f us)\n",
                adaptive.latency_us, static_worst.name.c_str(),
                static_worst.latency_us);
    ++failures;
  }

  // Gate 2: within tolerance of the oracle-tuned static arm.
  const double tol_pct = env_pct("TVS_ABLATION_TOL_PCT", 15.0);
  const double vs_best =
      (adaptive.latency_us - static_best.latency_us) /
      static_best.latency_us * 100.0;
  std::printf("\nadaptive vs best static (%s): %+.2f%% (gate %.0f%%), "
              "vs worst: %+.2f%%\n",
              static_best.name.c_str(), vs_best, tol_pct,
              (adaptive.latency_us - static_worst.latency_us) /
                  static_worst.latency_us * 100.0);
  if (vs_best > tol_pct) {
    std::printf("FAIL: adaptive misses the best static arm by more than "
                "%.0f%%\n", tol_pct);
    ++failures;
  }

  // Gate 3: a disabled controller must be bit-identical to an unwired run.
  {
    control::Controller off({}, {});  // enabled = false
    pipeline::RunOptions opt;
    opt.controller = &off;
    const auto res = pipeline::run_sim(arm_config(input, 1), opt);
    if (res.container != aggressive_res.container ||
        res.makespan_us != aggressive_res.makespan_us) {
      std::printf("FAIL: disabled controller perturbed the schedule "
                  "(makespan %llu vs %llu)\n",
                  static_cast<unsigned long long>(res.makespan_us),
                  static_cast<unsigned long long>(aggressive_res.makespan_us));
      ++failures;
    } else {
      std::printf("disabled-controller run: bit-identical (makespan %llu)\n",
                  static_cast<unsigned long long>(res.makespan_us));
    }
  }

  // Gate 4: sampling overhead. Ticks fire at the adaptive cadence but the
  // bands are unreachable, so wall-clock delta is pure sampling cost.
  {
    const int reps = smoke ? 3 : 5;
    auto cfg = arm_config(input, 1);
    control::ControlConfig idle_cfg = ctl_cfg;
    idle_cfg.rollback_rate_high = 1e300;
    idle_cfg.rollback_rate_low = -1.0;

    const std::function<void()> run_off = [&] { (void)pipeline::run_sim(cfg); };
    const std::function<void()> run_ticking = [&] {
      control::Controller idle(idle_cfg, {});
      pipeline::RunOptions opt;
      opt.controller = &idle;
      (void)pipeline::run_sim(cfg, opt);
    };
    run_off();  // warmup
    double off_ms = 1e300, on_ms = 1e300;
    for (int i = 0; i < reps; ++i) {
      off_ms = std::min(off_ms, timed_ms(run_off));
      on_ms = std::min(on_ms, timed_ms(run_ticking));
    }
    const double pct = (on_ms - off_ms) / off_ms * 100.0;
    const double max_pct = env_pct("TVS_OVERHEAD_MAX_PCT", 2.0);
    std::printf("sampling overhead: %8.2f ms -> %8.2f ms (%+.2f%%, gate "
                "%.1f%%)\n", off_ms, on_ms, pct, max_pct);
    if (pct > max_pct) {
      std::printf("FAIL: controller sampling overhead exceeds %.1f%%\n",
                  max_pct);
      ++failures;
    }
  }

  std::filesystem::remove(input);
  if (failures == 0) {
    std::printf("\nablation_control: all gates passed\n");
    return 0;
  }
  std::printf("\nablation_control: %d gate(s) FAILED\n", failures);
  return 1;
}
