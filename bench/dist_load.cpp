// Distributed serving load bench: an in-process dist::Router driving real
// `tvsc served` agent *subprocesses* over loopback TCP — the full
// multi-process wire path, not the in-process shortcut the unit tests take.
//
// Three scenarios:
//
//  * identity — the correctness anchor: the same NonSpeculative specs
//    through router + 2 remote agents and through one local
//    serve::SessionManager must produce byte-identical containers.
//    Reported as a paired-ratio median (per rep, wall_local / wall_dist
//    back to back) plus rollback counts — this host's wall clock cannot
//    resolve gaps under ~±10%, so raw deltas are noise.
//
//  * scaling — the same Balanced-policy session batch through 1 agent vs
//    2 agents, paired per rep; the median wall ratio is the subsystem's
//    scale-out signal.
//
//  * spill — one agent started with --bulk-cap=0 (saturated for Bulk by
//    construction), one with room: every Bulk submit must spill to the
//    roomy node instead of being shed. BENCH_dist.json records the
//    spill/shed counts.
//
// Agents are discovered via --port-file and reaped via --once (they exit
// when the router drains). --tvsc=<path> overrides the agent binary;
// the default resolves ../tools/tvsc next to this bench binary.
// --smoke runs every scenario once, small, in well under 30 s and exits
// nonzero unless identity holds and Bulk spilled instead of shedding.
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "dist/protocol.h"
#include "dist/router.h"
#include "serve/session_manager.h"

namespace {

constexpr unsigned kWorkers = 4;
constexpr std::size_t kConcurrent = 2;

double median(std::vector<double> v) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string default_tvsc() {
  // The bench lives in build/bench/, tvsc in build/tools/.
  std::error_code ec;
  const auto self = std::filesystem::read_symlink("/proc/self/exe", ec);
  if (ec) return "tools/tvsc";
  return (self.parent_path() / ".." / "tools" / "tvsc").lexically_normal()
      .string();
}

struct Agent {
  pid_t pid = -1;
  std::uint16_t port = 0;
};

/// Forks one `tvsc served --once` agent and waits for its port file.
Agent spawn_agent(const std::string& tvsc, const std::string& name,
                  const std::vector<std::string>& extra) {
  const std::string port_file =
      (std::filesystem::temp_directory_path() /
       ("tvs_dist_load." + std::to_string(::getpid()) + "." + name + ".port"))
          .string();
  std::error_code ec;
  std::filesystem::remove(port_file, ec);

  std::vector<std::string> args = {tvsc,      "served",
                                   "--once",  "--name=" + name,
                                   "--port-file=" + port_file,
                                   "--workers=" + std::to_string(kWorkers),
                                   "--concurrent=" + std::to_string(kConcurrent)};
  args.insert(args.end(), extra.begin(), extra.end());

  Agent a;
  a.pid = ::fork();
  if (a.pid == 0) {
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (const auto& s : args) argv.push_back(const_cast<char*>(s.c_str()));
    argv.push_back(nullptr);
    ::execv(tvsc.c_str(), argv.data());
    std::fprintf(stderr, "dist_load: execv %s failed: %s\n", tvsc.c_str(),
                 std::strerror(errno));
    ::_exit(127);
  }
  if (a.pid < 0) {
    std::fprintf(stderr, "dist_load: fork failed\n");
    return a;
  }
  for (int i = 0; i < 200; ++i) {  // up to ~10 s for a cold binary
    std::ifstream f(port_file);
    unsigned port = 0;
    if (f >> port && port != 0) {
      a.port = static_cast<std::uint16_t>(port);
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  std::filesystem::remove(port_file, ec);
  if (a.port == 0) {
    std::fprintf(stderr, "dist_load: agent %s never reported a port\n",
                 name.c_str());
    ::kill(a.pid, SIGKILL);
    ::waitpid(a.pid, nullptr, 0);
    a.pid = -1;
  }
  return a;
}

void reap(std::vector<Agent>& agents) {
  for (auto& a : agents) {
    if (a.pid <= 0) continue;
    // --once agents exit on their own once the router drained; give them a
    // moment, then escalate.
    for (int i = 0; i < 100; ++i) {
      if (::waitpid(a.pid, nullptr, WNOHANG) == a.pid) {
        a.pid = -1;
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    if (a.pid > 0) {
      ::kill(a.pid, SIGKILL);
      ::waitpid(a.pid, nullptr, 0);
      a.pid = -1;
    }
  }
}

dist::SessionSpec make_spec(const std::string& name, serve::Priority p,
                            std::uint64_t seed, std::size_t bytes,
                            sre::DispatchPolicy policy) {
  dist::SessionSpec s;
  s.name = name;
  s.priority = p;
  s.file = wl::FileKind::Txt;
  s.bytes = bytes;
  s.seed = seed;
  s.policy = policy;
  return s;
}

std::vector<dist::SessionSpec> session_batch(std::size_t n, std::size_t bytes,
                                             sre::DispatchPolicy policy) {
  const serve::Priority prios[] = {serve::Priority::Interactive,
                                   serve::Priority::Batch,
                                   serve::Priority::Bulk};
  std::vector<dist::SessionSpec> specs;
  specs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    specs.push_back(make_spec("s" + std::to_string(i), prios[i % 3],
                              /*seed=*/700 + i, bytes, policy));
  }
  return specs;
}

struct RunOut {
  bool ok = false;
  double wall_ms = 0.0;
  std::uint64_t rollbacks = 0;
  std::vector<std::vector<std::uint8_t>> containers;
};

/// The specs through router + n_agents `tvsc served` subprocesses.
RunOut run_distributed(const std::string& tvsc, std::size_t n_agents,
                       const std::vector<dist::SessionSpec>& specs) {
  RunOut out;
  std::vector<Agent> agents;
  for (std::size_t i = 0; i < n_agents; ++i) {
    agents.push_back(
        spawn_agent(tvsc, "node" + std::to_string(i), {}));
    if (agents.back().pid < 0) {
      reap(agents);
      return out;
    }
  }
  {
    dist::Router router;
    for (const auto& a : agents) router.add_node("127.0.0.1", a.port);

    const double t0 = now_ms();
    std::vector<std::uint64_t> ids;
    for (const auto& s : specs) {
      const auto so = router.submit(s);
      if (!so.placed) {
        std::fprintf(stderr, "dist_load: unexpected shed: %s\n",
                     so.shed_reason.c_str());
        reap(agents);
        return out;
      }
      ids.push_back(so.id);
    }
    out.ok = true;
    for (const auto id : ids) {
      const auto so = router.wait(id);
      if (so.state != dist::WireState::Done) {
        std::fprintf(stderr, "dist_load: session %s not Done: %s\n",
                     so.name.c_str(), so.detail.c_str());
        out.ok = false;
        continue;
      }
      out.rollbacks += so.rollbacks;
      out.containers.push_back(so.container);
    }
    out.wall_ms = now_ms() - t0;
    router.drain();
  }  // ~Router closes connections; --once agents exit
  reap(agents);
  return out;
}

/// The same specs through one local SessionManager (same fleet shape as
/// each agent: the single-process baseline of the identity check).
RunOut run_local(const std::vector<dist::SessionSpec>& specs) {
  serve::ServiceConfig cfg;
  cfg.workers = kWorkers;
  cfg.max_concurrent = kConcurrent;
  serve::SessionManager mgr(cfg);

  RunOut out;
  const double t0 = now_ms();
  std::vector<serve::SessionId> ids;
  for (const auto& s : specs) {
    serve::SessionConfig sc;
    sc.name = s.name;
    sc.priority = s.priority;
    sc.run = dist::to_run_config(s);
    const auto o = mgr.submit(std::move(sc));
    if (!o.accepted) return out;
    ids.push_back(o.id);
  }
  out.ok = true;
  for (const auto id : ids) {
    const pipeline::RunResult* r = mgr.wait(id);
    if (r == nullptr) {
      out.ok = false;
      continue;
    }
    out.rollbacks += r->rollbacks;
    out.containers.push_back(r->container);
    mgr.release(id);
  }
  out.wall_ms = now_ms() - t0;
  mgr.drain();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_dist.json";
  std::string tvsc = default_tvsc();
  bool quick = false;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strncmp(argv[i], "--tvsc=", 7) == 0) {
      tvsc = argv[i] + 7;
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    }
  }
  if (!std::filesystem::exists(tvsc)) {
    std::fprintf(stderr, "dist_load: tvsc binary not found at %s "
                 "(pass --tvsc=<path>)\n", tvsc.c_str());
    return 2;
  }

  const std::size_t reps = quick || smoke ? 1 : 3;
  const std::size_t bytes = smoke ? 48 * 1024 : 128 * 1024;
  const std::size_t n_sessions = smoke ? 6 : 12;

  // --- identity: dist(2 agents) vs local, paired per rep -----------------
  std::printf("dist_load: identity — router + 2 served subprocesses vs "
              "local SessionManager (%zu rep(s))\n", reps);
  const auto id_specs =
      session_batch(n_sessions, bytes, sre::DispatchPolicy::NonSpeculative);
  bool identity_ok = true;
  std::vector<double> id_ratios;
  std::uint64_t id_rollbacks_dist = 0, id_rollbacks_local = 0;
  for (std::size_t rep = 0; rep < reps; ++rep) {
    const RunOut d = run_distributed(tvsc, 2, id_specs);
    const RunOut l = run_local(id_specs);
    if (!d.ok || !l.ok || d.containers != l.containers) {
      identity_ok = false;
      std::fprintf(stderr, "dist_load: identity MISMATCH (rep %zu)\n", rep);
    }
    if (d.wall_ms > 0.0) id_ratios.push_back(l.wall_ms / d.wall_ms);
    id_rollbacks_dist += d.rollbacks;
    id_rollbacks_local += l.rollbacks;
  }
  const double id_ratio = median(id_ratios);
  std::printf("  identity_ok=%d  wall(local)/wall(dist) median=%.2f  "
              "rollbacks dist=%llu local=%llu\n",
              identity_ok ? 1 : 0, id_ratio,
              static_cast<unsigned long long>(id_rollbacks_dist),
              static_cast<unsigned long long>(id_rollbacks_local));

  // --- scaling: 1 agent vs 2 agents, paired per rep ----------------------
  std::printf("dist_load: scaling — 1 vs 2 served subprocesses\n");
  const auto sc_specs =
      session_batch(n_sessions, bytes, sre::DispatchPolicy::Balanced);
  bool scaling_ok = true;
  std::vector<double> sc_ratios;
  std::uint64_t sc_rollbacks = 0;
  for (std::size_t rep = 0; rep < reps; ++rep) {
    const RunOut one = run_distributed(tvsc, 1, sc_specs);
    const RunOut two = run_distributed(tvsc, 2, sc_specs);
    scaling_ok = scaling_ok && one.ok && two.ok;
    if (two.wall_ms > 0.0) sc_ratios.push_back(one.wall_ms / two.wall_ms);
    sc_rollbacks += one.rollbacks + two.rollbacks;
  }
  const double sc_ratio = median(sc_ratios);
  std::printf("  ok=%d  wall(1 node)/wall(2 nodes) median=%.2f  "
              "rollbacks=%llu\n",
              scaling_ok ? 1 : 0, sc_ratio,
              static_cast<unsigned long long>(sc_rollbacks));

  // --- spill-before-shed: saturated + roomy node -------------------------
  std::printf("dist_load: spill — one agent with --bulk-cap=0, one with "
              "room\n");
  dist::Router::Totals spill_totals;
  bool spill_ok = false;
  {
    std::vector<Agent> agents;
    agents.push_back(spawn_agent(tvsc, "saturated", {"--bulk-cap=0"}));
    agents.push_back(spawn_agent(tvsc, "roomy", {}));
    if (agents[0].pid >= 0 && agents[1].pid >= 0) {
      dist::Router router;
      router.add_node("127.0.0.1", agents[0].port);
      router.add_node("127.0.0.1", agents[1].port);
      std::vector<std::uint64_t> ids;
      for (std::size_t i = 0; i < n_sessions; ++i) {
        const auto prio = i % 3 == 0 ? serve::Priority::Interactive
                                     : serve::Priority::Bulk;
        const auto so = router.submit(
            make_spec("sp" + std::to_string(i), prio, /*seed=*/900 + i,
                      bytes, sre::DispatchPolicy::Balanced));
        if (so.placed) ids.push_back(so.id);
      }
      spill_ok = true;
      for (const auto id : ids) {
        spill_ok = spill_ok &&
                   router.wait(id).state == dist::WireState::Done;
      }
      router.drain();
      spill_totals = router.totals();
      spill_ok = spill_ok && spill_totals.spilled > 0 &&
                 spill_totals.shed_router == 0 &&
                 spill_totals.shed_node == 0;
    }
    reap(agents);
  }
  std::printf("  ok=%d  submitted=%llu spilled=%llu shed=%llu done=%llu\n",
              spill_ok ? 1 : 0,
              static_cast<unsigned long long>(spill_totals.submitted),
              static_cast<unsigned long long>(spill_totals.spilled),
              static_cast<unsigned long long>(spill_totals.shed_router +
                                              spill_totals.shed_node),
              static_cast<unsigned long long>(spill_totals.done));

  // --- report ------------------------------------------------------------
  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f != nullptr) {
    std::fprintf(f, "{\n  \"benchmark\": \"dist_load\",\n");
    std::fprintf(f,
                 "  \"description\": \"distributed serving: in-process "
                 "router over tvsc served subprocesses on loopback\",\n");
    std::fprintf(f,
                 "  \"identity\": {\"ok\": %s, \"reps\": %zu, "
                 "\"wall_local_over_dist_median\": %.3f, "
                 "\"rollbacks_dist\": %llu, \"rollbacks_local\": %llu},\n",
                 identity_ok ? "true" : "false", reps, id_ratio,
                 static_cast<unsigned long long>(id_rollbacks_dist),
                 static_cast<unsigned long long>(id_rollbacks_local));
    std::fprintf(f,
                 "  \"scaling\": {\"ok\": %s, \"reps\": %zu, "
                 "\"wall_1node_over_2node_median\": %.3f, "
                 "\"rollbacks\": %llu},\n",
                 scaling_ok ? "true" : "false", reps, sc_ratio,
                 static_cast<unsigned long long>(sc_rollbacks));
    std::fprintf(f,
                 "  \"spill\": {\"ok\": %s, \"submitted\": %llu, "
                 "\"spilled\": %llu, \"shed_router\": %llu, "
                 "\"shed_node\": %llu, \"done\": %llu, "
                 "\"node_deaths\": %llu},\n",
                 spill_ok ? "true" : "false",
                 static_cast<unsigned long long>(spill_totals.submitted),
                 static_cast<unsigned long long>(spill_totals.spilled),
                 static_cast<unsigned long long>(spill_totals.shed_router),
                 static_cast<unsigned long long>(spill_totals.shed_node),
                 static_cast<unsigned long long>(spill_totals.done),
                 static_cast<unsigned long long>(spill_totals.node_deaths));
    std::fprintf(f,
                 "  \"headline\": {\"identity_ok\": %s, \"spill_ok\": %s}\n}\n",
                 identity_ok ? "true" : "false", spill_ok ? "true" : "false");
    std::fclose(f);
    std::printf("  wrote %s\n", out_path.c_str());
  } else {
    std::fprintf(stderr, "dist_load: cannot write %s\n", out_path.c_str());
  }

  if (!identity_ok || !scaling_ok || !spill_ok) {
    std::fprintf(stderr, "dist_load: FAIL (see above)\n");
    return 1;
  }
  std::printf("dist_load: OK\n");
  return 0;
}
