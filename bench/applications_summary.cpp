// Cross-application summary: tolerant value speculation on all four
// in-tree pipelines — the paper's claim that the technique "can reveal
// additional vital parallelism opportunities for more applications"
// (conclusion), quantified on one table.
//
// Each row runs natural vs speculative (balanced policy) on the virtual-time
// engine and reports the makespan and average block-latency improvements,
// plus the accuracy cost the tolerance traded away.
#include <cstdio>

#include "anneal/anneal_pipeline.h"
#include "filter/filter_pipeline.h"
#include "filter/fir.h"
#include "filter/iterative_design.h"
#include "kmeans/kmeans_pipeline.h"
#include "pipeline/driver.h"
#include "sim/sim_executor.h"
#include "sre/runtime.h"

namespace {

struct Row {
  const char* name;
  const char* tolerance;
  double natural_makespan;
  double spec_makespan;
  double natural_latency;
  double spec_latency;
  std::uint64_t rollbacks;
  double accuracy_note;  // app-specific accuracy delta, fraction
};

double avg_latency(const stats::BlockTrace& trace) {
  double sum = 0.0;
  for (auto l : trace.latencies()) sum += static_cast<double>(l);
  return sum / static_cast<double>(trace.size());
}

Row huffman_row() {
  const auto base = pipeline::run_sim(pipeline::RunConfig::x86_disk(
      wl::FileKind::Txt, sre::DispatchPolicy::NonSpeculative));
  const auto spec = pipeline::run_sim(pipeline::RunConfig::x86_disk(
      wl::FileKind::Txt, sre::DispatchPolicy::Balanced));
  pipeline::verify_roundtrip(spec);
  return {"huffman (TXT 4MB)",
          "1% compressed size",
          static_cast<double>(base.makespan_us),
          static_cast<double>(spec.makespan_us),
          base.avg_latency_us(),
          spec.avg_latency_us(),
          spec.rollbacks,
          pipeline::size_overhead_vs_optimal(spec)};
}

Row filter_row() {
  const auto input = filt::make_signal(128 * 1024, 7, 0.7);
  const auto target = filt::make_signal(128 * 1024, 7, 0.0);
  filt::FilterPipelineConfig cfg;
  cfg.taps = 16;
  cfg.iterations = 14;
  cfg.spec.tolerance = 0.30;
  cfg.spec.verify = tvs::VerificationPolicy::every_kth(3);

  auto run = [&](bool speculation) {
    sre::Runtime rt(speculation ? sre::DispatchPolicy::Balanced
                                : sre::DispatchPolicy::NonSpeculative);
    sim::SimExecutor ex(rt, sim::PlatformConfig::x86(16));
    filt::FilterPipeline pl(rt, input, target, cfg, speculation);
    pl.start();
    ex.run();
    pl.validate_complete();
    return std::tuple{static_cast<double>(ex.makespan_us()),
                      avg_latency(pl.trace()), pl.rollbacks(), pl.output()};
  };
  const auto [nm, nl, nrb, nout] = run(false);
  const auto [sm, sl, srb, sout] = run(true);
  return {"wiener filter (Fig.1)", "30% rel-L2 coeffs", nm, sm, nl, sl, srb,
          filt::rel_l2_diff(sout, nout)};
}

Row kmeans_row() {
  const auto data = km::make_blobs(256 * 1024, 4, 8, 11, 0.6);
  km::KmeansPipelineConfig cfg;
  cfg.spec.tolerance = 0.02;
  cfg.spec.verify = tvs::VerificationPolicy::every_kth(4);

  auto run = [&](bool speculation) {
    sre::Runtime rt(speculation ? sre::DispatchPolicy::Balanced
                                : sre::DispatchPolicy::NonSpeculative);
    sim::SimExecutor ex(rt, sim::PlatformConfig::x86(16));
    km::KmeansPipeline pl(rt, data, cfg, speculation);
    pl.start();
    ex.run();
    pl.validate_complete();
    return std::tuple{static_cast<double>(ex.makespan_us()),
                      avg_latency(pl.trace()), pl.rollbacks(), pl.labels()};
  };
  const auto [nm, nl, nrb, nlabels] = run(false);
  const auto [sm, sl, srb, slabels] = run(true);
  std::size_t differ = 0;
  for (std::size_t i = 0; i < nlabels.size(); ++i) {
    if (nlabels[i] != slabels[i]) ++differ;
  }
  return {"k-means (256k pts)", "2% reassignment", nm, sm, nl, sl, srb,
          static_cast<double>(differ) / static_cast<double>(nlabels.size())};
}

Row anneal_row() {
  const auto cities = ann::make_cities(100, 31);
  const auto queries = ann::make_queries(cities, 64 * 1024, 3);
  ann::AnnealPipelineConfig cfg;
  cfg.sweeps = 24;
  cfg.block_points = 1024;
  cfg.spec.tolerance = 0.15;  // ≤15% of sample may re-match
  cfg.spec.verify = tvs::VerificationPolicy::every_kth(2);

  auto run = [&](bool speculation) {
    sre::Runtime rt(speculation ? sre::DispatchPolicy::Balanced
                                : sre::DispatchPolicy::NonSpeculative);
    sim::SimExecutor ex(rt, sim::PlatformConfig::x86(16));
    ann::AnnealPipeline pl(rt, cities, queries, cfg, speculation);
    pl.start();
    ex.run();
    pl.validate_complete();
    return std::tuple{static_cast<double>(ex.makespan_us()),
                      avg_latency(pl.trace()), pl.rollbacks(), pl.matches(),
                      pl.committed_tour()};
  };
  const auto [nm, nl, nrb, nmatch, ntour] = run(false);
  const auto [sm, sl, srb, smatch, stour] = run(true);
  // Accuracy: compare matched edges as unordered city pairs (edge indices
  // are tour-relative, so the raw indices are not comparable).
  const auto edge_cities = [](const ann::Tour& t, std::uint32_t e) {
    const std::size_t n = t.order.size();
    std::uint32_t u = t.order[e];
    std::uint32_t v = t.order[(e + 1) % n];
    if (u > v) std::swap(u, v);
    return std::pair{u, v};
  };
  std::size_t differ = 0;
  for (std::size_t i = 0; i < nmatch.size(); ++i) {
    if (edge_cities(ntour, nmatch[i]) != edge_cities(stour, smatch[i])) {
      ++differ;
    }
  }
  return {"tsp anneal (64k pts)", "15% re-matched", nm, sm, nl, sl, srb,
          static_cast<double>(differ) / static_cast<double>(nmatch.size())};
}

void print(const Row& r) {
  std::printf("%-22s %-20s %8.1f%% %8.1f%% %6llu %10.2f%%\n", r.name,
              r.tolerance,
              (r.natural_makespan - r.spec_makespan) / r.natural_makespan *
                  100.0,
              (r.natural_latency - r.spec_latency) / r.natural_latency * 100.0,
              static_cast<unsigned long long>(r.rollbacks),
              r.accuracy_note * 100.0);
}

}  // namespace

int main() {
  std::printf("Tolerant value speculation across applications "
              "(16 simulated CPUs, balanced)\n\n");
  std::printf("%-22s %-20s %9s %9s %6s %11s\n", "application", "tolerance",
              "runtime-", "latency-", "rb", "accuracy Δ");
  print(huffman_row());
  print(filter_row());
  print(kmeans_row());
  print(anneal_row());
  std::printf("\n(runtime-/latency- = reduction vs the non-speculative run; "
              "accuracy Δ = what the\n tolerance traded: compressed-size "
              "overhead, output rel-L2, reassigned points,\n or re-matched "
              "points respectively)\n");
  return 0;
}
