// Ablation: design choices of the SRE scheduler that the paper discusses
// but does not plot.
//
//  1. Depth-favored priority vs pure FCFS (§III-A: "If it is to use a
//     first-come first-serve (FCFS) approach, it would tend to focus
//     resources to the beginning of the pipeline at the expense of the end.
//     This breadth-first approach certainly extends latency").
//  2. Control-task priority: prediction/check tasks dispatch first (§III-B)
//     — quantified here by the latency cost of running them at natural
//     priority instead (approximated by inflating their depth to 0).
//  3. Multiple-buffering depth on the Cell (staging 0/2/4/8): deeper
//     staging commits decisions earlier — good for DMA overlap (not
//     modelled as a gain here) but worse for speculation responsiveness.
#include <cstdio>

#include "bench_util.h"

namespace {

pipeline::RunResult run_txt(sre::PriorityMode mode,
                            sre::DispatchPolicy policy) {
  auto cfg = pipeline::RunConfig::x86_disk(wl::FileKind::Txt, policy);
  cfg.priority_mode = mode;
  return pipeline::run_sim(cfg);
}

}  // namespace

int main() {
  std::printf("Ablation 1: depth-favored priority vs FCFS (x86 disk, TXT)\n");
  std::printf("%-28s %12s %12s\n", "scheduler", "avg_lat_us", "runtime_us");
  for (auto policy : {sre::DispatchPolicy::NonSpeculative,
                      sre::DispatchPolicy::Balanced}) {
    for (auto mode : {sre::PriorityMode::DepthFirst, sre::PriorityMode::Fcfs}) {
      const auto res = run_txt(mode, policy);
      pipeline::verify_roundtrip(res);
      std::printf("%-28s %12.0f %12llu\n",
                  (sre::to_string(policy) + "/" +
                   (mode == sre::PriorityMode::Fcfs ? "fcfs" : "depth-first"))
                      .c_str(),
                  res.avg_latency_us(),
                  static_cast<unsigned long long>(res.makespan_us));
    }
  }

  std::printf("\nAblation 2: staging depth on the Cell (TXT, conservative &"
              " balanced)\n");
  std::printf("%-28s %12s %12s %10s\n", "config", "avg_lat_us", "runtime_us",
              "spec_disp");
  for (auto policy : {sre::DispatchPolicy::Conservative,
                      sre::DispatchPolicy::Balanced}) {
    for (std::size_t depth : {std::size_t{0}, std::size_t{2}, std::size_t{4},
                              std::size_t{8}}) {
      auto cfg = pipeline::RunConfig::cell_disk(wl::FileKind::Txt, policy);
      cfg.platform.staging_depth = depth;
      const auto res = pipeline::run_sim(cfg);
      pipeline::verify_roundtrip(res);
      std::printf("%-28s %12.0f %12llu %10llu\n",
                  (sre::to_string(policy) + "/staging=" + std::to_string(depth))
                      .c_str(),
                  res.avg_latency_us(),
                  static_cast<unsigned long long>(res.makespan_us),
                  static_cast<unsigned long long>(res.spec_dispatches));
    }
  }

  std::printf("\nAblation 3: check-task cost sensitivity (PDF, full"
              " verification)\n");
  std::printf("%-28s %12s %12s %8s\n", "check cost", "avg_lat_us",
              "runtime_us", "checks");
  for (std::uint64_t check_us : {0ULL, 12ULL, 120ULL, 1200ULL}) {
    auto cfg = pipeline::RunConfig::x86_disk(wl::FileKind::Pdf,
                                             sre::DispatchPolicy::Balanced);
    cfg.spec.verify = tvs::VerificationPolicy::full();
    cfg.platform.cost.check_us = check_us;
    const auto res = pipeline::run_sim(cfg);
    pipeline::verify_roundtrip(res);
    std::printf("%-28s %12.0f %12llu %8llu\n",
                (std::to_string(check_us) + " us").c_str(),
                res.avg_latency_us(),
                static_cast<unsigned long long>(res.makespan_us),
                static_cast<unsigned long long>(res.counters.checks_executed));
  }

  std::printf("\nAblation 4: second-pass fan-out (offset group size, TXT"
              " balanced, x86 disk)\n");
  std::printf("%-28s %12s %12s\n", "offset group", "avg_lat_us", "runtime_us");
  for (std::size_t group : {std::size_t{8}, std::size_t{16}, std::size_t{64},
                            std::size_t{256}}) {
    auto cfg = pipeline::RunConfig::x86_disk(wl::FileKind::Txt,
                                             sre::DispatchPolicy::Balanced);
    cfg.ratios.offset_group = group;
    const auto res = pipeline::run_sim(cfg);
    pipeline::verify_roundtrip(res);
    std::printf("%-28s %12.0f %12llu\n",
                ("1 offset : " + std::to_string(group) + " encodes").c_str(),
                res.avg_latency_us(),
                static_cast<unsigned long long>(res.makespan_us));
  }
  return 0;
}
