// Ablation: adaptive speculation restart vs every fixed step size.
//
// The paper leaves the step size as a manually tuned knob and shows
// (Fig. 5) that the best value is input-dependent: 1 for TXT, 8 for BMP,
// 16 for PDF. The adaptive controller (SpecConfig::adaptive_restart) starts
// at step 1 and, on each rollback, defers the next guess until twice the
// failed prefix — homing in on the threshold without knowing it. This bench
// checks how close "adaptive, untuned" comes to "best fixed, oracle-tuned".
#include <cstdio>

#include "bench_util.h"

int main() {
  std::printf("Ablation: adaptive restart vs fixed step sizes "
              "(x86 disk, balanced, tol 1%%)\n\n");
  std::printf("%-6s %12s %12s %12s %10s %12s\n", "file", "non-spec",
              "best-fixed", "(step)", "adaptive", "(rollbacks)");

  for (wl::FileKind file : wl::all_kinds()) {
    const auto base = pipeline::run_sim(
        pipeline::RunConfig::x86_disk(file, sre::DispatchPolicy::NonSpeculative));

    double best_fixed = 1e18;
    std::uint32_t best_step = 0;
    for (std::uint32_t step : {1u, 2u, 4u, 8u, 16u, 32u}) {
      auto cfg = pipeline::RunConfig::x86_disk(file, sre::DispatchPolicy::Balanced);
      cfg.spec.step_size = step;
      const auto res = pipeline::run_sim(cfg);
      pipeline::verify_roundtrip(res);
      if (res.avg_latency_us() < best_fixed) {
        best_fixed = res.avg_latency_us();
        best_step = step;
      }
    }

    auto cfg = pipeline::RunConfig::x86_disk(file, sre::DispatchPolicy::Balanced);
    cfg.spec.adaptive_restart = true;
    const auto adaptive = pipeline::run_sim(cfg);
    pipeline::verify_roundtrip(adaptive);

    std::printf("%-6s %12.0f %12.0f %12u %10.0f %12llu\n",
                wl::to_string(file).c_str(), base.avg_latency_us(), best_fixed,
                best_step, adaptive.avg_latency_us(),
                static_cast<unsigned long long>(adaptive.rollbacks));
  }
  std::printf("\n(adaptive restart converges to within a factor of two of "
              "the unknown threshold,\n so it lands within ~25%% of the "
              "oracle-tuned fixed step at a logarithmic\n number of "
              "rollbacks — with zero per-input tuning)\n");
  return 0;
}
