// Figure 6 (a-d): verification-frequency policies on x86 disk — baseline
// (check every 8th estimate), optimistic (single check against the final
// tree), and full speculation (check at every estimate, restart immediately
// on failure), vs the non-speculative run.
//
// Paper shapes to reproduce:
//  * no-rollback cases (TXT, BMP at these settings): optimistic starts
//    earliest and wins; full matches optimistic almost exactly — checks are
//    cheap ("the small difference ... indicates that checking has a
//    relatively low impact on performance");
//  * PDF: both optimistic and full pay heavily when rollbacks occur —
//    optimistic re-starts a large amount of computation at the end; full
//    rolls back repeatedly;
//  * optimistic reduces average latency by as much as ~51 % (TXT).
#include <cstdio>

#include "bench_util.h"

namespace {

using benchutil::NamedRun;

std::vector<NamedRun> run_file(wl::FileKind file) {
  struct Variant {
    std::string name;
    sre::DispatchPolicy policy;
    tvs::VerificationPolicy verify;
  };
  const std::vector<Variant> variants = {
      {"non-spec", sre::DispatchPolicy::NonSpeculative,
       tvs::VerificationPolicy::every_kth(8)},
      {"balanced", sre::DispatchPolicy::Balanced,
       tvs::VerificationPolicy::every_kth(8)},
      {"optimistic", sre::DispatchPolicy::Balanced,
       tvs::VerificationPolicy::optimistic()},
      {"full", sre::DispatchPolicy::Balanced,
       tvs::VerificationPolicy::full()},
  };
  std::vector<NamedRun> runs;
  for (const auto& v : variants) {
    auto cfg = pipeline::RunConfig::x86_disk(file, v.policy);
    cfg.spec.verify = v.verify;
    auto result = benchutil::run_reported(
        "fig6/" + wl::to_string(file) + "/" + v.name, cfg);
    benchutil::verify_run({v.name, result});
    runs.push_back({v.name, std::move(result)});
  }
  return runs;
}

}  // namespace

int main(int argc, char** argv) {
  const auto csv = benchutil::csv_dir(argc, argv);
  benchutil::init_reports(argc, argv);
  std::printf("Fig. 6: verification & speculation frequency, x86 disk\n");

  std::vector<std::pair<std::string, double>> runtime_bars;
  const char* panels[] = {"fig6a_txt.csv", "fig6b_bmp.csv", "fig6c_pdf.csv"};
  int panel = 0;
  for (wl::FileKind file : wl::all_kinds()) {
    auto runs = run_file(file);
    benchutil::print_summary_table(
        "Fig. 6 (" + wl::to_string(file) + "): verification policies", runs);
    benchutil::print_latency_chart(runs);
    if (csv) benchutil::write_latency_csv(*csv, panels[panel], runs);
    for (const auto& r : runs) {
      runtime_bars.emplace_back(wl::to_string(file) + "/" + r.name,
                                static_cast<double>(r.result.makespan_us));
    }
    // The paper's headline: optimistic vs non-spec average latency on TXT.
    if (file == wl::FileKind::Txt) {
      const double base = runs[0].result.avg_latency_us();
      const double opt = runs[2].result.avg_latency_us();
      std::printf("  optimistic avg-latency reduction vs non-spec: %.1f%%\n",
                  (base - opt) / base * 100.0);
    }
    ++panel;
  }
  benchutil::print_runtime_bars("Fig. 6d: run times", runtime_bars);
  if (csv) {
    stats::CsvWriter w(*csv + "/fig6d_runtimes.csv");
    w.header({"series", "runtime_us"});
    for (const auto& [label, value] : runtime_bars) {
      w.row({label, std::to_string(static_cast<std::uint64_t>(value))});
    }
  }
  return 0;
}
