// Dispatch-path contention sweep: Central (single-lock) vs Sharded
// (work-stealing + lock-free completions) ThreadedExecutor, across worker
// counts, task grains and workload shapes.
//
// Two shapes per cell:
//
//  * flat  — N independent natural tasks submitted up front; the executor
//    drains a full pool, so the number is raw pop/retire throughput.
//  * chain — C parallel dependency chains of L links each (the paper's
//    coarse-grain streaming shape: every stage feeds the next). Each
//    completion must be retired before its successor becomes ready, so this
//    shape stresses the completion path and the wakeup protocol — it is
//    where the single-lock baseline's broadcast wakeups and per-task lock
//    round-trips collapse as workers are added.
//
// With fine-grain (empty) bodies the numbers are almost pure scheduler
// overhead; with coarse-grain (~20 µs spin) bodies the overhead amortizes
// away. Each cell keeps the best of a few repetitions to damp OS-scheduler
// noise. Results go to BENCH_dispatch.json (override with --out <path>),
// including a headline speedup for the contention-heavy corner: 16 workers,
// fine grain, chained.
//
// This is a scheduler microbenchmark, not a figure reproduction: the paper's
// figures come from the deterministic virtual-time simulator, which this
// change leaves bit-identical (see docs/scheduling.md).
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "sre/runtime.h"
#include "sre/threaded_executor.h"

namespace {

struct Cell {
  const char* mode = "";
  const char* shape = "";  // "flat" | "chain"
  unsigned workers = 0;
  unsigned grain_us = 0;
  std::size_t tasks = 0;
  double wall_ms = 0.0;
  double tasks_per_sec = 0.0;
  std::uint64_t pop_p50_us = 0;
  std::uint64_t pop_p99_us = 0;
  sre::ThreadedExecutor::DispatchStats stats;
};

void spin_for_us(unsigned us) {
  if (us == 0) return;
  const auto until =
      std::chrono::steady_clock::now() + std::chrono::microseconds(us);
  while (std::chrono::steady_clock::now() < until) {
  }
}

Cell run_cell_once(sre::DispatchMode mode, unsigned workers, unsigned grain_us,
                   std::size_t chains, std::size_t links) {
  sre::Runtime rt(sre::DispatchPolicy::NonSpeculative);
  sre::ThreadedExecutor::Options opts;
  opts.workers = workers;
  opts.dispatch = mode;
  opts.collect_pop_latency = mode == sre::DispatchMode::Sharded;
  sre::ThreadedExecutor ex(rt, opts);

  const std::size_t tasks = chains * links;
  std::vector<sre::TaskPtr> handles;
  handles.reserve(tasks);
  for (std::size_t c = 0; c < chains; ++c) {
    sre::TaskPtr prev;
    for (std::size_t l = 0; l < links; ++l) {
      auto t = rt.make_task(
          "t" + std::to_string(c) + "_" + std::to_string(l),
          sre::TaskClass::Natural, sre::kNaturalEpoch,
          /*depth=*/0, /*cost_us=*/grain_us,
          [grain_us](sre::TaskContext&) { spin_for_us(grain_us); });
      if (prev) rt.add_dependency(prev, t);
      handles.push_back(t);
      prev = t;
    }
  }
  const auto t0 = std::chrono::steady_clock::now();
  for (const auto& t : handles) rt.submit(t);
  ex.run();
  const auto t1 = std::chrono::steady_clock::now();

  Cell c;
  c.mode = mode == sre::DispatchMode::Sharded ? "sharded" : "central";
  c.shape = links > 1 ? "chain" : "flat";
  c.workers = workers;
  c.grain_us = grain_us;
  c.tasks = tasks;
  c.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  c.tasks_per_sec = c.wall_ms > 0.0
                        ? static_cast<double>(tasks) / (c.wall_ms / 1000.0)
                        : 0.0;
  c.stats = ex.dispatch_stats();
  c.pop_p50_us = c.stats.pop_latency_quantile_us(0.50);
  c.pop_p99_us = c.stats.pop_latency_quantile_us(0.99);
  return c;
}

/// Best (max-throughput) of `reps` runs: single-run wall times on a loaded
/// machine are dominated by unlucky preemption; the best run is the one that
/// measures the scheduler instead of the OS.
Cell run_cell(sre::DispatchMode mode, unsigned workers, unsigned grain_us,
              std::size_t chains, std::size_t links, unsigned reps) {
  Cell best = run_cell_once(mode, workers, grain_us, chains, links);
  for (unsigned r = 1; r < reps; ++r) {
    Cell c = run_cell_once(mode, workers, grain_us, chains, links);
    if (c.tasks_per_sec > best.tasks_per_sec) best = c;
  }
  return best;
}

void print_cell(const Cell& c) {
  std::printf(
      "  %-5s %-7s w=%-2u grain=%-2uus  %8.1f ms  %10.0f tasks/s"
      "  p50=%llu p99=%llu us  steals=%llu self=%llu retires=%llu\n",
      c.shape, c.mode, c.workers, c.grain_us, c.wall_ms, c.tasks_per_sec,
      static_cast<unsigned long long>(c.pop_p50_us),
      static_cast<unsigned long long>(c.pop_p99_us),
      static_cast<unsigned long long>(c.stats.steals),
      static_cast<unsigned long long>(c.stats.self_stages),
      static_cast<unsigned long long>(c.stats.worker_retires));
}

void write_json(const std::string& path, const std::vector<Cell>& cells,
                double central_tps, double sharded_tps) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "micro_dispatch: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"benchmark\": \"micro_dispatch\",\n");
  std::fprintf(f,
               "  \"description\": \"ThreadedExecutor dispatch-path sweep: "
               "central (single-lock) vs sharded (work-stealing)\",\n");
  std::fprintf(f, "  \"rows\": [\n");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    std::fprintf(
        f,
        "    {\"mode\": \"%s\", \"shape\": \"%s\", \"workers\": %u, "
        "\"grain_us\": %u, "
        "\"tasks\": %zu, \"wall_ms\": %.3f, \"tasks_per_sec\": %.0f, "
        "\"pop_p50_us\": %llu, \"pop_p99_us\": %llu, "
        "\"local_pops\": %llu, \"inbox_pops\": %llu, \"steals\": %llu, "
        "\"self_stages\": %llu, \"director_stages\": %llu, "
        "\"inline_finishes\": %llu, \"worker_retires\": %llu, "
        "\"parks\": %llu, \"completion_fallbacks\": %llu}%s\n",
        c.mode, c.shape, c.workers, c.grain_us, c.tasks, c.wall_ms,
        c.tasks_per_sec,
        static_cast<unsigned long long>(c.pop_p50_us),
        static_cast<unsigned long long>(c.pop_p99_us),
        static_cast<unsigned long long>(c.stats.local_pops),
        static_cast<unsigned long long>(c.stats.inbox_pops),
        static_cast<unsigned long long>(c.stats.steals),
        static_cast<unsigned long long>(c.stats.self_stages),
        static_cast<unsigned long long>(c.stats.director_stages),
        static_cast<unsigned long long>(c.stats.inline_finishes),
        static_cast<unsigned long long>(c.stats.worker_retires),
        static_cast<unsigned long long>(c.stats.parks),
        static_cast<unsigned long long>(c.stats.completion_fallbacks),
        i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f,
               "  \"headline\": {\"shape\": \"chain\", \"workers\": 16, "
               "\"grain_us\": 0, "
               "\"central_tasks_per_sec\": %.0f, "
               "\"sharded_tasks_per_sec\": %.0f, \"speedup\": %.2f}\n",
               central_tps, sharded_tps,
               central_tps > 0.0 ? sharded_tps / central_tps : 0.0);
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("  wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::string out = "BENCH_dispatch.json";
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out = argv[++i];
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    }
  }
  const unsigned reps = quick ? 1 : 3;
  const std::size_t fine_tasks = quick ? 1000 : 8000;
  const std::size_t coarse_tasks = quick ? 500 : 2000;
  const std::size_t chains = 4;
  const std::size_t chain_links = quick ? 100 : 500;

  std::printf("micro_dispatch: central vs sharded executor sweep\n");
  std::vector<Cell> cells;
  double central_16_chain = 0.0;
  double sharded_16_chain = 0.0;
  // Flat shape: independent tasks, full pool from the start.
  for (const unsigned grain_us : {0u, 20u}) {
    const std::size_t tasks = grain_us == 0 ? fine_tasks : coarse_tasks;
    for (const unsigned workers : {1u, 2u, 4u, 8u, 16u}) {
      for (const sre::DispatchMode mode :
           {sre::DispatchMode::Central, sre::DispatchMode::Sharded}) {
        Cell c = run_cell(mode, workers, grain_us, tasks, 1, reps);
        print_cell(c);
        cells.push_back(c);
      }
    }
  }
  // Chain shape: completion-path stress (fine grain only — coarse bodies
  // hide the dispatch cost this benchmark exists to expose).
  for (const unsigned workers : {1u, 2u, 4u, 8u, 16u}) {
    for (const sre::DispatchMode mode :
         {sre::DispatchMode::Central, sre::DispatchMode::Sharded}) {
      Cell c = run_cell(mode, workers, /*grain_us=*/0, chains, chain_links,
                        reps);
      print_cell(c);
      if (workers == 16) {
        (mode == sre::DispatchMode::Central ? central_16_chain
                                            : sharded_16_chain) =
            c.tasks_per_sec;
      }
      cells.push_back(c);
    }
  }
  const double speedup =
      central_16_chain > 0.0 ? sharded_16_chain / central_16_chain : 0.0;
  std::printf(
      "\n  headline (16 workers, fine grain, chained): central %.0f/s, "
      "sharded %.0f/s -> %.2fx\n",
      central_16_chain, sharded_16_chain, speedup);
  write_json(out, cells, central_16_chain, sharded_16_chain);
  return 0;
}
