// Headline numbers: the paper's abstract claims "up to 28% speedup in
// execution time and a 51% reduction in average latency in certain
// scenarios" (the latency figure from optimistic TXT; see §V-B: "optimistic
// runs can reduce average latency by as much as 51% for the text file").
//
// This bench sweeps the scenario grid and reports the best observed
// improvements so the claims can be checked at a glance.
#include <cstdio>

#include "bench_util.h"

namespace {

struct Best {
  double value = 0.0;
  std::string scenario;
};

void consider(Best& best, double value, const std::string& scenario) {
  if (value > best.value) {
    best.value = value;
    best.scenario = scenario;
  }
}

}  // namespace

int main() {
  std::printf("Headline summary: best speculation improvements across the grid\n");

  Best best_latency;
  Best best_runtime;

  struct Platform {
    const char* name;
    pipeline::RunConfig (*disk)(wl::FileKind, sre::DispatchPolicy);
  };
  const Platform platforms[] = {
      {"x86", &pipeline::RunConfig::x86_disk},
      {"cell", &pipeline::RunConfig::cell_disk},
  };
  const std::pair<const char*, tvs::VerificationPolicy> verifies[] = {
      {"every8", tvs::VerificationPolicy::every_kth(8)},
      {"optimistic", tvs::VerificationPolicy::optimistic()},
  };
  const std::pair<const char*, sre::DispatchPolicy> policies[] = {
      {"balanced", sre::DispatchPolicy::Balanced},
      {"aggressive", sre::DispatchPolicy::Aggressive},
  };

  std::printf("\n%-34s %12s %12s %8s %8s\n", "scenario", "avg_lat_us",
              "runtime_us", "lat-%", "rt-%");
  for (const auto& platform : platforms) {
    for (wl::FileKind file : wl::all_kinds()) {
      const auto base = pipeline::run_sim(
          platform.disk(file, sre::DispatchPolicy::NonSpeculative));
      pipeline::verify_roundtrip(base);
      std::printf("%-34s %12.0f %12llu %8s %8s\n",
                  (std::string(platform.name) + "/" + wl::to_string(file) +
                   "/non-spec")
                      .c_str(),
                  base.avg_latency_us(),
                  static_cast<unsigned long long>(base.makespan_us), "-", "-");

      for (const auto& [vname, verify] : verifies) {
        for (const auto& [pname, policy] : policies) {
          auto cfg = platform.disk(file, policy);
          cfg.spec.verify = verify;
          const auto res = pipeline::run_sim(cfg);
          pipeline::verify_roundtrip(res);
          const double lat_gain =
              (base.avg_latency_us() - res.avg_latency_us()) /
              base.avg_latency_us() * 100.0;
          const double rt_gain =
              (static_cast<double>(base.makespan_us) -
               static_cast<double>(res.makespan_us)) /
              static_cast<double>(base.makespan_us) * 100.0;
          const std::string scen = std::string(platform.name) + "/" +
                                   wl::to_string(file) + "/" + pname + "/" +
                                   vname;
          std::printf("%-34s %12.0f %12llu %7.1f%% %7.1f%%\n", scen.c_str(),
                      res.avg_latency_us(),
                      static_cast<unsigned long long>(res.makespan_us),
                      lat_gain, rt_gain);
          consider(best_latency, lat_gain, scen);
          consider(best_runtime, rt_gain, scen);
        }
      }
    }
  }

  std::printf("\nBest average-latency reduction: %.1f%% (%s)\n",
              best_latency.value, best_latency.scenario.c_str());
  std::printf("Best run-time speedup:          %.1f%% (%s)\n",
              best_runtime.value, best_runtime.scenario.c_str());
  std::printf("Paper claims: up to 51%% latency reduction, up to 28%% speedup.\n");
  return 0;
}
