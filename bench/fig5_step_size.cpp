// Figure 5 (a-c): average latency vs speculation step size, per dispatch
// policy, for TXT/BMP/PDF on x86 disk.
//
// Paper shapes to reproduce:
//  * TXT: small steps all good; efficiency drops as the step grows
//    (speculation starts later).
//  * BMP/PDF: small steps roll back and look like non-spec; once the step
//    jumps past the transient (≈8 for BMP, ≈16 for PDF), rollbacks stop and
//    average latency drops sharply. Latency reductions up to ~22 % (BMP/PDF)
//    and ~28 % (TXT) vs non-spec.
#include <cstdio>

#include "bench_util.h"

namespace {

const std::uint32_t kSteps[] = {1, 2, 4, 8, 16, 32};

}  // namespace

int main(int argc, char** argv) {
  const auto csv = benchutil::csv_dir(argc, argv);
  benchutil::init_reports(argc, argv);
  std::printf("Fig. 5: speculation step-size sweep, x86 disk\n");

  const std::vector<std::pair<std::string, sre::DispatchPolicy>> policies = {
      {"balanced", sre::DispatchPolicy::Balanced},
      {"aggressive", sre::DispatchPolicy::Aggressive},
      {"conservative", sre::DispatchPolicy::Conservative},
  };
  const char* panels[] = {"fig5a_txt.csv", "fig5b_bmp.csv", "fig5c_pdf.csv"};

  int panel = 0;
  for (wl::FileKind file : wl::all_kinds()) {
    // Non-spec reference (step axis value 0 in the paper's plots).
    auto base_cfg =
        pipeline::RunConfig::x86_disk(file, sre::DispatchPolicy::NonSpeculative);
    const auto base = benchutil::run_reported(
        "fig5/" + wl::to_string(file) + "/non-spec", base_cfg);
    pipeline::verify_roundtrip(base);

    std::printf("\n--- Fig. 5 (%s): average latency vs step size ---\n",
                wl::to_string(file).c_str());
    std::printf("%-8s", "step");
    for (const auto& [name, p] : policies) std::printf(" %12s", name.c_str());
    std::printf("  %12s\n", "(rollbacks)");
    std::printf("%-8s", "non-spec");
    for (std::size_t i = 0; i < policies.size(); ++i) {
      std::printf(" %12.0f", base.avg_latency_us());
    }
    std::printf("\n");

    std::vector<std::vector<std::string>> csv_rows;
    for (std::uint32_t step : kSteps) {
      std::printf("%-8u", step);
      std::vector<std::string> row{std::to_string(step)};
      std::string rb_note;
      for (const auto& [name, policy] : policies) {
        auto cfg = pipeline::RunConfig::x86_disk(file, policy);
        cfg.spec.step_size = step;
        const auto res = benchutil::run_reported(
            "fig5/" + wl::to_string(file) + "/" + name + "/step" +
                std::to_string(step),
            cfg);
        pipeline::verify_roundtrip(res);
        std::printf(" %12.0f", res.avg_latency_us());
        row.push_back(std::to_string(
            static_cast<std::uint64_t>(res.avg_latency_us())));
        rb_note += name.substr(0, 1) + "=" + std::to_string(res.rollbacks) + " ";
      }
      std::printf("  %12s\n", rb_note.c_str());
      csv_rows.push_back(std::move(row));
    }

    if (csv) {
      stats::CsvWriter w(*csv + "/" + panels[panel]);
      std::vector<std::string> header{"step"};
      for (const auto& [name, p] : policies) header.push_back(name);
      w.header(header);
      w.row({"0", std::to_string(static_cast<std::uint64_t>(base.avg_latency_us())),
             std::to_string(static_cast<std::uint64_t>(base.avg_latency_us())),
             std::to_string(static_cast<std::uint64_t>(base.avg_latency_us()))});
      for (const auto& row : csv_rows) w.row(row);
      std::printf("  wrote %s/%s\n", csv->c_str(), panels[panel]);
    }
    ++panel;
  }
  return 0;
}
