// Microbenchmarks of the Huffman substrate — the real per-task costs behind
// the simulator's CostModel (and the justification for its ratios).
#include <benchmark/benchmark.h>

#include "huffman/canonical.h"
#include "huffman/decoder.h"
#include "huffman/encoder.h"
#include "huffman/fast_decoder.h"
#include "huffman/length_limited.h"
#include "huffman/offsets.h"
#include "huffman/stream_format.h"
#include "huffman/tree.h"
#include "workload/corpus.h"

namespace {

const std::vector<std::uint8_t>& txt_1mb() {
  static const auto data = wl::make_corpus(wl::FileKind::Txt, 1 << 20);
  return data;
}

void BM_CountBlock(benchmark::State& state) {
  const auto& data = txt_1mb();
  const auto block =
      std::span(data).first(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(huff::Histogram::of(block));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_CountBlock)->Arg(4096)->Arg(65536);

void BM_ReduceHistograms(benchmark::State& state) {
  const auto& data = txt_1mb();
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<huff::Histogram> hists(n);
  for (std::size_t i = 0; i < n; ++i) {
    hists[i] = huff::Histogram::of(std::span(data).subspan(i * 4096, 4096));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(huff::Histogram::merged(hists));
  }
}
BENCHMARK(BM_ReduceHistograms)->Arg(8)->Arg(16)->Arg(64);

void BM_TreeBuild(benchmark::State& state) {
  const auto hist = huff::Histogram::of(txt_1mb()).with_floor(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(huff::HuffmanTree::build(hist));
  }
}
BENCHMARK(BM_TreeBuild);

void BM_CanonicalTable(benchmark::State& state) {
  const auto lengths =
      huff::HuffmanTree::build(huff::Histogram::of(txt_1mb()).with_floor(1))
          .lengths();
  for (auto _ : state) {
    benchmark::DoNotOptimize(huff::CodeTable::from_lengths(lengths));
  }
}
BENCHMARK(BM_CanonicalTable);

void BM_EncodeBlock(benchmark::State& state) {
  const auto& data = txt_1mb();
  const auto table = huff::CodeTable::from_histogram(huff::Histogram::of(data));
  const auto block =
      std::span(data).first(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(huff::encode_block(block, table));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_EncodeBlock)->Arg(4096)->Arg(65536);

void BM_OffsetGroup(benchmark::State& state) {
  const auto& data = txt_1mb();
  const auto table = huff::CodeTable::from_histogram(huff::Histogram::of(data));
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<huff::Histogram> hists(n);
  for (std::size_t i = 0; i < n; ++i) {
    hists[i] = huff::Histogram::of(std::span(data).subspan(i * 4096, 4096));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(huff::compute_offsets(hists, table, 0));
  }
}
BENCHMARK(BM_OffsetGroup)->Arg(16)->Arg(64);

void BM_CheckTask(benchmark::State& state) {
  // The tolerance check: two encoded_bits evaluations plus a comparison —
  // "Check tasks are simple and run very quickly" (paper §IV-B).
  const auto& data = txt_1mb();
  const auto hist = huff::Histogram::of(data);
  const auto guess = huff::CodeTable::from_histogram(
      huff::Histogram::of(std::span(data).first(65536)).with_floor(1));
  const auto current = huff::CodeTable::from_histogram(hist.with_floor(1));
  for (auto _ : state) {
    const auto a = guess.encoded_bits(hist);
    const auto b = current.encoded_bits(hist);
    benchmark::DoNotOptimize(a > b ? a - b : b - a);
  }
}
BENCHMARK(BM_CheckTask);

void BM_DecodeBlock(benchmark::State& state) {
  const auto& data = txt_1mb();
  const auto table = huff::CodeTable::from_histogram(huff::Histogram::of(data));
  const auto block = std::span(data).first(4096);
  const auto enc = huff::encode_block(block, table);
  const huff::Decoder decoder(table);
  for (auto _ : state) {
    benchmark::DoNotOptimize(decoder.decode(enc.bits, block.size()));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 4096);
}
BENCHMARK(BM_DecodeBlock);

void BM_FastDecodeBlock(benchmark::State& state) {
  // Table-driven decode with length-limited codes: the production-style
  // alternative to the canonical bit walker (BM_DecodeBlock).
  const auto& data = txt_1mb();
  const auto window = static_cast<std::uint8_t>(state.range(0));
  const auto hist = huff::Histogram::of(data);
  const auto table = huff::CodeTable::from_lengths(
      huff::build_limited_lengths(hist, window));
  const auto block = std::span(data).first(4096);
  const auto enc = huff::encode_block(block, table);
  const huff::FastDecoder decoder(table, window);
  for (auto _ : state) {
    benchmark::DoNotOptimize(decoder.decode(enc.bits, block.size()));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 4096);
}
BENCHMARK(BM_FastDecodeBlock)->Arg(10)->Arg(12);

void BM_PackageMerge(benchmark::State& state) {
  const auto hist = huff::Histogram::of(txt_1mb()).with_floor(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(huff::build_limited_lengths(hist, 12));
  }
}
BENCHMARK(BM_PackageMerge);

void BM_CompressBufferEndToEnd(benchmark::State& state) {
  const auto data = wl::make_corpus(wl::FileKind::Txt, 256 * 1024);
  for (auto _ : state) {
    benchmark::DoNotOptimize(huff::compress_buffer(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data.size()));
}
BENCHMARK(BM_CompressBufferEndToEnd);

void BM_WorkloadGeneration(benchmark::State& state) {
  const auto kind = static_cast<wl::FileKind>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(wl::make_corpus(kind, 256 * 1024, 1));
  }
}
BENCHMARK(BM_WorkloadGeneration)->Arg(0)->Arg(1)->Arg(2);

}  // namespace

BENCHMARK_MAIN();
