// Microbenchmarks of the Huffman substrate — the real per-task costs behind
// the simulator's CostModel (and the justification for its ratios).
//
// Two modes:
//   * default: the google-benchmark suite below.
//   * --kernels [--json FILE]: kernel-variant sweep (scalar/swar/avx2 ×
//     block size) using paired-ratio medians — interleaved baseline/variant
//     trials, median of per-pair time ratios — because bare wall-clock on a
//     shared box cannot resolve sub-10% deltas. Emits BENCH_kernels.json.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string_view>

#include "huffman/canonical.h"
#include "huffman/decoder.h"
#include "huffman/encoder.h"
#include "huffman/fast_decoder.h"
#include "huffman/length_limited.h"
#include "huffman/offsets.h"
#include "huffman/stream_format.h"
#include "huffman/tree.h"
#include "simd/simd.h"
#include "sre/arena.h"
#include "workload/corpus.h"

namespace {

const std::vector<std::uint8_t>& txt_1mb() {
  static const auto data = wl::make_corpus(wl::FileKind::Txt, 1 << 20);
  return data;
}

void BM_CountBlock(benchmark::State& state) {
  const auto& data = txt_1mb();
  const auto block =
      std::span(data).first(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(huff::Histogram::of(block));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_CountBlock)->Arg(4096)->Arg(65536);

void BM_ReduceHistograms(benchmark::State& state) {
  const auto& data = txt_1mb();
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<huff::Histogram> hists(n);
  for (std::size_t i = 0; i < n; ++i) {
    hists[i] = huff::Histogram::of(std::span(data).subspan(i * 4096, 4096));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(huff::Histogram::merged(hists));
  }
}
BENCHMARK(BM_ReduceHistograms)->Arg(8)->Arg(16)->Arg(64);

void BM_TreeBuild(benchmark::State& state) {
  const auto hist = huff::Histogram::of(txt_1mb()).with_floor(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(huff::HuffmanTree::build(hist));
  }
}
BENCHMARK(BM_TreeBuild);

void BM_CanonicalTable(benchmark::State& state) {
  const auto lengths =
      huff::HuffmanTree::build(huff::Histogram::of(txt_1mb()).with_floor(1))
          .lengths();
  for (auto _ : state) {
    benchmark::DoNotOptimize(huff::CodeTable::from_lengths(lengths));
  }
}
BENCHMARK(BM_CanonicalTable);

void BM_EncodeBlock(benchmark::State& state) {
  const auto& data = txt_1mb();
  const auto table = huff::CodeTable::from_histogram(huff::Histogram::of(data));
  const auto block =
      std::span(data).first(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(huff::encode_block(block, table));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_EncodeBlock)->Arg(4096)->Arg(65536);

void BM_OffsetGroup(benchmark::State& state) {
  const auto& data = txt_1mb();
  const auto table = huff::CodeTable::from_histogram(huff::Histogram::of(data));
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<huff::Histogram> hists(n);
  for (std::size_t i = 0; i < n; ++i) {
    hists[i] = huff::Histogram::of(std::span(data).subspan(i * 4096, 4096));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(huff::compute_offsets(hists, table, 0));
  }
}
BENCHMARK(BM_OffsetGroup)->Arg(16)->Arg(64);

void BM_CheckTask(benchmark::State& state) {
  // The tolerance check: two encoded_bits evaluations plus a comparison —
  // "Check tasks are simple and run very quickly" (paper §IV-B).
  const auto& data = txt_1mb();
  const auto hist = huff::Histogram::of(data);
  const auto guess = huff::CodeTable::from_histogram(
      huff::Histogram::of(std::span(data).first(65536)).with_floor(1));
  const auto current = huff::CodeTable::from_histogram(hist.with_floor(1));
  for (auto _ : state) {
    const auto a = guess.encoded_bits(hist);
    const auto b = current.encoded_bits(hist);
    benchmark::DoNotOptimize(a > b ? a - b : b - a);
  }
}
BENCHMARK(BM_CheckTask);

void BM_DecodeBlock(benchmark::State& state) {
  const auto& data = txt_1mb();
  const auto table = huff::CodeTable::from_histogram(huff::Histogram::of(data));
  const auto block = std::span(data).first(4096);
  const auto enc = huff::encode_block(block, table);
  const huff::Decoder decoder(table);
  for (auto _ : state) {
    benchmark::DoNotOptimize(decoder.decode(enc.bits, block.size()));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 4096);
}
BENCHMARK(BM_DecodeBlock);

void BM_FastDecodeBlock(benchmark::State& state) {
  // Table-driven decode with length-limited codes: the production-style
  // alternative to the canonical bit walker (BM_DecodeBlock).
  const auto& data = txt_1mb();
  const auto window = static_cast<std::uint8_t>(state.range(0));
  const auto hist = huff::Histogram::of(data);
  const auto table = huff::CodeTable::from_lengths(
      huff::build_limited_lengths(hist, window));
  const auto block = std::span(data).first(4096);
  const auto enc = huff::encode_block(block, table);
  const huff::FastDecoder decoder(table, window);
  for (auto _ : state) {
    benchmark::DoNotOptimize(decoder.decode(enc.bits, block.size()));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 4096);
}
BENCHMARK(BM_FastDecodeBlock)->Arg(10)->Arg(12);

void BM_PackageMerge(benchmark::State& state) {
  const auto hist = huff::Histogram::of(txt_1mb()).with_floor(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(huff::build_limited_lengths(hist, 12));
  }
}
BENCHMARK(BM_PackageMerge);

void BM_CompressBufferEndToEnd(benchmark::State& state) {
  const auto data = wl::make_corpus(wl::FileKind::Txt, 256 * 1024);
  for (auto _ : state) {
    benchmark::DoNotOptimize(huff::compress_buffer(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data.size()));
}
BENCHMARK(BM_CompressBufferEndToEnd);

void BM_WorkloadGeneration(benchmark::State& state) {
  const auto kind = static_cast<wl::FileKind>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(wl::make_corpus(kind, 256 * 1024, 1));
  }
}
BENCHMARK(BM_WorkloadGeneration)->Arg(0)->Arg(1)->Arg(2);

// --- Kernel sweep (--kernels) ----------------------------------------------

using Clock = std::chrono::steady_clock;
using tvs::simd::Level;

/// One timed trial: process `block` `reps` times at the active dispatch
/// level; returns seconds.
template <typename Fn>
double trial_seconds(Fn&& fn, std::size_t reps) {
  const auto t0 = Clock::now();
  for (std::size_t r = 0; r < reps; ++r) {
    fn();
  }
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct SweepRow {
  const char* kernel;
  const char* variant;
  std::size_t block_size;
  double mb_per_s;        // best-of-N for the variant
  double ratio_median;    // median of per-pair scalar_time / variant_time
  std::size_t pairs;
};

/// Paired-ratio measurement of `fn` at `lvl` against the same `fn` at
/// Scalar: trials interleave baseline/variant so slow drift (thermal,
/// noisy neighbours) cancels in each pair's ratio.
template <typename Fn>
SweepRow sweep_one(const char* kernel, Level lvl, std::size_t block_size,
                   std::size_t bytes_per_trial, Fn&& fn) {
  constexpr std::size_t kPairs = 9;
  const std::size_t reps = std::max<std::size_t>(1, bytes_per_trial / block_size);
  std::vector<double> ratios;
  ratios.reserve(kPairs);
  double best_variant = 1e300;
  // Warm both paths (page in the corpus, prime the freelists).
  tvs::simd::force(Level::Scalar);
  (void)trial_seconds(fn, std::max<std::size_t>(1, reps / 8));
  tvs::simd::force(lvl);
  (void)trial_seconds(fn, std::max<std::size_t>(1, reps / 8));
  for (std::size_t p = 0; p < kPairs; ++p) {
    tvs::simd::force(Level::Scalar);
    const double base = trial_seconds(fn, reps);
    tvs::simd::force(lvl);
    const double var = trial_seconds(fn, reps);
    ratios.push_back(base / var);
    best_variant = std::min(best_variant, var);
  }
  tvs::simd::clear_force();
  std::sort(ratios.begin(), ratios.end());
  const double mb = static_cast<double>(reps * block_size) / (1 << 20);
  return {kernel,
          tvs::simd::name(lvl),
          block_size,
          mb / best_variant,
          ratios[ratios.size() / 2],
          kPairs};
}

/// Steady-state allocation cost of the arena encode path: encode `epochs`
/// full epochs of blocks into per-worker lanes and report chunk mallocs per
/// block after the first (warm-up) epoch.
struct AllocRow {
  double arena_chunk_mallocs_per_block;
  double arena_bump_allocs_per_block;
  double heap_allocs_per_block;  // encode_block: exact-size vector, by construction
  std::size_t blocks;
};

AllocRow measure_allocs(std::span<const std::uint8_t> data,
                        std::size_t block_size) {
  const auto table = huff::CodeTable::from_histogram(
      huff::Histogram::of(data).with_floor(1));
  auto pool = std::make_shared<sre::ChunkPool>();
  const std::size_t nblocks = data.size() / block_size;
  constexpr std::size_t kEpochs = 8;
  sre::ArenaStats after_warm;
  for (std::size_t e = 0; e < kEpochs; ++e) {
    auto arenas = std::make_shared<sre::EpochArenas>(pool, e);
    for (std::size_t b = 0; b < nblocks; ++b) {
      const auto block = data.subspan(b * block_size, block_size);
      const auto hist = huff::Histogram::of(block);
      auto out = arenas->lane(0).alloc_bytes((table.encoded_bits(hist) + 7) / 8);
      benchmark::DoNotOptimize(
          huff::encode_block_into(block, table, out, arenas));
    }
    if (e == 0) after_warm = pool->stats();
  }
  const auto st = pool->stats();
  const auto steady_blocks = static_cast<double>(nblocks * (kEpochs - 1));
  return {static_cast<double>(st.chunks_new - after_warm.chunks_new) /
              steady_blocks,
          static_cast<double>(st.allocs - after_warm.allocs) / steady_blocks,
          1.0, nblocks * kEpochs};
}

int run_kernel_sweep(const char* json_path) {
  const auto data = wl::make_corpus(wl::FileKind::Txt, 1 << 20);
  const auto table = huff::CodeTable::from_histogram(
      huff::Histogram::of(data).with_floor(1));
  std::vector<Level> levels{Level::Scalar, Level::Swar};
  if (tvs::simd::detect() == Level::Avx2) {
    levels.push_back(Level::Avx2);
  }
  const std::size_t block_sizes[] = {4096, 16384, 65536, 262144};
  constexpr std::size_t kBytesPerTrial = std::size_t{8} << 20;

  std::vector<SweepRow> rows;
  for (std::size_t bs : block_sizes) {
    const auto block = std::span(data).first(bs);
    for (Level lvl : levels) {
      rows.push_back(sweep_one("histogram", lvl, bs, kBytesPerTrial, [&] {
        benchmark::DoNotOptimize(huff::Histogram::of(block));
      }));
      rows.push_back(sweep_one("encode", lvl, bs, kBytesPerTrial, [&] {
        benchmark::DoNotOptimize(huff::encode_block(block, table));
      }));
      // Pipeline-shaped encode: output pre-sized from the block's histogram
      // (the Count product), as the arena path in huffman_pipeline does —
      // no sizing pass over the data and no zero-initialized vector.
      const auto out_store = std::make_shared<std::vector<std::uint8_t>>(
          (table.encoded_bits(huff::Histogram::of(block)) + 7) / 8);
      rows.push_back(sweep_one("encode_arena", lvl, bs, kBytesPerTrial, [&] {
        benchmark::DoNotOptimize(huff::encode_block_into(
            block, table, {out_store->data(), out_store->size()}, out_store));
      }));
    }
  }
  const AllocRow allocs = measure_allocs(data, 4096);

  std::printf("kernel sweep (paired-ratio medians vs scalar, best-of-N MB/s)\n");
  std::printf("%-10s %-7s %9s %12s %8s\n", "kernel", "variant", "block",
              "MB/s", "ratio");
  for (const auto& r : rows) {
    std::printf("%-10s %-7s %9zu %12.1f %7.2fx\n", r.kernel, r.variant,
                r.block_size, r.mb_per_s, r.ratio_median);
  }
  std::printf(
      "arena encode path: %.4f chunk mallocs/block, %.2f bump allocs/block "
      "over %zu blocks (heap path: %.1f vector alloc/block by construction)\n",
      allocs.arena_chunk_mallocs_per_block, allocs.arena_bump_allocs_per_block,
      allocs.blocks, allocs.heap_allocs_per_block);

  if (json_path != nullptr) {
    std::FILE* f = std::fopen(json_path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", json_path);
      return 1;
    }
    std::fprintf(f,
                 "{\n  \"bench\": \"kernels\",\n"
                 "  \"method\": \"paired-ratio medians vs scalar; "
                 "best-of-%d MB/s\",\n  \"results\": [\n",
                 9);
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const auto& r = rows[i];
      std::fprintf(f,
                   "    {\"kernel\": \"%s\", \"variant\": \"%s\", "
                   "\"block_size\": %zu, \"mb_per_s\": %.1f, "
                   "\"ratio_vs_scalar_median\": %.3f, \"pairs\": %zu}%s\n",
                   r.kernel, r.variant, r.block_size, r.mb_per_s,
                   r.ratio_median, r.pairs, i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f,
                 "  ],\n  \"allocations\": {\"arena_chunk_mallocs_per_block\": "
                 "%.5f, \"arena_bump_allocs_per_block\": %.2f, "
                 "\"heap_allocs_per_block\": %.1f, \"blocks\": %zu}\n}\n",
                 allocs.arena_chunk_mallocs_per_block,
                 allocs.arena_bump_allocs_per_block,
                 allocs.heap_allocs_per_block, allocs.blocks);
    std::fclose(f);
    std::printf("wrote %s\n", json_path);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = nullptr;
  bool kernels = false;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (arg == "--kernels") {
      kernels = true;
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    }
  }
  if (kernels) {
    return run_kernel_sweep(json_path);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
