// Figure 7 (a-b): encoding over a long-distance tunneled socket connection —
// per-element arrival time and latency for TXT and PDF.
//
// Paper shapes to reproduce:
//  * TXT (no rollback): "latency is essentially negligible with respect to
//    the transfer time" — each block is speculatively encoded almost as soon
//    as it arrives.
//  * PDF (rollback): a flat portion in the latency curve where all
//    already-arrived blocks are re-encoded almost instantly after the
//    corrected tree appears, then blocks are encoded as they arrive.
#include <cstdio>

#include "bench_util.h"

namespace {

void run_panel(wl::FileKind file, const std::optional<std::string>& csv,
               const char* csv_name) {
  auto cfg = pipeline::RunConfig::x86_socket(file, sre::DispatchPolicy::Balanced);
  const auto res =
      benchutil::run_reported("fig7/" + wl::to_string(file), cfg);
  pipeline::verify_roundtrip(res);

  const auto arrivals = res.trace.arrivals();
  const auto latencies = res.trace.latencies();

  std::printf("\n--- Fig. 7 (%s): socket I/O (ratios 8:1) ---\n",
              wl::to_string(file).c_str());
  std::printf("  transfer time (last arrival): %llu us\n",
              static_cast<unsigned long long>(arrivals.back()));
  const auto s = stats::summarize(latencies);
  std::printf("  latency: %s\n", s.to_string().c_str());
  std::printf("  rollbacks=%llu, spec committed=%s, wasted encodes=%llu\n",
              static_cast<unsigned long long>(res.rollbacks),
              res.spec_committed ? "yes" : "no",
              static_cast<unsigned long long>(res.trace.wasted_encodes()));
  std::printf("  arrival : %s\n", stats::sparkline(arrivals).c_str());
  std::printf("  latency : %s\n", stats::sparkline(latencies).c_str());
  std::printf("  latency / transfer time = %.4f (avg)\n",
              res.avg_latency_us() / static_cast<double>(arrivals.back()));

  if (csv) {
    stats::CsvWriter w(*csv + "/" + csv_name);
    w.header({"element", "arrival_us", "latency_us"});
    for (std::size_t e = 0; e < arrivals.size(); ++e) {
      w.row({std::to_string(e), std::to_string(arrivals[e]),
             std::to_string(latencies[e])});
    }
    std::printf("  wrote %s/%s\n", csv->c_str(), csv_name);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const auto csv = benchutil::csv_dir(argc, argv);
  benchutil::init_reports(argc, argv);
  std::printf("Fig. 7: reading from a socket (balanced policy, step 1,\n");
  std::printf("verify every 8th, tolerance 1%%)\n");
  run_panel(wl::FileKind::Txt, csv, "fig7a_txt.csv");
  run_panel(wl::FileKind::Pdf, csv, "fig7b_pdf.csv");
  return 0;
}
