// Ablation: value-predictor choice × confidence gate (src/predict).
//
// The paper adopts the newest estimate as the speculative value (a
// last-value predictor, hard-wired). This bench races the predictor bank
// (last-value, histogram-morph, stride, ewma) against that baseline at an
// equal step size across the three corpora, sweeping the confidence gate.
// The gate withholds epochs while the bank's blended confidence (model
// confidence × observed hit rate) is below threshold, trading a later
// speculation start for fewer rollbacks.
//
// Acceptance: on every corpus, the best gated bank run must roll back no
// more often than the fixed last-value baseline at the same step size.
#include <algorithm>
#include <cstdio>

#include "bench_util.h"

namespace {

constexpr std::uint32_t kStep = 1;  // equal step size for every series
constexpr double kGates[] = {0.0, 0.25, 0.5, 0.75};

pipeline::RunConfig config(wl::FileKind file, tvs::PredictorMode mode,
                           double gate) {
  auto cfg =
      pipeline::RunConfig::x86_disk(file, sre::DispatchPolicy::Balanced);
  cfg.spec.step_size = kStep;
  cfg.spec.predictor = mode;
  cfg.spec.confidence_gate = gate;
  return cfg;
}

}  // namespace

int main() {
  std::printf("Ablation: predictor bank + confidence gate vs the paper's "
              "last-value baseline\n(x86 disk, balanced, tol 1%%, step %u)\n",
              kStep);

  bool all_pass = true;
  for (wl::FileKind file : wl::all_kinds()) {
    std::printf("\n=== %s ===\n", wl::to_string(file).c_str());
    std::printf("%-16s %12s %6s %8s %7s %-10s\n", "series", "avg_lat_us",
                "rb", "denied", "commit", "best");

    const auto base =
        pipeline::run_sim(config(file, tvs::PredictorMode::Baseline, 0.0));
    pipeline::verify_roundtrip(base);
    std::printf("%-16s %12.0f %6llu %8s %7s %-10s\n", "baseline",
                base.avg_latency_us(),
                static_cast<unsigned long long>(base.rollbacks), "-",
                base.spec_committed ? "yes" : "no", "-");

    std::uint64_t best_gated_rb = ~0ull;
    for (double gate : kGates) {
      const auto res =
          pipeline::run_sim(config(file, tvs::PredictorMode::Bank, gate));
      pipeline::verify_roundtrip(res);
      char name[32];
      std::snprintf(name, sizeof(name), "bank gate=%.2f", gate);
      std::printf("%-16s %12.0f %6llu %8llu %7s %-10s\n", name,
                  res.avg_latency_us(),
                  static_cast<unsigned long long>(res.rollbacks),
                  static_cast<unsigned long long>(res.gate_denials),
                  res.spec_committed ? "yes" : "no",
                  res.best_predictor.c_str());
      if (gate > 0.0) best_gated_rb = std::min(best_gated_rb, res.rollbacks);
      if (gate == 0.5) {
        std::printf("\nper-predictor record (gate 0.50):\n%s",
                    res.predictors.to_string().c_str());
      }
    }

    const bool pass = best_gated_rb <= base.rollbacks;
    all_pass = all_pass && pass;
    std::printf("\n%s: best gated rollbacks %llu vs baseline %llu -> %s\n",
                wl::to_string(file).c_str(),
                static_cast<unsigned long long>(best_gated_rb),
                static_cast<unsigned long long>(base.rollbacks),
                pass ? "PASS" : "FAIL");
  }

  std::printf("\noverall: %s (gated bank never rolls back more than the "
              "fixed last-value baseline)\n", all_pass ? "PASS" : "FAIL");
  return all_pass ? 0 : 1;
}
