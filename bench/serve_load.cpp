// Serving-layer load sweep: many concurrent Huffman sessions over one
// shared worker fleet (src/serve), closed-loop and open-loop.
//
// Three experiments:
//
//  * identity — the correctness anchor: the same N NonSpeculative session
//    configs run (a) concurrently at max_concurrent = N and (b) strictly
//    sequentially at max_concurrent = 1 must produce byte-identical
//    compressed containers. Sharing workers must not change results.
//
//  * closed-loop — submit S sessions up front and wait for all of them,
//    sweeping the concurrency window. Reports session throughput and
//    p50/p95/p99 session latency; the window sweep shows how much the
//    shared fleet overlaps independent streams.
//
//  * open-loop — PoissonArrival-timed submissions at ~1×, ~2× and a ~5×
//    burst point (PoissonArrival burst mode: back-to-back groups of 4) of
//    the measured service capacity against a small bounded admission
//    queue. At 1× the service keeps up (few or no sheds); past capacity
//    arrivals do not slow down, so the only stable response is load
//    shedding: the bench asserts sheds happened, the drain completed, the
//    runtime went quiescent and no epoch bookkeeping leaked — overload
//    degrades into refusals, not into a deadlock or an unbounded queue.
//
// Reporting: wall-clock on this class of host cannot resolve gaps under
// ~±10%, so the closed-loop sweep reports *paired-ratio medians* — each
// repetition runs the conc=1 baseline and the conc=N cell back to back and
// the speedup is the median of the per-rep wall ratios — plus rollback
// counts, instead of leaning on raw wall-clock deltas.
//
// Results go to BENCH_serve.json (--out <path>). --quick shrinks the
// sweep; --smoke runs only a short low-rate open-loop check and asserts
// zero sheds (the CI gate).
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "flight/recorder.h"
#include "io/arrival_model.h"
#include "pipeline/driver.h"
#include "pipeline/run_config.h"
#include "serve/session_manager.h"
#include "sre/runtime.h"

namespace {

pipeline::RunConfig session_workload(std::uint64_t seed, std::size_t bytes,
                                     sre::DispatchPolicy policy) {
  pipeline::RunConfig cfg =
      pipeline::RunConfig::x86_disk(wl::FileKind::Txt, policy);
  cfg.bytes = bytes;
  cfg.seed = seed;
  return cfg;
}

serve::ServiceConfig base_service(unsigned workers, std::size_t concurrent) {
  serve::ServiceConfig cfg;
  cfg.workers = workers;
  cfg.max_concurrent = concurrent;
  return cfg;
}

std::uint64_t pct(std::vector<std::uint64_t> v, double q) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const auto ix = static_cast<std::size_t>(
      q * static_cast<double>(v.size() - 1) + 0.5);
  return v[std::min(ix, v.size() - 1)];
}

struct ClosedRow {
  unsigned workers = 0;
  std::size_t concurrent = 0;
  std::size_t sessions = 0;
  double wall_ms = 0.0;
  double sessions_per_sec = 0.0;
  std::uint64_t p50_us = 0, p95_us = 0, p99_us = 0;
  std::uint64_t rollbacks = 0;
  /// Median over reps of wall(conc=1) / wall(conc=N), paired per rep.
  /// 0 = this row *is* the baseline (or a single-run smoke path).
  double speedup_x = 0.0;
};

struct OpenRow {
  double rate_x = 0.0;  ///< offered load relative to measured capacity
  std::uint64_t mean_gap_us = 0;
  std::size_t burst_len = 1;  ///< PoissonArrival burst clustering
  std::size_t offered = 0;
  std::size_t done = 0;
  std::size_t shed = 0;
  double shed_rate = 0.0;
  std::uint64_t p95_us = 0;
  std::uint64_t rollbacks = 0;
  bool drained_clean = false;
};

double median(std::vector<double> v) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

/// Runs S sessions closed-loop; also returns each session's container when
/// `containers` is non-null (the identity check reuses this path).
ClosedRow run_closed(unsigned workers, std::size_t concurrent,
                     std::size_t sessions, std::size_t bytes,
                     sre::DispatchPolicy policy,
                     std::vector<std::vector<std::uint8_t>>* containers) {
  serve::SessionManager mgr(base_service(workers, concurrent));
  const std::uint64_t t0 = mgr.now_us();
  std::vector<serve::SessionId> ids;
  ids.reserve(sessions);
  for (std::size_t i = 0; i < sessions; ++i) {
    serve::SessionConfig sc;
    sc.run = session_workload(/*seed=*/1000 + i, bytes, policy);
    ids.push_back(mgr.submit(std::move(sc)).id);
  }
  std::vector<std::uint64_t> latencies;
  std::uint64_t rollbacks = 0;
  for (const auto id : ids) {
    const pipeline::RunResult* r = mgr.wait(id);
    if (r == nullptr) {
      std::fprintf(stderr, "serve_load: closed-loop session shed?!\n");
      continue;
    }
    pipeline::verify_roundtrip(*r);
    latencies.push_back(mgr.stats(id).latency_us());
    rollbacks += r->rollbacks;
    if (containers != nullptr) containers->push_back(r->container);
    mgr.release(id);  // consumed — keep the sweep's memory flat
  }
  const std::uint64_t t1 = mgr.now_us();
  mgr.drain();

  ClosedRow row;
  row.workers = workers;
  row.concurrent = concurrent;
  row.sessions = sessions;
  row.wall_ms = static_cast<double>(t1 - t0) / 1000.0;
  row.sessions_per_sec = row.wall_ms > 0.0
                             ? static_cast<double>(latencies.size()) /
                                   (row.wall_ms / 1000.0)
                             : 0.0;
  row.p50_us = pct(latencies, 0.50);
  row.p95_us = pct(latencies, 0.95);
  row.p99_us = pct(latencies, 0.99);
  row.rollbacks = rollbacks;
  return row;
}

OpenRow run_open(unsigned workers, std::size_t concurrent,
                 std::size_t sessions, std::size_t bytes,
                 std::uint64_t mean_gap_us, double rate_x,
                 std::size_t burst_len = 1) {
  serve::ServiceConfig scfg = base_service(workers, concurrent);
  // Small bounded queue: overload must turn into sheds quickly, not into a
  // long queue that hides the imbalance for the whole bench run.
  scfg.shed.queue_capacity = {6, 6, 6};
  serve::SessionManager mgr(scfg);

  std::vector<serve::SessionConfig> configs(sessions);
  for (std::size_t i = 0; i < sessions; ++i) {
    configs[i].run =
        session_workload(/*seed=*/5000 + i, bytes, sre::DispatchPolicy::Balanced);
  }
  const sio::PoissonArrival arrivals(static_cast<double>(mean_gap_us),
                                     /*seed=*/0xbeefULL + sessions, burst_len);
  const auto outcomes = serve::submit_open_loop(mgr, std::move(configs), arrivals);

  OpenRow row;
  row.rate_x = rate_x;
  row.mean_gap_us = mean_gap_us;
  row.burst_len = burst_len;
  row.offered = outcomes.size();
  std::vector<std::uint64_t> latencies;
  for (const auto& o : outcomes) {
    if (!o.accepted) {
      ++row.shed;
      continue;
    }
    const pipeline::RunResult* r = mgr.wait(o.id);
    const auto st = mgr.stats(o.id);
    if (r == nullptr) {
      ++row.shed;  // shed in queue (deadline) — still a refusal
      continue;
    }
    pipeline::verify_roundtrip(*r);
    ++row.done;
    row.rollbacks += r->rollbacks;
    latencies.push_back(st.latency_us());
    mgr.release(o.id);  // consumed — keep the sweep's memory flat
  }
  mgr.drain();
  const auto depths = mgr.runtime().queue_depths();
  row.drained_clean = mgr.runtime().quiescent() && depths.open_epochs == 0 &&
                      depths.epoch_tasks == 0;
  row.shed_rate = row.offered > 0
                      ? static_cast<double>(row.shed) /
                            static_cast<double>(row.offered)
                      : 0.0;
  row.p95_us = pct(latencies, 0.95);
  return row;
}

/// Smoke check for the flight recorder's post-mortem path: a session whose
/// input cannot be read must end Failed and leave an automatic post-mortem
/// dump on disk.
bool run_post_mortem_smoke(unsigned workers) {
  const auto dir = std::filesystem::temp_directory_path() / "tvs_serve_smoke";
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);

  flight::Recorder::Options fopts;
  fopts.post_mortem_dir = dir.string();
  flight::Recorder recorder(fopts);
  recorder.start();

  serve::ServiceConfig scfg = base_service(workers, /*concurrent=*/2);
  scfg.flight = &recorder;
  serve::SessionManager mgr(scfg);

  serve::SessionConfig bad;
  bad.name = "doomed";
  bad.run = session_workload(/*seed=*/1, 64 * 1024,
                             sre::DispatchPolicy::Balanced);
  bad.run.input_path = "/nonexistent/tvs_serve_load_smoke_input";
  const auto outcome = mgr.submit(std::move(bad));
  if (!outcome.accepted) return false;
  const bool failed = mgr.wait(outcome.id) == nullptr &&
                      mgr.stats(outcome.id).state ==
                          serve::SessionState::Failed;
  mgr.drain();

  const auto path = dir / ("session-" + std::to_string(outcome.id) +
                           "-postmortem.trace.json");
  const bool dumped = std::filesystem::exists(path);
  if (!failed || !dumped) {
    std::fprintf(stderr,
                 "serve_load: post-mortem smoke failed=%d dump_exists=%d "
                 "(%s)\n",
                 failed ? 1 : 0, dumped ? 1 : 0, path.c_str());
  }
  std::filesystem::remove_all(dir, ec);
  return failed && dumped;
}

/// Byte-identity: concurrent vs sequential execution of identical configs.
bool run_identity(unsigned workers, std::size_t sessions, std::size_t bytes) {
  std::vector<std::vector<std::uint8_t>> concurrent_out;
  std::vector<std::vector<std::uint8_t>> sequential_out;
  // NonSpeculative sessions: with speculation off the committed encoding is
  // schedule-independent, so byte-identity across interleavings is exact.
  (void)run_closed(workers, sessions, sessions, bytes,
                   sre::DispatchPolicy::NonSpeculative, &concurrent_out);
  (void)run_closed(workers, /*concurrent=*/1, sessions, bytes,
                   sre::DispatchPolicy::NonSpeculative, &sequential_out);
  if (concurrent_out.size() != sessions || sequential_out.size() != sessions) {
    return false;
  }
  for (std::size_t i = 0; i < sessions; ++i) {
    if (concurrent_out[i] != sequential_out[i]) return false;
  }
  return true;
}

void write_json(const std::string& path, bool identity_ok,
                const std::vector<ClosedRow>& closed,
                const std::vector<OpenRow>& open) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "serve_load: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"benchmark\": \"serve_load\",\n");
  std::fprintf(f,
               "  \"description\": \"multi-session serving layer: closed- "
               "and open-loop load over one shared worker fleet\",\n");
  std::fprintf(f, "  \"closed_loop\": [\n");
  for (std::size_t i = 0; i < closed.size(); ++i) {
    const ClosedRow& c = closed[i];
    std::fprintf(f,
                 "    {\"workers\": %u, \"concurrent\": %zu, \"sessions\": "
                 "%zu, \"wall_ms\": %.3f, \"sessions_per_sec\": %.2f, "
                 "\"speedup_x_median\": %.3f, \"rollbacks\": %llu, "
                 "\"p50_us\": %llu, \"p95_us\": %llu, \"p99_us\": %llu}%s\n",
                 c.workers, c.concurrent, c.sessions, c.wall_ms,
                 c.sessions_per_sec, c.speedup_x,
                 static_cast<unsigned long long>(c.rollbacks),
                 static_cast<unsigned long long>(c.p50_us),
                 static_cast<unsigned long long>(c.p95_us),
                 static_cast<unsigned long long>(c.p99_us),
                 i + 1 < closed.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"open_loop\": [\n");
  for (std::size_t i = 0; i < open.size(); ++i) {
    const OpenRow& o = open[i];
    std::fprintf(f,
                 "    {\"rate_x\": %.2f, \"mean_gap_us\": %llu, "
                 "\"burst_len\": %zu, \"offered\": "
                 "%zu, \"done\": %zu, \"shed\": %zu, \"shed_rate\": %.3f, "
                 "\"p95_us\": %llu, \"rollbacks\": %llu, "
                 "\"drained_clean\": %s}%s\n",
                 o.rate_x, static_cast<unsigned long long>(o.mean_gap_us),
                 o.burst_len, o.offered, o.done, o.shed, o.shed_rate,
                 static_cast<unsigned long long>(o.p95_us),
                 static_cast<unsigned long long>(o.rollbacks),
                 o.drained_clean ? "true" : "false",
                 i + 1 < open.size() ? "," : "");
  }
  const OpenRow* overload = nullptr;
  for (const auto& o : open) {
    if (o.rate_x >= 2.0) overload = &o;
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f,
               "  \"headline\": {\"identity_ok\": %s, "
               "\"overload_sheds\": %zu, \"overload_drained_clean\": %s}\n",
               identity_ok ? "true" : "false",
               overload != nullptr ? overload->shed : 0,
               overload != nullptr && overload->drained_clean ? "true"
                                                             : "false");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("  wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::string out = "BENCH_serve.json";
  bool quick = false;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out = argv[++i];
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    }
  }

  const unsigned workers = 8;
  const std::size_t bytes = quick || smoke ? 96 * 1024 : 256 * 1024;

  if (smoke) {
    // CI gate: a short, comfortably under-capacity open-loop run must shed
    // nothing and drain clean.
    std::printf("serve_load --smoke: low-rate open loop, %u workers\n",
                workers);
    ClosedRow probe = run_closed(workers, /*concurrent=*/4, /*sessions=*/8,
                                 bytes, sre::DispatchPolicy::Balanced,
                                 nullptr);
    const std::uint64_t service_us = std::max<std::uint64_t>(probe.p50_us, 1);
    // Offer at ~1/4 of the concurrent-capacity rate.
    const std::uint64_t gap = service_us;
    OpenRow row = run_open(workers, /*concurrent=*/4, /*sessions=*/16, bytes,
                           gap, 0.25);
    std::printf("  offered=%zu done=%zu shed=%zu drained_clean=%d\n",
                row.offered, row.done, row.shed, row.drained_clean ? 1 : 0);
    if (row.shed != 0 || !row.drained_clean || row.done != row.offered) {
      std::fprintf(stderr,
                   "serve_load: FAIL — low-rate smoke shed %zu of %zu "
                   "(drained_clean=%d)\n",
                   row.shed, row.offered, row.drained_clean ? 1 : 0);
      return 1;
    }
    // A forced-Failed session must leave a flight-recorder post-mortem.
    if (!run_post_mortem_smoke(workers)) {
      std::fprintf(stderr, "serve_load: FAIL — post-mortem smoke\n");
      return 1;
    }
    std::printf("  post-mortem dump for forced-Failed session: OK\n");
    std::printf("serve_load: smoke OK\n");
    return 0;
  }

  const std::size_t sessions = quick ? 8 : 24;

  std::printf("serve_load: identity check (%u workers, 4 sessions)\n",
              workers);
  const bool identity_ok = run_identity(workers, /*sessions=*/4, bytes);
  std::printf("  concurrent == sequential: %s\n",
              identity_ok ? "yes" : "NO — MISMATCH");

  // Closed-loop sweep, paired per repetition: each rep runs the conc=1
  // baseline and every window cell; the per-conc speedup is the median of
  // the within-rep wall ratios (the only signal that survives this host's
  // ±10% wall-clock noise).
  const std::size_t reps = quick ? 1 : 3;
  const std::vector<std::size_t> concs = {1, 2, 4, 8};
  std::printf("serve_load: closed-loop window sweep (%zu paired rep(s))\n",
              reps);
  std::vector<std::vector<ClosedRow>> cells(concs.size());
  for (std::size_t rep = 0; rep < reps; ++rep) {
    for (std::size_t ci = 0; ci < concs.size(); ++ci) {
      cells[ci].push_back(run_closed(workers, concs[ci], sessions, bytes,
                                     sre::DispatchPolicy::Balanced, nullptr));
    }
  }
  std::vector<ClosedRow> closed;
  for (std::size_t ci = 0; ci < concs.size(); ++ci) {
    // Representative row: the rep with the median wall time.
    std::vector<ClosedRow> by_wall = cells[ci];
    std::sort(by_wall.begin(), by_wall.end(),
              [](const ClosedRow& a, const ClosedRow& b) {
                return a.wall_ms < b.wall_ms;
              });
    ClosedRow row = by_wall[by_wall.size() / 2];
    if (ci > 0) {
      std::vector<double> ratios;
      for (std::size_t rep = 0; rep < reps; ++rep) {
        if (cells[ci][rep].wall_ms > 0.0) {
          ratios.push_back(cells[0][rep].wall_ms / cells[ci][rep].wall_ms);
        }
      }
      row.speedup_x = median(std::move(ratios));
    }
    std::printf(
        "  conc=%zu  %7.1f ms  %6.2f sess/s  speedup(med)=%.2fx  "
        "p50=%llu p95=%llu p99=%llu us  rollbacks=%llu\n",
        row.concurrent, row.wall_ms, row.sessions_per_sec, row.speedup_x,
        static_cast<unsigned long long>(row.p50_us),
        static_cast<unsigned long long>(row.p95_us),
        static_cast<unsigned long long>(row.p99_us),
        static_cast<unsigned long long>(row.rollbacks));
    closed.push_back(row);
  }

  // Capacity estimate from the conc=4 cell: sessions/sec the service
  // actually sustained; the open-loop gap is its inverse.
  double capacity_sps = 1.0;
  for (const auto& c : closed) {
    if (c.concurrent == 4) capacity_sps = std::max(c.sessions_per_sec, 0.01);
  }
  const auto gap_1x =
      static_cast<std::uint64_t>(std::max(1.0, 1e6 / capacity_sps));

  std::printf("serve_load: open loop (capacity ~%.2f sess/s)\n", capacity_sps);
  // Enough arrivals that a 2× imbalance overflows the bounded queue: the
  // backlog grows at ~1× capacity, so the run must offer several queue-fuls.
  // The 5× point arrives in back-to-back bursts of 4 (PoissonArrival burst
  // mode) — the spikiest overload the admission queue has to absorb.
  const std::size_t open_sessions = sessions * 3;
  std::vector<OpenRow> open;
  for (const double rate_x : {1.0, 2.0, 5.0}) {
    const std::size_t burst_len = rate_x >= 5.0 ? 4 : 1;
    const auto gap = static_cast<std::uint64_t>(
        std::max(1.0, static_cast<double>(gap_1x) / rate_x));
    OpenRow row = run_open(workers, /*concurrent=*/4, open_sessions, bytes,
                           gap, rate_x, burst_len);
    std::printf(
        "  rate=%.1fx gap=%lluus burst=%zu  offered=%zu done=%zu shed=%zu "
        "(%.0f%%)  p95=%llu us  rollbacks=%llu  drained_clean=%d\n",
        row.rate_x, static_cast<unsigned long long>(row.mean_gap_us),
        row.burst_len, row.offered, row.done, row.shed, 100.0 * row.shed_rate,
        static_cast<unsigned long long>(row.p95_us),
        static_cast<unsigned long long>(row.rollbacks),
        row.drained_clean ? 1 : 0);
    open.push_back(row);
  }

  write_json(out, identity_ok, closed, open);

  bool ok = identity_ok;
  for (const auto& o : open) {
    ok = ok && o.drained_clean;
    if (o.rate_x >= 2.0) ok = ok && o.shed > 0;
  }
  if (!ok) {
    std::fprintf(stderr, "serve_load: FAIL (see rows above)\n");
    return 1;
  }
  std::printf("serve_load: OK\n");
  return 0;
}
