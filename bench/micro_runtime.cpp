// Microbenchmarks of the runtime layers: scheduler operations, dependence
// propagation, virtual-time simulation throughput, and speculation-layer
// overheads.
#include <benchmark/benchmark.h>

#include "core/speculator.h"
#include "core/wait_buffer.h"
#include "sim/sim_executor.h"
#include "sre/runtime.h"

namespace {

void BM_ReadyPoolPushPop(benchmark::State& state) {
  sre::Runtime rt(sre::DispatchPolicy::Balanced);
  std::vector<sre::TaskPtr> tasks;
  const auto n = static_cast<std::size_t>(state.range(0));
  for (std::size_t i = 0; i < n; ++i) {
    tasks.push_back(rt.make_task("t", sre::TaskClass::Natural, 0,
                                 static_cast<int>(i % 7), 10,
                                 [](sre::TaskContext&) {}));
  }
  sre::ReadyPool pool(sre::DispatchPolicy::Balanced);
  for (auto _ : state) {
    for (const auto& t : tasks) pool.push(t);
    while (pool.pop()) {
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ReadyPoolPushPop)->Arg(64)->Arg(1024);

void BM_TaskLifecycle(benchmark::State& state) {
  // Create → submit → dispatch → finish, the full runtime overhead per task.
  for (auto _ : state) {
    sre::Runtime rt(sre::DispatchPolicy::Balanced);
    for (int i = 0; i < 256; ++i) {
      rt.submit(rt.make_task("t", sre::TaskClass::Natural, 0, 1, 10,
                             [](sre::TaskContext&) {}));
    }
    while (auto task = rt.next_task()) {
      sre::TaskContext ctx{rt, *task, 0};
      task->run(ctx);
      rt.on_task_finished(task, 1);
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 256);
}
BENCHMARK(BM_TaskLifecycle);

void BM_DependencyChainPropagation(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sre::Runtime rt(sre::DispatchPolicy::Balanced);
    sre::TaskPtr prev;
    for (std::size_t i = 0; i < n; ++i) {
      auto t = rt.make_task("t", sre::TaskClass::Natural, 0, 1, 10,
                            [](sre::TaskContext&) {});
      if (prev) rt.add_dependency(prev, t);
      rt.submit(t);
      prev = t;
    }
    while (auto task = rt.next_task()) {
      sre::TaskContext ctx{rt, *task, 0};
      task->run(ctx);
      rt.on_task_finished(task, 1);
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_DependencyChainPropagation)->Arg(1024);

void BM_EpochAbort(benchmark::State& state) {
  // Rollback cost as a function of the doomed chain's size.
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    sre::Runtime rt(sre::DispatchPolicy::Balanced);
    const sre::Epoch e = rt.open_epoch();
    sre::TaskPtr prev;
    for (std::size_t i = 0; i < n; ++i) {
      auto t = rt.make_task("s", sre::TaskClass::Speculative, e, 1, 10,
                            [](sre::TaskContext&) {});
      if (prev) rt.add_dependency(prev, t);
      rt.submit(t);
      prev = t;
    }
    state.ResumeTiming();
    rt.abort_epoch(e);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EpochAbort)->Arg(64)->Arg(1024);

void BM_SimThroughput(benchmark::State& state) {
  // Virtual-time engine: independent tasks per wall-second.
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sre::Runtime rt(sre::DispatchPolicy::Balanced);
    sim::SimExecutor ex(rt, sim::PlatformConfig::x86(16));
    for (std::size_t i = 0; i < n; ++i) {
      rt.submit(rt.make_task("t", sre::TaskClass::Natural, 0, 1, 100,
                             [](sre::TaskContext&) {}));
    }
    ex.run();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SimThroughput)->Arg(4096);

void BM_SimStagedThroughput(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sre::Runtime rt(sre::DispatchPolicy::Balanced);
    sim::SimExecutor ex(rt, sim::PlatformConfig::cell(16));
    for (std::size_t i = 0; i < n; ++i) {
      rt.submit(rt.make_task("t", sre::TaskClass::Natural, 0, 1, 100,
                             [](sre::TaskContext&) {}));
    }
    ex.run();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SimStagedThroughput)->Arg(4096);

void BM_WaitBufferAddCommit(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    std::size_t sunk = 0;
    tvs::WaitBuffer<std::size_t, int> buffer(
        [&sunk](const std::size_t&, int&&, std::uint64_t) { ++sunk; });
    for (std::size_t i = 0; i < n; ++i) {
      buffer.add(1, i, static_cast<int>(i), 0);
    }
    buffer.commit(1, 1);
    benchmark::DoNotOptimize(sunk);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_WaitBufferAddCommit)->Arg(1024);

}  // namespace

BENCHMARK_MAIN();
