// Shared helpers for the figure-reproduction benchmark binaries.
//
// Every fig*_ binary prints: a per-policy summary table (the quantitative
// shape), an ASCII latency-vs-element chart (the figure's visual shape), and
// — when run with `--csv <dir>` — one CSV per figure panel with the exact
// series, ready for external plotting.
#pragma once

#include <cstdio>
#include <filesystem>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "pipeline/driver.h"
#include "stats/ascii_plot.h"
#include "stats/csv.h"
#include "stats/summary.h"

namespace benchutil {

/// Parses `--csv <dir>` from argv; creates the directory if needed.
inline std::optional<std::string> csv_dir(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--csv") {
      std::filesystem::create_directories(argv[i + 1]);
      return std::string(argv[i + 1]);
    }
  }
  return std::nullopt;
}

// --- Machine-readable run reports (`--report <dir>`) ------------------------

/// The process-wide report target; set once from main() via init_reports().
inline std::optional<std::string>& report_dir_ref() {
  static std::optional<std::string> dir;
  return dir;
}

/// Parses `--report <dir>` from argv. When present, every run_reported()
/// call attaches the metrics stack and writes a report bundle into <dir>.
inline void init_reports(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--report") {
      std::filesystem::create_directories(argv[i + 1]);
      report_dir_ref() = std::string(argv[i + 1]);
    }
  }
}

/// File-stem-safe scenario name: "fig3/txt/non-spec" → "fig3_txt_non-spec".
inline std::string report_stem(const std::string& scenario) {
  std::string out;
  out.reserve(scenario.size());
  for (char c : scenario) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '.';
    out += ok ? c : '_';
  }
  return out;
}

/// Runs one scenario on the simulator. Without `--report` this is exactly
/// pipeline::run_sim(cfg); with it, the run carries its own metrics
/// registry + sampler (runs stay isolated from each other) and leaves a
/// `<dir>/<scenario>.{json,md,prom}` bundle behind.
inline pipeline::RunResult run_reported(const std::string& scenario,
                                        const pipeline::RunConfig& cfg) {
  if (!report_dir_ref()) return pipeline::run_sim(cfg);
  metrics::Registry registry;
  metrics::Sampler sampler;
  pipeline::RunOptions opt;
  opt.registry = &registry;
  opt.sampler = &sampler;
  auto result = pipeline::run_sim(cfg, opt);
  // Scheduler dispatch counters: how many pool pops each task class got.
  // The MetricsObserver sees dispatches but not the class split the pool
  // tracks, so fold the pool's own counters into the bundle here.
  registry.counter("tvs_dispatch_pops_total", "class=\"natural\"")
      .add(result.natural_dispatches);
  registry.counter("tvs_dispatch_pops_total", "class=\"speculative\"")
      .add(result.spec_dispatches);
  registry.counter("tvs_dispatch_pops_total", "class=\"control\"")
      .add(result.control_dispatches);
  report::RunInfo info = pipeline::run_info(cfg, result, "sim");
  info.scenario = scenario + " [" + cfg.label() + "]";
  const auto bundle = report::make_report(info, &registry, &sampler);
  for (const auto& path :
       report::write_bundle(bundle, *report_dir_ref(), report_stem(scenario))) {
    std::printf("  report %s\n", path.c_str());
  }
  return result;
}

struct NamedRun {
  std::string name;
  pipeline::RunResult result;
};

/// Prints one summary row per run: the numbers behind the figure.
inline void print_summary_table(const std::string& title,
                                const std::vector<NamedRun>& runs) {
  std::printf("\n--- %s ---\n", title.c_str());
  std::printf("%-14s %12s %10s %10s %12s %6s %7s %9s\n", "series",
              "avg_lat_us", "p95_us", "max_us", "runtime_us", "rb",
              "commit", "waste_enc");
  for (const auto& r : runs) {
    const auto s = r.result.latency_summary();
    std::printf("%-14s %12.0f %10llu %10llu %12llu %6llu %7s %9llu\n",
                r.name.c_str(), r.result.avg_latency_us(),
                static_cast<unsigned long long>(s.p95),
                static_cast<unsigned long long>(s.max),
                static_cast<unsigned long long>(r.result.makespan_us),
                static_cast<unsigned long long>(r.result.rollbacks),
                r.result.spec_committed ? "yes" : "no",
                static_cast<unsigned long long>(
                    r.result.trace.wasted_encodes()));
  }
}

/// ASCII rendering of the latency-vs-element panel.
inline void print_latency_chart(const std::vector<NamedRun>& runs) {
  std::vector<std::vector<stats::Micros>> series;
  series.reserve(runs.size());
  for (const auto& r : runs) series.push_back(r.result.trace.latencies());
  std::vector<stats::SeriesView> views;
  for (std::size_t i = 0; i < runs.size(); ++i) {
    views.push_back({runs[i].name, &series[i]});
  }
  std::printf("%s", stats::plot_series(views).c_str());
}

/// CSV: element,<series...> — one row per block.
inline void write_latency_csv(const std::string& dir, const std::string& file,
                              const std::vector<NamedRun>& runs) {
  stats::CsvWriter csv(dir + "/" + file);
  std::vector<std::string> header{"element"};
  std::vector<std::vector<stats::Micros>> series;
  for (const auto& r : runs) {
    header.push_back(r.name);
    series.push_back(r.result.trace.latencies());
  }
  csv.header(header);
  const std::size_t n = series.empty() ? 0 : series.front().size();
  for (std::size_t e = 0; e < n; ++e) {
    std::vector<std::string> row{std::to_string(e)};
    for (const auto& s : series) row.push_back(std::to_string(s[e]));
    csv.row(row);
  }
  std::printf("  wrote %s/%s\n", dir.c_str(), file.c_str());
}

/// Run-time bar panel (Fig. 3d / 4d / 6d).
inline void print_runtime_bars(
    const std::string& title,
    const std::vector<std::pair<std::string, double>>& bars) {
  std::printf("\n--- %s ---\n", title.c_str());
  std::vector<stats::Bar> b;
  b.reserve(bars.size());
  for (const auto& [label, value] : bars) b.push_back({label, value});
  std::printf("%s", stats::bar_chart(b, "us").c_str());
}

/// Sanity common to every figure run: output round-trips and latencies exist.
inline void verify_run(const NamedRun& run) {
  pipeline::verify_roundtrip(run.result);
}

}  // namespace benchutil
