// Figure 4 (a-d): the Fig. 3 experiment on the Cell platform.
//
// Paper shapes to reproduce:
//  * same phenomena as x86, "with the exception of a rather poor performance
//    by the conservative policy. This is probably due to the longer dispatch
//    queue required by the multiple buffering technique" — the per-CPU
//    staging queues (depth 4) almost always hold a natural task, so the
//    conservative policy nearly never speculates.
#include <cstdio>

#include "bench_util.h"

namespace {

using benchutil::NamedRun;

std::vector<NamedRun> run_file(wl::FileKind file) {
  const std::vector<std::pair<std::string, sre::DispatchPolicy>> policies = {
      {"non-spec", sre::DispatchPolicy::NonSpeculative},
      {"balanced", sre::DispatchPolicy::Balanced},
      {"aggressive", sre::DispatchPolicy::Aggressive},
      {"conservative", sre::DispatchPolicy::Conservative},
  };
  std::vector<NamedRun> runs;
  for (const auto& [name, policy] : policies) {
    auto cfg = pipeline::RunConfig::cell_disk(file, policy);
    auto result = benchutil::run_reported(
        "fig4/" + wl::to_string(file) + "/" + name, cfg);
    benchutil::verify_run({name, result});
    runs.push_back({name, std::move(result)});
  }
  return runs;
}

}  // namespace

int main(int argc, char** argv) {
  const auto csv = benchutil::csv_dir(argc, argv);
  benchutil::init_reports(argc, argv);
  std::printf("Fig. 4: scheduling policies, Cell platform, disk input\n");
  std::printf("(16 simulated SPE-like CPUs, multiple buffering depth 4,\n");
  std::printf(" 32 KiB task budget, both ratios 16:1, step 1, verify 8th, tol 1%%)\n");

  std::vector<std::pair<std::string, double>> runtime_bars;
  const char* panels[] = {"fig4a_txt.csv", "fig4b_bmp.csv", "fig4c_pdf.csv"};
  int panel = 0;
  for (wl::FileKind file : wl::all_kinds()) {
    auto runs = run_file(file);
    benchutil::print_summary_table(
        "Fig. 4 (" + wl::to_string(file) + "): per-block latency, Cell", runs);
    benchutil::print_latency_chart(runs);
    if (csv) benchutil::write_latency_csv(*csv, panels[panel], runs);
    for (const auto& r : runs) {
      runtime_bars.emplace_back(wl::to_string(file) + "/" + r.name,
                                static_cast<double>(r.result.makespan_us));
    }
    ++panel;
  }
  benchutil::print_runtime_bars("Fig. 4d: run times (Cell)", runtime_bars);
  if (csv) {
    stats::CsvWriter w(*csv + "/fig4d_runtimes.csv");
    w.header({"series", "runtime_us"});
    for (const auto& [label, value] : runtime_bars) {
      w.row({label, std::to_string(static_cast<std::uint64_t>(value))});
    }
  }
  return 0;
}
